// End-to-end optimizer soundness harness (verify/soundness.h): a bounded
// deterministic sweep must come back clean, and a deliberately planted
// unsound rule must be caught and shrunk to a minimal replayable repro.

#include "verify/soundness.h"

#include <gtest/gtest.h>

#include "term/parser.h"
#include "verify/query_gen.h"

namespace kola {
namespace {

SoundnessOptions BoundedOptions() {
  SoundnessOptions options;
  options.trials = 40;
  options.seed = 20260806;
  options.max_eval_steps = 500'000;
  return options;
}

TEST(SoundnessHarnessTest, BoundedSweepIsClean) {
  auto report = SoundnessHarness(BoundedOptions()).Run();
  ASSERT_TRUE(report.ok()) << report.status();
  for (const Divergence& failure : report->failures) {
    ADD_FAILURE() << failure.Report();
  }
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->trials, 40);
  // The sweep must actually exercise the pipeline, not skip everything.
  EXPECT_GT(report->evaluated, report->trials / 2);
  EXPECT_EQ(report->config_runs, report->evaluated * 32);
  EXPECT_EQ(report->cost_regressions, 0);
}

TEST(SoundnessHarnessTest, SweepIsDeterministic) {
  auto first = SoundnessHarness(BoundedOptions()).Run();
  auto second = SoundnessHarness(BoundedOptions()).Run();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->Summary(), second->Summary());
}

TEST(SoundnessHarnessTest, PlantedUnsoundRuleIsCaughtAndShrunk) {
  SoundnessOptions options = BoundedOptions();
  options.extra_rules.push_back(PlantedDropMapRule());
  options.max_failures = 1;
  auto report = SoundnessHarness(options).Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->clean())
      << "harness failed to detect a deliberately unsound rule";

  const Divergence& failure = report->failures.front();
  // The acceptance bound: the greedy shrinker must reduce any diverging
  // query for drop-map to (at most) `iterate(Kp(T), f) ! E` -- depth 3.
  EXPECT_LE(TermDepth(failure.query), 3) << failure.Report();
  EXPECT_NE(failure.expected, failure.actual);
  EXPECT_TRUE(failure.planted);
  ASSERT_FALSE(failure.rule_trace.empty());
  EXPECT_EQ(failure.rule_trace.back(), "plant.drop-map");
}

TEST(SoundnessHarnessTest, PlantedFailureReplays) {
  SoundnessOptions options = BoundedOptions();
  options.extra_rules.push_back(PlantedDropMapRule());
  options.max_failures = 1;
  SoundnessHarness harness(options);
  auto report = harness.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean());
  const Divergence& failure = report->failures.front();

  // The shrunk term must round-trip through the parser (the --replay
  // path), and re-checking it must reproduce the same divergence.
  auto reparsed = ParseQuery(failure.query->ToString());
  ASSERT_TRUE(reparsed.ok()) << "shrunk repro does not re-parse: "
                             << failure.query->ToString() << ": "
                             << reparsed.status();
  RandomWorldOptions world;
  world.seed = failure.world_seed;
  world.scale = failure.world_scale;
  auto replayed = harness.CheckQuery(reparsed.value(), world, failure.config);
  ASSERT_TRUE(replayed.ok());
  ASSERT_TRUE(replayed->has_value()) << "replay did not reproduce";
  EXPECT_EQ((*replayed)->expected, failure.expected);
  EXPECT_EQ((*replayed)->actual, failure.actual);

  // And the replay command names the essentials.
  std::string command = failure.ReplayCommand();
  EXPECT_NE(command.find("--replay"), std::string::npos);
  EXPECT_NE(command.find("--world-seed"), std::string::npos);
  EXPECT_NE(command.find("--plant-unsound"), std::string::npos);
}

TEST(SoundnessHarnessTest, CheckQueryCleanOnSoundQuery) {
  auto query = ParseQuery("iterate(Kp(T), age) ! P");
  ASSERT_TRUE(query.ok());
  SoundnessHarness harness(BoundedOptions());
  RandomWorldOptions world;
  world.seed = 99;
  world.scale = 2;
  for (const PipelineConfig& config : FullConfigMatrix()) {
    auto divergence = harness.CheckQuery(query.value(), world, config);
    ASSERT_TRUE(divergence.ok());
    EXPECT_FALSE(divergence->has_value()) << (*divergence)->Report();
  }
}

TEST(PipelineConfigTest, NameRoundTrips) {
  // All 32 matrix cells: Name() -> ParsePipelineConfig is the identity.
  ASSERT_EQ(FullConfigMatrix().size(), 32u);
  for (const PipelineConfig& config : FullConfigMatrix()) {
    auto parsed = ParsePipelineConfig(config.Name());
    ASSERT_TRUE(parsed.ok()) << config.Name();
    EXPECT_EQ(parsed->interning, config.interning);
    EXPECT_EQ(parsed->fixpoint_memo, config.fixpoint_memo);
    EXPECT_EQ(parsed->physical_fastpaths, config.physical_fastpaths);
    EXPECT_EQ(parsed->rule_index, config.rule_index);
    EXPECT_EQ(parsed->egraph, config.egraph);
    EXPECT_EQ(parsed->Name(), config.Name());
  }
  EXPECT_FALSE(ParsePipelineConfig("warp-drive").ok());
}

TEST(PipelineConfigTest, PlainNamesTheAllOffCell) {
  PipelineConfig all_off{false, false, false, false};
  EXPECT_EQ(all_off.Name(), "plain");
  auto parsed = ParsePipelineConfig("plain");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->interning);
  EXPECT_FALSE(parsed->fixpoint_memo);
  EXPECT_FALSE(parsed->physical_fastpaths);
  EXPECT_FALSE(parsed->rule_index);
}

TEST(PipelineConfigTest, ParseRejectsMalformedNames) {
  // Duplicated features.
  auto dup = ParsePipelineConfig("memo+memo");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos)
      << dup.status();
  EXPECT_FALSE(ParsePipelineConfig("intern+fast+intern").ok());
  // Unknown features, including 'plain' used as a feature token.
  EXPECT_FALSE(ParsePipelineConfig("").ok());
  EXPECT_FALSE(ParsePipelineConfig("intern+warp").ok());
  EXPECT_FALSE(ParsePipelineConfig("plain+memo").ok());
  EXPECT_FALSE(ParsePipelineConfig("memo+plain").ok());
  // Empty token from a trailing or doubled '+'.
  EXPECT_FALSE(ParsePipelineConfig("intern+").ok());
  EXPECT_FALSE(ParsePipelineConfig("+memo").ok());
  EXPECT_FALSE(ParsePipelineConfig("intern++fast").ok());
}

TEST(SoundnessHarnessTest, JobsDoNotChangeTheCleanReport) {
  SoundnessOptions serial = BoundedOptions();
  serial.trials = 24;
  SoundnessOptions threaded = serial;
  threaded.jobs = 3;
  auto a = SoundnessHarness(serial).Run();
  auto b = SoundnessHarness(threaded).Run();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->Summary(), b->Summary());
  EXPECT_EQ(a->trials, b->trials);
  EXPECT_EQ(a->evaluated, b->evaluated);
  EXPECT_EQ(a->config_runs, b->config_runs);
  EXPECT_EQ(a->failures.size(), b->failures.size());
}

TEST(SoundnessHarnessTest, JobsDoNotChangeThePlantedFailureReport) {
  SoundnessOptions serial = BoundedOptions();
  serial.trials = 24;
  serial.extra_rules.push_back(PlantedDropMapRule());
  serial.max_failures = 2;
  SoundnessOptions threaded = serial;
  threaded.jobs = 4;
  auto a = SoundnessHarness(serial).Run();
  auto b = SoundnessHarness(threaded).Run();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_FALSE(a->clean());
  // The whole report -- which trials diverged, their shrunk queries, world
  // seeds, replay commands -- must be byte-identical: workers only buy
  // wall-clock, never a different answer.
  EXPECT_EQ(a->Summary(), b->Summary());
  ASSERT_EQ(a->failures.size(), b->failures.size());
  for (size_t i = 0; i < a->failures.size(); ++i) {
    EXPECT_EQ(a->failures[i].Report(), b->failures[i].Report());
  }
}

TEST(TermDepthTest, LeavesAtZero) {
  auto leaf = ParseQuery("P");
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(TermDepth(leaf.value()), 0);
  auto query = ParseQuery("iterate(Kp(T), age) ! P");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(TermDepth(query.value()), 3);
}

TEST(QueryGeneratorTest, GeneratedQueriesAreWellTypedOftenEnough) {
  SchemaTypes schema = SchemaTypes::CarWorld();
  auto db = BuildRandomWorld(7);
  Rng rng(11);
  QueryGenerator generator(&schema, db.get(), &rng);
  int ok_count = 0;
  for (int i = 0; i < 50; ++i) {
    auto query = generator.RandomQuery();
    if (!query.ok()) continue;
    ++ok_count;
    EXPECT_EQ(query.value()->sort(), Sort::kObject);
  }
  EXPECT_GT(ok_count, 25);
}

}  // namespace
}  // namespace kola
