#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "optimizer/code_motion.h"
#include "optimizer/cost.h"
#include "optimizer/hidden_join.h"
#include "optimizer/optimizer.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() {
    CarWorldOptions options;
    options.num_persons = 16;
    options.num_vehicles = 10;
    options.num_addresses = 8;
    options.seed = 5;
    db_ = BuildCarWorld(options);
    properties_ = PropertyStore::Default();
  }

  Value Eval(const TermPtr& query) {
    auto value = EvalQuery(*db_, query);
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? std::move(value).value() : Value::Null();
  }

  std::unique_ptr<Database> db_;
  PropertyStore properties_;
  Rewriter rewriter_;
};

TEST_F(OptimizerTest, CodeMotionTransformsK4) {
  auto result = ApplyCodeMotion(QueryK4(), rewriter_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->moved);
  TermPtr expected = ParseTerm(
      "iterate(Kp(T), (id, con(Cp(lt, 25) @ age, child, Kf({})))) ! P",
      Sort::kObject).value();
  EXPECT_TRUE(Term::Equal(result->query, expected))
      << result->query->ToString();
}

TEST_F(OptimizerTest, CodeMotionLeavesK3Alone) {
  auto result = ApplyCodeMotion(QueryK3(), rewriter_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->moved);
  // K3's predicate still got decomposed (simplification), but no iter was
  // turned into a conditional: an iter remains.
  std::function<bool(const TermPtr&)> has_iter =
      [&](const TermPtr& t) -> bool {
    if (t->kind() == TermKind::kIter) return true;
    for (const TermPtr& c : t->children()) {
      if (has_iter(c)) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_iter(result->query));
}

TEST_F(OptimizerTest, CodeMotionPreservesSemantics) {
  for (const TermPtr& q : {QueryK3(), QueryK4()}) {
    auto result = ApplyCodeMotion(q, rewriter_);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Eval(q), Eval(result->query)) << q->ToString();
  }
}

TEST_F(OptimizerTest, K3AndK4DifferOnlyInProjection) {
  // The paper's structural point: the two queries differ in exactly one
  // leaf (pi1 vs pi2) -- no environment analysis needed to tell them apart.
  EXPECT_EQ(QueryK3()->node_count(), QueryK4()->node_count());
  EXPECT_FALSE(Term::Equal(QueryK3(), QueryK4()));
}

TEST_F(OptimizerTest, EndToEndOptimizeGarageQuery) {
  Optimizer optimizer(&properties_, db_.get());
  auto result = optimizer.Optimize(GarageQueryKG1());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(Term::Equal(result->rewritten, GarageQueryKG2()))
      << result->rewritten->ToString();
  EXPECT_TRUE(result->kept_rewrite);
  EXPECT_LT(result->cost_after, result->cost_before);
  EXPECT_EQ(Eval(result->query), Eval(GarageQueryKG1()));
  EXPECT_FALSE(result->applied_blocks.empty());
}

TEST_F(OptimizerTest, EndToEndOptimizeK4) {
  Optimizer optimizer(&properties_, db_.get());
  auto result = optimizer.Optimize(QueryK4());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Eval(result->query), Eval(QueryK4()));
  // Code motion fired.
  bool code_motion = false;
  for (const std::string& name : result->applied_blocks) {
    if (name == "code-motion") code_motion = true;
  }
  EXPECT_TRUE(code_motion);
}

TEST_F(OptimizerTest, OptimizeIsIdempotentOnOptimizedForm) {
  Optimizer optimizer(&properties_, db_.get());
  auto once = optimizer.Optimize(GarageQueryKG1());
  ASSERT_TRUE(once.ok());
  auto twice = optimizer.Optimize(once->query);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(Eval(twice->query), Eval(GarageQueryKG1()));
}

TEST_F(OptimizerTest, CostModelPrefersUntangledGarageQuery) {
  CostModel model(db_.get());
  auto kg1 = model.EstimateQueryCost(GarageQueryKG1());
  auto kg2 = model.EstimateQueryCost(GarageQueryKG2());
  ASSERT_TRUE(kg1.ok()) << kg1.status();
  ASSERT_TRUE(kg2.ok()) << kg2.status();
  EXPECT_LT(kg2.value(), kg1.value());
}

TEST_F(OptimizerTest, CostModelWithoutFastpathsPrefersNeither) {
  // Under pure nested-loop costing the untangled form is not cheaper --
  // the transformation pays off because of physical join/nest algorithms,
  // exactly the paper's Section 4.1 argument.
  CostParams params;
  params.assume_physical_fastpaths = false;
  CostModel model(db_.get(), params);
  auto kg1 = model.EstimateQueryCost(GarageQueryKG1());
  auto kg2 = model.EstimateQueryCost(GarageQueryKG2());
  ASSERT_TRUE(kg1.ok() && kg2.ok());
  EXPECT_GE(kg2.value(), kg1.value() * 0.5);
}

TEST_F(OptimizerTest, CostModelSelectivityComposition) {
  CostModel model(db_.get());
  TermPtr all = ParseTerm("iterate(Kp(T), id) ! P", Sort::kObject).value();
  TermPtr none = ParseTerm("iterate(Kp(F), id) ! P", Sort::kObject).value();
  auto cost_all = model.EstimateQueryCost(all);
  auto cost_none = model.EstimateQueryCost(none);
  ASSERT_TRUE(cost_all.ok() && cost_none.ok());
  // Kp(F) filters everything: downstream cost vanishes, so it's cheaper.
  EXPECT_LE(cost_none.value(), cost_all.value());
}

TEST_F(OptimizerTest, CostModelErrorsOnNonObjectTerms) {
  CostModel model(db_.get());
  TermPtr fn = ParseTerm("age", Sort::kFunction).value();
  EXPECT_FALSE(model.EstimateQueryCost(fn).ok());
}

TEST_F(OptimizerTest, FastPathsMatchNaiveSemantics) {
  // Property check: hash join/nest produce bit-identical results to the
  // naive nested-loop evaluator on the KG2 pipeline and on eq-joins.
  std::vector<const char*> queries = {
      "nest(pi1, pi2) o (unnest(pi1, pi2) x id) o "
      "(join(in @ (id x cars), id x grgs), pi1) ! [V, P]",
      "join(eq @ (age x age), (pi1, pi2)) ! [P, P]",
      "join(in @ (id x child), pi2) ! [P, P]",
      "nest(pi1, pi2) ! [join(Kp(T), id) ! [Nums, Nums], Nums]",
  };
  for (const char* text : queries) {
    auto query = ParseTerm(text, Sort::kObject);
    ASSERT_TRUE(query.ok()) << query.status();
    Evaluator fast(db_.get(), EvalOptions{.physical_fastpaths = true});
    Evaluator naive(db_.get(), EvalOptions{.physical_fastpaths = false});
    auto fast_result = fast.EvalObject(query.value());
    auto naive_result = naive.EvalObject(query.value());
    ASSERT_TRUE(fast_result.ok()) << fast_result.status();
    ASSERT_TRUE(naive_result.ok()) << naive_result.status();
    EXPECT_EQ(fast_result.value(), naive_result.value()) << text;
    EXPECT_GT(fast.fastpath_hits(), 0) << text;
    EXPECT_EQ(naive.fastpath_hits(), 0);
    // The fast path does strictly less predicate work.
    EXPECT_LT(fast.steps(), naive.steps()) << text;
  }
}

TEST_F(OptimizerTest, OptimizeAllMatchesPerQueryOptimize) {
  Optimizer optimizer(&properties_, db_.get());
  std::vector<TermPtr> queries = {
      GarageQueryKG1(), QueryK4(), QueryK3(),
      ParseTerm("iterate(Kp(T), age) ! P", Sort::kObject).value(),
      ParseTerm("join(eq @ (age x age), (pi1, pi2)) ! [P, P]",
                Sort::kObject).value(),
      GarageQueryKG1(), QueryK4(),  // repeats exercise the pooled caches
  };

  std::vector<OptimizeResult> expected;
  for (const TermPtr& query : queries) {
    auto one = optimizer.Optimize(query);
    ASSERT_TRUE(one.ok()) << one.status();
    expected.push_back(std::move(one).value());
  }

  for (int jobs : {1, 3}) {
    std::vector<BatchOptimizeResult> batch = optimizer.OptimizeAll(queries, jobs);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << batch[i].status;
      const OptimizeResult& got = *batch[i].result;
      // Input order preserved, and every field identical to the serial
      // per-query result -- the jobs knob must never change a plan.
      EXPECT_TRUE(Term::Equal(got.query, expected[i].query))
          << "jobs=" << jobs << " i=" << i;
      EXPECT_EQ(got.query->ToString(), expected[i].query->ToString());
      EXPECT_EQ(got.cost_before, expected[i].cost_before);
      EXPECT_EQ(got.cost_after, expected[i].cost_after);
      EXPECT_EQ(got.kept_rewrite, expected[i].kept_rewrite);
      EXPECT_EQ(got.applied_blocks, expected[i].applied_blocks);
      EXPECT_FALSE(got.degradation.degraded);
      EXPECT_EQ(got.trace.RuleIds(), expected[i].trace.RuleIds())
          << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST_F(OptimizerTest, OptimizeAllEmptyBatch) {
  Optimizer optimizer(&properties_, db_.get());
  std::vector<BatchOptimizeResult> batch = optimizer.OptimizeAll({}, 4);
  EXPECT_TRUE(batch.empty());
}

TEST_F(OptimizerTest, FastPathIgnoresUnrecognizedShapes) {
  // gt-join has no hash implementation: both modes take the naive path.
  auto query = ParseTerm("join(gt, pi1) ! [Nums, Nums]", Sort::kObject);
  ASSERT_TRUE(query.ok());
  Evaluator fast(db_.get(), EvalOptions{.physical_fastpaths = true});
  auto result = fast.EvalObject(query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(fast.fastpath_hits(), 0);
}

}  // namespace
}  // namespace kola
