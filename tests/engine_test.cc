#include <gtest/gtest.h>

#include "rewrite/engine.h"
#include "rewrite/rule.h"
#include "rules/catalog.h"
#include "term/parser.h"

namespace kola {
namespace {

TermPtr Q(const char* text, Sort sort = Sort::kFunction) {
  auto t = ParseTerm(text, sort);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

Rule MustRule(const char* id, const char* lhs, const char* rhs,
              Sort sort = Sort::kFunction) {
  auto r = MakeRule(id, "", lhs, rhs, sort);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TEST(RuleTest, MakeRuleValidates) {
  EXPECT_TRUE(MakeRule("a", "", "?f o id", "?f", Sort::kFunction).ok());
  // rhs variable not bound on lhs.
  auto bad = MakeRule("b", "", "?f o id", "?g", Sort::kFunction);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // trivial rule.
  EXPECT_FALSE(MakeRule("c", "", "?f", "?f", Sort::kFunction).ok());
  // unparseable side.
  EXPECT_FALSE(MakeRule("d", "", "?f o", "?f", Sort::kFunction).ok());
}

TEST(RuleTest, ReverseSwapsSides) {
  Rule r = MustRule("1", "?f o id", "?f");
  auto rev = ReverseRule(r);
  ASSERT_TRUE(rev.ok());
  EXPECT_EQ(rev->id, "1~");
  EXPECT_TRUE(Term::Equal(rev->lhs, r.rhs));
  EXPECT_TRUE(Term::Equal(rev->rhs, r.lhs));
}

TEST(RuleTest, ApplyLevelVariantSplitsChains) {
  Rule r = MustRule("x", "iterate(?p, ?f) o iterate(?q, ?g)",
                    "iterate(?q & ?p @ ?g, ?f o ?g)");
  auto v = ApplyLevelVariant(r);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->id, "x!");
  EXPECT_TRUE(Term::Equal(
      v->lhs, Q("iterate(?p, ?f) ! iterate(?q, ?g) ! ?xx", Sort::kObject)));
  EXPECT_TRUE(Term::Equal(
      v->rhs, Q("iterate(?q & ?p @ ?g, ?f o ?g) ! ?xx", Sort::kObject)));
}

TEST(RuleTest, ApplyLevelVariantRejectsNonFunctionRules) {
  Rule r = MustRule("p", "?p @ id", "?p", Sort::kPredicate);
  EXPECT_FALSE(ApplyLevelVariant(r).ok());
}

TEST(RewriterTest, ApplyAtRootOnlyAtRoot) {
  Rewriter rewriter;
  Rule r = MustRule("1", "?f o id", "?f");
  auto hit = rewriter.ApplyAtRoot(r, Q("age o id"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(Term::Equal(*hit, Q("age")));
  // Redex is nested: root application must fail.
  EXPECT_FALSE(rewriter.ApplyAtRoot(r, Q("city o (age o id)")).has_value());
}

TEST(RewriterTest, ApplyOnceFindsNestedRedex) {
  Rewriter rewriter;
  Rule r = MustRule("1", "?f o id", "?f");
  RewriteStep step;
  auto result = rewriter.ApplyOnce(r, Q("city o (age o id)"), &step);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(Term::Equal(*result, Q("city o age")));
  EXPECT_EQ(step.rule_id, "1");
  EXPECT_EQ(step.path, (std::vector<size_t>{1}));
  EXPECT_TRUE(Term::Equal(step.before, Q("age o id")));
  EXPECT_TRUE(Term::Equal(step.after, Q("age")));
}

TEST(RewriterTest, ApplyOnceIsLeftmostOutermost) {
  Rewriter rewriter;
  Rule r = MustRule("1", "?f o id", "?f");
  // Both the whole term and a subterm are redexes; the root wins.
  auto result = rewriter.ApplyOnce(r, Q("(age o id) o id"), nullptr);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(Term::Equal(*result, Q("age o id")));
}

TEST(RewriterTest, FixpointTerminatesAndTraces) {
  Rewriter rewriter;
  std::vector<Rule> rules = {MustRule("1", "?f o id", "?f")};
  Trace trace;
  auto result = rewriter.Fixpoint(rules, Q("(age o id) o id"), &trace);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Term::Equal(result.value(), Q("age")));
  EXPECT_EQ(trace.steps.size(), 2u);
  EXPECT_EQ(trace.RuleIds(), (std::vector<std::string>{"1", "1"}));
}

TEST(RewriterTest, FixpointBudgetIsEnforced) {
  Rewriter rewriter;
  // A deliberately looping rule pair.
  std::vector<Rule> rules = {MustRule("swap", "?f o ?g", "?g o ?f")};
  auto result = rewriter.Fixpoint(rules, Q("age o name"), nullptr, 50);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(RewriterTest, ConditionalRuleNeedsPropertyStore) {
  std::vector<Rule> all = AllCatalogRules();
  const Rule& inj = FindRule(all, "ext.injective-intersect");
  TermPtr query =
      Q("intersect o (iterate(Kp(T), succ) x iterate(Kp(T), succ))");

  // Without a property store the conditional rule must not fire.
  Rewriter bare;
  EXPECT_FALSE(bare.ApplyAtRoot(inj, query).has_value());

  // With the default store, succ is injective and the rule fires.
  PropertyStore store = PropertyStore::Default();
  Rewriter rewriter(&store);
  auto result = rewriter.ApplyAtRoot(inj, query);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(Term::Equal(*result, Q("iterate(Kp(T), succ) o intersect")));

  // age is not known injective: the rule must not fire.
  TermPtr age_query =
      Q("intersect o (iterate(Kp(T), age) x iterate(Kp(T), age))");
  EXPECT_FALSE(rewriter.ApplyAtRoot(inj, age_query).has_value());
}

TEST(RewriterTest, InferredInjectivityFiresConditionalRule) {
  // succ o neg is injective only via the inference rule.
  std::vector<Rule> all = AllCatalogRules();
  const Rule& inj = FindRule(all, "ext.injective-intersect");
  PropertyStore store = PropertyStore::Default();
  Rewriter rewriter(&store);
  TermPtr query = Q(
      "intersect o (iterate(Kp(T), succ o neg) x iterate(Kp(T), succ o "
      "neg))");
  EXPECT_TRUE(rewriter.ApplyAtRoot(inj, query).has_value());
}

TEST(TraceTest, ToStringShowsDerivation) {
  Rewriter rewriter;
  std::vector<Rule> rules = {MustRule("1", "?f o id", "?f")};
  Trace trace;
  auto result = rewriter.Fixpoint(rules, Q("age o id"), &trace);
  ASSERT_TRUE(result.ok());
  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("age o id"), std::string::npos);
  EXPECT_NE(rendered.find("--[1]-->"), std::string::npos);
}

TEST(PropertyStoreTest, FactsAndInference) {
  PropertyStore store = PropertyStore::Default();
  EXPECT_TRUE(store.Holds("injective", Id()));
  EXPECT_TRUE(store.Holds("injective", PrimFn("succ")));
  EXPECT_FALSE(store.Holds("injective", PrimFn("age")));
  // Chained inference: (succ o neg) o succ.
  EXPECT_TRUE(store.Holds(
      "injective",
      Compose(Compose(PrimFn("succ"), PrimFn("neg")), PrimFn("succ"))));
  // Pair with one injective component.
  EXPECT_TRUE(store.Holds("injective", PairFn(PrimFn("succ"),
                                              PrimFn("age"))));
  EXPECT_FALSE(store.Holds("injective", PairFn(PrimFn("age"),
                                               PrimFn("age"))));
  // Unknown property.
  EXPECT_FALSE(store.Holds("monotone", Id()));
}

TEST(PropertyStoreTest, DepthBoundTerminates) {
  PropertyStore store = PropertyStore::Default();
  // Build a compose chain deeper than the default bound.
  TermPtr chain = PrimFn("succ");
  for (int i = 0; i < 20; ++i) chain = Compose(chain, PrimFn("succ"));
  EXPECT_FALSE(store.Holds("injective", chain, /*max_depth=*/3));
  EXPECT_TRUE(store.Holds("injective", chain, /*max_depth=*/64));
}

}  // namespace
}  // namespace kola
