#include <gtest/gtest.h>

#include "rewrite/types.h"
#include "term/parser.h"

namespace kola {
namespace {

TermPtr Q(const char* text, Sort sort = Sort::kFunction) {
  auto t = ParseTerm(text, sort);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

TEST(TypeTest, ToStringAndEqual) {
  TypePtr t = Type::Set(Type::Pair(Type::Int(), Type::Class("Person")));
  EXPECT_EQ(t->ToString(), "set<pair<int, Person>>");
  EXPECT_TRUE(Type::Equal(t, Type::Set(Type::Pair(Type::Int(),
                                                  Type::Class("Person")))));
  EXPECT_FALSE(Type::Equal(t, Type::Set(Type::Int())));
  EXPECT_FALSE(Type::Equal(Type::Class("Person"), Type::Class("Vehicle")));
}

TEST(UnifyTest, BindsVariables) {
  TypeSubst subst;
  TypePtr v = Type::Var(0);
  ASSERT_TRUE(Unify(v, Type::Int(), &subst).ok());
  EXPECT_TRUE(Type::Equal(subst.Apply(v), Type::Int()));
}

TEST(UnifyTest, StructuralUnification) {
  TypeSubst subst;
  TypePtr lhs = Type::Pair(Type::Var(0), Type::Set(Type::Var(1)));
  TypePtr rhs = Type::Pair(Type::Int(), Type::Set(Type::Str()));
  ASSERT_TRUE(Unify(lhs, rhs, &subst).ok());
  EXPECT_TRUE(Type::Equal(subst.Apply(Type::Var(0)), Type::Int()));
  EXPECT_TRUE(Type::Equal(subst.Apply(Type::Var(1)), Type::Str()));
}

TEST(UnifyTest, ClashIsTypeError) {
  TypeSubst subst;
  EXPECT_EQ(Unify(Type::Int(), Type::Str(), &subst).code(),
            StatusCode::kTypeError);
  EXPECT_FALSE(Unify(Type::Pair(Type::Int(), Type::Int()),
                     Type::Set(Type::Int()), &subst)
                   .ok());
}

TEST(UnifyTest, OccursCheck) {
  TypeSubst subst;
  TypePtr v = Type::Var(0);
  EXPECT_FALSE(Unify(v, Type::Set(v), &subst).ok());
}

TEST(UnifyTest, TransitiveThroughSubst) {
  TypeSubst subst;
  ASSERT_TRUE(Unify(Type::Var(0), Type::Var(1), &subst).ok());
  ASSERT_TRUE(Unify(Type::Var(1), Type::Bool(), &subst).ok());
  EXPECT_TRUE(Type::Equal(subst.Apply(Type::Var(0)), Type::Bool()));
}

class InferTest : public ::testing::Test {
 protected:
  InferTest() : schema_(SchemaTypes::CarWorld()), inferencer_(&schema_) {}

  TermType MustInfer(const char* text, Sort sort) {
    auto type = inferencer_.Infer(Q(text, sort));
    EXPECT_TRUE(type.ok()) << type.status();
    return type.value();
  }

  SchemaTypes schema_;
  TypeInferencer inferencer_;
};

TEST_F(InferTest, SchemaPrimitives) {
  TermType age = MustInfer("age", Sort::kFunction);
  EXPECT_TRUE(Type::Equal(age.from, Type::Class("Person")));
  EXPECT_TRUE(Type::Equal(age.to, Type::Int()));
}

TEST_F(InferTest, ComposePropagates) {
  TermType t = MustInfer("city o addr", Sort::kFunction);
  EXPECT_TRUE(Type::Equal(t.from, Type::Class("Person")));
  EXPECT_TRUE(Type::Equal(t.to, Type::Str()));
}

TEST_F(InferTest, IterateOverExtent) {
  TermType t = MustInfer("iterate(Kp(T), age) ! P", Sort::kObject);
  EXPECT_TRUE(Type::Equal(t.to, Type::Set(Type::Int())));
}

TEST_F(InferTest, ProjectionsConstrainPairs) {
  TermType t = MustInfer("gt @ (age o pi1, age o pi2)", Sort::kPredicate);
  EXPECT_TRUE(Type::Equal(
      t.from, Type::Pair(Type::Class("Person"), Type::Class("Person"))));
}

TEST_F(InferTest, GarageQueryTypes) {
  TermType t = MustInfer(
      "iterate(Kp(T), (id, flat o iter(Kp(T), grgs o pi2) o (id, "
      "iter(in @ (pi1, cars o pi2), pi2) o (id, Kf(P))))) ! V",
      Sort::kObject);
  // set<pair<Vehicle, set<Address>>>
  EXPECT_EQ(t.to->ToString(), "set<pair<Vehicle, set<Address>>>");
}

TEST_F(InferTest, IllTypedQueryIsError) {
  // age of an address.
  auto bad = inferencer_.Infer(Q("age o addr", Sort::kFunction));
  EXPECT_FALSE(bad.ok());
}

TEST_F(InferTest, UnknownPrimitiveIsNotFound) {
  auto bad = inferencer_.Infer(Q("salary", Sort::kFunction));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST_F(InferTest, MetaVarsGetConsistentTypes) {
  // In iterate(?p, ?f) o iterate(?q, ?g), ?p ranges over ?g's result... no:
  // ?p applies to ?f's domain which equals ?g's codomain element type.
  TermType t = MustInfer("iterate(?p, ?f) o iterate(?q, ?g)",
                         Sort::kFunction);
  auto vars = inferencer_.MetaVarTypes();
  ASSERT_EQ(vars.count("p"), 1u);
  ASSERT_EQ(vars.count("f"), 1u);
  // ?p's argument type must equal ?f's domain.
  EXPECT_TRUE(Type::Equal(inferencer_.Resolve(vars["p"].from),
                          inferencer_.Resolve(vars["f"].from)));
  // ?g's codomain must equal ?f's domain.
  EXPECT_TRUE(Type::Equal(inferencer_.Resolve(vars["g"].to),
                          inferencer_.Resolve(vars["f"].from)));
  // The whole thing maps sets to sets.
  EXPECT_EQ(t.from->tag(), TypeTag::kSet);
  EXPECT_EQ(t.to->tag(), TypeTag::kSet);
}

TEST_F(InferTest, MetaVarReuseUnifies) {
  // ?f used twice: the pair former forces both uses to one type.
  (void)MustInfer("(?f, ?f o succ)", Sort::kFunction);
  auto vars = inferencer_.MetaVarTypes();
  EXPECT_TRUE(Type::Equal(inferencer_.Resolve(vars["f"].from), Type::Int()));
}

TEST_F(InferTest, SetOperatorsAreGeneric) {
  TermType t = MustInfer("intersect o (iterate(Kp(T), age) x "
                         "iterate(Kp(T), age))",
                         Sort::kFunction);
  EXPECT_EQ(t.to->ToString(), "set<int>");
}

TEST_F(InferTest, NestAndUnnestShapes) {
  TermType nest = MustInfer("nest(pi1, pi2)", Sort::kFunction);
  EXPECT_EQ(nest.from->tag(), TypeTag::kPair);
  TermType unnest = MustInfer("unnest(pi1, pi2)", Sort::kFunction);
  EXPECT_EQ(unnest.from->tag(), TypeTag::kSet);
  // unnest(pi1, pi2) requires pairs whose second component is a set.
  TypePtr element = unnest.from->element();
  EXPECT_EQ(element->tag(), TypeTag::kPair);
  EXPECT_EQ(element->second()->tag(), TypeTag::kSet);
}

}  // namespace
}  // namespace kola
