// Schema independence: the same rules, strategies, translator, verifier
// and optimizer run unchanged against a second schema (Dept/Emp/Proj).
// Nothing in the pipeline knows about car-world names.

#include <gtest/gtest.h>

#include "aqua/eval.h"
#include "aqua/parser.h"
#include "eval/evaluator.h"
#include "oql/oql.h"
#include "optimizer/hidden_join.h"
#include "optimizer/optimizer.h"
#include "rewrite/verifier.h"
#include "rules/catalog.h"
#include "translate/translate.h"
#include "values/company_world.h"

namespace kola {
namespace {

class CompanyTest : public ::testing::Test {
 protected:
  CompanyTest() : schema_(SchemaTypes::CompanyWorld()) {
    CompanyWorldOptions options;
    options.num_departments = 5;
    options.num_employees = 30;
    options.num_projects = 8;
    options.seed = 3;
    db_ = BuildCompanyWorld(options);
  }

  Value Eval(const TermPtr& query) {
    auto v = EvalQuery(*db_, query);
    EXPECT_TRUE(v.ok()) << v.status();
    return v.ok() ? std::move(v).value() : Value::Null();
  }

  SchemaTypes schema_;
  std::unique_ptr<Database> db_;
};

TEST_F(CompanyTest, WorldIsWellFormed) {
  EXPECT_EQ(db_->Extent("D").value().SetSize(), 5u);
  EXPECT_EQ(db_->Extent("E").value().SetSize(), 30u);
  EXPECT_EQ(db_->Extent("Proj").value().SetSize(), 8u);
  for (const Value& e : db_->Extent("E").value().elements()) {
    EXPECT_TRUE(db_->GetAttribute(e, "salary").value().is_int());
    EXPECT_TRUE(db_->GetAttribute(e, "dept").value().is_object());
    EXPECT_TRUE(db_->GetAttribute(e, "skills").value().is_set());
  }
}

TEST_F(CompanyTest, TranslationAndEvaluationAgree) {
  const char* corpus[] = {
      "select e.ename from e in E where e.salary > 100000",
      "select [d.dname, d.head.ename] from d in D",
      "select e from p in Proj, e in p.members where e.salary > 50000",
      "select [e, d] from e in E, d in D where e.dept == d",
  };
  Translator translator;
  aqua::AquaEvaluator reference(db_.get());
  for (const char* text : corpus) {
    auto lowered = oql::ParseOql(text);
    ASSERT_TRUE(lowered.ok()) << lowered.status();
    auto term = translator.TranslateQuery(lowered.value());
    ASSERT_TRUE(term.ok()) << term.status() << "\n" << text;
    auto expected = reference.EvalQuery(lowered.value());
    ASSERT_TRUE(expected.ok()) << expected.status();
    EXPECT_EQ(expected.value(), Eval(term.value())) << text;
  }
}

TEST_F(CompanyTest, HiddenJoinUntanglesOnCompanySchema) {
  // "Each department with the skills available in it" -- the garage-query
  // shape over a completely different schema, with an equality join
  // condition instead of set membership.
  auto lowered = aqua::ParseAqua(
      "app(\\d. [d, flatten(app(\\e. e.skills)(sel(\\e. e.dept == d)"
      "(E)))])(D)");
  ASSERT_TRUE(lowered.ok());
  Translator translator;
  auto query = translator.TranslateQuery(lowered.value());
  ASSERT_TRUE(query.ok()) << query.status();

  Rewriter rewriter;
  auto result = UntangleHiddenJoin(query.value(), rewriter);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converted) << result->query->ToString();
  EXPECT_EQ(Eval(query.value()), Eval(result->query))
      << result->query->ToString();

  // The final form is nest-of-join over [D, E].
  EXPECT_NE(result->query->ToString().find("nest(pi1, pi2)"),
            std::string::npos);
  EXPECT_NE(result->query->ToString().find("join("), std::string::npos);
}

TEST_F(CompanyTest, VerifierRunsAgainstCompanySchema) {
  // The typed verifier grounds class types in whatever schema it is
  // handed; spot-check a few catalog rules against company world.
  VerifyOptions options;
  options.trials = 100;
  std::vector<Rule> all = AllCatalogRules();
  for (const char* id : {"11", "13", "20", "ext.select-into-join"}) {
    auto outcome = VerifyRule(FindRule(all, id), *db_, schema_, options);
    ASSERT_TRUE(outcome.ok()) << id << ": " << outcome.status();
    EXPECT_TRUE(outcome->sound()) << id << ": " << outcome->Summary();
  }
}

TEST_F(CompanyTest, EndToEndOptimizerOnCompanyQueries) {
  PropertyStore properties = PropertyStore::Default();
  Optimizer optimizer(&properties, db_.get());
  Translator translator;
  const char* corpus[] = {
      "select e.ename from e in E where e.salary > 150000",
      "select [e, d] from e in E, d in D where e.dept == d and "
      "e.salary > 60000",
  };
  for (const char* text : corpus) {
    auto lowered = oql::ParseOql(text);
    ASSERT_TRUE(lowered.ok());
    auto query = translator.TranslateQuery(lowered.value());
    ASSERT_TRUE(query.ok());
    auto plan = optimizer.Optimize(query.value());
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_EQ(Eval(query.value()), Eval(plan->query))
        << plan->query->ToString();
  }
}

TEST_F(CompanyTest, SchemaSpecificPropertyFacts) {
  // Declare ename a key; inference composes it with other injectives.
  PropertyStore store = PropertyStore::Default();
  store.AddFact("injective", PrimFn("ename"));
  EXPECT_TRUE(store.Holds("injective", PrimFn("ename")));
  EXPECT_TRUE(store.Holds(
      "injective", Compose(PrimFn("succ"), PrimFn("salary"))) == false);
  EXPECT_TRUE(store.Holds(
      "injective", PairFn(PrimFn("ename"), PrimFn("salary"))));
}

}  // namespace
}  // namespace kola
