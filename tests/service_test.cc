// The kolad service stack: PlanCache (deterministic second-chance
// eviction, catalog-version and rule-fingerprint invalidation, concurrent
// hit/miss hammering), OptimizationService (tier mapping, cache fill and
// byte-identical warm hits, parse errors as statuses, admission shedding,
// the line protocol), and SocketServer end to end over a real socket.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/parse_number.h"
#include "common/random.h"
#include "common/string_util.h"
#include "rewrite/properties.h"
#include "service/plan_cache.h"
#include "service/plan_cache_io.h"
#include "service/replication.h"
#include "service/server.h"
#include "service/service.h"
#include "term/intern.h"
#include "term/parser.h"
#include "term/term.h"
#include "values/car_world.h"

namespace kola {
namespace {

TermPtr Q(const char* text) {
  auto t = ParseTerm(text, Sort::kFunction);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

PlanCacheKey Key(TermId id, uint64_t rules = 7, uint64_t version = 1) {
  return PlanCacheKey{id, rules, version};
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, LookupMissThenHit) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.Lookup(Key(1)).has_value());
  cache.Insert(Key(1), Q("age"), "plan-1");
  auto hit = cache.Lookup(Key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "plan-1");
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0);
}

TEST(PlanCacheTest, EveryKeyLimbDiscriminates) {
  PlanCache cache(8);
  cache.Insert(Key(1, 7, 1), Q("age"), "base");
  // Same query id under a different rule fingerprint or catalog version is
  // a different plan.
  EXPECT_FALSE(cache.Lookup(Key(1, 8, 1)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(1, 7, 2)).has_value());
  EXPECT_FALSE(cache.Lookup(Key(2, 7, 1)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(1, 7, 1)).has_value());
}

TEST(PlanCacheTest, CapacityBoundHoldsAndEvictionIsDeterministic) {
  // Two identical operation sequences must produce identical hit/miss/evict
  // traces: eviction is a pure function of the probe/insert order.
  auto run = [](std::vector<uint64_t>* trace) {
    PlanCache cache(3);
    for (uint64_t i = 1; i <= 3; ++i) {
      cache.Insert(Key(i), Q("age"), "p" + std::to_string(i));
    }
    // Touch 1 and 2: their second-chance bits protect them, so the hand
    // must pass them (clearing bits) and take 3.
    EXPECT_TRUE(cache.Lookup(Key(1)).has_value());
    EXPECT_TRUE(cache.Lookup(Key(2)).has_value());
    cache.Insert(Key(4), Q("age"), "p4");
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_FALSE(cache.Lookup(Key(3)).has_value());  // the victim
    EXPECT_TRUE(cache.Lookup(Key(4)).has_value());
    // Next eviction: every bit was cleared by the sweep except 1/2/4's
    // fresh touches above; the hand's position decides, identically.
    cache.Insert(Key(5), Q("age"), "p5");
    for (uint64_t i = 1; i <= 5; ++i) {
      trace->push_back(cache.Lookup(Key(i)).has_value() ? 1 : 0);
    }
    PlanCacheStats stats = cache.stats();
    trace->push_back(stats.evictions);
    trace->push_back(stats.entries);
  };
  std::vector<uint64_t> first, second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.back(), 3u);  // capacity bound held
}

TEST(PlanCacheTest, ReinsertReplacesInPlace) {
  PlanCache cache(2);
  cache.Insert(Key(1), Q("age"), "old");
  cache.Insert(Key(1), Q("age"), "new");
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(Key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "new");
  EXPECT_EQ(cache.stats().insertions, 1u);  // replacement is not a new entry
}

TEST(PlanCacheTest, ClearDropsEverythingAndCountsEvictions) {
  PlanCache cache(8);
  cache.Insert(Key(1), Q("age"), "a");
  cache.Insert(Key(2), Q("age"), "b");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(Key(1)).has_value());
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.bytes, 0);
}

TEST(PlanCacheTest, ZeroCapacityIsUnbounded) {
  PlanCache cache(0);
  for (uint64_t i = 1; i <= 100; ++i) {
    cache.Insert(Key(i), Q("age"), "p");
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(PlanCacheTest, EntriesExposesLiveSlots) {
  PlanCache cache(4);
  cache.Insert(Key(1), Q("age"), "p1");
  cache.Insert(Key(2), Q("name"), "p2");
  std::vector<PlanCacheEntry> entries = cache.Entries();
  ASSERT_EQ(entries.size(), 2u);
  for (const PlanCacheEntry& e : entries) {
    ASSERT_NE(e.term, nullptr);
    EXPECT_EQ(e.payload, "p" + std::to_string(e.key.query_id));
  }
  cache.Clear();
  EXPECT_TRUE(cache.Entries().empty());
}

TEST(PlanCacheTest, ConcurrentHitMissHammering) {
  // Correctness under concurrency (run under TSan in CI): many threads
  // racing lookups and inserts over a small hot key range; every returned
  // payload must be exactly the payload some thread inserted for that key,
  // and the capacity bound must hold throughout.
  PlanCache cache(16);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  constexpr uint64_t kKeyRange = 48;  // 3x capacity: constant eviction
  std::atomic<int> bad_payloads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TermPtr term = Q("age");
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t id = 1 + (static_cast<uint64_t>(t) * 31 + i) % kKeyRange;
        if (auto hit = cache.Lookup(Key(id))) {
          if (*hit != "plan-" + std::to_string(id)) bad_payloads.fetch_add(1);
        } else {
          cache.Insert(Key(id), term, "plan-" + std::to_string(id));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad_payloads.load(), 0);
  EXPECT_LE(cache.size(), 16u);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, cache.size());
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

// ---------------------------------------------------------------------------
// OptimizationService
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CarWorldOptions world;
    world.num_persons = 12;
    world.num_vehicles = 8;
    world.num_addresses = 6;
    world.seed = 1;
    db_ = BuildCarWorld(world);
    properties_ = PropertyStore::Default();
  }

  ServiceRequest Oql(const std::string& text, const std::string& tier = "gold",
                     bool bypass = false) {
    ServiceRequest request;
    request.tier = tier;
    request.language = QueryLanguage::kOql;
    request.text = text;
    request.bypass_cache = bypass;
    return request;
  }

  std::unique_ptr<Database> db_;
  PropertyStore properties_ = PropertyStore::Default();
};

TEST_F(ServiceTest, ColdMissThenWarmHitIsByteIdentical) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  const std::string query = "select p.name from p in P where p.age > 25";

  ServiceResponse cold = service.Handle(Oql(query));
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_FALSE(cold.payload.empty());

  ServiceResponse warm = service.Handle(Oql(query));
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.payload, cold.payload);

  // The F verb bypasses the cache; a fresh optimization must serialize to
  // the exact same bytes the cache replays.
  ServiceResponse fresh = service.Handle(Oql(query, "gold", true));
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.payload, cold.payload);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.insertions, 1u);
}

TEST_F(ServiceTest, StructurallyEqualQueriesShareOneCacheEntry) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  // Different surface text, same shape after parsing.
  ServiceResponse a =
      service.Handle(Oql("select p.name from p in P where p.age > 25"));
  ServiceResponse b =
      service.Handle(Oql("select  p.name  from p in P where p.age > 25"));
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_FALSE(a.cache_hit);
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(service.stats().cache.entries, 1u);
}

TEST_F(ServiceTest, BumpInvalidatesAndReoptimizesIdentically) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  const std::string query = "select p.age from p in P";
  ServiceResponse before = service.Handle(Oql(query));
  ASSERT_TRUE(before.status.ok());
  ASSERT_TRUE(service.Handle(Oql(query)).cache_hit);

  uint64_t version = service.BumpCatalogVersion();
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(service.stats().cache.entries, 0u);

  // Post-bump: a miss (the old entry is unreachable under the new
  // version), then a refill; the catalog did not actually change, so the
  // plan itself is reproduced byte for byte.
  ServiceResponse after = service.Handle(Oql(query));
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.payload, before.payload);
  EXPECT_TRUE(service.Handle(Oql(query)).cache_hit);
}

TEST_F(ServiceTest, RuleFingerprintIsAKeyLimb) {
  // Two services over the same world agree on the fingerprint (it is a
  // stable hash of the rule catalog), and the fingerprint participates in
  // every key, so a hypothetical rule-set change orphans all entries.
  OptimizationService a(db_.get(), &properties_, ServiceOptions{});
  OptimizationService b(db_.get(), &properties_, ServiceOptions{});
  EXPECT_NE(a.rule_fingerprint(), 0u);
  EXPECT_EQ(a.rule_fingerprint(), b.rule_fingerprint());
}

TEST_F(ServiceTest, ParseErrorsAreStatusesNotCrashes) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  // Malformed OQL, malformed KOLA, an overlong integer literal (the
  // guarded std::stoll paths), and an unknown tier.
  ServiceResponse r1 = service.Handle(Oql("select from where"));
  EXPECT_FALSE(r1.status.ok());
  ServiceRequest bad_kola;
  bad_kola.tier = "gold";
  bad_kola.language = QueryLanguage::kKola;
  bad_kola.text = "iterate((((";
  EXPECT_FALSE(service.Handle(bad_kola).status.ok());
  ServiceResponse r2 = service.Handle(
      Oql("select p from p in P where p.age > 99999999999999999999"));
  EXPECT_FALSE(r2.status.ok());
  EXPECT_EQ(r2.status.code(), StatusCode::kInvalidArgument);
  ServiceResponse r3 =
      service.Handle(Oql("select p from p in P", "platinum"));
  EXPECT_FALSE(r3.status.ok());
  EXPECT_EQ(service.stats().parse_errors, 3u);
}

TEST_F(ServiceTest, UnknownTierAndDisabledCache) {
  ServiceOptions options;
  options.cache_enabled = false;
  OptimizationService service(db_.get(), &properties_, options);
  const std::string query = "select p.age from p in P";
  ServiceResponse first = service.Handle(Oql(query));
  ServiceResponse second = service.Handle(Oql(query));
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(first.payload, second.payload);  // still deterministic
  EXPECT_EQ(service.stats().cache.insertions, 0u);
}

TEST_F(ServiceTest, TiersMapToGovernorEnvelopes) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  // A bronze request runs under a tight envelope but still answers (shed
  // by degradation, never an error); gold's generous envelope stays clean.
  ServiceResponse bronze = service.Handle(
      Oql("select [v, p] from v in V, p in P where v in p.cars", "bronze"));
  ASSERT_TRUE(bronze.status.ok()) << bronze.status.ToString();
  ServiceResponse gold = service.Handle(
      Oql("select [v, p] from v in V, p in P where v in p.cars", "gold"));
  ASSERT_TRUE(gold.status.ok());
  EXPECT_FALSE(gold.degraded);
  EXPECT_NE(bronze.payload, "");
}

TEST_F(ServiceTest, DegradedResultsAreNeverCached) {
  // A tier whose budget is hopeless degrades every time; the cache must
  // not serve attempt 1's degraded plan to attempt 2.
  ServiceOptions options;
  options.tiers = {TierPolicy{.name = "tiny",
                              .deadline_ms = 0,
                              .step_budget = 0,
                              .memory_budget_bytes = 1,
                              .max_attempts = 1}};
  OptimizationService service(db_.get(), &properties_, options);
  const std::string query = "select p.name from p in P where p.age > 25";
  ServiceResponse first = service.Handle(Oql(query, "tiny"));
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ServiceResponse second = service.Handle(Oql(query, "tiny"));
  ASSERT_TRUE(second.status.ok());
  if (first.degraded) {
    EXPECT_FALSE(second.cache_hit);
    EXPECT_EQ(service.stats().cache.insertions, 0u);
  }
}

TEST_F(ServiceTest, AdmissionControlShedsInsteadOfQueuing) {
  ServiceOptions options;
  options.jobs = 1;
  options.max_inflight = 1;
  OptimizationService service(db_.get(), &properties_, options);
  constexpr int kThreads = 8;
  std::atomic<int> ok{0}, shed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ServiceRequest request;
      request.tier = "gold";
      request.language = QueryLanguage::kOql;
      request.text = "select p.name from p in P where p.age > " +
                     std::to_string(20 + t);
      ServiceResponse response = service.Handle(request);
      if (response.shed) {
        EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
        shed.fetch_add(1);
      } else if (response.status.ok()) {
        ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load() + shed.load(), kThreads);
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(service.stats().shed, static_cast<uint64_t>(shed.load()));
}

TEST_F(ServiceTest, ConcurrentMixedTrafficIsCrashFreeAndConsistent) {
  // TSan target: hammer one service instance from many threads mixing warm
  // shapes, cold shapes, parse errors and catalog bumps.
  ServiceOptions options;
  options.jobs = 3;
  options.cache_capacity = 8;
  OptimizationService service(db_.get(), &properties_, options);
  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        if (t == 0 && i % 10 == 9) {
          service.BumpCatalogVersion();
          continue;
        }
        if (i % 7 == 6) {
          ServiceResponse bad = service.Handle(Oql("select nonsense ((("));
          if (bad.status.ok()) failures.fetch_add(1);
          continue;
        }
        ServiceResponse response = service.Handle(
            Oql("select p.name from p in P where p.age > " +
                std::to_string(20 + (t * 25 + i) % 12)));
        if (!response.status.ok() || response.payload.empty()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ServiceStats stats = service.stats();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.parse_errors, 0u);
}

TEST_F(ServiceTest, HandleLineProtocol) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  EXPECT_EQ(service.HandleLine("PING"), "OK pong");
  EXPECT_EQ(service.HandleLine("BUMP"), "OK version=2");

  std::string cold =
      service.HandleLine("Q gold oql select p.age from p in P");
  ASSERT_EQ(cold.rfind("OK 0 ", 0), 0u) << cold;
  std::string warm =
      service.HandleLine("Q gold oql select p.age from p in P");
  ASSERT_EQ(warm.rfind("OK 1 ", 0), 0u) << warm;
  // Identical payload after the latency header.
  EXPECT_EQ(cold.substr(cold.find('\t')), warm.substr(warm.find('\t')));

  EXPECT_EQ(service.HandleLine("NOPE x").rfind("ERR ", 0), 0u);
  EXPECT_EQ(service.HandleLine("Q gold").rfind("ERR ", 0), 0u);
  EXPECT_EQ(service.HandleLine("Q gold klingon x").rfind("ERR ", 0), 0u);
  EXPECT_EQ(service.HandleLine("Q gold oql ").rfind("ERR ", 0), 0u);
  EXPECT_EQ(service.HandleLine("").rfind("ERR ", 0), 0u);

  std::string stats = service.HandleLine("STATS");
  EXPECT_NE(stats.find("S requests "), std::string::npos);
  EXPECT_NE(stats.find("S cache hits="), std::string::npos);
  EXPECT_NE(stats.find("S latency gold "), std::string::npos);
  EXPECT_EQ(stats.rfind("OK stats"), stats.size() - 8);
}

// ---------------------------------------------------------------------------
// Latency histogram buckets
// ---------------------------------------------------------------------------

TEST(LatencyBucketTest, BoundariesAndSaturation) {
  // Clock artifacts and the sub-microsecond floor both land in bucket 0.
  EXPECT_EQ(LatencyBucket(-5), 0);
  EXPECT_EQ(LatencyBucket(0), 0);
  EXPECT_EQ(LatencyBucket(1), 0);

  // Exact powers of two open their own bucket; one below stays behind.
  for (int k = 1; k < LatencyHistogram::kBuckets; ++k) {
    const int64_t pow2 = int64_t{1} << k;
    EXPECT_EQ(LatencyBucket(pow2), k) << "2^" << k;
    EXPECT_EQ(LatencyBucket(pow2 - 1), k - 1) << "2^" << k << " - 1";
    EXPECT_EQ(LatencyBucket(pow2 + 1), k) << "2^" << k << " + 1";
  }

  // Beyond the last bucket everything saturates instead of indexing out
  // of bounds.
  const int top = LatencyHistogram::kBuckets - 1;
  EXPECT_EQ(LatencyBucket(int64_t{1} << LatencyHistogram::kBuckets), top);
  EXPECT_EQ(LatencyBucket(std::numeric_limits<int64_t>::max()), top);
}

// ---------------------------------------------------------------------------
// Crash paths: adversarially deep queries over the protocol
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, DeepNestedQueryLineIsAnErrorNotACrash) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});

  // ~60k-deep paren towers in both network-facing front ends: well under
  // the 1 MiB line cap, far over the parser nesting guard. The daemon must
  // answer ERR RESOURCE_EXHAUSTED and keep serving.
  std::string deep_oql = "Q gold oql select x from x in C where ";
  deep_oql += std::string(60'000, '(');
  deep_oql += "true";
  deep_oql += std::string(60'000, ')');
  std::string response = service.HandleLine(deep_oql);
  EXPECT_EQ(response.rfind("ERR ", 0), 0u) << response.substr(0, 120);
  EXPECT_NE(response.find("RESOURCE_EXHAUSTED"), std::string::npos)
      << response.substr(0, 120);

  std::string deep_aqua = "Q gold aqua ";
  deep_aqua += std::string(60'000, '(');
  deep_aqua += "1";
  deep_aqua += std::string(60'000, ')');
  response = service.HandleLine(deep_aqua);
  EXPECT_EQ(response.rfind("ERR ", 0), 0u) << response.substr(0, 120);
  EXPECT_NE(response.find("RESOURCE_EXHAUSTED"), std::string::npos)
      << response.substr(0, 120);

  std::string deep_kola = "Q gold kola ";
  for (int i = 0; i < 60'000; ++i) deep_kola += "Kf(";
  deep_kola += "id";
  deep_kola += std::string(60'000, ')');
  response = service.HandleLine(deep_kola);
  EXPECT_EQ(response.rfind("ERR ", 0), 0u) << response.substr(0, 120);
  EXPECT_NE(response.find("RESOURCE_EXHAUSTED"), std::string::npos)
      << response.substr(0, 120);

  // The process survived; normal service continues and the failures were
  // accounted as parse errors.
  EXPECT_EQ(service.HandleLine("PING"), "OK pong");
  std::string ok = service.HandleLine("Q gold oql select p.age from p in P");
  EXPECT_EQ(ok.rfind("OK ", 0), 0u) << ok.substr(0, 120);
  EXPECT_EQ(service.stats().parse_errors, 3u);
}

// ---------------------------------------------------------------------------
// E-graph counters in STATS
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, EgraphCountersSurfaceInStats) {
  // KOLA_EGRAPH is read at Optimizer construction (RewriterOptions
  // ::Defaults), so set it around service construction only.
  ::setenv("KOLA_EGRAPH", "1", 1);
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  ::unsetenv("KOLA_EGRAPH");

  ServiceResponse r =
      service.Handle(Oql("select p.name from p in P where p.age > 25"));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();

  ServiceStats stats = service.stats();
  EXPECT_GE(stats.egraph_runs, 1u);
  EXPECT_GT(stats.egraph_nodes, 0u);
  EXPECT_GT(stats.egraph_classes, 0u);

  std::string text = service.StatsText();
  EXPECT_NE(text.find("S egraph runs="), std::string::npos) << text;

  // A service without the gate reports all-zero egraph counters.
  OptimizationService plain(db_.get(), &properties_, ServiceOptions{});
  ASSERT_TRUE(plain.Handle(Oql("select p.age from p in P")).status.ok());
  EXPECT_EQ(plain.stats().egraph_runs, 0u);
  EXPECT_NE(plain.StatsText().find("S egraph runs=0 "), std::string::npos);
}

// ---------------------------------------------------------------------------
// SocketServer end to end
// ---------------------------------------------------------------------------

class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }
  int fd() const { return fd_; }

  /// Raw bytes, no newline appended: for framing / slow-loris tests.
  bool SendRaw(const std::string& bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  bool Send(const std::string& line) {
    std::string framed = line + "\n";
    return ::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(framed.size());
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

TEST_F(ServiceTest, SocketServerEndToEnd) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  SocketServer server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string line;

  ASSERT_TRUE(client.Send("PING"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "OK pong");

  ASSERT_TRUE(client.Send("Q gold oql select p.age from p in P"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line.rfind("OK 0 ", 0), 0u) << line;

  ASSERT_TRUE(client.Send("Q gold oql select p.age from p in P"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line.rfind("OK 1 ", 0), 0u) << line;

  // Malformed input over the wire: an error line, never a dropped
  // connection or a crash.
  ASSERT_TRUE(client.Send("Q gold oql select ((("));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;

  // An adversarially deep query over the live socket: the nesting guard
  // answers RESOURCE_EXHAUSTED and the connection stays up.
  std::string deep = "Q gold oql select x from x in C where ";
  deep += std::string(60'000, '(');
  deep += "true";
  deep += std::string(60'000, ')');
  ASSERT_TRUE(client.Send(deep));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line.substr(0, 120);
  EXPECT_NE(line.find("RESOURCE_EXHAUSTED"), std::string::npos)
      << line.substr(0, 120);
  ASSERT_TRUE(client.Send("PING"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "OK pong");

  ASSERT_TRUE(client.Send("STATS"));
  bool saw_stats_line = false;
  for (;;) {
    ASSERT_TRUE(client.ReadLine(&line));
    if (line.rfind("S ", 0) == 0) saw_stats_line = true;
    if (line.rfind("OK", 0) == 0 || line.rfind("ERR", 0) == 0) break;
  }
  EXPECT_TRUE(saw_stats_line);
  EXPECT_EQ(line, "OK stats");

  // A second concurrent client works while the first is connected.
  {
    TestClient other(server.port());
    ASSERT_TRUE(other.connected());
    ASSERT_TRUE(other.Send("Q gold oql select p.age from p in P"));
    ASSERT_TRUE(other.ReadLine(&line));
    EXPECT_EQ(line.rfind("OK 1 ", 0), 0u) << line;  // shares the cache
    ASSERT_TRUE(other.Send("QUIT"));
    ASSERT_TRUE(other.ReadLine(&line));
    EXPECT_EQ(line, "OK bye");
  }

  // SHUTDOWN stops the daemon: Wait() returns and Stop() joins cleanly.
  ASSERT_TRUE(client.Send("SHUTDOWN"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "OK shutting down");
  server.Wait();
  server.Stop();
  EXPECT_GE(server.connections_served(), 2u);
}

// ---------------------------------------------------------------------------
// Snapshot codec (plan_cache_io)
// ---------------------------------------------------------------------------

PlanSnapshot ThreeEntrySnapshot() {
  PlanSnapshot snapshot;
  snapshot.rule_fingerprint = 0xfeedfacecafebeefULL;
  snapshot.catalog_version = 3;
  for (int i = 0; i < 3; ++i) {
    PlanSnapshotEntry entry;
    entry.catalog_version = 3;
    entry.term_text = "iterate(shape" + std::to_string(i) + ")";
    entry.payload = "payload-" + std::to_string(i) + "\twith\ttabs";
    snapshot.entries.push_back(entry);
  }
  return snapshot;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "kola_" + name + "_" +
         std::to_string(::getpid()) + ".snap";
}

TEST(PlanCacheIoTest, EncodeDecodeRoundTrip) {
  PlanSnapshot original = ThreeEntrySnapshot();
  SnapshotReadReport report;
  PlanSnapshot decoded = DecodePlanSnapshot(EncodePlanSnapshot(original),
                                            &report);
  EXPECT_TRUE(report.header_ok);
  EXPECT_TRUE(report.trailer_ok);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(report.entries_read, 3u);
  EXPECT_EQ(decoded.rule_fingerprint, original.rule_fingerprint);
  EXPECT_EQ(decoded.catalog_version, original.catalog_version);
  ASSERT_EQ(decoded.entries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.entries[i].catalog_version,
              original.entries[i].catalog_version);
    EXPECT_EQ(decoded.entries[i].term_text, original.entries[i].term_text);
    EXPECT_EQ(decoded.entries[i].payload, original.entries[i].payload);
  }
}

TEST(PlanCacheIoTest, GarbageHeaderIsColdStartWithASkip) {
  for (const char* garbage :
       {"", "not a snapshot at all\n", "KOLASNAP 9 fp=zz version=x\n",
        "KOLASNAP 1 fp=0123 version=1\n" /* missing entries= field */}) {
    SnapshotReadReport report;
    PlanSnapshot decoded = DecodePlanSnapshot(garbage, &report);
    EXPECT_FALSE(report.header_ok) << garbage;
    EXPECT_GE(report.skipped, 1u) << garbage;
    EXPECT_TRUE(decoded.entries.empty()) << garbage;
  }
}

TEST(PlanCacheIoTest, TruncationKeepsValidatedPrefixAndCountsTheRest) {
  std::string encoded = EncodePlanSnapshot(ThreeEntrySnapshot());
  // Every proper prefix decodes without crashing, never yields more than
  // the entries whose checksums validated, and always reports at least one
  // skip (a truncated file must never look pristine).
  for (size_t cut = 0; cut < encoded.size(); cut += 7) {
    SnapshotReadReport report;
    PlanSnapshot decoded = DecodePlanSnapshot(encoded.substr(0, cut), &report);
    EXPECT_LE(decoded.entries.size(), 3u);
    EXPECT_GE(report.skipped, 1u) << "cut=" << cut;
    EXPECT_FALSE(report.trailer_ok) << "cut=" << cut;
  }
}

TEST(PlanCacheIoTest, BitFlipSkipsOnlyTheDamagedEntry) {
  PlanSnapshot original = ThreeEntrySnapshot();
  std::string encoded = EncodePlanSnapshot(original);
  // Corrupt one payload byte of the middle entry: same length, wrong
  // checksum. Framing survives, so entries 0 and 2 still restore.
  size_t at = encoded.find("payload-1");
  ASSERT_NE(at, std::string::npos);
  encoded[at + 8] ^= 0x20;
  SnapshotReadReport report;
  PlanSnapshot decoded = DecodePlanSnapshot(encoded, &report);
  EXPECT_TRUE(report.header_ok);
  EXPECT_FALSE(report.trailer_ok);  // the file checksum no longer matches
  EXPECT_EQ(report.skipped, 1u);
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.entries[0].payload, original.entries[0].payload);
  EXPECT_EQ(decoded.entries[1].payload, original.entries[2].payload);
}

TEST(PlanCacheIoTest, FileRoundTripAndMissingFile) {
  const std::string path = TempPath("io_roundtrip");
  PlanSnapshot original = ThreeEntrySnapshot();
  ASSERT_TRUE(WritePlanSnapshotFile(path, original).ok());
  SnapshotReadReport report;
  StatusOr<PlanSnapshot> loaded = ReadPlanSnapshotFile(path, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(report.trailer_ok);
  EXPECT_EQ(loaded.value().entries.size(), 3u);
  std::remove(path.c_str());

  StatusOr<PlanSnapshot> missing = ReadPlanSnapshotFile(path, nullptr);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Service snapshot/restore
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, SnapshotRestoreServesByteIdenticalWarmHits) {
  const std::string path = TempPath("restore_identity");
  const std::vector<std::string> queries = {
      "select p.name from p in P where p.age > 25",
      "select p.age from p in P",
      "select c.name from p in P, c in p.child where c.age > 12",
  };
  std::vector<std::string> cold_payloads;
  {
    OptimizationService service(db_.get(), &properties_, ServiceOptions{});
    for (const std::string& q : queries) {
      ServiceResponse r = service.Handle(Oql(q));
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      cold_payloads.push_back(r.payload);
    }
    ASSERT_TRUE(service.SaveSnapshot(path).ok());
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.snapshot_writes, 1u);
    EXPECT_EQ(stats.snapshot_last_entries, 3u);
  }

  // A brand-new service (fresh interner, fresh TermIds) restores the
  // snapshot and serves every shape warm -- and byte-identical both to the
  // pre-crash payloads and to its own fresh optimization.
  OptimizationService revived(db_.get(), &properties_, ServiceOptions{});
  SnapshotRestoreReport report = revived.RestoreSnapshot(path);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.restored, 3u);
  EXPECT_EQ(report.skipped, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    ServiceResponse warm = revived.Handle(Oql(queries[i]));
    ASSERT_TRUE(warm.status.ok());
    EXPECT_TRUE(warm.cache_hit) << queries[i];
    EXPECT_EQ(warm.payload, cold_payloads[i]);
    ServiceResponse fresh = revived.Handle(Oql(queries[i], "gold", true));
    ASSERT_TRUE(fresh.status.ok());
    EXPECT_EQ(fresh.payload, warm.payload);
  }
  ServiceStats stats = revived.stats();
  EXPECT_EQ(stats.restored_entries, 3u);
  EXPECT_EQ(stats.restore_skipped, 0u);
  std::string text = revived.StatsText();
  EXPECT_NE(text.find("S snapshot writes=0"), std::string::npos) << text;
  EXPECT_NE(text.find("restored=3"), std::string::npos) << text;
  EXPECT_NE(text.find("S uptime_sec "), std::string::npos) << text;
  std::remove(path.c_str());
}

TEST_F(ServiceTest, RestoreMissingSnapshotIsACleanColdStart) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  SnapshotRestoreReport report =
      service.RestoreSnapshot(TempPath("restore_missing_nonexistent"));
  EXPECT_EQ(report.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(report.restored, 0u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_TRUE(service.Handle(Oql("select p.age from p in P")).status.ok());
}

TEST_F(ServiceTest, RestoreRejectsForeignRuleFingerprint) {
  const std::string path = TempPath("restore_fingerprint");
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  PlanSnapshot snapshot;
  snapshot.rule_fingerprint = service.rule_fingerprint() ^ 1;
  snapshot.catalog_version = 1;
  PlanSnapshotEntry entry;
  entry.catalog_version = 1;
  entry.term_text = "iterate(age)";
  entry.payload = "stale plan from a different rule catalog";
  snapshot.entries.push_back(entry);
  ASSERT_TRUE(WritePlanSnapshotFile(path, snapshot).ok());

  SnapshotRestoreReport report = service.RestoreSnapshot(path);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.restored, 0u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(service.stats().cache.entries, 0u);
  EXPECT_EQ(service.stats().restore_skipped, 1u);
  std::remove(path.c_str());
}

TEST_F(ServiceTest, RestoreAdoptsCatalogVersionAndBumpStillInvalidates) {
  const std::string path = TempPath("restore_version");
  const std::string query = "select p.age from p in P";
  {
    OptimizationService service(db_.get(), &properties_, ServiceOptions{});
    service.BumpCatalogVersion();
    service.BumpCatalogVersion();  // now at version 3
    ASSERT_TRUE(service.Handle(Oql(query)).status.ok());
    ASSERT_TRUE(service.SaveSnapshot(path).ok());
  }

  // The revived service starts at version 1; restore must adopt 3 or the
  // restored entry would be unreachable.
  OptimizationService revived(db_.get(), &properties_, ServiceOptions{});
  SnapshotRestoreReport report = revived.RestoreSnapshot(path);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.restored, 1u);
  EXPECT_EQ(report.catalog_version, 3u);
  EXPECT_EQ(revived.catalog_version(), 3u);
  EXPECT_TRUE(revived.Handle(Oql(query)).cache_hit);

  // Invalidation survives the restart: a post-restore BUMP orphans the
  // restored entry like any other.
  EXPECT_EQ(revived.BumpCatalogVersion(), 4u);
  EXPECT_FALSE(revived.Handle(Oql(query)).cache_hit);
  std::remove(path.c_str());
}

TEST_F(ServiceTest, RestoreSkipsStaleVersionAndUnparsableEntries) {
  const std::string path = TempPath("restore_stale");
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  PlanSnapshot snapshot;
  snapshot.rule_fingerprint = service.rule_fingerprint();
  snapshot.catalog_version = 2;
  // Entry cached under an older catalog version: was invalidated before
  // the crash, must not be revived.
  PlanSnapshotEntry stale;
  stale.catalog_version = 1;
  stale.term_text = "iterate(age)";
  stale.payload = "pre-bump plan";
  snapshot.entries.push_back(stale);
  // Entry whose term rendering does not parse (snapshot from a future
  // format, or damage the checksum cannot see).
  PlanSnapshotEntry broken;
  broken.catalog_version = 2;
  broken.term_text = "((((not a term";
  broken.payload = "x";
  snapshot.entries.push_back(broken);
  ASSERT_TRUE(WritePlanSnapshotFile(path, snapshot).ok());

  SnapshotRestoreReport report = service.RestoreSnapshot(path);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.restored, 0u);
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(service.catalog_version(), 2u);  // still adopted
  std::remove(path.c_str());
}

TEST_F(ServiceTest, RestoreCorruptSnapshotColdStartsWithCountedSkips) {
  const std::string path = TempPath("restore_corrupt");
  {
    OptimizationService service(db_.get(), &properties_, ServiceOptions{});
    ASSERT_TRUE(service.Handle(
        Oql("select p.name from p in P where p.age > 25")).status.ok());
    ASSERT_TRUE(service.Handle(Oql("select p.age from p in P")).status.ok());
    ASSERT_TRUE(service.SaveSnapshot(path).ok());
  }
  // Truncate the file to half: the daemon must start, count skips, and
  // keep serving.
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }

  OptimizationService revived(db_.get(), &properties_, ServiceOptions{});
  SnapshotRestoreReport report = revived.RestoreSnapshot(path);
  ASSERT_TRUE(report.status.ok());
  EXPECT_GE(report.skipped, 1u);
  EXPECT_GE(revived.stats().restore_skipped, 1u);
  ServiceResponse r = revived.Handle(Oql("select p.age from p in P"));
  EXPECT_TRUE(r.status.ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Connection deadlines, drain, framing, and socket-level faults
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, ReadDeadlineCutsSilentClientAndFreesItsSlot) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  ServerOptions options;
  options.handler_threads = 1;  // the silent client holds the ONLY slot
  options.read_deadline_ms = 200;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  // A connects and says nothing; with one handler slot, B can only be
  // served after the read deadline evicts A.
  TestClient silent(server.port());
  ASSERT_TRUE(silent.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TestClient active(server.port());
  ASSERT_TRUE(active.connected());
  ASSERT_TRUE(active.Send("PING"));
  std::string line;
  ASSERT_TRUE(active.ReadLine(&line));  // would hang forever without the cut
  EXPECT_EQ(line, "OK pong");

  // The silent client was told why before the close.
  std::string reason;
  ASSERT_TRUE(silent.ReadLine(&reason));
  EXPECT_EQ(reason.rfind("ERR DEADLINE_EXCEEDED", 0), 0u) << reason;
  EXPECT_FALSE(silent.ReadLine(&reason));  // then EOF

  EXPECT_GE(server.stats().read_timeouts, 1u);
  server.Stop();
}

TEST_F(ServiceTest, DribbledBytesDoNotResetTheReadDeadline) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  ServerOptions options;
  options.read_deadline_ms = 250;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());

  // Slow loris: a byte every 100 ms, never a newline. If each byte reset
  // an idle timer this connection would live forever; the COMPLETE-line
  // deadline cuts it regardless of the dribble.
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) {
    if (!client.SendRaw("x")) break;  // server hung up: stop dribbling
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // The server must have cut us off long before the 5 s dribble budget.
  // (The diagnostic line is best effort -- a byte in flight at cut time
  // can turn the close into a reset -- but the cut itself is guaranteed.)
  std::string line;
  if (client.ReadLine(&line)) {
    EXPECT_EQ(line.rfind("ERR DEADLINE_EXCEEDED", 0), 0u) << line;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(6));
  EXPECT_GE(server.stats().read_timeouts, 1u);
  server.Stop();
}

TEST_F(ServiceTest, FramingEdgeCasesOverTheWire) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  ServerOptions options;
  options.max_line_bytes = 16;
  SocketServer server(&service, options);
  ASSERT_TRUE(server.Start().ok());
  std::string line;

  {
    // Byte-at-a-time delivery: the framing layer reassembles "PING\n"
    // delivered in five separate segments.
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    for (char c : {'P', 'I', 'N', 'G', '\n'}) {
      ASSERT_EQ(::send(client.fd(), &c, 1, MSG_NOSIGNAL), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line, "OK pong");
  }
  {
    // CRLF framing: a Windows-ish client's "PING\r\n" is one request.
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    const std::string crlf = "PING\r\n";
    ASSERT_EQ(::send(client.fd(), crlf.data(), crlf.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(crlf.size()));
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line, "OK pong");
  }
  {
    // A line of exactly max_line_bytes split across recvs right at the
    // boundary, newline in a later segment: accepted (the line itself is
    // not oversized; the buffer only exceeds the cap WITH a 17th byte).
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    const std::string padded = "            PING";  // 16 bytes after trim->PING
    ASSERT_EQ(padded.size(), 16u);
    ASSERT_EQ(::send(client.fd(), padded.data(), padded.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(padded.size()));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_EQ(::send(client.fd(), "\n", 1, MSG_NOSIGNAL), 1);
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line, "OK pong");
  }
  {
    // One byte over the cap without a newline: answered with an error and
    // closed instead of buffering forever.
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    const std::string overlong(17, 'x');
    ASSERT_EQ(::send(client.fd(), overlong.data(), overlong.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(overlong.size()));
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line.rfind("ERR INVALID_ARGUMENT", 0), 0u) << line;
    EXPECT_FALSE(client.ReadLine(&line));  // connection closed
  }
  server.Stop();
}

TEST_F(ServiceTest, ShutdownRacesInFlightRequestsAndDrainFinishesThem) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  SocketServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // In-flight worker: fires a request, then (post-drain) reads the
  // response off the half-closed connection.
  TestClient worker(server.port());
  ASSERT_TRUE(worker.connected());
  ASSERT_TRUE(worker.Send("Q gold oql select p.name from p in P "
                          "where p.age > 25"));

  TestClient controller(server.port());
  ASSERT_TRUE(controller.connected());
  ASSERT_TRUE(controller.Send("SHUTDOWN"));
  std::string line;
  ASSERT_TRUE(controller.ReadLine(&line));
  EXPECT_EQ(line, "OK shutting down");

  server.Wait();
  EXPECT_TRUE(server.Drain(5'000));
  EXPECT_NE(server.StatsLine().find("drain_state=draining"),
            std::string::npos);

  // The worker's in-flight request was served, not dropped: its response
  // is sitting in the socket buffer.
  ASSERT_TRUE(worker.ReadLine(&line));
  EXPECT_EQ(line.rfind("OK ", 0), 0u) << line;

  server.Stop();
  EXPECT_NE(server.StatsLine().find("drain_state=stopped"),
            std::string::npos);
}

TEST_F(ServiceTest, InjectedRecvFaultResetsConnectionAndCounts) {
  FaultInjector injector(11);
  injector.set_rate(FaultSite::kRecv, 1.0);
  SetProcessFaultInjector(&injector);

  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  SocketServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("PING"));
  std::string line;
  EXPECT_FALSE(client.ReadLine(&line));  // reset before any response
  server.Stop();
  SetProcessFaultInjector(nullptr);
  EXPECT_GE(server.stats().resets, 1u);
}

TEST_F(ServiceTest, InjectedSendFaultExercisesShortWritePathCorrectly) {
  FaultInjector injector(12);
  injector.set_rate(FaultSite::kSend, 1.0);
  SetProcessFaultInjector(&injector);

  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  SocketServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Every send is clamped to one byte, so the response arrives via the
  // short-write continuation loop -- and must still be byte-perfect.
  ASSERT_TRUE(client.Send("PING"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "OK pong");
  ASSERT_TRUE(client.Send("Q gold oql select p.age from p in P"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line.rfind("OK 0 ", 0), 0u) << line;
  server.Stop();
  SetProcessFaultInjector(nullptr);
  EXPECT_GE(server.stats().short_writes, 1u);
}

TEST_F(ServiceTest, InjectedAcceptFaultDropsConnectionBeforeService) {
  FaultInjector injector(13);
  injector.set_rate(FaultSite::kAccept, 1.0);
  SetProcessFaultInjector(&injector);

  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  SocketServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  {
    TestClient doomed(server.port());
    // connect() itself succeeds (the kernel completed the handshake from
    // the backlog); the injected fault kills the connection before any
    // handler sees it, so the first read is EOF.
    ASSERT_TRUE(doomed.connected());
    doomed.Send("PING");
    std::string line;
    EXPECT_FALSE(doomed.ReadLine(&line));
  }
  SetProcessFaultInjector(nullptr);
  // With the fault cleared the very same server serves normally.
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("PING"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "OK pong");
  server.Stop();
  EXPECT_GE(server.stats().accept_failures, 1u);
}

TEST_F(ServiceTest, ServerCountersSurfaceInStatsViaExtraStats) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  SocketServer server(&service, ServerOptions{});
  service.set_extra_stats([&server] { return server.StatsLine(); });
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("STATS"));
  bool saw_server_line = false, saw_snapshot_line = false;
  std::string line;
  for (;;) {
    ASSERT_TRUE(client.ReadLine(&line));
    if (line.rfind("S server connections=", 0) == 0) saw_server_line = true;
    if (line.rfind("S snapshot writes=", 0) == 0) saw_snapshot_line = true;
    if (line.rfind("OK", 0) == 0 || line.rfind("ERR", 0) == 0) break;
  }
  EXPECT_TRUE(saw_server_line);
  EXPECT_TRUE(saw_snapshot_line);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Replication: SYNC shipping, standby gating, health, promotion
// ---------------------------------------------------------------------------

/// Splits a HandleLine("SYNC") response into its header fields and the raw
/// snapshot payload. `ok` requires the declared length to match.
struct SyncStream {
  uint64_t checksum = 0;
  std::string payload;
  bool ok = false;
};

SyncStream ParseSyncResponse(const std::string& response) {
  SyncStream s;
  size_t newline = response.find('\n');
  if (newline == std::string::npos) return s;
  std::vector<std::string> fields = Split(response.substr(0, newline), ' ');
  if (fields.size() != 4 || fields[0] != "OK" || fields[1] != "SNAPSHOT") {
    return s;
  }
  auto len = ParseUint64(fields[2]);
  if (!len.ok() || !ParseHex64(fields[3], &s.checksum)) return s;
  s.payload = response.substr(newline + 1);
  s.ok = s.payload.size() == len.value();
  return s;
}

TEST_F(ServiceTest, DrainingIsVisibleInPingHealthAndStats) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  EXPECT_EQ(service.HandleLine("PING"), "OK pong");
  EXPECT_EQ(service.HandleLine("HEALTH").rfind("OK READY", 0), 0u);
  EXPECT_NE(service.HandleLine("HEALTH").find(" serving=1"),
            std::string::npos);

  service.SetDraining();
  EXPECT_EQ(service.HandleLine("PING"), "OK draining");
  std::string health = service.HandleLine("HEALTH");
  EXPECT_EQ(health.rfind("OK DRAINING", 0), 0u) << health;
  // serving=0 steers health-gated clients away while in-flight reads
  // still complete (ServingReads stays true).
  EXPECT_NE(health.find(" serving=0"), std::string::npos) << health;
  EXPECT_TRUE(service.ServingReads());
  EXPECT_NE(service.HandleLine("STATS").find("state=DRAINING"),
            std::string::npos);
}

TEST_F(ServiceTest, RequestShutdownFlipsLiveServerToDraining) {
  OptimizationService service(db_.get(), &properties_, ServiceOptions{});
  SocketServer server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // `witness` connects before the shutdown and keeps its line open across
  // it: drain must answer its later requests, and those answers must say
  // the daemon is going away.
  TestClient witness(server.port());
  ASSERT_TRUE(witness.connected());
  std::string line;
  ASSERT_TRUE(witness.Send("PING"));
  ASSERT_TRUE(witness.ReadLine(&line));
  EXPECT_EQ(line, "OK pong");

  TestClient controller(server.port());
  ASSERT_TRUE(controller.connected());
  ASSERT_TRUE(controller.Send("SHUTDOWN"));
  ASSERT_TRUE(controller.ReadLine(&line));
  EXPECT_EQ(line, "OK shutting down");
  server.Wait();

  ASSERT_TRUE(witness.Send("PING"));
  ASSERT_TRUE(witness.ReadLine(&line));
  EXPECT_EQ(line, "OK draining");
  ASSERT_TRUE(witness.Send("HEALTH"));
  ASSERT_TRUE(witness.ReadLine(&line));
  EXPECT_EQ(line.rfind("OK DRAINING", 0), 0u) << line;
  server.Stop();
}

TEST_F(ServiceTest, StandbyRefusesReadsAndBumpUntilPromoted) {
  ServiceOptions options;
  options.standby = true;
  OptimizationService standby(db_.get(), &properties_, options);
  EXPECT_EQ(standby.role(), ServiceRole::kStandby);
  EXPECT_FALSE(standby.ServingReads());

  // A never-synced standby must never answer a read: it could hold stale
  // (pre-BUMP) plans from a restored snapshot.
  ServiceResponse response =
      standby.Handle(Oql("select p.age from p in P"));
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
  std::string wire = standby.HandleLine("Q gold oql select p.age from p in P");
  EXPECT_EQ(wire.rfind("ERR NOT_READY", 0), 0u) << wire;
  EXPECT_EQ(standby.HandleLine("SYNC").rfind("ERR NOT_READY", 0), 0u);

  // Catalog changes flow primary -> standby, never the reverse.
  std::string bump = standby.HandleLine("BUMP");
  EXPECT_EQ(bump.rfind("ERR FAILED_PRECONDITION", 0), 0u) << bump;

  std::string health = standby.HandleLine("HEALTH");
  EXPECT_EQ(health.rfind("OK SYNCING", 0), 0u) << health;
  EXPECT_NE(health.find(" serving=0"), std::string::npos) << health;
  EXPECT_NE(health.find(" synced=0"), std::string::npos) << health;

  standby.Promote();
  EXPECT_EQ(standby.role(), ServiceRole::kPromoted);
  EXPECT_TRUE(standby.ServingReads());
  EXPECT_EQ(standby.HandleLine("HEALTH").rfind("OK READY", 0), 0u);
  EXPECT_EQ(standby.HandleLine("BUMP"), "OK version=2");
  EXPECT_TRUE(standby.Handle(Oql("select p.age from p in P")).status.ok());
}

TEST_F(ServiceTest, SyncShipsByteIdenticalWarmPlansToStandby) {
  OptimizationService primary(db_.get(), &properties_, ServiceOptions{});
  const std::vector<std::string> queries = {
      "select p.name from p in P where p.age > 25",
      "select p.age from p in P",
      "select c.name from p in P, c in p.child where c.age > 12",
  };
  std::vector<std::string> payloads;
  for (const std::string& q : queries) {
    ServiceResponse r = primary.Handle(Oql(q));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    payloads.push_back(r.payload);
  }

  std::string response = primary.HandleLine("SYNC");
  SyncStream stream = ParseSyncResponse(response);
  ASSERT_TRUE(stream.ok) << response.substr(0, 80);
  // The header checksum is end to end: it covers the bytes as encoded, so
  // the standby can reject a torn stream before applying anything.
  EXPECT_EQ(StableStringHash(stream.payload), stream.checksum);
  EXPECT_EQ(primary.stats().syncs_served, 1u);

  ServiceOptions options;
  options.standby = true;
  OptimizationService standby(db_.get(), &properties_, options);
  SnapshotRestoreReport report = standby.ApplySyncBytes(stream.payload);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.restored, queries.size());
  EXPECT_EQ(report.skipped, 0u);

  // The first applied sync flips the standby to serving, and every warm
  // hit replays the primary's plan byte for byte.
  EXPECT_TRUE(standby.ServingReads());
  EXPECT_EQ(standby.health(), ServiceHealth::kReady);
  for (size_t i = 0; i < queries.size(); ++i) {
    ServiceResponse warm = standby.Handle(Oql(queries[i]));
    ASSERT_TRUE(warm.status.ok());
    EXPECT_TRUE(warm.cache_hit) << queries[i];
    EXPECT_EQ(warm.payload, payloads[i]);
  }
  ServiceStats stats = standby.stats();
  EXPECT_EQ(stats.syncs_applied, 1u);
  EXPECT_EQ(stats.sync_entries_applied, queries.size());
  // A synced standby ships snapshots itself (chained standbys).
  EXPECT_EQ(standby.HandleLine("SYNC").rfind("OK SNAPSHOT", 0), 0u);
}

TEST_F(ServiceTest, SyncAdoptsCatalogVersionAndDropsStaleWarmth) {
  OptimizationService primary(db_.get(), &properties_, ServiceOptions{});
  ServiceOptions options;
  options.standby = true;
  OptimizationService standby(db_.get(), &properties_, options);
  const std::string query = "select p.age from p in P";

  ASSERT_TRUE(primary.Handle(Oql(query)).status.ok());
  SyncStream first = ParseSyncResponse(primary.HandleLine("SYNC"));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(standby.ApplySyncBytes(first.payload).status.ok());
  EXPECT_TRUE(standby.Handle(Oql(query)).cache_hit);

  // The primary's catalog moves on; the next sync must carry the new
  // version and orphan the standby's v1 warmth in one step.
  EXPECT_EQ(primary.BumpCatalogVersion(), 2u);
  ServiceResponse rewarmed = primary.Handle(Oql(query));
  ASSERT_TRUE(rewarmed.status.ok());
  SyncStream second = ParseSyncResponse(primary.HandleLine("SYNC"));
  ASSERT_TRUE(second.ok);
  SnapshotRestoreReport report = standby.ApplySyncBytes(second.payload);
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.catalog_version, 2u);

  // Serving a stale plan is structurally impossible now: the standby's
  // cache keys carry version 2, so the old entry is unreachable -- and the
  // warm answer matches the primary's post-bump plan exactly.
  ServiceResponse warm = standby.Handle(Oql(query));
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.payload, rewarmed.payload);
}

TEST_F(ServiceTest, ReplicationClientSyncsOverSocketAndPromotesOnLoss) {
  OptimizationService primary(db_.get(), &properties_, ServiceOptions{});
  SocketServer server(&primary, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  const std::string query = "select p.name from p in P where p.age > 25";
  ServiceResponse cold = primary.Handle(Oql(query));
  ASSERT_TRUE(cold.status.ok());

  ServiceOptions standby_options;
  standby_options.standby = true;
  OptimizationService standby(db_.get(), &properties_, standby_options);
  ReplicationOptions repl;
  repl.port = server.port();
  repl.sync_interval_ms = 20;
  repl.io_deadline_ms = 2'000;
  repl.promote_after_failures = 3;
  ReplicationClient client(&standby, repl);

  // One live sync over the real socket: the standby comes up serving the
  // primary's exact plan.
  Status synced = client.SyncOnce();
  ASSERT_TRUE(synced.ok()) << synced.ToString();
  EXPECT_TRUE(standby.ServingReads());
  ServiceResponse warm = standby.Handle(Oql(query));
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.payload, cold.payload);
  EXPECT_GT(client.stats().bytes_received, 0u);

  // Kill the primary, then start the loop: consecutive failures walk the
  // standby READY -> SYNCING and past the threshold it promotes itself.
  server.Stop();
  client.Start();
  for (int i = 0; i < 1'000 && standby.role() != ServiceRole::kPromoted;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  client.Stop();
  ASSERT_EQ(standby.role(), ServiceRole::kPromoted);
  EXPECT_TRUE(standby.ServingReads());
  EXPECT_EQ(standby.health(), ServiceHealth::kReady);
  ServiceStats stats = standby.stats();
  EXPECT_TRUE(stats.promoted);
  EXPECT_GE(stats.sync_failures, 3u);
  // The full arc is on the record for STATS scrapers.
  EXPECT_NE(stats.health_history.find("READY>SYNCING>READY"),
            std::string::npos)
      << stats.health_history;
  EXPECT_NE(standby.HandleLine("STATS").find("promoted=1"),
            std::string::npos);
  // Promoted means primary: it owns the catalog and ships syncs.
  EXPECT_EQ(standby.HandleLine("BUMP"), "OK version=2");
}

TEST_F(ServiceTest, InjectedReplFaultTearsSyncStreamsDetectably) {
  FaultInjector injector(17);
  injector.set_rate(FaultSite::kReplSync, 1.0);
  SetProcessFaultInjector(&injector);

  OptimizationService primary(db_.get(), &properties_, ServiceOptions{});
  SocketServer server(&primary, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(
      primary.Handle(Oql("select p.age from p in P")).status.ok());

  // Primary side: the shipped bytes are corrupted AFTER the checksum is
  // taken, so the mismatch is always detectable by the receiver.
  SyncStream torn = ParseSyncResponse(primary.HandleLine("SYNC"));
  ASSERT_TRUE(torn.ok);
  EXPECT_NE(StableStringHash(torn.payload), torn.checksum);

  // Standby side: the injected fault fails the sync attempt outright; the
  // standby stays NOT_READY rather than applying anything.
  ServiceOptions standby_options;
  standby_options.standby = true;
  OptimizationService standby(db_.get(), &properties_, standby_options);
  ReplicationOptions repl;
  repl.port = server.port();
  repl.io_deadline_ms = 2'000;
  ReplicationClient client(&standby, repl);
  EXPECT_FALSE(client.SyncOnce().ok());
  EXPECT_FALSE(standby.ServingReads());

  // Chaos off: the very same pair syncs cleanly.
  SetProcessFaultInjector(nullptr);
  Status synced = client.SyncOnce();
  ASSERT_TRUE(synced.ok()) << synced.ToString();
  EXPECT_TRUE(standby.ServingReads());
  server.Stop();
}

TEST_F(ServiceTest, ApplySyncBytesRejectsGarbageAndForeignStreams) {
  ServiceOptions options;
  options.standby = true;
  OptimizationService standby(db_.get(), &properties_, options);

  // Garbage: unusable header, standby stays NOT_READY.
  SnapshotRestoreReport garbage = standby.ApplySyncBytes("not a snapshot");
  EXPECT_EQ(garbage.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(standby.ServingReads());

  // A stream from a different rule catalog: refused whole, because "ready
  // with plans the local rules cannot reproduce" is worse than NOT_READY.
  PlanSnapshot foreign;
  foreign.rule_fingerprint = standby.rule_fingerprint() ^ 0x1;
  foreign.catalog_version = 1;
  PlanSnapshotEntry entry;
  entry.catalog_version = 1;
  entry.term_text = "iterate(x)";
  entry.payload = "plan";
  foreign.entries.push_back(entry);
  SnapshotRestoreReport report =
      standby.ApplySyncBytes(EncodePlanSnapshot(foreign));
  EXPECT_EQ(report.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_FALSE(standby.ServingReads());
}

// ---------------------------------------------------------------------------
// Snapshot decoder fuzzing
// ---------------------------------------------------------------------------

TEST(PlanCacheIoTest, DecoderFuzzRandomBytesNeverCrash) {
  Rng rng(0x5eed);
  for (int round = 0; round < 400; ++round) {
    const size_t len = rng.Index(600);
    std::string bytes;
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    SnapshotReadReport report;
    PlanSnapshot decoded = DecodePlanSnapshot(bytes, &report);
    // Random bytes never form a validated snapshot: no crash, no silent
    // acceptance.
    EXPECT_TRUE(decoded.entries.empty()) << "round " << round;
    EXPECT_GE(report.skipped, 1u) << "round " << round;
  }

  // Random tails behind a well-formed header: the damage is behind the
  // declared count, so it must surface as counted skips.
  for (int round = 0; round < 200; ++round) {
    std::string bytes =
        "KOLASNAP 1 fp=00000000deadbeef version=2 entries=3\n";
    const size_t len = rng.Index(400);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    SnapshotReadReport report;
    DecodePlanSnapshot(bytes, &report);
    EXPECT_TRUE(report.header_ok) << "round " << round;
    EXPECT_GE(report.skipped, 1u) << "round " << round;
  }
}

TEST(PlanCacheIoTest, DecoderFuzzEverySingleByteMutationCountsASkip) {
  PlanSnapshot original = ThreeEntrySnapshot();
  const std::string encoded = EncodePlanSnapshot(original);
  // Every byte position, three different flips each: framing bytes,
  // header fields that still parse, entry bodies, trailer hex -- no
  // damage may decode clean. (This is the property the seeded file
  // checksum exists for: a flipped fingerprint/version/count digit still
  // parses, but desynchronizes the trailer.)
  const unsigned char masks[] = {0x01, 0x20, 0x80};
  for (size_t at = 0; at < encoded.size(); ++at) {
    for (unsigned char mask : masks) {
      std::string mutated = encoded;
      mutated[at] = static_cast<char>(mutated[at] ^ mask);
      SnapshotReadReport report;
      PlanSnapshot decoded = DecodePlanSnapshot(mutated, &report);
      EXPECT_GE(report.skipped, 1u)
          << "byte " << at << " xor 0x" << std::hex << int(mask);
      EXPECT_LE(decoded.entries.size(), original.entries.size());
    }
  }
}

}  // namespace
}  // namespace kola
