#include <gtest/gtest.h>

#include "rewrite/verifier.h"
#include "rules/catalog.h"
#include "values/car_world.h"

namespace kola {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() : schema_(SchemaTypes::CarWorld()) {
    CarWorldOptions options;
    options.num_persons = 10;
    options.num_vehicles = 6;
    options.num_addresses = 5;
    db_ = BuildCarWorld(options);
  }

  VerifyOutcome Verify(const Rule& rule, int trials = 120) {
    VerifyOptions options;
    options.trials = trials;
    options.seed = 99;
    auto outcome = VerifyRule(rule, *db_, schema_, options);
    EXPECT_TRUE(outcome.ok()) << rule.id << ": " << outcome.status();
    return outcome.ok() ? outcome.value() : VerifyOutcome{};
  }

  SchemaTypes schema_;
  std::unique_ptr<Database> db_;
};

TEST_F(VerifierTest, SoundRulePassos) {
  std::vector<Rule> rules = PaperRules();
  VerifyOutcome outcome = Verify(FindRule(rules, "11"));
  EXPECT_TRUE(outcome.sound()) << outcome.Summary() << "\n"
                               << outcome.counterexample;
  EXPECT_GT(outcome.agreed, 50);
}

TEST_F(VerifierTest, PaperRule7AsPublishedIsUnsound) {
  // The paper's Figure 5 prints rule 7 as inv(gt) => leq. Under the
  // converse semantics forced by rule 13, the sound right-hand side is lt:
  // the published version disagrees exactly on equal arguments. Our
  // randomized Larch-substitute catches it.
  VerifyOutcome outcome = Verify(PaperRule7AsPublished(), 400);
  EXPECT_GT(outcome.disagreed, 0) << outcome.Summary();
  EXPECT_FALSE(outcome.sound());
  EXPECT_FALSE(outcome.counterexample.empty());
}

TEST_F(VerifierTest, DeliberatelyBrokenRuleIsCaught) {
  auto broken = MakeRule("broken", "iterate fusion with predicates dropped",
                         "iterate(?p, ?f) o iterate(?q, ?g)",
                         "iterate(Kp(T), ?f o ?g)", Sort::kFunction);
  ASSERT_TRUE(broken.ok());
  VerifyOutcome outcome = Verify(broken.value(), 300);
  EXPECT_GT(outcome.disagreed, 0) << outcome.Summary();
}

TEST_F(VerifierTest, SwappedProjectionRuleIsCaught) {
  auto broken = MakeRule("broken-9", "pi1 of pair returns wrong component",
                         "pi1 o (?f, ?g)", "?g", Sort::kFunction);
  ASSERT_TRUE(broken.ok());
  VerifyOutcome outcome = Verify(broken.value(), 300);
  EXPECT_GT(outcome.disagreed, 0) << outcome.Summary();
}

TEST_F(VerifierTest, IllTypedRuleIsRejectedStatically) {
  // gt on persons: no typing exists, mirroring an LSL sort error.
  auto rule = MakeRule("illtyped", "", "gt @ (addr, addr)",
                       "Kp(T)", Sort::kPredicate);
  ASSERT_TRUE(rule.ok());
  VerifyOptions options;
  auto outcome = VerifyRule(rule.value(), *db_, schema_, options);
  EXPECT_FALSE(outcome.ok());
}

TEST_F(VerifierTest, ConditionalRuleUsesInjectiveGenerator) {
  std::vector<Rule> rules = ExtendedRules();
  VerifyOutcome outcome =
      Verify(FindRule(rules, "ext.injective-intersect"), 150);
  EXPECT_TRUE(outcome.sound()) << outcome.Summary() << "\n"
                               << outcome.counterexample;
}

TEST_F(VerifierTest, UnguardedInjectiveRuleIsUnsound) {
  // The same intersection rule WITHOUT the injectivity guard must fail:
  // non-injective maps break f(A) ∩ f(B) = f(A ∩ B).
  auto unguarded = MakeRule(
      "ext.injective-intersect-unguarded", "",
      "intersect o (iterate(Kp(T), ?f) x iterate(Kp(T), ?f))",
      "iterate(Kp(T), ?f) o intersect", Sort::kFunction);
  ASSERT_TRUE(unguarded.ok());
  VerifyOutcome outcome = Verify(unguarded.value(), 400);
  EXPECT_GT(outcome.disagreed, 0) << outcome.Summary();
}

// The headline property test: EVERY rule in the shipped catalog is sound
// under randomized semantic testing -- our analogue of the paper's "proofs
// of over 500 rules ... verified using the Larch theorem proving tool".
class CatalogSoundness : public VerifierTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(CatalogSoundness, RuleIsSound) {
  std::vector<Rule> rules = AllCatalogRules();
  const Rule& rule = rules[GetParam()];
  VerifyOutcome outcome = Verify(rule, 120);
  EXPECT_TRUE(outcome.sound())
      << rule.ToString() << "\n"
      << outcome.Summary() << "\n"
      << outcome.counterexample;
}

std::string CatalogRuleName(const ::testing::TestParamInfo<int>& info) {
  static const std::vector<Rule> rules = AllCatalogRules();  // NOLINT
  std::string name = rules[info.param].id;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_" + std::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, CatalogSoundness,
    ::testing::Range(0, static_cast<int>(AllCatalogRules().size())),
    CatalogRuleName);

// Reversed readings of the paper's bidirectional rules (used right-to-left
// in Figures 4 and 6) are sound too.
class ReversedRuleSoundness
    : public VerifierTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(ReversedRuleSoundness, ReverseIsSound) {
  std::vector<Rule> rules = AllCatalogRules();
  auto reversed = ReverseRule(FindRule(rules, GetParam()));
  ASSERT_TRUE(reversed.ok()) << reversed.status();
  VerifyOutcome outcome = Verify(reversed.value(), 120);
  EXPECT_TRUE(outcome.sound()) << outcome.Summary() << "\n"
                               << outcome.counterexample;
}

INSTANTIATE_TEST_SUITE_P(PaperBidirectional, ReversedRuleSoundness,
                         ::testing::Values("2", "12", "14"));

}  // namespace
}  // namespace kola
