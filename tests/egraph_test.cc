#include "egraph/egraph.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "eval/evaluator.h"
#include "optimizer/code_motion.h"
#include "optimizer/cost.h"
#include "optimizer/hidden_join.h"
#include "optimizer/optimizer.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

TermPtr Parse(const std::string& text, Sort sort = Sort::kObject) {
  auto term = ParseTerm(text, sort);
  EXPECT_TRUE(term.ok()) << term.status();
  return term.value();
}

/// The structural cost every unit test can rank with: node count.
PlanCostFn NodeCountCost() {
  return [](const TermPtr& term) -> StatusOr<double> {
    return static_cast<double>(term->node_count());
  };
}

class EGraphTest : public ::testing::Test {
 protected:
  EGraphTest() {
    CarWorldOptions options;
    options.num_persons = 12;
    options.num_vehicles = 8;
    options.num_addresses = 6;
    options.seed = 11;
    db_ = BuildCarWorld(options);
    properties_ = PropertyStore::Default();
  }

  Value Eval(const TermPtr& query) {
    auto value = EvalQuery(*db_, query);
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? std::move(value).value() : Value::Null();
  }

  std::unique_ptr<Database> db_;
  PropertyStore properties_;
  Rewriter rewriter_;
};

TEST_F(EGraphTest, AddTermSharesStructure) {
  EGraph egraph;
  TermPtr query = Parse("iterate(Kp(T), age) ! P");
  EClassId first = egraph.AddTerm(query);
  EClassId second = egraph.AddTerm(Parse("iterate(Kp(T), age) ! P"));
  // Structurally equal terms land in one class without new nodes.
  EXPECT_EQ(egraph.Find(first), egraph.Find(second));
  const size_t nodes = egraph.node_count();
  // A term sharing subterms reuses their nodes.
  egraph.AddTerm(Parse("iterate(Kp(T), age) ! V"));
  EXPECT_EQ(egraph.node_count(), nodes + 2);  // new collection + new apply
}

TEST_F(EGraphTest, MergeKeepsSmallerRoot) {
  EGraph egraph;
  EClassId a = egraph.AddTerm(Parse("age ! p"));
  EClassId b = egraph.AddTerm(Parse("name ! p"));
  ASSERT_NE(egraph.Find(a), egraph.Find(b));
  EClassId root = egraph.Merge(b, a);
  EXPECT_EQ(root, std::min(egraph.Find(a), egraph.Find(b)));
  EXPECT_EQ(egraph.Find(a), egraph.Find(b));
}

TEST_F(EGraphTest, RebuildRestoresCongruence) {
  EGraph egraph;
  // age ! x and age ! y with x merged into y must collapse: congruence.
  EClassId fx = egraph.AddTerm(Parse("age ! (pi1 ! [1, 2])"));
  EClassId fy = egraph.AddTerm(Parse("age ! (pi2 ! [2, 1])"));
  EClassId x = egraph.AddTerm(Parse("pi1 ! [1, 2]"));
  EClassId y = egraph.AddTerm(Parse("pi2 ! [2, 1]"));
  ASSERT_NE(egraph.Find(fx), egraph.Find(fy));
  egraph.Merge(x, y);
  egraph.Rebuild();
  EXPECT_EQ(egraph.Find(fx), egraph.Find(fy));
  EXPECT_EQ(egraph.stats().unions, 2u);
}

TEST_F(EGraphTest, ExtractSmallestPicksTheSmallerMember) {
  EGraph egraph;
  EClassId big = egraph.AddTerm(Parse("iterate(Kp(T), id o (id o age)) ! P"));
  EClassId small = egraph.AddTerm(Parse("iterate(Kp(T), age) ! P"));
  egraph.Merge(big, small);
  auto extracted = egraph.ExtractSmallest(big);
  ASSERT_TRUE(extracted.ok()) << extracted.status();
  EXPECT_EQ((*extracted)->ToString(), "iterate(Kp(T), age) ! P");
}

TEST_F(EGraphTest, ExtractionMinimizesThroughSharedSubclasses) {
  EGraph egraph;
  // Only the inner function is equated; the outer query must still shrink,
  // which exercises the bottom-up (per-class) minimization.
  EClassId verbose = egraph.AddTerm(Parse("id o (id o age)", Sort::kFunction));
  EClassId terse = egraph.AddTerm(Parse("age", Sort::kFunction));
  EClassId query = egraph.AddTerm(Parse("iterate(Kp(T), id o (id o age)) ! P"));
  egraph.Merge(verbose, terse);
  egraph.Rebuild();
  auto extracted = egraph.ExtractSmallest(query);
  ASSERT_TRUE(extracted.ok()) << extracted.status();
  EXPECT_EQ((*extracted)->ToString(), "iterate(Kp(T), age) ! P");
}

TEST_F(EGraphTest, SaturationRuleSetIsDeduplicatedAndReversed) {
  const std::vector<Rule>& pool = SaturationRuleSet();
  EXPECT_GT(pool.size(), AllCatalogRules().size());
  std::unordered_set<std::string> seen;
  bool has_reversed = false;
  for (const Rule& rule : pool) {
    // No reversal may match at every node of its sort: pure inflation.
    EXPECT_FALSE(rule.lhs->is_metavar()) << rule.id;
    std::string key = rule.lhs->ToString() + "=>" + rule.rhs->ToString();
    for (const PropertyAtom& condition : rule.conditions) {
      key += "|" + condition.property + ":" + condition.pattern->ToString();
    }
    EXPECT_TRUE(seen.insert(key).second) << "duplicate: " << rule.id;
    if (rule.id.size() > 1 && rule.id.back() == '~') has_reversed = true;
  }
  EXPECT_TRUE(has_reversed);
  EXPECT_EQ(SaturationRuleFingerprint(), RuleSetFingerprint(pool));
}

TEST_F(EGraphTest, SaturateFindsSimplerEquivalents) {
  EGraph egraph;
  TermPtr query = Parse("iterate(Kp(T) & Kp(T), id o age) ! P");
  EClassId root = egraph.AddTerm(query);
  ASSERT_TRUE(egraph.Saturate(rewriter_, SaturationRuleSet(),
                              SaturationRuleFingerprint())
                  .ok());
  EXPECT_TRUE(egraph.stats().saturated);
  EXPECT_GT(egraph.stats().rule_applications, 0u);
  auto extracted = egraph.ExtractSmallest(root);
  ASSERT_TRUE(extracted.ok()) << extracted.status();
  EXPECT_LT((*extracted)->node_count(), query->node_count());
  EXPECT_EQ(Eval(query), Eval(*extracted));
}

TEST_F(EGraphTest, SaturateAndExtractNeverCostsMoreThanGreedy) {
  TermPtr query = GarageQueryKG1();
  Optimizer greedy(&properties_, db_.get());
  auto greedy_result = greedy.Optimize(query);
  ASSERT_TRUE(greedy_result.ok());

  CostModel model(db_.get());
  PlanCostFn cost = [&](const TermPtr& plan) {
    return model.EstimateQueryCost(plan);
  };
  EGraphOutcome outcome = SaturateAndExtract(query, greedy_result->query,
                                             rewriter_, cost, EGraphOptions{});
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  ASSERT_NE(outcome.plan, nullptr);
  auto greedy_cost = model.EstimateQueryCost(greedy_result->query);
  auto egraph_cost = model.EstimateQueryCost(outcome.plan);
  ASSERT_TRUE(greedy_cost.ok() && egraph_cost.ok());
  EXPECT_LE(egraph_cost.value(), greedy_cost.value());
  EXPECT_EQ(Eval(query), Eval(outcome.plan));
  EXPECT_GT(outcome.stats.nodes, 0u);
  EXPECT_GT(outcome.stats.classes, 0u);
}

TEST_F(EGraphTest, SaturateAndExtractIsDeterministic) {
  TermPtr query = Parse("iterate(Kp(T) & (Cp(lt, 25) @ age), id o id) ! P");
  std::string first;
  for (int round = 0; round < 3; ++round) {
    EGraphOutcome outcome =
        SaturateAndExtract(query, query, rewriter_, NodeCountCost(),
                           EGraphOptions{});
    ASSERT_TRUE(outcome.status.ok()) << outcome.status;
    if (round == 0) {
      first = outcome.plan->ToString();
    } else {
      EXPECT_EQ(outcome.plan->ToString(), first);
    }
  }
}

TEST_F(EGraphTest, MaxNodesCapStopsGrowthButStillExtracts) {
  TermPtr query = GarageQueryKG1();
  EGraphOptions options;
  options.max_nodes = 48;
  EGraphOutcome outcome =
      SaturateAndExtract(query, query, rewriter_, NodeCountCost(), options);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status;
  EXPECT_FALSE(outcome.stats.saturated);
  ASSERT_NE(outcome.plan, nullptr);
  EXPECT_EQ(Eval(query), Eval(outcome.plan));
}

TEST_F(EGraphTest, GovernorStepBudgetDegradesToBestSoFar) {
  Governor::Limits limits;
  limits.step_budget = 5;
  Governor governor(limits);
  EGraphOptions options;
  options.governor = &governor;
  RewriterOptions engine_options = RewriterOptions::Defaults();
  engine_options.governor = &governor;
  Rewriter governed(nullptr, engine_options);
  TermPtr query = Parse("iterate(Kp(T) & Kp(T), id o age) ! P");
  EGraphOutcome outcome =
      SaturateAndExtract(query, query, governed, NodeCountCost(), options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
  ASSERT_NE(outcome.plan, nullptr);
  EXPECT_EQ(Eval(query), Eval(outcome.plan));
}

TEST_F(EGraphTest, GovernorMemoryBudgetDegradesToBestSoFar) {
  Governor::Limits limits;
  limits.memory_budget_bytes = 2048;
  Governor governor(limits);
  EGraphOptions options;
  options.governor = &governor;
  TermPtr query = GarageQueryKG1();
  EGraphOutcome outcome =
      SaturateAndExtract(query, query, rewriter_, NodeCountCost(), options);
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(governor.memory().peak(MemoryCategory::kEGraph), 0);
  ASSERT_NE(outcome.plan, nullptr);
  EXPECT_EQ(Eval(query), Eval(outcome.plan));
}

TEST_F(EGraphTest, OptimizerPhaseNeverCostsMoreAndPreservesSemantics) {
  RewriterOptions egraph_on = RewriterOptions::Defaults();
  egraph_on.use_egraph = true;
  Optimizer greedy(&properties_, db_.get());
  Optimizer saturating(&properties_, db_.get(), egraph_on);
  CostModel model(db_.get());
  for (const TermPtr& query :
       {GarageQueryKG1(), QueryK3(), QueryK4(),
        Parse("iterate(Kp(T), id o age) ! P"),
        Parse("join(eq @ (age x age), (pi1, pi2)) ! [P, P]")}) {
    auto base = greedy.Optimize(query);
    auto with = saturating.Optimize(query);
    ASSERT_TRUE(base.ok()) << base.status();
    ASSERT_TRUE(with.ok()) << with.status();
    EXPECT_FALSE(with->degradation.degraded)
        << with->degradation.ToString();
    auto base_cost = model.EstimateQueryCost(base->query);
    auto with_cost = model.EstimateQueryCost(with->query);
    ASSERT_TRUE(base_cost.ok() && with_cost.ok());
    EXPECT_LE(with_cost.value(), base_cost.value()) << query->ToString();
    EXPECT_EQ(Eval(query), Eval(with->query)) << query->ToString();
  }
}

TEST_F(EGraphTest, OptimizerPhaseReportsStats) {
  RewriterOptions egraph_on = RewriterOptions::Defaults();
  egraph_on.use_egraph = true;
  Optimizer saturating(&properties_, db_.get(), egraph_on);
  auto result = saturating.Optimize(GarageQueryKG1());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->egraph.nodes, 0u);
  EXPECT_GT(result->egraph.classes, 0u);
  EXPECT_GT(result->egraph.processed, 0u);
  // The default pipeline leaves the counters untouched.
  Optimizer greedy(&properties_, db_.get());
  auto base = greedy.Optimize(GarageQueryKG1());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->egraph.nodes, 0u);
}

TEST_F(EGraphTest, OptimizerPhaseMatchesWithRuleIndexOnAndOff) {
  // Kill-switch parity within one process: the index only filters, so the
  // saturated graph -- and the extracted plan -- must be identical with
  // indexing disabled through options.
  RewriterOptions indexed = RewriterOptions::Defaults();
  indexed.use_egraph = true;
  indexed.use_rule_index = true;
  RewriterOptions linear = indexed;
  linear.use_rule_index = false;
  Optimizer a(&properties_, db_.get(), indexed);
  Optimizer b(&properties_, db_.get(), linear);
  for (const TermPtr& query : {GarageQueryKG1(), QueryK4()}) {
    auto ra = a.Optimize(query);
    auto rb = b.Optimize(query);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra->query->ToString(), rb->query->ToString());
    EXPECT_EQ(ra->egraph.nodes, rb->egraph.nodes);
    EXPECT_EQ(ra->egraph.rule_applications, rb->egraph.rule_applications);
  }
}

}  // namespace
}  // namespace kola
