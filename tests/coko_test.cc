#include <gtest/gtest.h>

#include "coko/parser.h"
#include "coko/strategy.h"
#include "eval/evaluator.h"
#include "optimizer/hidden_join.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

class CokoTest : public ::testing::Test {
 protected:
  CokoTest() : catalog_(AllCatalogRules()) {}

  CokoModule MustParse(const char* text) {
    auto module = ParseCoko(text, catalog_);
    EXPECT_TRUE(module.ok()) << module.status();
    return module.ok() ? std::move(module).value() : CokoModule{};
  }

  TermPtr Q(const char* text, Sort sort = Sort::kFunction) {
    auto t = ParseTerm(text, sort);
    EXPECT_TRUE(t.ok()) << t.status();
    return t.value();
  }

  std::vector<Rule> catalog_;
  Rewriter rewriter_;
};

TEST_F(CokoTest, ParsesSimpleBlock) {
  CokoModule module = MustParse("block clean { exhaust 1, 2; }");
  ASSERT_EQ(module.blocks.size(), 1u);
  EXPECT_EQ(module.blocks[0].name(), "clean");
  auto result =
      module.blocks[0].Apply(Q("(id o age) o id"), rewriter_, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Term::Equal(result->term, Q("age")));
}

TEST_F(CokoTest, ModifiersResolveVariants) {
  CokoModule module = MustParse(
      "block split { once 12~; }\n"
      "block unfold { exhaust norm.unfold; }");
  // 12~ is rule 12 right-to-left.
  TermPtr fused = Q("iterate(Cp(lt, 25) @ age, age)");
  auto result = module.Find("split")->Apply(fused, rewriter_, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->changed);
  EXPECT_TRUE(Term::Equal(result->term,
                          Q("iterate(Cp(lt, 25), id) o iterate(Kp(T), "
                            "age)")));
}

TEST_F(CokoTest, UseComposesBlocks) {
  CokoModule module = MustParse(
      "block a { exhaust 1; }\n"
      "block b { exhaust 2; }\n"
      "block both { use a; use b; }");
  auto result = module.Find("both")->Apply(Q("id o (age o id)"), rewriter_,
                                           nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Term::Equal(result->term, Q("age")));
}

TEST_F(CokoTest, RepeatLoopsBody) {
  CokoModule module = MustParse("block r { repeat { once 1; } }");
  auto result = module.Find("r")->Apply(Q("((age o id) o id) o id"),
                                        rewriter_, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Term::Equal(result->term, Q("age")));
}

TEST_F(CokoTest, CommentsAreIgnored) {
  CokoModule module = MustParse(
      "# leading comment\nblock c { exhaust 1; # trailing\n }");
  EXPECT_EQ(module.blocks.size(), 1u);
}

TEST_F(CokoTest, ErrorsAreDiagnosed) {
  EXPECT_FALSE(ParseCoko("", catalog_).ok());
  EXPECT_FALSE(ParseCoko("block x { }", catalog_).ok());
  EXPECT_FALSE(ParseCoko("block x { exhaust nosuchrule; }",
                         catalog_).ok());
  EXPECT_FALSE(ParseCoko("block x { exhaust 1 }", catalog_).ok());
  EXPECT_FALSE(ParseCoko("block x { use later; } block later { once 1; }",
                         catalog_).ok());
  EXPECT_FALSE(ParseCoko("blok x { once 1; }", catalog_).ok());
  // Apply-level modifier on a predicate rule is rejected at parse time.
  EXPECT_FALSE(ParseCoko("block x { once 3!; }", catalog_).ok());
}

TEST_F(CokoTest, HiddenJoinModuleMatchesBuiltinPipeline) {
  // The shipped COKO text reproduces the C++-assembled five-step strategy:
  // same final query on the garage query and on deeper hidden joins.
  auto module = ParseCoko(kHiddenJoinCoko, catalog_);
  ASSERT_TRUE(module.ok()) << module.status();
  const RuleBlock* pipeline = module->Find("hidden-join");
  ASSERT_NE(pipeline, nullptr);

  {
    auto via_coko = pipeline->Apply(GarageQueryKG1(), rewriter_, nullptr);
    ASSERT_TRUE(via_coko.ok()) << via_coko.status();
    EXPECT_TRUE(Term::Equal(via_coko->term, GarageQueryKG2()))
        << via_coko->term->ToString();
  }
  for (int depth : {1, 3, 5}) {
    auto query = MakeHiddenJoinQuery(depth);
    ASSERT_TRUE(query.ok());
    auto via_coko = pipeline->Apply(query.value(), rewriter_, nullptr);
    ASSERT_TRUE(via_coko.ok());
    auto via_builtin = UntangleHiddenJoin(query.value(), rewriter_);
    ASSERT_TRUE(via_builtin.ok());
    EXPECT_TRUE(Term::Equal(via_coko->term, via_builtin->query))
        << "depth " << depth;
  }
}

TEST_F(CokoTest, CokoPipelinePreservesSemantics) {
  auto module = ParseCoko(kHiddenJoinCoko, catalog_);
  ASSERT_TRUE(module.ok());
  const RuleBlock* pipeline = module->Find("hidden-join");
  ASSERT_NE(pipeline, nullptr);

  CarWorldOptions options;
  options.num_persons = 10;
  options.num_vehicles = 6;
  options.num_addresses = 5;
  auto db = BuildCarWorld(options);

  auto rewritten = pipeline->Apply(GarageQueryKG1(), rewriter_, nullptr);
  ASSERT_TRUE(rewritten.ok());
  auto before = EvalQuery(*db, GarageQueryKG1());
  auto after = EvalQuery(*db, rewritten->term);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(before.value(), after.value());
}

}  // namespace
}  // namespace kola
