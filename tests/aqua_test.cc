#include <gtest/gtest.h>

#include "aqua/eval.h"
#include "aqua/parser.h"
#include "aqua/transform.h"
#include "values/car_world.h"

namespace kola {
namespace aqua {
namespace {

ExprPtr P(const char* text) {
  auto e = ParseAqua(text);
  EXPECT_TRUE(e.ok()) << e.status();
  return e.ok() ? std::move(e).value() : nullptr;
}

TEST(AquaParserTest, PathsBecomeFunCalls) {
  ExprPtr e = P("app(\\p. p.addr.city)(P)");
  ASSERT_EQ(e->kind(), ExprKind::kApp);
  const ExprPtr& body = e->child(0)->child(0);
  EXPECT_EQ(body->kind(), ExprKind::kFunCall);
  EXPECT_EQ(body->name(), "city");
  EXPECT_EQ(body->child(0)->name(), "addr");
}

TEST(AquaParserTest, BoundVsCollectionResolution) {
  ExprPtr e = P("app(\\p. [p, Q])(P)");
  const ExprPtr& tuple = e->child(0)->child(0);
  EXPECT_EQ(tuple->child(0)->kind(), ExprKind::kVar);
  EXPECT_EQ(tuple->child(1)->kind(), ExprKind::kCollection);
  EXPECT_EQ(e->child(1)->kind(), ExprKind::kCollection);
}

TEST(AquaParserTest, OperatorsAndPrecedence) {
  ExprPtr e = P("app(\\p. p.age > 25 and p.age < 60 or false)(P)");
  const ExprPtr& body = e->child(0)->child(0);
  // or is loosest.
  EXPECT_EQ(body->kind(), ExprKind::kOr);
  EXPECT_EQ(body->child(0)->kind(), ExprKind::kAnd);
}

TEST(AquaParserTest, JoinAndIf) {
  ExprPtr join = P("join(\\a b. a.age > b.age, \\a b. [a, b])(P, P)");
  EXPECT_EQ(join->kind(), ExprKind::kJoin);
  EXPECT_EQ(join->child(0)->params().size(), 2u);
  ExprPtr cond = P("app(\\p. if p.age > 25 then p.child else {})(P)");
  EXPECT_EQ(cond->child(0)->child(0)->kind(), ExprKind::kIfThenElse);
}

TEST(AquaParserTest, Errors) {
  EXPECT_FALSE(ParseAqua("app(\\p. p)(").ok());
  EXPECT_FALSE(ParseAqua("app(\\. p)(P)").ok());
  EXPECT_FALSE(ParseAqua("sel(\\a b c. a)(P)").ok());
  EXPECT_FALSE(ParseAqua("a = b").ok());
  EXPECT_FALSE(ParseAqua("\"unterminated").ok());
}

TEST(AquaParserTest, OverlongIntegerLiteralIsErrorNotAbort) {
  // Overflows int64: the unguarded std::stoll this used to reach would
  // throw std::out_of_range and abort.
  auto overlong = ParseAqua("sel(\\p. p.age > 99999999999999999999)(P)");
  ASSERT_FALSE(overlong.ok());
  EXPECT_EQ(overlong.status().code(), StatusCode::kInvalidArgument);
  // The int64 boundary itself still parses.
  EXPECT_TRUE(ParseAqua("sel(\\p. p.age > 9223372036854775807)(P)").ok());
}

TEST(AquaParserTest, RoundTripsThroughToString) {
  for (const char* text :
       {"app(\\p. [p, sel(\\c. p.age > 25)(p.child)])(P)",
        "flatten(app(\\p. p.grgs)(P))",
        "sel(\\p. p.age in {} or not p.age > 3)(P)",
        "join(\\a b. a in b.cars, \\a b. [a, b.grgs])(V, P)"}) {
    ExprPtr once = P(text);
    ASSERT_NE(once, nullptr);
    ExprPtr twice = P(once->ToString().c_str());
    ASSERT_NE(twice, nullptr);
    EXPECT_TRUE(AlphaEqual(once, twice)) << once->ToString();
  }
}

TEST(AquaExprTest, FreeVars) {
  ExprPtr a4_body = P("app(\\p. sel(\\c. p.age > 25)(p.child))(P)");
  const ExprPtr& sel = a4_body->child(0)->child(0);
  const ExprPtr& pred = sel->child(0)->child(0);
  auto free = FreeVars(pred);
  EXPECT_EQ(free.count("p"), 1u);
  EXPECT_EQ(free.count("c"), 0u);
  // Whole query is closed.
  EXPECT_TRUE(FreeVars(a4_body).empty());
}

TEST(AquaExprTest, SubstituteSimple) {
  // (p.age)[p := q.addr]  ==  q.addr.age
  ExprPtr path = Expr::FunCall("age", Expr::Var("p"));
  ExprPtr replacement = Expr::FunCall("addr", Expr::Var("q"));
  ExprPtr result = SubstituteVar(path, "p", replacement);
  EXPECT_EQ(result->ToString(), "q.addr.age");
}

TEST(AquaExprTest, SubstituteStopsAtShadowingBinder) {
  // (sel(\p. p.age > 25)(p.child))[p := X]: only the outer p is replaced.
  ExprPtr expr = Expr::Sel(
      Expr::Lambda({"p"}, Expr::MakeBinOp(BinOp::kGt,
                                          Expr::FunCall("age",
                                                        Expr::Var("p")),
                                          Expr::Const(Value::Int(25)))),
      Expr::FunCall("child", Expr::Var("p")));
  ExprPtr result = SubstituteVar(expr, "p", Expr::Var("x"));
  EXPECT_EQ(result->ToString(),
            "sel(\\p. (p.age > 25))(x.child)");
}

TEST(AquaExprTest, SubstituteAvoidsCapture) {
  // (\y. x)[x := y] must NOT become \y. y.
  ExprPtr lambda = Expr::Lambda({"y"}, Expr::Var("x"));
  ExprPtr result = SubstituteVar(lambda, "x", Expr::Var("y"));
  ASSERT_EQ(result->kind(), ExprKind::kLambda);
  EXPECT_NE(result->params()[0], "y");
  EXPECT_EQ(result->child(0)->kind(), ExprKind::kVar);
  EXPECT_EQ(result->child(0)->name(), "y");
}

TEST(AquaExprTest, AlphaEquality) {
  EXPECT_TRUE(AlphaEqual(P("app(\\p. p.age)(P)"), P("app(\\q. q.age)(P)")));
  EXPECT_FALSE(AlphaEqual(P("app(\\p. p.age)(P)"),
                          P("app(\\p. p.name)(P)")));
  EXPECT_FALSE(AlphaEqual(P("app(\\p. p.age)(P)"),
                          P("app(\\p. p.age)(V)")));
  // The paper's A3 vs A4: structurally identical up to one variable.
  EXPECT_FALSE(AlphaEqual(QueryA3(), QueryA4()));
}

class AquaEvalTest : public ::testing::Test {
 protected:
  AquaEvalTest() {
    CarWorldOptions options;
    options.num_persons = 12;
    options.num_vehicles = 8;
    options.num_addresses = 6;
    options.seed = 21;
    db_ = BuildCarWorld(options);
  }

  Value Eval(const char* text) {
    auto expr = ParseAqua(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    AquaEvaluator evaluator(db_.get());
    auto value = evaluator.EvalQuery(expr.value());
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? std::move(value).value() : Value::Null();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(AquaEvalTest, SelFiltersByPredicate) {
  Value adults = Eval("sel(\\p. p.age > 25)(P)");
  Value all = db_->Extent("P").value();
  EXPECT_LE(adults.SetSize(), all.SetSize());
  for (const Value& p : adults.elements()) {
    EXPECT_GT(db_->GetAttribute(p, "age").value().int_value(), 25);
  }
}

TEST_F(AquaEvalTest, AppMapsBody) {
  Value ages = Eval("app(\\p. p.age)(P)");
  for (const Value& a : ages.elements()) EXPECT_TRUE(a.is_int());
}

TEST_F(AquaEvalTest, NestedEnvironmentVisibility) {
  // Inner lambda sees the outer variable.
  Value result = Eval("app(\\p. sel(\\c. p.age > c.age)(P))(P)");
  EXPECT_TRUE(result.is_set());
}

TEST_F(AquaEvalTest, JoinSemantics) {
  Value pairs = Eval("join(\\a b. a in b.cars, \\a b. a)(V, P)");
  // Every result vehicle is someone's car.
  for (const Value& v : pairs.elements()) {
    bool owned = false;
    for (const Value& p : db_->Extent("P").value().elements()) {
      if (db_->GetAttribute(p, "cars").value().SetContains(v)) owned = true;
    }
    EXPECT_TRUE(owned);
  }
}

TEST_F(AquaEvalTest, IfThenElse) {
  Value result = Eval(
      "app(\\p. if p.age > 25 then [p, p.child] else [p, {}])(P)");
  for (const Value& pair : result.elements()) {
    int64_t age =
        db_->GetAttribute(pair.first(), "age").value().int_value();
    if (age <= 25) {
      EXPECT_EQ(pair.second(), Value::EmptySet());
    } else {
      EXPECT_EQ(pair.second(),
                db_->GetAttribute(pair.first(), "child").value());
    }
  }
}

TEST_F(AquaEvalTest, ErrorsSurface) {
  auto expr = ParseAqua("sel(\\p. p.age)(P)");  // non-bool predicate
  ASSERT_TRUE(expr.ok());
  AquaEvaluator evaluator(db_.get());
  EXPECT_FALSE(evaluator.EvalQuery(expr.value()).ok());
  auto unknown = ParseAqua("app(\\p. p.salary)(P)");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(evaluator.EvalQuery(unknown.value()).ok());
}

class AquaTransformTest : public AquaEvalTest {
 protected:
  Value EvalExpr(const ExprPtr& expr) {
    AquaEvaluator evaluator(db_.get());
    auto value = evaluator.EvalQuery(expr);
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? std::move(value).value() : Value::Null();
  }
};

TEST_F(AquaTransformTest, FuseAppAppRequiresBodyRoutine) {
  // Figure 1 T1: the cities query.
  ExprPtr query = P("app(\\a. a.city)(app(\\p. p.addr)(P))");
  AquaTransformStats stats;
  auto fused = FuseAppApp(query, &stats);
  ASSERT_TRUE(fused.ok()) << fused.status();
  EXPECT_TRUE(stats.applied);
  EXPECT_GT(stats.body_ops, 0);  // substitution = code
  EXPECT_TRUE(AlphaEqual(fused.value(), P("app(\\p. p.addr.city)(P)")));
  EXPECT_EQ(EvalExpr(query), EvalExpr(fused.value()));
}

TEST_F(AquaTransformTest, FuseAppAppRejectsOtherShapes) {
  AquaTransformStats stats;
  EXPECT_FALSE(FuseAppApp(P("sel(\\p. p.age > 3)(P)"), &stats).ok());
  EXPECT_FALSE(stats.applied);
}

TEST_F(AquaTransformTest, SwapProjectSelectNeedsRenaming) {
  // Figure 1 T2, including the paper's point that '\x. x.age' must be
  // recognized as a subfunction of '\p. p.age > 25' via renaming.
  ExprPtr query = P("app(\\x. x.age)(sel(\\p. p.age > 25)(P))");
  AquaTransformStats stats;
  auto swapped = SwapProjectSelect(query, &stats);
  ASSERT_TRUE(swapped.ok()) << swapped.status();
  EXPECT_GT(stats.head_ops, 0);  // renaming + comparison = code
  EXPECT_GT(stats.body_ops, 0);  // predicate decomposition = code
  EXPECT_TRUE(AlphaEqual(swapped.value(),
                         P("sel(\\a. a > 25)(app(\\p. p.age)(P))")));
  EXPECT_EQ(EvalExpr(query), EvalExpr(swapped.value()));
}

TEST_F(AquaTransformTest, SwapRejectsMismatchedPaths) {
  // Projection and predicate use different paths: must not fire.
  ExprPtr query = P("app(\\x. x.name)(sel(\\p. p.age > 25)(P))");
  AquaTransformStats stats;
  EXPECT_FALSE(SwapProjectSelect(query, &stats).ok());
}

TEST_F(AquaTransformTest, CodeMotionAppliesToA4Only) {
  // A4: predicate on the person -> hoistable.
  AquaTransformStats stats4;
  auto moved = AquaCodeMotion(QueryA4(), &stats4);
  ASSERT_TRUE(moved.ok()) << moved.status();
  EXPECT_GT(stats4.head_ops, 0);  // freeness analysis = code
  EXPECT_TRUE(AlphaEqual(
      moved.value(),
      P("app(\\p. if p.age > 25 then [p, p.child] else [p, {}])(P)")));
  EXPECT_EQ(EvalExpr(QueryA4()), EvalExpr(moved.value()));

  // A3: predicate on the child -> the SAME structural match succeeds, and
  // only the freeness head routine rejects it.
  AquaTransformStats stats3;
  auto blocked = AquaCodeMotion(QueryA3(), &stats3);
  EXPECT_FALSE(blocked.ok());
  EXPECT_FALSE(stats3.applied);
  EXPECT_GT(stats3.head_ops, 0);  // it had to analyze the environment
}

TEST_F(AquaTransformTest, A3A4AreStructurallyIdenticalModuloOneVar) {
  // The paper's Section 2.2 observation.
  EXPECT_EQ(QueryA3()->node_count(), QueryA4()->node_count());
  EXPECT_FALSE(AlphaEqual(QueryA3(), QueryA4()));
}

}  // namespace
}  // namespace aqua
}  // namespace kola
