#include <gtest/gtest.h>

#include "aqua/eval.h"
#include "aqua/parser.h"
#include "aqua/transform.h"
#include "eval/evaluator.h"
#include "optimizer/code_motion.h"
#include "optimizer/hidden_join.h"
#include "translate/translate.h"
#include "values/car_world.h"

namespace kola {
namespace {

class TranslateTest : public ::testing::Test {
 protected:
  TranslateTest() {
    CarWorldOptions options;
    options.num_persons = 12;
    options.num_vehicles = 8;
    options.num_addresses = 6;
    options.seed = 31;
    db_ = BuildCarWorld(options);
  }

  aqua::ExprPtr ParseA(const char* text) {
    auto expr = aqua::ParseAqua(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    return expr.ok() ? std::move(expr).value() : nullptr;
  }

  TermPtr Translate(const aqua::ExprPtr& expr) {
    Translator translator;
    auto term = translator.TranslateQuery(expr);
    EXPECT_TRUE(term.ok()) << term.status();
    return term.ok() ? std::move(term).value() : nullptr;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(TranslateTest, AccessPathShapes) {
  EXPECT_EQ(Translator::AccessPath(0, 1)->ToString(), "id");
  EXPECT_EQ(Translator::AccessPath(0, 2)->ToString(), "pi1");
  EXPECT_EQ(Translator::AccessPath(1, 2)->ToString(), "pi2");
  EXPECT_EQ(Translator::AccessPath(0, 3)->ToString(), "pi1 o pi1");
  EXPECT_EQ(Translator::AccessPath(1, 3)->ToString(), "pi2 o pi1");
  EXPECT_EQ(Translator::AccessPath(2, 3)->ToString(), "pi2");
}

TEST_F(TranslateTest, SimpleMapTranslation) {
  TermPtr term = Translate(ParseA("app(\\p. p.addr.city)(P)"));
  EXPECT_EQ(term->ToString(), "iterate(Kp(T), city o addr) ! P");
}

TEST_F(TranslateTest, SelectionTranslation) {
  TermPtr term = Translate(ParseA("sel(\\p. p.age > 25)(P)"));
  EXPECT_EQ(term->ToString(), "iterate(gt @ (age, Kf(25)), id) ! P");
}

TEST_F(TranslateTest, GarageQueryTranslatesToKG1Exactly) {
  // Section 3: the AQUA garage query's KOLA translation IS Figure 3's KG1.
  TermPtr term = Translate(aqua::AquaGarageQuery());
  EXPECT_TRUE(Term::Equal(term, GarageQueryKG1()))
      << "got:  " << term->ToString() << "\nwant: "
      << GarageQueryKG1()->ToString();
}

TEST_F(TranslateTest, A3A4TranslateToK3K4Exactly) {
  EXPECT_TRUE(Term::Equal(Translate(aqua::QueryA3()), QueryK3()))
      << Translate(aqua::QueryA3())->ToString();
  EXPECT_TRUE(Term::Equal(Translate(aqua::QueryA4()), QueryK4()))
      << Translate(aqua::QueryA4())->ToString();
}

TEST_F(TranslateTest, JoinTranslation) {
  TermPtr term =
      Translate(ParseA("join(\\a b. a in b.cars, \\a b. [a, b])(V, P)"));
  EXPECT_EQ(term->ToString(),
            "join(in @ (pi1, cars o pi2), (pi1, pi2)) ! [V, P]");
}

TEST_F(TranslateTest, IfThenElseBecomesCon) {
  TermPtr term = Translate(
      ParseA("app(\\p. if p.age > 25 then p.child else {})(P)"));
  EXPECT_EQ(term->ToString(),
            "iterate(Kp(T), con(gt @ (age, Kf(25)), child, Kf({}))) ! P");
}

TEST_F(TranslateTest, UntranslatableConstructsError) {
  Translator translator;
  // Free variable at top level.
  auto open = translator.TranslateQuery(aqua::Expr::Var("x"));
  EXPECT_FALSE(open.ok());
  // Boolean as an object inside a map.
  auto boolean = translator.TranslateQuery(
      ParseA("app(\\p. p.age > 25)(P)"));
  EXPECT_FALSE(boolean.ok());
  // join under an environment.
  auto nested_join = translator.TranslateQuery(
      ParseA("app(\\p. join(\\a b. a in b.cars and p.age > 3, \\a b. a)"
             "(V, P))(P)"));
  EXPECT_FALSE(nested_join.ok());
}

// The central translator property: AQUA evaluation and KOLA evaluation of
// the translation agree, over a feature-covering query corpus.
class TranslationEquivalence
    : public TranslateTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(TranslationEquivalence, AquaAndKolaAgree) {
  aqua::ExprPtr expr = ParseA(GetParam());
  ASSERT_NE(expr, nullptr);
  TermPtr term = Translate(expr);
  ASSERT_NE(term, nullptr);

  aqua::AquaEvaluator aqua_eval(db_.get());
  auto aqua_value = aqua_eval.EvalQuery(expr);
  ASSERT_TRUE(aqua_value.ok()) << aqua_value.status();

  auto kola_value = EvalQuery(*db_, term);
  ASSERT_TRUE(kola_value.ok()) << kola_value.status() << "\n"
                               << term->ToString();
  EXPECT_EQ(aqua_value.value(), kola_value.value()) << term->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TranslationEquivalence,
    ::testing::Values(
        "P",
        "app(\\p. p.age)(P)",
        "app(\\p. p.addr.city)(P)",
        "sel(\\p. p.age > 25)(P)",
        "sel(\\p. p.age > 20 and p.age < 60)(P)",
        "sel(\\p. not p.age > 20 or p.age == 33)(P)",
        "app(\\x. x.age)(sel(\\p. p.age > 25)(P))",
        "flatten(app(\\p. p.child)(P))",
        "app(\\p. [p, p.cars])(P)",
        "app(\\p. [p.age, [p.name, p.addr.city]])(P)",
        "app(\\p. sel(\\c. p.age > c.age)(P))(P)",
        "app(\\p. app(\\c. c.age)(p.child))(P)",
        "app(\\p. [p, sel(\\c. c.age > 25)(p.child)])(P)",
        "app(\\p. [p, sel(\\c. p.age > 25)(p.child)])(P)",
        "app(\\v. [v, flatten(app(\\p. p.grgs)(sel(\\p. v in p.cars)"
        "(P)))])(V)",
        "app(\\p. if p.age > 25 then [p, p.child] else [p, {}])(P)",
        "join(\\a b. a in b.cars, \\a b. [a, b.grgs])(V, P)",
        "join(\\a b. a.age > b.age, \\a b. [a.name, b.name])(P, P)",
        "app(\\p. app(\\c. app(\\g. [p.age, [c.age, g.age]])(c.child))"
        "(p.child))(P)",
        "sel(\\p. p.age in {30, 40, 50})(P)",
        "app(\\p. flatten(app(\\c. c.child)(p.child)))(P)"));

TEST_F(TranslateTest, SizeRatioStaysUnderTwo) {
  // Section 4.2: "translated queries are less than twice the size of the
  // queries they translate".
  const char* corpus[] = {
      "app(\\p. p.addr.city)(P)",
      "sel(\\p. p.age > 25)(P)",
      "app(\\p. [p, sel(\\c. p.age > 25)(p.child)])(P)",
      "app(\\v. [v, flatten(app(\\p. p.grgs)(sel(\\p. v in p.cars)(P)))])"
      "(V)",
      "app(\\p. app(\\c. app(\\g. [p.age, [c.age, g.age]])(c.child))"
      "(p.child))(P)",
  };
  for (const char* text : corpus) {
    auto sizes = MeasureTranslation(ParseA(text));
    ASSERT_TRUE(sizes.ok()) << sizes.status();
    EXPECT_LT(sizes->ratio(), 2.0) << text << " ratio " << sizes->ratio();
    EXPECT_GT(sizes->kola_nodes, 0u);
  }
}

TEST_F(TranslateTest, MaxEnvDepthCountsLambdaNesting) {
  EXPECT_EQ(MaxEnvDepth(ParseA("P")), 0u);
  EXPECT_EQ(MaxEnvDepth(ParseA("app(\\p. p.age)(P)")), 1u);
  EXPECT_EQ(MaxEnvDepth(ParseA("app(\\p. sel(\\c. p.age > c.age)(P))(P)")),
            2u);
  EXPECT_EQ(MaxEnvDepth(ParseA("join(\\a b. a.age > b.age, \\a b. a)"
                               "(P, P)")),
            2u);
}

TEST_F(TranslateTest, TranslatedCodeMotionPipeline) {
  // Full pipeline: AQUA A4 -> translate -> KOLA code motion -> evaluate;
  // equals the AQUA evaluation of the paper's hoisted form.
  TermPtr k4 = Translate(aqua::QueryA4());
  Rewriter rewriter;
  auto moved = ApplyCodeMotion(k4, rewriter);
  ASSERT_TRUE(moved.ok());
  EXPECT_TRUE(moved->moved);

  aqua::AquaEvaluator aqua_eval(db_.get());
  auto expected = aqua_eval.EvalQuery(
      ParseA("app(\\p. if p.age > 25 then [p, p.child] else [p, {}])(P)"));
  ASSERT_TRUE(expected.ok());
  auto actual = EvalQuery(*db_, moved->query);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(expected.value(), actual.value());
}

}  // namespace
}  // namespace kola
