// The Section 6 bag extension: multiset values, collection-polymorphic
// evaluation, the distinct/tobag/card primitives, and property-based
// verification of the duplicate-elimination-deferral rules (these involve
// run-time collection polymorphism outside the structural type system, so
// they get dedicated randomized checks here).

#include <gtest/gtest.h>

#include "common/random.h"
#include "eval/evaluator.h"
#include "rewrite/generate.h"
#include "rewrite/engine.h"
#include "rewrite/match.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

TEST(BagValueTest, KeepsDuplicatesSorted) {
  Value b = Value::MakeBag({Value::Int(3), Value::Int(1), Value::Int(3)});
  EXPECT_TRUE(b.is_bag());
  EXPECT_TRUE(b.is_collection());
  EXPECT_FALSE(b.is_set());
  EXPECT_EQ(b.SetSize(), 3u);
  EXPECT_EQ(b.ToString(), "{|1, 3, 3|}");
}

TEST(BagValueTest, BagAndSetAreDistinctValues) {
  Value b = Value::MakeBag({Value::Int(1), Value::Int(2)});
  Value s = Value::MakeSet({Value::Int(1), Value::Int(2)});
  EXPECT_NE(b, s);  // different kinds
  EXPECT_EQ(b, Value::MakeBag({Value::Int(2), Value::Int(1)}));
}

TEST(BagValueTest, MembershipAndCompare) {
  Value b = Value::MakeBag({Value::Int(1), Value::Int(1)});
  EXPECT_TRUE(b.SetContains(Value::Int(1)));
  EXPECT_FALSE(b.SetContains(Value::Int(2)));
  EXPECT_LT(Value::MakeBag({Value::Int(1)}),
            Value::MakeBag({Value::Int(1), Value::Int(1)}));
}

class BagEvalTest : public ::testing::Test {
 protected:
  BagEvalTest() {
    CarWorldOptions options;
    options.num_persons = 8;
    db_ = BuildCarWorld(options);
  }

  Value Eval(const std::string& text) {
    auto term = ParseQuery(text);
    EXPECT_TRUE(term.ok()) << term.status();
    auto value = EvalQuery(*db_, term.value());
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? std::move(value).value() : Value::Null();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(BagEvalTest, BagLiteralsParseAndRoundTrip) {
  Value b = Eval("id ! {|1, 1, 2|}");
  EXPECT_EQ(b, Value::MakeBag({Value::Int(1), Value::Int(1),
                               Value::Int(2)}));
  // Round trip through printing.
  auto term = ParseQuery(Lit(b)->ToString());
  ASSERT_TRUE(term.ok()) << term.status();
  EXPECT_EQ(term.value()->literal(), b);
  EXPECT_EQ(Eval("card ! {||}"), Value::Int(0));
}

TEST_F(BagEvalTest, IterateIsCollectionPolymorphic) {
  // Over a set, duplicates collapse; over a bag they are preserved.
  EXPECT_EQ(Eval("iterate(Kp(T), Kf(7)) ! {1, 2, 3}"),
            Value::MakeSet({Value::Int(7)}));
  EXPECT_EQ(Eval("iterate(Kp(T), Kf(7)) ! {|1, 2, 3|}"),
            Value::MakeBag({Value::Int(7), Value::Int(7), Value::Int(7)}));
}

TEST_F(BagEvalTest, DistinctTobagCard) {
  EXPECT_EQ(Eval("distinct ! {|1, 1, 2|}"),
            Value::MakeSet({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(Eval("tobag ! {1, 2}"),
            Value::MakeBag({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(Eval("card ! {|1, 1, 2|}"), Value::Int(3));
  EXPECT_EQ(Eval("card ! {1, 1, 2}"), Value::Int(2));
  // distinct/tobag/card reject non-collections.
  auto term = ParseQuery("card ! 5");
  ASSERT_TRUE(term.ok());
  EXPECT_FALSE(EvalQuery(*db_, term.value()).ok());
}

TEST_F(BagEvalTest, FlatPreservesOuterKind) {
  EXPECT_EQ(Eval("flat ! {|{1, 2}, {2, 3}|}"),
            Value::MakeBag({Value::Int(1), Value::Int(2), Value::Int(2),
                            Value::Int(3)}));
  EXPECT_EQ(Eval("flat ! {{1, 2}, {2, 3}}"),
            Value::MakeSet({Value::Int(1), Value::Int(2), Value::Int(3)}));
}

TEST_F(BagEvalTest, BagSetOperators) {
  // Additive union.
  EXPECT_EQ(Eval("union ! [{|1|}, {|1, 2|}]"),
            Value::MakeBag({Value::Int(1), Value::Int(1), Value::Int(2)}));
  // Multiset intersection: min multiplicities.
  EXPECT_EQ(Eval("intersect ! [{|1, 1, 2|}, {|1, 3|}]"),
            Value::MakeBag({Value::Int(1)}));
  // Multiset difference.
  EXPECT_EQ(Eval("diff ! [{|1, 1, 2|}, {|1|}]"),
            Value::MakeBag({Value::Int(1), Value::Int(2)}));
  // Set semantics unchanged.
  EXPECT_EQ(Eval("intersect ! [{1, 2}, {2, 3}]"),
            Value::MakeSet({Value::Int(2)}));
}

TEST_F(BagEvalTest, JoinOverBagsYieldsBag) {
  Value result = Eval("join(Kp(T), pi1) ! [{|1, 1|}, {2}]");
  EXPECT_EQ(result, Value::MakeBag({Value::Int(1), Value::Int(1)}));
  // Fast path stays disabled for bags but semantics hold for keyed joins.
  Value keyed = Eval("join(eq @ (id x id), pi1) ! [{|1, 1, 2|}, {1, 2}]");
  EXPECT_EQ(keyed,
            Value::MakeBag({Value::Int(1), Value::Int(1), Value::Int(2)}));
}

TEST_F(BagEvalTest, DeferredDedupMatchesEagerOnGarageStylePipeline) {
  // distinct(flat(...bag pipeline...)) == set pipeline.
  Value eager = Eval("flat ! (iterate(Kp(T), child) ! P)");
  Value deferred = Eval(
      "distinct ! (flat ! (iterate(Kp(T), child) ! (tobag ! P)))");
  EXPECT_EQ(eager, deferred);
}

// ---------------------------------------------------------------------------
// Property-based verification of the bag.* rules.
// ---------------------------------------------------------------------------

class BagRuleSoundness : public ::testing::TestWithParam<int> {
 protected:
  BagRuleSoundness()
      : schema_(SchemaTypes::CarWorld()),
        db_(BuildCarWorld(CarWorldOptions{})) {}

  SchemaTypes schema_;
  std::unique_ptr<Database> db_;
};

TEST_P(BagRuleSoundness, RuleHoldsOnRandomBagsAndSets) {
  std::vector<Rule> rules = BagRules();
  const Rule& rule = rules[GetParam()];
  Rng rng(4242 + GetParam());
  TermGenerator gen(&schema_, db_.get(), &rng);

  int agreed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Instantiate ?f : int -> int and ?p : pred int when present.
    Bindings bindings;
    auto f = gen.RandomFn(Type::Int(), Type::Int(), 2);
    auto p = gen.RandomPred(Type::Int(), 2);
    // ?g (in the chain-tail variants) feeds the inner distinct, so it must
    // produce a collection.
    auto g = gen.RandomFn(Type::Int(), Type::Set(Type::Int()), 2);
    ASSERT_TRUE(f.ok() && p.ok() && g.ok());
    bindings.Bind("f", f.value());
    bindings.Bind("p", p.value());
    bindings.Bind("g", g.value());
    auto lhs = Substitute(rule.lhs, bindings);
    auto rhs = Substitute(rule.rhs, bindings);
    ASSERT_TRUE(lhs.ok() && rhs.ok()) << rule.id;

    // Argument: chain-tail rules take a scalar (the tail function builds
    // the collection); defer-dedup-flat wants a collection of collections;
    // everything else takes a bag or set of small ints (to force dups).
    bool chain = rule.id.find("-chain") != std::string::npos;
    bool nested = rule.id == "bag.defer-dedup-flat";
    Value argument;
    if (chain) {
      argument = Value::Int(rng.Uniform(0, 9));
    } else {
      std::vector<Value> elements;
      int64_t n = rng.Uniform(0, 6);
      for (int64_t i = 0; i < n; ++i) {
        if (nested) {
          std::vector<Value> inner;
          for (int64_t j = rng.Uniform(0, 3); j-- > 0;) {
            inner.push_back(Value::Int(rng.Uniform(0, 4)));
          }
          elements.push_back(rng.Chance(0.5)
                                 ? Value::MakeBag(std::move(inner))
                                 : Value::MakeSet(std::move(inner)));
        } else {
          elements.push_back(Value::Int(rng.Uniform(0, 5)));  // force dups
        }
      }
      argument = rng.Chance(0.5) ? Value::MakeBag(std::move(elements))
                                 : Value::MakeSet(std::move(elements));
    }

    Evaluator lhs_eval(db_.get());
    Evaluator rhs_eval(db_.get());
    auto lhs_result = lhs_eval.Apply(lhs.value(), argument);
    auto rhs_result = rhs_eval.Apply(rhs.value(), argument);
    ASSERT_EQ(lhs_result.ok(), rhs_result.ok())
        << rule.id << " on " << argument.ToString();
    if (lhs_result.ok()) {
      EXPECT_EQ(lhs_result.value(), rhs_result.value())
          << rule.ToString() << "\n  f = " << f.value()->ToString()
          << "\n  p = " << p.value()->ToString() << "\n  on "
          << argument.ToString();
      ++agreed;
    }
  }
  EXPECT_GT(agreed, 150);
}

INSTANTIATE_TEST_SUITE_P(AllBagRules, BagRuleSoundness,
                         ::testing::Range(0,
                                          static_cast<int>(BagRules()
                                                               .size())));

TEST(BagRuleApplication, DeferralRewritesAGarageStyleQuery) {
  // The optimizer can defer dedup: eager set pipeline rewrites to the bag
  // pipeline with one final distinct via bag.eager-dedup (right-to-left
  // reading of deferral).
  std::vector<Rule> rules = BagRules();
  Rewriter rewriter;
  const Rule& defer = FindRule(rules, "bag.defer-dedup-map");
  auto query = ParseTerm(
      "distinct o iterate(Kp(T), age) o distinct", Sort::kFunction);
  ASSERT_TRUE(query.ok());
  auto rewritten = rewriter.ApplyAtRoot(defer, query.value());
  ASSERT_TRUE(rewritten.has_value());
  EXPECT_EQ((*rewritten)->ToString(), "distinct o iterate(Kp(T), age)");
}

}  // namespace
}  // namespace kola
