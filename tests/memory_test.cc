// Memory-budgeted optimization: byte-level accounting (common/resource.h),
// the governor's sticky kMemory stop, the fixpoint cache's capacity-bounded
// second-chance eviction, interner byte tracking + epoch compaction, and
// the retry/escalation supervisor. The invariants under test:
//  * a byte budget degrades or quarantines, it never aborts or unsounds,
//  * an accounting-only governor (budget 0) never fails and never changes
//    results,
//  * eviction is trace-preserving: a bounded cache computes the same
//    fixpoint as an unbounded one,
//  * every report -- supervisor batches, the soundness sweep -- is
//    byte-identical at every jobs level.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/governor.h"
#include "common/resource.h"
#include "optimizer/optimizer.h"
#include "optimizer/retry.h"
#include "rewrite/engine.h"
#include "rules/catalog.h"
#include "term/intern.h"
#include "term/parser.h"
#include "values/car_world.h"
#include "verify/soundness.h"

namespace kola {
namespace {

TermPtr Q(const char* text, Sort sort = Sort::kObject) {
  auto t = ParseTerm(text, sort);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, ZeroBudgetAccountsButNeverExhausts) {
  MemoryBudget budget(0);
  EXPECT_TRUE(
      budget.Charge(MemoryCategory::kInternerArena, int64_t{1} << 30).ok());
  EXPECT_TRUE(budget.Charge(MemoryCategory::kEvalScratch, 512).ok());
  EXPECT_EQ(budget.charged(MemoryCategory::kInternerArena), int64_t{1} << 30);
  EXPECT_EQ(budget.charged(MemoryCategory::kEvalScratch), 512);
  EXPECT_EQ(budget.total_charged(), (int64_t{1} << 30) + 512);
  EXPECT_EQ(budget.peak_bytes(), (int64_t{1} << 30) + 512);
  EXPECT_FALSE(budget.exhausted());

  budget.Release(MemoryCategory::kInternerArena, int64_t{1} << 30);
  budget.Release(MemoryCategory::kEvalScratch, 512);
  EXPECT_EQ(budget.total_charged(), 0);
  // Peak is a high-water mark; releases never lower it.
  EXPECT_EQ(budget.peak_bytes(), (int64_t{1} << 30) + 512);
}

TEST(MemoryBudgetTest, OverchargeRollsBackLatchesAndRaisesPeak) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Charge(MemoryCategory::kFixpointCache, 60).ok());
  Status over = budget.Charge(MemoryCategory::kFixpointCache, 60);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(budget.exhausted());
  // The failed charge was rolled back (the caller must not allocate) but
  // the attempt still shows in the peak.
  EXPECT_EQ(budget.charged(MemoryCategory::kFixpointCache), 60);
  EXPECT_EQ(budget.total_charged(), 60);
  EXPECT_EQ(budget.peak_bytes(), 120);
  // Sticky: even a 1-byte charge that would fit now fails.
  EXPECT_FALSE(budget.Charge(MemoryCategory::kEvalScratch, 1).ok());
}

TEST(MemoryBudgetTest, NonPositiveChargesAreFreeEvenWhenExhausted) {
  MemoryBudget budget(10);
  EXPECT_FALSE(budget.Charge(MemoryCategory::kEvalScratch, 11).ok());
  EXPECT_TRUE(budget.Charge(MemoryCategory::kEvalScratch, 0).ok());
  EXPECT_TRUE(budget.Charge(MemoryCategory::kEvalScratch, -5).ok());
}

// ---------------------------------------------------------------------------
// MemoryCharge RAII + Governor integration
// ---------------------------------------------------------------------------

TEST(MemoryChargeTest, DestructorReleasesAndPartialReleaseClamps) {
  Governor governor{Governor::Limits{}};
  {
    MemoryCharge charge(&governor, MemoryCategory::kExploreFrontier);
    EXPECT_TRUE(charge.Add(500).ok());
    EXPECT_EQ(governor.memory().charged(MemoryCategory::kExploreFrontier),
              500);
    charge.Release(200);
    EXPECT_EQ(charge.bytes(), 300);
    // Clamped: releasing more than held hands back exactly what is held.
    charge.Release(10'000);
    EXPECT_EQ(charge.bytes(), 0);
    EXPECT_TRUE(charge.Add(42).ok());
  }
  EXPECT_EQ(governor.memory().charged(MemoryCategory::kExploreFrontier), 0);
  EXPECT_EQ(governor.memory().peak_bytes(), 500);
}

TEST(MemoryChargeTest, MoveTransfersOwnershipOfHeldBytes) {
  Governor governor{Governor::Limits{}};
  MemoryCharge a(&governor, MemoryCategory::kEvalScratch);
  ASSERT_TRUE(a.Add(100).ok());
  MemoryCharge b = std::move(a);
  EXPECT_EQ(a.bytes(), 0);
  EXPECT_EQ(b.bytes(), 100);
  EXPECT_EQ(governor.memory().charged(MemoryCategory::kEvalScratch), 100);
  b.ReleaseAll();
  EXPECT_EQ(governor.memory().charged(MemoryCategory::kEvalScratch), 0);
}

TEST(GovernorMemoryTest, MemoryExhaustionIsStickyAcrossAllProbes) {
  Governor governor{Governor::Limits{.memory_budget_bytes = 64}};
  EXPECT_TRUE(governor.ChargeMemory(MemoryCategory::kFixpointCache, 64).ok());
  Status over = governor.ChargeMemory(MemoryCategory::kFixpointCache, 1);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(over.message().find("memory budget"), std::string::npos);
  EXPECT_EQ(governor.cause(), Governor::StopCause::kMemory);
  // The stop is the governor's: step charges and clock probes fail too.
  EXPECT_FALSE(governor.Charge().ok());
  EXPECT_FALSE(governor.CheckNow().ok());
  // Releasing never un-stops (degradation already happened).
  governor.ReleaseMemory(MemoryCategory::kFixpointCache, 64);
  EXPECT_TRUE(governor.stopped());
  EXPECT_FALSE(governor.ChargeMemory(MemoryCategory::kEvalScratch, 1).ok());
}

TEST(GovernorMemoryTest, FirstCauseWins) {
  Governor governor{
      Governor::Limits{.step_budget = 1, .memory_budget_bytes = 1}};
  ASSERT_TRUE(governor.Charge().ok());
  EXPECT_FALSE(governor.Charge().ok());  // step budget trips first
  EXPECT_EQ(governor.cause(), Governor::StopCause::kBudget);
  // A later memory overcharge does not rewrite the cause.
  EXPECT_FALSE(governor.ChargeMemory(MemoryCategory::kEvalScratch, 2).ok());
  EXPECT_EQ(governor.cause(), Governor::StopCause::kBudget);
}

// ---------------------------------------------------------------------------
// FixpointCache: capacity-bounded second-chance eviction
// ---------------------------------------------------------------------------

TEST(FixpointCacheEvictionTest, CapacityBoundHoldsAndEvictionsCount) {
  // A rule that fires nowhere in the query, so one converged sweep records
  // a failed-match entry for every subtree above the memo's size floor.
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> rules = {FindRule(all, "ext.inv-inv")};
  TermPtr q = Q(
      "((lt @ (age, Kf(1)) & lt @ (age, Kf(2))) &"
      " (lt @ (age, Kf(3)) & lt @ (age, Kf(4)))) &"
      "((lt @ (age, Kf(5)) & lt @ (age, Kf(6))) &"
      " (lt @ (age, Kf(7)) & lt @ (age, Kf(8))))",
      Sort::kPredicate);

  RewriterOptions unbounded_options;
  unbounded_options.fixpoint_cache_capacity = 0;  // unbounded
  // The linear scan records a failure entry per probed subtree -- the
  // population this test needs; the indexed scan only seeds whole-term
  // entries (it prunes the probes the memo would have skipped).
  unbounded_options.use_rule_index = false;
  Rewriter unbounded_rw(nullptr, unbounded_options);
  FixpointCache unbounded;
  ASSERT_TRUE(
      unbounded_rw.Fixpoint(rules, q, nullptr, 10'000, &unbounded).ok());
  ASSERT_GT(unbounded.size(), 2u) << "query too small to exercise eviction";
  EXPECT_EQ(unbounded.evictions(), 0u);

  RewriterOptions bounded_options;
  bounded_options.fixpoint_cache_capacity = 2;
  bounded_options.use_rule_index = false;
  Rewriter bounded_rw(nullptr, bounded_options);
  FixpointCache bounded;
  auto bounded_result = bounded_rw.Fixpoint(rules, q, nullptr, 10'000,
                                            &bounded);
  ASSERT_TRUE(bounded_result.ok());
  EXPECT_TRUE(Term::Equal(bounded_result.value(), q));
  EXPECT_LE(bounded.size(), 2u);
  EXPECT_EQ(bounded.evictions(), unbounded.size() - 2);
}

TEST(FixpointCacheEvictionTest, BoundedCacheComputesSameFixpoint) {
  // A real rewriting workload (the Figure 4 style fusion pipeline): the
  // memo is only a negative-match filter, so losing entries to eviction
  // must never change the result or the trace -- only cost re-probes.
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> rules;
  for (const char* id :
       {"norm.fold", "norm.assoc", "11", "6", "5", "1", "2",
        "ext.and-true-right"}) {
    rules.push_back(FindRule(all, id));
  }
  TermPtr q =
      Q("iterate(Kp(T), city) o iterate(gt @ (age, Kf(25)), id) ! P");

  Trace unbounded_trace;
  auto unbounded = Rewriter().Fixpoint(rules, q, &unbounded_trace);
  ASSERT_TRUE(unbounded.ok());

  for (size_t capacity : {1u, 2u, 3u}) {
    RewriterOptions options;
    options.fixpoint_cache_capacity = capacity;
    Rewriter rewriter(nullptr, options);
    FixpointCache cache;
    Trace trace;
    auto bounded = rewriter.Fixpoint(rules, q, &trace, 10'000, &cache);
    ASSERT_TRUE(bounded.ok()) << "capacity " << capacity;
    EXPECT_TRUE(Term::Equal(bounded.value(), unbounded.value()))
        << "capacity " << capacity;
    EXPECT_EQ(trace.ToString(), unbounded_trace.ToString())
        << "capacity " << capacity;
    EXPECT_LE(cache.size(), capacity);
  }
}

TEST(FixpointCacheEvictionTest, RehitAfterEvictionStillCorrect) {
  // Re-running the same converged term through a capacity-1 cache: every
  // sweep evicts and re-records, and the answer never changes.
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> rules = {FindRule(all, "ext.inv-inv")};
  TermPtr q = Q("(lt @ (age, Kf(1)) & lt @ (age, Kf(2))) & lt @ (age, Kf(3))",
                Sort::kPredicate);
  RewriterOptions options;
  options.fixpoint_cache_capacity = 1;
  Rewriter rewriter(nullptr, options);
  FixpointCache cache;
  for (int round = 0; round < 3; ++round) {
    auto result = rewriter.Fixpoint(rules, q, nullptr, 10'000, &cache);
    ASSERT_TRUE(result.ok()) << "round " << round;
    EXPECT_TRUE(Term::Equal(result.value(), q));
  }
  EXPECT_LE(cache.size(), 1u);
  EXPECT_GT(cache.misses(), 0u);
}

TEST(FixpointCacheEvictionTest, ChargesReleasedOnEviction) {
  Governor governor{Governor::Limits{}};
  RewriterOptions options;
  options.fixpoint_cache_capacity = 2;
  options.governor = &governor;
  Rewriter rewriter(nullptr, options);
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> rules = {FindRule(all, "ext.inv-inv")};
  TermPtr q = Q(
      "((lt @ (age, Kf(1)) & lt @ (age, Kf(2))) &"
      " (lt @ (age, Kf(3)) & lt @ (age, Kf(4)))) & lt @ (age, Kf(5))",
      Sort::kPredicate);
  FixpointCache cache;
  ASSERT_TRUE(rewriter.Fixpoint(rules, q, nullptr, 10'000, &cache).ok());
  // Live bytes track live entries: evicted entries were released, so the
  // governor holds exactly size() * EntryFootprintBytes().
  EXPECT_EQ(governor.memory().charged(MemoryCategory::kFixpointCache),
            static_cast<int64_t>(cache.size()) *
                FixpointCache::EntryFootprintBytes());
  cache.Reset();
  EXPECT_EQ(governor.memory().charged(MemoryCategory::kFixpointCache), 0);
}

// ---------------------------------------------------------------------------
// TermInterner: byte tracking and epoch compaction
// ---------------------------------------------------------------------------

TEST(InternerMemoryTest, BytesTrackInsertionsAndCompactDropsUnreachable) {
  ScopedInterning off(false);  // pin construction-time interning off
  TermInterner interner;
  EXPECT_EQ(interner.bytes(), 0);
  {
    TermPtr a = interner.Intern(Q("iterate(Kp(T), age) ! P"));
    ASSERT_NE(a, nullptr);
    EXPECT_GT(interner.size(), 0u);
    EXPECT_GT(interner.bytes(), 0);
    // Still referenced: compaction must keep every node of `a`.
    size_t dropped = interner.Compact();
    EXPECT_EQ(dropped, 0u);
  }
  // Sole owner is the arena now; compaction sweeps the root and then the
  // children it was keeping alive, down to empty.
  size_t dropped = interner.Compact();
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(interner.size(), 0u);
  EXPECT_EQ(interner.bytes(), 0);
}

TEST(InternerMemoryTest, ScopedArenaCompactsOnScopeExit) {
  ScopedInterning off(false);
  TermInterner arena;
  TermPtr kept;
  size_t size_inside = 0;
  {
    ScopedInterning scope(&arena);
    ASSERT_EQ(ActiveTermInterner(), &arena);
    // Above the small-term floor, so Make routes through the arena.
    kept = Q("iterate(lt @ (age, Kf(30)), age) ! P");
    Q("iterate(lt @ (age, Kf(30)), city) ! P");  // dropped pre-scope-exit
    size_inside = arena.size();
    ASSERT_GT(size_inside, 0u);
  }
  // Scope exit compacted: the dropped query's unshared nodes are gone,
  // everything `kept` still references survives.
  EXPECT_LT(arena.size(), size_inside);
  EXPECT_GT(arena.size(), 0u);
  EXPECT_EQ(ActiveTermInterner(), nullptr);
  // The survivor is still canonical in the arena.
  EXPECT_EQ(arena.Intern(Q("iterate(lt @ (age, Kf(30)), age) ! P")).get(),
            kept.get());
}

TEST(InternerMemoryTest, ChargesGoToAmbientGovernorAndFailureIsSound) {
  ScopedInterning off(false);
  Governor governor{Governor::Limits{}};
  TermInterner interner;
  {
    ScopedMemoryGovernor scope(&governor);
    interner.Intern(Q("iterate(Kp(T), age) ! P"));
  }
  EXPECT_EQ(governor.memory().charged(MemoryCategory::kInternerArena),
            interner.bytes());

  // Exhausted budget: interning still returns a correct (just un-interned)
  // term, and the arena does not grow past the failure.
  Governor tiny{Governor::Limits{.memory_budget_bytes = 1}};
  TermInterner starved;
  ScopedMemoryGovernor scope(&tiny);
  TermPtr raw = Q("iterate(Kp(T), city) ! P");
  TermPtr result = starved.Intern(raw);
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(Term::Equal(result, raw));
  EXPECT_EQ(starved.size(), 0u);
  EXPECT_EQ(tiny.cause(), Governor::StopCause::kMemory);
}

// ---------------------------------------------------------------------------
// Optimizer under a byte budget
// ---------------------------------------------------------------------------

class BudgetedOptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CarWorldOptions world;
    world.num_persons = 12;
    world.num_vehicles = 8;
    world.num_addresses = 6;
    world.seed = 1;
    db_ = BuildCarWorld(world);
    properties_ = PropertyStore::Default();
  }

  std::unique_ptr<Database> db_;
  PropertyStore properties_ = PropertyStore::Default();
};

TEST_F(BudgetedOptimizerTest, OneByteBudgetDegradesNeverAborts) {
  Optimizer optimizer(&properties_, db_.get());
  TermPtr q =
      Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P");
  Governor governor{Governor::Limits{.memory_budget_bytes = 1}};
  auto result = optimizer.Optimize(q, &governor);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degradation.degraded);
  EXPECT_EQ(result->degradation.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.cause(), Governor::StopCause::kMemory);
  ASSERT_NE(result->query, nullptr);  // the input floor survives
}

TEST_F(BudgetedOptimizerTest, OptionsBudgetRoutesThroughPrivateGovernor) {
  RewriterOptions options;
  options.memory_budget_bytes = 1;
  Optimizer optimizer(&properties_, db_.get(), options);
  TermPtr q =
      Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P");
  auto result = optimizer.Optimize(q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degradation.degraded);
  EXPECT_EQ(result->degradation.code, StatusCode::kResourceExhausted);
}

TEST_F(BudgetedOptimizerTest, AccountingOnlyGovernorMatchesUngoverned) {
  Optimizer optimizer(&properties_, db_.get());
  TermPtr q =
      Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P");
  Governor meter{Governor::Limits{}};
  auto governed = optimizer.Optimize(q, &meter);
  auto plain = optimizer.Optimize(q);
  ASSERT_TRUE(governed.ok() && plain.ok());
  EXPECT_FALSE(governed->degradation.degraded);
  EXPECT_TRUE(Term::Equal(governed->query, plain->query));
  EXPECT_TRUE(Term::Equal(governed->rewritten, plain->rewritten));
  // The meter saw the pass: something was charged and released.
  EXPECT_GT(meter.memory().peak_bytes(), 0);
}

// ---------------------------------------------------------------------------
// RetrySupervisor
// ---------------------------------------------------------------------------

TEST_F(BudgetedOptimizerTest, SupervisorEscalatesUntilClean) {
  Optimizer optimizer(&properties_, db_.get());
  TermPtr q =
      Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P");
  RetryOptions retry;
  retry.memory_budget_bytes = 64;  // guaranteed first-attempt degradation
  retry.max_attempts = 24;         // top of the schedule is ~a gigabyte
  RetrySupervisor supervisor(&optimizer, retry);
  RetryOutcome outcome = supervisor.Optimize(q);
  ASSERT_TRUE(outcome.ok()) << outcome.status;
  EXPECT_GE(outcome.report.attempts, 2);
  EXPECT_GT(outcome.report.final_budget, 64);
  EXPECT_FALSE(outcome.report.quarantined);
  EXPECT_FALSE(outcome.report.degraded);
  ASSERT_TRUE(outcome.result.has_value());
  // The clean escalated plan equals the never-budgeted plan.
  auto unbudgeted = optimizer.Optimize(q);
  ASSERT_TRUE(unbudgeted.ok());
  EXPECT_TRUE(Term::Equal(outcome.result->query, unbudgeted->query));
}

TEST_F(BudgetedOptimizerTest, SupervisorQuarantinesAtMaxEscalation) {
  Optimizer optimizer(&properties_, db_.get());
  TermPtr q =
      Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P");
  RetryOptions retry;
  retry.memory_budget_bytes = 1;  // 1 -> ~2 -> ~4 bytes: hopeless
  retry.max_attempts = 3;
  RetrySupervisor supervisor(&optimizer, retry);
  RetryOutcome outcome = supervisor.Optimize(q);
  ASSERT_TRUE(outcome.ok()) << outcome.status;
  EXPECT_EQ(outcome.report.attempts, 3);
  EXPECT_TRUE(outcome.report.quarantined);
  EXPECT_TRUE(outcome.report.degraded);
  // Quarantine keeps the floor plan, it never errors.
  ASSERT_TRUE(outcome.result.has_value());
  ASSERT_NE(outcome.result->query, nullptr);
}

TEST_F(BudgetedOptimizerTest, SupervisorBatchIsJobsInvariant) {
  ScopedInterning off(false);  // charges must be a pure function of the query
  Optimizer optimizer(&properties_, db_.get());
  std::vector<TermPtr> queries = {
      Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P"),
      Q("iterate(Kp(T), city) o iterate(Kp(T), addr) ! P"),
      Q("iterate(gt @ (age, Kf(30)), name) ! P"),
      Q("iterate(Kp(T), id) ! V"),
      Q("iterate(Kp(T), age) ! P"),
  };
  RetryOptions retry;
  retry.memory_budget_bytes = 700;  // some degrade-and-escalate, some clean
  retry.max_attempts = 4;
  RetrySupervisor supervisor(&optimizer, retry);

  auto serial = supervisor.OptimizeAll(queries, 1);
  auto parallel = supervisor.OptimizeAll(queries, 3);
  ASSERT_EQ(serial.size(), queries.size());
  ASSERT_EQ(parallel.size(), queries.size());
  bool any_retried = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << i << ": " << serial[i].status;
    ASSERT_TRUE(parallel[i].ok()) << i << ": " << parallel[i].status;
    EXPECT_EQ(serial[i].report.attempts, parallel[i].report.attempts) << i;
    EXPECT_EQ(serial[i].report.final_budget, parallel[i].report.final_budget)
        << i;
    EXPECT_EQ(serial[i].report.quarantined, parallel[i].report.quarantined)
        << i;
    EXPECT_EQ(serial[i].report.degraded, parallel[i].report.degraded) << i;
    EXPECT_TRUE(Term::Equal(serial[i].result->query,
                            parallel[i].result->query))
        << i;
    EXPECT_EQ(serial[i].result->degradation.ToString(),
              parallel[i].result->degradation.ToString())
        << i;
    any_retried = any_retried || serial[i].report.attempts > 1;
  }
  // The budget above is tuned so the sweep exercises the retry path; if
  // this fires, lower it rather than losing the coverage.
  EXPECT_TRUE(any_retried) << "budget too generous: nothing retried";
}

TEST_F(BudgetedOptimizerTest, SupervisorBatchPooledCacheStatsJobsInvariant) {
  ScopedInterning off(false);  // charges must be a pure function of the query
  Optimizer optimizer(&properties_, db_.get());
  std::vector<TermPtr> queries = {
      Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P"),
      Q("iterate(Kp(T), city) o iterate(Kp(T), addr) ! P"),
      Q("iterate(gt @ (age, Kf(30)), name) ! P"),
      Q("iterate(Kp(T), id) ! V"),
      Q("iterate(Kp(T), age) ! P"),
  };
  RetryOptions retry;
  retry.memory_budget_bytes = 700;
  retry.max_attempts = 4;
  RetrySupervisor supervisor(&optimizer, retry);

  auto key = [](const Rewriter::CacheStats& s) {
    return std::tuple(s.caches, s.entries, s.hits, s.misses, s.evictions);
  };
  const auto before = key(optimizer.rewriter().PooledCacheStats());
  auto serial = supervisor.OptimizeAll(queries, 1);
  const auto after_serial = key(optimizer.rewriter().PooledCacheStats());
  auto parallel = supervisor.OptimizeAll(queries, 3);
  const auto after_parallel = key(optimizer.rewriter().PooledCacheStats());

  // Governed supervised passes run on per-call Rewriter clones, never on
  // the member rewriter, so the pooled fixpoint-cache counters must not
  // depend on how the batch was scheduled -- a serial batch is not
  // secretly warmer than a parallel one. If these ever diverge, pool the
  // clone caches (RewriterOptions::reuse_fixpoint_caches) instead of
  // letting the serial path cheat.
  EXPECT_EQ(after_serial, after_parallel);
  EXPECT_EQ(before, after_serial);

  ASSERT_EQ(serial.size(), queries.size());
  ASSERT_EQ(parallel.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << i << ": " << serial[i].status;
    ASSERT_TRUE(parallel[i].ok()) << i << ": " << parallel[i].status;
    EXPECT_EQ(serial[i].report.attempts, parallel[i].report.attempts) << i;
    EXPECT_TRUE(
        Term::Equal(serial[i].result->query, parallel[i].result->query))
        << i;
    // Byte accounting is part of the determinism contract too: the peak
    // high-water marks (total and per category) fold over per-attempt
    // governors, which are a pure function of (query, options, index).
    EXPECT_GT(serial[i].report.peak_bytes, 0) << i;
    EXPECT_EQ(serial[i].report.peak_bytes, parallel[i].report.peak_bytes)
        << i;
    for (int c = 0; c < kNumMemoryCategories; ++c) {
      EXPECT_EQ(serial[i].report.category_peak_bytes[c],
                parallel[i].report.category_peak_bytes[c])
          << i << " category " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Tight-memory soundness sweep
// ---------------------------------------------------------------------------

TEST(MemorySoundnessTest, TightBudgetSweepStaysCleanAndJobsInvariant) {
  SoundnessOptions options;
  options.trials = 25;
  options.seed = 11;
  options.gen_depth = 3;
  options.memory_budget_bytes = 3'000;  // tight: degradations expected
  options.retries = 2;
  options.jobs = 1;
  auto serial = SoundnessHarness(options).Run();
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_TRUE(serial->clean()) << serial->Summary();
  EXPECT_GT(serial->degraded + serial->quarantined, 0) << serial->Summary();

  options.jobs = 4;
  auto parallel = SoundnessHarness(options).Run();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(serial->Summary(), parallel->Summary());
}

}  // namespace
}  // namespace kola
