#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "optimizer/hidden_join.h"
#include "optimizer/monolithic.h"
#include "rewrite/engine.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

class HiddenJoinTest : public ::testing::Test {
 protected:
  HiddenJoinTest() {
    CarWorldOptions options;
    options.num_persons = 14;
    options.num_vehicles = 9;
    options.num_addresses = 7;
    options.seed = 11;
    db_ = BuildCarWorld(options);
  }

  Value Eval(const TermPtr& query) {
    auto value = EvalQuery(*db_, query);
    EXPECT_TRUE(value.ok()) << value.status() << "\n"
                            << query->ToString();
    return value.ok() ? std::move(value).value() : Value::Null();
  }

  Rewriter rewriter_;
  std::unique_ptr<Database> db_;
};

TEST_F(HiddenJoinTest, GarageQueryConvertsToKG2Exactly) {
  auto result = UntangleHiddenJoin(GarageQueryKG1(), rewriter_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converted);
  EXPECT_TRUE(Term::Equal(result->query, GarageQueryKG2()))
      << "got:  " << result->query->ToString() << "\nwant: "
      << GarageQueryKG2()->ToString() << "\ntrace:\n"
      << result->trace.ToString();
}

TEST_F(HiddenJoinTest, AllFiveStepsFireOnGarageQuery) {
  auto result = UntangleHiddenJoin(GarageQueryKG1(), rewriter_);
  ASSERT_TRUE(result.ok());
  const auto& blocks = result->blocks_fired;
  auto fired = [&](const std::string& name) {
    return std::find(blocks.begin(), blocks.end(), name) != blocks.end();
  };
  EXPECT_TRUE(fired("break-up"));
  EXPECT_TRUE(fired("bottom-out"));
  EXPECT_TRUE(fired("pull-up-nest"));
  EXPECT_TRUE(fired("absorb-join"));
  EXPECT_TRUE(fired("polish"));
  // The garage query has a single unnest already adjacent to nest, so
  // step 4 is a no-op (Section 4.1, Step 4 discussion).
  EXPECT_FALSE(fired("pull-up-unnest"));
}

TEST_F(HiddenJoinTest, GarageTransformPreservesSemantics) {
  auto result = UntangleHiddenJoin(GarageQueryKG1(), rewriter_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Eval(GarageQueryKG1()), Eval(result->query));
}

TEST_F(HiddenJoinTest, EveryIntermediateStepPreservesSemantics) {
  // Re-evaluate after every single rule firing: each micro-step is an
  // equivalence (strong end-to-end check of the whole derivation).
  auto result = UntangleHiddenJoin(GarageQueryKG1(), rewriter_);
  ASSERT_TRUE(result.ok());
  Value expected = Eval(GarageQueryKG1());
  for (const RewriteStep& step : result->trace.steps) {
    ASSERT_TRUE(step.result != nullptr);
    EXPECT_EQ(Eval(step.result), expected)
        << "semantics changed after rule " << step.rule_id << " at "
        << step.result->ToString();
  }
}

class HiddenJoinDepth : public HiddenJoinTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(HiddenJoinDepth, ConvertsAndPreservesSemanticsAtDepth) {
  auto query = MakeHiddenJoinQuery(GetParam());
  ASSERT_TRUE(query.ok()) << query.status();
  auto result = UntangleHiddenJoin(query.value(), rewriter_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converted) << result->query->ToString();

  // The final form is the paper's canonical shape (end of Section 4.1):
  //   nest(pi1, pi2) o [(unnest(pi1, pi2) x id) o]? (join(p, f), pi1)
  // applied to [A, B] -- at most ONE unnest directly below nest, and every
  // iterate absorbed into the join's (potentially complex) function.
  ASSERT_EQ(result->query->kind(), TermKind::kApplyFn);
  EXPECT_EQ(result->query->child(1)->kind(), TermKind::kPairObj);
  std::vector<TermPtr> factors;
  TermPtr chain = result->query->child(0);
  while (chain->kind() == TermKind::kCompose) {
    factors.push_back(chain->child(0));
    chain = chain->child(1);
  }
  factors.push_back(chain);
  ASSERT_GE(factors.size(), 2u) << result->query->ToString();
  ASSERT_LE(factors.size(), 3u) << result->query->ToString();
  EXPECT_EQ(factors.front()->kind(), TermKind::kNest);
  if (factors.size() == 3) {
    EXPECT_EQ(factors[1]->kind(), TermKind::kProduct);
    EXPECT_EQ(factors[1]->child(0)->kind(), TermKind::kUnnest);
  }
  const TermPtr& last = factors.back();
  ASSERT_EQ(last->kind(), TermKind::kPairFn) << last->ToString();
  EXPECT_EQ(last->child(0)->kind(), TermKind::kJoin);
  EXPECT_TRUE(last->child(1)->IsPrimFn("pi1"));

  EXPECT_EQ(Eval(query.value()), Eval(result->query))
      << result->query->ToString();
}

INSTANTIATE_TEST_SUITE_P(Depths, HiddenJoinDepth,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_F(HiddenJoinTest, NonHiddenJoinIsSimplifiedNotConverted) {
  // The inner query ranges over a set derived from the outer element
  // (p.child), not a named set: rule 19 must never fire, but break-up
  // still simplifies (the Section 4.2 "gradual rules" advantage).
  auto query = ParseTerm(
      "iterate(Kp(T), (id, iter(Kp(T), pi2) o (id, child))) ! P",
      Sort::kObject);
  ASSERT_TRUE(query.ok());
  auto result = UntangleHiddenJoin(query.value(), rewriter_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converted);
  // Break-up still decomposed the query.
  EXPECT_FALSE(result->blocks_fired.empty());
  // And semantics are preserved.
  EXPECT_EQ(Eval(query.value()), Eval(result->query));
}

TEST_F(HiddenJoinTest, MonolithicHandlesGarageShape) {
  MonolithicStats stats;
  auto rebuilt = MonolithicHiddenJoin(GarageQueryKG1(), &stats);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE(stats.applied);
  EXPECT_GT(stats.head_nodes_visited, 10);
  EXPECT_GT(stats.body_nodes_built, 10);
  EXPECT_TRUE(Term::Equal(rebuilt.value(), GarageQueryKG2()))
      << rebuilt.value()->ToString();
  EXPECT_EQ(Eval(rebuilt.value()), Eval(GarageQueryKG1()));
}

TEST_F(HiddenJoinTest, MonolithicLacksGenerality) {
  // Depth 3 and deeper: the gradual rules convert, the monolithic rule
  // dives and rejects -- the paper's Section 4.2 criticism, quantified.
  for (int depth : {1, 3, 4}) {
    auto query = MakeHiddenJoinQuery(depth);
    ASSERT_TRUE(query.ok());
    MonolithicStats stats;
    auto rebuilt = MonolithicHiddenJoin(query.value(), &stats);
    EXPECT_FALSE(rebuilt.ok()) << "depth " << depth;
    EXPECT_FALSE(stats.applied);
    EXPECT_TRUE(stats.rejected_after_dive);
    EXPECT_GT(stats.head_nodes_visited, 0);

    auto gradual = UntangleHiddenJoin(query.value(), rewriter_);
    ASSERT_TRUE(gradual.ok());
    EXPECT_TRUE(gradual->converted) << "depth " << depth;
  }
}

TEST_F(HiddenJoinTest, MakeHiddenJoinQueryShapes) {
  auto q1 = MakeHiddenJoinQuery(1);
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1.value()->kind(), TermKind::kApplyFn);
  auto q0 = MakeHiddenJoinQuery(0);
  EXPECT_FALSE(q0.ok());
  // Deeper queries are strictly larger.
  auto q3 = MakeHiddenJoinQuery(3);
  ASSERT_TRUE(q3.ok());
  EXPECT_GT(q3.value()->node_count(), q1.value()->node_count());
}

}  // namespace
}  // namespace kola
