#include <gtest/gtest.h>

#include "term/term.h"

namespace kola {
namespace {

TEST(TermTest, LeafSorts) {
  EXPECT_EQ(Id()->sort(), Sort::kFunction);
  EXPECT_EQ(GtP()->sort(), Sort::kPredicate);
  EXPECT_EQ(LitInt(5)->sort(), Sort::kObject);
  EXPECT_EQ(Collection("P")->sort(), Sort::kObject);
  EXPECT_EQ(BoolConst(true)->sort(), Sort::kBool);
}

TEST(TermTest, FormerSorts) {
  TermPtr f = Compose(PrimFn("city"), PrimFn("addr"));
  EXPECT_EQ(f->sort(), Sort::kFunction);
  EXPECT_EQ(f->kind(), TermKind::kCompose);

  TermPtr p = Oplus(GtP(), PairFn(PrimFn("age"), ConstFn(LitInt(25))));
  EXPECT_EQ(p->sort(), Sort::kPredicate);

  TermPtr q = Apply(Iterate(ConstPredTrue(), PrimFn("age")), Collection("P"));
  EXPECT_EQ(q->sort(), Sort::kObject);

  TermPtr b = TestPred(GtP(), PairObj(LitInt(3), LitInt(2)));
  EXPECT_EQ(b->sort(), Sort::kBool);
}

TEST(TermTest, MakeRejectsIllSortedChildren) {
  // Compose of a predicate is ill-sorted.
  auto bad = Term::Make(TermKind::kCompose, {GtP(), Id()});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(TermTest, MakeRejectsWrongArity) {
  auto bad = Term::Make(TermKind::kCompose, {Id()});
  EXPECT_FALSE(bad.ok());
  auto bad3 = Term::Make(TermKind::kCond, {ConstPredTrue(), Id()});
  EXPECT_FALSE(bad3.ok());
}

TEST(TermTest, MakeRejectsNamelessLeaves) {
  EXPECT_FALSE(Term::Make(TermKind::kPrimFn, {}).ok());
  EXPECT_FALSE(Term::Make(TermKind::kCollection, {}).ok());
  EXPECT_FALSE(Term::Make(TermKind::kMetaVar, {}).ok());
}

TEST(TermTest, BoolIsSubsortOfObject) {
  // Kf(T): bool constant where an object is expected.
  auto t = Term::Make(TermKind::kConstFn, {BoolConst(true)});
  EXPECT_TRUE(t.ok());
}

TEST(TermTest, EqualityIsStructural) {
  TermPtr a = Compose(PrimFn("city"), PrimFn("addr"));
  TermPtr b = Compose(PrimFn("city"), PrimFn("addr"));
  TermPtr c = Compose(PrimFn("addr"), PrimFn("city"));
  EXPECT_TRUE(Term::Equal(a, b));
  EXPECT_FALSE(Term::Equal(a, c));
  EXPECT_EQ(a->hash(), b->hash());
}

TEST(TermTest, EqualityDistinguishesLiterals) {
  EXPECT_FALSE(Term::Equal(LitInt(1), LitInt(2)));
  EXPECT_TRUE(Term::Equal(Lit(Value::MakeSet({Value::Int(1)})),
                          Lit(Value::MakeSet({Value::Int(1)}))));
}

TEST(TermTest, EqualityDistinguishesMetaVarSorts) {
  EXPECT_FALSE(Term::Equal(FnVar("f"), PredVar("f")));
  EXPECT_TRUE(Term::Equal(FnVar("f"), FnVar("f")));
}

TEST(TermTest, NodeCountCounts) {
  EXPECT_EQ(Id()->node_count(), 1u);
  EXPECT_EQ(Compose(Id(), Id())->node_count(), 3u);
  TermPtr garage_ish =
      Iterate(ConstPredTrue(), PairFn(Id(), ConstFn(Collection("P"))));
  // iterate, Kp, T, pair, id, Kf, P = 7 nodes.
  EXPECT_EQ(garage_ish->node_count(), 7u);
}

TEST(TermTest, HasMetavarsPropagates) {
  EXPECT_FALSE(Compose(Id(), Id())->has_metavars());
  EXPECT_TRUE(Compose(FnVar("f"), Id())->has_metavars());
  EXPECT_TRUE(Iterate(PredVar("p"), Id())->has_metavars());
}

TEST(TermTest, WithChildrenRebuilds) {
  TermPtr t = Compose(PrimFn("a"), PrimFn("b"));
  TermPtr u = t->WithChildren({PrimFn("c"), PrimFn("d")});
  EXPECT_EQ(u->kind(), TermKind::kCompose);
  EXPECT_EQ(u->child(0)->name(), "c");
  EXPECT_EQ(u->child(1)->name(), "d");
  // Original is unchanged (immutability).
  EXPECT_EQ(t->child(0)->name(), "a");
}

TEST(TermTest, ComposeChainNestsRight) {
  TermPtr chain = ComposeChain({PrimFn("f"), PrimFn("g"), PrimFn("h")});
  ASSERT_EQ(chain->kind(), TermKind::kCompose);
  EXPECT_EQ(chain->child(0)->name(), "f");
  ASSERT_EQ(chain->child(1)->kind(), TermKind::kCompose);
  EXPECT_EQ(chain->child(1)->child(0)->name(), "g");
  EXPECT_EQ(chain->child(1)->child(1)->name(), "h");
}

TEST(TermTest, ComposeChainSingleton) {
  TermPtr chain = ComposeChain({PrimFn("f")});
  EXPECT_EQ(chain->kind(), TermKind::kPrimFn);
}

TEST(TermPrintTest, LeavesAndFormers) {
  EXPECT_EQ(Id()->ToString(), "id");
  EXPECT_EQ(ConstPredTrue()->ToString(), "Kp(T)");
  EXPECT_EQ(Compose(PrimFn("city"), PrimFn("addr"))->ToString(),
            "city o addr");
  EXPECT_EQ(PairFn(Pi1(), Pi2())->ToString(), "(pi1, pi2)");
  EXPECT_EQ(PairObj(LitInt(1), LitInt(2))->ToString(), "[1, 2]");
  EXPECT_EQ(FnVar("f")->ToString(), "?f");
}

TEST(TermPrintTest, PrecedenceParenthesization) {
  // (f o g) x h needs no parens on the right side of x but the compose
  // binds tighter so none are inserted.
  TermPtr t = Product(Compose(PrimFn("f"), PrimFn("g")), PrimFn("h"));
  EXPECT_EQ(t->ToString(), "f o g x h");
  // x under o needs parens.
  TermPtr u = Compose(Product(PrimFn("f"), PrimFn("g")), PrimFn("h"));
  EXPECT_EQ(u->ToString(), "(f x g) o h");
}

TEST(TermPrintTest, RightAssociativeComposeChain) {
  TermPtr t = ComposeChain({PrimFn("f"), PrimFn("g"), PrimFn("h")});
  EXPECT_EQ(t->ToString(), "f o g o h");
  // Left-nested compose must print parens to round-trip.
  TermPtr left = Compose(Compose(PrimFn("f"), PrimFn("g")), PrimFn("h"));
  EXPECT_EQ(left->ToString(), "(f o g) o h");
}

TEST(TermPrintTest, OplusAndAnd) {
  TermPtr p = AndP(ConstPredTrue(), Oplus(GtP(), PrimFn("age")));
  EXPECT_EQ(p->ToString(), "Kp(T) & gt @ age");
  TermPtr q = Oplus(AndP(ConstPredTrue(), GtP()), PrimFn("age"));
  EXPECT_EQ(q->ToString(), "(Kp(T) & gt) @ age");
}

TEST(TermPrintTest, ApplyBindsLoosest) {
  TermPtr q = Apply(Iterate(ConstPredTrue(), PrimFn("age")), Collection("P"));
  EXPECT_EQ(q->ToString(), "iterate(Kp(T), age) ! P");
  TermPtr b = TestPred(GtP(), PairObj(LitInt(3), LitInt(2)));
  EXPECT_EQ(b->ToString(), "gt ? [3, 2]");
}

TEST(TermPrintTest, PaperGarageQueryShape) {
  // KG2 from Figure 3 prints readably.
  TermPtr kg2 = Compose(
      Nest(Pi1(), Pi2()),
      Compose(Product(Unnest(Pi1(), Pi2()), Id()),
              PairFn(Join(Oplus(InP(), Product(Id(), PrimFn("cars"))),
                          Product(Id(), PrimFn("grgs"))),
                     Pi1())));
  EXPECT_EQ(kg2->ToString(),
            "nest(pi1, pi2) o (unnest(pi1, pi2) x id) o "
            "(join(in @ id x cars, id x grgs), pi1)");
}

}  // namespace
}  // namespace kola
