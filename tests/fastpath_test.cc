// Physical fastpaths (hash join / inverted-index join / hash grouping)
// against the naive nested-loop semantics, on randomized worlds -- the
// data shapes the fixed demo worlds never produce: empty extents and
// duplicate-heavy attribute domains.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "eval/evaluator.h"
#include "term/parser.h"
#include "values/random_world.h"

namespace kola {
namespace {

/// The queries under test: the three structurally recognized fastpath
/// shapes, as full queries over the random-world extents.
const char* const kFastpathQueries[] = {
    // Hash join keyed on age vs year.
    "join(eq @ (age x year), (pi1, pi2)) ! [P, V]",
    // Inverted-index membership join on the set-valued cars attribute.
    "join(in @ (id x cars), pi2) ! [V, P]",
    // Hash grouping: persons keyed by age.
    "nest(pi1, pi2) ! [iterate(Kp(T), (age, id)) ! P, "
    "iterate(Kp(T), age) ! P]",
};

Value EvalOrDie(const Database& db, const TermPtr& query, bool fastpaths,
                int64_t* hits = nullptr) {
  Evaluator evaluator(&db,
                      EvalOptions{.physical_fastpaths = fastpaths});
  auto result = evaluator.EvalObject(query);
  EXPECT_TRUE(result.ok()) << query->ToString() << ": " << result.status();
  if (hits != nullptr) *hits = evaluator.fastpath_hits();
  return result.ok() ? result.value() : Value::Null();
}

TEST(FastpathRandomWorldTest, AgreesWithNaiveAcrossRandomWorlds) {
  int64_t total_hits = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    auto db = BuildRandomWorld(seed);
    for (const char* text : kFastpathQueries) {
      auto query = ParseQuery(text);
      ASSERT_TRUE(query.ok()) << text;
      int64_t hits = 0;
      Value fast = EvalOrDie(*db, query.value(), true, &hits);
      Value naive = EvalOrDie(*db, query.value(), false);
      EXPECT_EQ(fast, naive) << "seed " << seed << ": " << text;
      EXPECT_GT(hits, 0) << "fastpath did not engage for " << text;
    }
    total_hits += 1;
  }
  EXPECT_EQ(total_hits, 40);
}

TEST(FastpathRandomWorldTest, EmptyExtentsAgree) {
  // Scale 0 forces every extent empty: the join/group edge case where a
  // hash build side has nothing in it.
  RandomWorldOptions options;
  options.seed = 5;
  options.scale = 0;
  auto db = BuildRandomWorld(options);
  auto persons = db->Extent("P");
  ASSERT_TRUE(persons.ok());
  EXPECT_TRUE(persons.value().elements().empty());
  for (const char* text : kFastpathQueries) {
    auto query = ParseQuery(text);
    ASSERT_TRUE(query.ok()) << text;
    Value fast = EvalOrDie(*db, query.value(), true);
    Value naive = EvalOrDie(*db, query.value(), false);
    EXPECT_EQ(fast, naive) << text;
    EXPECT_TRUE(fast.is_collection());
    EXPECT_TRUE(fast.elements().empty()) << text;
  }
}

TEST(FastpathRandomWorldTest, DuplicateHeavyWorldsAgree) {
  // Duplicate-heavy worlds collapse attribute domains (one make, two
  // ages), so hash buckets carry many entries and set-dedup does real
  // work. Scan seeds until we have exercised several such worlds.
  int duplicate_worlds = 0;
  for (uint64_t seed = 1; seed <= 200 && duplicate_worlds < 5; ++seed) {
    auto db = BuildRandomWorld(seed);
    auto persons = db->Extent("P");
    ASSERT_TRUE(persons.ok());
    if (persons.value().elements().size() < 4) continue;
    // Count distinct ages; a duplicate-heavy world has at most 2.
    std::set<std::string> ages;
    for (const Value& p : persons.value().elements()) {
      auto age = db->GetAttribute(p, "age");
      ASSERT_TRUE(age.ok());
      ages.insert(age.value().ToString());
    }
    if (ages.size() > 2) continue;
    ++duplicate_worlds;
    for (const char* text : kFastpathQueries) {
      auto query = ParseQuery(text);
      ASSERT_TRUE(query.ok());
      Value fast = EvalOrDie(*db, query.value(), true);
      Value naive = EvalOrDie(*db, query.value(), false);
      EXPECT_EQ(fast, naive) << "seed " << seed << ": " << text;
    }
  }
  EXPECT_GE(duplicate_worlds, 5)
      << "random worlds never drew a duplicate-heavy domain";
}

TEST(RandomWorldTest, DeterministicInSeed) {
  auto a = BuildRandomWorld(42);
  auto b = BuildRandomWorld(42);
  for (const char* extent : {"P", "V", "A", "Nums"}) {
    auto va = a->Extent(extent);
    auto vb = b->Extent(extent);
    ASSERT_TRUE(va.ok() && vb.ok());
    EXPECT_EQ(va.value(), vb.value()) << extent;
  }
}

TEST(RandomWorldTest, ProducesEmptyExtentsSometimes) {
  int empty = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    auto db = BuildRandomWorld(seed);
    for (const char* extent : {"P", "V", "A"}) {
      auto v = db->Extent(extent);
      ASSERT_TRUE(v.ok());
      if (v.value().elements().empty()) ++empty;
    }
  }
  EXPECT_GT(empty, 0) << "no random world had an empty extent";
}

}  // namespace
}  // namespace kola
