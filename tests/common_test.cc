#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/macros.h"
#include "common/parse_number.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace kola {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = TypeError("bad kind");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(s.message(), "bad kind");
  EXPECT_EQ(s.ToString(), "TYPE_ERROR: bad kind");
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = NotFoundError("no extent Q").WithContext("EvalObject");
  EXPECT_EQ(s.message(), "EvalObject: no extent Q");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("ignored");
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x"), InvalidArgumentError("x"));
  EXPECT_FALSE(InvalidArgumentError("x") == InvalidArgumentError("y"));
  EXPECT_FALSE(InvalidArgumentError("x") == InternalError("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTypeError), "TYPE_ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

StatusOr<int> Doubled(int x) {
  KOLA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value(), 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(99), 99);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(StatusOrTest, WorksWithMoveOnlyValueSemantics) {
  StatusOr<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int distinct = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++distinct;
  }
  EXPECT_GT(distinct, 15);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDegenerateRange) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(7, 7), 7);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, IdentifierHasRequestedLength) {
  Rng rng(8);
  EXPECT_EQ(rng.Identifier(12).size(), 12u);
  for (char c : rng.Identifier(64)) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(9);
  Rng fork1 = a.Fork();
  Rng b(9);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fork1.Next(), fork2.Next());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("iterate", "iter"));
  EXPECT_FALSE(StartsWith("it", "iter"));
}

TEST(RngTest, ChildDoesNotAdvanceParent) {
  Rng a(42);
  Rng b(42);
  (void)a.Child(0);
  (void)a.Child(7);
  // After deriving children, the parent stream is exactly where an
  // untouched generator is.
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ChildDependsOnlyOnStateAndIndex) {
  // The same (seed, index) pair yields the same child regardless of which
  // other children were derived -- the property the parallel soundness
  // sweep needs so trial K's repro seed is independent of trials 0..K-1.
  Rng a(7);
  Rng b(7);
  (void)b.Child(0);
  (void)b.Child(1);
  EXPECT_EQ(a.Child(5).Next(), b.Child(5).Next());
  // Distinct indices decorrelate.
  EXPECT_NE(a.Child(5).Next(), a.Child(6).Next());
  // But drawing from the parent moves every child.
  (void)a.Next();
  EXPECT_NE(a.Child(5).Next(), b.Child(5).Next());
}

TEST(EnvFlagTest, TruthyAndFalsyValues) {
  EXPECT_TRUE(ParseEnvFlagValue("1"));
  EXPECT_TRUE(ParseEnvFlagValue("true"));
  EXPECT_TRUE(ParseEnvFlagValue("on"));
  EXPECT_TRUE(ParseEnvFlagValue("yes"));
  EXPECT_TRUE(ParseEnvFlagValue("2"));
  EXPECT_FALSE(ParseEnvFlagValue(""));
  EXPECT_FALSE(ParseEnvFlagValue("0"));
  EXPECT_FALSE(ParseEnvFlagValue("false"));
  EXPECT_FALSE(ParseEnvFlagValue("FALSE"));
  EXPECT_FALSE(ParseEnvFlagValue("off"));
  EXPECT_FALSE(ParseEnvFlagValue("no"));
}

TEST(EnvFlagTest, EnabledReadsTheEnvironment) {
  // A flag no other test (and no library latch) reads, so mutating it here
  // cannot race a concurrent getenv.
  constexpr const char* kName = "KOLA_COMMON_TEST_FLAG";
  ::unsetenv(kName);
  EXPECT_FALSE(EnvFlagSet(kName));
  EXPECT_FALSE(EnvFlagEnabled(kName));
  ::setenv(kName, "0", 1);
  EXPECT_TRUE(EnvFlagSet(kName));
  EXPECT_FALSE(EnvFlagEnabled(kName));  // set-but-zero means DISABLED
  ::setenv(kName, "1", 1);
  EXPECT_TRUE(EnvFlagEnabled(kName));
  ::unsetenv(kName);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
  }  // destructor joins cleanly with an empty queue
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 4, 9}) {
    std::vector<std::atomic<int>> visits(57);
    ParallelFor(jobs, visits.size(),
                [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelForTest, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  ParallelFor(4, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  ParallelFor(8, 1, [&](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ParallelForTest, ResultsMatchSerialFold) {
  // A jobs-independent reduction: each index writes into its own slot, the
  // fold sums in index order afterwards.
  std::vector<uint64_t> serial(200), parallel(200);
  auto fill = [](std::vector<uint64_t>& out) {
    return [&out](size_t i) { out[i] = Rng(0).Child(i).Next(); };
  };
  ParallelFor(1, serial.size(), fill(serial));
  ParallelFor(4, parallel.size(), fill(parallel));
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(std::accumulate(serial.begin(), serial.end(), uint64_t{0}),
            std::accumulate(parallel.begin(), parallel.end(), uint64_t{0}));
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesAsStatusAndPoolSurvives) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter, i] {
      if (i == 7) throw std::runtime_error("task 7 exploded");
      counter.fetch_add(1);
    });
  }
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("task 7 exploded"), std::string::npos);
  // The throw failed only its own task; the other 19 all ran.
  EXPECT_EQ(counter.load(), 19);
  // Wait() cleared the error and the pool keeps working.
  pool.Submit([&counter] { counter.fetch_add(1); });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, NonStdThrowIsContainedToo) {
  ThreadPool pool(1);
  pool.Submit([] { throw 42; });  // NOLINT: the point is a non-std throw
  Status status = pool.Wait();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(ParallelForTest, ThrowingBodyFailsOnlyItsIndex) {
  for (int jobs : {1, 4}) {
    std::vector<std::atomic<int>> visits(64);
    Status status = ParallelFor(jobs, visits.size(), [&](size_t i) {
      if (i == 5 || i == 41) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      visits[i].fetch_add(1);
    });
    ASSERT_FALSE(status.ok()) << "jobs=" << jobs;
    // The lowest failed index is reported, whatever the schedule was.
    EXPECT_NE(status.message().find("boom 5"), std::string::npos)
        << "jobs=" << jobs << ": " << status;
    for (size_t i = 0; i < visits.size(); ++i) {
      if (i == 5 || i == 41) continue;
      EXPECT_EQ(visits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(HardwareJobsTest, AtLeastOne) { EXPECT_GE(HardwareJobs(), 1); }

// ---------------------------------------------------------------------------
// parse_number: the validated integer parsing shared by the front-end
// literal paths and the CLI flag parsers.
// ---------------------------------------------------------------------------

TEST(ParseNumberTest, ParsesPlainAndSignedDecimals) {
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(), INT64_MAX);
  EXPECT_EQ(ParseInt64("-9223372036854775808").value(), INT64_MIN);
  EXPECT_EQ(ParseUint64("18446744073709551615").value(), UINT64_MAX);
}

TEST(ParseNumberTest, OverflowIsInvalidArgumentNotAbort) {
  // The exact inputs that used to reach unguarded std::stoll and abort
  // with std::out_of_range.
  for (const char* text :
       {"99999999999999999999", "-99999999999999999999",
        "9223372036854775808", "-9223372036854775809",
        "170141183460469231731687303715884105728"}) {
    auto result = ParseInt64(text);
    ASSERT_FALSE(result.ok()) << text;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << text;
  }
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());
}

TEST(ParseNumberTest, JunkAndTrailingGarbageRejected) {
  for (const char* text :
       {"", " ", "abc", "12abc", "1.5", "0x10", "1e3", "--2", "+5", "+",
        "-", " 42", "42 "}) {
    EXPECT_FALSE(ParseInt64(text).ok()) << "'" << text << "'";
  }
}

TEST(ParseNumberTest, RangeCheckedVariants) {
  EXPECT_EQ(ParseInt64InRange("5", "--jobs", 1, 10).value(), 5);
  auto low = ParseInt64InRange("0", "--jobs", 1, 10);
  ASSERT_FALSE(low.ok());
  // The flag name and the offending value both appear in the message.
  EXPECT_NE(low.status().message().find("--jobs"), std::string::npos);
  EXPECT_NE(low.status().message().find("0"), std::string::npos);
  EXPECT_FALSE(ParseInt64InRange("11", "--jobs", 1, 10).ok());
  EXPECT_EQ(ParseIntInRange("7", "--depth", 0, 64).value(), 7);
  EXPECT_FALSE(ParseIntInRange("65", "--depth", 0, 64).ok());
  EXPECT_FALSE(ParseIntInRange("junk", "--depth", 0, 64).ok());
}

TEST(ParseNumberTest, OverlongEchoIsClipped) {
  std::string huge(500, '9');
  auto result = ParseInt64(huge);
  ASSERT_FALSE(result.ok());
  // The error echoes a bounded prefix, never the whole half-kilobyte.
  EXPECT_LT(result.status().message().size(), 200u);
}

}  // namespace
}  // namespace kola
