#include <gtest/gtest.h>

#include "values/car_world.h"
#include "values/database.h"

namespace kola {
namespace {

TEST(DatabaseTest, DefineClassIsIdempotent) {
  Database db;
  int32_t a = db.DefineClass("Person");
  int32_t b = db.DefineClass("Person");
  EXPECT_EQ(a, b);
  EXPECT_EQ(db.ClassId("Person").value(), a);
  EXPECT_EQ(db.ClassName(a).value(), "Person");
}

TEST(DatabaseTest, UnknownClassIsNotFound) {
  Database db;
  EXPECT_EQ(db.ClassId("Nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(db.ClassName(42).ok());
}

TEST(DatabaseTest, AttributesRoundTrip) {
  Database db;
  int32_t person = db.DefineClass("Person");
  ASSERT_TRUE(db.DefineAttribute(person, "age").ok());
  Value p = db.NewObject(person);
  ASSERT_TRUE(db.SetAttribute(p, "age", Value::Int(30)).ok());
  EXPECT_EQ(db.GetAttribute(p, "age").value(), Value::Int(30));
}

TEST(DatabaseTest, AttributeDefinedAfterObjectsStillWorks) {
  Database db;
  int32_t person = db.DefineClass("Person");
  Value p = db.NewObject(person);
  ASSERT_TRUE(db.DefineAttribute(person, "age").ok());
  ASSERT_TRUE(db.SetAttribute(p, "age", Value::Int(5)).ok());
  EXPECT_EQ(db.GetAttribute(p, "age").value(), Value::Int(5));
}

TEST(DatabaseTest, UnknownAttributeIsNotFound) {
  Database db;
  int32_t person = db.DefineClass("Person");
  Value p = db.NewObject(person);
  EXPECT_EQ(db.GetAttribute(p, "ssn").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(db.HasAttribute(p, "ssn"));
}

TEST(DatabaseTest, GetAttributeOnNonObjectIsTypeError) {
  Database db;
  EXPECT_EQ(db.GetAttribute(Value::Int(1), "age").status().code(),
            StatusCode::kTypeError);
}

TEST(DatabaseTest, DanglingObjectReferenceIsNotFound) {
  Database db;
  int32_t person = db.DefineClass("Person");
  (void)db.DefineAttribute(person, "age");
  Value bogus = Value::Object(person, 17);
  EXPECT_EQ(db.GetAttribute(bogus, "age").status().code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, ExtentsMustBeSets) {
  Database db;
  EXPECT_EQ(db.DefineExtent("P", Value::Int(1)).code(),
            StatusCode::kTypeError);
  ASSERT_TRUE(db.DefineExtent("P", Value::EmptySet()).ok());
  EXPECT_TRUE(db.HasExtent("P"));
  EXPECT_EQ(db.Extent("P").value().SetSize(), 0u);
  EXPECT_FALSE(db.Extent("Q").ok());
}

TEST(DatabaseTest, ComputedFunctionShadowsAttribute) {
  Database db;
  int32_t person = db.DefineClass("Person");
  (void)db.DefineAttribute(person, "age");
  Value p = db.NewObject(person);
  (void)db.SetAttribute(p, "age", Value::Int(10));
  db.RegisterFunction("age", [](const Database&, const Value&) {
    return StatusOr<Value>(Value::Int(99));
  });
  EXPECT_EQ(db.CallFunction("age", p).value(), Value::Int(99));
}

TEST(DatabaseTest, CallFunctionFallsBackToAttribute) {
  Database db;
  int32_t person = db.DefineClass("Person");
  (void)db.DefineAttribute(person, "age");
  Value p = db.NewObject(person);
  (void)db.SetAttribute(p, "age", Value::Int(10));
  EXPECT_EQ(db.CallFunction("age", p).value(), Value::Int(10));
  EXPECT_FALSE(db.CallFunction("age", Value::Int(3)).ok());
}

TEST(CarWorldTest, BuildsRequestedCardinalities) {
  CarWorldOptions options;
  options.num_persons = 20;
  options.num_vehicles = 15;
  options.num_addresses = 10;
  auto db = BuildCarWorld(options);
  EXPECT_EQ(db->Extent("P").value().SetSize(), 20u);
  EXPECT_EQ(db->Extent("V").value().SetSize(), 15u);
  EXPECT_EQ(db->Extent("A").value().SetSize(), 10u);
  EXPECT_EQ(db->Extent("Nums").value().SetSize(), 10u);
}

TEST(CarWorldTest, PersonsHaveWellFormedAttributes) {
  auto db = BuildCarWorld(CarWorldOptions{});
  Value persons = db->Extent("P").value();
  for (const Value& p : persons.elements()) {
    Value age = db->GetAttribute(p, "age").value();
    ASSERT_TRUE(age.is_int());
    EXPECT_GE(age.int_value(), 1);
    EXPECT_LE(age.int_value(), 90);
    Value addr = db->GetAttribute(p, "addr").value();
    ASSERT_TRUE(addr.is_object());
    EXPECT_TRUE(db->GetAttribute(addr, "city").value().is_string());
    EXPECT_TRUE(db->GetAttribute(p, "child").value().is_set());
    EXPECT_TRUE(db->GetAttribute(p, "cars").value().is_set());
    EXPECT_TRUE(db->GetAttribute(p, "grgs").value().is_set());
  }
}

TEST(CarWorldTest, DeterministicForSeed) {
  CarWorldOptions options;
  options.seed = 123;
  auto db1 = BuildCarWorld(options);
  auto db2 = BuildCarWorld(options);
  Value p1 = db1->Extent("P").value();
  Value p2 = db2->Extent("P").value();
  ASSERT_EQ(p1.SetSize(), p2.SetSize());
  for (const Value& p : p1.elements()) {
    EXPECT_EQ(db1->GetAttribute(p, "age").value(),
              db2->GetAttribute(p, "age").value());
  }
}

TEST(CarWorldTest, CarsReferenceVehicleExtent) {
  auto db = BuildCarWorld(CarWorldOptions{});
  Value persons = db->Extent("P").value();
  Value vehicles = db->Extent("V").value();
  for (const Value& p : persons.elements()) {
    for (const Value& car : db->GetAttribute(p, "cars").value().elements()) {
      EXPECT_TRUE(vehicles.SetContains(car));
    }
  }
}

}  // namespace
}  // namespace kola
