#include <gtest/gtest.h>

#include "term/parser.h"
#include "term/term.h"

namespace kola {
namespace {

TermPtr MustParse(std::string_view text, Sort sort) {
  auto result = ParseTerm(text, sort);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : nullptr;
}

TEST(ParserTest, Primitives) {
  TermPtr f = MustParse("id", Sort::kFunction);
  EXPECT_EQ(f->kind(), TermKind::kPrimFn);
  TermPtr p = MustParse("gt", Sort::kPredicate);
  EXPECT_EQ(p->kind(), TermKind::kPrimPred);
  TermPtr c = MustParse("P", Sort::kObject);
  EXPECT_EQ(c->kind(), TermKind::kCollection);
}

TEST(ParserTest, ComposeIsRightAssociative) {
  TermPtr t = MustParse("f o g o h", Sort::kFunction);
  ASSERT_EQ(t->kind(), TermKind::kCompose);
  EXPECT_EQ(t->child(0)->name(), "f");
  EXPECT_EQ(t->child(1)->kind(), TermKind::kCompose);
}

TEST(ParserTest, FormersParse) {
  EXPECT_TRUE(Term::Equal(MustParse("Kf(25)", Sort::kFunction),
                          ConstFn(LitInt(25))));
  EXPECT_TRUE(Term::Equal(MustParse("Kp(T)", Sort::kPredicate),
                          ConstPredTrue()));
  EXPECT_TRUE(Term::Equal(MustParse("Kp(F)", Sort::kPredicate),
                          ConstPredFalse()));
  EXPECT_TRUE(Term::Equal(MustParse("Cp(leq, 25)", Sort::kPredicate),
                          CurryPred(LeqP(), LitInt(25))));
  EXPECT_TRUE(Term::Equal(MustParse("inv(gt)", Sort::kPredicate),
                          InvP(GtP())));
  EXPECT_TRUE(Term::Equal(
      MustParse("con(p, f, g)", Sort::kFunction),
      Cond(PrimPred("p"), PrimFn("f"), PrimFn("g"))));
}

TEST(ParserTest, QueryFormers) {
  TermPtr t = MustParse("iterate(Kp(T), city o addr)", Sort::kFunction);
  EXPECT_EQ(t->kind(), TermKind::kIterate);
  EXPECT_TRUE(Term::Equal(t->child(1),
                          Compose(PrimFn("city"), PrimFn("addr"))));
  EXPECT_EQ(MustParse("join(in, pi1)", Sort::kFunction)->kind(),
            TermKind::kJoin);
  EXPECT_EQ(MustParse("nest(pi1, pi2)", Sort::kFunction)->kind(),
            TermKind::kNest);
  EXPECT_EQ(MustParse("unnest(pi1, pi2)", Sort::kFunction)->kind(),
            TermKind::kUnnest);
  EXPECT_EQ(MustParse("iter(in, pi2)", Sort::kFunction)->kind(),
            TermKind::kIter);
}

TEST(ParserTest, PairFormerVsGroup) {
  TermPtr pair = MustParse("(pi1, pi2)", Sort::kFunction);
  EXPECT_EQ(pair->kind(), TermKind::kPairFn);
  TermPtr group = MustParse("(f o g)", Sort::kFunction);
  EXPECT_EQ(group->kind(), TermKind::kCompose);
}

TEST(ParserTest, ObjectPair) {
  TermPtr t = MustParse("[V, P]", Sort::kObject);
  ASSERT_EQ(t->kind(), TermKind::kPairObj);
  EXPECT_EQ(t->child(0)->name(), "V");
}

TEST(ParserTest, SetLiterals) {
  TermPtr t = MustParse("{1, 2, 2, 3}", Sort::kObject);
  ASSERT_EQ(t->kind(), TermKind::kLiteral);
  EXPECT_EQ(t->literal().SetSize(), 3u);
  TermPtr empty = MustParse("{}", Sort::kObject);
  EXPECT_EQ(empty->literal().SetSize(), 0u);
  TermPtr nested = MustParse("{[1, \"a\"], [2, \"b\"]}", Sort::kObject);
  EXPECT_EQ(nested->literal().SetSize(), 2u);
}

TEST(ParserTest, ObjectLiterals) {
  // Value prints object references as obj<classid>#objid; the parser
  // accepts them back so shrunk soundness repros replay verbatim.
  TermPtr t = MustParse("obj<0>#3", Sort::kObject);
  ASSERT_EQ(t->kind(), TermKind::kLiteral);
  EXPECT_EQ(t->literal(), Value::Object(0, 3));
  EXPECT_EQ(t->ToString(), "obj<0>#3");
  TermPtr in_set = MustParse("{obj<1>#0, obj<1>#2}", Sort::kObject);
  EXPECT_EQ(in_set->literal().SetSize(), 2u);
  TermPtr curried = MustParse("Cp(eq, obj<2>#5) @ id", Sort::kPredicate);
  EXPECT_EQ(curried->kind(), TermKind::kOplus);
  // `obj` alone is still an ordinary identifier.
  EXPECT_EQ(MustParse("obj", Sort::kObject)->kind(), TermKind::kCollection);
  EXPECT_FALSE(ParseTerm("obj<0>", Sort::kObject).ok());
  EXPECT_FALSE(ParseTerm("obj<>#1", Sort::kObject).ok());
}

TEST(ParserTest, ApplyAndTest) {
  TermPtr q = MustParse("iterate(Kp(T), age) ! P", Sort::kObject);
  EXPECT_EQ(q->kind(), TermKind::kApplyFn);
  TermPtr b = MustParse("gt ? [3, 2]", Sort::kObject);
  EXPECT_EQ(b->kind(), TermKind::kApplyPred);
  EXPECT_EQ(b->sort(), Sort::kBool);
}

TEST(ParserTest, ApplyIsRightAssociative) {
  TermPtr t = MustParse("f ! g ! x", Sort::kObject);
  ASSERT_EQ(t->kind(), TermKind::kApplyFn);
  EXPECT_EQ(t->child(1)->kind(), TermKind::kApplyFn);
}

TEST(ParserTest, MetaVarSortConventions) {
  EXPECT_EQ(MustParse("?f", Sort::kFunction)->sort(), Sort::kFunction);
  EXPECT_EQ(MustParse("?p", Sort::kPredicate)->sort(), Sort::kPredicate);
  EXPECT_EQ(MustParse("?A", Sort::kObject)->sort(), Sort::kObject);
  EXPECT_EQ(MustParse("?k", Sort::kObject)->sort(), Sort::kObject);
  EXPECT_EQ(MustParse("Kp(?b)", Sort::kPredicate)->child(0)->sort(),
            Sort::kBool);
}

TEST(ParserTest, MetaVarSortMismatchIsError) {
  EXPECT_FALSE(ParseTerm("?f", Sort::kObject).ok());
  EXPECT_FALSE(ParseTerm("?p", Sort::kFunction).ok());
  EXPECT_FALSE(ParseTerm("?x", Sort::kPredicate).ok());
}

TEST(ParserTest, PaperRule11) {
  // iterate(p, f) o iterate(q, g) => iterate(q & p @ g, f o g)
  TermPtr lhs = MustParse("iterate(?p, ?f) o iterate(?q, ?g)",
                          Sort::kFunction);
  EXPECT_TRUE(Term::Equal(
      lhs, Compose(Iterate(PredVar("p"), FnVar("f")),
                   Iterate(PredVar("q"), FnVar("g")))));
  TermPtr rhs = MustParse("iterate(?q & ?p @ ?g, ?f o ?g)", Sort::kFunction);
  EXPECT_TRUE(Term::Equal(
      rhs, Iterate(AndP(PredVar("q"), Oplus(PredVar("p"), FnVar("g"))),
                   Compose(FnVar("f"), FnVar("g")))));
}

TEST(ParserTest, GarageQueryKG1RoundTrips) {
  const char* kg1_text =
      "iterate(Kp(T), (id, flat o iter(Kp(T), grgs o pi2) o (id, "
      "iter(in @ (pi1, cars o pi2), pi2) o (id, Kf(P))))) ! V";
  TermPtr kg1 = MustParse(kg1_text, Sort::kObject);
  TermPtr reparsed = MustParse(kg1->ToString(), Sort::kObject);
  EXPECT_TRUE(Term::Equal(kg1, reparsed));
}

TEST(ParserTest, ErrorsAreInvalidArgument) {
  EXPECT_EQ(ParseTerm("iterate(", Sort::kFunction).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTerm("f o", Sort::kFunction).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTerm("f )", Sort::kFunction).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTerm("\"unterminated", Sort::kObject).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTerm("$", Sort::kObject).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParserTest, OverlongIntegerLiteralsAreErrorsNotAborts) {
  // These literals overflow int64; the unguarded std::stoll they used to
  // reach would throw std::out_of_range and abort the process.
  EXPECT_EQ(ParseTerm("99999999999999999999", Sort::kObject).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseTerm("Kf(99999999999999999999)", Sort::kFunction).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTerm("{1, 99999999999999999999}", Sort::kObject)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Object references: overlong class id and overlong object id.
  EXPECT_EQ(ParseTerm("obj<99999999999999999999>#1", Sort::kObject)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTerm("obj<0>#99999999999999999999", Sort::kObject)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // A class id outside int32 is rejected even though it fits in int64.
  EXPECT_EQ(ParseTerm("obj<4294967296>#1", Sort::kObject).status().code(),
            StatusCode::kInvalidArgument);
  // The boundary values themselves still parse.
  EXPECT_TRUE(ParseTerm("9223372036854775807", Sort::kObject).ok());
  EXPECT_TRUE(ParseTerm("Kf(-9223372036854775808)", Sort::kFunction).ok());
}

TEST(ParserTest, SortMismatchesAreErrors) {
  // Pair former in object position.
  EXPECT_FALSE(ParseTerm("(f, g)", Sort::kObject).ok());
  // Object pair in function position.
  EXPECT_FALSE(ParseTerm("[1, 2]", Sort::kFunction).ok());
  // Kp in function position.
  EXPECT_FALSE(ParseTerm("Kp(T)", Sort::kFunction).ok());
  // Int literal as a predicate.
  EXPECT_FALSE(ParseTerm("5", Sort::kPredicate).ok());
}

TEST(ParserTest, WrongFormerArity) {
  EXPECT_FALSE(ParseTerm("Kf(1, 2)", Sort::kFunction).ok());
  EXPECT_FALSE(ParseTerm("con(p, f)", Sort::kFunction).ok());
  EXPECT_FALSE(ParseTerm("iterate(p)", Sort::kFunction).ok());
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParseIsIdentity) {
  TermPtr original = MustParse(GetParam(), Sort::kFunction);
  ASSERT_NE(original, nullptr);
  TermPtr reparsed = MustParse(original->ToString(), Sort::kFunction);
  EXPECT_TRUE(Term::Equal(original, reparsed))
      << "printed: " << original->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Functions, RoundTripTest,
    ::testing::Values(
        "id", "pi1 o pi2", "f o g o h", "(f o g) o h", "f x g",
        "(f x g) o h", "Kf(25)", "Kf({1, 2})", "Kf(P)", "Cf(f, 7)",
        "con(p & q, f, g o h)", "iterate(Kp(T), city o addr)",
        "iterate(gt @ (age, Kf(25)), id)",
        "iter(in @ (pi1, cars o pi2), pi2)",
        "join(Kp(T), id)", "nest(pi1, pi2)", "unnest(pi1, pi2) x id",
        "(join(Kp(T), id), pi1)",
        "con(Cp(leq, 25) @ age, child, Kf({}))",
        "iterate(?p, ?f) o iterate(?q, ?g)",
        "flat o iter(Kp(T), grgs o pi2)"));

}  // namespace
}  // namespace kola
