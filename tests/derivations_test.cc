// Pins the paper's worked derivations: Figure 4 (T1K and T2K) and
// Figure 6 (the code-motion reduction of query K4). Each step is justified
// by a catalog rule; we assert both the fired rule sequence and the exact
// resulting terms.

#include <gtest/gtest.h>

#include "coko/strategy.h"
#include "rewrite/engine.h"
#include "rules/catalog.h"
#include "term/parser.h"

namespace kola {
namespace {

TermPtr Q(const std::string& text, Sort sort = Sort::kObject) {
  auto t = ParseTerm(text, sort);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

class DerivationsTest : public ::testing::Test {
 protected:
  DerivationsTest() : rules_(AllCatalogRules()) {}

  const Rule& R(const std::string& id) { return FindRule(rules_, id); }

  Rule Rev(const std::string& id) {
    auto reversed = ReverseRule(FindRule(rules_, id));
    EXPECT_TRUE(reversed.ok());
    return reversed.value();
  }

  /// Applies `rule` once and asserts the exact result.
  TermPtr Step(const Rule& rule, const TermPtr& term,
               const std::string& expected, Sort sort = Sort::kObject) {
    RewriteStep step;
    auto result = rewriter_.ApplyOnce(rule, term, &step);
    EXPECT_TRUE(result.has_value())
        << "rule " << rule.id << " did not fire on " << term->ToString();
    if (!result) return term;
    TermPtr want = Q(expected, sort);
    EXPECT_TRUE(Term::Equal(*result, want))
        << "after rule " << rule.id << ":\n  got  "
        << (*result)->ToString() << "\n  want " << want->ToString();
    return *result;
  }

  std::vector<Rule> rules_;
  Rewriter rewriter_;
};

// ---- Figure 4, transformation T1K: fuse two maps over P -------------------
TEST_F(DerivationsTest, Figure4T1K) {
  TermPtr q = Q("iterate(Kp(T), city) o iterate(Kp(T), addr) ! P");

  // Rule 11: iterate fusion.
  q = Step(R("11"), q,
           "iterate(Kp(T) & Kp(T) @ addr, city o addr) ! P");
  // Rule 6: Kp(T) @ addr => Kp(T).
  q = Step(R("6"), q, "iterate(Kp(T) & Kp(T), city o addr) ! P");
  // Rule 5: Kp(T) & Kp(T) => Kp(T).
  q = Step(R("5"), q, "iterate(Kp(T), city o addr) ! P");
}

// ---- Figure 4, transformation T2K: swap selection and projection ----------
TEST_F(DerivationsTest, Figure4T2K) {
  TermPtr q = Q(
      "iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P");

  // Rule 11 fuses, then identity cleanup with rule 1.
  q = Step(R("11"), q,
           "iterate(gt @ (age, Kf(25)) & Kp(T) @ id, age o id) ! P");
  q = Step(R("6"), q,
           "iterate(gt @ (age, Kf(25)) & Kp(T), age o id) ! P");
  q = Step(R("ext.and-true-right"), q,
           "iterate(gt @ (age, Kf(25)), age o id) ! P");
  q = Step(R("1"), q, "iterate(gt @ (age, Kf(25)), age) ! P");

  // Rule 13 curries the constant comparand; rule 7 names the converse.
  // (The paper prints leq here; the sound converse of gt is lt -- see
  // catalog.h.)
  q = Step(R("13"), q, "iterate(Cp(inv(gt), 25) @ age, age) ! P");
  q = Step(R("7"), q, "iterate(Cp(lt, 25) @ age, age) ! P");

  // Rule 12 right-to-left splits selection from projection, landing on the
  // paper's final form.
  q = Step(Rev("12"), q,
           "iterate(Cp(lt, 25), id) o iterate(Kp(T), age) ! P");
}

// ---- Figure 6: code motion applies to K4 ----------------------------------
TEST_F(DerivationsTest, Figure6K4) {
  // The inner function of KOLA query K4 (predicate tests the PERSON's age,
  // i.e. the environment component pi1).
  TermPtr f = Q("iter(gt @ (age o pi1, Kf(25)), pi2) o (id, child)",
                Sort::kFunction);

  f = Step(R("13"), f,
           "iter(Cp(inv(gt), 25) @ (age o pi1), pi2) o (id, child)",
           Sort::kFunction);
  f = Step(R("7"), f,
           "iter(Cp(lt, 25) @ (age o pi1), pi2) o (id, child)",
           Sort::kFunction);
  f = Step(R("14"), f,
           "iter(Cp(lt, 25) @ age @ pi1, pi2) o (id, child)",
           Sort::kFunction);
  // Rule 15: the iter is insensitive to its second component -> conditional.
  f = Step(R("15"), f,
           "con(Cp(lt, 25) @ age @ pi1, pi2, Kf({})) o (id, child)",
           Sort::kFunction);
  // Rule 16 distributes the composition into the conditional.
  f = Step(R("16"), f,
           "con(Cp(lt, 25) @ age @ pi1 @ (id, child), pi2 o (id, child), "
           "Kf({}) o (id, child))",
           Sort::kFunction);
  // Cleanup: 14 right-to-left, projections, constants.
  f = Step(Rev("14"), f,
           "con(Cp(lt, 25) @ age @ (pi1 o (id, child)), pi2 o (id, child), "
           "Kf({}) o (id, child))",
           Sort::kFunction);
  f = Step(R("9"), f,
           "con(Cp(lt, 25) @ age @ id, pi2 o (id, child), "
           "Kf({}) o (id, child))",
           Sort::kFunction);
  f = Step(R("3"), f,
           "con(Cp(lt, 25) @ age, pi2 o (id, child), Kf({}) o (id, child))",
           Sort::kFunction);
  f = Step(R("10"), f,
           "con(Cp(lt, 25) @ age, child, Kf({}) o (id, child))",
           Sort::kFunction);
  f = Step(R("8"), f, "con(Cp(lt, 25) @ age, child, Kf({}))",
           Sort::kFunction);
  // Final form matches Figure 6 (modulo the lt/leq correction).
}

// ---- Figure 6 contrast: K3 is NOT subject to code motion ------------------
TEST_F(DerivationsTest, Figure6K3Blocked) {
  // K3's predicate tests the CHILD's age (pi2). After rules 13/7/14 the
  // iter's predicate has the form p @ pi2, so rule 15 must not fire.
  TermPtr f = Q("iter(gt @ (age o pi2, Kf(25)), pi2) o (id, child)",
                Sort::kFunction);
  f = Step(R("13"), f,
           "iter(Cp(inv(gt), 25) @ (age o pi2), pi2) o (id, child)",
           Sort::kFunction);
  f = Step(R("7"), f,
           "iter(Cp(lt, 25) @ (age o pi2), pi2) o (id, child)",
           Sort::kFunction);
  f = Step(R("14"), f,
           "iter(Cp(lt, 25) @ age @ pi2, pi2) o (id, child)",
           Sort::kFunction);
  // The structural difference (pi2 vs pi1) is all that distinguishes K3
  // from K4 -- and it is exactly what blocks rule 15. No head routine, no
  // environment analysis.
  EXPECT_FALSE(rewriter_.ApplyOnce(R("15"), f, nullptr).has_value());
}

// ---- CNF block (COKO example) ----------------------------------------------
TEST_F(DerivationsTest, CnfBlockNormalizes) {
  RuleBlock block = CnfBlock();
  // not(p & (q | r)) over ints.
  TermPtr p = Q("not(Cp(lt, 0) & (Cp(lt, 5) | Cp(lt, 9)))",
                Sort::kPredicate);
  auto result = block.Apply(p, rewriter_, nullptr);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->changed);
  // De Morgan then distribution: (~p | ~q) & (~p | ~r).
  EXPECT_TRUE(Term::Equal(
      result->term,
      Q("(not(Cp(lt, 0)) | not(Cp(lt, 5))) & (not(Cp(lt, 0)) | "
        "not(Cp(lt, 9)))",
        Sort::kPredicate)));
}

TEST_F(DerivationsTest, PushSelectsPastJoinsBlock) {
  RuleBlock block = PushSelectsPastJoinsBlock();
  TermPtr join = Q("join(eq & Cp(lt, 0) @ pi1, pi1)", Sort::kFunction);
  auto result = block.Apply(join, rewriter_, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->changed);
  EXPECT_TRUE(Term::Equal(
      result->term,
      Q("join(eq, pi1) o (iterate(Cp(lt, 0), id) x id)", Sort::kFunction)));
}

TEST_F(DerivationsTest, SimplifyBlockCleansIdentities) {
  RuleBlock block = SimplifyBlock();
  TermPtr messy = Q("(id o age) o id", Sort::kFunction);
  auto result = block.Apply(messy, rewriter_, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Term::Equal(result->term, Q("age", Sort::kFunction)));
}

TEST_F(DerivationsTest, StrategyCombinators) {
  // Seq of Once strategies fires in order; Repeat drives to fixpoint.
  Rule r1 = FindRule(rules_, "1");
  TermPtr term = Q("(age o id) o id", Sort::kFunction);
  auto once = Once(r1);
  Trace trace;
  auto after_one = once->Run(term, rewriter_, &trace);
  ASSERT_TRUE(after_one.ok());
  EXPECT_TRUE(after_one->changed);
  auto repeat = Repeat(once);
  auto after_all = repeat->Run(term, rewriter_, nullptr);
  ASSERT_TRUE(after_all.ok());
  EXPECT_TRUE(Term::Equal(after_all->term, Q("age", Sort::kFunction)));
  // A strategy that cannot fire reports changed = false, not an error.
  auto noop = once->Run(Q("age", Sort::kFunction), rewriter_, nullptr);
  ASSERT_TRUE(noop.ok());
  EXPECT_FALSE(noop->changed);
}

}  // namespace
}  // namespace kola
