// The compiled rule index (rewrite/rule_index.h) and the stable rule-set
// fingerprint it is keyed by. The load-bearing property throughout: the
// index only ever FILTERS the linear probe order, so every rewrite result,
// fired rule and trace is byte-identical with the index on or off -- and a
// planted shadowing rule (a general rule ordered before a more specific
// one) fires first under both scans.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/governor.h"
#include "optimizer/hidden_join.h"
#include "rewrite/engine.h"
#include "rewrite/match.h"
#include "rewrite/rule.h"
#include "rewrite/rule_index.h"
#include "rules/catalog.h"
#include "term/parser.h"

namespace kola {
namespace {

TermPtr Q(const char* text, Sort sort = Sort::kFunction) {
  auto t = ParseTerm(text, sort);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

Rule R(const char* id, const char* lhs, const char* rhs,
       Sort sort = Sort::kFunction) {
  auto rule = MakeRule(id, "", lhs, rhs, sort);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return rule.value();
}

// ---------------------------------------------------------------------------
// RuleSetFingerprint: explicit FNV-1a construction, stable across platforms
// and processes -- pinned to golden values so a stdlib or refactor change
// that silently altered it (and thereby invalidated persisted keys) fails
// loudly here.
// ---------------------------------------------------------------------------

TEST(FingerprintTest, CatalogFingerprintIsPinned) {
  std::vector<Rule> catalog = AllCatalogRules();
  ASSERT_EQ(catalog.size(), 113u);
  EXPECT_EQ(RuleSetFingerprint(catalog), 0xc12ac90084990c8fULL);
}

TEST(FingerprintTest, StableStringHashIsFnv1a) {
  // The FNV-1a offset basis (empty string) and one hand-computed step.
  EXPECT_EQ(StableStringHash(""), 1469598103934665603ULL);
  EXPECT_EQ(StableStringHash("a"),
            (1469598103934665603ULL ^ 'a') * 1099511628211ULL);
}

TEST(FingerprintTest, SensitiveToEverySyntacticComponent) {
  const Rule base = R("r", "?f o id", "?f");
  const uint64_t fp = RuleSetFingerprint({base});
  EXPECT_NE(fp, RuleSetFingerprint({R("r2", "?f o id", "?f")}));  // id
  EXPECT_NE(fp, RuleSetFingerprint({R("r", "id o ?f", "?f")}));   // lhs
  EXPECT_NE(fp, RuleSetFingerprint({R("r", "?f o id", "id o ?f")}));  // rhs
  EXPECT_NE(fp, RuleSetFingerprint({base, base}));  // arity of the set
  EXPECT_EQ(fp, RuleSetFingerprint({R("r", "?f o id", "?f")}));  // stable
}

TEST(FingerprintTest, OrderMatters) {
  // Rule order is part of rewrite semantics (first match wins), so two
  // orderings of one set must not share a fingerprint (or a cache slot).
  const Rule a = R("a", "?f o id", "?f");
  const Rule b = R("b", "id o ?f", "?f");
  EXPECT_NE(RuleSetFingerprint({a, b}), RuleSetFingerprint({b, a}));
}

// ---------------------------------------------------------------------------
// CandidatesAt: exact superset of MatchTerm, ascending order.
// ---------------------------------------------------------------------------

/// Every subterm of `term`, pre-order.
void CollectNodes(const TermPtr& term, std::vector<TermPtr>* out) {
  out->push_back(term);
  for (const TermPtr& child : term->children()) CollectNodes(child, out);
}

TEST(RuleIndexTest, CandidatesAreAscendingSupersetOfMatchesOnCatalog) {
  std::vector<Rule> rules = AllCatalogRules();
  auto index = RuleIndex::Build(rules, RuleSetFingerprint(rules));
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->rule_count(), rules.size());
  EXPECT_GT(index->footprint_bytes(), 0);

  std::vector<TermPtr> nodes;
  CollectNodes(GarageQueryKG1(), &nodes);
  CollectNodes(Q("iterate(Kp(T), city) o iterate(Kp(T), addr) ! P",
                 Sort::kObject),
               &nodes);
  CollectNodes(Q("[1, [2, 3]]", Sort::kObject), &nodes);
  ASSERT_GT(nodes.size(), 20u);

  size_t candidates_total = 0;
  std::vector<uint32_t> candidates;
  for (const TermPtr& node : nodes) {
    index->CandidatesAt(*node, &candidates);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                candidates.end());
    candidates_total += candidates.size();
    for (uint32_t r = 0; r < rules.size(); ++r) {
      Bindings bindings;
      if (!MatchTerm(rules[r].lhs, node, &bindings)) continue;
      // A matching rule must never be filtered out.
      EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), r))
          << "rule " << rules[r].id << " missing at " << node->ToString();
    }
  }
  // ...and the filter must actually filter: far fewer probes than the
  // linear scan's rules x nodes.
  EXPECT_LT(candidates_total, rules.size() * nodes.size() / 4);
}

// ---------------------------------------------------------------------------
// Shadowing: a general rule ordered before a more specific one must win
// under the index exactly as it does under the linear scan. A buggy index
// that routed the probe to the "best structural fit" instead of filtering
// the ordered scan would skip the general rule here.
// ---------------------------------------------------------------------------

TEST(RuleIndexTest, GeneralRuleShadowsSpecificRule) {
  std::vector<Rule> rules = {
      R("general", "?f o ?g", "?f"),
      R("specific", "id o ?g", "?g"),
  };
  TermPtr term = Q("id o age");
  Rewriter indexed;
  RewriterOptions linear_options;
  linear_options.use_rule_index = false;
  Rewriter linear(nullptr, linear_options);

  RewriteStep indexed_step, linear_step;
  auto via_index = indexed.ApplyAnyOnce(rules, term, &indexed_step);
  auto via_scan = linear.ApplyAnyOnce(rules, term, &linear_step);
  ASSERT_TRUE(via_index.has_value());
  ASSERT_TRUE(via_scan.has_value());
  EXPECT_EQ(indexed_step.rule_id, "general");
  EXPECT_EQ(linear_step.rule_id, indexed_step.rule_id);
  EXPECT_TRUE(Term::Equal(*via_index, *via_scan));
  EXPECT_TRUE(Term::Equal(*via_index, Q("id")));
}

TEST(RuleIndexTest, WildcardRootRuleShadowsEverything) {
  // A bare-metavariable lhs is a candidate at every node; ordered first it
  // must fire first, at the leftmost-outermost position (the root).
  std::vector<Rule> rules = {
      R("wild", "?f", "?f o id"),
      R("specific", "pi1 o ?g", "?g"),
  };
  TermPtr term = Q("pi1 o age");
  Rewriter indexed;
  RewriterOptions linear_options;
  linear_options.use_rule_index = false;
  Rewriter linear(nullptr, linear_options);

  RewriteStep indexed_step, linear_step;
  auto via_index = indexed.ApplyAnyOnce(rules, term, &indexed_step);
  auto via_scan = linear.ApplyAnyOnce(rules, term, &linear_step);
  ASSERT_TRUE(via_index.has_value() && via_scan.has_value());
  EXPECT_EQ(indexed_step.rule_id, "wild");
  EXPECT_EQ(linear_step.rule_id, "wild");
  EXPECT_TRUE(indexed_step.path.empty());
  EXPECT_TRUE(Term::Equal(*via_index, *via_scan));
}

TEST(RuleIndexTest, DeeperFirstRuleBeatsShallowerLaterRule) {
  // Rule order dominates position order: rule 0 matching DEEP in the term
  // must beat rule 1 matching at the root, under both scans.
  std::vector<Rule> rules = {
      R("deep", "age o id", "age"),
      R("root", "pi1 o ?g", "pi1"),
  };
  TermPtr term = Q("pi1 o (age o id)");
  Rewriter indexed;
  RewriterOptions linear_options;
  linear_options.use_rule_index = false;
  Rewriter linear(nullptr, linear_options);

  RewriteStep indexed_step, linear_step;
  auto via_index = indexed.ApplyAnyOnce(rules, term, &indexed_step);
  auto via_scan = linear.ApplyAnyOnce(rules, term, &linear_step);
  ASSERT_TRUE(via_index.has_value() && via_scan.has_value());
  EXPECT_EQ(linear_step.rule_id, "deep");
  EXPECT_EQ(indexed_step.rule_id, "deep");
  EXPECT_EQ(indexed_step.path, linear_step.path);
  EXPECT_FALSE(indexed_step.path.empty());
  EXPECT_TRUE(Term::Equal(*via_index, *via_scan));
}

// ---------------------------------------------------------------------------
// ApplyEachOnce: the whole-catalog probe is one shared descent, but each
// slot must equal the independent per-rule ApplyOnce.
// ---------------------------------------------------------------------------

TEST(RuleIndexTest, ApplyEachOnceMatchesPerRuleApplyOnce) {
  std::vector<Rule> rules = AllCatalogRules();
  const TermPtr terms[] = {
      GarageQueryKG1(),
      Q("iterate(Kp(T), city) o iterate(Kp(T), addr)"),
      Q("set_to_bag o bag_to_set o set_to_bag"),
  };
  Rewriter indexed;
  RewriterOptions linear_options;
  linear_options.use_rule_index = false;
  Rewriter linear(nullptr, linear_options);
  int fired = 0;
  for (const TermPtr& term : terms) {
    auto batch = indexed.ApplyEachOnce(rules, term);
    ASSERT_EQ(batch.size(), rules.size());
    for (size_t r = 0; r < rules.size(); ++r) {
      auto one = linear.ApplyOnce(rules[r], term, nullptr);
      ASSERT_EQ(batch[r].has_value(), one.has_value())
          << rules[r].id << " on " << term->ToString();
      if (one.has_value()) {
        ++fired;
        EXPECT_TRUE(Term::Equal(*batch[r], *one)) << rules[r].id;
      }
    }
  }
  EXPECT_GT(fired, 0);
}

// ---------------------------------------------------------------------------
// Lifecycle: per-Rewriter index pool, rebuild on fingerprint change, the
// process-wide cache, and governor charging.
// ---------------------------------------------------------------------------

TEST(RuleIndexTest, RewriterRebuildsIndexOnFingerprintChangeMidLifetime) {
  // One Rewriter, two different rule sets: the second Fixpoint must consult
  // an index for the SECOND set, not a stale one -- and both derivations
  // must equal their linear-scan twins.
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> fusion;
  for (const char* id : {"11", "6", "5", "1", "13", "7"}) {
    fusion.push_back(FindRule(all, id));
  }
  std::vector<Rule> cleanup = {R("left-id", "id o ?f", "?f"),
                               R("right-id", "?f o id", "?f")};
  const uint64_t fusion_fp = RuleSetFingerprint(fusion);
  const uint64_t cleanup_fp = RuleSetFingerprint(cleanup);
  ASSERT_NE(fusion_fp, cleanup_fp);

  Rewriter rewriter;
  auto fusion_index = rewriter.IndexFor(fusion, fusion_fp);
  ASSERT_NE(fusion_index, nullptr);
  EXPECT_EQ(fusion_index->fingerprint(), fusion_fp);
  EXPECT_EQ(fusion_index->rule_count(), fusion.size());

  Trace t1;
  auto fused = rewriter.Fixpoint(
      fusion, Q("iterate(Kp(T), city) o iterate(Kp(T), addr)"), &t1);
  ASSERT_TRUE(fused.ok()) << fused.status();

  // Switch rule sets on the same Rewriter: a fresh index, keyed by the new
  // fingerprint, with the old one still pooled (not evicted, not reused).
  auto cleanup_index = rewriter.IndexFor(cleanup, cleanup_fp);
  ASSERT_NE(cleanup_index, nullptr);
  EXPECT_NE(cleanup_index.get(), fusion_index.get());
  EXPECT_EQ(cleanup_index->fingerprint(), cleanup_fp);
  EXPECT_EQ(cleanup_index->rule_count(), 2u);
  EXPECT_EQ(rewriter.IndexFor(fusion, fusion_fp).get(), fusion_index.get());

  Trace t2;
  auto cleaned =
      rewriter.Fixpoint(cleanup, Q("id o (age o id) o id"), &t2);
  ASSERT_TRUE(cleaned.ok()) << cleaned.status();
  EXPECT_TRUE(Term::Equal(cleaned.value(), Q("age")));

  // Both derivations byte-equal the linear scan's.
  RewriterOptions linear_options;
  linear_options.use_rule_index = false;
  Rewriter linear(nullptr, linear_options);
  Trace s1, s2;
  auto fused_linear = linear.Fixpoint(
      fusion, Q("iterate(Kp(T), city) o iterate(Kp(T), addr)"), &s1);
  auto cleaned_linear =
      linear.Fixpoint(cleanup, Q("id o (age o id) o id"), &s2);
  ASSERT_TRUE(fused_linear.ok() && cleaned_linear.ok());
  EXPECT_TRUE(Term::Equal(fused.value(), fused_linear.value()));
  EXPECT_EQ(t1.ToString(), s1.ToString());
  EXPECT_EQ(t2.ToString(), s2.ToString());
}

TEST(RuleIndexTest, ProcessCacheSharesOneCompiledCopy) {
  std::vector<Rule> rules = AllCatalogRules();
  const uint64_t fp = RuleSetFingerprint(rules);
  const RuleIndexCacheStats before = GetRuleIndexCacheStats();
  auto a = AcquireRuleIndex(rules, fp);
  auto b = AcquireRuleIndex(rules, fp);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // one immutable copy, shared
  const RuleIndexCacheStats after = GetRuleIndexCacheStats();
  EXPECT_GE(after.indexes, 1u);
  EXPECT_GT(after.hits, before.hits);  // at least the second acquire
  EXPECT_GE(after.bytes, a->footprint_bytes());

  // Two Rewriters resolve to the same compiled copy.
  Rewriter r1, r2;
  EXPECT_EQ(r1.IndexFor(rules, fp).get(), r2.IndexFor(rules, fp).get());
}

TEST(RuleIndexTest, ExhaustedMemoryBudgetFallsBackToLinearScan) {
  // A governor too small for the compiled tree: IndexFor must decline
  // (nullptr), and the un-indexed rule application must still return the
  // linear scan's exact answer. (The rest of a 64-byte request budget is
  // unusable too, so only the chargeless ApplyAnyOnce path runs here.)
  Governor tiny{Governor::Limits{.memory_budget_bytes = 64}};
  RewriterOptions options;
  options.governor = &tiny;
  Rewriter rewriter(nullptr, options);
  std::vector<Rule> rules = AllCatalogRules();
  EXPECT_EQ(rewriter.IndexFor(rules, RuleSetFingerprint(rules)), nullptr);

  RewriterOptions linear_options;
  linear_options.use_rule_index = false;
  Rewriter linear(nullptr, linear_options);
  RewriteStep step, linear_step;
  auto result = rewriter.ApplyAnyOnce(rules, Q("id o (age o id)"), &step);
  auto linear_result =
      linear.ApplyAnyOnce(rules, Q("id o (age o id)"), &linear_step);
  ASSERT_EQ(result.has_value(), linear_result.has_value());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(step.rule_id, linear_step.rule_id);
  EXPECT_EQ(step.path, linear_step.path);
  EXPECT_TRUE(Term::Equal(*result, *linear_result));
}

TEST(RuleIndexTest, AmpleBudgetChargesIndexBytes) {
  Governor governor{Governor::Limits{.memory_budget_bytes = 1 << 30}};
  RewriterOptions options;
  options.governor = &governor;
  Rewriter rewriter(nullptr, options);
  std::vector<Rule> rules = AllCatalogRules();
  auto index = rewriter.IndexFor(rules, RuleSetFingerprint(rules));
  ASSERT_NE(index, nullptr);
  EXPECT_GE(governor.memory().peak_bytes(), index->footprint_bytes());
}

// ---------------------------------------------------------------------------
// Whole-pipeline agreement on the paper's workloads: Fixpoint traces with
// the index on vs off, byte for byte.
// ---------------------------------------------------------------------------

TEST(RuleIndexTest, FixpointTracesAreByteIdenticalOnPaperWorkloads) {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> fig4;
  for (const char* id :
       {"11", "6", "5", "1", "13", "7", "ext.and-true-right"}) {
    fig4.push_back(FindRule(all, id));
  }
  const char* queries[] = {
      "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P",
      "iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P",
  };
  Rewriter indexed;
  RewriterOptions linear_options;
  linear_options.use_rule_index = false;
  Rewriter linear(nullptr, linear_options);
  for (const char* text : queries) {
    Trace ti, tl;
    auto ri = indexed.Fixpoint(fig4, Q(text, Sort::kObject), &ti);
    auto rl = linear.Fixpoint(fig4, Q(text, Sort::kObject), &tl);
    ASSERT_TRUE(ri.ok() && rl.ok()) << text;
    EXPECT_TRUE(Term::Equal(ri.value(), rl.value())) << text;
    EXPECT_EQ(ti.ToString(), tl.ToString()) << text;
    EXPECT_FALSE(ti.steps.empty()) << text;
  }
}

}  // namespace
}  // namespace kola
