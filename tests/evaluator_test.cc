#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "term/parser.h"
#include "term/term.h"
#include "values/car_world.h"
#include "values/database.h"

namespace kola {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CarWorldOptions options;
    options.num_persons = 12;
    options.num_addresses = 6;
    options.num_vehicles = 8;
    options.seed = 7;
    db_ = BuildCarWorld(options);
  }

  Value Eval(const std::string& text) {
    auto term = ParseQuery(text);
    EXPECT_TRUE(term.ok()) << term.status();
    auto value = EvalQuery(*db_, term.value());
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? std::move(value).value() : Value::Null();
  }

  Status EvalError(const std::string& text) {
    auto term = ParseQuery(text);
    EXPECT_TRUE(term.ok()) << term.status();
    auto value = EvalQuery(*db_, term.value());
    EXPECT_FALSE(value.ok()) << "unexpectedly evaluated to "
                             << value.value_or(Value::Null());
    return value.ok() ? Status::OK() : value.status();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(EvaluatorTest, IdIsIdentity) {
  EXPECT_EQ(Eval("id ! 5"), Value::Int(5));
  EXPECT_EQ(Eval("id ! [1, 2]"),
            Value::MakePair(Value::Int(1), Value::Int(2)));
}

TEST_F(EvaluatorTest, Projections) {
  EXPECT_EQ(Eval("pi1 ! [1, 2]"), Value::Int(1));
  EXPECT_EQ(Eval("pi2 ! [1, 2]"), Value::Int(2));
  EXPECT_EQ(EvalError("pi1 ! 5").code(), StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, ComparisonPredicates) {
  EXPECT_EQ(Eval("gt ? [3, 2]"), Value::Bool(true));
  EXPECT_EQ(Eval("gt ? [2, 3]"), Value::Bool(false));
  EXPECT_EQ(Eval("leq ? [2, 2]"), Value::Bool(true));
  EXPECT_EQ(Eval("lt ? [2, 2]"), Value::Bool(false));
  EXPECT_EQ(Eval("geq ? [2, 2]"), Value::Bool(true));
  EXPECT_EQ(Eval("eq ? [2, 2]"), Value::Bool(true));
  EXPECT_EQ(Eval("eq ? [2, 3]"), Value::Bool(false));
  EXPECT_EQ(Eval("neq ? [2, 3]"), Value::Bool(true));
  EXPECT_EQ(Eval("eq ? [\"a\", \"a\"]"), Value::Bool(true));
  EXPECT_EQ(Eval("lt ? [\"a\", \"b\"]"), Value::Bool(true));
}

TEST_F(EvaluatorTest, OrderingAcrossKindsIsTypeError) {
  EXPECT_EQ(EvalError("gt ? [1, \"a\"]").code(), StatusCode::kTypeError);
  EXPECT_EQ(EvalError("lt ? [{1}, {2}]").code(), StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, Membership) {
  EXPECT_EQ(Eval("in ? [2, {1, 2, 3}]"), Value::Bool(true));
  EXPECT_EQ(Eval("in ? [4, {1, 2, 3}]"), Value::Bool(false));
  EXPECT_EQ(EvalError("in ? [1, 2]").code(), StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, Flat) {
  // flat needs literal set-of-sets syntax: {{...}} is parsed as a value.
  EXPECT_EQ(Eval("flat ! {{1, 2}, {2, 3}}"),
            Value::MakeSet({Value::Int(1), Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Eval("flat ! {}"), Value::EmptySet());
  EXPECT_EQ(EvalError("flat ! {1, 2}").code(), StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, ComposeAppliesRightFirst) {
  EXPECT_EQ(Eval("pi1 o pi2 ! [1, [2, 3]]"), Value::Int(2));
}

TEST_F(EvaluatorTest, PairAndProductFormers) {
  EXPECT_EQ(Eval("(pi2, pi1) ! [1, 2]"),
            Value::MakePair(Value::Int(2), Value::Int(1)));
  EXPECT_EQ(Eval("(pi1 x pi2) ! [[1, 2], [3, 4]]"),
            Value::MakePair(Value::Int(1), Value::Int(4)));
  EXPECT_EQ(EvalError("(id x id) ! 5").code(), StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, ConstAndCurryFormers) {
  EXPECT_EQ(Eval("Kf(9) ! 1"), Value::Int(9));
  EXPECT_EQ(Eval("Kf({1, 2}) ! \"ignored\""),
            Value::MakeSet({Value::Int(1), Value::Int(2)}));
  // Cf(f, x) ! y = f ! [x, y]
  EXPECT_EQ(Eval("Cf(pi1, 7) ! 8"), Value::Int(7));
  EXPECT_EQ(Eval("Cf(pi2, 7) ! 8"), Value::Int(8));
  // Cp(p, x) ? y = p ? [x, y]
  EXPECT_EQ(Eval("Cp(leq, 25) ? 30"), Value::Bool(true));
  EXPECT_EQ(Eval("Cp(leq, 25) ? 20"), Value::Bool(false));
}

TEST_F(EvaluatorTest, Conditional) {
  EXPECT_EQ(Eval("con(Cp(leq, 3), Kf(1), Kf(0)) ! 5"), Value::Int(1));
  EXPECT_EQ(Eval("con(Cp(leq, 3), Kf(1), Kf(0)) ! 2"), Value::Int(0));
}

TEST_F(EvaluatorTest, PredicateFormers) {
  EXPECT_EQ(Eval("Kp(T) ? 1"), Value::Bool(true));
  EXPECT_EQ(Eval("Kp(F) ? 1"), Value::Bool(false));
  // Cp(leq, 2) ? y tests 2 <= y.
  EXPECT_EQ(Eval("(Cp(leq, 2) & Cp(geq, 10)) ? 3"), Value::Bool(true));
  EXPECT_EQ(Eval("(Cp(leq, 2) & Cp(leq, 10)) ? 5"), Value::Bool(false));
  EXPECT_EQ(Eval("(Cp(leq, 2) | Cp(leq, 10)) ? 5"), Value::Bool(true));
  EXPECT_EQ(Eval("not(Kp(T)) ? 1"), Value::Bool(false));
  // inv(p) ? [x, y] = p ? [y, x] (the converse). Hence inv(gt) == lt --
  // the corrected form of the paper's rule 7; see DESIGN.md.
  EXPECT_EQ(Eval("inv(gt) ? [2, 2]"), Value::Bool(false));
  EXPECT_EQ(Eval("lt ? [2, 2]"), Value::Bool(false));
  EXPECT_EQ(Eval("inv(gt) ? [2, 3]"), Value::Bool(true));
  EXPECT_EQ(Eval("inv(gt) ? [3, 2]"), Value::Bool(false));
  // The complement reading: not(gt) == leq over a total order.
  EXPECT_EQ(Eval("not(gt) ? [2, 2]"), Value::Bool(true));
  EXPECT_EQ(Eval("leq ? [2, 2]"), Value::Bool(true));
}

TEST_F(EvaluatorTest, OplusCombinesPredicateAndFunction) {
  EXPECT_EQ(Eval("(Cp(leq, 25) @ pi1) ? [30, 1]"), Value::Bool(true));
  EXPECT_EQ(Eval("(Cp(leq, 25) @ pi1) ? [20, 1]"), Value::Bool(false));
}

TEST_F(EvaluatorTest, ShortCircuitAvoidsErrors) {
  // The right conjunct would be a type error (pi1 of an int), but the left
  // conjunct is false so it is never evaluated.
  EXPECT_EQ(Eval("(Kp(F) & eq @ pi1) ? 3"), Value::Bool(false));
  EXPECT_EQ(Eval("(Kp(T) | eq @ pi1) ? 3"), Value::Bool(true));
}

TEST_F(EvaluatorTest, IterateFiltersAndMaps) {
  EXPECT_EQ(Eval("iterate(Cp(leq, 3), id) ! {1, 2, 3, 4, 5}"),
            Value::MakeSet({Value::Int(3), Value::Int(4), Value::Int(5)}));
  EXPECT_EQ(Eval("iterate(Kp(T), Kf(0)) ! {1, 2, 3}"),
            Value::MakeSet({Value::Int(0)}));
  EXPECT_EQ(Eval("iterate(Kp(F), id) ! {1, 2}"), Value::EmptySet());
  EXPECT_EQ(EvalError("iterate(Kp(T), id) ! 5").code(),
            StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, IterThreadsEnvironment) {
  // iter(p, f) ! [e, B] = { f![e,y] | y in B, p?[e,y] }
  EXPECT_EQ(Eval("iter(Kp(T), pi2) ! [9, {1, 2}]"),
            Value::MakeSet({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(Eval("iter(Kp(T), pi1) ! [9, {1, 2}]"),
            Value::MakeSet({Value::Int(9)}));
  EXPECT_EQ(Eval("iter(gt, pi2) ! [2, {1, 2, 3}]"),
            Value::MakeSet({Value::Int(1)}));
}

TEST_F(EvaluatorTest, JoinIsCrossProductFilterMap) {
  EXPECT_EQ(Eval("join(Kp(T), id) ! [{1, 2}, {3}]"),
            Value::MakeSet({Value::MakePair(Value::Int(1), Value::Int(3)),
                            Value::MakePair(Value::Int(2), Value::Int(3))}));
  EXPECT_EQ(Eval("join(eq, pi1) ! [{1, 2}, {2, 3}]"),
            Value::MakeSet({Value::Int(2)}));
  EXPECT_EQ(Eval("join(Kp(T), id) ! [{}, {1}]"), Value::EmptySet());
}

TEST_F(EvaluatorTest, NestGroupsRelativeToSecondSet) {
  // nest(f,g) ! [A, B]: group A by key f relative to B; unmatched B
  // elements get the empty set (the paper's NULL-free outer-join analogue).
  Value result = Eval(
      "nest(pi1, pi2) ! [{[1, \"a\"], [1, \"b\"], [2, \"c\"]}, {1, 2, 3}]");
  Value expected = Value::MakeSet(
      {Value::MakePair(Value::Int(1), Value::MakeSet({Value::Str("a"),
                                                      Value::Str("b")})),
       Value::MakePair(Value::Int(2), Value::MakeSet({Value::Str("c")})),
       Value::MakePair(Value::Int(3), Value::EmptySet())});
  EXPECT_EQ(result, expected);
}

TEST_F(EvaluatorTest, UnnestFlattensSetValuedFunction) {
  Value result = Eval("unnest(pi1, pi2) ! {[1, {7, 8}], [2, {9}]}");
  Value expected = Value::MakeSet(
      {Value::MakePair(Value::Int(1), Value::Int(7)),
       Value::MakePair(Value::Int(1), Value::Int(8)),
       Value::MakePair(Value::Int(2), Value::Int(9))});
  EXPECT_EQ(result, expected);
  EXPECT_EQ(Eval("unnest(pi1, pi2) ! {}"), Value::EmptySet());
  EXPECT_EQ(EvalError("unnest(pi1, pi2) ! {[1, 2]}").code(),
            StatusCode::kTypeError);
}

TEST_F(EvaluatorTest, SchemaFunctionsResolveThroughDatabase) {
  Value ages = Eval("iterate(Kp(T), age) ! P");
  ASSERT_TRUE(ages.is_set());
  EXPECT_GT(ages.SetSize(), 0u);
  for (const Value& a : ages.elements()) EXPECT_TRUE(a.is_int());

  Value cities = Eval("iterate(Kp(T), city o addr) ! P");
  for (const Value& c : cities.elements()) EXPECT_TRUE(c.is_string());
}

TEST_F(EvaluatorTest, PaperReductionExample) {
  // Section 3: iterate(Kp(T), city o addr) ! P  ==  the cities inhabited by
  // people in P, which equals mapping addr then city in two passes.
  Value one_pass = Eval("iterate(Kp(T), city o addr) ! P");
  Value two_pass =
      Eval("iterate(Kp(T), city) ! (iterate(Kp(T), addr) ! P)");
  EXPECT_EQ(one_pass, two_pass);
}

TEST_F(EvaluatorTest, PaperT2BothSidesAgree) {
  // Figure 1 T2: ages of people older than 25.
  Value lhs = Eval("iterate(Kp(T), age) ! "
                   "(iterate(gt @ (age, Kf(25)), id) ! P)");
  Value rhs = Eval("iterate(Cp(lt, 25), id) ! "
                   "(iterate(Kp(T), age) ! P)");
  EXPECT_EQ(lhs, rhs);
}

TEST_F(EvaluatorTest, UnknownSchemaFunctionIsNotFound) {
  EXPECT_EQ(EvalError("iterate(Kp(T), salary) ! P").code(),
            StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, UnknownExtentIsNotFound) {
  EXPECT_EQ(EvalError("iterate(Kp(T), id) ! Q").code(),
            StatusCode::kNotFound);
}

TEST_F(EvaluatorTest, MetaVarCannotBeEvaluated) {
  auto term = ParseTerm("?f ! P", Sort::kObject);
  ASSERT_TRUE(term.ok());
  auto result = EvalQuery(*db_, term.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EvaluatorTest, StepBudgetIsEnforced) {
  Evaluator evaluator(db_.get(), EvalOptions{.max_steps = 10});
  auto term = ParseQuery("iterate(Kp(T), age) ! P");
  ASSERT_TRUE(term.ok());
  auto result = evaluator.EvalObject(term.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EvaluatorTest, StepsAccumulate) {
  Evaluator evaluator(db_.get());
  auto term = ParseQuery("iterate(Kp(T), age) ! P");
  ASSERT_TRUE(term.ok());
  ASSERT_TRUE(evaluator.EvalObject(term.value()).ok());
  EXPECT_GT(evaluator.steps(), 0);
  evaluator.ResetSteps();
  EXPECT_EQ(evaluator.steps(), 0);
}

TEST_F(EvaluatorTest, GarageQueryKG1Evaluates) {
  // Figure 3 KG1: associate each vehicle with the addresses where it might
  // be located (garages of its owners).
  Value result = Eval(
      "iterate(Kp(T), (id, flat o iter(Kp(T), grgs o pi2) o (id, "
      "iter(in @ (pi1, cars o pi2), pi2) o (id, Kf(P))))) ! V");
  ASSERT_TRUE(result.is_set());
  Value vehicles = db_->Extent("V").value();
  EXPECT_EQ(result.SetSize(), vehicles.SetSize());
  // Cross-check one pair against a direct computation.
  for (const Value& pair : result.elements()) {
    ASSERT_TRUE(pair.is_pair());
    const Value& v = pair.first();
    const Value& garages = pair.second();
    ASSERT_TRUE(garages.is_set());
    std::vector<Value> expected;
    for (const Value& p : db_->Extent("P").value().elements()) {
      Value cars = db_->GetAttribute(p, "cars").value();
      if (!cars.SetContains(v)) continue;
      for (const Value& g : db_->GetAttribute(p, "grgs").value().elements()) {
        expected.push_back(g);
      }
    }
    EXPECT_EQ(garages, Value::MakeSet(expected));
  }
}

TEST_F(EvaluatorTest, GarageQueryKG2MatchesKG1) {
  // Figure 3: KG1 and KG2 are equivalent.
  Value kg1 = Eval(
      "iterate(Kp(T), (id, flat o iter(Kp(T), grgs o pi2) o (id, "
      "iter(in @ (pi1, cars o pi2), pi2) o (id, Kf(P))))) ! V");
  Value kg2 = Eval(
      "nest(pi1, pi2) o (unnest(pi1, pi2) x id) o "
      "(join(in @ (id x cars), id x grgs), pi1) ! [V, P]");
  EXPECT_EQ(kg1, kg2);
}

}  // namespace
}  // namespace kola
