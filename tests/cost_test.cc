#include <gtest/gtest.h>

#include "optimizer/cost.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

class CostTest : public ::testing::Test {
 protected:
  CostTest() {
    CarWorldOptions options;
    options.num_persons = 100;
    options.num_vehicles = 40;
    options.num_addresses = 20;
    db_ = BuildCarWorld(options);
    model_ = std::make_unique<CostModel>(db_.get());
  }

  double Cost(const char* text) {
    auto term = ParseTerm(text, Sort::kObject);
    EXPECT_TRUE(term.ok()) << term.status();
    auto cost = model_->EstimateQueryCost(term.value());
    EXPECT_TRUE(cost.ok()) << cost.status();
    return cost.ok() ? cost.value() : -1;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<CostModel> model_;
};

TEST_F(CostTest, ShapesConstruct) {
  ShapePtr s = Shape::Set(10, Shape::Pair(Shape::Scalar(), Shape::Scalar()));
  EXPECT_EQ(s->kind, Shape::Kind::kSet);
  EXPECT_EQ(s->card, 10);
  EXPECT_EQ(s->element->kind, Shape::Kind::kPair);
  // Negative cardinalities clamp to zero.
  EXPECT_EQ(Shape::Set(-3, Shape::Scalar())->card, 0);
}

TEST_F(CostTest, ExtentCardinalityGroundsEstimates) {
  // Scanning a bigger extent costs more.
  EXPECT_GT(Cost("iterate(Kp(T), age) ! P"),
            Cost("iterate(Kp(T), make) ! V"));
}

TEST_F(CostTest, ComposedScansCostMoreThanOne) {
  EXPECT_GT(Cost("iterate(Kp(T), city) ! (iterate(Kp(T), addr) ! P)"),
            Cost("iterate(Kp(T), city o addr) ! P"));
}

TEST_F(CostTest, SelectivityReducesDownstreamCost) {
  // A Kp(F) filter zeroes the downstream map cost.
  EXPECT_LT(Cost("iterate(Kp(T), age) ! (iterate(Kp(F), id) ! P)"),
            Cost("iterate(Kp(T), age) ! (iterate(Kp(T), id) ! P)"));
}

TEST_F(CostTest, HashJoinBeatsUnkeyedJoin) {
  double keyed = Cost("join(eq @ (age x age), pi1) ! [P, P]");
  double unkeyed = Cost("join(gt @ (age x age), pi1) ! [P, P]");
  EXPECT_LT(keyed, unkeyed);
}

TEST_F(CostTest, FastpathAssumptionIsSwitchable) {
  CostParams params;
  params.assume_physical_fastpaths = false;
  CostModel naive(db_.get(), params);
  auto term = ParseTerm("join(eq @ (age x age), pi1) ! [P, P]",
                        Sort::kObject);
  ASSERT_TRUE(term.ok());
  auto with = model_->EstimateQueryCost(term.value());
  auto without = naive.EstimateQueryCost(term.value());
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_LT(with.value(), without.value());
}

TEST_F(CostTest, PredicateEstimates) {
  CostModel::PredEstimate t =
      model_->EstimatePred(ConstPredTrue(), Shape::Scalar());
  EXPECT_EQ(t.selectivity, 1.0);
  CostModel::PredEstimate f =
      model_->EstimatePred(ConstPredFalse(), Shape::Scalar());
  EXPECT_EQ(f.selectivity, 0.0);
  CostModel::PredEstimate both = model_->EstimatePred(
      AndP(ConstPredTrue(), ConstPredFalse()), Shape::Scalar());
  EXPECT_EQ(both.selectivity, 0.0);
  CostModel::PredEstimate either = model_->EstimatePred(
      OrP(ConstPredTrue(), ConstPredFalse()), Shape::Scalar());
  EXPECT_EQ(either.selectivity, 1.0);
  CostModel::PredEstimate neither =
      model_->EstimatePred(NotP(ConstPredTrue()), Shape::Scalar());
  EXPECT_EQ(neither.selectivity, 0.0);
}

TEST_F(CostTest, UnknownExtentFallsBackGracefully) {
  // Unknown collections get a default cardinality rather than failing --
  // the cost model is heuristic by contract.
  EXPECT_GT(Cost("iterate(Kp(T), id) ! Unknown"), 0);
}

TEST_F(CostTest, NonObjectTermIsError) {
  auto fn = ParseTerm("age", Sort::kFunction);
  ASSERT_TRUE(fn.ok());
  EXPECT_FALSE(model_->EstimateQueryCost(fn.value()).ok());
}

TEST_F(CostTest, SetValuedAttributesCarryFanout) {
  // flat(map child) should cost more than map age (fanout multiplies).
  EXPECT_GT(Cost("flat ! (iterate(Kp(T), child) ! P)"),
            Cost("iterate(Kp(T), age) ! P"));
}

TEST_F(CostTest, PushdownLooksCheaperToTheModel) {
  // The exploration rules' value is visible to the model: selection below
  // the join beats selection inside the join predicate.
  double inside = Cost(
      "join(gt @ (age x age) & Cp(lt, 60) @ age @ pi1, (pi1, pi2)) "
      "! [P, P]");
  double below = Cost(
      "join(gt @ (age x age), (pi1, pi2)) o "
      "(iterate(Cp(lt, 60) @ age, id) x id) ! [P, P]");
  EXPECT_LT(below, inside);
}

}  // namespace
}  // namespace kola
