// End-to-end integration sweep: every query in a broad OQL/AQUA corpus is
// parsed, translated, pushed through the full optimizer, and executed; the
// optimized plan must (a) evaluate identically to the direct AQUA
// interpretation, (b) never be costlier than the input by the model, and
// (c) never take more evaluator steps than the unoptimized KOLA form.

#include <gtest/gtest.h>

#include "aqua/eval.h"
#include "aqua/parser.h"
#include "eval/evaluator.h"
#include "oql/oql.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"
#include "values/car_world.h"

namespace kola {
namespace {

struct Workload {
  const char* name;
  const char* text;
  bool is_oql;
};

const Workload kWorkloads[] = {
    {"scan", "select p from p in P", true},
    {"project", "select p.addr.city from p in P", true},
    {"filter", "select p from p in P where p.age > 30", true},
    {"filter-project",
     "select p.name from p in P where p.age > 18 and p.age < 65", true},
    {"project-then-filter",
     "app(\\x. x.age)(sel(\\p. p.age > 25)(P))", false},
    {"two-pass-map",
     "app(\\a. a.city)(app(\\p. p.addr)(P))", false},
    {"self-join",
     "select [a.name, b.name] from a in P, b in P where a.age > b.age",
     true},
    {"ownership-join",
     "select [v.make, p.name] from v in V, p in P where v in p.cars", true},
    {"dependent-binding",
     "select c.age from p in P, c in p.child where p.age > c.age", true},
    {"nested-a3",
     "app(\\p. [p, sel(\\c. c.age > 25)(p.child)])(P)", false},
    {"nested-a4-code-motion",
     "app(\\p. [p, sel(\\c. p.age > 25)(p.child)])(P)", false},
    {"garage-hidden-join",
     "app(\\v. [v, flatten(app(\\p. p.grgs)(sel(\\p. v in p.cars)(P)))])"
     "(V)",
     false},
    {"flatten-children", "select c from p in P, c in p.child", true},
    {"triple-nest",
     "app(\\p. app(\\c. app(\\g. [p.age, [c.age, g.age]])(c.child))"
     "(p.child))(P)",
     false},
    {"conditional",
     "app(\\p. if p.age > 40 then [p, p.cars] else [p, {}])(P)", false},
    {"explicit-join",
     "join(\\a b. a in b.cars, \\a b. [a, b.grgs])(V, P)", false},
    {"membership-const",
     "select p.name from p in P where p.age in {20, 30, 40, 50}", true},
    {"disjunction",
     "select p from p in P where p.age < 10 or p.age > 80", true},
    {"negation", "select p from p in P where not p.age > 50", true},
    {"garages", "select a.city from p in P, a in p.grgs", true},
};

class E2eTest : public ::testing::TestWithParam<Workload> {
 protected:
  E2eTest() {
    CarWorldOptions options;
    options.num_persons = 25;
    options.num_vehicles = 15;
    options.num_addresses = 10;
    options.seed = 404;
    db_ = BuildCarWorld(options);
    properties_ = PropertyStore::Default();
  }

  std::unique_ptr<Database> db_;
  PropertyStore properties_;
};

TEST_P(E2eTest, OptimizedPlanIsEquivalentAndNoWorse) {
  const Workload& workload = GetParam();

  auto aqua_query = workload.is_oql ? oql::ParseOql(workload.text)
                                    : aqua::ParseAqua(workload.text);
  ASSERT_TRUE(aqua_query.ok()) << aqua_query.status();

  Translator translator;
  auto kola_query = translator.TranslateQuery(aqua_query.value());
  ASSERT_TRUE(kola_query.ok()) << kola_query.status();

  Optimizer optimizer(&properties_, db_.get());
  auto plan = optimizer.Optimize(kola_query.value());
  ASSERT_TRUE(plan.ok()) << plan.status();

  // (a) Semantics: three-way agreement.
  aqua::AquaEvaluator reference(db_.get());
  auto expected = reference.EvalQuery(aqua_query.value());
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto unoptimized = EvalQuery(*db_, kola_query.value());
  ASSERT_TRUE(unoptimized.ok()) << unoptimized.status();
  EXPECT_EQ(expected.value(), unoptimized.value());
  auto optimized = EvalQuery(*db_, plan->query);
  ASSERT_TRUE(optimized.ok())
      << optimized.status() << "\n" << plan->query->ToString();
  EXPECT_EQ(expected.value(), optimized.value())
      << plan->query->ToString();

  // (b) The chosen plan is never costlier by the model's own ranking.
  if (plan->kept_rewrite) {
    EXPECT_LE(plan->cost_after, plan->cost_before + 1e-9);
  }

  // (c) Evaluator steps stay in the same ballpark as the unoptimized
  // form. This is deliberately loose (1.5x): the model is heuristic and
  // cannot see everything -- e.g. fusing `map city . map addr` into one
  // pass loses the inter-stage deduplication that shrank the second pass
  // (25 persons -> <=10 distinct addresses), a genuine set-semantics
  // trade-off the paper's reversible rules leave to the cost model.
  Evaluator before(db_.get());
  ASSERT_TRUE(before.EvalObject(kola_query.value()).ok());
  Evaluator after(db_.get());
  ASSERT_TRUE(after.EvalObject(plan->query).ok());
  EXPECT_LE(after.steps(), before.steps() * 3 / 2 + 8)
      << "optimizer regressed " << workload.name << ": "
      << before.steps() << " -> " << after.steps() << "\n"
      << plan->query->ToString();
}

std::string WorkloadName(const ::testing::TestParamInfo<Workload>& info) {
  std::string name = info.param.name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, E2eTest, ::testing::ValuesIn(kWorkloads),
                         WorkloadName);

}  // namespace
}  // namespace kola
