// The resource governor and graceful degradation: every RESOURCE_EXHAUSTED
// path in the pipeline (evaluator step budget, Fixpoint cap, Exhaust cap,
// governor budget and deadline) must surface as a reported error or a
// Degradation, never as an abort -- and a degraded Optimize must still
// return a sound plan with the input query as the floor.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "coko/strategy.h"
#include "common/governor.h"
#include "common/macros.h"
#include "eval/evaluator.h"
#include "optimizer/code_motion.h"
#include "optimizer/hidden_join.h"
#include "optimizer/optimizer.h"
#include "rewrite/engine.h"
#include "rewrite/rule.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

void SleepPastDeadline(int64_t deadline_ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(deadline_ms + 5));
}

// A deliberately non-terminating rule: & commutes, so the fixpoint loop
// flips the operands forever and only a budget can stop it.
Rule SpinRule() {
  auto rule = MakeRule("test.spin", "TEST ONLY: endless & commute",
                       "?p & ?q", "?q & ?p", Sort::kPredicate);
  KOLA_CHECK_OK(rule.status());
  return std::move(rule).value();
}

TEST(GovernorTest, UnlimitedLimitsNeverStop) {
  Governor governor(Governor::Limits{});
  for (int i = 0; i < 10'000; ++i) EXPECT_TRUE(governor.Charge().ok());
  EXPECT_TRUE(governor.CheckNow().ok());
  EXPECT_FALSE(governor.stopped());
  EXPECT_EQ(governor.steps_spent(), 10'000);
}

TEST(GovernorTest, StepBudgetIsStickyAndCountsSpent) {
  Governor governor(Governor::Limits{.step_budget = 10});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(governor.Charge().ok()) << "charge " << i;
  }
  Status status = governor.Charge();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("step budget"), std::string::npos);
  EXPECT_EQ(governor.cause(), Governor::StopCause::kBudget);
  // Sticky: every later probe fails with the same cause, and spent keeps
  // counting so degradation reports can say how far the request got.
  EXPECT_FALSE(governor.CheckNow().ok());
  EXPECT_FALSE(governor.Charge(100).ok());
  EXPECT_GE(governor.steps_spent(), 11);
}

TEST(GovernorTest, ExpiredDeadlineStopsChargeAndCheckNow) {
  Governor governor(Governor::Limits{.deadline_ms = 1});
  SleepPastDeadline(1);
  Status status = governor.CheckNow();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("deadline"), std::string::npos);
  EXPECT_EQ(governor.cause(), Governor::StopCause::kDeadline);
  EXPECT_FALSE(governor.Charge().ok());
}

TEST(GovernorTest, DeadlineNoticedByChargeAlone) {
  // The clock is only sampled every few hundred charges, but the sampling
  // window starts at charge zero, so an expired deadline is noticed by the
  // very first Charge().
  Governor governor(Governor::Limits{.deadline_ms = 1});
  SleepPastDeadline(1);
  EXPECT_EQ(governor.Charge().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, FirstStopCauseWins) {
  Governor governor(Governor::Limits{.step_budget = 1});
  governor.Cancel();
  // Exhaust the budget after the cancellation: the reported cause must
  // stay the first one.
  EXPECT_FALSE(governor.Charge(100).ok());
  EXPECT_EQ(governor.cause(), Governor::StopCause::kCancelled);
  EXPECT_NE(governor.CheckNow().message().find("cancelled"),
            std::string::npos);
}

TEST(GovernorTest, StopCauseNames) {
  EXPECT_STREQ(Governor::StopCauseName(Governor::StopCause::kNone), "none");
  EXPECT_STREQ(Governor::StopCauseName(Governor::StopCause::kDeadline),
               "deadline");
  EXPECT_STREQ(Governor::StopCauseName(Governor::StopCause::kBudget),
               "budget");
  EXPECT_STREQ(Governor::StopCauseName(Governor::StopCause::kCancelled),
               "cancelled");
}

// ---------------------------------------------------------------------------
// RESOURCE_EXHAUSTED paths through the pipeline layers.
// ---------------------------------------------------------------------------

TEST(GovernedRewriteTest, FixpointStopsOnGovernorBudget) {
  Governor governor(Governor::Limits{.step_budget = 16});
  RewriterOptions options = RewriterOptions::Defaults();
  options.governor = &governor;
  Rewriter rewriter(nullptr, options);
  TermPtr term = ParseTerm("eq & lt", Sort::kPredicate).value();
  Trace trace;
  auto result = rewriter.Fixpoint({SpinRule()}, term, &trace, 1'000'000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("governor"), std::string::npos);
  EXPECT_GE(governor.steps_spent(), 16);
}

TEST(GovernedRewriteTest, FixpointPerCallCapStillApplies) {
  // The old per-call max_steps keeps working underneath a governor (and
  // without one): the shim did not lose the cap.
  Rewriter rewriter(nullptr);
  TermPtr term = ParseTerm("eq & lt", Sort::kPredicate).value();
  Trace trace;
  auto result = rewriter.Fixpoint({SpinRule()}, term, &trace, /*max_steps=*/5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernedRewriteTest, ExhaustCapReportsResourceExhausted) {
  Rewriter rewriter(nullptr);
  TermPtr term = ParseTerm("eq & lt", Sort::kPredicate).value();
  Trace trace;
  auto strategy = Exhaust({SpinRule()}, /*max_steps=*/5);
  auto result = strategy->Run(term, rewriter, &trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernedRewriteTest, RuleBlockChecksGovernorDeadline) {
  Governor governor(Governor::Limits{.deadline_ms = 1});
  SleepPastDeadline(1);
  RewriterOptions options = RewriterOptions::Defaults();
  options.governor = &governor;
  Rewriter rewriter(nullptr, options);
  RuleBlock block("spin-block", Exhaust({SpinRule()}));
  Trace trace;
  TermPtr term = ParseTerm("eq & lt", Sort::kPredicate).value();
  auto result = block.Apply(term, rewriter, &trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The failing block names itself so degradation reports can say where.
  EXPECT_NE(result.status().message().find("spin-block"), std::string::npos);
}

TEST(GovernedEvalTest, EvaluatorStepBudgetReportsResourceExhausted) {
  auto db = BuildCarWorld(CarWorldOptions{});
  Evaluator evaluator(db.get(), EvalOptions{.max_steps = 5});
  auto result = evaluator.EvalObject(GarageQueryKG1());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernedEvalTest, EvaluatorChargesGovernorBudget) {
  auto db = BuildCarWorld(CarWorldOptions{});
  Governor governor(Governor::Limits{.step_budget = 7});
  Evaluator evaluator(
      db.get(), EvalOptions{.max_steps = 1'000'000, .governor = &governor});
  auto result = evaluator.EvalObject(GarageQueryKG1());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("governor"), std::string::npos);
}

TEST(GovernedEvalTest, EvaluatorStopsOnExpiredDeadline) {
  auto db = BuildCarWorld(CarWorldOptions{});
  Governor governor(Governor::Limits{.deadline_ms = 1});
  SleepPastDeadline(1);
  Evaluator evaluator(
      db.get(), EvalOptions{.max_steps = 1'000'000, .governor = &governor});
  auto result = evaluator.EvalObject(GarageQueryKG1());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Graceful degradation in Optimizer::Optimize.
// ---------------------------------------------------------------------------

class DegradationTest : public ::testing::Test {
 protected:
  DegradationTest() {
    CarWorldOptions options;
    options.num_persons = 16;
    options.num_vehicles = 10;
    options.num_addresses = 8;
    options.seed = 5;
    db_ = BuildCarWorld(options);
    properties_ = PropertyStore::Default();
  }

  Value Eval(const TermPtr& query) {
    auto value = EvalQuery(*db_, query);
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? std::move(value).value() : Value::Null();
  }

  std::unique_ptr<Database> db_;
  PropertyStore properties_;
};

TEST_F(DegradationTest, CleanRunReportsNoDegradation) {
  Optimizer optimizer(&properties_, db_.get());
  auto result = optimizer.Optimize(GarageQueryKG1());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->degradation.degraded);
  EXPECT_EQ(result->degradation.ToString(), "");
}

TEST_F(DegradationTest, TinyBudgetDegradesToSoundPlan) {
  Optimizer optimizer(&properties_, db_.get());
  TermPtr query = GarageQueryKG1();
  Governor governor(Governor::Limits{.step_budget = 1});
  auto result = optimizer.Optimize(query, &governor);
  // Exhaustion is not an error: the pass returns OK with the degradation
  // reported and the best-so-far plan (here: the input) as the answer.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degradation.degraded);
  EXPECT_FALSE(result->degradation.phase.empty());
  EXPECT_EQ(result->degradation.code, StatusCode::kResourceExhausted);
  EXPECT_NE(result->degradation.ToString().find("degraded at"),
            std::string::npos);
  EXPECT_EQ(Eval(result->query), Eval(query));
}

TEST_F(DegradationTest, ExpiredDeadlineReturnsInputAsFloor) {
  Optimizer optimizer(&properties_, db_.get());
  TermPtr query = GarageQueryKG1();
  Governor governor(Governor::Limits{.deadline_ms = 1});
  SleepPastDeadline(1);
  auto result = optimizer.Optimize(query, &governor);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degradation.degraded);
  EXPECT_EQ(result->degradation.code, StatusCode::kResourceExhausted);
  EXPECT_NE(result->degradation.reason.find("deadline"), std::string::npos);
  // Nothing could run before the deadline, so the floor -- the input query
  // itself -- comes back, and it trivially evaluates to the input's result.
  EXPECT_TRUE(Term::Equal(result->query, query))
      << result->query->ToString();
  EXPECT_EQ(Eval(result->query), Eval(query));
}

TEST_F(DegradationTest, DegradedTraceDescribesReturnedPlan) {
  // A mid-pipeline budget: some phases complete, one stops. The surviving
  // trace and applied_blocks must describe exactly the returned plan (no
  // steps from the aborted phase leak in), which we verify by replaying
  // nothing: the plan must still evaluate to the input's result.
  Optimizer optimizer(&properties_, db_.get());
  TermPtr query = GarageQueryKG1();
  for (int64_t budget : {1, 8, 64, 512}) {
    Governor governor(Governor::Limits{.step_budget = budget});
    auto result = optimizer.Optimize(query, &governor);
    ASSERT_TRUE(result.ok()) << "budget " << budget << ": "
                             << result.status();
    EXPECT_EQ(Eval(result->query), Eval(query)) << "budget " << budget;
    if (result->degradation.degraded) {
      EXPECT_GE(result->degradation.steps_spent, 1) << "budget " << budget;
    }
  }
}

TEST_F(DegradationTest, OptimizeAllSharedBudgetDegradesEveryEntry) {
  Optimizer optimizer(&properties_, db_.get());
  std::vector<TermPtr> batch = {GarageQueryKG1(), QueryK4(), QueryK3()};
  Governor governor(Governor::Limits{.step_budget = 1});
  auto results = optimizer.OptimizeAll(batch, /*jobs=*/2, &governor);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    // A shared exhausted budget degrades entries; it never errors them.
    ASSERT_TRUE(results[i].ok()) << results[i].status;
    EXPECT_TRUE(results[i].result->degradation.degraded) << "entry " << i;
    EXPECT_EQ(Eval(results[i].result->query), Eval(batch[i]))
        << "entry " << i;
  }
}

}  // namespace
}  // namespace kola
