#include <gtest/gtest.h>

#include "coko/parser.h"
#include "coko/strategy.h"
#include "eval/evaluator.h"
#include "optimizer/explore.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

class ExploreTest : public ::testing::Test {
 protected:
  ExploreTest() {
    CarWorldOptions options;
    options.num_persons = 60;   // asymmetric sizes make pushdown matter
    options.num_vehicles = 12;
    options.num_addresses = 10;
    options.seed = 9;
    db_ = BuildCarWorld(options);
    model_ = std::make_unique<CostModel>(db_.get());
  }

  TermPtr Q(const char* text) {
    auto t = ParseTerm(text, Sort::kObject);
    EXPECT_TRUE(t.ok()) << t.status();
    return t.value();
  }

  Value Eval(const TermPtr& query) {
    auto v = EvalQuery(*db_, query);
    EXPECT_TRUE(v.ok()) << v.status() << "\n" << query->ToString();
    return v.ok() ? std::move(v).value() : Value::Null();
  }

  Rewriter rewriter_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<CostModel> model_;
};

TEST_F(ExploreTest, InputAlwaysPresentAndSorted) {
  TermPtr query = Q("join(gt @ (age x age), (pi1, pi2)) ! [P, P]");
  auto plans = ExploreJoinPlans(query, rewriter_, *model_);
  ASSERT_TRUE(plans.ok()) << plans.status();
  ASSERT_FALSE(plans->empty());
  for (size_t i = 1; i < plans->size(); ++i) {
    EXPECT_LE((*plans)[i - 1].cost, (*plans)[i].cost);
  }
  bool has_input = false;
  for (const Candidate& c : *plans) {
    if (c.derivation.empty()) has_input = true;
  }
  EXPECT_TRUE(has_input);
}

TEST_F(ExploreTest, SelectionPushdownWinsOnSelectiveJoin) {
  // join over P x P with a selection on the first component: pushing it
  // below the join shrinks the cross product.
  TermPtr query = Q(
      "join(gt @ (age x age) & Cp(lt, 60) @ age @ pi1, (pi1, pi2)) "
      "! [P, P]");
  auto plans = ExploreJoinPlans(query, rewriter_, *model_);
  ASSERT_TRUE(plans.ok());
  ASSERT_GT(plans->size(), 1u);

  // Some candidate was derived via selection pushdown and is the best.
  const Candidate& best = plans->front();
  bool derived = !best.derivation.empty();
  EXPECT_TRUE(derived) << "input unexpectedly optimal";
  bool pushed = false;
  for (const std::string& id : best.derivation) {
    if (id.find("select-past-join") != std::string::npos) pushed = true;
  }
  EXPECT_TRUE(pushed) << best.query->ToString();
  auto input_cost = model_->EstimateQueryCost(query);
  ASSERT_TRUE(input_cost.ok());
  EXPECT_LT(best.cost, input_cost.value());
}

TEST_F(ExploreTest, AllCandidatesAreEquivalent) {
  TermPtr query = Q(
      "join(in @ (id x cars) & Cp(lt, 50) @ age @ pi2, (pi1, pi2)) "
      "! [V, P]");
  auto plans = ExploreJoinPlans(query, rewriter_, *model_);
  ASSERT_TRUE(plans.ok());
  EXPECT_GT(plans->size(), 2u);
  Value reference = Eval(query);
  for (const Candidate& candidate : *plans) {
    EXPECT_EQ(Eval(candidate.query), reference)
        << candidate.query->ToString();
  }
}

TEST_F(ExploreTest, CommutationFoldsBackToSeenPlan) {
  // Without the involution cleanup, commuting twice would generate an
  // ever-growing family; the candidate set must stay small.
  TermPtr query = Q("join(eq @ (age x age), (pi1, pi2)) ! [P, P]");
  auto plans = ExploreJoinPlans(query, rewriter_, *model_, 64);
  ASSERT_TRUE(plans.ok());
  EXPECT_LE(plans->size(), 8u);
}

TEST_F(ExploreTest, CapIsHonored) {
  TermPtr query = Q(
      "join(gt @ (age x age) & Cp(lt, 60) @ age @ pi1 & "
      "Cp(lt, 70) @ age @ pi2, (pi1, pi2)) ! [P, P]");
  auto plans = ExploreJoinPlans(query, rewriter_, *model_, 3);
  ASSERT_TRUE(plans.ok());
  EXPECT_LE(plans->size(), 3u);
}

TEST_F(ExploreTest, ResultIsDeterministicIncludingEqualCostTies) {
  // Equal-cost plans (a symmetric self-join commutes at no cost change)
  // must come back in one total order, so truncation never drops a
  // different plan run-to-run.
  TermPtr query = Q(
      "join(gt @ (age x age) & Cp(lt, 60) @ age @ pi1 & "
      "Cp(lt, 70) @ age @ pi2, (pi1, pi2)) ! [P, P]");
  auto reference = ExploreJoinPlans(query, rewriter_, *model_);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->size(), 2u);
  for (int run = 0; run < 3; ++run) {
    auto plans = ExploreJoinPlans(query, rewriter_, *model_);
    ASSERT_TRUE(plans.ok());
    ASSERT_EQ(plans->size(), reference->size());
    for (size_t i = 0; i < plans->size(); ++i) {
      EXPECT_TRUE(Term::Equal((*plans)[i].query, (*reference)[i].query))
          << "run " << run << " position " << i;
      EXPECT_EQ((*plans)[i].derivation, (*reference)[i].derivation);
    }
  }
  // The order respects the documented tie-break.
  for (size_t i = 1; i < reference->size(); ++i) {
    const Candidate& a = (*reference)[i - 1];
    const Candidate& b = (*reference)[i];
    ASSERT_LE(a.cost, b.cost);
    if (a.cost == b.cost) {
      EXPECT_LE(a.derivation, b.derivation);
      if (a.derivation == b.derivation) {
        EXPECT_LT(a.query->ToString(), b.query->ToString());
      }
    }
  }
}

TEST_F(ExploreTest, TruncationKeepsTheSamePlansEveryRun) {
  TermPtr query = Q(
      "join(gt @ (age x age) & Cp(lt, 60) @ age @ pi1 & "
      "Cp(lt, 70) @ age @ pi2, (pi1, pi2)) ! [P, P]");
  auto reference = ExploreJoinPlans(query, rewriter_, *model_, 4);
  ASSERT_TRUE(reference.ok());
  for (int run = 0; run < 3; ++run) {
    auto plans = ExploreJoinPlans(query, rewriter_, *model_, 4);
    ASSERT_TRUE(plans.ok());
    ASSERT_EQ(plans->size(), reference->size());
    for (size_t i = 0; i < plans->size(); ++i) {
      EXPECT_TRUE(Term::Equal((*plans)[i].query, (*reference)[i].query));
    }
  }
}

TEST_F(ExploreTest, EverywhereStrategySweepsOnce) {
  std::vector<Rule> all = AllCatalogRules();
  auto sweep = Everywhere({FindRule(all, "1"), FindRule(all, "2")});
  // Multiple nested redexes all reduce in one sweep.
  auto term = ParseTerm("(id o age) o ((name o id) o id)", Sort::kFunction);
  ASSERT_TRUE(term.ok());
  auto result = sweep->Run(term.value(), rewriter_, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->changed);
  // One sweep fires at each position once (children first), so nested
  // leftovers may remain -- repeating reaches the fixpoint.
  auto repeat = Repeat(sweep);
  auto fixed = repeat->Run(term.value(), rewriter_, nullptr);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->term->ToString(), "age o name");
}

TEST_F(ExploreTest, EverywhereInCokoText) {
  std::vector<Rule> all = AllCatalogRules();
  auto module = ParseCoko("block clean { everywhere 1, 2; }", all);
  ASSERT_TRUE(module.ok()) << module.status();
  auto term = ParseTerm("(id o age) o id", Sort::kFunction);
  ASSERT_TRUE(term.ok());
  auto result =
      module->blocks[0].Apply(term.value(), rewriter_, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->changed);
}

}  // namespace
}  // namespace kola
