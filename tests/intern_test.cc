// Hash-consing invariants (term/intern.h) and the Fixpoint negative-match
// memo (rewrite/engine.h):
//  * intern(a) == intern(b) exactly when Term::Equal(a, b),
//  * metavariable patterns and ground terms never collapse onto each other,
//  * WithChildren on interned terms stays canonical,
//  * derivation traces are byte-identical with interning/memoization on and
//    off (the Figure 4, Figure 6 and garage-query derivations).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "optimizer/code_motion.h"
#include "optimizer/hidden_join.h"
#include "rewrite/engine.h"
#include "rewrite/generate.h"
#include "rewrite/types.h"
#include "rules/catalog.h"
#include "term/intern.h"
#include "term/parser.h"

namespace kola {
namespace {

TermPtr Q(const char* text, Sort sort = Sort::kObject) {
  auto t = ParseTerm(text, sort);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

TEST(TermInternerTest, EqualTermsShareOneCanonicalPointer) {
  // Pin construction-time interning off so this exercises the local arena
  // (ids and tags) even when the suite runs under KOLA_INTERN=1.
  ScopedInterning off(false);
  TermInterner interner;
  TermPtr a = Q("iterate(Kp(T), age) ! P");
  TermPtr b = Q("iterate(Kp(T), age) ! P");
  ASSERT_NE(a.get(), b.get());
  TermPtr ca = interner.Intern(a);
  TermPtr cb = interner.Intern(b);
  EXPECT_EQ(ca.get(), cb.get());
  EXPECT_NE(interner.IdOf(ca), 0u);
  EXPECT_EQ(interner.IdOf(ca), interner.IdOf(cb));
  // Shared subtrees are interned too.
  EXPECT_EQ(interner.Intern(a->child(1)).get(), ca->child(1).get());
}

TEST(TermInternerTest, DistinctTermsKeepDistinctIds) {
  ScopedInterning off(false);
  TermInterner interner;
  TermPtr a = interner.Intern(Compose(Id(), Pi1()));
  TermPtr b = interner.Intern(Compose(Id(), Pi2()));
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(interner.IdOf(a), interner.IdOf(b));
  EXPECT_FALSE(Term::Equal(a, b));
}

TEST(TermInternerTest, InternAgreesWithStructuralEqualityOnRandomTerms) {
  SchemaTypes schema = SchemaTypes::CarWorld();
  Rng rng(20260806);
  TermGenerator gen(&schema, nullptr, &rng);
  TermInterner interner;
  std::vector<TermPtr> terms;
  for (int i = 0; i < 120; ++i) {
    auto fn = gen.RandomFn(gen.RandomType(2), gen.RandomType(2), 3);
    ASSERT_TRUE(fn.ok()) << fn.status();
    terms.push_back(fn.value());
  }
  std::vector<TermPtr> canonical;
  canonical.reserve(terms.size());
  for (const TermPtr& t : terms) canonical.push_back(interner.Intern(t));
  for (size_t i = 0; i < terms.size(); ++i) {
    ASSERT_TRUE(Term::Equal(terms[i], canonical[i]));
    for (size_t j = 0; j < terms.size(); ++j) {
      EXPECT_EQ(Term::Equal(terms[i], terms[j]),
                canonical[i].get() == canonical[j].get())
          << terms[i]->ToString() << " vs " << terms[j]->ToString();
    }
  }
}

TEST(TermInternerTest, MetavarsAndGroundTermsNeverCollide) {
  TermInterner interner;
  // Same name, four different constructs: a pattern variable per sort, a
  // primitive, and a collection. All must stay distinct.
  std::vector<TermPtr> leaves = {
      interner.Intern(FnVar("age")),   interner.Intern(PredVar("age")),
      interner.Intern(ObjVar("age")),  interner.Intern(BoolVar("age")),
      interner.Intern(PrimFn("age")),  interner.Intern(PrimPred("age")),
      interner.Intern(Collection("age"))};
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      EXPECT_NE(leaves[i].get(), leaves[j].get()) << i << " vs " << j;
      EXPECT_FALSE(Term::Equal(leaves[i], leaves[j])) << i << " vs " << j;
    }
  }
  // A pattern and the ground term it could match are different terms.
  TermPtr pattern = interner.Intern(Compose(FnVar("f"), Pi1()));
  TermPtr ground = interner.Intern(Compose(PrimFn("f"), Pi1()));
  EXPECT_NE(pattern.get(), ground.get());
}

TEST(TermInternerTest, WithChildrenStaysCanonicalUnderScopedInterning) {
  ScopedInterning on(true);
  // Both queries sit above the small-term floor (InternMinNodes), so
  // construction-time canonicalization applies to them and their rebuilds.
  TermPtr a = Q("iterate(lt @ (age, Kf(30)), age)", Sort::kFunction);
  TermPtr b = Q("iterate(lt @ (age, Kf(30)), city)", Sort::kFunction);
  ASSERT_GE(a->node_count(), InternMinNodes());
  // Rebuilding b over a's children must land on a's canonical node.
  TermPtr rebuilt = b->WithChildren({a->child(0), a->child(1)});
  EXPECT_EQ(rebuilt.get(), a.get());
  EXPECT_TRUE(rebuilt->interned());
}

TEST(TermInternerTest, ScopedInterningMakesBuildersCanonical) {
  ScopedInterning on(true);
  TermPtr a = Iterate(Oplus(LtP(), PairFn(PrimFn("age"), ConstFn(LitInt(30)))),
                      PrimFn("age"));
  TermPtr b = Iterate(Oplus(LtP(), PairFn(PrimFn("age"), ConstFn(LitInt(30)))),
                      PrimFn("age"));
  ASSERT_GE(a->node_count(), InternMinNodes());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_TRUE(Term::Equal(a, b));
  {
    ScopedInterning off(false);
    TermPtr c = Iterate(
        Oplus(LtP(), PairFn(PrimFn("age"), ConstFn(LitInt(30)))),
        PrimFn("age"));
    EXPECT_NE(c.get(), a.get());
    EXPECT_TRUE(Term::Equal(c, a));
  }
}

TEST(TermInternerTest, SmallTermsSkipConstructionTimeInterning) {
  ScopedInterning on(true);
  // Below the floor: Make leaves the spine un-interned (two builds do not
  // collapse), but an explicit Intern still canonicalizes it.
  TermPtr a = Compose(PrimFn("age"), Pi1());
  TermPtr b = Compose(PrimFn("age"), Pi1());
  ASSERT_LT(a->node_count(), InternMinNodes());
  EXPECT_FALSE(a->interned());
  EXPECT_NE(a.get(), b.get());
  EXPECT_TRUE(Term::Equal(a, b));
  TermPtr ca = GlobalTermInterner().Intern(a);
  TermPtr cb = GlobalTermInterner().Intern(b);
  EXPECT_EQ(ca.get(), cb.get());
  EXPECT_TRUE(ca->interned());
}

TEST(TermInternerTest, LiteralValuesDistinguishCanonicals) {
  TermInterner interner;
  TermPtr five_a = interner.Intern(LitInt(5));
  TermPtr five_b = interner.Intern(LitInt(5));
  TermPtr six = interner.Intern(LitInt(6));
  EXPECT_EQ(five_a.get(), five_b.get());
  EXPECT_NE(five_a.get(), six.get());
}

TEST(TermInternerTest, ClearStartsAFreshEpochWithoutFalseNegatives) {
  ScopedInterning off(false);
  TermInterner interner;
  TermPtr old_canon = interner.Intern(Compose(Id(), Pi1()));
  interner.Clear();
  EXPECT_EQ(interner.size(), 0u);
  TermPtr new_canon = interner.Intern(Compose(Id(), Pi1()));
  // Different representatives now, but structural equality still holds.
  EXPECT_NE(old_canon.get(), new_canon.get());
  EXPECT_TRUE(Term::Equal(old_canon, new_canon));
  // The old term is no longer canonical here; re-interning maps onto the
  // new representative.
  EXPECT_EQ(interner.IdOf(old_canon), 0u);
  EXPECT_EQ(interner.Intern(old_canon).get(), new_canon.get());
}

TEST(TermInternerTest, HitAndMissCountersTrackDedup) {
  TermInterner interner;
  interner.Intern(Compose(Id(), Pi1()));
  uint64_t misses_after_first = interner.misses();
  interner.Intern(Compose(Id(), Pi1()));
  EXPECT_GT(interner.hits(), 0u);
  EXPECT_EQ(interner.misses(), misses_after_first);
}

// ---------------------------------------------------------------------------
// Fixpoint memoization: identical results and traces, fewer probes.
// ---------------------------------------------------------------------------

std::vector<Rule> Fig4Rules() {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> rules;
  for (const char* id :
       {"11", "6", "5", "1", "13", "7", "ext.and-true-right"}) {
    rules.push_back(FindRule(all, id));
  }
  return rules;
}

TEST(FixpointMemoTest, TraceIdenticalWithAndWithoutMemo) {
  TermPtr query =
      Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P");
  Rewriter memoized(nullptr, RewriterOptions{.memoize_fixpoint = true});
  Rewriter plain(nullptr, RewriterOptions{.memoize_fixpoint = false});

  Trace trace_memo, trace_plain;
  auto with_memo = memoized.Fixpoint(Fig4Rules(), query, &trace_memo);
  auto without = plain.Fixpoint(Fig4Rules(), query, &trace_plain);
  ASSERT_TRUE(with_memo.ok() && without.ok());
  EXPECT_TRUE(Term::Equal(with_memo.value(), without.value()));
  EXPECT_EQ(trace_memo.ToString(), trace_plain.ToString());
  ASSERT_FALSE(trace_memo.steps.empty());
}

TEST(FixpointMemoTest, ExplicitCacheReusedAcrossCallsStillCorrect) {
  Rewriter rewriter;
  FixpointCache cache;
  std::vector<Rule> rules = Fig4Rules();
  TermPtr q1 = Q("iterate(Kp(T), city) o iterate(Kp(T), addr) ! P");
  TermPtr q2 =
      Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P");

  auto r1 = rewriter.Fixpoint(rules, q1, nullptr, 10'000, &cache);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(cache.fingerprint(), RuleSetFingerprint(rules));
  EXPECT_GT(cache.size(), 0u);

  // Second run through the same cache: same answer as a fresh rewriter.
  auto r2 = rewriter.Fixpoint(rules, q2, nullptr, 10'000, &cache);
  auto r2_fresh = Rewriter().Fixpoint(rules, q2, nullptr);
  ASSERT_TRUE(r2.ok() && r2_fresh.ok());
  EXPECT_TRUE(Term::Equal(r2.value(), r2_fresh.value()));

  // Rerunning an already-normalized term is pure cache hits.
  uint64_t hits_before = cache.hits();
  auto r3 = rewriter.Fixpoint(rules, r1.value(), nullptr, 10'000, &cache);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(Term::Equal(r3.value(), r1.value()));
  EXPECT_GT(cache.hits(), hits_before);
}

TEST(FixpointMemoTest, CacheResetsWhenRuleSetChanges) {
  Rewriter rewriter;
  FixpointCache cache;
  std::vector<Rule> rules_a = Fig4Rules();
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> rules_b = {FindRule(all, "1"), FindRule(all, "2")};
  ASSERT_NE(RuleSetFingerprint(rules_a), RuleSetFingerprint(rules_b));

  TermPtr q = Q("id o (id o age) ! P");
  ASSERT_TRUE(rewriter.Fixpoint(rules_a, q, nullptr, 10'000, &cache).ok());
  auto through_cache =
      rewriter.Fixpoint(rules_b, q, nullptr, 10'000, &cache);
  auto fresh = Rewriter().Fixpoint(rules_b, q, nullptr);
  ASSERT_TRUE(through_cache.ok() && fresh.ok());
  EXPECT_TRUE(Term::Equal(through_cache.value(), fresh.value()));
  EXPECT_EQ(cache.fingerprint(), RuleSetFingerprint(rules_b));
}

// ---------------------------------------------------------------------------
// End-to-end determinism: the paper's derivations are byte-identical with
// interning on and off.
// ---------------------------------------------------------------------------

struct DerivationSnapshot {
  std::string fig4_t1;
  std::string fig4_t2;
  std::string fig6;
  std::string garage;
};

DerivationSnapshot SnapshotDerivations() {
  DerivationSnapshot snap;
  Rewriter rewriter;
  {
    Trace trace;
    auto fused = rewriter.Fixpoint(
        Fig4Rules(), Q("iterate(Kp(T), city) o iterate(Kp(T), addr) ! P"),
        &trace);
    KOLA_CHECK_OK(fused.status());
    snap.fig4_t1 = trace.ToString();
  }
  {
    Trace trace;
    auto fused = rewriter.Fixpoint(
        Fig4Rules(),
        Q("iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P"),
        &trace);
    KOLA_CHECK_OK(fused.status());
    snap.fig4_t2 = trace.ToString();
  }
  {
    auto result = ApplyCodeMotion(QueryK4(), rewriter);
    KOLA_CHECK_OK(result.status());
    snap.fig6 = result->trace.ToString();
  }
  {
    auto result = UntangleHiddenJoin(GarageQueryKG1(), rewriter);
    KOLA_CHECK_OK(result.status());
    snap.garage = result->trace.ToString();
  }
  return snap;
}

TEST(InterningDeterminismTest, DerivationsByteIdenticalInterningOnAndOff) {
  DerivationSnapshot off;
  {
    ScopedInterning scope(false);
    off = SnapshotDerivations();
  }
  DerivationSnapshot on;
  {
    ScopedInterning scope(true);
    on = SnapshotDerivations();
  }
  EXPECT_EQ(off.fig4_t1, on.fig4_t1);
  EXPECT_EQ(off.fig4_t2, on.fig4_t2);
  EXPECT_EQ(off.fig6, on.fig6);
  EXPECT_EQ(off.garage, on.garage);
  EXPECT_FALSE(off.garage.empty());
}

TEST(ThreadSafetyTest, ConcurrentInterningOfEqualTermsAgreesOnOnePointer) {
  ScopedInterning off(false);
  TermInterner interner;
  // Every worker interns its own freshly parsed copy of the same queries;
  // all copies of one query must collapse to a single canonical pointer
  // regardless of interleaving.
  const char* queries[] = {
      "iterate(Kp(T), age) ! P",
      "iterate(gt @ (age, Kf(25)), id) ! P",
      "join(eq @ (age x age), (pi1, pi2)) ! [P, P]",
      "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P",
  };
  constexpr int kWorkers = 8;
  constexpr int kRounds = 25;
  std::vector<std::atomic<const Term*>> canon(std::size(queries));
  for (auto& slot : canon) slot.store(nullptr);
  ParallelFor(kWorkers, kWorkers, [&](size_t) {
    for (int round = 0; round < kRounds; ++round) {
      for (size_t q = 0; q < std::size(queries); ++q) {
        TermPtr mine = Q(queries[q]);
        TermPtr canonical = interner.Intern(mine);
        const Term* expected = nullptr;
        if (!canon[q].compare_exchange_strong(expected, canonical.get())) {
          EXPECT_EQ(expected, canonical.get());
        }
        EXPECT_NE(interner.IdOf(canonical), 0u);
      }
    }
  });
  // Exactly one canonical entry per distinct subterm; ids distinct.
  std::set<TermId> ids;
  for (size_t q = 0; q < std::size(queries); ++q) {
    TermPtr again = interner.Intern(Q(queries[q]));
    EXPECT_EQ(again.get(), canon[q].load());
    ids.insert(interner.IdOf(again));
  }
  EXPECT_EQ(ids.size(), std::size(queries));
}

TEST(ThreadSafetyTest, ScopedInterningIsThreadLocal) {
  ScopedInterning off(false);
  ASSERT_FALSE(GlobalInterningEnabled());
  std::atomic<int> on_threads{0};
  std::atomic<int> checks{0};
  ParallelFor(4, 4, [&](size_t i) {
    // Workers on even indices enable construction-time interning; workers
    // on odd indices pin it off. Each scope must only govern its own
    // thread's Term::Make calls -- the slot is per-thread, not
    // process-global, so the concurrent ScopedInterning(true) scopes can
    // never leak into the off workers.
    if (i % 2 == 0) {
      ScopedInterning on(true);
      if (GlobalInterningEnabled()) on_threads.fetch_add(1);
      // Above the small-term floor, so Make itself canonicalizes.
      TermPtr made = Q("iterate(lt @ (age, Kf(30)), age) ! P");
      if (made->interned()) checks.fetch_add(1);
    } else {
      ScopedInterning pinned_off(false);
      TermPtr made = Q("join(eq @ (age x age), (pi1, pi2)) ! [P, P]");
      if (!made->interned() && !GlobalInterningEnabled()) {
        checks.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(on_threads.load(), 2);
  EXPECT_EQ(checks.load(), 4);
  // The entering thread's own slot is untouched by the workers.
  EXPECT_FALSE(GlobalInterningEnabled());
}

TEST(ThreadSafetyTest, ConcurrentEqualUsesTheEpochFastPathSafely) {
  ScopedInterning off(false);
  TermInterner interner;
  TermPtr a = interner.Intern(Q("iterate(Kp(T), age) ! P"));
  TermPtr b = interner.Intern(Q("iterate(Kp(T), name) ! P"));
  // Readers compare interned terms while writers keep tagging new ones:
  // Equal's epoch fast path must stay exact throughout.
  std::atomic<bool> failed{false};
  ParallelFor(8, 8, [&](size_t i) {
    if (i < 4) {
      for (int round = 0; round < 200; ++round) {
        if (Term::Equal(a, b)) failed.store(true);
        if (!Term::Equal(a, a)) failed.store(true);
      }
    } else {
      Rng rng(100 + static_cast<uint64_t>(i));
      for (int round = 0; round < 50; ++round) {
        int64_t v = rng.Uniform(0, 1000);
        interner.Intern(Iterate(ConstPredTrue(), ConstFn(LitInt(v))));
      }
    }
  });
  EXPECT_FALSE(failed.load());
}

TEST(ThreadSafetyTest, ParallelUntanglingProducesIdenticalDerivations) {
  // The full hidden-join pipeline, concurrently, half the workers with
  // construction-time interning on: every derivation must match the serial
  // reference byte for byte.
  Rewriter rewriter(nullptr, RewriterOptions{.memoize_fixpoint = true});
  auto reference = UntangleHiddenJoin(GarageQueryKG1(), rewriter);
  ASSERT_TRUE(reference.ok());
  std::string expected = reference->trace.ToString();
  std::atomic<int> matches{0};
  ParallelFor(6, 6, [&](size_t i) {
    ScopedInterning scope(i % 2 == 0);
    Rewriter local(nullptr, RewriterOptions{.memoize_fixpoint = true});
    auto result = UntangleHiddenJoin(GarageQueryKG1(), local);
    if (result.ok() && result->trace.ToString() == expected) {
      matches.fetch_add(1);
    }
  });
  EXPECT_EQ(matches.load(), 6);
}

TEST(FixpointMemoTest, PooledCachesPreserveResultsAcrossCalls) {
  // reuse_fixpoint_caches keeps one cache per rule-set fingerprint inside
  // the Rewriter; results and traces must match the fresh-cache engine on
  // every call, including repeats that hit the warm cache.
  Rewriter pooled(nullptr, RewriterOptions{.memoize_fixpoint = true,
                                           .reuse_fixpoint_caches = true});
  Rewriter fresh(nullptr, RewriterOptions{.memoize_fixpoint = true});
  for (int round = 0; round < 3; ++round) {
    auto a = UntangleHiddenJoin(GarageQueryKG1(), pooled);
    auto b = UntangleHiddenJoin(GarageQueryKG1(), fresh);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->trace.ToString(), b->trace.ToString());
    EXPECT_TRUE(Term::Equal(a->query, b->query));
  }
}

TEST(InterningDeterminismTest, GarageDerivationUnchangedByMemoization) {
  Rewriter memoized(nullptr, RewriterOptions{.memoize_fixpoint = true});
  Rewriter plain(nullptr, RewriterOptions{.memoize_fixpoint = false});
  auto with_memo = UntangleHiddenJoin(GarageQueryKG1(), memoized);
  auto without = UntangleHiddenJoin(GarageQueryKG1(), plain);
  ASSERT_TRUE(with_memo.ok() && without.ok());
  EXPECT_EQ(with_memo->trace.ToString(), without->trace.ToString());
  EXPECT_TRUE(Term::Equal(with_memo->query, without->query));
}

}  // namespace
}  // namespace kola
