#include <gtest/gtest.h>

#include "aqua/eval.h"
#include "aqua/parser.h"
#include "aqua/transform.h"
#include "eval/evaluator.h"
#include "oql/oql.h"
#include "translate/translate.h"
#include "values/car_world.h"

namespace kola {
namespace {

class OqlTest : public ::testing::Test {
 protected:
  OqlTest() {
    CarWorldOptions options;
    options.num_persons = 12;
    options.num_vehicles = 8;
    options.num_addresses = 6;
    options.seed = 77;
    db_ = BuildCarWorld(options);
  }

  aqua::ExprPtr Lower(const char* text) {
    auto expr = oql::ParseOql(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    return expr.ok() ? std::move(expr).value() : nullptr;
  }

  Value EvalOql(const char* text) {
    aqua::ExprPtr expr = Lower(text);
    aqua::AquaEvaluator evaluator(db_.get());
    auto value = evaluator.EvalQuery(expr);
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? std::move(value).value() : Value::Null();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(OqlTest, SimpleSelectLowersToAppSel) {
  aqua::ExprPtr lowered =
      Lower("select p.name from p in P where p.age > 25");
  aqua::ExprPtr expected = aqua::ParseAqua(
      "app(\\p. p.name)(sel(\\p. p.age > 25)(P))").value();
  EXPECT_TRUE(AlphaEqual(lowered, expected)) << lowered->ToString();
}

TEST_F(OqlTest, SelectWithoutWhere) {
  aqua::ExprPtr lowered = Lower("select p.age from p in P");
  aqua::ExprPtr expected =
      aqua::ParseAqua("app(\\p. p.age)(P)").value();
  EXPECT_TRUE(AlphaEqual(lowered, expected)) << lowered->ToString();
}

TEST_F(OqlTest, MultipleBindingsNestAndFlatten) {
  aqua::ExprPtr lowered = Lower(
      "select [v, p] from v in V, p in P where v in p.cars");
  aqua::ExprPtr expected = aqua::ParseAqua(
      "flatten(app(\\v. app(\\p. [v, p])(sel(\\p. v in p.cars)(P)))(V))")
      .value();
  EXPECT_TRUE(AlphaEqual(lowered, expected)) << lowered->ToString();
}

TEST_F(OqlTest, DependentBinding) {
  aqua::ExprPtr lowered = Lower(
      "select c.name from p in P, c in p.child where c.age > 10");
  aqua::ExprPtr expected = aqua::ParseAqua(
      "flatten(app(\\p. app(\\c. c.name)(sel(\\c. c.age > 10)(p.child)))"
      "(P))").value();
  EXPECT_TRUE(AlphaEqual(lowered, expected)) << lowered->ToString();
}

TEST_F(OqlTest, NestedSubqueryInSelectList) {
  // The paper's A4, as a user would actually write it.
  aqua::ExprPtr lowered = Lower(
      "select [p, (select c from c in p.child where p.age > 25)] "
      "from p in P");
  EXPECT_TRUE(AlphaEqual(lowered, aqua::QueryA4()))
      << lowered->ToString();
}

TEST_F(OqlTest, NestedSubqueryA3Variant) {
  aqua::ExprPtr lowered = Lower(
      "select [p, (select c from c in p.child where c.age > 25)] "
      "from p in P");
  EXPECT_TRUE(AlphaEqual(lowered, aqua::QueryA3()))
      << lowered->ToString();
}

TEST_F(OqlTest, GarageQueryFromOql) {
  // The full OQL -> AQUA -> KOLA pipeline lands on Figure 3's KG1 modulo
  // the sel/app nesting order; it evaluates identically to KG1.
  aqua::ExprPtr lowered = Lower(
      "select [v, flatten((select p.grgs from p in P where v in p.cars))] "
      "from v in V");
  Translator translator;
  auto term = translator.TranslateQuery(lowered);
  ASSERT_TRUE(term.ok()) << term.status();

  aqua::AquaEvaluator aqua_eval(db_.get());
  auto via_aqua = aqua_eval.EvalQuery(aqua::AquaGarageQuery());
  ASSERT_TRUE(via_aqua.ok());
  auto via_kola = EvalQuery(*db_, term.value());
  ASSERT_TRUE(via_kola.ok()) << via_kola.status();
  EXPECT_EQ(via_aqua.value(), via_kola.value());
}

TEST_F(OqlTest, EvaluationSemantics) {
  Value names = EvalOql("select p.name from p in P where p.age > 25");
  for (const Value& n : names.elements()) EXPECT_TRUE(n.is_string());
  Value all = EvalOql("select p from p in P");
  EXPECT_EQ(all, db_->Extent("P").value());
  Value pairs = EvalOql(
      "select [v.make, p.name] from v in V, p in P where v in p.cars");
  for (const Value& pair : pairs.elements()) {
    EXPECT_TRUE(pair.is_pair());
  }
}

TEST_F(OqlTest, WholeOqlPipelineMatchesAquaEvaluation) {
  const char* queries[] = {
      "select p.age from p in P",
      "select p.name from p in P where p.age > 25 and p.age < 70",
      "select c.age from p in P, c in p.child where p.age > c.age",
      "select [p, (select c from c in p.child where c.age > 25)] "
      "from p in P",
      "select a.city from p in P, a in p.grgs",
  };
  Translator translator;
  for (const char* text : queries) {
    aqua::ExprPtr lowered = Lower(text);
    ASSERT_NE(lowered, nullptr);
    auto term = translator.TranslateQuery(lowered);
    ASSERT_TRUE(term.ok()) << term.status() << "\n" << text;
    aqua::AquaEvaluator aqua_eval(db_.get());
    auto expected = aqua_eval.EvalQuery(lowered);
    ASSERT_TRUE(expected.ok()) << expected.status();
    auto actual = EvalQuery(*db_, term.value());
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(expected.value(), actual.value()) << text;
  }
}

TEST_F(OqlTest, ParseErrors) {
  EXPECT_FALSE(oql::ParseOql("select from P").ok());
  EXPECT_FALSE(oql::ParseOql("select p from p").ok());
  EXPECT_FALSE(oql::ParseOql("select p frm p in P").ok());
  EXPECT_FALSE(oql::ParseOql("select p from p in P where").ok());
  EXPECT_FALSE(oql::ParseOql("select [p from p in P").ok());
  EXPECT_FALSE(oql::ParseOql("select p from p in P extra").ok());
}

TEST_F(OqlTest, OverlongIntegerLiteralIsErrorNotAbort) {
  // Overflows int64: the unguarded std::stoll this used to reach would
  // throw std::out_of_range and abort.
  auto overlong = oql::ParseOql(
      "select p from p in P where p.age > 99999999999999999999");
  ASSERT_FALSE(overlong.ok());
  EXPECT_EQ(overlong.status().code(), StatusCode::kInvalidArgument);
  auto in_set = oql::ParseOql(
      "select p from p in P where p.age in {1, 99999999999999999999}");
  EXPECT_FALSE(in_set.ok());
  // The int64 boundary itself still parses.
  EXPECT_TRUE(oql::ParseOql(
      "select p from p in P where p.age > 9223372036854775807").ok());
}

TEST_F(OqlTest, SetLiteralsAndConstants) {
  Value result = EvalOql(
      "select p.name from p in P where p.age in {30, 40, 50}");
  EXPECT_TRUE(result.is_set());
  Value none = EvalOql("select p from p in P where false");
  EXPECT_EQ(none, Value::EmptySet());
}

}  // namespace
}  // namespace kola
