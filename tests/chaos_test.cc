// Deterministic fault injection: the chaos layer itself (parsing, seeded
// draws, scoping) and the system property it exists to check -- injected
// faults may degrade, skip, or fail a single batch entry, but can never
// produce an unsound plan or poison work that did not fault.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "eval/evaluator.h"
#include "optimizer/code_motion.h"
#include "optimizer/hidden_join.h"
#include "optimizer/optimizer.h"
#include "term/intern.h"
#include "term/parser.h"
#include "values/car_world.h"
#include "verify/soundness.h"

namespace kola {
namespace {

// ---------------------------------------------------------------------------
// The injector itself.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, ParseRoundTripsCanonicalSpec) {
  auto injector = FaultInjector::Parse("rule:0.5,intern:1", 7);
  ASSERT_TRUE(injector.ok()) << injector.status();
  EXPECT_DOUBLE_EQ(injector->rate(FaultSite::kRuleApplication), 0.5);
  EXPECT_DOUBLE_EQ(injector->rate(FaultSite::kIntern), 1.0);
  EXPECT_DOUBLE_EQ(injector->rate(FaultSite::kStrategy), 0.0);
  EXPECT_EQ(injector->seed(), 7u);
  EXPECT_EQ(injector->spec(), "rule:0.5,intern:1");
}

TEST(FaultInjectorTest, ParseRejectsUnknownSite) {
  auto injector = FaultInjector::Parse("gremlin:0.5", 1);
  ASSERT_FALSE(injector.ok());
  EXPECT_EQ(injector.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjectorTest, RatesClampAndExtremesAreCertain) {
  FaultInjector injector(3);
  injector.set_rate(FaultSite::kRuleApplication, 2.0);  // clamps to 1
  injector.set_rate(FaultSite::kStrategy, -1.0);        // clamps to 0
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(injector.ShouldFail(FaultSite::kRuleApplication));
    EXPECT_FALSE(injector.ShouldFail(FaultSite::kStrategy));
  }
  EXPECT_EQ(injector.draws(FaultSite::kRuleApplication), 200u);
  EXPECT_EQ(injector.injected(FaultSite::kRuleApplication), 200u);
  EXPECT_EQ(injector.injected(FaultSite::kStrategy), 0u);
}

TEST(FaultInjectorTest, SequentialDrawsReplayForAFixedSeed) {
  auto draw_sequence = [](uint64_t seed) {
    FaultInjector injector(seed);
    injector.set_rate(FaultSite::kRuleApplication, 0.5);
    std::vector<bool> draws;
    for (int i = 0; i < 500; ++i) {
      draws.push_back(injector.ShouldFail(FaultSite::kRuleApplication));
    }
    return draws;
  };
  EXPECT_EQ(draw_sequence(42), draw_sequence(42));
  EXPECT_NE(draw_sequence(42), draw_sequence(43));
}

TEST(FaultInjectorTest, KeyedDrawsAreOrderIndependent) {
  FaultInjector injector(9);
  injector.set_rate(FaultSite::kPoolTask, 0.5);
  std::vector<bool> forward, backward;
  for (uint64_t k = 0; k < 100; ++k) {
    forward.push_back(injector.ShouldFailKeyed(FaultSite::kPoolTask, k));
  }
  for (uint64_t k = 100; k > 0; --k) {
    backward.push_back(
        injector.ShouldFailKeyed(FaultSite::kPoolTask, k - 1));
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(FaultInjectorTest, InjectedFaultIsUnavailableAndNamesTheSite) {
  Status status = FaultInjector::InjectedFault(FaultSite::kStrategy);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("strategy"), std::string::npos);
}

TEST(FaultInjectorTest, ScopedInjectionInstallsAndRestores) {
  EXPECT_EQ(ActiveFaultInjector(), nullptr);
  FaultInjector injector(1);
  {
    ScopedFaultInjection scoped(&injector);
    EXPECT_EQ(ActiveFaultInjector(), &injector);
    EXPECT_TRUE(MaybeInjectFault(FaultSite::kRuleApplication).ok());
  }
  EXPECT_EQ(ActiveFaultInjector(), nullptr);
  EXPECT_TRUE(MaybeInjectFault(FaultSite::kRuleApplication).ok());
}

// ---------------------------------------------------------------------------
// Faults through the optimizer: degrade, never corrupt.
// ---------------------------------------------------------------------------

class ChaosOptimizerTest : public ::testing::Test {
 protected:
  ChaosOptimizerTest() {
    CarWorldOptions options;
    options.num_persons = 16;
    options.num_vehicles = 10;
    options.num_addresses = 8;
    options.seed = 5;
    db_ = BuildCarWorld(options);
    properties_ = PropertyStore::Default();
  }

  Value Eval(const TermPtr& query) {
    auto value = EvalQuery(*db_, query);
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? std::move(value).value() : Value::Null();
  }

  std::unique_ptr<Database> db_;
  PropertyStore properties_;
};

TEST_F(ChaosOptimizerTest, CertainRuleFaultDegradesToTheInput) {
  FaultInjector injector(1);
  injector.set_rate(FaultSite::kRuleApplication, 1.0);
  ScopedFaultInjection scoped(&injector);
  Optimizer optimizer(&properties_, db_.get());
  TermPtr query = GarageQueryKG1();
  auto result = optimizer.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degradation.degraded);
  EXPECT_EQ(result->degradation.code, StatusCode::kUnavailable);
  // The very first fixpoint sweep died, so the floor comes back.
  EXPECT_TRUE(Term::Equal(result->query, query));
}

TEST_F(ChaosOptimizerTest, StrategyFaultDegradesToASoundPrefix) {
  FaultInjector injector(2);
  injector.set_rate(FaultSite::kStrategy, 1.0);
  ScopedFaultInjection scoped(&injector);
  Optimizer optimizer(&properties_, db_.get());
  TermPtr query = GarageQueryKG1();
  auto result = optimizer.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degradation.degraded);
  EXPECT_EQ(result->degradation.code, StatusCode::kUnavailable);
  // Phases before the first strategy boundary may have fired; whatever
  // prefix survived must still be semantics-preserving.
  EXPECT_EQ(Eval(result->query), Eval(query));
}

TEST_F(ChaosOptimizerTest, InternFaultsAreAbsorbedNotDegraded) {
  // An interner allocation failure degrades to the un-interned term --
  // canonicalization is a performance feature, never a correctness one --
  // so the pipeline neither errors nor reports degradation.
  FaultInjector injector(3);
  injector.set_rate(FaultSite::kIntern, 1.0);
  ScopedFaultInjection scoped(&injector);
  ScopedInterning interning(true);
  TermPtr query = GlobalTermInterner().Intern(GarageQueryKG1());
  Optimizer optimizer(&properties_, db_.get());
  auto result = optimizer.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->degradation.degraded);
  EXPECT_EQ(Eval(result->query), Eval(query));
}

TEST_F(ChaosOptimizerTest, DegradedPlansStaySoundAcrossRates) {
  // Sweep a band of rule/strategy fault rates under fixed seeds: every
  // outcome must be OK, and every returned plan must evaluate to the
  // input's result -- the chaos property, in miniature.
  TermPtr query = GarageQueryKG1();
  Value expected = Eval(query);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FaultInjector injector(seed);
    injector.set_rate(FaultSite::kRuleApplication, 0.05);
    injector.set_rate(FaultSite::kStrategy, 0.05);
    injector.set_rate(FaultSite::kIntern, 0.25);
    ScopedFaultInjection scoped(&injector);
    Optimizer optimizer(&properties_, db_.get());
    auto result = optimizer.Optimize(query);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": " << result.status();
    EXPECT_EQ(Eval(result->query), expected) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Batch isolation: a poisoned entry never takes the batch down with it.
// ---------------------------------------------------------------------------

TEST_F(ChaosOptimizerTest, PoisonedBatchEntriesAreIsolatedAndDeterministic) {
  std::vector<TermPtr> batch;
  for (int round = 0; round < 4; ++round) {
    batch.push_back(GarageQueryKG1());
    batch.push_back(QueryK4());
    batch.push_back(QueryK3());
  }
  Optimizer optimizer(&properties_, db_.get());

  // Find a seed whose keyed pool-fault schedule poisons some entries and
  // spares others (the draw is a pure function of (seed, site, index), so
  // this scan is deterministic).
  FaultInjector injector(0);
  injector.set_rate(FaultSite::kPoolTask, 0.3);
  uint64_t chosen = 0;
  for (uint64_t seed = 1; seed < 64 && chosen == 0; ++seed) {
    FaultInjector candidate(seed);
    candidate.set_rate(FaultSite::kPoolTask, 0.3);
    int poisoned = 0;
    for (uint64_t i = 0; i < batch.size(); ++i) {
      if (candidate.ShouldFailKeyed(FaultSite::kPoolTask, i)) ++poisoned;
    }
    if (poisoned > 0 && poisoned < static_cast<int>(batch.size())) {
      chosen = seed;
      injector = candidate;
    }
  }
  ASSERT_NE(chosen, 0u) << "no seed in [1,64) split the batch";

  ScopedFaultInjection scoped(&injector);
  std::vector<std::string> digests;
  for (int jobs : {1, 3}) {
    auto results = optimizer.OptimizeAll(batch, jobs);
    ASSERT_EQ(results.size(), batch.size()) << "jobs " << jobs;
    std::string digest;
    int poisoned = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        // Survivors are untouched by their neighbors' faults.
        EXPECT_EQ(Eval(results[i].result->query), Eval(batch[i]))
            << "jobs " << jobs << " entry " << i;
        digest += "ok:" + results[i].result->query->ToString() + "\n";
      } else {
        EXPECT_EQ(results[i].status.code(), StatusCode::kUnavailable)
            << "jobs " << jobs << " entry " << i;
        digest += "fail:" + results[i].status.ToString() + "\n";
        ++poisoned;
      }
    }
    EXPECT_GT(poisoned, 0) << "jobs " << jobs;
    EXPECT_LT(poisoned, static_cast<int>(batch.size())) << "jobs " << jobs;
    digests.push_back(std::move(digest));
  }
  // The ok/failed pattern and every surviving plan are identical at every
  // jobs level: the fault schedule is keyed, not scheduled.
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(ChaosPoolTest, WorkerDeathSurfacesAsPoolErrorNotTermination) {
  FaultInjector injector(11);
  injector.set_rate(FaultSite::kPoolTask, 1.0);
  FaultInjector* previous = SetProcessFaultInjector(&injector);
  std::atomic<int> ran{0};
  Status status;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    status = pool.Wait();
  }
  SetProcessFaultInjector(previous);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ran.load(), 0);  // every pickup died before running the task
}

// ---------------------------------------------------------------------------
// The chaos sweep: never unsound, bit-identical across jobs.
// ---------------------------------------------------------------------------

SoundnessOptions ChaosSweepOptions(int jobs) {
  SoundnessOptions options;
  options.trials = 24;
  options.seed = 99;
  options.max_eval_steps = 500'000;
  options.fault_spec = "rule:0.02,strategy:0.02,intern:0.1,pool:0.02";
  options.fault_seed = 7;
  options.jobs = jobs;
  return options;
}

TEST(ChaosSweepTest, MiniSweepIsCleanDegradedAndJobsInvariant) {
  auto serial = SoundnessHarness(ChaosSweepOptions(1)).Run();
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_TRUE(serial->clean()) << serial->Summary();
  // The injected faults actually bit: some cells degraded, and still not
  // one produced an unsound verdict.
  EXPECT_GT(serial->degraded, 0);
  auto parallel = SoundnessHarness(ChaosSweepOptions(3)).Run();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(serial->Summary(), parallel->Summary());
  // And the run replays: same options, same report.
  auto again = SoundnessHarness(ChaosSweepOptions(1)).Run();
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(serial->Summary(), again->Summary());
}

TEST(ChaosSweepTest, MalformedFaultSpecIsSurfacedUpFront) {
  SoundnessOptions options = ChaosSweepOptions(1);
  options.fault_spec = "bogus:1";
  auto report = SoundnessHarness(options).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ChaosSweepTest, ReplayCommandRoundTripsChaosFlags) {
  Divergence divergence;
  divergence.query = ParseQuery("iterate(Kp(T), id) ! P").value();
  divergence.original_query = divergence.query;
  divergence.world_seed = 5;
  divergence.world_scale = 2;
  divergence.deadline_ms = 250;
  divergence.memory_budget_bytes = 65536;
  divergence.retries = 2;
  divergence.fault_spec = "rule:0.1";
  divergence.fault_stream = 42;
  std::string cmd = divergence.ReplayCommand();
  EXPECT_NE(cmd.find("--deadline-ms 250"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--memory-budget 65536"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--retries 2"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--faults 'rule:0.1'"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--fault-seed 42"), std::string::npos) << cmd;

  // Budget-free divergences stay budget-free on the command line.
  divergence.memory_budget_bytes = 0;
  divergence.retries = 0;
  cmd = divergence.ReplayCommand();
  EXPECT_EQ(cmd.find("--memory-budget"), std::string::npos) << cmd;
  EXPECT_EQ(cmd.find("--retries"), std::string::npos) << cmd;
}

}  // namespace
}  // namespace kola
