// Randomized property tests over the whole front end:
//  * printer/parser round trip on thousands of generated well-typed terms,
//  * generated well-typed functions never produce runtime type errors,
//  * evaluation is deterministic,
//  * the structural type inferencer accepts everything the generator
//    emits, at the type it was generated for.

#include <gtest/gtest.h>

#include <algorithm>

#include "aqua/parser.h"
#include "common/random.h"
#include "eval/evaluator.h"
#include "oql/oql.h"
#include "translate/translate.h"
#include "rewrite/engine.h"
#include "rewrite/generate.h"
#include "rewrite/match.h"
#include "rewrite/rule_index.h"
#include "rewrite/types.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

class FuzzTest : public ::testing::TestWithParam<int> {
 protected:
  FuzzTest()
      : schema_(SchemaTypes::CarWorld()),
        db_(BuildCarWorld(CarWorldOptions{})),
        rng_(static_cast<uint64_t>(GetParam()) * 7919 + 17),
        gen_(&schema_, nullptr, &rng_) {}

  SchemaTypes schema_;
  std::unique_ptr<Database> db_;
  Rng rng_;
  TermGenerator gen_;
};

TEST_P(FuzzTest, PrintParseRoundTripFunctions) {
  for (int i = 0; i < 200; ++i) {
    TypePtr from = gen_.RandomType(2);
    TypePtr to = gen_.RandomType(2);
    auto fn = gen_.RandomFn(from, to, 3);
    ASSERT_TRUE(fn.ok()) << fn.status();
    std::string printed = fn.value()->ToString();
    auto reparsed = ParseTerm(printed, Sort::kFunction);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << printed;
    EXPECT_TRUE(Term::Equal(fn.value(), reparsed.value())) << printed;
  }
}

TEST_P(FuzzTest, PrintParseRoundTripPredicates) {
  for (int i = 0; i < 200; ++i) {
    TypePtr on = gen_.RandomType(2);
    auto pred = gen_.RandomPred(on, 3);
    ASSERT_TRUE(pred.ok()) << pred.status();
    std::string printed = pred.value()->ToString();
    auto reparsed = ParseTerm(printed, Sort::kPredicate);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << printed;
    EXPECT_TRUE(Term::Equal(pred.value(), reparsed.value())) << printed;
  }
}

TEST_P(FuzzTest, WellTypedFunctionsNeverTypeError) {
  Evaluator evaluator(db_.get(), EvalOptions{.max_steps = 500'000});
  int evaluated = 0;
  for (int i = 0; i < 150; ++i) {
    TypePtr from = gen_.RandomType(2);
    TypePtr to = gen_.RandomType(2);
    auto fn = gen_.RandomFn(from, to, 3);
    ASSERT_TRUE(fn.ok());
    auto arg = gen_.RandomValue(from);
    ASSERT_TRUE(arg.ok());
    auto result = evaluator.Apply(fn.value(), arg.value());
    // The generator promises well-typedness: the only acceptable failure
    // is the step budget.
    if (result.ok()) {
      ++evaluated;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
          << fn.value()->ToString() << " ! " << arg.value().ToString()
          << " -> " << result.status();
    }
  }
  EXPECT_GT(evaluated, 100);
}

TEST_P(FuzzTest, EvaluationIsDeterministic) {
  for (int i = 0; i < 60; ++i) {
    TypePtr from = gen_.RandomType(2);
    TypePtr to = gen_.RandomType(2);
    auto fn = gen_.RandomFn(from, to, 3);
    auto arg = gen_.RandomValue(from);
    ASSERT_TRUE(fn.ok() && arg.ok());
    Evaluator e1(db_.get());
    Evaluator e2(db_.get());
    auto r1 = e1.Apply(fn.value(), arg.value());
    auto r2 = e2.Apply(fn.value(), arg.value());
    ASSERT_EQ(r1.ok(), r2.ok());
    if (r1.ok()) {
      EXPECT_EQ(r1.value(), r2.value());
    }
  }
}

TEST_P(FuzzTest, GeneratedTermsTypeCheckAtGeneratedType) {
  for (int i = 0; i < 100; ++i) {
    TypePtr from = gen_.RandomType(2);
    TypePtr to = gen_.RandomType(2);
    auto fn = gen_.RandomFn(from, to, 2);
    ASSERT_TRUE(fn.ok());
    TypeInferencer inferencer(&schema_);
    auto inferred = inferencer.Infer(fn.value());
    ASSERT_TRUE(inferred.ok())
        << inferred.status() << "\n" << fn.value()->ToString();
    // The inferred (possibly polymorphic) type must unify with the
    // generated monomorphic signature.
    EXPECT_TRUE(inferencer
                    .UnifyTermTypes(inferred.value(),
                                    TermType{Sort::kFunction, from, to})
                    .ok())
        << fn.value()->ToString() << " : " << inferred->from->ToString()
        << " -> " << inferred->to->ToString() << " vs "
        << from->ToString() << " -> " << to->ToString();
  }
}

TEST_P(FuzzTest, FastPathAgreesWithNaiveOnRandomJoins) {
  // Generate random eq/in-keyed joins and check hash vs nested-loop.
  for (int i = 0; i < 60; ++i) {
    TypePtr a = gen_.RandomType(1);
    TypePtr key = gen_.RandomType(1);
    auto f = gen_.RandomFn(a, key, 2);
    auto g = gen_.RandomFn(a, rng_.Chance(0.5) ? key : Type::Set(key), 2);
    ASSERT_TRUE(f.ok() && g.ok());
    // Build join(op @ (f x g), (pi1, pi2)); op follows g's result type.
    TypeInferencer inferencer(&schema_);
    auto g_type = inferencer.Infer(g.value());
    ASSERT_TRUE(g_type.ok());
    bool is_in = inferencer.Resolve(g_type->to)->tag() == TypeTag::kSet;
    TermPtr pred = Oplus(is_in ? InP() : EqP(),
                         Product(f.value(), g.value()));
    TermPtr join = Join(pred, PairFn(Pi1(), Pi2()));
    auto lhs = gen_.RandomValue(Type::Set(a));
    auto rhs = gen_.RandomValue(Type::Set(a));
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    Value input = Value::MakePair(lhs.value(), rhs.value());

    Evaluator fast(db_.get(), EvalOptions{.physical_fastpaths = true});
    Evaluator naive(db_.get(), EvalOptions{.physical_fastpaths = false});
    auto r_fast = fast.Apply(join, input);
    auto r_naive = naive.Apply(join, input);
    ASSERT_EQ(r_fast.ok(), r_naive.ok()) << join->ToString();
    if (r_fast.ok()) {
      EXPECT_EQ(r_fast.value(), r_naive.value()) << join->ToString();
    }
  }
}

TEST_P(FuzzTest, MatcherNeverAbortsOnCatalogPatternsAndRoundTrips) {
  // Every catalog lhs against random generated terms: the matcher must
  // answer true/false (never abort, whatever shape arrives), and a
  // successful match must substitute back to the matched term.
  std::vector<Rule> rules = AllCatalogRules();
  int matched = 0;
  for (int i = 0; i < 40; ++i) {
    auto fn = gen_.RandomFn(gen_.RandomType(2), gen_.RandomType(2), 3);
    ASSERT_TRUE(fn.ok()) << fn.status();
    for (const Rule& rule : rules) {
      Bindings bindings;
      if (!MatchTerm(rule.lhs, fn.value(), &bindings)) continue;
      ++matched;
      auto rebuilt = Substitute(rule.lhs, bindings);
      ASSERT_TRUE(rebuilt.ok()) << rule.id << " on " << fn.value();
      EXPECT_TRUE(Term::Equal(rebuilt.value(), fn.value()))
          << rule.id << " rebuilt " << rebuilt.value() << " from "
          << fn.value() << " with " << bindings.ToString();
    }
  }
  EXPECT_GT(matched, 0);
}

TEST_P(FuzzTest, PairPatternsOnRandomLiteralsNeverAbort) {
  // Pair patterns against folded literal values of arbitrary shapes: every
  // probe must resolve to a clean boolean, including deep shape mismatches.
  const TermPtr patterns[] = {
      ParseTerm("[?x, ?y]", Sort::kObject).value(),
      ParseTerm("[?x, [?y, ?z]]", Sort::kObject).value(),
      ParseTerm("[[?x, ?y], ?z]", Sort::kObject).value(),
      ParseTerm("[1, ?y]", Sort::kObject).value(),
  };
  for (int i = 0; i < 120; ++i) {
    auto value = gen_.RandomValue(gen_.RandomType(2));
    ASSERT_TRUE(value.ok());
    TermPtr term = Lit(value.value());
    for (const TermPtr& pattern : patterns) {
      Bindings bindings;
      bool ok = MatchTerm(pattern, term, &bindings);
      if (!ok) continue;
      // Whatever bound, it is a real subvalue wrapped as a literal.
      for (const auto& [name, bound] : bindings.Sorted()) {
        ASSERT_NE(bound, nullptr) << '?' << name;
        EXPECT_EQ(bound->kind(), TermKind::kLiteral) << '?' << name;
      }
    }
  }
}

/// A random "catalog": a shuffled subset of the real catalog rules, so the
/// pool exercises arbitrary rule orders, bucket collisions and wildcard
/// placements without inventing (possibly ill-formed) synthetic rules.
std::vector<Rule> RandomCatalog(const std::vector<Rule>& all, Rng* rng) {
  std::vector<Rule> rules;
  const size_t count = rng->Index(all.size() - 2) + 2;  // [2, all.size()-1]
  for (size_t i = 0; i < count; ++i) rules.push_back(all[rng->Index(all.size())]);
  // Fisher-Yates with the deterministic Rng (std::shuffle's draws are
  // implementation-defined).
  for (size_t i = rules.size() - 1; i > 0; --i) {
    std::swap(rules[i], rules[rng->Index(i + 1)]);
  }
  return rules;
}

TEST_P(FuzzTest, IndexCandidatesNeverMissAMatchOnRandomCatalogs) {
  // The differential core of the rule index: for random catalogs and random
  // terms, CandidatesAt must be an ascending superset of the rules
  // MatchTerm accepts at every subterm.
  std::vector<Rule> all = AllCatalogRules();
  for (int round = 0; round < 12; ++round) {
    std::vector<Rule> rules = RandomCatalog(all, &rng_);
    auto index = RuleIndex::Build(rules, RuleSetFingerprint(rules));
    ASSERT_NE(index, nullptr);
    for (int t = 0; t < 6; ++t) {
      auto fn = gen_.RandomFn(gen_.RandomType(2), gen_.RandomType(2), 3);
      ASSERT_TRUE(fn.ok()) << fn.status();
      // Walk every subterm iteratively (generated terms are shallow, but
      // stay stack-safe anyway).
      std::vector<TermPtr> stack = {fn.value()};
      std::vector<uint32_t> candidates;
      while (!stack.empty()) {
        TermPtr node = stack.back();
        stack.pop_back();
        for (const TermPtr& child : node->children()) stack.push_back(child);
        index->CandidatesAt(*node, &candidates);
        ASSERT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
        for (uint32_t r = 0; r < rules.size(); ++r) {
          Bindings bindings;
          if (!MatchTerm(rules[r].lhs, node, &bindings)) continue;
          EXPECT_TRUE(
              std::binary_search(candidates.begin(), candidates.end(), r))
              << "rule " << rules[r].id << " (#" << r << ") missing at "
              << node->ToString();
        }
      }
    }
  }
}

TEST_P(FuzzTest, IndexedAndLinearScansAgreeOnRandomCatalogs) {
  // Full-pipeline differential: ApplyAnyOnce firing (rule, path, result)
  // and bounded Fixpoint traces must be byte-identical with the index on
  // and off, for random catalogs in random orders against random terms.
  // Random subsets may contain a rule and its reverse, so Fixpoint can
  // legitimately exhaust its step budget -- then BOTH scans must exhaust,
  // with identical prefixes.
  std::vector<Rule> all = AllCatalogRules();
  Rewriter indexed;
  RewriterOptions linear_options;
  linear_options.use_rule_index = false;
  Rewriter linear(nullptr, linear_options);
  int fired = 0;
  for (int round = 0; round < 15; ++round) {
    std::vector<Rule> rules = RandomCatalog(all, &rng_);
    for (int t = 0; t < 4; ++t) {
      auto fn = gen_.RandomFn(gen_.RandomType(2), gen_.RandomType(2), 3);
      ASSERT_TRUE(fn.ok()) << fn.status();

      RewriteStep step_i, step_l;
      auto once_i = indexed.ApplyAnyOnce(rules, fn.value(), &step_i);
      auto once_l = linear.ApplyAnyOnce(rules, fn.value(), &step_l);
      ASSERT_EQ(once_i.has_value(), once_l.has_value())
          << fn.value()->ToString();
      if (once_i.has_value()) {
        ++fired;
        EXPECT_EQ(step_i.rule_id, step_l.rule_id) << fn.value()->ToString();
        EXPECT_EQ(step_i.path, step_l.path) << fn.value()->ToString();
        EXPECT_TRUE(Term::Equal(*once_i, *once_l)) << fn.value()->ToString();
      }

      Trace trace_i, trace_l;
      auto fix_i = indexed.Fixpoint(rules, fn.value(), &trace_i, 60);
      auto fix_l = linear.Fixpoint(rules, fn.value(), &trace_l, 60);
      ASSERT_EQ(fix_i.ok(), fix_l.ok()) << fn.value()->ToString();
      EXPECT_EQ(trace_i.ToString(), trace_l.ToString())
          << fn.value()->ToString();
      if (fix_i.ok()) {
        EXPECT_TRUE(Term::Equal(fix_i.value(), fix_l.value()))
            << fn.value()->ToString();
      }
    }
  }
  EXPECT_GT(fired, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Adversarially deep terms. Printing, structural equality, and destruction
// are iterative, so a 100k-deep spine must work; the parser is recursive
// with an explicit depth guard, so re-parsing the printed form must fail
// with RESOURCE_EXHAUSTED -- never a native stack overflow.
// ---------------------------------------------------------------------------

constexpr int kDeepChain = 100'000;

TermPtr DeepComposeChain(int depth) {
  TermPtr term = Id();
  for (int i = 0; i < depth; ++i) term = Compose(Id(), term);
  return term;
}

TEST(DeepTermTest, DeepChainPrintsComparesAndDestructs) {
  TermPtr a = DeepComposeChain(kDeepChain);
  {
    // A structurally equal but pointer-distinct copy forces the full
    // iterative walk in Equal (the hash fast path cannot prove equality).
    TermPtr b = DeepComposeChain(kDeepChain);
    EXPECT_TRUE(Term::Equal(a, b));
    EXPECT_FALSE(Term::Equal(a, DeepComposeChain(kDeepChain - 1)));
  }  // iterative teardown of b (and of the shorter chain) happens here
  std::string text = a->ToString();
  // "id o id o ... o id": the right-associative chain prints unparenthesized.
  EXPECT_GT(text.size(), static_cast<size_t>(kDeepChain));
  EXPECT_EQ(text.substr(0, 10), "id o id o ");
  EXPECT_EQ(a->node_count(), static_cast<size_t>(2 * kDeepChain + 1));
}

TEST(DeepTermTest, ParserRejectsPathologicalNestingWithStatus) {
  std::string text = DeepComposeChain(kDeepChain)->ToString();
  auto parsed = ParseTerm(text, Sort::kFunction);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(parsed.status().message().find("nesting"), std::string::npos);
}

TEST(DeepTermTest, ParserRejectsDeepParenthesizedNesting) {
  // Explicit parentheses drive a different recursion path than the
  // operator chain; both must hit the same guard.
  std::string text;
  for (int i = 0; i < 50'000; ++i) text += "(";
  text += "id";
  for (int i = 0; i < 50'000; ++i) text += ")";
  auto parsed = ParseTerm(text, Sort::kFunction);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(NumericLiteralFuzzTest, RandomDigitStringsNeverAbortTheParser) {
  // Sweep digit strings across the int64 overflow boundary (18..25 digits)
  // and beyond, in every literal position the grammar has. Before the
  // ParseInt64 guards these reached std::stoll, and any string past 19
  // digits aborted the process with an uncaught std::out_of_range; now
  // every outcome must be a Status.
  Rng rng(2026);
  for (int trial = 0; trial < 400; ++trial) {
    const size_t digits = 1 + rng.Next() % 30;
    std::string number;
    if (rng.Next() % 4 == 0) number += "-";
    for (size_t d = 0; d < digits; ++d) {
      number += static_cast<char>('0' + rng.Next() % 10);
    }
    std::string text;
    switch (rng.Next() % 4) {
      case 0: text = number; break;
      case 1: text = "Kf(" + number + ")"; break;
      case 2: text = "{" + number + ", 1}"; break;
      default: text = "obj<" + number + ">#" + number; break;
    }
    Sort sort = text[0] == 'K' ? Sort::kFunction : Sort::kObject;
    auto parsed = ParseTerm(text, sort);  // must return, never throw
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << text;
    }
  }
}

TEST(DeepTermTest, ModeratelyDeepTermsStillParse) {
  // The guard must not reject legitimate depth: well under the cap, the
  // round trip still holds.
  TermPtr term = DeepComposeChain(200);
  auto parsed = ParseTerm(term->ToString(), Sort::kFunction);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(Term::Equal(term, parsed.value()));
}

// ---------------------------------------------------------------------------
// Adversarially deep front-end input. The OQL and AQUA recursive-descent
// parsers carry the same nesting guard as the KOLA term parser, and the
// AQUA->KOLA translator guards its own recursion: a 100k-deep spine off
// the wire must come back as RESOURCE_EXHAUSTED, never as a native stack
// overflow. These parsers feed kolad's `Q` line, so this is the daemon's
// crash path.
// ---------------------------------------------------------------------------

void ExpectFrontEndExhausted(const Status& status) {
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted) << status;
  EXPECT_NE(status.message().find("nesting"), std::string::npos) << status;
}

TEST(DeepFrontEndTest, AquaParserRejectsDeepParens) {
  std::string text(50'000, '(');
  text += "1";
  text += std::string(50'000, ')');
  auto parsed = aqua::ParseAqua(text);
  ASSERT_FALSE(parsed.ok());
  ExpectFrontEndExhausted(parsed.status());
}

TEST(DeepFrontEndTest, AquaParserRejectsDeepNotChain) {
  std::string text;
  for (int i = 0; i < 100'000; ++i) text += "not ";
  text += "true";
  auto parsed = aqua::ParseAqua(text);
  ASSERT_FALSE(parsed.ok());
  ExpectFrontEndExhausted(parsed.status());
}

TEST(DeepFrontEndTest, AquaParserRejectsDeepDotPath) {
  // The `.`-path loop is iterative, but it still builds one Expr level per
  // dot -- unguarded, a 100k-long path would recurse that deep in every
  // later walker (and in teardown).
  std::string text = "C";
  for (int i = 0; i < 100'000; ++i) text += ".a";
  auto parsed = aqua::ParseAqua(text);
  ASSERT_FALSE(parsed.ok());
  ExpectFrontEndExhausted(parsed.status());
}

TEST(DeepFrontEndTest, AquaParserRejectsDeepAndChain) {
  std::string text = "true";
  for (int i = 0; i < 100'000; ++i) text += " and true";
  auto parsed = aqua::ParseAqua(text);
  ASSERT_FALSE(parsed.ok());
  ExpectFrontEndExhausted(parsed.status());
}

TEST(DeepFrontEndTest, OqlParserRejectsDeepParensInPredicate) {
  std::string text = "select x from x in C where ";
  text += std::string(50'000, '(');
  text += "true";
  text += std::string(50'000, ')');
  auto parsed = oql::ParseOql(text);
  ASSERT_FALSE(parsed.ok());
  ExpectFrontEndExhausted(parsed.status());
}

TEST(DeepFrontEndTest, OqlParserRejectsDeepNestedSelects) {
  // Nested sub-selects drive the ParseSelect <-> ParseExpr recursion.
  std::string text;
  constexpr int kDepth = 20'000;
  for (int i = 0; i < kDepth; ++i) {
    text += "select x from x in (";
  }
  text += "C";
  text += std::string(kDepth, ')');
  auto parsed = oql::ParseOql(text);
  ASSERT_FALSE(parsed.ok());
  ExpectFrontEndExhausted(parsed.status());
}

TEST(DeepFrontEndTest, OqlParserRejectsDeepNotChain) {
  std::string text = "select x from x in C where ";
  for (int i = 0; i < 100'000; ++i) text += "not ";
  text += "true";
  auto parsed = oql::ParseOql(text);
  ASSERT_FALSE(parsed.ok());
  ExpectFrontEndExhausted(parsed.status());
}

TEST(DeepFrontEndTest, TranslatorRejectsDeepProgrammaticExpr) {
  // Expressions built in code bypass the parser guards; the translator's
  // own guard must stop the mutual recursion. Kept to a few thousand
  // levels so shared_ptr teardown of the chain itself stays shallow enough.
  aqua::ExprPtr deep = aqua::Expr::Const(Value::Bool(true));
  for (int i = 0; i < 5'000; ++i) deep = aqua::Expr::Not(deep);
  Translator translator;
  auto lowered = translator.TranslatePred(deep, {"x"});
  ASSERT_FALSE(lowered.ok());
  ExpectFrontEndExhausted(lowered.status());
}

TEST(DeepFrontEndTest, ModeratelyNestedOqlAndAquaStillWork) {
  // The guards must not reject legitimate nesting: a 200-deep paren tower
  // parses and translates end to end.
  std::string aqua_text = std::string(200, '(') + "1" + std::string(200, ')');
  auto aqua_expr = aqua::ParseAqua(aqua_text);
  ASSERT_TRUE(aqua_expr.ok()) << aqua_expr.status();

  std::string oql_text = "select x from x in C where ";
  oql_text += std::string(200, '(');
  oql_text += "x.age > 25";
  oql_text += std::string(200, ')');
  auto oql_expr = oql::ParseOql(oql_text);
  ASSERT_TRUE(oql_expr.ok()) << oql_expr.status();
  Translator translator;
  auto lowered = translator.TranslateQuery(oql_expr.value());
  ASSERT_TRUE(lowered.ok()) << lowered.status();
}

}  // namespace
}  // namespace kola
