#include <gtest/gtest.h>

#include "rewrite/match.h"
#include "term/parser.h"
#include "term/term.h"

namespace kola {
namespace {

TermPtr P(const char* text, Sort sort = Sort::kFunction) {
  auto t = ParseTerm(text, sort);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

TEST(BindingsTest, BindAndLookup) {
  Bindings b;
  EXPECT_TRUE(b.Bind("f", Id()));
  ASSERT_NE(b.Lookup("f"), nullptr);
  EXPECT_TRUE(Term::Equal(*b.Lookup("f"), Id()));
  EXPECT_EQ(b.Lookup("g"), nullptr);
}

TEST(BindingsTest, RebindSameTermSucceeds) {
  Bindings b;
  EXPECT_TRUE(b.Bind("f", Compose(Pi1(), Pi2())));
  EXPECT_TRUE(b.Bind("f", Compose(Pi1(), Pi2())));
  EXPECT_EQ(b.size(), 1u);
}

TEST(BindingsTest, RebindDifferentTermFails) {
  Bindings b;
  EXPECT_TRUE(b.Bind("f", Pi1()));
  EXPECT_FALSE(b.Bind("f", Pi2()));
}

TEST(MatchTest, MetaVarMatchesAnySubterm) {
  Bindings b;
  EXPECT_TRUE(MatchTerm(P("?f"), P("city o addr"), &b));
  EXPECT_TRUE(Term::Equal(*b.Lookup("f"), P("city o addr")));
}

TEST(MatchTest, SortGuardsMetaVarMatching) {
  Bindings b;
  // A function metavariable must not match a predicate.
  EXPECT_FALSE(MatchTerm(P("?f"), P("gt", Sort::kPredicate), &b));
  // An object metavariable accepts a bool (subsort).
  Bindings b2;
  EXPECT_TRUE(MatchTerm(P("?k", Sort::kObject),
                        P("gt ? [1, 2]", Sort::kObject), &b2));
}

TEST(MatchTest, StructuralMatch) {
  Bindings b;
  EXPECT_TRUE(MatchTerm(P("?f o id"), P("age o id"), &b));
  EXPECT_TRUE(Term::Equal(*b.Lookup("f"), P("age")));
  Bindings b2;
  EXPECT_FALSE(MatchTerm(P("?f o id"), P("id o age"), &b2));
}

TEST(MatchTest, NonLinearPatternRequiresEqualSubterms) {
  TermPtr pattern = P("?f o ?f");
  Bindings b;
  EXPECT_TRUE(MatchTerm(pattern, P("age o age"), &b));
  Bindings b2;
  EXPECT_FALSE(MatchTerm(pattern, P("age o name"), &b2));
}

TEST(MatchTest, LiteralsMatchByValue) {
  Bindings b;
  EXPECT_TRUE(MatchTerm(P("Kf(25)"), P("Kf(25)"), &b));
  Bindings b2;
  EXPECT_FALSE(MatchTerm(P("Kf(25)"), P("Kf(26)"), &b2));
}

TEST(MatchTest, PrimitivesMatchByName) {
  Bindings b;
  EXPECT_FALSE(MatchTerm(P("pi1"), P("pi2"), &b));
  EXPECT_TRUE(MatchTerm(P("pi1"), P("pi1"), &b));
}

TEST(MatchTest, BoolConstMatching) {
  Bindings b;
  EXPECT_TRUE(MatchTerm(P("Kp(T)", Sort::kPredicate),
                        P("Kp(T)", Sort::kPredicate), &b));
  Bindings b2;
  EXPECT_FALSE(MatchTerm(P("Kp(T)", Sort::kPredicate),
                         P("Kp(F)", Sort::kPredicate), &b2));
  Bindings b3;
  EXPECT_TRUE(MatchTerm(P("Kp(?b)", Sort::kPredicate),
                        P("Kp(F)", Sort::kPredicate), &b3));
}

TEST(BindingsTest, ToStringIsSortedByNameRegardlessOfInsertionOrder) {
  // Regression: diagnostics must be byte-stable across runs and container
  // implementations, so ToString renders name-sorted.
  Bindings forward;
  EXPECT_TRUE(forward.Bind("zz", Pi1()));
  EXPECT_TRUE(forward.Bind("mid", Id()));
  EXPECT_TRUE(forward.Bind("aa", Pi2()));
  Bindings reverse;
  EXPECT_TRUE(reverse.Bind("aa", Pi2()));
  EXPECT_TRUE(reverse.Bind("mid", Id()));
  EXPECT_TRUE(reverse.Bind("zz", Pi1()));
  EXPECT_EQ(forward.ToString(), reverse.ToString());
  EXPECT_EQ(forward.ToString(), "{?aa -> pi2, ?mid -> id, ?zz -> pi1}");

  auto sorted = forward.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "aa");
  EXPECT_EQ(sorted[1].first, "mid");
  EXPECT_EQ(sorted[2].first, "zz");
}

TEST(MatchTest, FailedMatchRestoresPreSeededBindings) {
  // Regression: MatchTerm used to leave `bindings` in an unspecified state
  // on failure -- partial bindings from the prefix that DID match leaked
  // out and poisoned the caller's next probe. The contract now guarantees
  // failure restores the entry state exactly.
  Bindings b;
  ASSERT_TRUE(b.Bind("g", P("addr")));
  // ?f binds to age, then ?g is already bound to addr and conflicts: the
  // match fails LATE, after ?f was added -- ?f must be gone afterwards,
  // and the pre-seeded ?g untouched.
  EXPECT_FALSE(MatchTerm(P("?f o ?g"), P("age o name"), &b));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.Lookup("f"), nullptr);
  ASSERT_NE(b.Lookup("g"), nullptr);
  EXPECT_TRUE(Term::Equal(*b.Lookup("g"), P("addr")));
  // The restored set is genuinely reusable: a compatible term now matches.
  EXPECT_TRUE(MatchTerm(P("?f o ?g"), P("age o addr"), &b));
  EXPECT_TRUE(Term::Equal(*b.Lookup("f"), P("age")));
}

TEST(MatchTest, NonLinearPatternFailingLateUndoesItsOwnBindings) {
  // ?f o ?f on age o name: the first ?f binds, the second conflicts. After
  // the failure the SAME Bindings must behave as if never touched -- the
  // non-linear pattern must then succeed against a consistent term, which
  // it could not if the stale ?f -> age binding survived.
  Bindings b;
  TermPtr pattern = P("?f o ?f");
  EXPECT_FALSE(MatchTerm(pattern, P("age o name"), &b));
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(MatchTerm(pattern, P("name o name"), &b));
  EXPECT_TRUE(Term::Equal(*b.Lookup("f"), P("name")));
}

TEST(MatchTest, FailureInsidePairLiteralRestoresBindings) {
  // The pair-literal decomposition path has its own binding writes; a deep
  // shape failure there must unwind them too.
  Bindings b;
  ASSERT_TRUE(b.Bind("keep", P("pi1")));
  EXPECT_FALSE(MatchTerm(P("[?x, [?y, 9]]", Sort::kObject),
                         P("[7, [8, 3]]", Sort::kObject), &b));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.Lookup("x"), nullptr);
  EXPECT_EQ(b.Lookup("y"), nullptr);
}

TEST(MatchTest, PairPatternDecomposesPairLiterals) {
  // The parser folds [1, 2] into a single pair-valued literal node.
  TermPtr term = P("[1, 2]", Sort::kObject);
  ASSERT_EQ(term->kind(), TermKind::kLiteral);
  Bindings b;
  ASSERT_TRUE(MatchTerm(P("[?x, ?y]", Sort::kObject), term, &b));
  EXPECT_TRUE(Term::Equal(*b.Lookup("x"), LitInt(1)));
  EXPECT_TRUE(Term::Equal(*b.Lookup("y"), LitInt(2)));
  // Literal components compare by value...
  Bindings b2;
  EXPECT_TRUE(MatchTerm(P("[1, ?y]", Sort::kObject), term, &b2));
  Bindings b3;
  EXPECT_FALSE(MatchTerm(P("[3, ?y]", Sort::kObject), term, &b3));
  // ...nested pairs recurse, and shape mismatches fail cleanly.
  Bindings b4;
  EXPECT_TRUE(MatchTerm(P("[?x, [?y, ?z]]", Sort::kObject),
                        P("[7, [8, 9]]", Sort::kObject), &b4));
  Bindings b5;
  EXPECT_FALSE(MatchTerm(P("[?x, [?y, ?z]]", Sort::kObject), term, &b5));
  // A non-pair literal never matches a pair pattern.
  Bindings b6;
  EXPECT_FALSE(MatchTerm(P("[?x, ?y]", Sort::kObject),
                         P("25", Sort::kObject), &b6));
}

TEST(MatchTest, PaperRule11Pattern) {
  TermPtr pattern = P("iterate(?p, ?f) o iterate(?q, ?g)");
  TermPtr query = P("iterate(Kp(T), city) o iterate(Kp(T), addr)");
  Bindings b;
  ASSERT_TRUE(MatchTerm(pattern, query, &b));
  EXPECT_TRUE(Term::Equal(*b.Lookup("p"), P("Kp(T)", Sort::kPredicate)));
  EXPECT_TRUE(Term::Equal(*b.Lookup("f"), P("city")));
  EXPECT_TRUE(Term::Equal(*b.Lookup("g"), P("addr")));
}

TEST(SubstituteTest, ReplacesAllOccurrences) {
  Bindings b;
  b.Bind("f", P("city"));
  b.Bind("g", P("addr"));
  auto result = Substitute(P("?f o ?g o ?f"), b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Term::Equal(result.value(), P("city o addr o city")));
}

TEST(SubstituteTest, GroundPatternIsReturnedAsIs) {
  Bindings b;
  TermPtr ground = P("city o addr");
  auto result = Substitute(ground, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().get(), ground.get());  // shared, not copied
}

TEST(SubstituteTest, UnboundVariableIsError) {
  Bindings b;
  auto result = Substitute(P("?f o id"), b);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SubstituteTest, RoundTripWithMatch) {
  // match(lhs, t) then substitute(lhs) == t, for a nontrivial pattern.
  TermPtr pattern = P("iterate(?q & ?p @ ?g, ?f o ?g)");
  TermPtr term = P("iterate(Kp(T) & in @ pi1, age o pi1)");
  Bindings b;
  ASSERT_TRUE(MatchTerm(pattern, term, &b));
  auto rebuilt = Substitute(pattern, b);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(Term::Equal(rebuilt.value(), term));
}

}  // namespace
}  // namespace kola
