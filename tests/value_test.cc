#include <gtest/gtest.h>

#include "values/value.h"

namespace kola {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, ScalarRoundTrips) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_FALSE(Value::Bool(false).bool_value());
  EXPECT_EQ(Value::Int(-42).int_value(), -42);
  EXPECT_EQ(Value::Str("abc").string_value(), "abc");
}

TEST(ValueTest, PairAccessors) {
  Value p = Value::MakePair(Value::Int(1), Value::Str("x"));
  EXPECT_TRUE(p.is_pair());
  EXPECT_EQ(p.first().int_value(), 1);
  EXPECT_EQ(p.second().string_value(), "x");
  EXPECT_EQ(p.ToString(), "[1, \"x\"]");
}

TEST(ValueTest, SetsAreCanonical) {
  Value a = Value::MakeSet({Value::Int(3), Value::Int(1), Value::Int(2)});
  Value b = Value::MakeSet({Value::Int(2), Value::Int(1), Value::Int(3),
                            Value::Int(1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.SetSize(), 3u);
  EXPECT_EQ(a.ToString(), "{1, 2, 3}");
}

TEST(ValueTest, EmptySet) {
  Value e = Value::EmptySet();
  EXPECT_TRUE(e.is_set());
  EXPECT_EQ(e.SetSize(), 0u);
  EXPECT_EQ(e.ToString(), "{}");
}

TEST(ValueTest, SetContains) {
  Value s = Value::MakeSet({Value::Int(1), Value::Int(5), Value::Int(9)});
  EXPECT_TRUE(s.SetContains(Value::Int(5)));
  EXPECT_FALSE(s.SetContains(Value::Int(4)));
  EXPECT_FALSE(s.SetContains(Value::Str("5")));
}

TEST(ValueTest, CompareOrdersByKindThenContent) {
  // Kind rank: null < bool < int < string < pair < set < object.
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(99), Value::Str(""));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_LT(Value::MakePair(Value::Int(1), Value::Int(9)),
            Value::MakePair(Value::Int(2), Value::Int(0)));
}

TEST(ValueTest, SetComparisonIsLexicographic) {
  Value a = Value::MakeSet({Value::Int(1)});
  Value b = Value::MakeSet({Value::Int(1), Value::Int(2)});
  Value c = Value::MakeSet({Value::Int(2)});
  EXPECT_LT(a, b);  // prefix is smaller
  EXPECT_LT(a, c);
  EXPECT_LT(b, c);
}

TEST(ValueTest, NestedSetsOfPairs) {
  Value inner1 = Value::MakeSet({Value::Int(1), Value::Int(2)});
  Value inner2 = Value::MakeSet({Value::Int(3)});
  Value outer = Value::MakeSet(
      {Value::MakePair(Value::Str("a"), inner1),
       Value::MakePair(Value::Str("b"), inner2)});
  EXPECT_EQ(outer.SetSize(), 2u);
  EXPECT_TRUE(outer.SetContains(Value::MakePair(Value::Str("a"), inner1)));
}

TEST(ValueTest, ObjectIdentity) {
  Value o1 = Value::Object(0, 7);
  Value o2 = Value::Object(0, 7);
  Value o3 = Value::Object(0, 8);
  Value o4 = Value::Object(1, 7);
  EXPECT_EQ(o1, o2);
  EXPECT_NE(o1, o3);
  EXPECT_NE(o1, o4);
  EXPECT_EQ(o1.object_class(), 0);
  EXPECT_EQ(o1.object_id(), 7);
}

TEST(ValueTest, AsBoolErrorsOnWrongKind) {
  EXPECT_TRUE(Value::Bool(true).AsBool().ok());
  auto r = Value::Int(1).AsBool();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, AsIntErrorsOnWrongKind) {
  EXPECT_EQ(Value::Int(4).AsInt().value(), 4);
  EXPECT_FALSE(Value::Str("4").AsInt().ok());
}

TEST(ValueTest, HashConsistentWithEquality) {
  Value a = Value::MakeSet({Value::Int(3), Value::Int(1)});
  Value b = Value::MakeSet({Value::Int(1), Value::Int(3)});
  EXPECT_EQ(a.Hash(), b.Hash());
  // Distinct values very likely differ.
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::Str("1").Hash());
}

TEST(ValueTest, CopyIsShallowButValueSemantic) {
  Value s = Value::MakeSet({Value::Int(1), Value::Int(2)});
  Value t = s;
  EXPECT_EQ(s, t);
  EXPECT_EQ(&s.elements(), &t.elements());  // shared payload
}

}  // namespace
}  // namespace kola
