// Experiment E4: executing the Garage Query before (KG1) and after (KG2)
// untangling, across database sizes. The untangled nest-of-join form
// profits from hash join/nest implementations ("the variety of
// implementation techniques known for performing nestings of joins",
// Section 4.1); the nested KG1 form is inherently nested-loop. The rows
// report evaluator step counts (machine-independent) and the ablation with
// physical fast paths disabled.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/macros.h"
#include "eval/evaluator.h"
#include "optimizer/hidden_join.h"
#include "values/car_world.h"

namespace kola {
namespace {

std::unique_ptr<Database> MakeDb(int64_t scale) {
  CarWorldOptions options;
  options.num_persons = scale;
  options.num_vehicles = scale;
  options.num_addresses = scale / 2 + 1;
  options.seed = 13;
  return BuildCarWorld(options);
}

void PrintReproductionTable() {
  std::printf("== E4: Garage Query execution, KG1 vs KG2 ==\n");
  std::printf("%8s %12s %12s %14s %10s\n", "scale", "KG1 steps",
              "KG2 steps", "KG2(no-hash)", "KG1/KG2");
  for (int64_t scale : {20, 50, 100, 200, 400}) {
    auto db = MakeDb(scale);
    Evaluator kg1_eval(db.get());
    KOLA_CHECK_OK(kg1_eval.EvalObject(GarageQueryKG1()).status());
    Evaluator kg2_eval(db.get());
    KOLA_CHECK_OK(kg2_eval.EvalObject(GarageQueryKG2()).status());
    Evaluator kg2_naive(db.get(),
                        EvalOptions{.physical_fastpaths = false});
    KOLA_CHECK_OK(kg2_naive.EvalObject(GarageQueryKG2()).status());
    std::printf("%8lld %12lld %12lld %14lld %10.2f\n",
                static_cast<long long>(scale),
                static_cast<long long>(kg1_eval.steps()),
                static_cast<long long>(kg2_eval.steps()),
                static_cast<long long>(kg2_naive.steps()),
                static_cast<double>(kg1_eval.steps()) /
                    static_cast<double>(kg2_eval.steps()));
  }
  std::printf("(expected shape: KG1/KG2 grows with scale; KG2 without the\n"
              " hash fast paths loses the advantage)\n\n");
}

void BM_GarageKG1(benchmark::State& state) {
  auto db = MakeDb(state.range(0));
  TermPtr query = GarageQueryKG1();
  for (auto _ : state) {
    auto result = EvalQuery(*db, query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GarageKG1)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_GarageKG2(benchmark::State& state) {
  auto db = MakeDb(state.range(0));
  TermPtr query = GarageQueryKG2();
  for (auto _ : state) {
    auto result = EvalQuery(*db, query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GarageKG2)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_GarageKG2NoFastpath(benchmark::State& state) {
  auto db = MakeDb(state.range(0));
  TermPtr query = GarageQueryKG2();
  for (auto _ : state) {
    Evaluator evaluator(db.get(), EvalOptions{.physical_fastpaths = false});
    auto result = evaluator.EvalObject(query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GarageKG2NoFastpath)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  kola::PrintReproductionTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
