// Serial-vs-parallel scaling of the batch drivers: Optimizer::OptimizeAll
// over a mixed query batch, and the differential soundness sweep with
// SoundnessOptions::jobs. Both drivers promise bit-identical output for
// every jobs value, so each workload's result digest is checked across all
// measured jobs levels before any timing is reported; parallelism may only
// ever buy wall-clock. The table is written to BENCH_parallel.json
// (override with --out=PATH).
//
// Note: speedup is bounded by the physical core count of the machine the
// bench runs on (hardware_jobs in the JSON); on a single-core container
// every jobs level times the same serial work plus scheduling overhead.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "optimizer/code_motion.h"
#include "optimizer/hidden_join.h"
#include "optimizer/optimizer.h"
#include "term/intern.h"
#include "values/car_world.h"
#include "verify/soundness.h"

namespace kola {
namespace {

constexpr int kJobsLevels[] = {1, 2, 4};

// ---------------------------------------------------------------------------
// Workload 1: OptimizeAll over a mixed batch (untangling-heavy).
// ---------------------------------------------------------------------------

std::vector<TermPtr> MakeBatch() {
  std::vector<TermPtr> batch;
  for (int round = 0; round < 4; ++round) {
    batch.push_back(GarageQueryKG1());
    batch.push_back(QueryK4());
    batch.push_back(QueryK3());
    for (int depth : {4, 5, 6}) {
      auto query = MakeHiddenJoinQuery(depth);
      KOLA_CHECK_OK(query.status());
      batch.push_back(std::move(query).value());
    }
  }
  return batch;  // 24 queries
}

std::string BatchDigest(const std::vector<BatchOptimizeResult>& entries) {
  std::string digest;
  for (const BatchOptimizeResult& entry : entries) {
    KOLA_CHECK_OK(entry.status);
    const OptimizeResult& r = *entry.result;
    digest += r.query->ToString();
    for (const std::string& id : r.trace.RuleIds()) {
      digest += ' ';
      digest += id;
    }
    digest += '\n';
  }
  return digest;
}

// ---------------------------------------------------------------------------
// Workload 2: the end-to-end soundness sweep.
// ---------------------------------------------------------------------------

SoundnessOptions SweepOptions(int jobs) {
  SoundnessOptions options;
  options.trials = 48;
  options.seed = 20260806;
  options.max_eval_steps = 500'000;
  options.jobs = jobs;
  return options;
}

// ---------------------------------------------------------------------------
// Harness: per-workload timings at each jobs level, digest equality across
// levels, table + BENCH_parallel.json.
// ---------------------------------------------------------------------------

struct Row {
  std::string name;
  std::vector<double> ms;       // parallel to kJobsLevels
  std::vector<double> speedup;  // serial_ms / ms
};

/// True when a jobs level oversubscribes this machine: more workers than
/// hardware threads cannot speed anything up, so its timing says nothing
/// about the driver's scaling. Flagged per level in the table and the JSON
/// instead of quietly reporting a ~1x "speedup" as if it were a finding.
bool ExceedsHardware(int jobs) { return jobs > HardwareJobs(); }

void FinishRow(Row* row) {
  for (double ms : row->ms) {
    row->speedup.push_back(ms > 0 ? row->ms.front() / ms : 0);
  }
}

Row MeasureOptimizeAll(int repetitions) {
  const PropertyStore properties = PropertyStore::Default();
  CarWorldOptions world;
  world.num_persons = 24;
  world.num_vehicles = 12;
  world.num_addresses = 10;
  auto db = BuildCarWorld(world);
  Optimizer optimizer(&properties, db.get());
  const std::vector<TermPtr> batch = MakeBatch();

  // Identity gate: every jobs level must produce the serial batch, plan
  // for plan and trace for trace.
  std::string serial_digest;
  for (int jobs : kJobsLevels) {
    std::string digest = BatchDigest(optimizer.OptimizeAll(batch, jobs));
    if (jobs == 1) serial_digest = digest;
    KOLA_CHECK(digest == serial_digest);
  }

  Row row;
  row.name = "optimize_all/mixed_batch24";
  for (size_t level = 0; level < std::size(kJobsLevels); ++level) {
    double best = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      auto start = std::chrono::steady_clock::now();
      auto results = optimizer.OptimizeAll(batch, kJobsLevels[level]);
      auto end = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(results);
      double ms =
          std::chrono::duration<double, std::milli>(end - start).count();
      if (rep == 0 || ms < best) best = ms;
    }
    row.ms.push_back(best);
  }
  FinishRow(&row);
  return row;
}

Row MeasureSoundnessSweep(int repetitions) {
  // Identity gate: counts, failures and repro seeds must not move with
  // jobs. Summary() covers all of them.
  std::string serial_summary;
  for (int jobs : kJobsLevels) {
    auto report = SoundnessHarness(SweepOptions(jobs)).Run();
    KOLA_CHECK_OK(report.status());
    KOLA_CHECK(report->clean());
    if (jobs == 1) serial_summary = report->Summary();
    KOLA_CHECK(report->Summary() == serial_summary);
  }

  Row row;
  row.name = "soundness_sweep/48_trials_x32_configs";
  for (size_t level = 0; level < std::size(kJobsLevels); ++level) {
    double best = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      SoundnessHarness harness(SweepOptions(kJobsLevels[level]));
      auto start = std::chrono::steady_clock::now();
      auto report = harness.Run();
      auto end = std::chrono::steady_clock::now();
      KOLA_CHECK_OK(report.status());
      benchmark::DoNotOptimize(report);
      double ms =
          std::chrono::duration<double, std::milli>(end - start).count();
      if (rep == 0 || ms < best) best = ms;
    }
    row.ms.push_back(best);
  }
  FinishRow(&row);
  return row;
}

/// Accounting pass: the mixed batch re-run serially under a pure-meter
/// governor (byte budget 0 never exhausts) with a private interner arena,
/// so the JSON records the batch driver's peak charged bytes.
int64_t MeasurePeakChargedBytes() {
  const PropertyStore properties = PropertyStore::Default();
  CarWorldOptions world;
  world.num_persons = 24;
  world.num_vehicles = 12;
  world.num_addresses = 10;
  auto db = BuildCarWorld(world);
  Governor meter{Governor::Limits{}};
  ScopedMemoryGovernor memory_scope(&meter);
  TermInterner arena;
  ScopedInterning interning(&arena);
  RewriterOptions options = RewriterOptions::Defaults();
  options.governor = &meter;
  Optimizer optimizer(&properties, db.get(), options);
  for (const BatchOptimizeResult& entry :
       optimizer.OptimizeAll(MakeBatch(), 1)) {
    KOLA_CHECK_OK(entry.status);
  }
  return meter.memory().peak_bytes();
}

std::vector<Row> RunTable() {
  std::vector<Row> rows;
  std::printf("== serial vs parallel batch drivers (hardware jobs: %d) ==\n",
              HardwareJobs());
  std::printf("%-40s", "workload");
  for (int jobs : kJobsLevels) {
    std::printf("  jobs=%d(ms)%s", jobs, ExceedsHardware(jobs) ? "*" : "");
  }
  std::printf("  speedup@4\n");
  auto emit = [&](Row row) {
    std::printf("%-40s", row.name.c_str());
    for (size_t level = 0; level < row.ms.size(); ++level) {
      std::printf("  %10.2f%s", row.ms[level],
                  ExceedsHardware(kJobsLevels[level]) ? "*" : " ");
    }
    std::printf("  %7.2fx\n", row.speedup.back());
    rows.push_back(std::move(row));
  };
  emit(MeasureOptimizeAll(3));
  emit(MeasureSoundnessSweep(3));
  bool any_oversubscribed = false;
  for (int jobs : kJobsLevels) any_oversubscribed |= ExceedsHardware(jobs);
  if (any_oversubscribed) {
    std::printf("* jobs exceed the %d hardware thread(s): oversubscribed, "
                "timing is not a scaling measurement\n",
                HardwareJobs());
  }
  std::printf("\n");
  return rows;
}

void WriteJson(const std::vector<Row>& rows, int64_t peak_charged_bytes,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_parallel\",\n");
  std::fprintf(f, "  \"hardware_jobs\": %d,\n", HardwareJobs());
  std::fprintf(f, "  \"results_identical_across_jobs\": true,\n");
  std::fprintf(f, "  \"peak_charged_bytes\": %lld,\n",
               static_cast<long long>(peak_charged_bytes));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "    {\"name\": \"%s\", \"levels\": [",
                 rows[i].name.c_str());
    for (size_t level = 0; level < rows[i].ms.size(); ++level) {
      std::fprintf(f,
                   "{\"jobs\": %d, \"hardware_jobs\": %d, "
                   "\"exceeds_hardware\": %s, \"ms\": %.3f, "
                   "\"speedup\": %.2f}%s",
                   kJobsLevels[level], HardwareJobs(),
                   ExceedsHardware(kJobsLevels[level]) ? "true" : "false",
                   rows[i].ms[level], rows[i].speedup[level],
                   level + 1 < rows[i].ms.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Google-benchmark microbenches for the pool itself.
// ---------------------------------------------------------------------------

void BM_ParallelForOverhead(benchmark::State& state) {
  // Dispatch cost of an almost-empty body: what ParallelFor charges per
  // index when the work itself is negligible.
  int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::atomic<uint64_t> sum{0};
    KOLA_CHECK_OK(ParallelFor(jobs, 256, [&sum](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }));
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(2)->Arg(4);

void BM_OptimizeAllBatch(benchmark::State& state) {
  int jobs = static_cast<int>(state.range(0));
  const PropertyStore properties = PropertyStore::Default();
  auto db = BuildCarWorld(CarWorldOptions{});
  Optimizer optimizer(&properties, db.get());
  const std::vector<TermPtr> batch = MakeBatch();
  for (auto _ : state) {
    auto results = optimizer.OptimizeAll(batch, jobs);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_OptimizeAllBatch)->Arg(1)->Arg(4);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  std::string out = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }
  std::vector<kola::Row> rows = kola::RunTable();
  int64_t peak = kola::MeasurePeakChargedBytes();
  std::printf("peak charged bytes (mixed_batch24, serial): %lld\n",
              static_cast<long long>(peak));
  kola::WriteJson(rows, peak, out);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
