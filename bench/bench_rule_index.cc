// Compiled rule index vs linear scan: before/after numbers for whole-pool
// matching, the Figure 4 fixpoints, hidden-join untangling and join
// exploration.
//
// "before" is the linear scan (use_rule_index off, the seed and the
// KOLA_NO_RULE_INDEX configuration); "after" consults the discrimination
// tree compiled by rewrite/rule_index.h. Each workload's derivation digest
// is checked identical across the two modes before its timing is reported,
// and the table is written to BENCH_rule_index.json (override with
// --out=PATH). With --assert the process exits nonzero if the indexed
// whole-catalog probe is slower than the linear scan -- the CI guard
// against the index quietly becoming overhead.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "optimizer/explore.h"
#include "optimizer/hidden_join.h"
#include "rewrite/engine.h"
#include "rewrite/rule_index.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

// ---------------------------------------------------------------------------
// Mode-parameterized workloads. Each returns a digest string (fired rules
// plus results) that must agree across modes.
// ---------------------------------------------------------------------------

struct Mode {
  bool indexed;
};

constexpr Mode kLinear{false};
constexpr Mode kIndexed{true};

Rewriter MakeRewriter(const Mode& mode) {
  return Rewriter(nullptr, RewriterOptions{.use_rule_index = mode.indexed});
}

std::string TraceDigest(const Trace& trace, const TermPtr& final_term) {
  std::string digest;
  for (const std::string& id : trace.RuleIds()) {
    digest += id;
    digest += ' ';
  }
  digest += "=> ";
  digest += final_term->ToString();
  return digest;
}

std::vector<Rule> Fig4Rules() {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> rules;
  for (const char* id :
       {"11", "6", "5", "1", "13", "7", "ext.and-true-right"}) {
    rules.push_back(FindRule(all, id));
  }
  return rules;
}

/// The headline workload: every catalog rule probed once against the
/// garage query. Linear mode walks the whole term once per rule; indexed
/// mode makes one shared descent testing only each node's candidates.
std::string WholeCatalogApplyOnce(const Mode& mode, int iters) {
  Rewriter rewriter = MakeRewriter(mode);
  std::vector<Rule> all = AllCatalogRules();
  TermPtr garage = GarageQueryKG1();
  std::string digest;
  for (int i = 0; i < iters; ++i) {
    auto batch = rewriter.ApplyEachOnce(all, garage);
    digest.clear();
    for (size_t r = 0; r < batch.size(); ++r) {
      if (batch[r].has_value()) {
        digest += all[r].id;
        digest += ' ';
      }
    }
  }
  return digest;
}

/// The Figure 4 fusion fixpoints (T1 and T2 derivations).
std::string Fig4Fixpoints(const Mode& mode, int iters) {
  Rewriter rewriter = MakeRewriter(mode);
  std::vector<Rule> rules = Fig4Rules();
  const char* queries[] = {
      "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P",
      "iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P",
  };
  std::string digest;
  for (int i = 0; i < iters; ++i) {
    digest.clear();
    for (const char* text : queries) {
      auto query = ParseTerm(text, Sort::kObject);
      KOLA_CHECK_OK(query.status());
      Trace trace;
      auto fused = rewriter.Fixpoint(rules, query.value(), &trace);
      KOLA_CHECK_OK(fused.status());
      digest += TraceDigest(trace, fused.value());
    }
  }
  return digest;
}

/// The garage query untangling (Figure 3 -> KG2).
std::string UntangleGarage(const Mode& mode, int iters) {
  Rewriter rewriter = MakeRewriter(mode);
  TermPtr garage = GarageQueryKG1();
  std::string digest;
  for (int i = 0; i < iters; ++i) {
    auto result = UntangleHiddenJoin(garage, rewriter);
    KOLA_CHECK_OK(result.status());
    digest = TraceDigest(result->trace, result->query);
  }
  return digest;
}

/// Rule-based join exploration on a filtered self-join.
std::string JoinExploration(const Mode& mode, int iters) {
  Rewriter rewriter = MakeRewriter(mode);
  CarWorldOptions options;
  options.num_persons = 80;
  options.num_vehicles = 20;
  auto db = BuildCarWorld(options);
  CostModel model(db.get());
  auto query = ParseTerm(
      "join(gt @ (age x age) & Cp(lt, 60) @ age @ pi1, (pi1, pi2)) "
      "! [P, P]",
      Sort::kObject);
  KOLA_CHECK_OK(query.status());
  std::string digest;
  for (int i = 0; i < iters; ++i) {
    auto plans = ExploreJoinPlans(query.value(), rewriter, model);
    KOLA_CHECK_OK(plans.status());
    digest.clear();
    for (const Candidate& c : *plans) {
      for (const std::string& id : c.derivation) digest += id + " ";
      digest += "| ";
    }
  }
  return digest;
}

// ---------------------------------------------------------------------------
// Harness: time each workload in both modes, check digests agree, emit the
// table and BENCH_rule_index.json.
// ---------------------------------------------------------------------------

using WorkloadFn = std::function<std::string(const Mode&, int)>;

struct Row {
  std::string name;
  double linear_ms = 0;
  double indexed_ms = 0;
  double speedup = 0;
};

double TimeOnceMs(const WorkloadFn& fn, const Mode& mode, int iters) {
  auto start = std::chrono::steady_clock::now();
  std::string digest = fn(mode, iters);
  auto end = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(digest);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

Row Measure(const std::string& name, const WorkloadFn& fn, int iters,
            int repetitions = 9) {
  // Derivations and results must not depend on the mode.
  KOLA_CHECK(fn(kLinear, 1) == fn(kIndexed, 1));

  Row row;
  row.name = name;
  row.linear_ms = TimeOnceMs(fn, kLinear, iters);
  row.indexed_ms = TimeOnceMs(fn, kIndexed, iters);
  for (int rep = 1; rep < repetitions; ++rep) {
    row.linear_ms = std::min(row.linear_ms, TimeOnceMs(fn, kLinear, iters));
    row.indexed_ms = std::min(row.indexed_ms, TimeOnceMs(fn, kIndexed, iters));
  }
  row.speedup = row.indexed_ms > 0 ? row.linear_ms / row.indexed_ms : 0;
  return row;
}

std::vector<Row> RunTable() {
  std::vector<Row> rows;
  std::printf("== compiled rule index vs linear scan ==\n");
  std::printf("%-42s %12s %12s %9s\n", "workload", "linear(ms)",
              "indexed(ms)", "speedup");
  auto run = [&](const std::string& name, const WorkloadFn& fn, int iters) {
    Row row = Measure(name, fn, iters);
    std::printf("%-42s %12.2f %12.2f %8.2fx\n", row.name.c_str(),
                row.linear_ms, row.indexed_ms, row.speedup);
    rows.push_back(std::move(row));
  };
  run("bench_matching/whole_catalog_apply_once", WholeCatalogApplyOnce, 300);
  run("bench_matching/join_exploration", JoinExploration, 3);
  run("bench_rule_pool/fig4_fixpoints", Fig4Fixpoints, 60);
  run("bench_hidden_join/untangle_garage", UntangleGarage, 40);
  std::printf("\n");
  return rows;
}

void WriteJson(const std::vector<Row>& rows, const std::string& path) {
  const RuleIndexCacheStats stats = GetRuleIndexCacheStats();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_rule_index\",\n");
  std::fprintf(f, "  \"before\": \"linear rule scan (KOLA_NO_RULE_INDEX)\",\n");
  std::fprintf(
      f, "  \"after\": \"compiled discrimination-tree rule index\",\n");
  std::fprintf(f, "  \"traces_identical\": true,\n");
  std::fprintf(f, "  \"index_cache_bytes\": %lld,\n",
               static_cast<long long>(stats.bytes));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"linear_ms\": %.3f, "
                 "\"indexed_ms\": %.3f, \"speedup\": %.2f}%s\n",
                 rows[i].name.c_str(), rows[i].linear_ms, rows[i].indexed_ms,
                 rows[i].speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Google-benchmark microbenches for the index itself.
// ---------------------------------------------------------------------------

void BM_BuildCatalogIndex(benchmark::State& state) {
  std::vector<Rule> all = AllCatalogRules();
  const uint64_t fp = RuleSetFingerprint(all);
  for (auto _ : state) {
    auto index = RuleIndex::Build(all, fp);
    benchmark::DoNotOptimize(index);
  }
  state.counters["bytes"] =
      static_cast<double>(RuleIndex::Build(all, fp)->footprint_bytes());
}
BENCHMARK(BM_BuildCatalogIndex);

void BM_CandidatesAtGarageRoot(benchmark::State& state) {
  std::vector<Rule> all = AllCatalogRules();
  auto index = RuleIndex::Build(all, RuleSetFingerprint(all));
  TermPtr garage = GarageQueryKG1();
  std::vector<uint32_t> candidates;
  for (auto _ : state) {
    index->CandidatesAt(*garage, &candidates);
    benchmark::DoNotOptimize(candidates);
  }
  state.counters["candidates"] = static_cast<double>(candidates.size());
}
BENCHMARK(BM_CandidatesAtGarageRoot);

void BM_WholeCatalogApplyEachOnce(benchmark::State& state) {
  bool indexed = state.range(0) != 0;
  Rewriter rewriter = MakeRewriter(Mode{indexed});
  std::vector<Rule> all = AllCatalogRules();
  TermPtr garage = GarageQueryKG1();
  for (auto _ : state) {
    auto batch = rewriter.ApplyEachOnce(all, garage);
    benchmark::DoNotOptimize(batch);
  }
}
BENCHMARK(BM_WholeCatalogApplyEachOnce)->Arg(0)->Arg(1);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  std::string out = "BENCH_rule_index.json";
  bool assert_not_slower = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    if (std::strcmp(argv[i], "--assert") == 0) assert_not_slower = true;
  }
  if (kola::RuleIndexDisabledByEnv()) {
    std::fprintf(stderr,
                 "KOLA_NO_RULE_INDEX is set; the indexed mode would "
                 "silently measure the linear scan\n");
    return 2;
  }
  std::vector<kola::Row> rows = kola::RunTable();
  kola::WriteJson(rows, out);
  if (assert_not_slower) {
    for (const kola::Row& row : rows) {
      if (row.name == "bench_matching/whole_catalog_apply_once" &&
          row.speedup < 1.0) {
        std::fprintf(stderr,
                     "FAIL: indexed whole-catalog apply-once is slower than "
                     "the linear scan (%.2fx)\n",
                     row.speedup);
        return 1;
      }
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
