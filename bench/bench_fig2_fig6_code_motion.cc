// Experiments F2/F6/E6 (Figures 2 and 6): code motion on nested queries.
//
//  * F2: AQUA queries A3/A4 are structurally identical modulo one variable;
//    deciding applicability needs a freeness head routine. The KOLA forms
//    K3/K4 differ structurally (pi2 vs pi1): matching alone decides.
//  * F6: the K4 derivation ends at con(Cp(lt,25) @ age, child, Kf({})).
//  * E6: executing the optimized K4 beats the original, across database
//    sizes and predicate selectivities.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "aqua/transform.h"
#include "common/macros.h"
#include "eval/evaluator.h"
#include "optimizer/code_motion.h"
#include "rewrite/engine.h"
#include "values/car_world.h"

namespace kola {
namespace {

std::unique_ptr<Database> MakeDb(int64_t persons, int64_t max_age = 90) {
  CarWorldOptions options;
  options.num_persons = persons;
  options.num_vehicles = persons / 2 + 1;
  options.num_addresses = persons / 3 + 1;
  options.max_age = max_age;
  options.seed = 7;
  return BuildCarWorld(options);
}

void PrintReproductionTable() {
  Rewriter rewriter;
  std::printf("== Figure 2 / Figure 6: code motion ==\n");

  for (bool hoistable : {false, true}) {
    const char* name = hoistable ? "A4/K4" : "A3/K3";
    aqua::ExprPtr aqua_query =
        hoistable ? aqua::QueryA4() : aqua::QueryA3();
    TermPtr kola_query = hoistable ? QueryK4() : QueryK3();

    aqua::AquaTransformStats stats;
    auto aqua_result = aqua::AquaCodeMotion(aqua_query, &stats);
    auto kola_result = ApplyCodeMotion(kola_query, rewriter);
    KOLA_CHECK_OK(kola_result.status());

    std::printf("%-6s AQUA: applied=%d head-ops=%d (freeness analysis)\n",
                name, aqua_result.ok() ? 1 : 0, stats.head_ops);
    std::printf("%-6s KOLA: applied=%d head-ops=0 rules-fired=%zu\n", name,
                kola_result->moved ? 1 : 0,
                kola_result->trace.steps.size());
    if (kola_result->moved) {
      std::printf("       final: %s\n",
                  kola_result->query->ToString().c_str());
    }
  }

  // E6 table: execution cost of K4 original vs optimized.
  std::printf("\n== E6: K4 execution, original vs code-moved ==\n");
  std::printf("%8s %14s %14s %8s\n", "|P|", "orig steps", "moved steps",
              "ratio");
  for (int64_t persons : {50, 200, 800}) {
    auto db = MakeDb(persons);
    auto moved = ApplyCodeMotion(QueryK4(), rewriter);
    KOLA_CHECK_OK(moved.status());

    Evaluator original_eval(db.get());
    KOLA_CHECK_OK(original_eval.EvalObject(QueryK4()).status());
    Evaluator moved_eval(db.get());
    KOLA_CHECK_OK(moved_eval.EvalObject(moved->query).status());
    std::printf("%8lld %14lld %14lld %8.2f\n",
                static_cast<long long>(persons),
                static_cast<long long>(original_eval.steps()),
                static_cast<long long>(moved_eval.steps()),
                static_cast<double>(original_eval.steps()) /
                    static_cast<double>(moved_eval.steps()));
  }
  std::printf("\n");
}

void BM_K4Original(benchmark::State& state) {
  auto db = MakeDb(state.range(0));
  TermPtr query = QueryK4();
  for (auto _ : state) {
    auto result = EvalQuery(*db, query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_K4Original)->Arg(50)->Arg(200)->Arg(800);

void BM_K4CodeMoved(benchmark::State& state) {
  auto db = MakeDb(state.range(0));
  Rewriter rewriter;
  auto moved = ApplyCodeMotion(QueryK4(), rewriter);
  KOLA_CHECK_OK(moved.status());
  for (auto _ : state) {
    auto result = EvalQuery(*db, moved->query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_K4CodeMoved)->Arg(50)->Arg(200)->Arg(800);

void BM_ClassifyKola(benchmark::State& state) {
  // Deciding hoistability over KOLA: one rule-match attempt.
  Rewriter rewriter;
  for (auto _ : state) {
    auto k3 = ApplyCodeMotion(QueryK3(), rewriter);
    auto k4 = ApplyCodeMotion(QueryK4(), rewriter);
    benchmark::DoNotOptimize(k3);
    benchmark::DoNotOptimize(k4);
  }
}
BENCHMARK(BM_ClassifyKola);

void BM_ClassifyAqua(benchmark::State& state) {
  // Deciding hoistability over AQUA: freeness head routine.
  for (auto _ : state) {
    aqua::AquaTransformStats s3, s4;
    auto a3 = aqua::AquaCodeMotion(aqua::QueryA3(), &s3);
    auto a4 = aqua::AquaCodeMotion(aqua::QueryA4(), &s4);
    benchmark::DoNotOptimize(a3);
    benchmark::DoNotOptimize(a4);
  }
}
BENCHMARK(BM_ClassifyAqua);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  kola::PrintReproductionTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
