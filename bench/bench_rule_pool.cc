// Experiments E2/E3 (Sections 1.2 and 4.2): the rule pool.
//
//  * E3: the paper reports a pool of 500+ rules proved with the Larch
//    Prover. Our substitute is randomized semantic verification: this bench
//    verifies the entire shipped catalog (plus reversals and apply-level
//    variants) and reports the soundness table, including the catch of the
//    as-published rule 7.
//  * E2: "we have introduced 24 KOLA rules to replace the four
//    transformations presented in this paper ... most of the rules
//    introduced have general applicability": the reuse matrix counts which
//    rules fire in which of the four derivations.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <set>

#include "common/macros.h"
#include "optimizer/code_motion.h"
#include "optimizer/hidden_join.h"
#include "rewrite/engine.h"
#include "rewrite/verifier.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

std::unique_ptr<Database> MakeDb() {
  CarWorldOptions options;
  options.num_persons = 10;
  options.num_vehicles = 6;
  options.num_addresses = 5;
  return BuildCarWorld(options);
}

void PrintVerificationTable() {
  auto db = MakeDb();
  SchemaTypes schema = SchemaTypes::CarWorld();
  VerifyOptions options;
  options.trials = 150;

  std::vector<Rule> pool = AllCatalogRules();
  // Reversed readings of the bidirectional rules used in the paper.
  for (const char* id : {"2", "12", "14"}) {
    auto reversed = ReverseRule(FindRule(pool, id));
    KOLA_CHECK_OK(reversed.status());
    pool.push_back(std::move(reversed).value());
  }
  // Apply-level variants of the hidden-join rules.
  for (const char* id : {"17", "17b", "20", "21", "22", "23", "24"}) {
    auto variant = ApplyLevelVariant(FindRule(pool, id));
    KOLA_CHECK_OK(variant.status());
    pool.push_back(std::move(variant).value());
  }

  std::printf("== E3: rule-pool verification (randomized Larch substitute) "
              "==\n");
  int sound = 0, unsound = 0, inconclusive = 0;
  for (const Rule& rule : pool) {
    auto outcome = VerifyRule(rule, *db, schema, options);
    if (!outcome.ok()) {
      std::printf("%-28s TYPING-ERROR %s\n", rule.id.c_str(),
                  outcome.status().ToString().c_str());
      ++inconclusive;
      continue;
    }
    if (outcome->sound()) {
      ++sound;
    } else if (outcome->unsound()) {
      ++unsound;
      std::printf("%-28s UNSOUND %s\n", rule.id.c_str(),
                  outcome->Summary().c_str());
    } else {
      ++inconclusive;
      std::printf("%-28s INDETERMINATE %s\n", rule.id.c_str(),
                  outcome->Summary().c_str());
    }
  }
  std::printf("pool: %zu rules -> %d sound, %d unsound, %d indeterminate\n",
              pool.size(), sound, unsound, inconclusive);

  // The as-published rule 7.
  auto published = VerifyRule(PaperRule7AsPublished(), *db, schema, options);
  KOLA_CHECK_OK(published.status());
  std::printf("\nrule 7 as published (inv(gt) => leq): %s\n",
              published->Summary().c_str());
  if (!published->counterexample.empty()) {
    std::printf("  counterexample: %s\n",
                published->counterexample.c_str());
  }
  std::printf("\n");
}

void PrintReuseMatrix() {
  std::printf("== E2: rule reuse across the paper's four transformations "
              "==\n");
  Rewriter rewriter;
  std::vector<Rule> all = AllCatalogRules();

  std::map<std::string, std::set<std::string>> used_by;
  auto record = [&](const Trace& trace, const char* name) {
    for (const RewriteStep& step : trace.steps) {
      // Strip the apply-level "!" suffix so variants count as their base
      // rule.
      std::string id = step.rule_id;
      if (!id.empty() && id.back() == '!') id.pop_back();
      if (!id.empty() && id.back() == '~') id.pop_back();
      used_by[id].insert(name);
    }
  };

  {  // T1K and T2K (Figure 4).
    std::vector<Rule> rules;
    for (const char* id :
         {"11", "6", "5", "1", "13", "7", "ext.and-true-right"}) {
      rules.push_back(FindRule(all, id));
    }
    auto rev12 = ReverseRule(FindRule(all, "12"));
    KOLA_CHECK_OK(rev12.status());
    const std::pair<const char*, const char*> queries[] = {
        {"T1", "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P"},
        {"T2", "iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P"},
    };
    for (const auto& [name, text] : queries) {
      auto query = ParseTerm(text, Sort::kObject);
      KOLA_CHECK_OK(query.status());
      Trace trace;
      auto fused = rewriter.Fixpoint(rules, query.value(), &trace);
      KOLA_CHECK_OK(fused.status());
      // T2 ends with one right-to-left application of rule 12.
      RewriteStep step;
      if (rewriter.ApplyOnce(rev12.value(), fused.value(), &step)) {
        trace.steps.push_back(std::move(step));
      }
      record(trace, name);
    }
  }
  {  // Code motion (Figure 6).
    auto result = ApplyCodeMotion(QueryK4(), rewriter);
    KOLA_CHECK_OK(result.status());
    record(result->trace, "code-motion");
  }
  {  // Hidden join (Figures 3/7/8).
    auto result = UntangleHiddenJoin(GarageQueryKG1(), rewriter);
    KOLA_CHECK_OK(result.status());
    record(result->trace, "hidden-join");
  }

  int multi_use = 0;
  std::printf("%-22s %s\n", "rule", "used in");
  for (const auto& [id, users] : used_by) {
    std::string list;
    for (const std::string& user : users) {
      if (!list.empty()) list += ", ";
      list += user;
    }
    if (users.size() > 1) ++multi_use;
    std::printf("%-22s %s\n", id.c_str(), list.c_str());
  }
  std::printf("distinct rules fired: %zu; reused across transformations: "
              "%d\n\n",
              used_by.size(), multi_use);
}

void BM_VerifyRule11(benchmark::State& state) {
  auto db = MakeDb();
  SchemaTypes schema = SchemaTypes::CarWorld();
  std::vector<Rule> all = AllCatalogRules();
  const Rule& rule = FindRule(all, "11");
  VerifyOptions options;
  options.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto outcome = VerifyRule(rule, *db, schema, options);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_VerifyRule11)->Arg(10)->Arg(50)->Arg(200);

void BM_VerifyWholeCatalog(benchmark::State& state) {
  auto db = MakeDb();
  SchemaTypes schema = SchemaTypes::CarWorld();
  std::vector<Rule> all = AllCatalogRules();
  VerifyOptions options;
  options.trials = 20;
  for (auto _ : state) {
    int sound = 0;
    for (const Rule& rule : all) {
      auto outcome = VerifyRule(rule, *db, schema, options);
      if (outcome.ok() && outcome->sound()) ++sound;
    }
    benchmark::DoNotOptimize(sound);
  }
}
BENCHMARK(BM_VerifyWholeCatalog);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  kola::PrintVerificationTable();
  kola::PrintReuseMatrix();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
