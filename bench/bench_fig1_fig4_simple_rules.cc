// Experiment F1/F4 (Figures 1, 4): the simple transformations T1
// (composition fusion) and T2 (predicate decomposition).
//
// Reproduces the paper's qualitative claim quantitatively:
//   * over AQUA, both transformations need supplemental code -- we count
//     the head-routine operations (renaming, alpha-comparison) and
//     body-routine operations (substitution, expression building) the
//     baseline performs;
//   * over KOLA, the same transformations are sequences of code-free rule
//     firings -- zero supplemental operations by construction.
// The timed benchmarks compare the cost of both routes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "aqua/parser.h"
#include "aqua/transform.h"
#include "common/macros.h"
#include "rewrite/engine.h"
#include "rules/catalog.h"
#include "term/parser.h"

namespace kola {
namespace {

TermPtr Q(const char* text) {
  auto t = ParseTerm(text, Sort::kObject);
  KOLA_CHECK_OK(t.status());
  return std::move(t).value();
}

aqua::ExprPtr A(const char* text) {
  auto e = aqua::ParseAqua(text);
  KOLA_CHECK_OK(e.status());
  return std::move(e).value();
}

const char* kAquaT1 = "app(\\a. a.city)(app(\\p. p.addr)(P))";
const char* kAquaT2 = "app(\\x. x.age)(sel(\\p. p.age > 25)(P))";
const char* kKolaT1 = "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P";
const char* kKolaT2 =
    "iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P";

std::vector<Rule> T1T2Rules() {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> rules;
  for (const char* id : {"11", "6", "5", "1", "13", "7",
                         "ext.and-true-right"}) {
    rules.push_back(FindRule(all, id));
  }
  return rules;
}

/// The paper's T2K derivation: fuse + decompose to fixpoint, then one
/// application of rule 12 right-to-left splits selection from projection.
StatusOr<TermPtr> RunT2(const Rewriter& rewriter, TermPtr query,
                        Trace* trace) {
  std::vector<Rule> all = AllCatalogRules();
  KOLA_ASSIGN_OR_RETURN(query,
                        rewriter.Fixpoint(T1T2Rules(), query, trace));
  auto rev12 = ReverseRule(FindRule(all, "12"));
  KOLA_CHECK_OK(rev12.status());
  RewriteStep step;
  if (auto split = rewriter.ApplyOnce(rev12.value(), query, &step)) {
    if (trace != nullptr) trace->steps.push_back(std::move(step));
    query = *split;
  }
  return query;
}

void PrintReproductionTable() {
  std::printf("== Figure 1 / Figure 4: simple transformations ==\n");
  std::printf("%-4s %-6s %10s %10s %10s %s\n", "T", "algebra", "head-ops",
              "body-ops", "rules", "result");

  {
    aqua::AquaTransformStats stats;
    auto fused = aqua::FuseAppApp(A(kAquaT1), &stats);
    KOLA_CHECK_OK(fused.status());
    std::printf("%-4s %-6s %10d %10d %10s %s\n", "T1", "AQUA",
                stats.head_ops, stats.body_ops, "-",
                fused.value()->ToString().c_str());
  }
  {
    Rewriter rewriter;
    Trace trace;
    auto result = rewriter.Fixpoint(T1T2Rules(), Q(kKolaT1), &trace);
    KOLA_CHECK_OK(result.status());
    std::printf("%-4s %-6s %10d %10d %10zu %s\n", "T1", "KOLA", 0, 0,
                trace.steps.size(), result.value()->ToString().c_str());
  }
  {
    aqua::AquaTransformStats stats;
    auto swapped = aqua::SwapProjectSelect(A(kAquaT2), &stats);
    KOLA_CHECK_OK(swapped.status());
    std::printf("%-4s %-6s %10d %10d %10s %s\n", "T2", "AQUA",
                stats.head_ops, stats.body_ops, "-",
                swapped.value()->ToString().c_str());
  }
  {
    Rewriter rewriter;
    Trace trace;
    trace.initial = Q(kKolaT2);
    auto result = RunT2(rewriter, trace.initial, &trace);
    KOLA_CHECK_OK(result.status());
    std::printf("%-4s %-6s %10d %10d %10zu %s\n", "T2", "KOLA", 0, 0,
                trace.steps.size(), result.value()->ToString().c_str());
    std::printf("  KOLA T2 derivation (Figure 4):\n%s",
                trace.ToString().c_str());
  }
  std::printf("\n");
}

void BM_KolaT1Rewrite(benchmark::State& state) {
  Rewriter rewriter;
  std::vector<Rule> rules = T1T2Rules();
  TermPtr query = Q(kKolaT1);
  for (auto _ : state) {
    auto result = rewriter.Fixpoint(rules, query, nullptr);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KolaT1Rewrite);

void BM_KolaT2Rewrite(benchmark::State& state) {
  Rewriter rewriter;
  TermPtr query = Q(kKolaT2);
  for (auto _ : state) {
    auto result = RunT2(rewriter, query, nullptr);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KolaT2Rewrite);

void BM_AquaT1Transform(benchmark::State& state) {
  aqua::ExprPtr query = A(kAquaT1);
  for (auto _ : state) {
    aqua::AquaTransformStats stats;
    auto result = aqua::FuseAppApp(query, &stats);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AquaT1Transform);

void BM_AquaT2Transform(benchmark::State& state) {
  aqua::ExprPtr query = A(kAquaT2);
  for (auto _ : state) {
    aqua::AquaTransformStats stats;
    auto result = aqua::SwapProjectSelect(query, &stats);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AquaT2Transform);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  kola::PrintReproductionTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
