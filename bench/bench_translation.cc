// Experiment E1 (Section 4.2, "Complexity"): sizes of KOLA translations.
//
// The paper: translated queries are O(m*n) in parse-tree nodes (n = source
// nodes, m = maximum number of simultaneously live variables), and "in our
// experience ... less than twice the size of the queries they translate".
// We sweep both m (lambda-nesting depth) and n (body width) over
// worst-case queries whose bodies reference EVERY enclosing variable, plus
// a realistic corpus.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "aqua/parser.h"
#include "aqua/transform.h"
#include "common/macros.h"
#include "translate/translate.h"

namespace kola {
namespace {

using aqua::Expr;
using aqua::ExprPtr;

std::string VarName(int i) { return "x" + std::to_string(i); }

/// Body referencing all m variables: [x1.age, [x2.age, ... xm.age]].
ExprPtr AllVarsBody(int m) {
  ExprPtr body = Expr::FunCall("age", Expr::Var(VarName(m)));
  for (int i = m - 1; i >= 1; --i) {
    body = Expr::Tuple(Expr::FunCall("age", Expr::Var(VarName(i))),
                       std::move(body));
  }
  return body;
}

/// Worst-case nested query of depth m and body width w:
///   app(\x1. ... app(\xm. [BODY, [BODY, ...]])(x_{m-1}.child) ...)(P)
ExprPtr MakeDeepQuery(int m, int width) {
  KOLA_CHECK(m >= 1 && width >= 1);
  ExprPtr body = AllVarsBody(m);
  for (int i = 1; i < width; ++i) {
    body = Expr::Tuple(AllVarsBody(m), std::move(body));
  }
  ExprPtr expr = std::move(body);
  for (int i = m; i >= 1; --i) {
    ExprPtr source =
        i == 1 ? Expr::Collection("P")
               : Expr::FunCall("child", Expr::Var(VarName(i - 1)));
    expr = Expr::App(Expr::Lambda({VarName(i)}, std::move(expr)),
                     std::move(source));
  }
  return expr;
}

void PrintReproductionTable() {
  std::printf("== E1: translation size, O(m*n) bound and <2x observation "
              "==\n");
  std::printf("%4s %6s %12s %12s %8s %10s\n", "m", "width", "aqua-nodes",
              "kola-nodes", "ratio", "ratio/m");
  for (int m = 1; m <= 6; ++m) {
    for (int width : {1, 2, 4}) {
      ExprPtr query = MakeDeepQuery(m, width);
      auto sizes = MeasureTranslation(query);
      KOLA_CHECK_OK(sizes.status());
      std::printf("%4d %6d %12zu %12zu %8.2f %10.3f\n", m, width,
                  sizes->aqua_nodes, sizes->kola_nodes, sizes->ratio(),
                  sizes->ratio() / static_cast<double>(m));
    }
  }

  std::printf("\nRealistic corpus (paper queries):\n");
  std::printf("%-14s %12s %12s %8s\n", "query", "aqua-nodes", "kola-nodes",
              "ratio");
  struct NamedQuery {
    const char* name;
    ExprPtr expr;
  };
  auto parse = [](const char* text) {
    auto e = aqua::ParseAqua(text);
    KOLA_CHECK_OK(e.status());
    return std::move(e).value();
  };
  NamedQuery corpus[] = {
      {"T1", parse("app(\\a. a.city)(app(\\p. p.addr)(P))")},
      {"T2", parse("app(\\x. x.age)(sel(\\p. p.age > 25)(P))")},
      {"A3", aqua::QueryA3()},
      {"A4", aqua::QueryA4()},
      {"garage", aqua::AquaGarageQuery()},
  };
  for (const NamedQuery& q : corpus) {
    auto sizes = MeasureTranslation(q.expr);
    KOLA_CHECK_OK(sizes.status());
    std::printf("%-14s %12zu %12zu %8.2f\n", q.name, sizes->aqua_nodes,
                sizes->kola_nodes, sizes->ratio());
  }
  std::printf("(claim: realistic ratios < 2.0; worst-case grows linearly "
              "in m)\n");

  // Ablation (DESIGN.md section 6): what keeps translations small.
  // Finding: the environment-passing scheme is inherently compact -- the
  // local optimizations shave only a few nodes on these inputs. The O(m*n)
  // bound comes from the minimal pi-chain variable access itself, not from
  // peephole cleanup, which is consistent with the paper choosing a fixed
  // combinator set over on-the-fly supercombinators (Section 5).
  std::printf("\nAblation on the garage query and a deep query (m=5):\n");
  std::printf("%-34s %12s %12s\n", "translator variant", "garage",
              "deep(m=5)");
  struct Variant {
    const char* name;
    TranslateOptions options;
  };
  Variant variants[] = {
      {"default (simplify + fold)", {}},
      {"no identity elimination", {.simplify_identities = false}},
      {"no closed-subquery folding", {.fold_closed_subqueries = false}},
      {"neither (naive)",
       {.simplify_identities = false, .fold_closed_subqueries = false}},
  };
  ExprPtr garage = aqua::AquaGarageQuery();
  ExprPtr deep = MakeDeepQuery(5, 1);
  for (const Variant& v : variants) {
    auto g = MeasureTranslation(garage, v.options);
    auto d = MeasureTranslation(deep, v.options);
    KOLA_CHECK_OK(g.status());
    KOLA_CHECK_OK(d.status());
    std::printf("%-34s %7zu (%.2f) %6zu (%.2f)\n", v.name, g->kola_nodes,
                g->ratio(), d->kola_nodes, d->ratio());
  }
  std::printf("\n");
}

void BM_TranslateGarage(benchmark::State& state) {
  ExprPtr query = aqua::AquaGarageQuery();
  for (auto _ : state) {
    Translator translator;
    auto term = translator.TranslateQuery(query);
    benchmark::DoNotOptimize(term);
  }
}
BENCHMARK(BM_TranslateGarage);

void BM_TranslateByDepth(benchmark::State& state) {
  ExprPtr query = MakeDeepQuery(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    Translator translator;
    auto term = translator.TranslateQuery(query);
    benchmark::DoNotOptimize(term);
  }
}
BENCHMARK(BM_TranslateByDepth)->DenseRange(1, 6);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  kola::PrintReproductionTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
