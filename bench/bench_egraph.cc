// Greedy pipeline vs the equality-saturation backend (ROADMAP item 3):
// every workload is optimized twice by identically configured Optimizers
// that differ only in RewriterOptions::use_egraph, and the final plans are
// ranked by a fresh CostModel over the same catalog. The contract under
// test is the SaturateAndExtract guarantee -- the e-graph plan never costs
// more than the greedy plan, because the greedy plan is always a ranked
// candidate -- plus the reason the backend exists at all: on at least one
// hidden-join workload saturation must find a strictly cheaper plan than
// the greedy block order does. `--assert` turns both properties into a
// non-zero exit for CI; the table is written to BENCH_egraph.json
// (override with --out=PATH).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"
#include "optimizer/code_motion.h"
#include "optimizer/cost.h"
#include "optimizer/hidden_join.h"
#include "optimizer/optimizer.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

struct Workload {
  std::string name;
  TermPtr query;
  bool hidden_join = false;  // rows eligible for the strictly-cheaper gate
};

std::vector<Workload> MakeWorkloads() {
  std::vector<Workload> workloads;
  for (int depth : {3, 4, 5, 6}) {
    auto query = MakeHiddenJoinQuery(depth);
    KOLA_CHECK_OK(query.status());
    workloads.push_back({"hidden_join/depth" + std::to_string(depth),
                         std::move(query).value(), /*hidden_join=*/true});
  }
  workloads.push_back({"garage/kg1", GarageQueryKG1(), /*hidden_join=*/true});
  workloads.push_back({"code_motion/k3", QueryK3(), false});
  workloads.push_back({"code_motion/k4", QueryK4(), false});
  auto parse = [](const char* text) {
    auto term = ParseTerm(text, Sort::kObject);
    KOLA_CHECK_OK(term.status());
    return std::move(term).value();
  };
  workloads.push_back(
      {"join/self_join_ages",
       parse("join(eq @ (age x age), (pi1, pi2)) ! [P, P]"), false});
  workloads.push_back(
      {"iterate/predicate_chain",
       parse("iterate(Kp(T) & Kp(T), id o age) ! P"), false});
  return workloads;
}

struct Row {
  std::string name;
  bool hidden_join = false;
  double greedy_cost = 0;
  double egraph_cost = 0;
  bool cheaper = false;      // egraph strictly beat greedy
  double greedy_ms = 0;      // best-of-reps wall clock
  double egraph_ms = 0;
  EGraphStats stats;         // from the egraph run
};

/// One workload through both pipelines. Timing is best-of-`repetitions`;
/// costs come from the final rep (plans are deterministic, so every rep
/// produces the same pair).
Row MeasureWorkload(const Workload& workload, Optimizer* greedy,
                    Optimizer* saturating, const CostModel& model,
                    int repetitions) {
  Row row;
  row.name = workload.name;
  row.hidden_join = workload.hidden_join;
  TermPtr greedy_plan;
  TermPtr egraph_plan;
  for (int rep = 0; rep < repetitions; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto base = greedy->Optimize(workload.query);
    auto mid = std::chrono::steady_clock::now();
    auto with = saturating->Optimize(workload.query);
    auto end = std::chrono::steady_clock::now();
    KOLA_CHECK_OK(base.status());
    KOLA_CHECK_OK(with.status());
    KOLA_CHECK(!with->degradation.degraded);
    double greedy_ms =
        std::chrono::duration<double, std::milli>(mid - start).count();
    double egraph_ms =
        std::chrono::duration<double, std::milli>(end - mid).count();
    if (rep == 0 || greedy_ms < row.greedy_ms) row.greedy_ms = greedy_ms;
    if (rep == 0 || egraph_ms < row.egraph_ms) row.egraph_ms = egraph_ms;
    greedy_plan = base->query;
    egraph_plan = with->query;
    row.stats = with->egraph;
  }
  auto greedy_cost = model.EstimateQueryCost(greedy_plan);
  auto egraph_cost = model.EstimateQueryCost(egraph_plan);
  KOLA_CHECK_OK(greedy_cost.status());
  KOLA_CHECK_OK(egraph_cost.status());
  row.greedy_cost = greedy_cost.value();
  row.egraph_cost = egraph_cost.value();
  row.cheaper = row.egraph_cost < row.greedy_cost;
  return row;
}

std::vector<Row> RunTable(int repetitions) {
  const PropertyStore properties = PropertyStore::Default();
  CarWorldOptions world;
  world.num_persons = 24;
  world.num_vehicles = 12;
  world.num_addresses = 10;
  auto db = BuildCarWorld(world);
  RewriterOptions egraph_on = RewriterOptions::Defaults();
  egraph_on.use_egraph = true;
  RewriterOptions egraph_off = egraph_on;
  egraph_off.use_egraph = false;
  Optimizer greedy(&properties, db.get(), egraph_off);
  Optimizer saturating(&properties, db.get(), egraph_on);
  CostModel model(db.get());

  std::vector<Row> rows;
  std::printf("== greedy vs equality saturation ==\n");
  std::printf("%-26s  %12s  %12s  %8s  %9s  %9s  %6s  %5s  %5s\n", "workload",
              "greedy_cost", "egraph_cost", "cheaper", "greedy_ms",
              "egraph_ms", "nodes", "rules", "sat");
  for (const Workload& workload : MakeWorkloads()) {
    Row row = MeasureWorkload(workload, &greedy, &saturating, model,
                              repetitions);
    std::printf("%-26s  %12.1f  %12.1f  %8s  %9.2f  %9.2f  %6llu  %5llu"
                "  %5s\n",
                row.name.c_str(), row.greedy_cost, row.egraph_cost,
                row.cheaper ? "yes" : "tie",
                row.greedy_ms, row.egraph_ms,
                static_cast<unsigned long long>(row.stats.nodes),
                static_cast<unsigned long long>(row.stats.rule_applications),
                row.stats.saturated ? "yes" : "no");
    rows.push_back(std::move(row));
  }
  std::printf("\n");
  return rows;
}

void WriteJson(const std::vector<Row>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  bool never_worse = true;
  bool cheaper_on_hidden_join = false;
  for (const Row& row : rows) {
    never_worse &= row.egraph_cost <= row.greedy_cost;
    cheaper_on_hidden_join |= row.hidden_join && row.cheaper;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_egraph\",\n");
  std::fprintf(f, "  \"never_worse_than_greedy\": %s,\n",
               never_worse ? "true" : "false");
  std::fprintf(f, "  \"cheaper_on_hidden_join\": %s,\n",
               cheaper_on_hidden_join ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"hidden_join\": %s, "
        "\"greedy_cost\": %.3f, \"egraph_cost\": %.3f, \"cheaper\": %s, "
        "\"greedy_ms\": %.3f, \"egraph_ms\": %.3f, "
        "\"egraph\": {\"nodes\": %llu, \"classes\": %llu, "
        "\"rule_applications\": %llu, \"saturated\": %s}}%s\n",
        row.name.c_str(), row.hidden_join ? "true" : "false",
        row.greedy_cost, row.egraph_cost, row.cheaper ? "true" : "false",
        row.greedy_ms, row.egraph_ms,
        static_cast<unsigned long long>(row.stats.nodes),
        static_cast<unsigned long long>(row.stats.classes),
        static_cast<unsigned long long>(row.stats.rule_applications),
        row.stats.saturated ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path.c_str());
}

/// CI gate (--assert): the backend's two promises, as exit status.
int CheckAssertions(const std::vector<Row>& rows) {
  int failures = 0;
  bool cheaper_on_hidden_join = false;
  for (const Row& row : rows) {
    if (row.egraph_cost > row.greedy_cost) {
      std::fprintf(stderr,
                   "ASSERT FAIL: %s: egraph plan costs %.3f > greedy %.3f\n",
                   row.name.c_str(), row.egraph_cost, row.greedy_cost);
      ++failures;
    }
    cheaper_on_hidden_join |= row.hidden_join && row.cheaper;
  }
  if (!cheaper_on_hidden_join) {
    std::fprintf(stderr,
                 "ASSERT FAIL: no hidden-join workload was strictly cheaper "
                 "under saturation\n");
    ++failures;
  }
  if (failures == 0) std::printf("assertions: all passed\n");
  return failures;
}

// ---------------------------------------------------------------------------
// Google-benchmark microbenches for the saturation phase itself.
// ---------------------------------------------------------------------------

void BM_OptimizeGreedy(benchmark::State& state) {
  const PropertyStore properties = PropertyStore::Default();
  auto db = BuildCarWorld(CarWorldOptions{});
  Optimizer optimizer(&properties, db.get());
  auto query = MakeHiddenJoinQuery(static_cast<int>(state.range(0)));
  KOLA_CHECK_OK(query.status());
  for (auto _ : state) {
    auto result = optimizer.Optimize(query.value());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimizeGreedy)->Arg(4)->Arg(6);

void BM_OptimizeSaturating(benchmark::State& state) {
  const PropertyStore properties = PropertyStore::Default();
  auto db = BuildCarWorld(CarWorldOptions{});
  RewriterOptions options = RewriterOptions::Defaults();
  options.use_egraph = true;
  Optimizer optimizer(&properties, db.get(), options);
  auto query = MakeHiddenJoinQuery(static_cast<int>(state.range(0)));
  KOLA_CHECK_OK(query.status());
  for (auto _ : state) {
    auto result = optimizer.Optimize(query.value());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimizeSaturating)->Arg(4)->Arg(6);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  std::string out = "BENCH_egraph.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    if (std::strcmp(argv[i], "--assert") == 0) check = true;
  }
  std::vector<kola::Row> rows = kola::RunTable(3);
  kola::WriteJson(rows, out);
  if (check) {
    int failures = kola::CheckAssertions(rows);
    if (failures != 0) return 1;
    return 0;  // skip microbenches in CI's assert mode
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
