// Experiment E5 (Sections 2-3): rule matching over KOLA needs unification
// only; matching "the same" transformations over AQUA needs supplemental
// analysis. We measure (a) raw KOLA matcher throughput on realistic terms,
// (b) the KOLA code-motion applicability test (one failed match on K3, one
// successful on K4), and (c) the AQUA equivalent including the freeness
// head routine.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "aqua/transform.h"
#include "common/macros.h"
#include "optimizer/code_motion.h"
#include "optimizer/explore.h"
#include "optimizer/hidden_join.h"
#include "rewrite/engine.h"
#include "rewrite/match.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

void PrintReproductionTable() {
  std::printf("== E5: matching -- unification vs supplemental analysis ==\n");
  std::vector<Rule> all = AllCatalogRules();
  Rewriter rewriter;
  TermPtr garage = GarageQueryKG1();

  int fireable = 0;
  for (const Rule& rule : all) {
    if (rewriter.ApplyOnce(rule, garage, nullptr)) ++fireable;
  }
  std::printf("catalog rules: %zu; fireable somewhere in KG1: %d\n",
              all.size(), fireable);
  std::printf("KOLA applicability of code motion = one structural match "
              "(rule 15 after decomposition); AQUA needs freeness "
              "analysis over the predicate subtree.\n\n");

  // Rule-based join exploration (Section 5's predicate-sorting theme):
  // alternatives come from rules, not from a predicate-binning routine.
  CarWorldOptions options;
  options.num_persons = 80;
  options.num_vehicles = 20;
  auto db = BuildCarWorld(options);
  CostModel model(db.get());
  auto query = ParseTerm(
      "join(gt @ (age x age) & Cp(lt, 60) @ age @ pi1, (pi1, pi2)) "
      "! [P, P]",
      Sort::kObject);
  KOLA_CHECK_OK(query.status());
  auto plans = ExploreJoinPlans(query.value(), rewriter, model);
  KOLA_CHECK_OK(plans.status());
  std::printf("join exploration on a filtered self-join: %zu candidate "
              "plans\n",
              plans->size());
  for (size_t i = 0; i < plans->size() && i < 4; ++i) {
    std::string derivation;
    for (const std::string& id : (*plans)[i].derivation) {
      if (!derivation.empty()) derivation += " ";
      derivation += id;
    }
    std::printf("  cost %10.0f  via [%s]\n", (*plans)[i].cost,
                derivation.empty() ? "input" : derivation.c_str());
  }
  std::printf("\n");
}

void BM_MatchRule11OnGarage(benchmark::State& state) {
  std::vector<Rule> all = AllCatalogRules();
  const Rule& rule = FindRule(all, "11");
  TermPtr garage = GarageQueryKG1();
  Rewriter rewriter;
  for (auto _ : state) {
    auto result = rewriter.ApplyOnce(rule, garage, nullptr);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MatchRule11OnGarage);

void BM_MatchWholeCatalogOnGarage(benchmark::State& state) {
  std::vector<Rule> all = AllCatalogRules();
  TermPtr garage = GarageQueryKG1();
  Rewriter rewriter;
  for (auto _ : state) {
    int hits = 0;
    for (const Rule& rule : all) {
      if (rewriter.ApplyOnce(rule, garage, nullptr)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_MatchWholeCatalogOnGarage);

void BM_MatchSuccessAtRoot(benchmark::State& state) {
  // Pure matcher cost: rule 17's lhs against the garage iterate.
  std::vector<Rule> all = AllCatalogRules();
  const Rule& rule = FindRule(all, "17");
  TermPtr fn = GarageQueryKG1()->child(0);
  for (auto _ : state) {
    Bindings bindings;
    bool matched = MatchTerm(rule.lhs, fn, &bindings);
    benchmark::DoNotOptimize(matched);
  }
}
BENCHMARK(BM_MatchSuccessAtRoot);

void BM_KolaCodeMotionApplicability(benchmark::State& state) {
  // One rule-match decides K3 vs K4.
  std::vector<Rule> all = AllCatalogRules();
  const Rule& rule15 = FindRule(all, "15");
  Rewriter rewriter;
  // Pre-decompose both queries so rule 15 is the decision point.
  auto decompose = [&](TermPtr q) {
    std::vector<Rule> prep = {FindRule(all, "13"), FindRule(all, "7"),
                              FindRule(all, "14")};
    auto result = rewriter.Fixpoint(prep, std::move(q), nullptr);
    KOLA_CHECK_OK(result.status());
    return std::move(result).value();
  };
  TermPtr k3 = decompose(QueryK3());
  TermPtr k4 = decompose(QueryK4());
  for (auto _ : state) {
    auto blocked = rewriter.ApplyOnce(rule15, k3, nullptr);
    auto fires = rewriter.ApplyOnce(rule15, k4, nullptr);
    benchmark::DoNotOptimize(blocked);
    benchmark::DoNotOptimize(fires);
  }
}
BENCHMARK(BM_KolaCodeMotionApplicability);

void BM_AquaCodeMotionApplicability(benchmark::State& state) {
  // The AQUA head routine runs freeness analysis on both queries.
  for (auto _ : state) {
    aqua::AquaTransformStats s3, s4;
    auto blocked = aqua::AquaCodeMotion(aqua::QueryA3(), &s3);
    auto fires = aqua::AquaCodeMotion(aqua::QueryA4(), &s4);
    benchmark::DoNotOptimize(blocked);
    benchmark::DoNotOptimize(fires);
  }
}
BENCHMARK(BM_AquaCodeMotionApplicability);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  kola::PrintReproductionTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
