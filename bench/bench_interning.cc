// Hash-consed interning + memoized rewriting: before/after numbers for the
// hot paths of bench_matching, bench_rule_pool and bench_hidden_join.
//
// "before" is the seed configuration (no construction-time interning, no
// Fixpoint negative-match memo); "after" enables both. Each workload's
// derivation trace is checked byte-identical across the two modes before
// its timing is reported, and the table is written to BENCH_interning.json
// (override with --out=PATH).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/macros.h"
#include "optimizer/explore.h"
#include "optimizer/hidden_join.h"
#include "rewrite/engine.h"
#include "rewrite/match.h"
#include "rules/catalog.h"
#include "term/intern.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

// ---------------------------------------------------------------------------
// Mode-parameterized workloads. Each returns a digest string (usually the
// derivation trace) that must agree across modes.
// ---------------------------------------------------------------------------

struct Mode {
  bool intern;
  bool memoize;
};

constexpr Mode kBefore{false, false};
constexpr Mode kAfter{true, true};

/// Cheap derivation digest: the fired rule ids plus the final term. (The
/// full byte-identity of traces across modes is asserted by intern_test;
/// here the digest must stay cheap so it does not dominate the timings.)
std::string TraceDigest(const Trace& trace, const TermPtr& final_term) {
  std::string digest;
  for (const std::string& id : trace.RuleIds()) {
    digest += id;
    digest += ' ';
  }
  digest += "=> ";
  digest += final_term->ToString();
  return digest;
}

Rewriter MakeRewriter(const Mode& mode) {
  // The compiled rule index (a later, independent axis) is pinned OFF in
  // both modes so this table isolates interning + memoization against the
  // seed linear scan; BENCH_rule_index.json covers the index axis.
  return Rewriter(nullptr, RewriterOptions{.memoize_fixpoint = mode.memoize,
                                           .use_rule_index = false});
}

std::vector<Rule> Fig4Rules() {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> rules;
  for (const char* id :
       {"11", "6", "5", "1", "13", "7", "ext.and-true-right"}) {
    rules.push_back(FindRule(all, id));
  }
  return rules;
}

/// bench_matching: every catalog rule probed against the garage query.
std::string WholeCatalogApplyOnce(const Mode& mode, int iters) {
  Rewriter rewriter = MakeRewriter(mode);
  std::vector<Rule> all = AllCatalogRules();
  TermPtr garage = GarageQueryKG1();
  int hits = 0;
  for (int i = 0; i < iters; ++i) {
    for (const Rule& rule : all) {
      if (rewriter.ApplyOnce(rule, garage, nullptr)) ++hits;
    }
  }
  return "hits=" + std::to_string(hits);
}

/// bench_matching: rule-based join exploration on a filtered self-join.
std::string JoinExploration(const Mode& mode, int iters) {
  Rewriter rewriter = MakeRewriter(mode);
  CarWorldOptions options;
  options.num_persons = 80;
  options.num_vehicles = 20;
  auto db = BuildCarWorld(options);
  CostModel model(db.get());
  auto query = ParseTerm(
      "join(gt @ (age x age) & Cp(lt, 60) @ age @ pi1, (pi1, pi2)) "
      "! [P, P]",
      Sort::kObject);
  KOLA_CHECK_OK(query.status());
  std::string digest;
  for (int i = 0; i < iters; ++i) {
    auto plans = ExploreJoinPlans(query.value(), rewriter, model);
    KOLA_CHECK_OK(plans.status());
    digest.clear();
    for (const Candidate& c : *plans) {
      for (const std::string& id : c.derivation) digest += id + " ";
      digest += "| ";
    }
  }
  return digest;
}

/// bench_rule_pool: the Figure 4 fusion fixpoints (T1 and T2 derivations).
std::string Fig4Fixpoints(const Mode& mode, int iters) {
  Rewriter rewriter = MakeRewriter(mode);
  std::vector<Rule> rules = Fig4Rules();
  const char* queries[] = {
      "iterate(Kp(T), city) o iterate(Kp(T), addr) ! P",
      "iterate(Kp(T), age) o iterate(gt @ (age, Kf(25)), id) ! P",
  };
  std::string digest;
  for (int i = 0; i < iters; ++i) {
    digest.clear();
    for (const char* text : queries) {
      auto query = ParseTerm(text, Sort::kObject);
      KOLA_CHECK_OK(query.status());
      Trace trace;
      auto fused = rewriter.Fixpoint(rules, query.value(), &trace);
      KOLA_CHECK_OK(fused.status());
      digest += TraceDigest(trace, fused.value());
    }
  }
  return digest;
}

/// bench_hidden_join: the garage query untangling (Figure 3 -> KG2).
std::string UntangleGarage(const Mode& mode, int iters) {
  Rewriter rewriter = MakeRewriter(mode);
  TermPtr garage = GarageQueryKG1();
  std::string digest;
  for (int i = 0; i < iters; ++i) {
    auto result = UntangleHiddenJoin(garage, rewriter);
    KOLA_CHECK_OK(result.status());
    digest = TraceDigest(result->trace, result->query);
  }
  return digest;
}

/// bench_hidden_join: deep synthetic hidden joins.
std::string UntangleDepth(const Mode& mode, int depth, int iters) {
  Rewriter rewriter = MakeRewriter(mode);
  auto query = MakeHiddenJoinQuery(depth);
  KOLA_CHECK_OK(query.status());
  std::string digest;
  for (int i = 0; i < iters; ++i) {
    auto result = UntangleHiddenJoin(query.value(), rewriter);
    KOLA_CHECK_OK(result.status());
    digest = TraceDigest(result->trace, result->query);
  }
  return digest;
}

// ---------------------------------------------------------------------------
// Harness: time each workload in both modes, check digests agree, emit the
// table and BENCH_interning.json.
// ---------------------------------------------------------------------------

using WorkloadFn = std::function<std::string(const Mode&, int)>;

struct Row {
  std::string name;
  double before_ms = 0;
  double after_ms = 0;
  double speedup = 0;
};

double TimeOnceMs(const WorkloadFn& fn, const Mode& mode, int iters) {
  ScopedInterning scope(mode.intern);
  auto start = std::chrono::steady_clock::now();
  std::string digest = fn(mode, iters);
  auto end = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(digest);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

Row Measure(const std::string& name, const WorkloadFn& fn, int iters,
            int repetitions = 9) {
  // Derivations and results must not depend on the mode.
  std::string before_digest, after_digest;
  {
    ScopedInterning scope(kBefore.intern);
    before_digest = fn(kBefore, 1);
  }
  {
    ScopedInterning scope(kAfter.intern);
    after_digest = fn(kAfter, 1);
  }
  KOLA_CHECK(before_digest == after_digest);

  Row row;
  row.name = name;
  row.before_ms = TimeOnceMs(fn, kBefore, iters);
  row.after_ms = TimeOnceMs(fn, kAfter, iters);
  for (int rep = 1; rep < repetitions; ++rep) {
    row.before_ms = std::min(row.before_ms, TimeOnceMs(fn, kBefore, iters));
    row.after_ms = std::min(row.after_ms, TimeOnceMs(fn, kAfter, iters));
  }
  row.speedup = row.after_ms > 0 ? row.before_ms / row.after_ms : 0;
  return row;
}

/// Accounting pass: the deepest workload re-run once under a pure-meter
/// governor (byte budget 0 never exhausts) with a private interner arena,
/// so the JSON records how many bytes the "after" configuration charges at
/// peak -- interner arena + fixpoint cache + frontier together.
int64_t MeasurePeakChargedBytes() {
  Governor meter{Governor::Limits{}};
  ScopedMemoryGovernor memory_scope(&meter);
  TermInterner arena;
  ScopedInterning interning(&arena);
  RewriterOptions options;
  options.memoize_fixpoint = true;
  options.use_rule_index = false;  // same configuration as the table
  options.governor = &meter;
  Rewriter rewriter(nullptr, options);
  auto query = MakeHiddenJoinQuery(10);
  KOLA_CHECK_OK(query.status());
  auto result = UntangleHiddenJoin(query.value(), rewriter);
  KOLA_CHECK_OK(result.status());
  return meter.memory().peak_bytes();
}

std::vector<Row> RunTable() {
  std::vector<Row> rows;
  std::printf("== interning + memoized rewriting: before/after ==\n");
  std::printf("%-42s %12s %12s %9s\n", "workload", "before(ms)", "after(ms)",
              "speedup");
  auto run = [&](const std::string& name, const WorkloadFn& fn, int iters) {
    Row row = Measure(name, fn, iters);
    std::printf("%-42s %12.2f %12.2f %8.2fx\n", row.name.c_str(),
                row.before_ms, row.after_ms, row.speedup);
    rows.push_back(std::move(row));
  };
  run("bench_matching/whole_catalog_apply_once", WholeCatalogApplyOnce, 40);
  run("bench_matching/join_exploration", JoinExploration, 3);
  run("bench_rule_pool/fig4_fixpoints", Fig4Fixpoints, 60);
  run("bench_hidden_join/untangle_garage", UntangleGarage, 40);
  run("bench_hidden_join/untangle_depth6",
      [](const Mode& m, int iters) { return UntangleDepth(m, 6, iters); },
      10);
  run("bench_hidden_join/untangle_depth8",
      [](const Mode& m, int iters) { return UntangleDepth(m, 8, iters); },
      5);
  run("bench_hidden_join/untangle_depth10",
      [](const Mode& m, int iters) { return UntangleDepth(m, 10, iters); },
      3);
  std::printf("\n");
  return rows;
}

void WriteJson(const std::vector<Row>& rows, int64_t peak_charged_bytes,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_interning\",\n");
  std::fprintf(f,
               "  \"before\": \"no interning, no fixpoint memo (seed)\",\n");
  std::fprintf(
      f, "  \"after\": \"KOLA_INTERN=1 + fixpoint negative-match memo\",\n");
  std::fprintf(f, "  \"traces_identical\": true,\n");
  std::fprintf(f, "  \"peak_charged_bytes\": %lld,\n",
               static_cast<long long>(peak_charged_bytes));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"before_ms\": %.3f, "
                 "\"after_ms\": %.3f, \"speedup\": %.2f}%s\n",
                 rows[i].name.c_str(), rows[i].before_ms, rows[i].after_ms,
                 rows[i].speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Google-benchmark microbenches for the interner itself.
// ---------------------------------------------------------------------------

void BM_EqualDeepTrees(benchmark::State& state) {
  bool interned = state.range(0) != 0;
  ScopedInterning scope(interned);
  auto a = MakeHiddenJoinQuery(6);
  auto b = MakeHiddenJoinQuery(6);
  KOLA_CHECK_OK(a.status());
  KOLA_CHECK_OK(b.status());
  for (auto _ : state) {
    bool eq = Term::Equal(a.value(), b.value());
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_EqualDeepTrees)->Arg(0)->Arg(1);

void BM_InternChurn(benchmark::State& state) {
  // Re-interning a freshly built deep tree: full rebuild against a warm
  // arena (all hits). Reports arena hit rate.
  TermInterner interner;
  {
    auto warm = MakeHiddenJoinQuery(6);
    KOLA_CHECK_OK(warm.status());
    interner.Intern(warm.value());
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto query = MakeHiddenJoinQuery(6);
    KOLA_CHECK_OK(query.status());
    state.ResumeTiming();
    TermPtr canon = interner.Intern(query.value());
    benchmark::DoNotOptimize(canon);
  }
  state.counters["arena_size"] = static_cast<double>(interner.size());
  state.counters["hit_rate"] =
      static_cast<double>(interner.hits()) /
      static_cast<double>(interner.hits() + interner.misses());
}
BENCHMARK(BM_InternChurn);

void BM_MatchCatalogOnGarage(benchmark::State& state) {
  bool interned = state.range(0) != 0;
  ScopedInterning scope(interned);
  std::vector<Rule> all = AllCatalogRules();
  TermPtr garage = GarageQueryKG1();
  Rewriter rewriter;
  for (auto _ : state) {
    int hits = 0;
    for (const Rule& rule : all) {
      if (rewriter.ApplyOnce(rule, garage, nullptr)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_MatchCatalogOnGarage)->Arg(0)->Arg(1);

void BM_UntangleGarageMemo(benchmark::State& state) {
  bool memo = state.range(0) != 0;
  ScopedInterning scope(memo);
  Rewriter rewriter(nullptr, RewriterOptions{.memoize_fixpoint = memo});
  TermPtr garage = GarageQueryKG1();
  for (auto _ : state) {
    auto result = UntangleHiddenJoin(garage, rewriter);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UntangleGarageMemo)->Arg(0)->Arg(1);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  std::string out = "BENCH_interning.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }
  std::vector<kola::Row> rows = kola::RunTable();
  int64_t peak = kola::MeasurePeakChargedBytes();
  std::printf("peak charged bytes (untangle_depth10, after): %lld\n",
              static_cast<long long>(peak));
  kola::WriteJson(rows, peak, out);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
