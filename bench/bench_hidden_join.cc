// Experiment F3/F7/F8 (Figures 3, 7, 8): untangling hidden joins.
//
// The gradual five-step strategy converts depth-n hidden joins for every n;
// the monolithic baseline (in the style the paper criticizes) handles only
// its hard-coded shape and must still dive arbitrarily deep to reject.
// Rows report rules fired, conversion success, and head-routine effort.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/macros.h"
#include "eval/evaluator.h"
#include "optimizer/hidden_join.h"
#include "optimizer/monolithic.h"
#include "rewrite/engine.h"
#include "values/car_world.h"

namespace kola {
namespace {

void PrintReproductionTable() {
  Rewriter rewriter;
  std::printf("== Figures 3/7/8: hidden-join untangling ==\n");
  std::printf("Garage query (Figure 3):\n");
  {
    auto result = UntangleHiddenJoin(GarageQueryKG1(), rewriter);
    KOLA_CHECK_OK(result.status());
    std::printf("  converted=%d rules-fired=%zu matches-KG2=%d\n",
                result->converted ? 1 : 0, result->trace.steps.size(),
                Term::Equal(result->query, GarageQueryKG2()) ? 1 : 0);
    std::printf("  result: %s\n", result->query->ToString().c_str());
  }

  std::printf("\n%-6s | %-28s | %-30s\n", "depth",
              "gradual (rules 17-24)", "monolithic ([12]-style)");
  std::printf("%-6s | %8s %9s %9s | %8s %10s %10s\n", "", "convert",
              "rules", "nodes", "convert", "head-ops", "body-ops");
  for (int depth = 1; depth <= 8; ++depth) {
    auto query = MakeHiddenJoinQuery(depth);
    KOLA_CHECK_OK(query.status());
    auto gradual = UntangleHiddenJoin(query.value(), rewriter);
    KOLA_CHECK_OK(gradual.status());
    MonolithicStats stats;
    auto monolithic = MonolithicHiddenJoin(query.value(), &stats);
    std::printf("%-6d | %8d %9zu %9zu | %8d %10d %10d\n", depth,
                gradual->converted ? 1 : 0, gradual->trace.steps.size(),
                gradual->query->node_count(), monolithic.ok() ? 1 : 0,
                stats.head_nodes_visited, stats.body_nodes_built);
  }
  // The monolithic rule's one success: the garage shape itself.
  MonolithicStats garage_stats;
  auto garage = MonolithicHiddenJoin(GarageQueryKG1(), &garage_stats);
  std::printf("garage | %8s %9s %9s | %8d %10d %10d\n", "-", "-", "-",
              garage.ok() ? 1 : 0, garage_stats.head_nodes_visited,
              garage_stats.body_nodes_built);
  std::printf("\n");
}

void BM_UntangleGarageQuery(benchmark::State& state) {
  Rewriter rewriter;
  TermPtr query = GarageQueryKG1();
  for (auto _ : state) {
    auto result = UntangleHiddenJoin(query, rewriter);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UntangleGarageQuery);

void BM_UntangleByDepth(benchmark::State& state) {
  Rewriter rewriter;
  auto query = MakeHiddenJoinQuery(static_cast<int>(state.range(0)));
  KOLA_CHECK_OK(query.status());
  for (auto _ : state) {
    auto result = UntangleHiddenJoin(query.value(), rewriter);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UntangleByDepth)->DenseRange(1, 8);

void BM_MonolithicGarage(benchmark::State& state) {
  TermPtr query = GarageQueryKG1();
  for (auto _ : state) {
    MonolithicStats stats;
    auto result = MonolithicHiddenJoin(query, &stats);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MonolithicGarage);

void BM_HiddenJoinEvalBeforeAfter(benchmark::State& state) {
  // End-to-end: evaluation cost before vs after untangling at depth 2.
  CarWorldOptions options;
  options.num_persons = state.range(0);
  options.seed = 3;
  auto db = BuildCarWorld(options);
  Rewriter rewriter;
  auto query = MakeHiddenJoinQuery(2);
  KOLA_CHECK_OK(query.status());
  auto untangled = UntangleHiddenJoin(query.value(), rewriter);
  KOLA_CHECK_OK(untangled.status());
  bool after = state.range(1) != 0;
  TermPtr target = after ? untangled->query : query.value();
  for (auto _ : state) {
    auto result = EvalQuery(*db, target);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HiddenJoinEvalBeforeAfter)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({80, 0})
    ->Args({80, 1});

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  kola::PrintReproductionTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
