// Section 6 extension: deferring duplicate elimination with bag
// intermediates. The paper: "optimizations that defer duplicate
// elimination can be expressed as transformations that produce bags as
// intermediate results". We measure the eager set pipeline (dedup at every
// stage) against the deferred bag pipeline (one final distinct) on a
// flatten-heavy query, plus the rewrite itself.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/macros.h"
#include "eval/evaluator.h"
#include "rewrite/engine.h"
#include "rules/catalog.h"
#include "term/parser.h"
#include "values/car_world.h"

namespace kola {
namespace {

std::unique_ptr<Database> MakeDb(int64_t persons) {
  CarWorldOptions options;
  options.num_persons = persons;
  options.max_children = 6;
  options.seed = 17;
  return BuildCarWorld(options);
}

// Eager (set) pipeline: every stage deduplicates.
const char kEager[] =
    "flat ! (iterate(Kp(T), child) ! (flat ! (iterate(Kp(T), child) ! "
    "P)))";
// Deferred (bag) pipeline: identical shape over bags, one final distinct.
const char kDeferred[] =
    "distinct ! (flat ! (iterate(Kp(T), child) ! (flat ! "
    "(iterate(Kp(T), child) ! (tobag ! P)))))";

void PrintReproductionTable() {
  std::printf("== Section 6: deferred duplicate elimination ==\n");
  std::printf("%8s %14s %14s %8s\n", "|P|", "eager result", "deferred",
              "equal");
  for (int64_t persons : {50, 200, 800}) {
    auto db = MakeDb(persons);
    auto eager = ParseQuery(kEager);
    auto deferred = ParseQuery(kDeferred);
    KOLA_CHECK_OK(eager.status());
    KOLA_CHECK_OK(deferred.status());
    auto eager_value = EvalQuery(*db, eager.value());
    auto deferred_value = EvalQuery(*db, deferred.value());
    KOLA_CHECK_OK(eager_value.status());
    KOLA_CHECK_OK(deferred_value.status());
    std::printf("%8lld %14zu %14zu %8s\n",
                static_cast<long long>(persons),
                eager_value.value().SetSize(),
                deferred_value.value().SetSize(),
                eager_value.value() == deferred_value.value() ? "yes"
                                                              : "NO");
  }
  std::printf(
      "(Finding: in THIS evaluator the deferred pipeline loses -- values\n"
      " are kept canonically sorted, so per-stage dedup is nearly free,\n"
      " while bag intermediates grow with every duplicated child. The\n"
      " rewrite is semantics-preserving either way; whether to defer is a\n"
      " cost-model decision, which is exactly why the paper wants it\n"
      " expressible as a reversible rule rather than hard-coded.)\n\n");
}

void BM_EagerSetPipeline(benchmark::State& state) {
  auto db = MakeDb(state.range(0));
  auto query = ParseQuery(kEager);
  KOLA_CHECK_OK(query.status());
  for (auto _ : state) {
    auto result = EvalQuery(*db, query.value());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EagerSetPipeline)->Arg(50)->Arg(200)->Arg(800);

void BM_DeferredBagPipeline(benchmark::State& state) {
  auto db = MakeDb(state.range(0));
  auto query = ParseQuery(kDeferred);
  KOLA_CHECK_OK(query.status());
  for (auto _ : state) {
    auto result = EvalQuery(*db, query.value());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DeferredBagPipeline)->Arg(50)->Arg(200)->Arg(800);

void BM_DedupDeferralRewrite(benchmark::State& state) {
  std::vector<Rule> rules = BagRules();
  Rewriter rewriter;
  auto query = ParseTerm(
      "distinct o iterate(Kp(T), child) o distinct o "
      "iterate(Kp(T), child) o distinct",
      Sort::kFunction);
  KOLA_CHECK_OK(query.status());
  for (auto _ : state) {
    auto result = rewriter.Fixpoint(rules, query.value(), nullptr);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DedupDeferralRewrite);

}  // namespace
}  // namespace kola

int main(int argc, char** argv) {
  kola::PrintReproductionTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
