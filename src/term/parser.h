#ifndef KOLA_TERM_PARSER_H_
#define KOLA_TERM_PARSER_H_

#include <string_view>

#include "common/statusor.h"
#include "term/term.h"

namespace kola {

/// Parses the library's concrete KOLA syntax (the output of
/// Term::ToString). Grammar, loosest binding first:
///
///   expr   := cmp ( ('!' | '?') expr )?            -- apply, right assoc
///   cmp    := orp
///   orp    := andp ( '|' andp )*
///   andp   := oplus ( '&' oplus )*
///   oplus  := prod ( '@' prod )*
///   prod   := comp ( 'x' comp )*
///   comp   := atom ( 'o' comp )?                   -- right assoc
///   atom   := INT | STRING | IDENT | '?' IDENT
///           | FORMER '(' expr (',' expr)* ')'
///           | '(' expr ')' | '(' expr ',' expr ')' -- group / pair-former
///           | '[' expr ',' expr ']'                -- object pair
///           | '{' (literal (',' literal)*)? '}'    -- set literal
///
/// FORMER is one of: Kf Cf con Kp Cp inv not iterate iter join nest unnest.
/// Elaboration is sort-directed: the same identifier is a primitive
/// function in function position, a primitive predicate in predicate
/// position, and a collection reference in object position. `T`/`F` denote
/// the boolean constants (only valid where a bool is expected, e.g. inside
/// `Kp`). Metavariables `?name` take their sort from the first letter of
/// the name, following the paper's conventions: f g h j -> function,
/// p q -> predicate, b -> bool, anything else -> object.
///
/// Note the identifiers `o` and `x` are reserved as infix operators.
StatusOr<TermPtr> ParseTerm(std::string_view text, Sort expected);

/// Convenience wrappers.
StatusOr<TermPtr> ParseFunction(std::string_view text);
StatusOr<TermPtr> ParsePredicate(std::string_view text);
/// Object-sorted terms, e.g. full queries `iterate(...) ! P`.
StatusOr<TermPtr> ParseQuery(std::string_view text);

}  // namespace kola

#endif  // KOLA_TERM_PARSER_H_
