#include <sstream>
#include <vector>

#include "common/macros.h"
#include "term/term.h"

namespace kola {

namespace {

// Binding strength used for parenthesization. Mirrors the parser's grammar:
//   0: ! ?   (right associative, loosest)
//   1: |
//   2: &
//   3: @     (left associative)
//   4: x     (left associative)
//   5: o     (right associative)
//   6: atoms
int Level(TermKind kind) {
  switch (kind) {
    case TermKind::kApplyFn:
    case TermKind::kApplyPred:
      return 0;
    case TermKind::kOrP:
      return 1;
    case TermKind::kAndP:
      return 2;
    case TermKind::kOplus:
      return 3;
    case TermKind::kProduct:
      return 4;
    case TermKind::kCompose:
      return 5;
    default:
      return 6;
  }
}

/// One unit of pending output: either a literal piece of text or a term
/// still to be rendered. Printing walks an explicit job stack instead of
/// recursing, so adversarially deep terms (a 100k-node compose spine)
/// render without touching the native stack.
struct PrintJob {
  const Term* term;  // nullptr for a text job
  const char* text;  // used when term is nullptr
};

void Print(const Term& root, std::ostream& os) {
  std::vector<PrintJob> stack = {{&root, nullptr}};
  // Scratch buffer for the current node's output units, emitted in
  // left-to-right order, then pushed onto the stack reversed (LIFO).
  std::vector<PrintJob> parts;
  auto text = [&parts](const char* t) { parts.push_back({nullptr, t}); };
  // Renders `child` where contexts of binding strength `min_level` demand
  // parentheses around anything looser.
  auto sub = [&](const TermPtr& child, int min_level) {
    if (Level(child->kind()) < min_level) {
      text("(");
      parts.push_back({child.get(), nullptr});
      text(")");
    } else {
      parts.push_back({child.get(), nullptr});
    }
  };
  auto binary = [&](const Term& term, const char* op, int level,
                    bool right_assoc) {
    sub(term.child(0), right_assoc ? level + 1 : level);
    text(" ");
    text(op);
    text(" ");
    sub(term.child(1), right_assoc ? level : level + 1);
  };
  auto call = [&](const char* name, const Term& term) {
    text(name);
    text("(");
    for (size_t i = 0; i < term.arity(); ++i) {
      if (i > 0) text(", ");
      sub(term.child(i), 0);
    }
    text(")");
  };

  while (!stack.empty()) {
    PrintJob job = stack.back();
    stack.pop_back();
    if (job.term == nullptr) {
      os << job.text;
      continue;
    }
    const Term& term = *job.term;
    parts.clear();
    switch (term.kind()) {
      case TermKind::kPrimFn:
      case TermKind::kPrimPred:
      case TermKind::kCollection:
        os << term.name();
        continue;
      case TermKind::kLiteral:
        os << term.literal().ToString();
        continue;
      case TermKind::kBoolConst:
        os << (term.bool_const() ? 'T' : 'F');
        continue;
      case TermKind::kMetaVar:
        os << '?' << term.name();
        continue;
      case TermKind::kCompose:
        binary(term, "o", 5, /*right_assoc=*/true);
        break;
      case TermKind::kProduct:
        binary(term, "x", 4, /*right_assoc=*/false);
        break;
      case TermKind::kOplus:
        binary(term, "@", 3, /*right_assoc=*/false);
        break;
      case TermKind::kAndP:
        binary(term, "&", 2, /*right_assoc=*/false);
        break;
      case TermKind::kOrP:
        binary(term, "|", 1, /*right_assoc=*/false);
        break;
      case TermKind::kApplyFn:
        binary(term, "!", 0, /*right_assoc=*/true);
        break;
      case TermKind::kApplyPred:
        binary(term, "?", 0, /*right_assoc=*/true);
        break;
      case TermKind::kPairFn:
        text("(");
        sub(term.child(0), 0);
        text(", ");
        sub(term.child(1), 0);
        text(")");
        break;
      case TermKind::kPairObj:
        text("[");
        sub(term.child(0), 0);
        text(", ");
        sub(term.child(1), 0);
        text("]");
        break;
      case TermKind::kConstFn:
        call("Kf", term);
        break;
      case TermKind::kCurryFn:
        call("Cf", term);
        break;
      case TermKind::kCond:
        call("con", term);
        break;
      case TermKind::kInvP:
        call("inv", term);
        break;
      case TermKind::kNotP:
        call("not", term);
        break;
      case TermKind::kConstPred:
        call("Kp", term);
        break;
      case TermKind::kCurryPred:
        call("Cp", term);
        break;
      case TermKind::kIterate:
        call("iterate", term);
        break;
      case TermKind::kIter:
        call("iter", term);
        break;
      case TermKind::kJoin:
        call("join", term);
        break;
      case TermKind::kNest:
        call("nest", term);
        break;
      case TermKind::kUnnest:
        call("unnest", term);
        break;
    }
    for (size_t i = parts.size(); i > 0; --i) stack.push_back(parts[i - 1]);
  }
}

}  // namespace

std::string Term::ToString() const {
  std::ostringstream os;
  Print(*this, os);
  return os.str();
}

}  // namespace kola
