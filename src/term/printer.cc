#include <sstream>

#include "common/macros.h"
#include "term/term.h"

namespace kola {

namespace {

// Binding strength used for parenthesization. Mirrors the parser's grammar:
//   0: ! ?   (right associative, loosest)
//   1: |
//   2: &
//   3: @     (left associative)
//   4: x     (left associative)
//   5: o     (right associative)
//   6: atoms
int Level(TermKind kind) {
  switch (kind) {
    case TermKind::kApplyFn:
    case TermKind::kApplyPred:
      return 0;
    case TermKind::kOrP:
      return 1;
    case TermKind::kAndP:
      return 2;
    case TermKind::kOplus:
      return 3;
    case TermKind::kProduct:
      return 4;
    case TermKind::kCompose:
      return 5;
    default:
      return 6;
  }
}

void Print(const Term& term, int min_level, std::ostream& os);

void PrintChild(const TermPtr& child, int min_level, std::ostream& os) {
  bool parens = Level(child->kind()) < min_level;
  if (parens) os << '(';
  Print(*child, parens ? 0 : min_level, os);
  if (parens) os << ')';
}

void PrintBinary(const Term& term, const char* op, int level, bool right_assoc,
                 std::ostream& os) {
  int left_min = right_assoc ? level + 1 : level;
  int right_min = right_assoc ? level : level + 1;
  PrintChild(term.child(0), left_min, os);
  os << ' ' << op << ' ';
  PrintChild(term.child(1), right_min, os);
}

void PrintCall(const char* name, const Term& term, std::ostream& os) {
  os << name << '(';
  for (size_t i = 0; i < term.arity(); ++i) {
    if (i > 0) os << ", ";
    Print(*term.child(i), 0, os);
  }
  os << ')';
}

void Print(const Term& term, int min_level, std::ostream& os) {
  switch (term.kind()) {
    case TermKind::kPrimFn:
    case TermKind::kPrimPred:
    case TermKind::kCollection:
      os << term.name();
      return;
    case TermKind::kLiteral:
      os << term.literal().ToString();
      return;
    case TermKind::kBoolConst:
      os << (term.bool_const() ? 'T' : 'F');
      return;
    case TermKind::kMetaVar:
      os << '?' << term.name();
      return;
    case TermKind::kCompose:
      PrintBinary(term, "o", 5, /*right_assoc=*/true, os);
      return;
    case TermKind::kProduct:
      PrintBinary(term, "x", 4, /*right_assoc=*/false, os);
      return;
    case TermKind::kOplus:
      PrintBinary(term, "@", 3, /*right_assoc=*/false, os);
      return;
    case TermKind::kAndP:
      PrintBinary(term, "&", 2, /*right_assoc=*/false, os);
      return;
    case TermKind::kOrP:
      PrintBinary(term, "|", 1, /*right_assoc=*/false, os);
      return;
    case TermKind::kApplyFn:
      PrintBinary(term, "!", 0, /*right_assoc=*/true, os);
      return;
    case TermKind::kApplyPred:
      PrintBinary(term, "?", 0, /*right_assoc=*/true, os);
      return;
    case TermKind::kPairFn:
      os << '(';
      Print(*term.child(0), 0, os);
      os << ", ";
      Print(*term.child(1), 0, os);
      os << ')';
      return;
    case TermKind::kPairObj:
      os << '[';
      Print(*term.child(0), 0, os);
      os << ", ";
      Print(*term.child(1), 0, os);
      os << ']';
      return;
    case TermKind::kConstFn:
      PrintCall("Kf", term, os);
      return;
    case TermKind::kCurryFn:
      PrintCall("Cf", term, os);
      return;
    case TermKind::kCond:
      PrintCall("con", term, os);
      return;
    case TermKind::kInvP:
      PrintCall("inv", term, os);
      return;
    case TermKind::kNotP:
      PrintCall("not", term, os);
      return;
    case TermKind::kConstPred:
      PrintCall("Kp", term, os);
      return;
    case TermKind::kCurryPred:
      PrintCall("Cp", term, os);
      return;
    case TermKind::kIterate:
      PrintCall("iterate", term, os);
      return;
    case TermKind::kIter:
      PrintCall("iter", term, os);
      return;
    case TermKind::kJoin:
      PrintCall("join", term, os);
      return;
    case TermKind::kNest:
      PrintCall("nest", term, os);
      return;
    case TermKind::kUnnest:
      PrintCall("unnest", term, os);
      return;
  }
  KOLA_CHECK(false);
}

}  // namespace

std::string Term::ToString() const {
  std::ostringstream os;
  Print(*this, 0, os);
  return os.str();
}

}  // namespace kola
