#ifndef KOLA_TERM_TERM_H_
#define KOLA_TERM_TERM_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "values/value.h"

namespace kola {

class Term;
class TermInterner;
/// Terms are immutable and shared; rewriting builds new spines over shared
/// subtrees.
using TermPtr = std::shared_ptr<const Term>;

/// Dense identifier assigned by a TermInterner; 0 means "not interned".
/// Stable for the lifetime of the arena that assigned it.
using TermId = uint64_t;

/// Sort (algebraic type) of a KOLA term. `Bool` is a subsort of `Object`
/// (a boolean result like `p ? x` can stand wherever an object is expected).
enum class Sort {
  kFunction,
  kPredicate,
  kObject,
  kBool,
};

const char* SortToString(Sort sort);

/// True when a term of sort `actual` may appear where `expected` is
/// required (identity, or Bool where Object is expected).
bool SortMatches(Sort expected, Sort actual);

/// Every syntactic construct of the KOLA algebra (Tables 1 and 2 of the
/// paper), plus invocation (`!`, `?`), object pairs, literals, collection
/// references, and the metavariables used by rewrite-rule patterns.
enum class TermKind {
  // ----- Leaves -----
  kPrimFn,     // named primitive function: id, pi1, pi2, flat, age, addr, ...
  kPrimPred,   // named primitive predicate: eq, lt, leq, gt, in, ...
  kLiteral,    // embedded runtime Value (int, string, set, ...)
  kCollection, // named database extent: P, V, ...
  kBoolConst,  // T or F (argument of Kp)
  kMetaVar,    // sorted pattern variable; only valid inside rule patterns

  // ----- Function formers (Table 1) -----
  kCompose,    // f o g          (f o g) ! x = f ! (g ! x)
  kPairFn,     // (f, g)         (f, g) ! x = [f!x, g!x]
  kProduct,    // f x g          (f x g) ! [x,y] = [f!x, g!y]
  kConstFn,    // Kf(v)          Kf(v) ! y = v
  kCurryFn,    // Cf(f, v)       Cf(f, v) ! y = f ! [v, y]
  kCond,       // con(p, f, g)   con(p,f,g) ! x = p?x ? f!x : g!x

  // ----- Predicate formers (Table 1) -----
  kOplus,      // p @ f          (p @ f) ? x = p ? (f ! x)
  kAndP,       // p & q
  kOrP,        // p | q
  kInvP,       // inv(p)         inv(p) ? [x,y] = p ? [y,x]
  kNotP,       // not(p)         negation (extension used by the CNF block)
  kConstPred,  // Kp(b)          Kp(b) ? x = b
  kCurryPred,  // Cp(p, v)       Cp(p, v) ? y = p ? [v, y]

  // ----- Query formers (Table 2) -----
  kIterate,    // iterate(p, f) ! A     = { f!x   | x in A, p?x }
  kIter,       // iter(p, f) ! [e, B]   = { f![e,y] | y in B, p?[e,y] }
  kJoin,       // join(p, f) ! [A, B]   = { f![x,y] | x in A, y in B, p?[x,y] }
  kNest,       // nest(f, g) ! [A, B]   = { [y, {g!x | x in A, f!x = y}] | y in B }
  kUnnest,     // unnest(f, g) ! A      = { [f!x, y] | x in A, y in g!x }

  // ----- Object-level constructs -----
  kApplyFn,    // f ! x
  kApplyPred,  // p ? x
  kPairObj,    // [x, y]
};

const char* TermKindToString(TermKind kind);

/// An immutable node of a KOLA term tree. Construct via the checked factory
/// Term::Make (parser, generic code) or via the builder functions below
/// (library code; they KOLA_CHECK well-sortedness).
class Term {
 public:
  /// Validated construction. `name` is used by kPrimFn/kPrimPred/
  /// kCollection/kMetaVar; `literal` by kLiteral; `bool_const` by
  /// kBoolConst; `sort_hint` gives a kMetaVar its sort. Children must match
  /// the arity and sorts of `kind`.
  static StatusOr<TermPtr> Make(TermKind kind, std::vector<TermPtr> children,
                                std::string name = "",
                                Value literal = Value::Null(),
                                bool bool_const = false,
                                Sort sort_hint = Sort::kObject);

  TermKind kind() const { return kind_; }
  Sort sort() const { return sort_; }
  const std::string& name() const { return name_; }
  const Value& literal() const { return literal_; }
  bool bool_const() const { return bool_const_; }
  const std::vector<TermPtr>& children() const { return children_; }
  const TermPtr& child(size_t i) const { return children_[i]; }
  size_t arity() const { return children_.size(); }

  bool is_leaf() const { return children_.empty(); }
  bool is_metavar() const { return kind_ == TermKind::kMetaVar; }

  /// True for the primitive function/predicate with this exact name.
  bool IsPrimFn(const std::string& name) const {
    return kind_ == TermKind::kPrimFn && name_ == name;
  }
  bool IsPrimPred(const std::string& name) const {
    return kind_ == TermKind::kPrimPred && name_ == name;
  }

  /// Cached structural hash (consistent with Equal).
  size_t hash() const { return hash_; }

  /// Platform-stable structural hash: explicit FNV-1a/mix steps over kind /
  /// sort / name / payload / children, with literals hashed through their
  /// rendered form (Value::ToString is deterministic). Unlike hash() it
  /// never routes through std::hash, so the value is identical across
  /// platforms and standard libraries and safe to persist (it seeds
  /// RuleSetFingerprint, the key of the fixpoint-cache and rule-index
  /// pools). Computed on first call and cached on the node (terms are
  /// immutable); the walk is iterative, so deep spines are safe.
  uint64_t stable_hash() const;

  /// Cached number of nodes in this subtree (the paper's size metric).
  size_t node_count() const { return node_count_; }

  /// True when the subtree contains at least one metavariable (i.e. is a
  /// pattern rather than a ground term).
  bool has_metavars() const { return has_metavars_; }

  /// True when this term is the canonical representative of some
  /// TermInterner arena (see term/intern.h).
  bool interned() const {
    return intern_epoch_.load(std::memory_order_acquire) != 0;
  }

  /// The dense id assigned by the interning arena, 0 when not interned.
  TermId intern_id() const {
    return intern_id_.load(std::memory_order_relaxed);
  }

  /// Deep structural equality (pointer and hash fast paths; O(1) between
  /// terms canonicalized by the same TermInterner arena).
  static bool Equal(const TermPtr& a, const TermPtr& b);

  /// Rebuilds this node over new children (same kind/name/literal).
  /// Aborts if the result would be ill-sorted; callers guarantee
  /// sort-preserving children (rewrite spines). For data-driven rebuilds
  /// where ill-sorted children are possible, use TryWithChildren.
  TermPtr WithChildren(std::vector<TermPtr> children) const;

  /// As WithChildren, but surfaces an InvalidArgument/TypeError Status on an
  /// ill-sorted rebuild instead of aborting. The entry point for callers
  /// whose replacement children come from outside the library (e.g. the
  /// soundness shrinker's candidate reductions).
  StatusOr<TermPtr> TryWithChildren(std::vector<TermPtr> children) const;

  /// Renders in the library's concrete syntax (parseable by ParseTerm).
  std::string ToString() const;

  /// Iterative teardown: deep chains are destroyed with an explicit
  /// worklist so the recursive ~shared_ptr cascade cannot overflow the
  /// native stack. Public because the shared_ptr control block disposes
  /// of nodes; terms are only created through Make/NewNode.
  ~Term();

 private:
  friend class TermInterner;
  Term() = default;

  /// Builds a node without sort validation (callers guarantee
  /// well-sortedness) and without interning. Used by Make after validation
  /// and by TermInterner when rebuilding a spine over canonical children.
  static TermPtr NewNode(TermKind kind, Sort sort, std::string name,
                         Value literal, bool bool_const,
                         std::vector<TermPtr> children);

  TermKind kind_ = TermKind::kLiteral;
  Sort sort_ = Sort::kObject;
  std::string name_;
  Value literal_;
  bool bool_const_ = false;
  std::vector<TermPtr> children_;
  size_t hash_ = 0;
  size_t node_count_ = 1;
  bool has_metavars_ = false;
  /// Interning bookkeeping, written once by the first TermInterner that
  /// canonicalizes this node ("first tag wins"). Two distinct pointers with
  /// the same non-zero epoch are structurally distinct by construction.
  /// Atomics because terms are shared read-only across worker threads while
  /// interners tag them: writes are serialized by the interner's tag lock
  /// (id first, then epoch with release), and a tag never changes once its
  /// epoch is non-zero, so any non-zero epoch a reader observes is final.
  mutable std::atomic<uint64_t> intern_epoch_{0};
  mutable std::atomic<TermId> intern_id_{0};
  /// Lazily computed stable_hash() cache; 0 means "not computed yet".
  /// Atomic because shared terms are hashed from concurrent workers; every
  /// writer stores the same content-determined value, so races are benign.
  mutable std::atomic<uint64_t> stable_hash_{0};
};

std::ostream& operator<<(std::ostream& os, const TermPtr& term);

/// FNV-1a 64 over the bytes of `s`: the stable string hash every
/// fingerprint-like value in the library is built from (see
/// Term::stable_hash and RuleSetFingerprint).
uint64_t StableStringHash(const std::string& s);

/// The stable mixing step fingerprints are folded with (boost-style
/// hash_combine on explicit 64-bit constants).
inline uint64_t StableHashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

// ---------------------------------------------------------------------------
// Builder functions. These KOLA_CHECK well-sortedness: passing an ill-sorted
// argument is a programming error. Use Term::Make for data-driven paths.
// ---------------------------------------------------------------------------

// Leaves.
TermPtr Id();
TermPtr Pi1();
TermPtr Pi2();
TermPtr Flat();
TermPtr PrimFn(const std::string& name);
TermPtr EqP();
TermPtr LtP();
TermPtr LeqP();
TermPtr GtP();
TermPtr InP();
TermPtr PrimPred(const std::string& name);
TermPtr Lit(Value value);
TermPtr LitInt(int64_t value);
TermPtr Collection(const std::string& name);
TermPtr BoolConst(bool value);
/// Sorted metavariables for rule patterns.
TermPtr FnVar(const std::string& name);
TermPtr PredVar(const std::string& name);
TermPtr ObjVar(const std::string& name);
TermPtr BoolVar(const std::string& name);

// Function formers.
TermPtr Compose(TermPtr f, TermPtr g);
/// Right-nested composition of a whole chain: ComposeChain({f,g,h}) =
/// f o (g o h). Requires at least one element.
TermPtr ComposeChain(std::vector<TermPtr> fns);
TermPtr PairFn(TermPtr f, TermPtr g);
TermPtr Product(TermPtr f, TermPtr g);
TermPtr ConstFn(TermPtr object);
TermPtr CurryFn(TermPtr f, TermPtr object);
TermPtr Cond(TermPtr p, TermPtr f, TermPtr g);

// Predicate formers.
TermPtr Oplus(TermPtr p, TermPtr f);
TermPtr AndP(TermPtr p, TermPtr q);
TermPtr OrP(TermPtr p, TermPtr q);
TermPtr InvP(TermPtr p);
TermPtr NotP(TermPtr p);
TermPtr ConstPred(TermPtr bool_term);
TermPtr ConstPredTrue();
TermPtr ConstPredFalse();
TermPtr CurryPred(TermPtr p, TermPtr object);

// Query formers.
TermPtr Iterate(TermPtr p, TermPtr f);
TermPtr Iter(TermPtr p, TermPtr f);
TermPtr Join(TermPtr p, TermPtr f);
TermPtr Nest(TermPtr f, TermPtr g);
TermPtr Unnest(TermPtr f, TermPtr g);

// Object-level constructs.
TermPtr Apply(TermPtr f, TermPtr x);
TermPtr TestPred(TermPtr p, TermPtr x);
TermPtr PairObj(TermPtr x, TermPtr y);

}  // namespace kola

#endif  // KOLA_TERM_TERM_H_
