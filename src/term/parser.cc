#include "term/parser.h"

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/parse_number.h"

namespace kola {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,
  kInt,
  kString,
  kMetaVar,  // ?name
  kObjRef,   // obj<classid>#objid (text is "classid#objid")
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kLBagBrace,  // {|  (bag literal open, must be adjacent)
  kRBagBrace,  // |}  (bag literal close)
  kComma,
  kBang,     // !
  kQuestion, // ? (as operator; disambiguated from metavars in the lexer)
  kPipe,
  kAmp,
  kAt,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t position;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      size_t at = pos_;
      if (pos_ >= text_.size()) {
        tokens.push_back({TokKind::kEnd, "", at});
        return tokens;
      }
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        size_t start = pos_;
        ++pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens.push_back(
            {TokKind::kInt, std::string(text_.substr(start, pos_ - start)),
             at});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        std::string ident(text_.substr(start, pos_ - start));
        // `obj<classid>#objid` is how Value prints object references; accept
        // it back so shrunk soundness repros replay verbatim.
        if (ident == "obj" && pos_ < text_.size() && text_[pos_] == '<') {
          ++pos_;  // <
          KOLA_ASSIGN_OR_RETURN(std::string class_id, LexDigits(at));
          if (pos_ >= text_.size() || text_[pos_] != '>') {
            return InvalidArgumentError("expected '>' in object literal at " +
                                        std::to_string(at));
          }
          ++pos_;  // >
          if (pos_ >= text_.size() || text_[pos_] != '#') {
            return InvalidArgumentError("expected '#' in object literal at " +
                                        std::to_string(at));
          }
          ++pos_;  // #
          KOLA_ASSIGN_OR_RETURN(std::string object_id, LexDigits(at));
          tokens.push_back({TokKind::kObjRef, class_id + "#" + object_id, at});
          continue;
        }
        tokens.push_back({TokKind::kIdent, std::move(ident), at});
        continue;
      }
      switch (c) {
        case '"': {
          ++pos_;
          size_t start = pos_;
          while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
          if (pos_ >= text_.size()) {
            return InvalidArgumentError("unterminated string literal at " +
                                        std::to_string(at));
          }
          tokens.push_back(
              {TokKind::kString,
               std::string(text_.substr(start, pos_ - start)), at});
          ++pos_;
          continue;
        }
        case '?': {
          // `?name` immediately followed by a letter is a metavariable;
          // otherwise `?` is the predicate-apply operator.
          if (pos_ + 1 < text_.size() &&
              (std::isalpha(static_cast<unsigned char>(text_[pos_ + 1])) ||
               text_[pos_ + 1] == '_')) {
            ++pos_;
            size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_')) {
              ++pos_;
            }
            tokens.push_back(
                {TokKind::kMetaVar,
                 std::string(text_.substr(start, pos_ - start)), at});
          } else {
            ++pos_;
            tokens.push_back({TokKind::kQuestion, "?", at});
          }
          continue;
        }
        case '(': tokens.push_back({TokKind::kLParen, "(", at}); break;
        case ')': tokens.push_back({TokKind::kRParen, ")", at}); break;
        case '[': tokens.push_back({TokKind::kLBracket, "[", at}); break;
        case ']': tokens.push_back({TokKind::kRBracket, "]", at}); break;
        case '{':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '|') {
            tokens.push_back({TokKind::kLBagBrace, "{|", at});
            ++pos_;
          } else {
            tokens.push_back({TokKind::kLBrace, "{", at});
          }
          break;
        case '}': tokens.push_back({TokKind::kRBrace, "}", at}); break;
        case ',': tokens.push_back({TokKind::kComma, ",", at}); break;
        case '!': tokens.push_back({TokKind::kBang, "!", at}); break;
        case '|':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '}') {
            tokens.push_back({TokKind::kRBagBrace, "|}", at});
            ++pos_;
          } else {
            tokens.push_back({TokKind::kPipe, "|", at});
          }
          break;
        case '&': tokens.push_back({TokKind::kAmp, "&", at}); break;
        case '@': tokens.push_back({TokKind::kAt, "@", at}); break;
        default:
          return InvalidArgumentError(std::string("unexpected character '") +
                                      c + "' at " + std::to_string(at));
      }
      ++pos_;
    }
  }

 private:
  StatusOr<std::string> LexDigits(size_t at) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgumentError("expected digits in object literal at " +
                                  std::to_string(at));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Untyped CST. Elaboration to sorted Terms happens in a second pass because
// the sort of an identifier leaf depends on its context.
// ---------------------------------------------------------------------------

struct Cst;
using CstPtr = std::unique_ptr<Cst>;

enum class CstKind {
  kIdent,
  kInt,
  kString,
  kMetaVar,
  kObjRef,   // obj<classid>#objid (text is "classid#objid")
  kCall,     // former(args...)
  kPair,     // (a, b) -- function pair former
  kBracket,  // [a, b] -- object pair
  kSet,      // {a, b, ...} literal
  kBag,      // {|a, b, ...|} literal (multiset)
  kBinary,   // op in { o x @ & | ! ? }
};

struct Cst {
  CstKind kind;
  std::string text;  // ident name / int text / string body / operator
  std::vector<CstPtr> children;
  size_t position = 0;
};

CstPtr MakeCst(CstKind kind, std::string text, size_t position) {
  auto node = std::make_unique<Cst>();
  node->kind = kind;
  node->text = std::move(text);
  node->position = position;
  return node;
}

bool IsFormer(const std::string& name) {
  return name == "Kf" || name == "Cf" || name == "con" || name == "Kp" ||
         name == "Cp" || name == "inv" || name == "not" ||
         name == "iterate" || name == "iter" || name == "join" ||
         name == "nest" || name == "unnest";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<CstPtr> ParseAll() {
    KOLA_ASSIGN_OR_RETURN(CstPtr expr, ParseApply());
    if (Peek().kind != TokKind::kEnd) {
      return InvalidArgumentError("trailing input at position " +
                                  std::to_string(Peek().position) + ": '" +
                                  Peek().text + "'");
    }
    return expr;
  }

 private:
  // Nesting bound for the recursive descent. Every nesting level of the
  // input (parentheses, `!`/`o` right recursion) costs a handful of native
  // frames, so adversarially deep inputs -- like the printed form of a
  // 100k-node spine -- must fail with RESOURCE_EXHAUSTED well before the
  // native stack runs out. Real queries and shrunk repros nest far below
  // this.
  static constexpr int kMaxNestingDepth = 1'000;

  struct DepthGuard {
    Parser* parser;
    ~DepthGuard() { --parser->depth_; }
  };

  Status EnterNesting() {
    if (depth_ >= kMaxNestingDepth) {
      return ResourceExhaustedError(
          "term nesting exceeds " + std::to_string(kMaxNestingDepth) +
          " levels at position " + std::to_string(Peek().position));
    }
    ++depth_;
    return Status::OK();
  }

  const Token& Peek() const { return tokens_[index_]; }
  Token Advance() { return tokens_[index_++]; }
  bool PeekIsIdent(const char* name) const {
    return Peek().kind == TokKind::kIdent && Peek().text == name;
  }

  // Level 0: apply (right associative).
  StatusOr<CstPtr> ParseApply() {
    KOLA_RETURN_IF_ERROR(EnterNesting());
    DepthGuard guard{this};
    KOLA_ASSIGN_OR_RETURN(CstPtr left, ParseOr());
    if (Peek().kind == TokKind::kBang || Peek().kind == TokKind::kQuestion) {
      Token op = Advance();
      KOLA_ASSIGN_OR_RETURN(CstPtr right, ParseApply());
      CstPtr node = MakeCst(CstKind::kBinary,
                            op.kind == TokKind::kBang ? "!" : "?",
                            op.position);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      return node;
    }
    return left;
  }

  StatusOr<CstPtr> ParseOr() {
    KOLA_ASSIGN_OR_RETURN(CstPtr left, ParseAnd());
    while (Peek().kind == TokKind::kPipe) {
      Token op = Advance();
      KOLA_ASSIGN_OR_RETURN(CstPtr right, ParseAnd());
      CstPtr node = MakeCst(CstKind::kBinary, "|", op.position);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  StatusOr<CstPtr> ParseAnd() {
    KOLA_ASSIGN_OR_RETURN(CstPtr left, ParseOplus());
    while (Peek().kind == TokKind::kAmp) {
      Token op = Advance();
      KOLA_ASSIGN_OR_RETURN(CstPtr right, ParseOplus());
      CstPtr node = MakeCst(CstKind::kBinary, "&", op.position);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  StatusOr<CstPtr> ParseOplus() {
    KOLA_ASSIGN_OR_RETURN(CstPtr left, ParseProduct());
    while (Peek().kind == TokKind::kAt) {
      Token op = Advance();
      KOLA_ASSIGN_OR_RETURN(CstPtr right, ParseProduct());
      CstPtr node = MakeCst(CstKind::kBinary, "@", op.position);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  StatusOr<CstPtr> ParseProduct() {
    KOLA_ASSIGN_OR_RETURN(CstPtr left, ParseCompose());
    while (PeekIsIdent("x")) {
      Token op = Advance();
      KOLA_ASSIGN_OR_RETURN(CstPtr right, ParseCompose());
      CstPtr node = MakeCst(CstKind::kBinary, "x", op.position);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  // Right associative: `f o g o h` parses as f o (g o h).
  StatusOr<CstPtr> ParseCompose() {
    KOLA_RETURN_IF_ERROR(EnterNesting());
    DepthGuard guard{this};
    KOLA_ASSIGN_OR_RETURN(CstPtr left, ParseAtom());
    if (PeekIsIdent("o")) {
      Token op = Advance();
      KOLA_ASSIGN_OR_RETURN(CstPtr right, ParseCompose());
      CstPtr node = MakeCst(CstKind::kBinary, "o", op.position);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      return node;
    }
    return left;
  }

  StatusOr<CstPtr> ParseAtom() {
    Token tok = Peek();
    switch (tok.kind) {
      case TokKind::kInt:
        Advance();
        return MakeCst(CstKind::kInt, tok.text, tok.position);
      case TokKind::kString:
        Advance();
        return MakeCst(CstKind::kString, tok.text, tok.position);
      case TokKind::kMetaVar:
        Advance();
        return MakeCst(CstKind::kMetaVar, tok.text, tok.position);
      case TokKind::kObjRef:
        Advance();
        return MakeCst(CstKind::kObjRef, tok.text, tok.position);
      case TokKind::kIdent: {
        Advance();
        if (IsFormer(tok.text) && Peek().kind == TokKind::kLParen) {
          Advance();  // (
          CstPtr node = MakeCst(CstKind::kCall, tok.text, tok.position);
          if (Peek().kind != TokKind::kRParen) {
            while (true) {
              KOLA_ASSIGN_OR_RETURN(CstPtr arg, ParseApply());
              node->children.push_back(std::move(arg));
              if (Peek().kind != TokKind::kComma) break;
              Advance();
            }
          }
          if (Peek().kind != TokKind::kRParen) {
            return InvalidArgumentError("expected ')' at position " +
                                        std::to_string(Peek().position));
          }
          Advance();
          return node;
        }
        return MakeCst(CstKind::kIdent, tok.text, tok.position);
      }
      case TokKind::kLParen: {
        Advance();
        KOLA_ASSIGN_OR_RETURN(CstPtr first, ParseApply());
        if (Peek().kind == TokKind::kComma) {
          Advance();
          KOLA_ASSIGN_OR_RETURN(CstPtr second, ParseApply());
          if (Peek().kind != TokKind::kRParen) {
            return InvalidArgumentError("expected ')' in pair at position " +
                                        std::to_string(Peek().position));
          }
          Advance();
          CstPtr node = MakeCst(CstKind::kPair, "", tok.position);
          node->children.push_back(std::move(first));
          node->children.push_back(std::move(second));
          return node;
        }
        if (Peek().kind != TokKind::kRParen) {
          return InvalidArgumentError("expected ')' at position " +
                                      std::to_string(Peek().position));
        }
        Advance();
        return first;
      }
      case TokKind::kLBracket: {
        Advance();
        KOLA_ASSIGN_OR_RETURN(CstPtr first, ParseApply());
        if (Peek().kind != TokKind::kComma) {
          return InvalidArgumentError("expected ',' in object pair");
        }
        Advance();
        KOLA_ASSIGN_OR_RETURN(CstPtr second, ParseApply());
        if (Peek().kind != TokKind::kRBracket) {
          return InvalidArgumentError("expected ']' at position " +
                                      std::to_string(Peek().position));
        }
        Advance();
        CstPtr node = MakeCst(CstKind::kBracket, "", tok.position);
        node->children.push_back(std::move(first));
        node->children.push_back(std::move(second));
        return node;
      }
      case TokKind::kLBrace:
      case TokKind::kLBagBrace: {
        bool is_bag = tok.kind == TokKind::kLBagBrace;
        TokKind closer = is_bag ? TokKind::kRBagBrace : TokKind::kRBrace;
        Advance();
        CstPtr node = MakeCst(is_bag ? CstKind::kBag : CstKind::kSet, "",
                              tok.position);
        if (Peek().kind != closer) {
          while (true) {
            KOLA_ASSIGN_OR_RETURN(CstPtr element, ParseApply());
            node->children.push_back(std::move(element));
            if (Peek().kind != TokKind::kComma) break;
            Advance();
          }
        }
        if (Peek().kind != closer) {
          return InvalidArgumentError(
              std::string("expected '") + (is_bag ? "|}" : "}") +
              "' at position " + std::to_string(Peek().position));
        }
        Advance();
        return node;
      }
      default:
        return InvalidArgumentError("unexpected token '" + tok.text +
                                    "' at position " +
                                    std::to_string(tok.position));
    }
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  int depth_ = 0;  // current nesting depth, see EnterNesting()
};

// ---------------------------------------------------------------------------
// Elaboration (sort-directed CST -> Term)
// ---------------------------------------------------------------------------

Sort MetaVarSort(const std::string& name) {
  switch (name[0]) {
    case 'f':
    case 'g':
    case 'h':
    case 'j':
      return Sort::kFunction;
    case 'p':
    case 'q':
      return Sort::kPredicate;
    case 'b':
      return Sort::kBool;
    default:
      return Sort::kObject;
  }
}

StatusOr<TermPtr> Elaborate(const Cst& cst, Sort expected);

/// Decodes the "classid#objid" payload of an object-reference token.
/// Both halves are validated: an overlong id is a parse error, not an
/// abort, and the class id must fit the int32 Value::Object carries.
StatusOr<Value> ObjRefValue(const std::string& text) {
  size_t hash = text.find('#');
  if (hash == std::string::npos) {
    return InvalidArgumentError("malformed object literal '" + text + "'");
  }
  KOLA_ASSIGN_OR_RETURN(
      int64_t class_id,
      ParseInt64InRange(std::string_view(text).substr(0, hash),
                        "object class id", 0, INT32_MAX));
  KOLA_ASSIGN_OR_RETURN(int64_t obj_id,
                        ParseInt64(std::string_view(text).substr(hash + 1)));
  return Value::Object(static_cast<int32_t>(class_id), obj_id);
}

/// Evaluates a CST that must denote a compile-time literal Value (set
/// elements).
StatusOr<Value> LiteralValue(const Cst& cst) {
  switch (cst.kind) {
    case CstKind::kInt: {
      KOLA_ASSIGN_OR_RETURN(int64_t value, ParseInt64(cst.text));
      return Value::Int(value);
    }
    case CstKind::kObjRef:
      return ObjRefValue(cst.text);
    case CstKind::kString:
      return Value::Str(cst.text);
    case CstKind::kIdent:
      if (cst.text == "true") return Value::Bool(true);
      if (cst.text == "false") return Value::Bool(false);
      return InvalidArgumentError("set literals may only contain literals; "
                                  "got identifier '" +
                                  cst.text + "'");
    case CstKind::kSet:
    case CstKind::kBag: {
      std::vector<Value> elements;
      for (const CstPtr& c : cst.children) {
        KOLA_ASSIGN_OR_RETURN(Value v, LiteralValue(*c));
        elements.push_back(std::move(v));
      }
      return cst.kind == CstKind::kSet
                 ? Value::MakeSet(std::move(elements))
                 : Value::MakeBag(std::move(elements));
    }
    case CstKind::kBracket: {
      KOLA_ASSIGN_OR_RETURN(Value a, LiteralValue(*cst.children[0]));
      KOLA_ASSIGN_OR_RETURN(Value b, LiteralValue(*cst.children[1]));
      return Value::MakePair(std::move(a), std::move(b));
    }
    default:
      return InvalidArgumentError("expected a literal value");
  }
}

StatusOr<TermPtr> ElaborateCall(const Cst& cst, Sort expected) {
  const std::string& f = cst.text;
  auto need = [&](size_t n) -> Status {
    if (cst.children.size() != n) {
      return InvalidArgumentError(f + " takes " + std::to_string(n) +
                                  " arguments, got " +
                                  std::to_string(cst.children.size()));
    }
    return Status::OK();
  };
  auto check_sort = [&](Sort produced) -> Status {
    if (!SortMatches(expected, produced)) {
      return InvalidArgumentError(f + " produces a " +
                                  SortToString(produced) + " but a " +
                                  SortToString(expected) + " was expected");
    }
    return Status::OK();
  };

  if (f == "Kf") {
    KOLA_RETURN_IF_ERROR(need(1));
    KOLA_RETURN_IF_ERROR(check_sort(Sort::kFunction));
    KOLA_ASSIGN_OR_RETURN(TermPtr x, Elaborate(*cst.children[0], Sort::kObject));
    return Term::Make(TermKind::kConstFn, {std::move(x)});
  }
  if (f == "Cf") {
    KOLA_RETURN_IF_ERROR(need(2));
    KOLA_RETURN_IF_ERROR(check_sort(Sort::kFunction));
    KOLA_ASSIGN_OR_RETURN(TermPtr a, Elaborate(*cst.children[0], Sort::kFunction));
    KOLA_ASSIGN_OR_RETURN(TermPtr b, Elaborate(*cst.children[1], Sort::kObject));
    return Term::Make(TermKind::kCurryFn, {std::move(a), std::move(b)});
  }
  if (f == "con") {
    KOLA_RETURN_IF_ERROR(need(3));
    KOLA_RETURN_IF_ERROR(check_sort(Sort::kFunction));
    KOLA_ASSIGN_OR_RETURN(TermPtr p, Elaborate(*cst.children[0], Sort::kPredicate));
    KOLA_ASSIGN_OR_RETURN(TermPtr a, Elaborate(*cst.children[1], Sort::kFunction));
    KOLA_ASSIGN_OR_RETURN(TermPtr b, Elaborate(*cst.children[2], Sort::kFunction));
    return Term::Make(TermKind::kCond, {std::move(p), std::move(a), std::move(b)});
  }
  if (f == "Kp") {
    KOLA_RETURN_IF_ERROR(need(1));
    KOLA_RETURN_IF_ERROR(check_sort(Sort::kPredicate));
    KOLA_ASSIGN_OR_RETURN(TermPtr b, Elaborate(*cst.children[0], Sort::kBool));
    return Term::Make(TermKind::kConstPred, {std::move(b)});
  }
  if (f == "Cp") {
    KOLA_RETURN_IF_ERROR(need(2));
    KOLA_RETURN_IF_ERROR(check_sort(Sort::kPredicate));
    KOLA_ASSIGN_OR_RETURN(TermPtr p, Elaborate(*cst.children[0], Sort::kPredicate));
    KOLA_ASSIGN_OR_RETURN(TermPtr x, Elaborate(*cst.children[1], Sort::kObject));
    return Term::Make(TermKind::kCurryPred, {std::move(p), std::move(x)});
  }
  if (f == "inv" || f == "not") {
    KOLA_RETURN_IF_ERROR(need(1));
    KOLA_RETURN_IF_ERROR(check_sort(Sort::kPredicate));
    KOLA_ASSIGN_OR_RETURN(TermPtr p, Elaborate(*cst.children[0], Sort::kPredicate));
    return Term::Make(f == "inv" ? TermKind::kInvP : TermKind::kNotP,
                      {std::move(p)});
  }
  if (f == "iterate" || f == "iter" || f == "join") {
    KOLA_RETURN_IF_ERROR(need(2));
    KOLA_RETURN_IF_ERROR(check_sort(Sort::kFunction));
    KOLA_ASSIGN_OR_RETURN(TermPtr p, Elaborate(*cst.children[0], Sort::kPredicate));
    KOLA_ASSIGN_OR_RETURN(TermPtr fn, Elaborate(*cst.children[1], Sort::kFunction));
    TermKind kind = f == "iterate" ? TermKind::kIterate
                    : f == "iter"  ? TermKind::kIter
                                   : TermKind::kJoin;
    return Term::Make(kind, {std::move(p), std::move(fn)});
  }
  if (f == "nest" || f == "unnest") {
    KOLA_RETURN_IF_ERROR(need(2));
    KOLA_RETURN_IF_ERROR(check_sort(Sort::kFunction));
    KOLA_ASSIGN_OR_RETURN(TermPtr a, Elaborate(*cst.children[0], Sort::kFunction));
    KOLA_ASSIGN_OR_RETURN(TermPtr b, Elaborate(*cst.children[1], Sort::kFunction));
    return Term::Make(f == "nest" ? TermKind::kNest : TermKind::kUnnest,
                      {std::move(a), std::move(b)});
  }
  return InvalidArgumentError("unknown former: " + f);
}

StatusOr<TermPtr> ElaborateBinary(const Cst& cst, Sort expected) {
  const std::string& op = cst.text;
  struct OpSig {
    Sort left;
    Sort right;
    Sort result;
    TermKind kind;
  };
  OpSig sig;
  if (op == "o") {
    sig = {Sort::kFunction, Sort::kFunction, Sort::kFunction,
           TermKind::kCompose};
  } else if (op == "x") {
    sig = {Sort::kFunction, Sort::kFunction, Sort::kFunction,
           TermKind::kProduct};
  } else if (op == "@") {
    sig = {Sort::kPredicate, Sort::kFunction, Sort::kPredicate,
           TermKind::kOplus};
  } else if (op == "&") {
    sig = {Sort::kPredicate, Sort::kPredicate, Sort::kPredicate,
           TermKind::kAndP};
  } else if (op == "|") {
    sig = {Sort::kPredicate, Sort::kPredicate, Sort::kPredicate,
           TermKind::kOrP};
  } else if (op == "!") {
    sig = {Sort::kFunction, Sort::kObject, Sort::kObject, TermKind::kApplyFn};
  } else if (op == "?") {
    sig = {Sort::kPredicate, Sort::kObject, Sort::kBool,
           TermKind::kApplyPred};
  } else {
    return InternalError("unknown binary operator " + op);
  }
  if (!SortMatches(expected, sig.result)) {
    return InvalidArgumentError("operator '" + op + "' produces a " +
                                SortToString(sig.result) + " but a " +
                                SortToString(expected) + " was expected");
  }
  KOLA_ASSIGN_OR_RETURN(TermPtr left, Elaborate(*cst.children[0], sig.left));
  KOLA_ASSIGN_OR_RETURN(TermPtr right, Elaborate(*cst.children[1], sig.right));
  return Term::Make(sig.kind, {std::move(left), std::move(right)});
}

StatusOr<TermPtr> Elaborate(const Cst& cst, Sort expected) {
  switch (cst.kind) {
    case CstKind::kIdent: {
      if (expected == Sort::kFunction) {
        return Term::Make(TermKind::kPrimFn, {}, cst.text);
      }
      if (expected == Sort::kPredicate) {
        return Term::Make(TermKind::kPrimPred, {}, cst.text);
      }
      if (expected == Sort::kBool) {
        if (cst.text == "T") {
          return Term::Make(TermKind::kBoolConst, {}, "", Value::Null(), true);
        }
        if (cst.text == "F") {
          return Term::Make(TermKind::kBoolConst, {}, "", Value::Null(),
                            false);
        }
        return InvalidArgumentError("expected T or F, got '" + cst.text + "'");
      }
      // Object position: `T`/`F` still mean the boolean constants (Bool is a
      // subsort of Object); any other identifier is a collection reference.
      if (cst.text == "T" || cst.text == "F") {
        return Term::Make(TermKind::kBoolConst, {}, "", Value::Null(),
                          cst.text == "T");
      }
      if (cst.text == "true" || cst.text == "false") {
        return Term::Make(TermKind::kLiteral, {}, "",
                          Value::Bool(cst.text == "true"));
      }
      return Term::Make(TermKind::kCollection, {}, cst.text);
    }
    case CstKind::kInt: {
      if (!SortMatches(expected, Sort::kObject)) {
        return InvalidArgumentError("integer literal in " +
                                    std::string(SortToString(expected)) +
                                    " position");
      }
      KOLA_ASSIGN_OR_RETURN(int64_t value, ParseInt64(cst.text));
      return Term::Make(TermKind::kLiteral, {}, "", Value::Int(value));
    }
    case CstKind::kString: {
      if (!SortMatches(expected, Sort::kObject)) {
        return InvalidArgumentError("string literal in " +
                                    std::string(SortToString(expected)) +
                                    " position");
      }
      return Term::Make(TermKind::kLiteral, {}, "", Value::Str(cst.text));
    }
    case CstKind::kObjRef: {
      if (!SortMatches(expected, Sort::kObject)) {
        return InvalidArgumentError("object literal in " +
                                    std::string(SortToString(expected)) +
                                    " position");
      }
      KOLA_ASSIGN_OR_RETURN(Value ref, ObjRefValue(cst.text));
      return Term::Make(TermKind::kLiteral, {}, "", std::move(ref));
    }
    case CstKind::kMetaVar: {
      Sort sort = MetaVarSort(cst.text);
      if (!SortMatches(expected, sort)) {
        return InvalidArgumentError(
            "metavariable ?" + cst.text + " has sort " + SortToString(sort) +
            " (by naming convention) but " + SortToString(expected) +
            " was expected");
      }
      return Term::Make(TermKind::kMetaVar, {}, cst.text, Value::Null(),
                        false, sort);
    }
    case CstKind::kCall:
      return ElaborateCall(cst, expected);
    case CstKind::kPair: {
      if (expected == Sort::kFunction) {
        KOLA_ASSIGN_OR_RETURN(TermPtr a,
                              Elaborate(*cst.children[0], Sort::kFunction));
        KOLA_ASSIGN_OR_RETURN(TermPtr b,
                              Elaborate(*cst.children[1], Sort::kFunction));
        return Term::Make(TermKind::kPairFn, {std::move(a), std::move(b)});
      }
      return InvalidArgumentError(
          "(f, g) is the function-pair former; in object position use "
          "[x, y]");
    }
    case CstKind::kBracket: {
      if (!SortMatches(expected, Sort::kObject)) {
        return InvalidArgumentError("[x, y] is an object pair but a " +
                                    std::string(SortToString(expected)) +
                                    " was expected");
      }
      KOLA_ASSIGN_OR_RETURN(TermPtr a,
                            Elaborate(*cst.children[0], Sort::kObject));
      KOLA_ASSIGN_OR_RETURN(TermPtr b,
                            Elaborate(*cst.children[1], Sort::kObject));
      // A pair of literals is a literal pair (so pair-valued literals
      // round-trip through the printer as single nodes).
      if (a->kind() == TermKind::kLiteral &&
          b->kind() == TermKind::kLiteral) {
        return Term::Make(TermKind::kLiteral, {}, "",
                          Value::MakePair(a->literal(), b->literal()));
      }
      return Term::Make(TermKind::kPairObj, {std::move(a), std::move(b)});
    }
    case CstKind::kSet:
    case CstKind::kBag: {
      if (!SortMatches(expected, Sort::kObject)) {
        return InvalidArgumentError("collection literal in " +
                                    std::string(SortToString(expected)) +
                                    " position");
      }
      std::vector<Value> elements;
      for (const CstPtr& c : cst.children) {
        KOLA_ASSIGN_OR_RETURN(Value v, LiteralValue(*c));
        elements.push_back(std::move(v));
      }
      return Term::Make(TermKind::kLiteral, {}, "",
                        cst.kind == CstKind::kSet
                            ? Value::MakeSet(std::move(elements))
                            : Value::MakeBag(std::move(elements)));
    }
    case CstKind::kBinary:
      return ElaborateBinary(cst, expected);
  }
  return InternalError("unhandled CST kind");
}

}  // namespace

StatusOr<TermPtr> ParseTerm(std::string_view text, Sort expected) {
  Lexer lexer(text);
  KOLA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  KOLA_ASSIGN_OR_RETURN(CstPtr cst, parser.ParseAll());
  auto term = Elaborate(*cst, expected);
  if (!term.ok()) {
    return term.status().WithContext("while parsing '" + std::string(text) +
                                     "'");
  }
  return term;
}

StatusOr<TermPtr> ParseFunction(std::string_view text) {
  return ParseTerm(text, Sort::kFunction);
}

StatusOr<TermPtr> ParsePredicate(std::string_view text) {
  return ParseTerm(text, Sort::kPredicate);
}

StatusOr<TermPtr> ParseQuery(std::string_view text) {
  return ParseTerm(text, Sort::kObject);
}

}  // namespace kola
