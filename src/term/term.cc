#include "term/term.h"

#include <functional>

#include "common/macros.h"
#include "term/intern.h"

namespace kola {

namespace {

struct KindSignature {
  size_t arity;
  Sort child_sorts[3];
  Sort result;
};

/// Signature table for all non-leaf kinds.
StatusOr<KindSignature> SignatureFor(TermKind kind) {
  using S = Sort;
  switch (kind) {
    case TermKind::kCompose:
      return KindSignature{2, {S::kFunction, S::kFunction}, S::kFunction};
    case TermKind::kPairFn:
      return KindSignature{2, {S::kFunction, S::kFunction}, S::kFunction};
    case TermKind::kProduct:
      return KindSignature{2, {S::kFunction, S::kFunction}, S::kFunction};
    case TermKind::kConstFn:
      return KindSignature{1, {S::kObject}, S::kFunction};
    case TermKind::kCurryFn:
      return KindSignature{2, {S::kFunction, S::kObject}, S::kFunction};
    case TermKind::kCond:
      return KindSignature{
          3, {S::kPredicate, S::kFunction, S::kFunction}, S::kFunction};
    case TermKind::kOplus:
      return KindSignature{2, {S::kPredicate, S::kFunction}, S::kPredicate};
    case TermKind::kAndP:
    case TermKind::kOrP:
      return KindSignature{2, {S::kPredicate, S::kPredicate}, S::kPredicate};
    case TermKind::kInvP:
    case TermKind::kNotP:
      return KindSignature{1, {S::kPredicate}, S::kPredicate};
    case TermKind::kConstPred:
      return KindSignature{1, {S::kBool}, S::kPredicate};
    case TermKind::kCurryPred:
      return KindSignature{2, {S::kPredicate, S::kObject}, S::kPredicate};
    case TermKind::kIterate:
    case TermKind::kIter:
    case TermKind::kJoin:
      return KindSignature{2, {S::kPredicate, S::kFunction}, S::kFunction};
    case TermKind::kNest:
    case TermKind::kUnnest:
      return KindSignature{2, {S::kFunction, S::kFunction}, S::kFunction};
    case TermKind::kApplyFn:
      return KindSignature{2, {S::kFunction, S::kObject}, S::kObject};
    case TermKind::kApplyPred:
      return KindSignature{2, {S::kPredicate, S::kObject}, S::kBool};
    case TermKind::kPairObj:
      return KindSignature{2, {S::kObject, S::kObject}, S::kObject};
    default:
      return InternalError("SignatureFor called on leaf kind");
  }
}

size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

const char* SortToString(Sort sort) {
  switch (sort) {
    case Sort::kFunction:
      return "function";
    case Sort::kPredicate:
      return "predicate";
    case Sort::kObject:
      return "object";
    case Sort::kBool:
      return "bool";
  }
  return "unknown";
}

bool SortMatches(Sort expected, Sort actual) {
  if (expected == actual) return true;
  // Bool is a subsort of Object: boolean results are objects.
  return expected == Sort::kObject && actual == Sort::kBool;
}

const char* TermKindToString(TermKind kind) {
  switch (kind) {
    case TermKind::kPrimFn: return "prim-fn";
    case TermKind::kPrimPred: return "prim-pred";
    case TermKind::kLiteral: return "literal";
    case TermKind::kCollection: return "collection";
    case TermKind::kBoolConst: return "bool-const";
    case TermKind::kMetaVar: return "metavar";
    case TermKind::kCompose: return "compose";
    case TermKind::kPairFn: return "pair-fn";
    case TermKind::kProduct: return "product";
    case TermKind::kConstFn: return "Kf";
    case TermKind::kCurryFn: return "Cf";
    case TermKind::kCond: return "con";
    case TermKind::kOplus: return "oplus";
    case TermKind::kAndP: return "and";
    case TermKind::kOrP: return "or";
    case TermKind::kInvP: return "inv";
    case TermKind::kNotP: return "not";
    case TermKind::kConstPred: return "Kp";
    case TermKind::kCurryPred: return "Cp";
    case TermKind::kIterate: return "iterate";
    case TermKind::kIter: return "iter";
    case TermKind::kJoin: return "join";
    case TermKind::kNest: return "nest";
    case TermKind::kUnnest: return "unnest";
    case TermKind::kApplyFn: return "apply";
    case TermKind::kApplyPred: return "test";
    case TermKind::kPairObj: return "pair-obj";
  }
  return "unknown";
}

StatusOr<TermPtr> Term::Make(TermKind kind, std::vector<TermPtr> children,
                             std::string name, Value literal, bool bool_const,
                             Sort sort_hint) {
  Sort sort = Sort::kObject;
  switch (kind) {
    case TermKind::kPrimFn:
      if (name.empty()) return InvalidArgumentError("prim-fn needs a name");
      if (!children.empty()) return InvalidArgumentError("prim-fn is a leaf");
      sort = Sort::kFunction;
      break;
    case TermKind::kPrimPred:
      if (name.empty()) return InvalidArgumentError("prim-pred needs a name");
      if (!children.empty()) {
        return InvalidArgumentError("prim-pred is a leaf");
      }
      sort = Sort::kPredicate;
      break;
    case TermKind::kLiteral:
      if (!children.empty()) return InvalidArgumentError("literal is a leaf");
      sort = literal.is_bool() ? Sort::kBool : Sort::kObject;
      break;
    case TermKind::kCollection:
      if (name.empty()) return InvalidArgumentError("collection needs a name");
      if (!children.empty()) {
        return InvalidArgumentError("collection is a leaf");
      }
      sort = Sort::kObject;
      break;
    case TermKind::kBoolConst:
      if (!children.empty()) {
        return InvalidArgumentError("bool-const is a leaf");
      }
      sort = Sort::kBool;
      break;
    case TermKind::kMetaVar:
      if (name.empty()) return InvalidArgumentError("metavar needs a name");
      if (!children.empty()) return InvalidArgumentError("metavar is a leaf");
      sort = sort_hint;
      break;
    default: {
      KOLA_ASSIGN_OR_RETURN(KindSignature sig, SignatureFor(kind));
      if (children.size() != sig.arity) {
        return InvalidArgumentError(
            std::string(TermKindToString(kind)) + " expects " +
            std::to_string(sig.arity) + " children, got " +
            std::to_string(children.size()));
      }
      for (size_t i = 0; i < children.size(); ++i) {
        if (children[i] == nullptr) {
          return InvalidArgumentError("null child");
        }
        if (!SortMatches(sig.child_sorts[i], children[i]->sort())) {
          return InvalidArgumentError(
              std::string(TermKindToString(kind)) + ": child " +
              std::to_string(i) + " must be " +
              SortToString(sig.child_sorts[i]) + ", got " +
              SortToString(children[i]->sort()) + " (" +
              children[i]->ToString() + ")");
        }
      }
      sort = sig.result;
      break;
    }
  }

  TermPtr term = NewNode(kind, sort, std::move(name), std::move(literal),
                         bool_const, std::move(children));
  if (TermInterner* interner = ActiveTermInterner()) {
    // Construction-time canonicalization only pays for itself above the
    // small-term floor (see InternMinNodes); tiny spines skip the shard
    // lock and stay un-interned unless an explicit Intern call sweeps them
    // up as part of a larger tree.
    if (term->node_count() >= InternMinNodes()) {
      return interner->Intern(std::move(term));
    }
  }
  return term;
}

Term::~Term() {
  // Destroying a deep term recursively (~Term -> children_ -> ~Term ...)
  // unwinds one native frame per spine node, which overflows the stack on
  // adversarially deep chains. Instead, steal every sole-owned child into
  // an explicit worklist and strip its children before it dies, so each
  // node's destructor runs childless and never recurses. use_count() == 1
  // is race-free here: this dying node holds the only reference, so no
  // other thread can acquire one.
  if (children_.empty()) return;
  std::vector<TermPtr> pending;
  auto scavenge = [&pending](std::vector<TermPtr>& children) {
    for (TermPtr& child : children) {
      if (child != nullptr && child.use_count() == 1 &&
          !child->children_.empty()) {
        pending.push_back(std::move(child));
      }
    }
    children.clear();
  };
  scavenge(children_);
  while (!pending.empty()) {
    TermPtr term = std::move(pending.back());
    pending.pop_back();
    scavenge(const_cast<Term*>(term.get())->children_);
    // `term` drops here with no children left: a flat destruction.
  }
}

TermPtr Term::NewNode(TermKind kind, Sort sort, std::string name,
                      Value literal, bool bool_const,
                      std::vector<TermPtr> children) {
  auto term = std::shared_ptr<Term>(new Term());
  term->kind_ = kind;
  term->sort_ = sort;
  term->name_ = std::move(name);
  term->literal_ = std::move(literal);
  term->bool_const_ = bool_const;
  term->children_ = std::move(children);

  size_t h = HashCombine(static_cast<size_t>(kind) * 0x100000001b3ULL,
                         std::hash<std::string>{}(term->name_));
  if (kind == TermKind::kLiteral) h = HashCombine(h, term->literal_.Hash());
  if (kind == TermKind::kBoolConst) {
    h = HashCombine(h, term->bool_const_ ? 2 : 1);
  }
  if (kind == TermKind::kMetaVar) {
    h = HashCombine(h, static_cast<size_t>(term->sort_));
  }
  size_t nodes = 1;
  bool metavars = (kind == TermKind::kMetaVar);
  for (const TermPtr& c : term->children_) {
    h = HashCombine(h, c->hash());
    nodes += c->node_count();
    metavars = metavars || c->has_metavars();
  }
  term->hash_ = h;
  term->node_count_ = nodes;
  term->has_metavars_ = metavars;
  return TermPtr(term);
}

bool Term::Equal(const TermPtr& a, const TermPtr& b) {
  // Explicit worklist instead of recursion: the slow path descends one
  // frame per node on a spine, and adversarially deep terms (100k-node
  // compose chains) would otherwise overflow the native stack. The
  // per-node fast paths below keep the common cases O(1).
  std::vector<std::pair<const Term*, const Term*>> stack = {
      {a.get(), b.get()}};
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (x == y) continue;
    if (x == nullptr || y == nullptr) return false;
    // Distinct canonical representatives of the same interning arena are
    // structurally distinct: O(1) answer without touching the subtrees.
    uint64_t x_epoch = x->intern_epoch_.load(std::memory_order_acquire);
    if (x_epoch != 0 &&
        x_epoch == y->intern_epoch_.load(std::memory_order_acquire)) {
      return false;
    }
    if (x->hash_ != y->hash_) return false;
    if (x->kind_ != y->kind_ || x->sort_ != y->sort_ ||
        x->name_ != y->name_ || x->bool_const_ != y->bool_const_ ||
        x->children_.size() != y->children_.size()) {
      return false;
    }
    if (x->kind_ == TermKind::kLiteral &&
        Value::Compare(x->literal_, y->literal_) != 0) {
      return false;
    }
    for (size_t i = x->children_.size(); i > 0; --i) {
      stack.emplace_back(x->children_[i - 1].get(),
                         y->children_[i - 1].get());
    }
  }
  return true;
}

TermPtr Term::WithChildren(std::vector<TermPtr> children) const {
  auto result = TryWithChildren(std::move(children));
  KOLA_CHECK_OK(result.status());
  return std::move(result).value();
}

StatusOr<TermPtr> Term::TryWithChildren(std::vector<TermPtr> children) const {
  return Make(kind_, std::move(children), name_, literal_, bool_const_,
              sort_);
}

std::ostream& operator<<(std::ostream& os, const TermPtr& term) {
  return os << (term == nullptr ? std::string("<null>") : term->ToString());
}

uint64_t StableStringHash(const std::string& s) {
  // FNV-1a 64.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Term::stable_hash() const {
  const uint64_t cached = stable_hash_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  // Iterative post-order: collect the uncached pre-order spine, then
  // compute in reverse so every child's hash is stored before its parent
  // folds it in. (A shared subtree can appear twice in `order`; both
  // passes store the same content-determined value.)
  std::vector<const Term*> order;
  std::vector<const Term*> stack = {this};
  while (!stack.empty()) {
    const Term* node = stack.back();
    stack.pop_back();
    if (node->stable_hash_.load(std::memory_order_relaxed) != 0) continue;
    order.push_back(node);
    for (const TermPtr& child : node->children_) stack.push_back(child.get());
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Term* node = *it;
    uint64_t h =
        StableHashCombine(static_cast<uint64_t>(node->kind_) + 1,
                          static_cast<uint64_t>(node->sort_) + 1);
    if (!node->name_.empty()) {
      h = StableHashCombine(h, StableStringHash(node->name_));
    }
    switch (node->kind_) {
      case TermKind::kLiteral:
        h = StableHashCombine(h, StableStringHash(node->literal_.ToString()));
        break;
      case TermKind::kBoolConst:
        h = StableHashCombine(h, node->bool_const_ ? 2 : 1);
        break;
      default:
        break;
    }
    for (const TermPtr& child : node->children_) {
      h = StableHashCombine(h, child->stable_hash_.load(
                                   std::memory_order_relaxed));
    }
    // A true hash of 0 (vanishingly rare) just stays uncached and is
    // recomputed per call -- never nudged, so the value is exactly the
    // content-determined one.
    node->stable_hash_.store(h, std::memory_order_relaxed);
  }
  return stable_hash_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Builders.
// ---------------------------------------------------------------------------

namespace {

/// Backs the TermPtr-returning builder functions below. Those builders are
/// documented as library-internal construction helpers whose arguments are
/// compile-time shapes, so an ill-sorted call is a programming error inside
/// this library -- the one place an invariant abort is allowed. Data-driven
/// construction (parser, shrinkers, anything fed by user input) must go
/// through the Status-surfacing Term::Make / Term::TryWithChildren instead.
TermPtr MustMake(TermKind kind, std::vector<TermPtr> children,
                 std::string name = "", Value literal = Value::Null(),
                 bool bool_const = false, Sort sort_hint = Sort::kObject) {
  auto result = Term::Make(kind, std::move(children), std::move(name),
                           std::move(literal), bool_const, sort_hint);
  KOLA_CHECK_OK(result.status());
  return std::move(result).value();
}

}  // namespace

TermPtr Id() { return PrimFn("id"); }
TermPtr Pi1() { return PrimFn("pi1"); }
TermPtr Pi2() { return PrimFn("pi2"); }
TermPtr Flat() { return PrimFn("flat"); }

TermPtr PrimFn(const std::string& name) {
  return MustMake(TermKind::kPrimFn, {}, name);
}

TermPtr EqP() { return PrimPred("eq"); }
TermPtr LtP() { return PrimPred("lt"); }
TermPtr LeqP() { return PrimPred("leq"); }
TermPtr GtP() { return PrimPred("gt"); }
TermPtr InP() { return PrimPred("in"); }

TermPtr PrimPred(const std::string& name) {
  return MustMake(TermKind::kPrimPred, {}, name);
}

TermPtr Lit(Value value) {
  return MustMake(TermKind::kLiteral, {}, "", std::move(value));
}

TermPtr LitInt(int64_t value) { return Lit(Value::Int(value)); }

TermPtr Collection(const std::string& name) {
  return MustMake(TermKind::kCollection, {}, name);
}

TermPtr BoolConst(bool value) {
  return MustMake(TermKind::kBoolConst, {}, "", Value::Null(), value);
}

TermPtr FnVar(const std::string& name) {
  return MustMake(TermKind::kMetaVar, {}, name, Value::Null(), false,
                  Sort::kFunction);
}
TermPtr PredVar(const std::string& name) {
  return MustMake(TermKind::kMetaVar, {}, name, Value::Null(), false,
                  Sort::kPredicate);
}
TermPtr ObjVar(const std::string& name) {
  return MustMake(TermKind::kMetaVar, {}, name, Value::Null(), false,
                  Sort::kObject);
}
TermPtr BoolVar(const std::string& name) {
  return MustMake(TermKind::kMetaVar, {}, name, Value::Null(), false,
                  Sort::kBool);
}

TermPtr Compose(TermPtr f, TermPtr g) {
  return MustMake(TermKind::kCompose, {std::move(f), std::move(g)});
}

TermPtr ComposeChain(std::vector<TermPtr> fns) {
  KOLA_CHECK(!fns.empty());
  TermPtr result = fns.back();
  for (size_t i = fns.size() - 1; i-- > 0;) {
    result = Compose(fns[i], std::move(result));
  }
  return result;
}

TermPtr PairFn(TermPtr f, TermPtr g) {
  return MustMake(TermKind::kPairFn, {std::move(f), std::move(g)});
}

TermPtr Product(TermPtr f, TermPtr g) {
  return MustMake(TermKind::kProduct, {std::move(f), std::move(g)});
}

TermPtr ConstFn(TermPtr object) {
  return MustMake(TermKind::kConstFn, {std::move(object)});
}

TermPtr CurryFn(TermPtr f, TermPtr object) {
  return MustMake(TermKind::kCurryFn, {std::move(f), std::move(object)});
}

TermPtr Cond(TermPtr p, TermPtr f, TermPtr g) {
  return MustMake(TermKind::kCond, {std::move(p), std::move(f), std::move(g)});
}

TermPtr Oplus(TermPtr p, TermPtr f) {
  return MustMake(TermKind::kOplus, {std::move(p), std::move(f)});
}

TermPtr AndP(TermPtr p, TermPtr q) {
  return MustMake(TermKind::kAndP, {std::move(p), std::move(q)});
}

TermPtr OrP(TermPtr p, TermPtr q) {
  return MustMake(TermKind::kOrP, {std::move(p), std::move(q)});
}

TermPtr InvP(TermPtr p) { return MustMake(TermKind::kInvP, {std::move(p)}); }

TermPtr NotP(TermPtr p) { return MustMake(TermKind::kNotP, {std::move(p)}); }

TermPtr ConstPred(TermPtr bool_term) {
  return MustMake(TermKind::kConstPred, {std::move(bool_term)});
}

TermPtr ConstPredTrue() { return ConstPred(BoolConst(true)); }
TermPtr ConstPredFalse() { return ConstPred(BoolConst(false)); }

TermPtr CurryPred(TermPtr p, TermPtr object) {
  return MustMake(TermKind::kCurryPred, {std::move(p), std::move(object)});
}

TermPtr Iterate(TermPtr p, TermPtr f) {
  return MustMake(TermKind::kIterate, {std::move(p), std::move(f)});
}

TermPtr Iter(TermPtr p, TermPtr f) {
  return MustMake(TermKind::kIter, {std::move(p), std::move(f)});
}

TermPtr Join(TermPtr p, TermPtr f) {
  return MustMake(TermKind::kJoin, {std::move(p), std::move(f)});
}

TermPtr Nest(TermPtr f, TermPtr g) {
  return MustMake(TermKind::kNest, {std::move(f), std::move(g)});
}

TermPtr Unnest(TermPtr f, TermPtr g) {
  return MustMake(TermKind::kUnnest, {std::move(f), std::move(g)});
}

TermPtr Apply(TermPtr f, TermPtr x) {
  return MustMake(TermKind::kApplyFn, {std::move(f), std::move(x)});
}

TermPtr TestPred(TermPtr p, TermPtr x) {
  return MustMake(TermKind::kApplyPred, {std::move(p), std::move(x)});
}

TermPtr PairObj(TermPtr x, TermPtr y) {
  return MustMake(TermKind::kPairObj, {std::move(x), std::move(y)});
}

}  // namespace kola
