#ifndef KOLA_TERM_INTERN_H_
#define KOLA_TERM_INTERN_H_

#include <cstdint>
#include <unordered_set>

#include "term/term.h"

namespace kola {

/// A hash-consing arena: structurally equal terms interned through the same
/// arena share one canonical TermPtr, so `Term::Equal` degenerates to a
/// pointer compare and every canonical term carries a stable dense TermId.
///
/// Identity bookkeeping lives on the Term itself (an `intern_epoch_` tag and
/// an `intern_id_`): a term tagged with this arena's epoch IS the canonical
/// representative, and two distinct pointers tagged with the same epoch are
/// guaranteed structurally distinct -- which is exactly the fast path
/// `Term::Equal` exploits. Epochs are process-unique integers, so stale tags
/// from a destroyed or Clear()ed arena can never be confused with live ones.
///
/// The arena owns a reference to every canonical term, so canonical pointers
/// stay valid (and unique) for the arena's lifetime. Not thread-safe: one
/// arena per thread, or external synchronization.
class TermInterner {
 public:
  TermInterner();
  TermInterner(const TermInterner&) = delete;
  TermInterner& operator=(const TermInterner&) = delete;

  /// Returns the canonical term structurally equal to `term`, interning the
  /// whole subtree bottom-up. Idempotent: interning a canonical term of this
  /// arena is O(1). Returns nullptr for nullptr.
  TermPtr Intern(TermPtr term);

  /// The dense id of `term` if it is canonical in this arena, 0 otherwise.
  TermId IdOf(const TermPtr& term) const;

  /// Number of canonical terms held.
  size_t size() const { return canon_.size(); }

  /// Lookup hits (an equal term was already interned) vs misses (a new
  /// canonical entry) since construction or the last Clear().
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Drops every canonical term and starts a fresh epoch. Previously
  /// canonical terms remain valid, structurally comparable terms -- they are
  /// just no longer canonical, and re-interning assigns new ids.
  void Clear();

 private:
  struct StructuralHash {
    size_t operator()(const TermPtr& t) const { return t->hash(); }
  };
  struct StructuralEq {
    bool operator()(const TermPtr& a, const TermPtr& b) const {
      return Term::Equal(a, b);
    }
  };

  uint64_t epoch_ = 0;
  TermId next_id_ = 1;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::unordered_set<TermPtr, StructuralHash, StructuralEq> canon_;
};

/// The process-wide interner used by `Term::Make` when global interning is
/// enabled. Lives forever; never destroyed during static teardown.
TermInterner& GlobalTermInterner();

/// The interner `Term::Make` currently canonicalizes through, or nullptr
/// when construction-time interning is disabled (the default, unless the
/// KOLA_INTERN environment variable is set to a non-zero value at first
/// use).
TermInterner* ActiveTermInterner();

/// Enables/disables routing `Term::Make` through GlobalTermInterner().
/// Returns the previous setting.
bool SetGlobalInterningEnabled(bool enabled);
bool GlobalInterningEnabled();

/// RAII toggle for construction-time interning, for tests and benchmarks:
///   { ScopedInterning on(true);  ... all Term::Make results canonical ... }
class ScopedInterning {
 public:
  explicit ScopedInterning(bool enabled)
      : previous_(SetGlobalInterningEnabled(enabled)) {}
  ~ScopedInterning() { SetGlobalInterningEnabled(previous_); }
  ScopedInterning(const ScopedInterning&) = delete;
  ScopedInterning& operator=(const ScopedInterning&) = delete;

 private:
  bool previous_;
};

}  // namespace kola

#endif  // KOLA_TERM_INTERN_H_
