#ifndef KOLA_TERM_INTERN_H_
#define KOLA_TERM_INTERN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "term/term.h"

namespace kola {

/// A hash-consing arena: structurally equal terms interned through the same
/// arena share one canonical TermPtr, so `Term::Equal` degenerates to a
/// pointer compare and every canonical term carries a stable dense TermId.
///
/// Identity bookkeeping lives on the Term itself (an `intern_epoch_` tag and
/// an `intern_id_`): a term tagged with this arena's epoch IS the canonical
/// representative, and two distinct pointers tagged with the same epoch are
/// guaranteed structurally distinct -- which is exactly the fast path
/// `Term::Equal` exploits. Epochs are process-unique integers, so stale tags
/// from a destroyed or Clear()ed arena can never be confused with live ones.
///
/// The arena owns a reference to every canonical term, so canonical pointers
/// stay valid (and unique) for the arena's lifetime.
///
/// Thread-safe: the canonical set is sharded by structural hash with one
/// mutex per shard, so concurrent Intern calls from worker threads only
/// contend when they touch structurally identical subtrees (which is also
/// when they must agree on one canonical pointer). Structural equality of
/// interned pointers is preserved under concurrency: equal terms hash to the
/// same shard, the shard lock serializes their insertion, and the winner's
/// pointer is returned to every caller. Clear() takes every shard lock and
/// must not race in-flight Intern calls that should land in the NEW epoch
/// (quiesce workers around it, as a generation boundary).
class TermInterner {
 public:
  TermInterner();
  TermInterner(const TermInterner&) = delete;
  TermInterner& operator=(const TermInterner&) = delete;

  /// Returns the canonical term structurally equal to `term`, interning the
  /// whole subtree bottom-up. Idempotent: interning a canonical term of this
  /// arena is O(1). Returns nullptr for nullptr. Safe to call concurrently.
  TermPtr Intern(TermPtr term);

  /// The dense id of `term` if it is canonical in this arena, 0 otherwise.
  TermId IdOf(const TermPtr& term) const;

  /// Number of canonical terms held (sums the shards; a snapshot under
  /// concurrent interning).
  size_t size() const;

  /// Estimated bytes held by the arena's canonical terms (node footprints,
  /// not the hash-set overhead). Grows on insert misses, shrinks on
  /// Clear()/Compact(). A snapshot, like size().
  int64_t bytes() const;

  /// Lookup hits (an equal term was already interned) vs misses (a new
  /// canonical entry) since construction or the last Clear().
  uint64_t hits() const;
  uint64_t misses() const;

  /// Drops every canonical term and starts a fresh epoch. Previously
  /// canonical terms remain valid, structurally comparable terms -- they are
  /// just no longer canonical, and re-interning assigns new ids.
  void Clear();

  /// Epoch compaction: drops every canonical entry whose ONLY owner is the
  /// arena itself (use_count 1 -- nothing outside can ever look it up
  /// again), sweeping until a fixpoint so a dropped parent lets its
  /// now-sole-owned children go in a later sweep. Returns the number of
  /// entries dropped. Safe while the arena is shared: destroying the sole
  /// reference destroys the term and its (stale) epoch tag with it, so the
  /// "same epoch => structurally distinct pointers" invariant Equal relies
  /// on is untouched, and a re-interned equal term is simply a fresh miss
  /// with a fresh id (ids stay unique, no longer dense). Called by
  /// ScopedInterning when an interning region ends.
  size_t Compact();

  /// Estimated heap footprint of one term node (used for byte accounting;
  /// exposed so caches charging term references agree on the estimate).
  static int64_t TermFootprintBytes(const Term& term);

 private:
  struct StructuralHash {
    size_t operator()(const TermPtr& t) const { return t->hash(); }
  };
  struct StructuralEq {
    bool operator()(const TermPtr& a, const TermPtr& b) const {
      return Term::Equal(a, b);
    }
  };

  /// Shard count: enough to keep eight soundness workers from serializing
  /// on one mutex, small enough that Clear()/size() stay trivial.
  static constexpr size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<TermPtr, StructuralHash, StructuralEq> canon;
    uint64_t hits = 0;
    uint64_t misses = 0;
    int64_t bytes = 0;
  };

  Shard& ShardFor(size_t hash) { return shards_[hash % kShards]; }

  std::atomic<uint64_t> epoch_{0};
  std::atomic<TermId> next_id_{1};
  Shard shards_[kShards];
};

/// The process-wide interner used by `Term::Make` when global interning is
/// enabled. Lives forever; never destroyed during static teardown. Shared
/// by every thread whose active slot points at it (the sharding above makes
/// that safe).
TermInterner& GlobalTermInterner();

/// The interner `Term::Make` currently canonicalizes through on THIS
/// thread, or nullptr when construction-time interning is disabled. The
/// slot is thread-local: each thread starts from the process-wide latched
/// KOLA_INTERN default (see LatchGlobalInterningFromEnv) and toggles
/// independently, so one worker running an interning pipeline config never
/// flips interning under a sibling running a plain config.
TermInterner* ActiveTermInterner();

/// Minimum node_count at which Term::Make routes a freshly built term
/// through the active interner. Terms below the floor are cheaper to
/// rebuild (and structurally compare) than to hash-cons -- the shard lock
/// plus hash on a 3-node spine that never re-occurs is pure overhead, which
/// is what held the small-workload interning benchmarks below 1.0x -- so
/// Make skips them. The floor deliberately matches the FixpointCache's
/// kFixpointMemoMinNodes: terms the memo would never key are exactly the
/// terms whose canonical pointer buys nothing. Explicit TermInterner::
/// Intern calls ignore the floor and canonicalize the whole subtree, so
/// deduplication points (plan frontiers, caches) still get fully canonical
/// trees. Latched once from KOLA_INTERN_MIN_NODES (default 8; values < 1
/// fall back to the default).
size_t InternMinNodes();

/// Latches the KOLA_INTERN default exactly once per process and returns it.
/// Called implicitly by the first ActiveTermInterner / ScopedInterning /
/// SetGlobalInterningEnabled on any thread, so the ordering between an
/// early ScopedInterning and the lazy env read is well-defined: the env
/// value is always consulted first, exactly once, and scoped toggles apply
/// on top of it. Call it explicitly at startup to pin the latch point.
/// Aborts with a KOLA_CHECK diagnostic if KOLA_INTERN is observed with a
/// different truthiness after latching (setenv after startup is a bug, and
/// used to silently race the latch).
bool LatchGlobalInterningFromEnv();

/// Enables/disables routing `Term::Make` through GlobalTermInterner() on
/// the calling thread. Returns the previous setting for this thread.
bool SetGlobalInterningEnabled(bool enabled);
bool GlobalInterningEnabled();

/// Points the calling thread's active-arena slot at `interner` (nullptr
/// disables construction-time interning). Returns the previous slot value.
/// Prefer ScopedInterning, which restores and compacts on scope exit.
TermInterner* ExchangeActiveTermInterner(TermInterner* interner);

/// RAII toggle for construction-time interning, for tests, benchmarks and
/// per-worker pipeline configs. Thread-local:
///   { ScopedInterning on(true);  ... Term::Make results canonical ... }
/// only affects Term::Make calls made by the entering thread, and only for
/// terms of at least InternMinNodes() nodes (smaller spines stay
/// un-interned unless explicitly Interned).
///
/// The bool form routes through the process-wide GlobalTermInterner(); the
/// pointer form routes through a caller-owned private arena, which is how a
/// memory-budgeted request gets per-request interner accounting that does
/// not depend on how warm the shared arena happens to be. On scope exit the
/// region's arena is epoch-compacted (TermInterner::Compact): canonical
/// entries nothing else holds -- the region's garbage -- are dropped.
class ScopedInterning {
 public:
  explicit ScopedInterning(bool enabled)
      : ScopedInterning(enabled ? &GlobalTermInterner() : nullptr) {}
  explicit ScopedInterning(TermInterner* arena)
      : previous_(ExchangeActiveTermInterner(arena)), arena_(arena) {}
  ~ScopedInterning() {
    ExchangeActiveTermInterner(previous_);
    // Leaving an interning region (not merely re-entering the same arena
    // from a nested scope) is the compaction point.
    if (arena_ != nullptr && arena_ != previous_) arena_->Compact();
  }
  ScopedInterning(const ScopedInterning&) = delete;
  ScopedInterning& operator=(const ScopedInterning&) = delete;

 private:
  TermInterner* previous_;
  TermInterner* arena_;
};

}  // namespace kola

#endif  // KOLA_TERM_INTERN_H_
