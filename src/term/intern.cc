#include "term/intern.h"

#include <cstdlib>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/governor.h"
#include "common/macros.h"

namespace kola {

namespace {

/// Process-unique epoch ids; 0 is reserved for "never interned".
uint64_t NextEpoch() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Serializes first-tag writes across arenas. Two arenas hold different
/// shard locks for the same term, so the "first tag wins" check-then-write
/// needs its own (leaf) lock; it is only taken on the miss path.
std::mutex& TagMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// The process-wide KOLA_INTERN default, read exactly once.
struct EnvLatch {
  std::once_flag once;
  bool enabled = false;
};

EnvLatch& GlobalEnvLatch() {
  static EnvLatch* latch = new EnvLatch();
  return *latch;
}

TermInterner*& ActiveSlot() {
  // Per-thread slot, initialized from the latched env default the first
  // time the thread consults it. ScopedInterning edits only this thread's
  // slot, so concurrent workers can run interning-on and interning-off
  // pipeline configs side by side.
  thread_local TermInterner* active =
      LatchGlobalInterningFromEnv() ? &GlobalTermInterner() : nullptr;
  return active;
}

}  // namespace

size_t InternMinNodes() {
  // Latched on first use, like the KOLA_INTERN default: the floor must not
  // move mid-run or equal terms built before and after the move would
  // disagree on canonicality within one region.
  static const size_t floor = [] {
    constexpr size_t kDefault = 8;  // == engine.cc kFixpointMemoMinNodes
    const char* raw = std::getenv("KOLA_INTERN_MIN_NODES");
    if (raw == nullptr || *raw == '\0') return kDefault;
    char* end = nullptr;
    const long value = std::strtol(raw, &end, 10);
    if (end == raw || *end != '\0' || value < 1) return kDefault;
    return static_cast<size_t>(value);
  }();
  return floor;
}

bool LatchGlobalInterningFromEnv() {
  EnvLatch& latch = GlobalEnvLatch();
  std::call_once(latch.once,
                 [&] { latch.enabled = EnvFlagEnabled("KOLA_INTERN"); });
  // A KOLA_INTERN value that changed after the latch (setenv mid-run) used
  // to mean "whichever thread touched a term first wins"; make it loud.
  const bool kola_intern_env_unchanged_since_latch =
      EnvFlagEnabled("KOLA_INTERN") == latch.enabled;
  KOLA_CHECK(kola_intern_env_unchanged_since_latch);
  return latch.enabled;
}

TermInterner::TermInterner() : epoch_(NextEpoch()) {}

TermPtr TermInterner::Intern(TermPtr term) {
  if (term == nullptr) return term;
  // An injected interner fault models an arena allocation failing: the
  // term (and its whole subtree) is handed back un-interned. Structural
  // Equal still works on un-interned terms -- it just loses the pointer
  // fast path -- so this degradation is sound by construction.
  if (ActiveFaultInjector() != nullptr &&
      ActiveFaultInjector()->ShouldFail(FaultSite::kIntern)) {
    return term;
  }
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  // Already canonical in this arena. Tags are write-once, so a matching
  // epoch observed without the shard lock is final.
  if (term->intern_epoch_.load(std::memory_order_acquire) == epoch) {
    return term;
  }

  // Canonicalize children first so the bucket probes below resolve equality
  // through the interned-pointer fast path instead of deep walks. No locks
  // are held across the recursion -- each level locks only its own shard.
  TermPtr node = std::move(term);
  if (!node->is_leaf()) {
    bool changed = false;
    std::vector<TermPtr> children;
    children.reserve(node->arity());
    for (const TermPtr& child : node->children()) {
      TermPtr canonical = Intern(child);
      changed = changed || canonical.get() != child.get();
      children.push_back(std::move(canonical));
    }
    if (changed) {
      node = Term::NewNode(node->kind(), node->sort(), node->name(),
                           node->literal(), node->bool_const(),
                           std::move(children));
    }
  }

  Shard& shard = ShardFor(node->hash());
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.canon.insert(node);
  if (!inserted) {
    ++shard.hits;
    return *it;
  }
  // Arena growth is charged to the thread's ambient memory governor before
  // the entry is kept: a failed charge hands the term back un-interned,
  // exactly like an injected arena fault above -- sound, it only loses the
  // pointer fast path. The charge is not released per-entry (the arena
  // retains the term for the request's lifetime); a request-scoped
  // governor's accounting simply ends with the request, and a long-lived
  // one reads as cumulative arena occupancy.
  const int64_t footprint = TermFootprintBytes(*node);
  if (const Governor* governor = ActiveMemoryGovernor(); governor != nullptr) {
    if (!governor->ChargeMemory(MemoryCategory::kInternerArena, footprint)
             .ok()) {
      shard.canon.erase(it);
      return node;
    }
  }
  ++shard.misses;
  shard.bytes += footprint;
  // First tag wins: a term already canonical in another arena keeps that
  // arena's epoch/id (it still deduplicates here through set membership).
  // Order matters for lock-free readers: id first, then epoch with release,
  // so a reader that sees our epoch also sees our id.
  {
    std::lock_guard<std::mutex> tag_lock(TagMutex());
    if (node->intern_epoch_.load(std::memory_order_relaxed) == 0) {
      node->intern_id_.store(next_id_.fetch_add(1, std::memory_order_relaxed),
                             std::memory_order_relaxed);
      node->intern_epoch_.store(epoch, std::memory_order_release);
    }
  }
  return node;
}

TermId TermInterner::IdOf(const TermPtr& term) const {
  if (term == nullptr) return 0;
  if (term->intern_epoch_.load(std::memory_order_acquire) !=
      epoch_.load(std::memory_order_acquire)) {
    return 0;
  }
  return term->intern_id_.load(std::memory_order_relaxed);
}

size_t TermInterner::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.canon.size();
  }
  return total;
}

uint64_t TermInterner::hits() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.hits;
  }
  return total;
}

uint64_t TermInterner::misses() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.misses;
  }
  return total;
}

int64_t TermInterner::bytes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

int64_t TermInterner::TermFootprintBytes(const Term& term) {
  // The node, its control block, its name and child-vector allocations.
  // Literal payloads are deliberately not walked (a Value can own arbitrary
  // collections; the estimate must stay O(1) per node).
  return static_cast<int64_t>(sizeof(Term) + 2 * sizeof(void*) +
                              term.name().capacity() +
                              term.children().capacity() * sizeof(TermPtr));
}

size_t TermInterner::Compact() {
  size_t dropped_total = 0;
  for (;;) {
    size_t dropped = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.canon.begin(); it != shard.canon.end();) {
        // use_count 1 means the arena is the only owner, and it stays the
        // only owner while we hold the shard lock (acquiring a new
        // reference requires a lookup through this shard). Erasing the
        // entry destroys the term -- stale tag and all -- so the epoch
        // invariant Equal's fast path needs cannot be violated by a later
        // re-intern (which tags a brand-new node with a brand-new id).
        if (it->use_count() == 1) {
          shard.bytes -= TermFootprintBytes(**it);
          it = shard.canon.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
    dropped_total += dropped;
    // A dropped parent may have been the last external owner of its
    // children's entries; sweep again until nothing moves.
    if (dropped == 0) break;
  }
  return dropped_total;
}

void TermInterner::Clear() {
  // Hold every shard lock while the epoch advances so no straggler can
  // insert under the old epoch after its shard was emptied.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (Shard& shard : shards_) {
    locks.emplace_back(shard.mu);
  }
  for (Shard& shard : shards_) {
    shard.canon.clear();
    shard.hits = 0;
    shard.misses = 0;
    shard.bytes = 0;
  }
  epoch_.store(NextEpoch(), std::memory_order_release);
  next_id_.store(1, std::memory_order_relaxed);
}

TermInterner& GlobalTermInterner() {
  // Leaked intentionally: interned terms may outlive static teardown order.
  static TermInterner* instance = new TermInterner();
  return *instance;
}

TermInterner* ActiveTermInterner() { return ActiveSlot(); }

TermInterner* ExchangeActiveTermInterner(TermInterner* interner) {
  TermInterner*& slot = ActiveSlot();
  TermInterner* previous = slot;
  slot = interner;
  return previous;
}

bool SetGlobalInterningEnabled(bool enabled) {
  TermInterner*& slot = ActiveSlot();
  bool previous = slot != nullptr;
  slot = enabled ? &GlobalTermInterner() : nullptr;
  return previous;
}

bool GlobalInterningEnabled() { return ActiveSlot() != nullptr; }

}  // namespace kola
