#include "term/intern.h"

#include <atomic>
#include <cstdlib>
#include <utility>
#include <vector>

namespace kola {

namespace {

/// Process-unique epoch ids; 0 is reserved for "never interned".
uint64_t NextEpoch() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

TermInterner*& ActiveSlot() {
  static TermInterner* active = [] {
    const char* env = std::getenv("KOLA_INTERN");
    bool enabled = env != nullptr && env[0] != '\0' && env[0] != '0';
    return enabled ? &GlobalTermInterner() : nullptr;
  }();
  return active;
}

}  // namespace

TermInterner::TermInterner() : epoch_(NextEpoch()) {}

TermPtr TermInterner::Intern(TermPtr term) {
  if (term == nullptr) return term;
  // Already canonical in this arena.
  if (term->intern_epoch_ == epoch_) return term;

  // Canonicalize children first so the bucket probes below resolve equality
  // through the interned-pointer fast path instead of deep walks.
  TermPtr node = std::move(term);
  if (!node->is_leaf()) {
    bool changed = false;
    std::vector<TermPtr> children;
    children.reserve(node->arity());
    for (const TermPtr& child : node->children()) {
      TermPtr canonical = Intern(child);
      changed = changed || canonical.get() != child.get();
      children.push_back(std::move(canonical));
    }
    if (changed) {
      node = Term::NewNode(node->kind(), node->sort(), node->name(),
                           node->literal(), node->bool_const(),
                           std::move(children));
    }
  }

  auto [it, inserted] = canon_.insert(node);
  if (!inserted) {
    ++hits_;
    return *it;
  }
  ++misses_;
  // First tag wins: a term already canonical in another arena keeps that
  // arena's epoch/id (it still deduplicates here through set membership).
  if (node->intern_epoch_ == 0) {
    node->intern_epoch_ = epoch_;
    node->intern_id_ = next_id_++;
  }
  return node;
}

TermId TermInterner::IdOf(const TermPtr& term) const {
  if (term == nullptr || term->intern_epoch_ != epoch_) return 0;
  return term->intern_id_;
}

void TermInterner::Clear() {
  canon_.clear();
  epoch_ = NextEpoch();
  next_id_ = 1;
  hits_ = 0;
  misses_ = 0;
}

TermInterner& GlobalTermInterner() {
  // Leaked intentionally: interned terms may outlive static teardown order.
  static TermInterner* instance = new TermInterner();
  return *instance;
}

TermInterner* ActiveTermInterner() { return ActiveSlot(); }

bool SetGlobalInterningEnabled(bool enabled) {
  TermInterner*& slot = ActiveSlot();
  bool previous = slot != nullptr;
  slot = enabled ? &GlobalTermInterner() : nullptr;
  return previous;
}

bool GlobalInterningEnabled() { return ActiveSlot() != nullptr; }

}  // namespace kola
