#ifndef KOLA_EVAL_EVALUATOR_H_
#define KOLA_EVAL_EVALUATOR_H_

#include <cstdint>
#include <optional>

#include "common/governor.h"
#include "common/status.h"
#include "common/statusor.h"
#include "term/term.h"
#include "values/database.h"

namespace kola {

/// Evaluation limits. `max_steps` bounds the number of function/predicate
/// invocations; exceeding it yields RESOURCE_EXHAUSTED (used by the rule
/// verifier to keep randomized instances bounded).
///
/// `physical_fastpaths` enables hash-based implementations for the
/// structurally recognizable cases:
///   * join(eq @ (f x g), h)  -- hash join keyed on f / g
///   * join(in @ (f x g), h)  -- inverted-index join on the set-valued g
///   * nest(pi1, pi2)         -- hash grouping
/// These are the "variety of implementation techniques known for
/// performing nestings of joins" (Section 4.1) that make the untangled
/// nest-of-join form profitable; results are bit-identical to the naive
/// nested-loop semantics (tested).
struct EvalOptions {
  int64_t max_steps = 50'000'000;
  bool physical_fastpaths = true;
  /// Shared request budget: every invocation also charges one step here,
  /// so a deadline or global budget stops evaluation cooperatively.
  /// nullptr means ungoverned (max_steps still applies). Not owned.
  const Governor* governor = nullptr;
};

/// Operational-semantics interpreter for KOLA terms (Tables 1 and 2 of the
/// paper). All evaluation is against a Database supplying extents and schema
/// primitives. The evaluator is the semantic ground truth the rewrite rules
/// are verified against: t1 == t2 as queries iff Eval agrees on them for all
/// databases.
class Evaluator {
 public:
  explicit Evaluator(const Database* db, EvalOptions options = EvalOptions())
      : db_(db),
        options_(options),
        scratch_(options.governor, MemoryCategory::kEvalScratch) {}

  /// Releases the evaluator's scratch charge (see EvalOptions::governor):
  /// values materialized by collection formers are charged while the
  /// evaluator lives and handed back here.
  ~Evaluator() = default;

  /// Evaluates a ground object-sorted term (e.g. `iterate(...) ! P`).
  /// Bool-sorted terms evaluate to boolean values.
  StatusOr<Value> EvalObject(const TermPtr& term);

  /// Applies a function-sorted term to an argument value.
  StatusOr<Value> Apply(const TermPtr& fn, const Value& argument);

  /// Tests a predicate-sorted term on an argument value.
  StatusOr<bool> Holds(const TermPtr& pred, const Value& argument);

  /// Invocations consumed so far (monotone across calls on this instance).
  int64_t steps() const { return steps_; }

  /// Resets the step counter.
  void ResetSteps() { steps_ = 0; }

  /// Number of join/nest evaluations served by a hash-based fast path.
  int64_t fastpath_hits() const { return fastpath_hits_; }

 private:
  Status Tick();
  /// Charges `values` freshly materialized collection elements against the
  /// governor's kEvalScratch budget (no-op when ungoverned). The charge is
  /// held for the evaluator's lifetime -- results built by inner formers
  /// feed outer ones, so "still charged" approximates "still live".
  Status ChargeScratch(int64_t values);
  StatusOr<Value> ApplyPrimitive(const std::string& name,
                                 const Value& argument);
  StatusOr<bool> HoldsPrimitive(const std::string& name,
                                const Value& argument);
  /// Hash-based join for eq/in-keyed predicates; nullopt when the shape is
  /// not recognized (caller falls back to nested loops).
  std::optional<StatusOr<Value>> TryFastJoin(const TermPtr& join,
                                             const Value& lhs,
                                             const Value& rhs);
  /// Hash grouping for nest(pi1, pi2).
  std::optional<StatusOr<Value>> TryFastNest(const TermPtr& nest,
                                             const Value& lhs,
                                             const Value& rhs);

  const Database* db_;
  EvalOptions options_;
  int64_t steps_ = 0;
  int64_t fastpath_hits_ = 0;
  MemoryCharge scratch_;
};

/// One-shot helper: evaluates `term` against `db` with default options.
StatusOr<Value> EvalQuery(const Database& db, const TermPtr& term);

}  // namespace kola

#endif  // KOLA_EVAL_EVALUATOR_H_
