#include "eval/evaluator.h"

#include <map>
#include <vector>

#include "common/macros.h"

namespace kola {

namespace {

/// Compares two values for the ordering predicates. Only ints and strings
/// are ordered; comparing across kinds or unordered kinds is a TypeError.
StatusOr<int> OrderedCompare(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    return a.int_value() == b.int_value() ? 0
           : a.int_value() < b.int_value() ? -1
                                           : 1;
  }
  if (a.is_string() && b.is_string()) {
    int c = a.string_value().compare(b.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return TypeError("ordering predicate on non-comparable values " +
                   a.ToString() + " and " + b.ToString());
}

StatusOr<std::pair<Value, Value>> AsPair(const Value& v, const char* who) {
  if (!v.is_pair()) {
    return TypeError(std::string(who) + " expects a pair, got " +
                     v.ToString());
  }
  return std::make_pair(v.first(), v.second());
}

Status NotASet(const char* who, const Value& v) {
  return TypeError(std::string(who) + " expects a set or bag, got " +
                   v.ToString());
}

/// Rebuilds a collection of the same kind as `like` (bag stays bag).
Value MakeLike(const Value& like, std::vector<Value> elements) {
  return like.is_bag() ? Value::MakeBag(std::move(elements))
                       : Value::MakeSet(std::move(elements));
}

}  // namespace

Status Evaluator::Tick() {
  if (++steps_ > options_.max_steps) {
    return ResourceExhaustedError("evaluation exceeded " +
                                  std::to_string(options_.max_steps) +
                                  " steps");
  }
  if (options_.governor != nullptr) return options_.governor->Charge();
  return Status::OK();
}

namespace {
/// Estimated bytes per materialized collection element. Values are tagged
/// unions over small payloads plus shared-ptr-backed collections; one flat
/// per-element price keeps the accounting O(1) and deterministic.
constexpr int64_t kEvalValueBytes = 64;
}  // namespace

Status Evaluator::ChargeScratch(int64_t values) {
  return scratch_.Add(values * kEvalValueBytes);
}

StatusOr<Value> Evaluator::EvalObject(const TermPtr& term) {
  KOLA_CHECK(term != nullptr);
  switch (term->kind()) {
    case TermKind::kLiteral:
      return term->literal();
    case TermKind::kBoolConst:
      return Value::Bool(term->bool_const());
    case TermKind::kCollection:
      return db_->Extent(term->name());
    case TermKind::kPairObj: {
      KOLA_ASSIGN_OR_RETURN(Value a, EvalObject(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(Value b, EvalObject(term->child(1)));
      return Value::MakePair(std::move(a), std::move(b));
    }
    case TermKind::kApplyFn: {
      KOLA_ASSIGN_OR_RETURN(Value arg, EvalObject(term->child(1)));
      return Apply(term->child(0), arg);
    }
    case TermKind::kApplyPred: {
      KOLA_ASSIGN_OR_RETURN(Value arg, EvalObject(term->child(1)));
      KOLA_ASSIGN_OR_RETURN(bool holds, Holds(term->child(0), arg));
      return Value::Bool(holds);
    }
    case TermKind::kMetaVar:
      return FailedPreconditionError(
          "cannot evaluate a pattern containing metavariable ?" +
          term->name());
    default:
      return TypeError(std::string("term of kind ") +
                       TermKindToString(term->kind()) +
                       " is not an object: " + term->ToString());
  }
}

StatusOr<Value> Evaluator::ApplyPrimitive(const std::string& name,
                                          const Value& argument) {
  if (name == "id") return argument;
  if (name == "pi1") {
    KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "pi1"));
    return pair.first;
  }
  if (name == "pi2") {
    KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "pi2"));
    return pair.second;
  }
  if (name == "flat") {
    if (!argument.is_collection()) return NotASet("flat", argument);
    std::vector<Value> out;
    for (const Value& inner : argument.elements()) {
      if (!inner.is_collection()) return NotASet("flat (element)", inner);
      for (const Value& x : inner.elements()) out.push_back(x);
    }
    return MakeLike(argument, std::move(out));
  }
  if (name == "distinct") {
    if (!argument.is_collection()) return NotASet("distinct", argument);
    return Value::MakeSet(argument.elements());
  }
  if (name == "tobag") {
    if (!argument.is_collection()) return NotASet("tobag", argument);
    return Value::MakeBag(argument.elements());
  }
  if (name == "card") {
    if (!argument.is_collection()) return NotASet("card", argument);
    return Value::Int(static_cast<int64_t>(argument.SetSize()));
  }
  if (name == "union" || name == "intersect" || name == "diff") {
    KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, name.c_str()));
    if (!pair.first.is_collection()) return NotASet(name.c_str(), pair.first);
    if (!pair.second.is_collection()) {
      return NotASet(name.c_str(), pair.second);
    }
    bool bag = pair.first.is_bag() || pair.second.is_bag();
    std::vector<Value> out;
    if (name == "union") {
      // Additive for bags, deduplicating for sets.
      out = pair.first.elements();
      for (const Value& x : pair.second.elements()) out.push_back(x);
    } else if (name == "intersect") {
      // Multiset semantics: min of multiplicities (equal to the set
      // semantics when both sides are sets).
      std::map<Value, int64_t> counts;
      for (const Value& x : pair.second.elements()) ++counts[x];
      for (const Value& x : pair.first.elements()) {
        auto it = counts.find(x);
        if (it != counts.end() && it->second > 0) {
          --it->second;
          out.push_back(x);
        }
      }
    } else {
      // Multiset difference: subtract multiplicities.
      std::map<Value, int64_t> counts;
      for (const Value& x : pair.second.elements()) ++counts[x];
      for (const Value& x : pair.first.elements()) {
        auto it = counts.find(x);
        if (it != counts.end() && it->second > 0) {
          --it->second;
          continue;
        }
        out.push_back(x);
      }
    }
    return bag ? Value::MakeBag(std::move(out))
               : Value::MakeSet(std::move(out));
  }
  return db_->CallFunction(name, argument);
}

StatusOr<bool> Evaluator::HoldsPrimitive(const std::string& name,
                                         const Value& argument) {
  if (name == "eq") {
    KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "eq"));
    return Value::Compare(pair.first, pair.second) == 0;
  }
  if (name == "neq") {
    KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "neq"));
    return Value::Compare(pair.first, pair.second) != 0;
  }
  if (name == "lt" || name == "leq" || name == "gt" || name == "geq") {
    KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, name.c_str()));
    KOLA_ASSIGN_OR_RETURN(int c, OrderedCompare(pair.first, pair.second));
    if (name == "lt") return c < 0;
    if (name == "leq") return c <= 0;
    if (name == "gt") return c > 0;
    return c >= 0;
  }
  if (name == "in") {
    KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "in"));
    if (!pair.second.is_collection()) return NotASet("in", pair.second);
    return pair.second.SetContains(pair.first);
  }
  // Schema predicates resolve through the database and must yield a bool.
  KOLA_ASSIGN_OR_RETURN(Value result, db_->CallFunction(name, argument));
  KOLA_ASSIGN_OR_RETURN(bool b, result.AsBool());
  return b;
}

StatusOr<Value> Evaluator::Apply(const TermPtr& fn, const Value& argument) {
  KOLA_CHECK(fn != nullptr);
  KOLA_RETURN_IF_ERROR(Tick());
  switch (fn->kind()) {
    case TermKind::kPrimFn:
      return ApplyPrimitive(fn->name(), argument);
    case TermKind::kCompose: {
      KOLA_ASSIGN_OR_RETURN(Value inner, Apply(fn->child(1), argument));
      return Apply(fn->child(0), inner);
    }
    case TermKind::kPairFn: {
      KOLA_ASSIGN_OR_RETURN(Value a, Apply(fn->child(0), argument));
      KOLA_ASSIGN_OR_RETURN(Value b, Apply(fn->child(1), argument));
      return Value::MakePair(std::move(a), std::move(b));
    }
    case TermKind::kProduct: {
      KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "product"));
      KOLA_ASSIGN_OR_RETURN(Value a, Apply(fn->child(0), pair.first));
      KOLA_ASSIGN_OR_RETURN(Value b, Apply(fn->child(1), pair.second));
      return Value::MakePair(std::move(a), std::move(b));
    }
    case TermKind::kConstFn:
      return EvalObject(fn->child(0));
    case TermKind::kCurryFn: {
      KOLA_ASSIGN_OR_RETURN(Value v, EvalObject(fn->child(1)));
      return Apply(fn->child(0), Value::MakePair(std::move(v), argument));
    }
    case TermKind::kCond: {
      KOLA_ASSIGN_OR_RETURN(bool c, Holds(fn->child(0), argument));
      return Apply(c ? fn->child(1) : fn->child(2), argument);
    }
    case TermKind::kIterate: {
      // Polymorphic over the collection kind: iterating a bag yields a bag
      // (duplicates preserved), the Section 6 deferred-duplicate-
      // elimination extension.
      if (!argument.is_collection()) return NotASet("iterate", argument);
      std::vector<Value> out;
      for (const Value& x : argument.elements()) {
        KOLA_ASSIGN_OR_RETURN(bool keep, Holds(fn->child(0), x));
        if (!keep) continue;
        KOLA_ASSIGN_OR_RETURN(Value y, Apply(fn->child(1), x));
        KOLA_RETURN_IF_ERROR(ChargeScratch(1));
        out.push_back(std::move(y));
      }
      return MakeLike(argument, std::move(out));
    }
    case TermKind::kIter: {
      KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "iter"));
      if (!pair.second.is_collection()) return NotASet("iter", pair.second);
      std::vector<Value> out;
      for (const Value& y : pair.second.elements()) {
        Value env = Value::MakePair(pair.first, y);
        KOLA_ASSIGN_OR_RETURN(bool keep, Holds(fn->child(0), env));
        if (!keep) continue;
        KOLA_ASSIGN_OR_RETURN(Value v, Apply(fn->child(1), env));
        KOLA_RETURN_IF_ERROR(ChargeScratch(1));
        out.push_back(std::move(v));
      }
      return MakeLike(pair.second, std::move(out));
    }
    case TermKind::kJoin: {
      KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "join"));
      if (!pair.first.is_collection()) {
        return NotASet("join (first)", pair.first);
      }
      if (!pair.second.is_collection()) {
        return NotASet("join (second)", pair.second);
      }
      if (options_.physical_fastpaths && pair.first.is_set() &&
          pair.second.is_set()) {
        if (auto fast = TryFastJoin(fn, pair.first, pair.second)) {
          return *std::move(fast);
        }
      }
      std::vector<Value> out;
      for (const Value& x : pair.first.elements()) {
        for (const Value& y : pair.second.elements()) {
          Value xy = Value::MakePair(x, y);
          KOLA_ASSIGN_OR_RETURN(bool keep, Holds(fn->child(0), xy));
          if (!keep) continue;
          KOLA_ASSIGN_OR_RETURN(Value v, Apply(fn->child(1), xy));
          KOLA_RETURN_IF_ERROR(ChargeScratch(1));
          out.push_back(std::move(v));
        }
      }
      return (pair.first.is_bag() || pair.second.is_bag())
                 ? Value::MakeBag(std::move(out))
                 : Value::MakeSet(std::move(out));
    }
    case TermKind::kNest: {
      // nest(f, g) ! [A, B] = { [y, {g!x | x in A, f!x = y}] | y in B }.
      // The paper's NULL-avoiding nest: grouping is relative to B, so
      // elements of B with no matches map to the empty set.
      KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "nest"));
      if (!pair.first.is_collection()) {
        return NotASet("nest (first)", pair.first);
      }
      if (!pair.second.is_collection()) {
        return NotASet("nest (second)", pair.second);
      }
      if (options_.physical_fastpaths && pair.first.is_set() &&
          pair.second.is_set()) {
        if (auto fast = TryFastNest(fn, pair.first, pair.second)) {
          return *std::move(fast);
        }
      }
      std::vector<Value> out;
      for (const Value& y : pair.second.elements()) {
        std::vector<Value> group;
        for (const Value& x : pair.first.elements()) {
          KOLA_ASSIGN_OR_RETURN(Value key, Apply(fn->child(0), x));
          if (Value::Compare(key, y) != 0) continue;
          KOLA_ASSIGN_OR_RETURN(Value v, Apply(fn->child(1), x));
          KOLA_RETURN_IF_ERROR(ChargeScratch(1));
          group.push_back(std::move(v));
        }
        KOLA_RETURN_IF_ERROR(ChargeScratch(1));
        out.push_back(
            Value::MakePair(y, MakeLike(pair.first, std::move(group))));
      }
      return MakeLike(pair.second, std::move(out));
    }
    case TermKind::kUnnest: {
      // unnest(f, g) ! A = { [f!x, y] | x in A, y in g!x }.
      if (!argument.is_collection()) return NotASet("unnest", argument);
      std::vector<Value> out;
      for (const Value& x : argument.elements()) {
        KOLA_ASSIGN_OR_RETURN(Value key, Apply(fn->child(0), x));
        KOLA_ASSIGN_OR_RETURN(Value inner, Apply(fn->child(1), x));
        if (!inner.is_collection()) return NotASet("unnest (inner)", inner);
        for (const Value& y : inner.elements()) {
          KOLA_RETURN_IF_ERROR(ChargeScratch(1));
          out.push_back(Value::MakePair(key, y));
        }
      }
      return MakeLike(argument, std::move(out));
    }
    case TermKind::kMetaVar:
      return FailedPreconditionError(
          "cannot evaluate a pattern containing metavariable ?" + fn->name());
    default:
      return TypeError(std::string("term of kind ") +
                       TermKindToString(fn->kind()) +
                       " is not a function: " + fn->ToString());
  }
}

StatusOr<bool> Evaluator::Holds(const TermPtr& pred, const Value& argument) {
  KOLA_CHECK(pred != nullptr);
  KOLA_RETURN_IF_ERROR(Tick());
  switch (pred->kind()) {
    case TermKind::kPrimPred:
      return HoldsPrimitive(pred->name(), argument);
    case TermKind::kOplus: {
      KOLA_ASSIGN_OR_RETURN(Value inner, Apply(pred->child(1), argument));
      return Holds(pred->child(0), inner);
    }
    case TermKind::kAndP: {
      KOLA_ASSIGN_OR_RETURN(bool a, Holds(pred->child(0), argument));
      if (!a) return false;
      return Holds(pred->child(1), argument);
    }
    case TermKind::kOrP: {
      KOLA_ASSIGN_OR_RETURN(bool a, Holds(pred->child(0), argument));
      if (a) return true;
      return Holds(pred->child(1), argument);
    }
    case TermKind::kInvP: {
      KOLA_ASSIGN_OR_RETURN(auto pair, AsPair(argument, "inv"));
      return Holds(pred->child(0),
                   Value::MakePair(pair.second, pair.first));
    }
    case TermKind::kNotP: {
      KOLA_ASSIGN_OR_RETURN(bool a, Holds(pred->child(0), argument));
      return !a;
    }
    case TermKind::kConstPred: {
      const TermPtr& b = pred->child(0);
      if (b->kind() == TermKind::kBoolConst) return b->bool_const();
      KOLA_ASSIGN_OR_RETURN(Value v, EvalObject(b));
      KOLA_ASSIGN_OR_RETURN(bool result, v.AsBool());
      return result;
    }
    case TermKind::kCurryPred: {
      KOLA_ASSIGN_OR_RETURN(Value v, EvalObject(pred->child(1)));
      return Holds(pred->child(0), Value::MakePair(std::move(v), argument));
    }
    case TermKind::kMetaVar:
      return FailedPreconditionError(
          "cannot evaluate a pattern containing metavariable ?" +
          pred->name());
    default:
      return TypeError(std::string("term of kind ") +
                       TermKindToString(pred->kind()) +
                       " is not a predicate: " + pred->ToString());
  }
}

std::optional<StatusOr<Value>> Evaluator::TryFastJoin(const TermPtr& join,
                                                      const Value& lhs,
                                                      const Value& rhs) {
  // Recognize join(OP @ (f x g), h) with OP in {eq, in}.
  const TermPtr& pred = join->child(0);
  const TermPtr& h = join->child(1);
  if (pred->kind() != TermKind::kOplus) return std::nullopt;
  if (pred->child(0)->kind() != TermKind::kPrimPred) return std::nullopt;
  const std::string& op = pred->child(0)->name();
  if (op != "eq" && op != "in") return std::nullopt;
  if (pred->child(1)->kind() != TermKind::kProduct) return std::nullopt;
  const TermPtr& f = pred->child(1)->child(0);
  const TermPtr& g = pred->child(1)->child(1);

  auto run = [&]() -> StatusOr<Value> {
    // Build an index over the right side: key -> elements. For eq the key
    // is g!b itself; for in every member of the set g!b is a key.
    std::map<Value, std::vector<Value>> index;
    for (const Value& b : rhs.elements()) {
      KOLA_RETURN_IF_ERROR(Tick());
      KOLA_ASSIGN_OR_RETURN(Value key, Apply(g, b));
      if (op == "eq") {
        KOLA_RETURN_IF_ERROR(ChargeScratch(1));
        index[std::move(key)].push_back(b);
      } else {
        if (!key.is_set()) {
          return TypeError("in-join expects a set key, got " +
                           key.ToString());
        }
        for (const Value& member : key.elements()) {
          KOLA_RETURN_IF_ERROR(ChargeScratch(1));
          index[member].push_back(b);
        }
      }
    }
    std::vector<Value> out;
    for (const Value& a : lhs.elements()) {
      KOLA_RETURN_IF_ERROR(Tick());
      KOLA_ASSIGN_OR_RETURN(Value key, Apply(f, a));
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (const Value& b : it->second) {
        KOLA_ASSIGN_OR_RETURN(Value v, Apply(h, Value::MakePair(a, b)));
        KOLA_RETURN_IF_ERROR(ChargeScratch(1));
        out.push_back(std::move(v));
      }
    }
    ++fastpath_hits_;
    return Value::MakeSet(std::move(out));
  };
  return run();
}

std::optional<StatusOr<Value>> Evaluator::TryFastNest(const TermPtr& nest,
                                                      const Value& lhs,
                                                      const Value& rhs) {
  if (!nest->child(0)->IsPrimFn("pi1") || !nest->child(1)->IsPrimFn("pi2")) {
    return std::nullopt;
  }
  auto run = [&]() -> StatusOr<Value> {
    std::map<Value, std::vector<Value>> groups;
    for (const Value& x : lhs.elements()) {
      KOLA_RETURN_IF_ERROR(Tick());
      if (!x.is_pair()) {
        return TypeError("nest(pi1, pi2) expects pairs, got " + x.ToString());
      }
      KOLA_RETURN_IF_ERROR(ChargeScratch(1));
      groups[x.first()].push_back(x.second());
    }
    std::vector<Value> out;
    for (const Value& y : rhs.elements()) {
      KOLA_RETURN_IF_ERROR(Tick());
      auto it = groups.find(y);
      std::vector<Value> members =
          it == groups.end() ? std::vector<Value>{} : it->second;
      KOLA_RETURN_IF_ERROR(ChargeScratch(1));
      out.push_back(Value::MakePair(y, Value::MakeSet(std::move(members))));
    }
    ++fastpath_hits_;
    return Value::MakeSet(std::move(out));
  };
  return run();
}

StatusOr<Value> EvalQuery(const Database& db, const TermPtr& term) {
  Evaluator evaluator(&db);
  return evaluator.EvalObject(term);
}

}  // namespace kola
