#include "optimizer/cost.h"

#include <algorithm>

#include "common/macros.h"

namespace kola {

namespace {

/// Set-valued schema attributes and their default fanout source.
bool IsSetValuedAttribute(const std::string& name) {
  return name == "child" || name == "cars" || name == "grgs";
}

ShapePtr ElementOrScalar(const ShapePtr& shape) {
  if (shape != nullptr && shape->kind == Shape::Kind::kSet &&
      shape->element != nullptr) {
    return shape->element;
  }
  return Shape::Scalar();
}

double CardOrOne(const ShapePtr& shape) {
  return (shape != nullptr && shape->kind == Shape::Kind::kSet)
             ? shape->card
             : 1.0;
}

}  // namespace

ShapePtr Shape::Scalar() {
  auto s = std::make_shared<Shape>();
  s->kind = Kind::kScalar;
  return s;
}

ShapePtr Shape::Set(double card, ShapePtr element) {
  auto s = std::make_shared<Shape>();
  s->kind = Kind::kSet;
  s->card = std::max(0.0, card);
  s->element = std::move(element);
  return s;
}

ShapePtr Shape::Pair(ShapePtr first, ShapePtr second) {
  auto s = std::make_shared<Shape>();
  s->kind = Kind::kPair;
  s->first = std::move(first);
  s->second = std::move(second);
  return s;
}

StatusOr<double> CostModel::EstimateQueryCost(const TermPtr& query) const {
  KOLA_ASSIGN_OR_RETURN(Estimate estimate, EstimateObject(query));
  return estimate.cost;
}

StatusOr<CostModel::Estimate> CostModel::EstimateObject(
    const TermPtr& term) const {
  switch (term->kind()) {
    case TermKind::kCollection: {
      double card = 10.0;
      if (db_ != nullptr) {
        auto extent = db_->Extent(term->name());
        if (extent.ok()) card = static_cast<double>(extent->SetSize());
      }
      return Estimate{1.0, Shape::Set(card, Shape::Scalar())};
    }
    case TermKind::kLiteral: {
      const Value& v = term->literal();
      if (v.is_set()) {
        ShapePtr element = Shape::Scalar();
        if (v.SetSize() > 0 && v.elements()[0].is_set()) {
          element = Shape::Set(
              static_cast<double>(v.elements()[0].SetSize()),
              Shape::Scalar());
        }
        return Estimate{1.0, Shape::Set(static_cast<double>(v.SetSize()),
                                        std::move(element))};
      }
      return Estimate{1.0, Shape::Scalar()};
    }
    case TermKind::kBoolConst:
      return Estimate{1.0, Shape::Scalar()};
    case TermKind::kPairObj: {
      KOLA_ASSIGN_OR_RETURN(Estimate a, EstimateObject(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(Estimate b, EstimateObject(term->child(1)));
      return Estimate{a.cost + b.cost,
                      Shape::Pair(std::move(a.shape), std::move(b.shape))};
    }
    case TermKind::kApplyFn: {
      KOLA_ASSIGN_OR_RETURN(Estimate arg, EstimateObject(term->child(1)));
      KOLA_ASSIGN_OR_RETURN(Estimate fn,
                            EstimateApply(term->child(0), arg.shape));
      return Estimate{arg.cost + fn.cost, fn.shape};
    }
    case TermKind::kApplyPred: {
      KOLA_ASSIGN_OR_RETURN(Estimate arg, EstimateObject(term->child(1)));
      PredEstimate pred = EstimatePred(term->child(0), arg.shape);
      return Estimate{arg.cost + pred.cost, Shape::Scalar()};
    }
    default:
      return InvalidArgumentError(
          std::string("cannot cost non-object term of kind ") +
          TermKindToString(term->kind()));
  }
}

StatusOr<CostModel::Estimate> CostModel::EstimateApply(
    const TermPtr& fn, const ShapePtr& in) const {
  ShapePtr input = in == nullptr ? Shape::Scalar() : in;
  switch (fn->kind()) {
    case TermKind::kPrimFn: {
      const std::string& name = fn->name();
      if (name == "id") return Estimate{0.5, input};
      if (name == "pi1") {
        return Estimate{1.0, input->kind == Shape::Kind::kPair &&
                                     input->first != nullptr
                                 ? input->first
                                 : Shape::Scalar()};
      }
      if (name == "pi2") {
        return Estimate{1.0, input->kind == Shape::Kind::kPair &&
                                     input->second != nullptr
                                 ? input->second
                                 : Shape::Scalar()};
      }
      if (name == "flat") {
        double outer = CardOrOne(input);
        double inner = CardOrOne(ElementOrScalar(input));
        return Estimate{outer * inner,
                        Shape::Set(outer * inner,
                                   ElementOrScalar(ElementOrScalar(input)))};
      }
      if (name == "union" || name == "intersect" || name == "diff") {
        double a = input->kind == Shape::Kind::kPair
                       ? CardOrOne(input->first)
                       : 1.0;
        double b = input->kind == Shape::Kind::kPair
                       ? CardOrOne(input->second)
                       : 1.0;
        return Estimate{a + b, Shape::Set(std::max(a, b), Shape::Scalar())};
      }
      if (IsSetValuedAttribute(name)) {
        return Estimate{1.0, Shape::Set(params_.default_fanout,
                                        Shape::Scalar())};
      }
      return Estimate{1.0, Shape::Scalar()};
    }
    case TermKind::kCompose: {
      KOLA_ASSIGN_OR_RETURN(Estimate g, EstimateApply(fn->child(1), input));
      KOLA_ASSIGN_OR_RETURN(Estimate f, EstimateApply(fn->child(0), g.shape));
      return Estimate{g.cost + f.cost, f.shape};
    }
    case TermKind::kPairFn: {
      KOLA_ASSIGN_OR_RETURN(Estimate f, EstimateApply(fn->child(0), input));
      KOLA_ASSIGN_OR_RETURN(Estimate g, EstimateApply(fn->child(1), input));
      return Estimate{f.cost + g.cost,
                      Shape::Pair(std::move(f.shape), std::move(g.shape))};
    }
    case TermKind::kProduct: {
      ShapePtr a = input->kind == Shape::Kind::kPair && input->first
                       ? input->first
                       : Shape::Scalar();
      ShapePtr b = input->kind == Shape::Kind::kPair && input->second
                       ? input->second
                       : Shape::Scalar();
      KOLA_ASSIGN_OR_RETURN(Estimate f, EstimateApply(fn->child(0), a));
      KOLA_ASSIGN_OR_RETURN(Estimate g, EstimateApply(fn->child(1), b));
      return Estimate{f.cost + g.cost,
                      Shape::Pair(std::move(f.shape), std::move(g.shape))};
    }
    case TermKind::kConstFn:
      return EstimateObject(fn->child(0));
    case TermKind::kCurryFn: {
      KOLA_ASSIGN_OR_RETURN(Estimate k, EstimateObject(fn->child(1)));
      KOLA_ASSIGN_OR_RETURN(
          Estimate f,
          EstimateApply(fn->child(0), Shape::Pair(k.shape, input)));
      return Estimate{k.cost + f.cost, f.shape};
    }
    case TermKind::kCond: {
      PredEstimate p = EstimatePred(fn->child(0), input);
      KOLA_ASSIGN_OR_RETURN(Estimate f, EstimateApply(fn->child(1), input));
      KOLA_ASSIGN_OR_RETURN(Estimate g, EstimateApply(fn->child(2), input));
      return Estimate{p.cost + std::max(f.cost, g.cost),
                      f.shape != nullptr ? f.shape : g.shape};
    }
    case TermKind::kIterate: {
      double n = CardOrOne(input);
      ShapePtr element = ElementOrScalar(input);
      PredEstimate p = EstimatePred(fn->child(0), element);
      KOLA_ASSIGN_OR_RETURN(Estimate f,
                            EstimateApply(fn->child(1), element));
      return Estimate{n * (p.cost + p.selectivity * f.cost),
                      Shape::Set(n * p.selectivity, f.shape)};
    }
    case TermKind::kIter: {
      ShapePtr env = input->kind == Shape::Kind::kPair && input->first
                         ? input->first
                         : Shape::Scalar();
      ShapePtr set = input->kind == Shape::Kind::kPair && input->second
                         ? input->second
                         : Shape::Set(params_.default_fanout,
                                      Shape::Scalar());
      double n = CardOrOne(set);
      ShapePtr pair = Shape::Pair(env, ElementOrScalar(set));
      PredEstimate p = EstimatePred(fn->child(0), pair);
      KOLA_ASSIGN_OR_RETURN(Estimate f, EstimateApply(fn->child(1), pair));
      return Estimate{n * (p.cost + p.selectivity * f.cost),
                      Shape::Set(n * p.selectivity, f.shape)};
    }
    case TermKind::kJoin: {
      ShapePtr lhs = input->kind == Shape::Kind::kPair && input->first
                         ? input->first
                         : Shape::Set(10, Shape::Scalar());
      ShapePtr rhs = input->kind == Shape::Kind::kPair && input->second
                         ? input->second
                         : Shape::Set(10, Shape::Scalar());
      double a = CardOrOne(lhs);
      double b = CardOrOne(rhs);
      ShapePtr pair =
          Shape::Pair(ElementOrScalar(lhs), ElementOrScalar(rhs));
      PredEstimate p = EstimatePred(fn->child(0), pair);
      KOLA_ASSIGN_OR_RETURN(Estimate f, EstimateApply(fn->child(1), pair));
      double matches = a * b * p.selectivity;
      // Hash-keyed joins (eq/in over a product) cost build + probe + output
      // instead of the full cross product.
      bool keyed = params_.assume_physical_fastpaths &&
                   fn->child(0)->kind() == TermKind::kOplus &&
                   fn->child(0)->child(0)->kind() == TermKind::kPrimPred &&
                   (fn->child(0)->child(0)->name() == "eq" ||
                    fn->child(0)->child(0)->name() == "in") &&
                   fn->child(0)->child(1)->kind() == TermKind::kProduct;
      double scan_cost = keyed
                             ? (a + b * params_.default_fanout)
                             : a * b * p.cost;
      return Estimate{scan_cost + matches * f.cost,
                      Shape::Set(matches, f.shape)};
    }
    case TermKind::kNest: {
      ShapePtr lhs = input->kind == Shape::Kind::kPair && input->first
                         ? input->first
                         : Shape::Set(10, Shape::Scalar());
      ShapePtr rhs = input->kind == Shape::Kind::kPair && input->second
                         ? input->second
                         : Shape::Set(10, Shape::Scalar());
      double a = CardOrOne(lhs);
      double b = CardOrOne(rhs);
      bool keyed = params_.assume_physical_fastpaths &&
                   fn->child(0)->IsPrimFn("pi1") &&
                   fn->child(1)->IsPrimFn("pi2");
      double cost = keyed ? (a + b) : a * b;
      ShapePtr group_element = Shape::Scalar();
      KOLA_ASSIGN_OR_RETURN(Estimate g,
                            EstimateApply(fn->child(1),
                                          ElementOrScalar(lhs)));
      group_element = g.shape;
      return Estimate{
          cost, Shape::Set(b, Shape::Pair(ElementOrScalar(rhs),
                                          Shape::Set(std::max(1.0, a / std::max(1.0, b)),
                                                     group_element)))};
    }
    case TermKind::kUnnest: {
      double n = CardOrOne(input);
      ShapePtr element = ElementOrScalar(input);
      KOLA_ASSIGN_OR_RETURN(Estimate f, EstimateApply(fn->child(0), element));
      KOLA_ASSIGN_OR_RETURN(Estimate g, EstimateApply(fn->child(1), element));
      double fanout = CardOrOne(g.shape);
      return Estimate{n * (f.cost + g.cost + fanout),
                      Shape::Set(n * fanout,
                                 Shape::Pair(f.shape,
                                             ElementOrScalar(g.shape)))};
    }
    default:
      // Unknown function former: conservative constant.
      return Estimate{1.0, Shape::Scalar()};
  }
}

CostModel::PredEstimate CostModel::EstimatePred(const TermPtr& pred,
                                                const ShapePtr& in) const {
  switch (pred->kind()) {
    case TermKind::kConstPred: {
      bool truth = pred->child(0)->kind() == TermKind::kBoolConst &&
                   pred->child(0)->bool_const();
      bool falsity = pred->child(0)->kind() == TermKind::kBoolConst &&
                     !pred->child(0)->bool_const();
      return PredEstimate{0.5, truth ? 1.0 : (falsity ? 0.0 : 0.5)};
    }
    case TermKind::kAndP: {
      PredEstimate a = EstimatePred(pred->child(0), in);
      PredEstimate b = EstimatePred(pred->child(1), in);
      return PredEstimate{a.cost + a.selectivity * b.cost,
                          a.selectivity * b.selectivity};
    }
    case TermKind::kOrP: {
      PredEstimate a = EstimatePred(pred->child(0), in);
      PredEstimate b = EstimatePred(pred->child(1), in);
      return PredEstimate{
          a.cost + (1 - a.selectivity) * b.cost,
          a.selectivity + b.selectivity - a.selectivity * b.selectivity};
    }
    case TermKind::kNotP: {
      PredEstimate a = EstimatePred(pred->child(0), in);
      return PredEstimate{a.cost, 1 - a.selectivity};
    }
    case TermKind::kInvP:
      return EstimatePred(pred->child(0), in);
    case TermKind::kOplus: {
      auto f = EstimateApply(pred->child(1), in);
      double fcost = f.ok() ? f->cost : 1.0;
      PredEstimate p = EstimatePred(pred->child(0),
                                    f.ok() ? f->shape : Shape::Scalar());
      return PredEstimate{fcost + p.cost, p.selectivity};
    }
    case TermKind::kCurryPred: {
      auto k = EstimateObject(pred->child(1));
      double kcost = k.ok() ? k->cost : 1.0;
      PredEstimate p = EstimatePred(
          pred->child(0),
          Shape::Pair(k.ok() ? k->shape : Shape::Scalar(), in));
      return PredEstimate{kcost + p.cost, p.selectivity};
    }
    default:
      return PredEstimate{1.0, params_.default_selectivity};
  }
}

}  // namespace kola
