#ifndef KOLA_OPTIMIZER_OPTIMIZER_H_
#define KOLA_OPTIMIZER_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "optimizer/cost.h"
#include "rewrite/engine.h"
#include "rewrite/properties.h"
#include "term/term.h"

namespace kola {

/// Result of a full optimization pass.
struct OptimizeResult {
  TermPtr query;                       // chosen plan
  TermPtr rewritten;                   // fully transformed candidate
  double cost_before = 0;              // estimated cost of the input
  double cost_after = 0;               // estimated cost of the candidate
  bool kept_rewrite = false;           // candidate won on estimated cost
  std::vector<std::string> applied_blocks;
  Trace trace;                         // every rule firing
};

/// The end-to-end rule-driven optimizer: simplification, code motion,
/// hidden-join untangling, final cleanup -- all of it rules + strategies,
/// no head or body routines. Cost-based acceptance uses the CostModel.
class Optimizer {
 public:
  /// `properties` enables precondition-guarded rules (may be nullptr).
  /// `db` grounds extent cardinalities for the cost model (may be nullptr).
  Optimizer(const PropertyStore* properties, const Database* db)
      : rewriter_(properties), cost_model_(db) {}

  /// As above, with explicit engine tunables -- the soundness harness uses
  /// this to run the same pipeline with and without fixpoint memoization.
  Optimizer(const PropertyStore* properties, const Database* db,
            RewriterOptions options)
      : rewriter_(properties, options), cost_model_(db) {}

  StatusOr<OptimizeResult> Optimize(const TermPtr& query) const;

  const Rewriter& rewriter() const { return rewriter_; }

 private:
  Rewriter rewriter_;
  CostModel cost_model_;
};

}  // namespace kola

#endif  // KOLA_OPTIMIZER_OPTIMIZER_H_
