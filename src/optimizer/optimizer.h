#ifndef KOLA_OPTIMIZER_OPTIMIZER_H_
#define KOLA_OPTIMIZER_OPTIMIZER_H_

#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "optimizer/cost.h"
#include "rewrite/engine.h"
#include "rewrite/properties.h"
#include "term/term.h"

namespace kola {

/// Result of a full optimization pass.
struct OptimizeResult {
  TermPtr query;                       // chosen plan
  TermPtr rewritten;                   // fully transformed candidate
  double cost_before = 0;              // estimated cost of the input
  double cost_after = 0;               // estimated cost of the candidate
  bool kept_rewrite = false;           // candidate won on estimated cost
  std::vector<std::string> applied_blocks;
  Trace trace;                         // every rule firing
};

/// The end-to-end rule-driven optimizer: simplification, code motion,
/// hidden-join untangling, final cleanup -- all of it rules + strategies,
/// no head or body routines. Cost-based acceptance uses the CostModel.
class Optimizer {
 public:
  /// `properties` enables precondition-guarded rules (may be nullptr).
  /// `db` grounds extent cardinalities for the cost model (may be nullptr).
  /// Both must outlive the optimizer and stay unmodified while it runs.
  Optimizer(const PropertyStore* properties, const Database* db)
      : Optimizer(properties, db, RewriterOptions::Defaults()) {}

  /// As above, with explicit engine tunables -- the soundness harness uses
  /// this to run the same pipeline with and without fixpoint memoization.
  Optimizer(const PropertyStore* properties, const Database* db,
            RewriterOptions options)
      : rewriter_(properties, WithPooledCaches(options)),
        cost_model_(db),
        db_(db) {}

  StatusOr<OptimizeResult> Optimize(const TermPtr& query) const;

  /// Optimizes every query of the batch, fanning out across up to `jobs`
  /// worker threads; results come back in input order and each entry is
  /// byte-identical to what Optimize(queries[i]) returns, whatever `jobs`
  /// is (a worker owns its whole Optimizer clone -- rewriter, fixpoint
  /// cache pool, cost model -- so there is no cross-thread engine state,
  /// and Optimize itself is deterministic). The first failing query (by
  /// input index, not wall-clock) decides the error Status.
  StatusOr<std::vector<OptimizeResult>> OptimizeAll(
      std::span<const TermPtr> queries, int jobs = 1) const;

  const Rewriter& rewriter() const { return rewriter_; }

 private:
  /// The optimizer pipeline re-enters Fixpoint with the same rule blocks
  /// for every query, so its private Rewriter keeps per-fingerprint caches
  /// alive across calls (the per-worker cache of OptimizeAll). This is why
  /// an Optimizer instance must not be shared across threads: clone one per
  /// worker, as OptimizeAll does.
  static RewriterOptions WithPooledCaches(RewriterOptions options) {
    options.reuse_fixpoint_caches = true;
    return options;
  }

  Rewriter rewriter_;
  CostModel cost_model_;
  const Database* db_;
};

}  // namespace kola

#endif  // KOLA_OPTIMIZER_OPTIMIZER_H_
