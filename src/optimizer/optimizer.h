#ifndef KOLA_OPTIMIZER_OPTIMIZER_H_
#define KOLA_OPTIMIZER_OPTIMIZER_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/statusor.h"
#include "egraph/egraph.h"
#include "optimizer/cost.h"
#include "rewrite/engine.h"
#include "rewrite/properties.h"
#include "term/term.h"

namespace kola {

/// Why and where an optimization pass stopped early. Every rewrite is
/// semantics-preserving, so any prefix of the pipeline yields a sound plan
/// -- when a budget runs out or a rule block fails, the optimizer keeps
/// the best term it had and reports the stop here instead of erroring.
struct Degradation {
  bool degraded = false;
  std::string phase;        // pipeline phase that stopped ("" when clean)
  StatusCode code = StatusCode::kOk;  // the failure's status code
  std::string reason;       // the failure's message
  int64_t steps_spent = 0;  // governor steps charged at the stop (0 if
                            // ungoverned)

  /// "" when not degraded, else e.g.
  /// "degraded at loop-fusion (RESOURCE_EXHAUSTED: ...) after 512 steps".
  std::string ToString() const;
};

/// Result of a full optimization pass.
struct OptimizeResult {
  TermPtr query;                       // chosen plan
  TermPtr rewritten;                   // fully transformed candidate
  double cost_before = 0;              // estimated cost of the input
  double cost_after = 0;               // estimated cost of the candidate
  bool kept_rewrite = false;           // candidate won on estimated cost
  std::vector<std::string> applied_blocks;
  Degradation degradation;             // set when the pipeline stopped early
  Trace trace;                         // every rule firing
  EGraphStats egraph;                  // all zero unless use_egraph ran
};

/// One entry of OptimizeAll: `status` is OK iff `result` is populated.
/// A query that exhausts its budget degrades (OK + Degradation inside the
/// result); only failures outside the degradation contract -- a worker
/// dying, a thrown exception -- land in `status`, and they poison only
/// their own entry, never the batch.
struct BatchOptimizeResult {
  Status status;
  std::optional<OptimizeResult> result;

  bool ok() const { return status.ok(); }
};

/// The end-to-end rule-driven optimizer: simplification, code motion,
/// hidden-join untangling, final cleanup -- all of it rules + strategies,
/// no head or body routines. Cost-based acceptance uses the CostModel.
class Optimizer {
 public:
  /// `properties` enables precondition-guarded rules (may be nullptr).
  /// `db` grounds extent cardinalities for the cost model (may be nullptr).
  /// Both must outlive the optimizer and stay unmodified while it runs.
  Optimizer(const PropertyStore* properties, const Database* db)
      : Optimizer(properties, db, RewriterOptions::Defaults()) {}

  /// As above, with explicit engine tunables -- the soundness harness uses
  /// this to run the same pipeline with and without fixpoint memoization.
  Optimizer(const PropertyStore* properties, const Database* db,
            RewriterOptions options)
      : rewriter_(properties, WithPooledCaches(options)),
        cost_model_(db),
        db_(db) {}

  /// Runs the full pipeline. Exhaustion is NOT an error: when a phase
  /// fails (budget, deadline, injected fault, bad rule block), the pass
  /// stops, keeps the term produced by the completed phases -- the input
  /// query is the floor -- and returns OK with `degradation` populated.
  /// The returned plan is always sound; a non-OK Status can only come
  /// from the contract being violated before any rewriting starts.
  /// When RewriterOptions::memory_budget_bytes is set, the call runs under
  /// a private per-call Governor carrying that byte budget (exceeding it
  /// degrades exactly like a deadline).
  StatusOr<OptimizeResult> Optimize(const TermPtr& query) const;

  /// As above under a shared resource budget: the governor's deadline and
  /// step budget are charged by every fixpoint sweep and (if the caller
  /// also wires it into EvalOptions) evaluator tick driven by this pass.
  /// `governor` may be nullptr (ungoverned); it is not owned.
  StatusOr<OptimizeResult> Optimize(const TermPtr& query,
                                    const Governor* governor) const;

  /// Optimizes every query of the batch, fanning out across up to `jobs`
  /// worker threads; entries come back in input order and each OK entry is
  /// byte-identical to what Optimize(queries[i], governor) returns,
  /// whatever `jobs` is (a worker owns its whole Optimizer clone --
  /// rewriter, fixpoint cache pool, cost model -- so there is no
  /// cross-thread engine state, and Optimize itself is deterministic).
  /// Queries are isolated: one entry failing (worker death, exception)
  /// carries its own non-OK status and leaves every other entry intact.
  /// `governor`, when set, is shared by all workers: one budget for the
  /// whole batch.
  std::vector<BatchOptimizeResult> OptimizeAll(
      std::span<const TermPtr> queries, int jobs = 1,
      const Governor* governor = nullptr) const;

  const Rewriter& rewriter() const { return rewriter_; }

  /// The database the cost model was grounded on (may be nullptr). Exposed
  /// so wrappers (RetrySupervisor) can clone this optimizer with adjusted
  /// engine options.
  const Database* database() const { return db_; }

 private:
  /// The optimizer pipeline re-enters Fixpoint with the same rule blocks
  /// for every query, so its private Rewriter keeps per-fingerprint caches
  /// alive across calls (the per-worker cache of OptimizeAll). This is why
  /// an Optimizer instance must not be shared across threads: clone one per
  /// worker, as OptimizeAll does.
  static RewriterOptions WithPooledCaches(RewriterOptions options) {
    options.reuse_fixpoint_caches = true;
    return options;
  }

  StatusOr<OptimizeResult> RunPipeline(const TermPtr& query,
                                       const Rewriter& rewriter,
                                       const Governor* governor) const;

  Rewriter rewriter_;
  CostModel cost_model_;
  const Database* db_;
};

}  // namespace kola

#endif  // KOLA_OPTIMIZER_OPTIMIZER_H_
