#include "optimizer/code_motion.h"

#include "common/macros.h"
#include "rules/catalog.h"
#include "term/parser.h"

namespace kola {

namespace {

std::vector<Rule> Pick(const std::vector<Rule>& all,
                       const std::vector<std::string>& ids) {
  std::vector<Rule> rules;
  rules.reserve(ids.size());
  for (const std::string& id : ids) rules.push_back(FindRule(all, id));
  return rules;
}

}  // namespace

std::vector<RuleBlock> CodeMotionBlocks() {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<RuleBlock> blocks;
  blocks.emplace_back(
      "decompose-predicate",
      Exhaust(Pick(all, {"13", "7", "ext.inv-lt", "ext.inv-leq",
                         "ext.inv-geq", "ext.inv-eq", "ext.inv-neq",
                         "14"})));
  blocks.emplace_back("hoist-conditional", Exhaust(Pick(all, {"15"})));
  blocks.emplace_back("distribute", Exhaust(Pick(all, {"16"})));
  {
    // Rule 14 right-to-left re-fuses the oplus chain so the projection
    // rules can collapse it.
    std::vector<Rule> cleanup = Pick(all, {"9", "10", "3", "8", "1", "2"});
    auto rev14 = ReverseRule(FindRule(all, "14"));
    KOLA_CHECK_OK(rev14.status());
    cleanup.push_back(std::move(rev14).value());
    blocks.emplace_back("cleanup", Exhaust(std::move(cleanup)));
  }
  return blocks;
}

StatusOr<CodeMotionResult> ApplyCodeMotion(const TermPtr& query,
                                           const Rewriter& rewriter) {
  CodeMotionResult result;
  result.query = query;
  result.trace.initial = query;
  for (const RuleBlock& block : CodeMotionBlocks()) {
    KOLA_ASSIGN_OR_RETURN(StrategyResult block_result,
                          block.Apply(result.query, rewriter,
                                      &result.trace));
    result.query = block_result.term;
  }
  for (const RewriteStep& step : result.trace.steps) {
    if (step.rule_id == "15") {
      result.moved = true;
      break;
    }
  }
  return result;
}

TermPtr QueryK3() {
  auto term = ParseTerm(
      "iterate(Kp(T), (id, iter(gt @ (age o pi2, Kf(25)), pi2) o "
      "(id, child))) ! P",
      Sort::kObject);
  KOLA_CHECK_OK(term.status());
  return std::move(term).value();
}

TermPtr QueryK4() {
  auto term = ParseTerm(
      "iterate(Kp(T), (id, iter(gt @ (age o pi1, Kf(25)), pi2) o "
      "(id, child))) ! P",
      Sort::kObject);
  KOLA_CHECK_OK(term.status());
  return std::move(term).value();
}

}  // namespace kola
