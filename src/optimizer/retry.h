#ifndef KOLA_OPTIMIZER_RETRY_H_
#define KOLA_OPTIMIZER_RETRY_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "term/term.h"

namespace kola {

/// Tunables for RetrySupervisor: a base per-query resource envelope plus a
/// geometric escalation schedule for queries that degrade on
/// RESOURCE_EXHAUSTED.
struct RetryOptions {
  /// Memory budget of the FIRST attempt, in bytes. Must be positive for the
  /// supervisor to do anything beyond a plain ungoverned pass.
  int64_t memory_budget_bytes = 64 * 1024;
  /// Per-attempt wall-clock deadline in ms (0 = none). Escalated alongside
  /// the byte budget: a query that ran out of time gets more of it too.
  int64_t deadline_ms = 0;
  /// Per-attempt step budget (0 = unlimited). Escalated like the deadline.
  int64_t step_budget = 0;
  /// Budget multiplier applied on every escalation. Values <= 1 are
  /// treated as 2.0 (an escalation that does not escalate would retry the
  /// identical failure forever).
  double escalation_factor = 2.0;
  /// Total attempts per query (first try included). A query still degraded
  /// after the last attempt is quarantined, not failed. Minimum 1.
  int max_attempts = 3;
  /// Seed for the escalation jitter. Jitter for query i comes from
  /// Rng(seed).Child(i) -- a pure function of (seed, i), so the schedule is
  /// byte-identical at every OptimizeAll jobs level.
  uint64_t seed = 1;
};

/// What the supervisor did for one query.
struct RetryReport {
  int attempts = 0;            // optimization passes actually run
  int64_t final_budget = 0;    // byte budget of the last attempt
  bool quarantined = false;    // still degraded after max_attempts
  bool degraded = false;       // final result carries a Degradation
  /// Peak governed bytes across all attempts, total and per category --
  /// the attempt governors' MemoryBudget high-water marks, folded with
  /// max. Stats surfaces (kolad :stats) aggregate these so "which
  /// structure is eating the budget" is answerable per request.
  int64_t peak_bytes = 0;
  int64_t category_peak_bytes[kNumMemoryCategories] = {};
};

/// One supervised query: `status` is OK iff `result` is populated (a
/// quarantined query is OK -- its plan is sound, just under-optimized; only
/// contract violations and worker deaths produce a non-OK status).
struct RetryOutcome {
  Status status;
  std::optional<OptimizeResult> result;
  RetryReport report;

  bool ok() const { return status.ok(); }
};

/// Re-runs RESOURCE_EXHAUSTED-degraded optimization passes under
/// geometrically escalated budgets. Every attempt is sound (degradation
/// keeps the best completed-phase plan), so the supervisor is a pure
/// quality knob: attempt k runs under roughly
/// memory_budget_bytes * escalation_factor^k (jittered, deterministically
/// per query index), and a query that cannot be optimized cleanly within
/// max_attempts is quarantined with its best degraded plan instead of
/// erroring. Deterministic: the outcome for query i depends only on
/// (query, options, i), never on jobs or scheduling.
class RetrySupervisor {
 public:
  /// `optimizer` is borrowed and must outlive the supervisor. Its
  /// RewriterOptions (memoization, cache capacity...) are inherited by the
  /// per-worker clones OptimizeAll creates.
  RetrySupervisor(const Optimizer* optimizer, RetryOptions options);

  /// Supervises one query. `query_index` keys the jitter stream (pass the
  /// batch position when calling in a loop so results match OptimizeAll).
  RetryOutcome Optimize(const TermPtr& query, uint64_t query_index = 0) const;

  /// Supervises the whole batch across up to `jobs` workers; entries come
  /// back in input order, byte-identical at every jobs level.
  std::vector<RetryOutcome> OptimizeAll(std::span<const TermPtr> queries,
                                        int jobs = 1) const;

  const RetryOptions& options() const { return options_; }

 private:
  /// Budget of attempt `attempt` for query `query_index` (attempt 0 is the
  /// unjittered base so a 1-attempt supervisor equals a plain budget).
  int64_t AttemptBudget(uint64_t query_index, int attempt) const;

  RetryOutcome RunOne(const Optimizer& optimizer, const TermPtr& query,
                      uint64_t query_index) const;

  const Optimizer* optimizer_;
  RetryOptions options_;
};

}  // namespace kola

#endif  // KOLA_OPTIMIZER_RETRY_H_
