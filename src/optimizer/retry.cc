#include "optimizer/retry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <string>
#include <utility>

#include "common/random.h"
#include "common/thread_pool.h"

namespace kola {

namespace {

// Escalation ceiling: budgets saturate here instead of overflowing when a
// caller configures an absurd factor/attempt combination.
constexpr int64_t kMaxBudgetBytes = int64_t{1} << 56;

int64_t ScaleLimit(int64_t base, double factor, int attempt) {
  if (base <= 0 || attempt <= 0) return base;
  double scaled = static_cast<double>(base) * std::pow(factor, attempt);
  if (scaled >= static_cast<double>(kMaxBudgetBytes)) return kMaxBudgetBytes;
  return std::llround(scaled);
}

}  // namespace

RetrySupervisor::RetrySupervisor(const Optimizer* optimizer,
                                 RetryOptions options)
    : optimizer_(optimizer), options_(options) {
  if (options_.escalation_factor <= 1.0) options_.escalation_factor = 2.0;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

int64_t RetrySupervisor::AttemptBudget(uint64_t query_index,
                                       int attempt) const {
  // Attempt 0 is the exact configured base, so a 1-attempt supervisor
  // behaves like a plain memory budget. Escalations multiply by
  // factor * [1.0, 1.25): the jitter stream is Rng(seed).Child(i) -- a pure
  // function of (seed, query index) drawn in attempt order, so the whole
  // schedule is independent of scheduling and jobs.
  double budget = static_cast<double>(options_.memory_budget_bytes);
  Rng jitter = Rng(options_.seed).Child(query_index);
  for (int k = 1; k <= attempt; ++k) {
    budget *= options_.escalation_factor * (1.0 + 0.25 * jitter.NextDouble());
    if (budget >= static_cast<double>(kMaxBudgetBytes)) {
      return kMaxBudgetBytes;
    }
  }
  return std::llround(budget);
}

RetryOutcome RetrySupervisor::RunOne(const Optimizer& optimizer,
                                     const TermPtr& query,
                                     uint64_t query_index) const {
  RetryOutcome outcome;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    Governor::Limits limits;
    limits.memory_budget_bytes = AttemptBudget(query_index, attempt);
    // Time and step envelopes widen on the same geometric schedule (no
    // jitter: wall clock is already noisy, and steps track memory).
    limits.deadline_ms =
        ScaleLimit(options_.deadline_ms, options_.escalation_factor, attempt);
    limits.step_budget =
        ScaleLimit(options_.step_budget, options_.escalation_factor, attempt);
    Governor governor(limits);

    auto result = optimizer.Optimize(query, &governor);
    outcome.report.attempts = attempt + 1;
    outcome.report.final_budget = limits.memory_budget_bytes;
    const MemoryBudget& memory = governor.memory();
    outcome.report.peak_bytes =
        std::max(outcome.report.peak_bytes, memory.peak_bytes());
    for (int c = 0; c < kNumMemoryCategories; ++c) {
      int64_t& held = outcome.report.category_peak_bytes[c];
      held = std::max(held, memory.peak(static_cast<MemoryCategory>(c)));
    }
    if (!result.ok()) {
      outcome.status = result.status().WithContext(
          "supervised query " + std::to_string(query_index) + " attempt " +
          std::to_string(attempt + 1));
      outcome.result.reset();
      return outcome;
    }
    outcome.result = std::move(result).value();
    outcome.report.degraded = outcome.result->degradation.degraded;
    // Escalation only helps when the stop was a spent resource envelope; a
    // degradation on any other cause (an injected fault, a bad rule block)
    // would just replay, so the first result stands.
    const bool retryable =
        outcome.report.degraded &&
        outcome.result->degradation.code == StatusCode::kResourceExhausted;
    if (!retryable) return outcome;
  }
  // Still degraded at the top of the schedule: quarantine. The last
  // (largest-budget) attempt's plan is kept -- it is sound, just
  // under-optimized -- and the caller sees OK plus the quarantine flag.
  outcome.report.quarantined = true;
  return outcome;
}

RetryOutcome RetrySupervisor::Optimize(const TermPtr& query,
                                       uint64_t query_index) const {
  return RunOne(*optimizer_, query, query_index);
}

std::vector<RetryOutcome> RetrySupervisor::OptimizeAll(
    std::span<const TermPtr> queries, int jobs) const {
  const size_t count = queries.size();
  std::vector<RetryOutcome> outcomes(count);

  auto run_one = [&](const Optimizer& optimizer, size_t i) {
    try {
      outcomes[i] = RunOne(optimizer, queries[i], i);
    } catch (const std::exception& e) {
      outcomes[i].status = InternalError("supervised query " +
                                         std::to_string(i) +
                                         " threw: " + e.what());
    } catch (...) {
      outcomes[i].status = InternalError(
          "supervised query " + std::to_string(i) + " threw a non-std "
          "exception");
    }
  };

  if (jobs > static_cast<int>(count)) jobs = static_cast<int>(count);
  if (jobs <= 1) {
    for (size_t i = 0; i < count; ++i) run_one(*optimizer_, i);
    return outcomes;
  }
  // One Optimizer clone per worker, exactly like Optimizer::OptimizeAll:
  // clones share only immutable inputs, and every per-query decision
  // (budgets, jitter, retry count) is a pure function of the query index,
  // so the outcome vector is byte-identical at every jobs level.
  const PropertyStore* properties = optimizer_->rewriter().properties();
  const RewriterOptions options = optimizer_->rewriter().options();
  const Database* db = optimizer_->database();
  std::atomic<size_t> next{0};
  auto drain = [&] {
    Optimizer worker(properties, db, options);
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      run_one(worker, i);
    }
  };
  ThreadPool pool(jobs - 1);
  for (int w = 0; w < jobs - 1; ++w) pool.Submit(drain);
  drain();
  (void)pool.Wait();
  return outcomes;
}

}  // namespace kola
