#ifndef KOLA_OPTIMIZER_EXPLORE_H_
#define KOLA_OPTIMIZER_EXPLORE_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "optimizer/cost.h"
#include "rewrite/engine.h"
#include "term/term.h"

namespace kola {

/// A costed alternative plan produced by rule-based exploration.
struct Candidate {
  TermPtr query;
  double cost = 0;
  /// Rule ids applied to reach this plan from the input (empty for the
  /// input itself).
  std::vector<std::string> derivation;
};

/// Rule-based plan exploration over join queries (the Section 5 theme that
/// join reordering and its predicate adjustment are "straightforward to
/// express with KOLA rules"): breadth-first closure of the input under the
/// exploration rules
///
///   ext.join-commute           swap a join's inputs
///   ext.select-past-join-left  push a pi1-local selection below the join
///   ext.select-past-join-right push a pi2-local selection below the join
///
/// with identity/involution cleanup after every step so commuting twice
/// folds back onto an already-seen plan. Every candidate is costed; the
/// result is sorted cheapest-first (ties broken by derivation, then by the
/// plan's printed form, so the order -- and any truncation downstream -- is
/// deterministic) and always contains the input. Unlike a
/// Starburst-style implementation there is no predicate-sorting body
/// routine: which selections move is decided entirely by which rule
/// matches.
StatusOr<std::vector<Candidate>> ExploreJoinPlans(const TermPtr& query,
                                                  const Rewriter& rewriter,
                                                  const CostModel& model,
                                                  int max_candidates = 32);

}  // namespace kola

#endif  // KOLA_OPTIMIZER_EXPLORE_H_
