#ifndef KOLA_OPTIMIZER_COST_H_
#define KOLA_OPTIMIZER_COST_H_

#include <memory>

#include "common/statusor.h"
#include "term/term.h"
#include "values/database.h"

namespace kola {

/// Tunables for the heuristic cost model.
struct CostParams {
  double default_selectivity = 0.5;  // unknown predicate pass rate
  double default_fanout = 2.0;       // unknown set-valued attribute size
  /// When true, equality/membership-keyed joins and pi-projected nests are
  /// costed as hash operations (matching the evaluator's fast paths);
  /// otherwise everything is nested loops.
  bool assume_physical_fastpaths = true;
};

/// Abstract size description of a value: scalars, sets with expected
/// cardinality, pairs with per-component shapes.
struct Shape;
using ShapePtr = std::shared_ptr<const Shape>;

struct Shape {
  enum class Kind { kScalar, kSet, kPair };
  Kind kind = Kind::kScalar;
  double card = 1.0;   // kSet: expected number of elements
  ShapePtr element;    // kSet
  ShapePtr first;      // kPair
  ShapePtr second;     // kPair

  static ShapePtr Scalar();
  static ShapePtr Set(double card, ShapePtr element);
  static ShapePtr Pair(ShapePtr first, ShapePtr second);
};

/// A cardinality-based cost estimator for KOLA queries: estimates the
/// number of elementary operations the evaluator would perform, plus the
/// shape of the result. Drives the optimizer's keep-or-revert decision and
/// the cost columns of the benches. Heuristic by design -- unknown
/// constructs degrade to conservative defaults rather than failing.
class CostModel {
 public:
  explicit CostModel(const Database* db, CostParams params = CostParams())
      : db_(db), params_(params) {}

  /// Estimated cost of evaluating an object-sorted term (a full query).
  StatusOr<double> EstimateQueryCost(const TermPtr& query) const;

  struct Estimate {
    double cost = 0;
    ShapePtr shape;
  };

  /// Cost and result shape of an object term.
  StatusOr<Estimate> EstimateObject(const TermPtr& term) const;

  /// Cost and result shape of applying `fn` to an input of shape `in`.
  StatusOr<Estimate> EstimateApply(const TermPtr& fn,
                                   const ShapePtr& in) const;

  /// Per-invocation cost of a predicate on inputs of shape `in`, plus its
  /// estimated selectivity.
  struct PredEstimate {
    double cost = 1;
    double selectivity = 0.5;
  };
  PredEstimate EstimatePred(const TermPtr& pred, const ShapePtr& in) const;

 private:
  const Database* db_;
  CostParams params_;
};

}  // namespace kola

#endif  // KOLA_OPTIMIZER_COST_H_
