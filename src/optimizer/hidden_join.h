#ifndef KOLA_OPTIMIZER_HIDDEN_JOIN_H_
#define KOLA_OPTIMIZER_HIDDEN_JOIN_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "coko/strategy.h"
#include "rewrite/engine.h"
#include "term/term.h"

namespace kola {

/// Outcome of the five-step hidden-join strategy (Section 4.1).
struct HiddenJoinResult {
  TermPtr query;      // the transformed (or merely simplified) query
  bool converted = false;  // rule 19 fired: an explicit nest-of-join emerged
  Trace trace;        // every rule firing, in order
  /// Names of the blocks that changed the query, e.g. {"break-up",
  /// "bottom-out", "pull-up-nest", "absorb-join", "polish"}.
  std::vector<std::string> blocks_fired;
};

/// The five steps as named COKO rule blocks, in order:
///   1. break-up        rules 17/17b (+ identity cleanup 2, 4, 18)
///   2. bottom-out      rule 19
///   3. pull-up-nest    rules 20, 21
///   4. pull-up-unnest  rules 22, 23
///   5. absorb-join     rule 24 (+ predicate cleanup 3, 5, 6)
/// plus a final "polish" block (pair-to-product laws, refolding of the
/// composition chain).
std::vector<RuleBlock> HiddenJoinBlocks();

/// Runs the full strategy on `query` (an object-sorted term, typically
/// `iterate(...) ! A`). Applicability is discovered by the rules
/// themselves: when step 2 never fires the query is NOT a hidden join over
/// a named set, converted stays false, and the partially simplified query
/// is returned -- the gradual-rules advantage the paper argues for in
/// Section 4.2.
StatusOr<HiddenJoinResult> UntangleHiddenJoin(const TermPtr& query,
                                              const Rewriter& rewriter);

/// Generates a depth-n hidden-join query in the paper's Figure 7 shape over
/// the car-world schema:
///
///   iterate(Kp(T), (id, h1 o g1 o (id, h2 o g2 o ... (id, Kf(B)) ...))) ! A
///
/// with each gi an iter and each hi flat or id. n = 2 with the garage
/// pieces reproduces KG1 exactly. Used by tests and bench_hidden_join.
/// `levels` alternates flat-wrapped iters (like the garage query's grgs
/// level) and plain filtering levels.
StatusOr<TermPtr> MakeHiddenJoinQuery(int depth);

/// The exact Garage Query KG1 of Figure 3.
TermPtr GarageQueryKG1();

/// The exact target KG2 of Figure 3.
TermPtr GarageQueryKG2();

}  // namespace kola

#endif  // KOLA_OPTIMIZER_HIDDEN_JOIN_H_
