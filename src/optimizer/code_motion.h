#ifndef KOLA_OPTIMIZER_CODE_MOTION_H_
#define KOLA_OPTIMIZER_CODE_MOTION_H_

#include <vector>

#include "common/statusor.h"
#include "coko/strategy.h"
#include "rewrite/engine.h"
#include "term/term.h"

namespace kola {

/// Outcome of the code-motion conceptual transformation (Section 3.2 /
/// Figure 6): hoisting an environment-only predicate out of an inner loop,
/// replacing the loop by a conditional.
struct CodeMotionResult {
  TermPtr query;
  bool moved = false;  // rule 15 fired: a loop became a conditional
  Trace trace;
};

/// The blocks, in order:
///   decompose-predicate   rules 13, 7 and the inverse facts, 14
///   hoist-conditional     rule 15 (fires only when the predicate examines
///                         the environment component pi1 -- the structural
///                         stand-in for AQUA's free-variable analysis)
///   distribute            rule 16
///   cleanup               rules 14 right-to-left, 9, 10, 3, 8, 1, 2
std::vector<RuleBlock> CodeMotionBlocks();

/// Runs the blocks on `query` (object- or function-sorted term).
StatusOr<CodeMotionResult> ApplyCodeMotion(const TermPtr& query,
                                           const Rewriter& rewriter);

/// The paper's Figure 2 queries in KOLA form (Section 3.2): K3 pairs each
/// person with their children older than 25 (predicate on the CHILD, not
/// hoistable); K4 pairs each person with all children if the PERSON is
/// older than 25 (hoistable).
TermPtr QueryK3();
TermPtr QueryK4();

}  // namespace kola

#endif  // KOLA_OPTIMIZER_CODE_MOTION_H_
