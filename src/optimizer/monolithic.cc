#include "optimizer/monolithic.h"

#include "common/macros.h"

namespace kola {

namespace {

/// Head-routine helpers. Each check counts the nodes it examines, the way a
/// hand-written condition function walks a query representation.

bool IsPrimFnNamed(const TermPtr& t, const char* name, MonolithicStats* s) {
  ++s->head_nodes_visited;
  return t->IsPrimFn(name);
}

bool IsKpTrue(const TermPtr& t, MonolithicStats* s) {
  s->head_nodes_visited += 2;
  return t->kind() == TermKind::kConstPred &&
         t->child(0)->kind() == TermKind::kBoolConst &&
         t->child(0)->bool_const();
}

/// Matches `g o pi2` and extracts g.
bool MatchComposePi2(const TermPtr& t, TermPtr* g, MonolithicStats* s) {
  ++s->head_nodes_visited;
  if (t->kind() != TermKind::kCompose) return false;
  if (!IsPrimFnNamed(t->child(1), "pi2", s)) return false;
  *g = t->child(0);
  s->head_nodes_visited += static_cast<int>(t->child(0)->node_count());
  return true;
}

/// Matches `in @ (pi1, c o pi2)` and extracts c.
bool MatchMembershipPredicate(const TermPtr& t, TermPtr* c,
                              MonolithicStats* s) {
  ++s->head_nodes_visited;
  if (t->kind() != TermKind::kOplus) return false;
  if (t->child(0)->kind() != TermKind::kPrimPred ||
      t->child(0)->name() != "in") {
    ++s->head_nodes_visited;
    return false;
  }
  ++s->head_nodes_visited;
  const TermPtr& pair = t->child(1);
  ++s->head_nodes_visited;
  if (pair->kind() != TermKind::kPairFn) return false;
  if (!IsPrimFnNamed(pair->child(0), "pi1", s)) return false;
  return MatchComposePi2(pair->child(1), c, s);
}

/// The "dive": counts every node under `t` as visited, modeling the head
/// routine scanning an arbitrary-depth subtree before rejecting.
void DiveAll(const TermPtr& t, MonolithicStats* s) {
  s->head_nodes_visited += static_cast<int>(t->node_count());
}

}  // namespace

StatusOr<TermPtr> MonolithicHiddenJoin(const TermPtr& query,
                                       MonolithicStats* stats) {
  KOLA_CHECK(stats != nullptr);
  *stats = MonolithicStats{};
  auto reject = [&](const TermPtr& rest) -> StatusOr<TermPtr> {
    DiveAll(rest, stats);
    stats->rejected_after_dive = true;
    return FailedPreconditionError(
        "monolithic hidden-join rule does not apply");
  };

  // iterate(Kp(T), (id, BODY)) ! A
  ++stats->head_nodes_visited;
  if (query->kind() != TermKind::kApplyFn) return reject(query);
  const TermPtr& fn = query->child(0);
  const TermPtr& a = query->child(1);
  ++stats->head_nodes_visited;
  if (fn->kind() != TermKind::kIterate || !IsKpTrue(fn->child(0), stats)) {
    return reject(query);
  }
  const TermPtr& pair = fn->child(1);
  ++stats->head_nodes_visited;
  if (pair->kind() != TermKind::kPairFn ||
      !IsPrimFnNamed(pair->child(0), "id", stats)) {
    return reject(query);
  }

  // BODY = flat o iter(Kp(T), g o pi2) o (id, INNER)
  const TermPtr& body = pair->child(1);
  ++stats->head_nodes_visited;
  if (body->kind() != TermKind::kCompose ||
      !IsPrimFnNamed(body->child(0), "flat", stats)) {
    return reject(body);
  }
  const TermPtr& after_flat = body->child(1);
  ++stats->head_nodes_visited;
  if (after_flat->kind() != TermKind::kCompose) return reject(after_flat);
  const TermPtr& outer_iter = after_flat->child(0);
  ++stats->head_nodes_visited;
  if (outer_iter->kind() != TermKind::kIter ||
      !IsKpTrue(outer_iter->child(0), stats)) {
    return reject(after_flat);
  }
  TermPtr g;
  if (!MatchComposePi2(outer_iter->child(1), &g, stats)) {
    return reject(outer_iter);
  }
  const TermPtr& outer_pair = after_flat->child(1);
  ++stats->head_nodes_visited;
  if (outer_pair->kind() != TermKind::kPairFn ||
      !IsPrimFnNamed(outer_pair->child(0), "id", stats)) {
    return reject(outer_pair);
  }

  // INNER = iter(in @ (pi1, c o pi2), pi2) o (id, Kf(B))
  const TermPtr& inner = outer_pair->child(1);
  ++stats->head_nodes_visited;
  if (inner->kind() != TermKind::kCompose) return reject(inner);
  const TermPtr& inner_iter = inner->child(0);
  ++stats->head_nodes_visited;
  if (inner_iter->kind() != TermKind::kIter) return reject(inner);
  TermPtr c;
  if (!MatchMembershipPredicate(inner_iter->child(0), &c, stats)) {
    return reject(inner_iter);
  }
  if (!IsPrimFnNamed(inner_iter->child(1), "pi2", stats)) {
    return reject(inner_iter);
  }
  const TermPtr& inner_pair = inner->child(1);
  ++stats->head_nodes_visited;
  if (inner_pair->kind() != TermKind::kPairFn ||
      !IsPrimFnNamed(inner_pair->child(0), "id", stats)) {
    return reject(inner_pair);
  }
  const TermPtr& const_fn = inner_pair->child(1);
  ++stats->head_nodes_visited;
  if (const_fn->kind() != TermKind::kConstFn) return reject(inner_pair);
  const TermPtr& b = const_fn->child(0);

  // Body routine: build
  //   nest(pi1, pi2) o (unnest(pi1, pi2) x id) o
  //   (join(in @ (id x c), id x g), pi1) ! [A, B].
  TermPtr join_pred = Oplus(InP(), Product(Id(), c));
  TermPtr join_fn = Product(Id(), g);
  TermPtr rebuilt = Apply(
      Compose(Nest(Pi1(), Pi2()),
              Compose(Product(Unnest(Pi1(), Pi2()), Id()),
                      PairFn(Join(std::move(join_pred), std::move(join_fn)),
                             Pi1()))),
      PairObj(a, b));
  stats->body_nodes_built = static_cast<int>(rebuilt->node_count());
  stats->applied = true;
  return rebuilt;
}

}  // namespace kola
