#include "optimizer/optimizer.h"

#include <atomic>
#include <exception>
#include <utility>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "coko/strategy.h"
#include "optimizer/code_motion.h"
#include "optimizer/explore.h"
#include "optimizer/hidden_join.h"
#include "rules/catalog.h"

namespace kola {

namespace {

bool HasJoin(const TermPtr& root) {
  std::vector<const Term*> stack = {root.get()};
  while (!stack.empty()) {
    const Term* t = stack.back();
    stack.pop_back();
    if (t->kind() == TermKind::kJoin) return true;
    for (const TermPtr& child : t->children()) stack.push_back(child.get());
  }
  return false;
}

}  // namespace

std::string Degradation::ToString() const {
  if (!degraded) return "";
  std::string out = "degraded at " + phase + " (" +
                    std::string(StatusCodeToString(code)) + ": " + reason +
                    ")";
  if (steps_spent > 0) {
    out += " after " + std::to_string(steps_spent) + " steps";
  }
  return out;
}

StatusOr<OptimizeResult> Optimizer::Optimize(const TermPtr& query) const {
  if (rewriter_.options().memory_budget_bytes > 0) {
    // A configured byte budget with no caller-supplied governor gets a
    // private per-call one, so memory exhaustion rides the same sticky
    // degradation path a deadline does.
    Governor::Limits limits;
    limits.memory_budget_bytes = rewriter_.options().memory_budget_bytes;
    Governor governor(limits);
    return Optimize(query, &governor);
  }
  return RunPipeline(query, rewriter_, nullptr);
}

StatusOr<OptimizeResult> Optimizer::Optimize(const TermPtr& query,
                                             const Governor* governor) const {
  // Delegate so a null governor still honors a configured memory budget
  // (the delegate's private governor is non-null: no recursion).
  if (governor == nullptr) return Optimize(query);
  // A governed pass runs on a per-call Rewriter clone carrying the
  // governor, so the member rewriter_ (and its cache pool) never aliases a
  // budget that outlives the call.
  RewriterOptions options = rewriter_.options();
  options.governor = governor;
  Rewriter governed(rewriter_.properties(), options);
  // Interner arena growth charges to the ambient per-thread governor
  // (interning happens inside Term::Make, which has no options channel).
  ScopedMemoryGovernor memory_scope(governor);
  return RunPipeline(query, governed, governor);
}

StatusOr<OptimizeResult> Optimizer::RunPipeline(
    const TermPtr& query, const Rewriter& rewriter,
    const Governor* governor) const {
  OptimizeResult result;
  result.query = query;
  result.trace.initial = query;

  TermPtr current = query;

  // Every phase transforms `current` and returns OK, or fails as a unit.
  // On failure the pass degrades: the trace is truncated back to the last
  // completed phase (a partial phase's steps no longer describe
  // `current`), the stop is recorded, and the completed-phase term goes to
  // cost-based acceptance below. The input query is the floor -- phase 1
  // failing degrades to the query itself, never to an error.
  bool stopped = false;
  auto phase = [&](const char* name, auto&& body) {
    if (stopped) return;
    size_t steps_before = result.trace.steps.size();
    size_t blocks_before = result.applied_blocks.size();
    Status status = body();
    if (status.ok()) return;
    result.trace.steps.resize(steps_before);
    result.applied_blocks.resize(blocks_before);
    result.degradation.degraded = true;
    result.degradation.phase = name;
    result.degradation.code = status.code();
    result.degradation.reason = status.message();
    result.degradation.steps_spent =
        governor == nullptr ? 0 : governor->steps_spent();
    stopped = true;
  };

  // Phase 1: general simplification.
  phase("simplify", [&]() -> Status {
    RuleBlock simplify = SimplifyBlock();
    KOLA_ASSIGN_OR_RETURN(StrategyResult r,
                          simplify.Apply(current, rewriter, &result.trace));
    if (r.changed) result.applied_blocks.push_back(simplify.name());
    current = r.term;
    return Status::OK();
  });

  // Phase 2: code motion (Figure 6).
  phase("code-motion", [&]() -> Status {
    KOLA_ASSIGN_OR_RETURN(CodeMotionResult r,
                          ApplyCodeMotion(current, rewriter));
    if (r.moved) result.applied_blocks.push_back("code-motion");
    for (RewriteStep& step : r.trace.steps) {
      result.trace.steps.push_back(std::move(step));
    }
    current = r.query;
    return Status::OK();
  });

  // Phase 3: hidden-join untangling (Section 4.1).
  phase("hidden-join", [&]() -> Status {
    KOLA_ASSIGN_OR_RETURN(HiddenJoinResult r,
                          UntangleHiddenJoin(current, rewriter));
    for (const std::string& name : r.blocks_fired) {
      result.applied_blocks.push_back("hidden-join/" + name);
    }
    for (RewriteStep& step : r.trace.steps) {
      result.trace.steps.push_back(std::move(step));
    }
    current = r.query;
    return Status::OK();
  });

  // Phase 4: loop fusion -- adjacent iterates collapse into one pass
  // (rule 11 plus predicate/identity cleanup). The hidden-join pipeline
  // leaves queries in composition-chain form, which is what rule 11
  // matches.
  phase("loop-fusion", [&]() -> Status {
    std::vector<Rule> all = AllCatalogRules();
    std::vector<Rule> rules;
    for (const char* id : {"norm.fold", "norm.assoc", "11", "6", "5", "1",
                           "2", "ext.and-true-right"}) {
      rules.push_back(FindRule(all, id));
    }
    RuleBlock fusion("loop-fusion", Exhaust(std::move(rules)));
    KOLA_ASSIGN_OR_RETURN(StrategyResult r,
                          fusion.Apply(current, rewriter, &result.trace));
    if (r.changed) result.applied_blocks.push_back(fusion.name());
    current = r.term;
    return Status::OK();
  });

  // Phase 5: cost-ranked join exploration (commutation, selection
  // pushdown) when the plan contains a join. ExploreJoinPlans degrades
  // internally on exhaustion (returns the candidates found so far), so a
  // failure here is a genuine error, not a budget stop.
  phase("join-exploration", [&]() -> Status {
    if (!HasJoin(current)) return Status::OK();
    KOLA_ASSIGN_OR_RETURN(std::vector<Candidate> plans,
                          ExploreJoinPlans(current, rewriter, cost_model_));
    if (!plans.empty() && !plans.front().derivation.empty()) {
      result.applied_blocks.push_back("join-exploration");
      current = plans.front().query;
    }
    return Status::OK();
  });

  // Phase 6: equality saturation (ROADMAP item 3), behind
  // RewriterOptions::use_egraph / KOLA_EGRAPH. Saturates the catalog pool
  // into an e-graph seeded with the query and the greedy pipeline's plan,
  // then extracts the cheapest plan -- the greedy plan stays a ranked
  // candidate, so this phase never makes the result costlier. On a budget
  // stop the phase() wrapper records the degradation while `current` keeps
  // the best-extracted-so-far plan assigned below.
  phase("egraph", [&]() -> Status {
    if (!rewriter.options().use_egraph) return Status::OK();
    EGraphOptions egraph_options;
    egraph_options.max_nodes = rewriter.options().egraph_max_nodes;
    egraph_options.governor = governor;
    PlanCostFn cost = [this](const TermPtr& plan) {
      return cost_model_.EstimateQueryCost(plan);
    };
    EGraphOutcome outcome =
        SaturateAndExtract(query, current, rewriter, cost, egraph_options);
    result.egraph = outcome.stats;
    if (outcome.plan != nullptr && !Term::Equal(outcome.plan, current)) {
      result.applied_blocks.push_back("egraph");
      current = outcome.plan;
    }
    return outcome.status;
  });

  result.rewritten = current;

  // Cost-based acceptance. Runs on the degraded best-so-far term too:
  // every completed phase is semantics-preserving, so `current` is always
  // a sound plan, and the input query remains the fallback when it does
  // not win on cost.
  auto before = cost_model_.EstimateQueryCost(query);
  auto after = cost_model_.EstimateQueryCost(current);
  result.cost_before = before.ok() ? before.value() : 0;
  result.cost_after = after.ok() ? after.value() : 0;
  if (before.ok() && after.ok()) {
    result.kept_rewrite = result.cost_after <= result.cost_before;
  } else {
    // Cost model could not rank the plans; keep the rewrite (rules are
    // semantics-preserving, and simplified form is preferable).
    result.kept_rewrite = true;
  }
  result.query = result.kept_rewrite ? current : query;
  return result;
}

std::vector<BatchOptimizeResult> Optimizer::OptimizeAll(
    std::span<const TermPtr> queries, int jobs,
    const Governor* governor) const {
  const size_t count = queries.size();
  std::vector<BatchOptimizeResult> entries(count);
  // Captured once on the calling thread so pool workers see the caller's
  // injector; keyed draws are pure functions of (seed, site, index), so
  // which queries get poisoned is identical at every jobs level.
  FaultInjector* injector = ActiveFaultInjector();

  auto run_one = [&](const Optimizer& optimizer, size_t i) {
    if (injector != nullptr &&
        injector->ShouldFailKeyed(FaultSite::kPoolTask, i)) {
      // The worker task for this one query dies; its entry carries the
      // fault and every other query still gets optimized.
      entries[i].status =
          FaultInjector::InjectedFault(FaultSite::kPoolTask)
              .WithContext("optimizing batch query " + std::to_string(i));
      return;
    }
    try {
      auto result = optimizer.Optimize(queries[i], governor);
      if (result.ok()) {
        entries[i].result = std::move(result).value();
      } else {
        entries[i].status = result.status().WithContext(
            "optimizing batch query " + std::to_string(i));
      }
    } catch (const std::exception& e) {
      entries[i].status = InternalError("optimizing batch query " +
                                        std::to_string(i) + " threw: " +
                                        e.what());
    } catch (...) {
      entries[i].status =
          InternalError("optimizing batch query " + std::to_string(i) +
                        " threw a non-std exception");
    }
  };

  if (jobs > static_cast<int>(count)) jobs = static_cast<int>(count);
  if (jobs <= 1) {
    for (size_t i = 0; i < count; ++i) run_one(*this, i);
    return entries;
  }
  // One Optimizer clone per worker: each clone owns its Rewriter and
  // fixpoint cache pool, so workers share only immutable inputs (the
  // PropertyStore, the Database, the queries).
  const PropertyStore* properties = rewriter_.properties();
  const RewriterOptions options = rewriter_.options();
  std::atomic<size_t> next{0};
  auto drain = [&] {
    Optimizer worker(properties, db_, options);
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      run_one(worker, i);
    }
  };
  ThreadPool pool(jobs - 1);
  for (int w = 0; w < jobs - 1; ++w) pool.Submit(drain);
  drain();
  // A drain task lost to an injected pool fault leaves its indices to the
  // surviving workers (the calling thread at minimum), so the pool-level
  // error never reaches an entry; per-query failures are already recorded
  // in `entries` by run_one.
  (void)pool.Wait();
  return entries;
}

}  // namespace kola
