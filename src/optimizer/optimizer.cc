#include "optimizer/optimizer.h"

#include <atomic>
#include <functional>
#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "coko/strategy.h"
#include "optimizer/code_motion.h"
#include "optimizer/explore.h"
#include "optimizer/hidden_join.h"
#include "rules/catalog.h"

namespace kola {

StatusOr<OptimizeResult> Optimizer::Optimize(const TermPtr& query) const {
  OptimizeResult result;
  result.query = query;
  result.trace.initial = query;

  TermPtr current = query;

  // Phase 1: general simplification.
  {
    RuleBlock simplify = SimplifyBlock();
    KOLA_ASSIGN_OR_RETURN(StrategyResult r,
                          simplify.Apply(current, rewriter_, &result.trace));
    if (r.changed) result.applied_blocks.push_back(simplify.name());
    current = r.term;
  }

  // Phase 2: code motion (Figure 6).
  {
    KOLA_ASSIGN_OR_RETURN(CodeMotionResult r,
                          ApplyCodeMotion(current, rewriter_));
    if (r.moved) result.applied_blocks.push_back("code-motion");
    for (RewriteStep& step : r.trace.steps) {
      result.trace.steps.push_back(std::move(step));
    }
    current = r.query;
  }

  // Phase 3: hidden-join untangling (Section 4.1).
  {
    KOLA_ASSIGN_OR_RETURN(HiddenJoinResult r,
                          UntangleHiddenJoin(current, rewriter_));
    for (const std::string& name : r.blocks_fired) {
      result.applied_blocks.push_back("hidden-join/" + name);
    }
    for (RewriteStep& step : r.trace.steps) {
      result.trace.steps.push_back(std::move(step));
    }
    current = r.query;
  }

  // Phase 4: loop fusion -- adjacent iterates collapse into one pass
  // (rule 11 plus predicate/identity cleanup). The hidden-join pipeline
  // leaves queries in composition-chain form, which is what rule 11
  // matches.
  {
    std::vector<Rule> all = AllCatalogRules();
    std::vector<Rule> rules;
    for (const char* id : {"norm.fold", "norm.assoc", "11", "6", "5", "1",
                           "2", "ext.and-true-right"}) {
      rules.push_back(FindRule(all, id));
    }
    RuleBlock fusion("loop-fusion", Exhaust(std::move(rules)));
    KOLA_ASSIGN_OR_RETURN(StrategyResult r,
                          fusion.Apply(current, rewriter_, &result.trace));
    if (r.changed) result.applied_blocks.push_back(fusion.name());
    current = r.term;
  }

  // Phase 5: cost-ranked join exploration (commutation, selection
  // pushdown) when the plan contains a join.
  {
    std::function<bool(const TermPtr&)> has_join =
        [&](const TermPtr& t) -> bool {
      if (t->kind() == TermKind::kJoin) return true;
      for (const TermPtr& child : t->children()) {
        if (has_join(child)) return true;
      }
      return false;
    };
    if (has_join(current)) {
      KOLA_ASSIGN_OR_RETURN(
          std::vector<Candidate> plans,
          ExploreJoinPlans(current, rewriter_, cost_model_));
      if (!plans.empty() && !plans.front().derivation.empty()) {
        result.applied_blocks.push_back("join-exploration");
        current = plans.front().query;
      }
    }
  }

  result.rewritten = current;

  // Cost-based acceptance.
  auto before = cost_model_.EstimateQueryCost(query);
  auto after = cost_model_.EstimateQueryCost(current);
  result.cost_before = before.ok() ? before.value() : 0;
  result.cost_after = after.ok() ? after.value() : 0;
  if (before.ok() && after.ok()) {
    result.kept_rewrite = result.cost_after <= result.cost_before;
  } else {
    // Cost model could not rank the plans; keep the rewrite (rules are
    // semantics-preserving, and simplified form is preferable).
    result.kept_rewrite = true;
  }
  result.query = result.kept_rewrite ? current : query;
  return result;
}

StatusOr<std::vector<OptimizeResult>> Optimizer::OptimizeAll(
    std::span<const TermPtr> queries, int jobs) const {
  const size_t count = queries.size();
  std::vector<Status> statuses(count, Status::OK());
  std::vector<std::optional<OptimizeResult>> slots(count);

  if (jobs > static_cast<int>(count)) jobs = static_cast<int>(count);
  if (jobs <= 1) {
    for (size_t i = 0; i < count; ++i) {
      auto result = Optimize(queries[i]);
      if (result.ok()) {
        slots[i] = std::move(result).value();
      } else {
        statuses[i] = result.status();
      }
    }
  } else {
    // One Optimizer clone per worker: each clone owns its Rewriter and
    // fixpoint cache pool, so workers share only immutable inputs (the
    // PropertyStore, the Database, the queries).
    const PropertyStore* properties = rewriter_.properties();
    const RewriterOptions options = rewriter_.options();
    std::atomic<size_t> next{0};
    auto drain = [&] {
      Optimizer worker(properties, db_, options);
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        auto result = worker.Optimize(queries[i]);
        if (result.ok()) {
          slots[i] = std::move(result).value();
        } else {
          statuses[i] = result.status();
        }
      }
    };
    ThreadPool pool(jobs - 1);
    for (int w = 0; w < jobs - 1; ++w) pool.Submit(drain);
    drain();
    pool.Wait();
  }

  // Lowest-index failure wins, independent of scheduling.
  for (size_t i = 0; i < count; ++i) {
    if (!statuses[i].ok()) {
      return statuses[i].WithContext("optimizing batch query " +
                                     std::to_string(i));
    }
  }
  std::vector<OptimizeResult> results;
  results.reserve(count);
  for (std::optional<OptimizeResult>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace kola
