#ifndef KOLA_OPTIMIZER_MONOLITHIC_H_
#define KOLA_OPTIMIZER_MONOLITHIC_H_

#include "common/statusor.h"
#include "term/term.h"

namespace kola {

/// Instrumentation of the baseline monolithic transformer. The counters
/// quantify the supplemental-code burden the paper attributes to
/// variable-based systems (Section 4.2): the head routine must "dive" into
/// the query to unbounded depth to decide applicability, and the body
/// routine rebuilds the result wholesale.
struct MonolithicStats {
  int head_nodes_visited = 0;  // nodes examined by the applicability dive
  int body_nodes_built = 0;    // nodes constructed by the body routine
  bool applied = false;        // the single monolithic rule fired
  bool rejected_after_dive = false;  // head dove deep, then gave up
};

/// The monolithic hidden-join rule, in the style the paper criticizes
/// ([12]'s approach): ONE rule whose head routine recognizes exactly the
/// garage-query shape
///
///   iterate(Kp(T), (id, flat o iter(Kp(T), g o pi2) o
///                       (id, iter(in @ (pi1, c o pi2), pi2) o
///                            (id, Kf(B))))) ! A
///
/// and whose body routine directly constructs
///
///   nest(pi1, pi2) o (unnest(pi1, pi2) x id) o
///   (join(in @ (id x c), id x g), pi1) ! [A, B].
///
/// By design it handles ONLY this two-level shape -- deeper or differently
/// wrapped hidden joins are rejected (after a full head dive), which is the
/// generality deficit bench_hidden_join measures against the gradual
/// five-step strategy.
StatusOr<TermPtr> MonolithicHiddenJoin(const TermPtr& query,
                                       MonolithicStats* stats);

}  // namespace kola

#endif  // KOLA_OPTIMIZER_MONOLITHIC_H_
