#include "optimizer/explore.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/macros.h"
#include "rules/catalog.h"
#include "term/intern.h"

namespace kola {

StatusOr<std::vector<Candidate>> ExploreJoinPlans(const TermPtr& query,
                                                  const Rewriter& rewriter,
                                                  const CostModel& model,
                                                  int max_candidates) {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> exploration = {
      FindRule(all, "ext.join-commute"),
      FindRule(all, "ext.select-past-join-left"),
      FindRule(all, "ext.select-past-join-right"),
  };
  std::vector<Rule> cleanup;
  for (const char* id :
       {"norm.assoc", "ext.swap-swap", "ext.swap-swap-chain",
        "ext.inv-inv", "ext.inv-product",
        "ext.inv-and", "7", "ext.inv-lt", "ext.inv-leq", "ext.inv-geq",
        "ext.inv-eq", "ext.inv-neq", "1", "2", "3", "4", "5",
        "ext.and-true-right", "ext.product-id"}) {
    cleanup.push_back(FindRule(all, id));
  }

  std::vector<Candidate> candidates;
  // Dedup on canonical term identity: every candidate plan is interned, so
  // "seen before" is one hash-map probe on a TermId instead of re-hashing
  // and printing the whole tree. Reuses the globally active interner when
  // one is enabled; otherwise a local arena scoped to this exploration.
  TermInterner local_interner;
  TermInterner& interner = ActiveTermInterner() != nullptr
                               ? *ActiveTermInterner()
                               : local_interner;
  std::unordered_map<const Term*, size_t> seen;
  // The cleanup fixpoint runs once per explored plan over one fixed rule
  // set; sharing the negative-match memo across those runs lets unchanged
  // subtrees short-circuit between candidates.
  FixpointCache cleanup_cache;

  // Frontier accounting: every retained candidate charges its plan's node
  // footprint plus bookkeeping to the request's memory budget, released
  // when exploration returns (the chosen plan's ownership passes to the
  // caller; what is modeled here is the live breadth of the search).
  const Governor* governor = rewriter.options().governor;
  MemoryCharge frontier_charge(governor, MemoryCategory::kExploreFrontier);
  bool budget_hit = false;
  auto candidate_bytes = [](const TermPtr& term) {
    // Nodes the plan holds (shared subtrees deliberately counted per use:
    // the estimate prices the logical plan, not allocator luck) plus the
    // Candidate record itself.
    return static_cast<int64_t>(term->node_count()) *
               TermInterner::TermFootprintBytes(*term) +
           static_cast<int64_t>(sizeof(Candidate));
  };

  auto add = [&](TermPtr term,
                 std::vector<std::string> derivation) -> bool {
    TermPtr canonical = interner.Intern(std::move(term));
    if (seen.count(canonical.get()) > 0) return false;
    // The input plan (the first add) is always admitted -- it is the floor
    // every degradation falls back to -- but later candidates that do not
    // fit in the memory budget stop the search instead of growing it.
    if (!candidates.empty() &&
        !frontier_charge.Add(candidate_bytes(canonical)).ok()) {
      budget_hit = true;
      return false;
    }
    seen.emplace(canonical.get(), candidates.size());
    auto cost = model.EstimateQueryCost(canonical);
    candidates.push_back(Candidate{std::move(canonical),
                                   cost.ok() ? cost.value() : 1e18,
                                   std::move(derivation)});
    return true;
  };

  // Exploration degrades instead of failing on an exhausted budget or an
  // injected fault: every candidate already accumulated is a sound plan,
  // so running out of resources mid-search just means a smaller plan
  // space. Genuine errors (anything else) still propagate.
  auto recoverable = [](const Status& status) {
    return status.code() == StatusCode::kResourceExhausted ||
           status.code() == StatusCode::kUnavailable;
  };

  auto normalized =
      rewriter.Fixpoint(cleanup, query, nullptr, 10'000, &cleanup_cache);
  if (normalized.ok()) {
    add(std::move(normalized).value(), {});
  } else if (recoverable(normalized.status())) {
    add(query, {});  // the raw query is always a valid plan
  } else {
    return normalized.status();
  }

  std::deque<size_t> frontier = {0};
  while (!budget_hit && !frontier.empty() &&
         candidates.size() < static_cast<size_t>(max_candidates)) {
    size_t index = frontier.front();
    frontier.pop_front();
    // Copy: `candidates` may reallocate inside the loop.
    TermPtr base = candidates[index].query;
    std::vector<std::string> base_derivation = candidates[index].derivation;

    for (const Rule& rule : exploration) {
      RewriteStep step;
      auto rewritten = rewriter.ApplyOnce(rule, base, &step);
      if (!rewritten) continue;
      auto cleaned = rewriter.Fixpoint(cleanup, *rewritten, nullptr, 10'000,
                                       &cleanup_cache);
      if (!cleaned.ok()) {
        if (recoverable(cleaned.status())) {
          budget_hit = true;  // keep what we have, stop exploring
          break;
        }
        return cleaned.status();
      }
      std::vector<std::string> derivation = base_derivation;
      derivation.push_back(rule.id);
      if (add(std::move(cleaned).value(), std::move(derivation))) {
        frontier.push_back(candidates.size() - 1);
        if (candidates.size() >= static_cast<size_t>(max_candidates)) break;
      }
      if (budget_hit) break;  // frontier memory exhausted: keep what we have
    }
  }

  // Total order: cost, then derivation, then the plan's printed form.
  // Sorting on cost alone leaves equal-cost plans in unspecified relative
  // order, so downstream truncation could keep different plans run-to-run.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.cost != b.cost) return a.cost < b.cost;
                     if (a.derivation != b.derivation) {
                       return a.derivation < b.derivation;
                     }
                     return a.query->ToString() < b.query->ToString();
                   });
  return candidates;
}

}  // namespace kola
