#include "optimizer/explore.h"

#include <algorithm>
#include <deque>
#include <map>

#include "common/macros.h"
#include "rules/catalog.h"

namespace kola {

namespace {

/// Dedup key: structural hash + printed form (collision-safe enough for
/// plan sets of this size, and avoids a deep-equality multimap).
std::string PlanKey(const TermPtr& term) {
  return std::to_string(term->hash()) + "|" + term->ToString();
}

}  // namespace

StatusOr<std::vector<Candidate>> ExploreJoinPlans(const TermPtr& query,
                                                  const Rewriter& rewriter,
                                                  const CostModel& model,
                                                  int max_candidates) {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<Rule> exploration = {
      FindRule(all, "ext.join-commute"),
      FindRule(all, "ext.select-past-join-left"),
      FindRule(all, "ext.select-past-join-right"),
  };
  std::vector<Rule> cleanup;
  for (const char* id :
       {"norm.assoc", "ext.swap-swap", "ext.swap-swap-chain",
        "ext.inv-inv", "ext.inv-product",
        "ext.inv-and", "7", "ext.inv-lt", "ext.inv-leq", "ext.inv-geq",
        "ext.inv-eq", "ext.inv-neq", "1", "2", "3", "4", "5",
        "ext.and-true-right", "ext.product-id"}) {
    cleanup.push_back(FindRule(all, id));
  }

  std::vector<Candidate> candidates;
  std::map<std::string, size_t> seen;

  auto add = [&](TermPtr term,
                 std::vector<std::string> derivation) -> bool {
    std::string key = PlanKey(term);
    if (seen.count(key) > 0) return false;
    seen[key] = candidates.size();
    auto cost = model.EstimateQueryCost(term);
    candidates.push_back(Candidate{std::move(term),
                                   cost.ok() ? cost.value() : 1e18,
                                   std::move(derivation)});
    return true;
  };

  KOLA_ASSIGN_OR_RETURN(
      TermPtr normalized,
      rewriter.Fixpoint(cleanup, query, nullptr));
  add(normalized, {});

  std::deque<size_t> frontier = {0};
  while (!frontier.empty() &&
         candidates.size() < static_cast<size_t>(max_candidates)) {
    size_t index = frontier.front();
    frontier.pop_front();
    // Copy: `candidates` may reallocate inside the loop.
    TermPtr base = candidates[index].query;
    std::vector<std::string> base_derivation = candidates[index].derivation;

    for (const Rule& rule : exploration) {
      RewriteStep step;
      auto rewritten = rewriter.ApplyOnce(rule, base, &step);
      if (!rewritten) continue;
      KOLA_ASSIGN_OR_RETURN(
          TermPtr cleaned,
          rewriter.Fixpoint(cleanup, *rewritten, nullptr));
      std::vector<std::string> derivation = base_derivation;
      derivation.push_back(rule.id);
      if (add(std::move(cleaned), std::move(derivation))) {
        frontier.push_back(candidates.size() - 1);
        if (candidates.size() >= static_cast<size_t>(max_candidates)) break;
      }
    }
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.cost < b.cost;
                   });
  return candidates;
}

}  // namespace kola
