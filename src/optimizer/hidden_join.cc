#include "optimizer/hidden_join.h"

#include "common/macros.h"
#include "rules/catalog.h"
#include "term/parser.h"

namespace kola {

namespace {

/// Apply-level variant of a catalog rule (see ApplyLevelVariant).
Rule AV(const std::vector<Rule>& all, const std::string& id) {
  auto variant = ApplyLevelVariant(FindRule(all, id));
  KOLA_CHECK_OK(variant.status());
  return std::move(variant).value();
}

std::vector<Rule> Pick(const std::vector<Rule>& all,
                       const std::vector<std::string>& ids) {
  std::vector<Rule> rules;
  rules.reserve(ids.size());
  for (const std::string& id : ids) rules.push_back(FindRule(all, id));
  return rules;
}

TermPtr MustParse(const std::string& text, Sort sort) {
  auto term = ParseTerm(text, sort);
  KOLA_CHECK_OK(term.status());
  return std::move(term).value();
}

}  // namespace

std::vector<RuleBlock> HiddenJoinBlocks() {
  std::vector<Rule> all = AllCatalogRules();
  std::vector<RuleBlock> blocks;

  // Step 0: right-associate and unfold into apply-nested form, so the
  // apply-level rule variants can fire mid-chain.
  {
    std::vector<Rule> rules = Pick(all, {"norm.assoc", "norm.unfold",
                                         "norm.id-apply"});
    blocks.emplace_back("prep", Exhaust(std::move(rules)));
  }
  // Step 1: break up the monolithic iterate (rules 17/17b) and clean up the
  // identity heads they leave behind (rules 2, 4, 18).
  {
    std::vector<Rule> rules = {AV(all, "17"), AV(all, "17b")};
    for (Rule& r : Pick(all, {"2", "4", "18", "norm.id-apply"})) {
      rules.push_back(std::move(r));
    }
    blocks.emplace_back("break-up", Exhaust(std::move(rules)));
  }
  // Step 2: bottom out with a nest of a join (rule 19); unfold the
  // composition rule 19 introduces.
  {
    std::vector<Rule> rules = Pick(all, {"19", "norm.unfold"});
    blocks.emplace_back("bottom-out", Exhaust(std::move(rules)));
  }
  // Step 3: pull nest to the top (rules 20, 21).
  {
    std::vector<Rule> rules = {AV(all, "20"), AV(all, "21")};
    for (Rule& r : Pick(all, {"1", "2", "4"})) rules.push_back(std::move(r));
    blocks.emplace_back("pull-up-nest", Exhaust(std::move(rules)));
  }
  // Step 4: pull unnests up just below nest (rules 22, 22b, 23).
  {
    std::vector<Rule> rules = {AV(all, "22"), AV(all, "22b"),
                               AV(all, "23")};
    for (Rule& r : Pick(all, {"1", "2", "4"})) rules.push_back(std::move(r));
    blocks.emplace_back("pull-up-unnest", Exhaust(std::move(rules)));
  }
  // Step 5: absorb the remaining iterates into the join (rule 24) and
  // simplify the predicates this builds up (rules 3, 5, 6).
  {
    std::vector<Rule> rules = {AV(all, "24")};
    for (Rule& r :
         Pick(all, {"3", "5", "6", "1", "2", "ext.and-true-right"})) {
      rules.push_back(std::move(r));
    }
    blocks.emplace_back("absorb-join", Exhaust(std::move(rules)));
  }
  // Polish: rewrite componentwise pairs as products (the paper's KG2
  // spelling) and refold the apply chain into a composition chain.
  {
    std::vector<Rule> rules =
        Pick(all, {"ext.pair-to-product", "ext.pair-to-product-left",
                   "ext.pair-to-product-right", "4", "1", "2", "norm.fold",
                   "norm.assoc"});
    blocks.emplace_back("polish", Exhaust(std::move(rules)));
  }
  return blocks;
}

StatusOr<HiddenJoinResult> UntangleHiddenJoin(const TermPtr& query,
                                              const Rewriter& rewriter) {
  // The pipeline is fixed, and building it re-parses the whole catalog --
  // construct it once and reuse (blocks are immutable after construction).
  static const std::vector<RuleBlock>& blocks = *new std::vector<RuleBlock>(
      HiddenJoinBlocks());
  HiddenJoinResult result;
  result.query = query;
  result.trace.initial = query;
  for (const RuleBlock& block : blocks) {
    KOLA_ASSIGN_OR_RETURN(
        StrategyResult block_result,
        block.Apply(result.query, rewriter, &result.trace)
            );
    result.query = block_result.term;
    if (block_result.changed) result.blocks_fired.push_back(block.name());
  }
  for (const RewriteStep& step : result.trace.steps) {
    if (step.rule_id == "19") {
      result.converted = true;
      break;
    }
  }
  return result;
}

StatusOr<TermPtr> MakeHiddenJoinQuery(int depth) {
  if (depth < 1) return InvalidArgumentError("depth must be >= 1");
  // Innermost: Kf(P). Levels are built outward; odd levels filter on the
  // environment person's age, even levels flatten children sets.
  TermPtr body = ConstFn(Collection("P"));
  for (int level = depth; level >= 1; --level) {
    TermPtr inner_pair = PairFn(Id(), std::move(body));
    if (level % 2 == 0) {
      // flat o iter(Kp(T), child o pi2) o (id, body): maps each person of
      // the running set to its children and flattens.
      body = ComposeChain(
          {Flat(),
           Iter(ConstPredTrue(), Compose(PrimFn("child"), Pi2())),
           std::move(inner_pair)});
    } else {
      // iter(gt @ (age o pi1, age o pi2), pi2) o (id, body): keeps the
      // persons younger than the environment person.
      TermPtr pred = Oplus(
          GtP(), PairFn(Compose(PrimFn("age"), Pi1()),
                        Compose(PrimFn("age"), Pi2())));
      body = Compose(Iter(std::move(pred), Pi2()), std::move(inner_pair));
    }
  }
  return Apply(Iterate(ConstPredTrue(), PairFn(Id(), std::move(body))),
               Collection("P"));
}

TermPtr GarageQueryKG1() {
  return MustParse(
      "iterate(Kp(T), (id, flat o iter(Kp(T), grgs o pi2) o (id, "
      "iter(in @ (pi1, cars o pi2), pi2) o (id, Kf(P))))) ! V",
      Sort::kObject);
}

TermPtr GarageQueryKG2() {
  return MustParse(
      "nest(pi1, pi2) o (unnest(pi1, pi2) x id) o "
      "(join(in @ (id x cars), id x grgs), pi1) ! [V, P]",
      Sort::kObject);
}

}  // namespace kola
