#ifndef KOLA_OQL_OQL_H_
#define KOLA_OQL_OQL_H_

#include <string_view>

#include "aqua/expr.h"
#include "common/statusor.h"

namespace kola {
namespace oql {

/// A compact OQL-style surface language, lowered to AQUA (and from there,
/// via the translator, to KOLA). The paper reports translators "from both
/// OQL [9] and AQUA [25]"; like the paper's, this front end covers queries
/// over sets (no bags/lists).
///
///   query    := 'select' expr 'from' binding (',' binding)*
///               ('where' pred)?
///   binding  := IDENT 'in' expr
///   pred     := disjunctions/conjunctions/negations of comparisons
///               (== != < <= > >= in) over exprs, with parentheses
///   expr     := path | INT | STRING | '[' expr ',' expr ']'
///             | '(' query ')'                      -- nested subquery
///             | '{' (const (',' const)*)? '}'
///   path     := IDENT ('.' IDENT)*
///
/// Lowering: `select E from x1 in C1, ..., xk in Ck where Q` becomes the
/// AQUA nest
///
///   flatten(app(\x1. ... flatten(app(\x_{k-1}.
///       app(\xk. E)(sel(\xk. Q)(Ck)) )(C_{k-1})) ... )(C1))
///
/// with Q attached to the innermost binding (every variable in scope).
/// Later bindings may range over paths rooted at earlier variables
/// (`c in p.child`), and subqueries in the select list see the enclosing
/// variables -- which is exactly how the paper's A3/A4 nested queries
/// arise from user syntax.
StatusOr<aqua::ExprPtr> ParseOql(std::string_view text);

}  // namespace oql
}  // namespace kola

#endif  // KOLA_OQL_OQL_H_
