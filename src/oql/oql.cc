#include "oql/oql.h"

#include <cctype>
#include <set>
#include <vector>

#include "common/macros.h"
#include "common/parse_number.h"

namespace kola {
namespace oql {

namespace {

using aqua::BinOp;
using aqua::Expr;
using aqua::ExprKind;
using aqua::ExprPtr;

enum class Tok {
  kIdent,
  kInt,
  kString,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kDot,
  kOp,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  size_t position;
};

StatusOr<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t pos = 0;
  while (true) {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    size_t at = pos;
    if (pos >= text.size()) {
      tokens.push_back({Tok::kEnd, "", at});
      return tokens;
    }
    char c = text[pos];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      size_t start = pos++;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      tokens.push_back(
          {Tok::kInt, std::string(text.substr(start, pos - start)), at});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_')) {
        ++pos;
      }
      tokens.push_back(
          {Tok::kIdent, std::string(text.substr(start, pos - start)), at});
      continue;
    }
    switch (c) {
      case '"': {
        ++pos;
        size_t start = pos;
        while (pos < text.size() && text[pos] != '"') ++pos;
        if (pos >= text.size()) {
          return InvalidArgumentError("unterminated string at " +
                                      std::to_string(at));
        }
        tokens.push_back(
            {Tok::kString, std::string(text.substr(start, pos - start)),
             at});
        ++pos;
        continue;
      }
      case '(': tokens.push_back({Tok::kLParen, "(", at}); break;
      case ')': tokens.push_back({Tok::kRParen, ")", at}); break;
      case '[': tokens.push_back({Tok::kLBracket, "[", at}); break;
      case ']': tokens.push_back({Tok::kRBracket, "]", at}); break;
      case '{': tokens.push_back({Tok::kLBrace, "{", at}); break;
      case '}': tokens.push_back({Tok::kRBrace, "}", at}); break;
      case ',': tokens.push_back({Tok::kComma, ",", at}); break;
      case '.': tokens.push_back({Tok::kDot, ".", at}); break;
      case '=':
      case '!':
      case '<':
      case '>': {
        std::string op(1, c);
        if (pos + 1 < text.size() && text[pos + 1] == '=') {
          op += '=';
          ++pos;
        }
        if (op == "=" || op == "!") {
          return InvalidArgumentError("unknown operator '" + op + "'");
        }
        tokens.push_back({Tok::kOp, op, at});
        break;
      }
      default:
        return InvalidArgumentError(std::string("unexpected character '") +
                                    c + "' at " + std::to_string(at));
    }
    ++pos;
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ExprPtr> ParseTopLevel() {
    KOLA_ASSIGN_OR_RETURN(ExprPtr query, ParseSelect());
    if (Peek().kind != Tok::kEnd) {
      return InvalidArgumentError("trailing input at " +
                                  std::to_string(Peek().position) + ": '" +
                                  Peek().text + "'");
    }
    return query;
  }

 private:
  // Nesting bound for the recursive descent, mirroring the KOLA term
  // parser's guard: every nesting level (parentheses, nested selects,
  // `not` chains) costs a handful of native frames, so adversarially deep
  // inputs off the wire must fail with RESOURCE_EXHAUSTED well before the
  // native stack runs out. Real queries nest far below this.
  static constexpr int kMaxNestingDepth = 1'000;

  // Restores the depth a function entered with, so loop iterations can
  // charge EnterNesting once per constructed level (left-deep `or`/`and`
  // chains and `.`-path spines deepen the tree without recursing) and the
  // whole frame's charge is released on exit.
  struct DepthGuard {
    Parser* parser;
    int saved;
    ~DepthGuard() { parser->depth_ = saved; }
  };

  Status EnterNesting() {
    if (depth_ >= kMaxNestingDepth) {
      return ResourceExhaustedError(
          "OQL nesting exceeds " + std::to_string(kMaxNestingDepth) +
          " levels at " + std::to_string(Peek().position));
    }
    ++depth_;
    return Status::OK();
  }

  const Token& Peek() const { return tokens_[index_]; }
  Token Advance() { return tokens_[index_++]; }
  bool PeekIdent(const char* word) const {
    return Peek().kind == Tok::kIdent && Peek().text == word;
  }
  Status Expect(Tok kind, const char* what) {
    if (Peek().kind != kind) {
      return InvalidArgumentError(std::string("expected ") + what + " at " +
                                  std::to_string(Peek().position) +
                                  ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }
  Status ExpectKeyword(const char* word) {
    if (!PeekIdent(word)) {
      return InvalidArgumentError(std::string("expected '") + word +
                                  "' at " + std::to_string(Peek().position) +
                                  ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  /// select E from x1 in C1, ... where Q
  StatusOr<ExprPtr> ParseSelect() {
    KOLA_RETURN_IF_ERROR(ExpectKeyword("select"));
    // Projection parses after the bindings are known? No: OQL scoping puts
    // all FROM variables in scope of the select list, so we parse the raw
    // token range... Simpler and sufficient: parse the projection lazily by
    // recording its token span and re-parsing after bindings are bound.
    size_t projection_start = index_;
    KOLA_RETURN_IF_ERROR(SkipExprTokens());
    size_t projection_end = index_;

    KOLA_RETURN_IF_ERROR(ExpectKeyword("from"));
    struct Binding {
      std::string var;
      ExprPtr source;
    };
    std::vector<Binding> bindings;
    while (true) {
      if (Peek().kind != Tok::kIdent) {
        return InvalidArgumentError("expected binding variable at " +
                                    std::to_string(Peek().position));
      }
      std::string var = Advance().text;
      KOLA_RETURN_IF_ERROR(ExpectKeyword("in"));
      KOLA_ASSIGN_OR_RETURN(ExprPtr source, ParseExpr());
      bindings.push_back(Binding{var, std::move(source)});
      bound_.insert(bindings.back().var);
      if (Peek().kind != Tok::kComma) break;
      Advance();
    }

    ExprPtr predicate;  // may stay null
    if (PeekIdent("where")) {
      Advance();
      KOLA_ASSIGN_OR_RETURN(predicate, ParsePred());
    }

    // Re-parse the projection with all binding variables in scope.
    size_t saved = index_;
    index_ = projection_start;
    KOLA_ASSIGN_OR_RETURN(ExprPtr projection, ParseExpr());
    if (index_ != projection_end) {
      return InvalidArgumentError("malformed select list");
    }
    index_ = saved;

    for (const Binding& b : bindings) bound_.erase(bound_.find(b.var));

    // Lower: innermost binding gets app/sel; outer bindings wrap
    // flatten(app(...)).
    const Binding& innermost = bindings.back();
    ExprPtr source = innermost.source;
    if (predicate != nullptr) {
      source = Expr::Sel(Expr::Lambda({innermost.var}, predicate),
                         std::move(source));
    }
    // `select x from x in S ...` needs no identity map over S.
    bool trivial_projection = projection->kind() == ExprKind::kVar &&
                              projection->name() == innermost.var;
    ExprPtr lowered =
        trivial_projection
            ? std::move(source)
            : Expr::App(Expr::Lambda({innermost.var}, projection),
                        std::move(source));
    for (size_t i = bindings.size() - 1; i-- > 0;) {
      lowered = Expr::Flatten(Expr::App(
          Expr::Lambda({bindings[i].var}, std::move(lowered)),
          bindings[i].source));
    }
    return lowered;
  }

  /// Skips one expression's tokens (balanced brackets) up to the keyword
  /// `from` at depth 0. Used to defer projection parsing until the FROM
  /// variables are known.
  Status SkipExprTokens() {
    int depth = 0;
    while (true) {
      const Token& tok = Peek();
      if (tok.kind == Tok::kEnd) {
        return InvalidArgumentError("unterminated select list");
      }
      if (depth == 0 && tok.kind == Tok::kIdent && tok.text == "from") {
        return Status::OK();
      }
      if (tok.kind == Tok::kLParen || tok.kind == Tok::kLBracket ||
          tok.kind == Tok::kLBrace) {
        ++depth;
      }
      if (tok.kind == Tok::kRParen || tok.kind == Tok::kRBracket ||
          tok.kind == Tok::kRBrace) {
        --depth;
        if (depth < 0) return InvalidArgumentError("unbalanced brackets");
      }
      Advance();
    }
  }

  StatusOr<ExprPtr> ParsePred() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    DepthGuard guard{this, depth_};
    KOLA_RETURN_IF_ERROR(EnterNesting());
    KOLA_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (PeekIdent("or")) {
      KOLA_RETURN_IF_ERROR(EnterNesting());
      Advance();
      KOLA_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Or(std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAnd() {
    DepthGuard guard{this, depth_};
    KOLA_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (PeekIdent("and")) {
      KOLA_RETURN_IF_ERROR(EnterNesting());
      Advance();
      KOLA_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::And(std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (PeekIdent("not")) {
      DepthGuard guard{this, depth_};
      KOLA_RETURN_IF_ERROR(EnterNesting());
      Advance();
      KOLA_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Not(std::move(operand));
    }
    return ParseCmp();
  }

  StatusOr<ExprPtr> ParseCmp() {
    KOLA_ASSIGN_OR_RETURN(ExprPtr left, ParseExpr());
    BinOp op;
    if (Peek().kind == Tok::kOp) {
      const std::string& text = Peek().text;
      if (text == "==") op = BinOp::kEq;
      else if (text == "!=") op = BinOp::kNeq;
      else if (text == "<") op = BinOp::kLt;
      else if (text == "<=") op = BinOp::kLeq;
      else if (text == ">") op = BinOp::kGt;
      else op = BinOp::kGeq;
      Advance();
    } else if (PeekIdent("in")) {
      Advance();
      op = BinOp::kIn;
    } else {
      return left;  // bare boolean expression (rare)
    }
    KOLA_ASSIGN_OR_RETURN(ExprPtr right, ParseExpr());
    return Expr::MakeBinOp(op, std::move(left), std::move(right));
  }

  StatusOr<ExprPtr> ParseExpr() {
    DepthGuard guard{this, depth_};
    KOLA_RETURN_IF_ERROR(EnterNesting());
    const Token& tok = Peek();
    switch (tok.kind) {
      case Tok::kInt: {
        Advance();
        // A lexed integer can still be overlong; reject instead of letting
        // std::stoll throw out of the parser.
        KOLA_ASSIGN_OR_RETURN(int64_t value, ParseInt64(tok.text));
        return Expr::Const(Value::Int(value));
      }
      case Tok::kString: {
        Advance();
        return Expr::Const(Value::Str(tok.text));
      }
      case Tok::kLBrace: {
        Advance();
        std::vector<Value> elements;
        if (Peek().kind != Tok::kRBrace) {
          while (true) {
            KOLA_ASSIGN_OR_RETURN(ExprPtr element, ParseExpr());
            if (element->kind() != ExprKind::kConst) {
              return InvalidArgumentError(
                  "set literals may only contain constants");
            }
            elements.push_back(element->literal());
            if (Peek().kind != Tok::kComma) break;
            Advance();
          }
        }
        KOLA_RETURN_IF_ERROR(Expect(Tok::kRBrace, "'}'"));
        return Expr::Const(Value::MakeSet(std::move(elements)));
      }
      case Tok::kLBracket: {
        Advance();
        KOLA_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
        KOLA_RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
        KOLA_ASSIGN_OR_RETURN(ExprPtr b, ParseExpr());
        KOLA_RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
        return Expr::Tuple(std::move(a), std::move(b));
      }
      case Tok::kLParen: {
        Advance();
        ExprPtr inner;
        if (PeekIdent("select")) {
          KOLA_ASSIGN_OR_RETURN(inner, ParseSelect());
        } else {
          KOLA_ASSIGN_OR_RETURN(inner, ParsePred());
        }
        KOLA_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
        return inner;
      }
      case Tok::kIdent: {
        if (tok.text == "true" || tok.text == "false") {
          Advance();
          return Expr::Const(Value::Bool(tok.text == "true"));
        }
        if (tok.text == "flatten" &&
            tokens_[index_ + 1].kind == Tok::kLParen) {
          Advance();  // flatten
          Advance();  // (
          ExprPtr inner;
          if (PeekIdent("select")) {
            KOLA_ASSIGN_OR_RETURN(inner, ParseSelect());
          } else {
            KOLA_ASSIGN_OR_RETURN(inner, ParseExpr());
          }
          KOLA_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
          return Expr::Flatten(std::move(inner));
        }
        Advance();
        ExprPtr expr = bound_.count(tok.text) > 0
                           ? Expr::Var(tok.text)
                           : Expr::Collection(tok.text);
        while (Peek().kind == Tok::kDot) {
          KOLA_RETURN_IF_ERROR(EnterNesting());
          Advance();
          if (Peek().kind != Tok::kIdent) {
            return InvalidArgumentError("expected attribute after '.'");
          }
          expr = Expr::FunCall(Advance().text, std::move(expr));
        }
        return expr;
      }
      default:
        return InvalidArgumentError("unexpected token '" + tok.text +
                                    "' at " + std::to_string(tok.position));
    }
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  int depth_ = 0;
  std::multiset<std::string> bound_;
};

}  // namespace

StatusOr<aqua::ExprPtr> ParseOql(std::string_view text) {
  KOLA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  auto expr = parser.ParseTopLevel();
  if (!expr.ok()) {
    return expr.status().WithContext("while parsing OQL '" +
                                     std::string(text) + "'");
  }
  return expr;
}

}  // namespace oql
}  // namespace kola
