#ifndef KOLA_COMMON_STRING_UTIL_H_
#define KOLA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kola {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character separator; does not trim, keeps empty parts.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace kola

#endif  // KOLA_COMMON_STRING_UTIL_H_
