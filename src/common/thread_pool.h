#ifndef KOLA_COMMON_THREAD_POOL_H_
#define KOLA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace kola {

/// A small fixed-size thread pool: one shared FIFO queue, no work stealing.
/// Determinism in this codebase never comes from scheduling -- callers
/// partition work into independent tasks and fold results in a fixed order
/// -- so a single locked queue is all the machinery the optimizer, the
/// soundness harness and the benchmarks need.
///
/// The library reports failures through Status, but a task that throws
/// anyway (or dies to an injected pool fault) is contained: the exception
/// is captured as the pool's first error, the task is charged as finished
/// so Wait() cannot deadlock, and the remaining tasks still run.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Safe to call from any thread, including from inside
  /// a running task (the pool never blocks a worker on Submit).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Returns the first
  /// task failure (a throw or an injected worker fault) since the last
  /// Wait(), or OK. Not a barrier against concurrent Submit calls from
  /// other threads: quiesce producers first.
  Status Wait();

 private:
  void WorkerLoop();
  void RecordError(Status status);

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  Status first_error_;  // guarded by mu_; cleared by Wait()
  std::vector<std::thread> workers_;
};

/// The default parallelism for `--jobs`-style flags: the hardware
/// concurrency, or 1 when the runtime cannot report it.
int HardwareJobs();

/// Runs `fn(i)` for every i in [0, count) across up to `jobs` threads (the
/// calling thread participates). `jobs <= 1` degenerates to an inline loop
/// with no threads spawned, so serial and parallel callers share one code
/// path. `fn` must be safe to invoke concurrently on distinct indices;
/// index assignment order across threads is unspecified.
///
/// A throwing body fails only its own index: every other index still
/// runs, and the returned Status carries the lowest failed index (lowest,
/// not first-observed, so the report is deterministic across schedules).
Status ParallelFor(int jobs, size_t count,
                   const std::function<void(size_t)>& fn);

}  // namespace kola

#endif  // KOLA_COMMON_THREAD_POOL_H_
