#include "common/fault_injection.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/string_util.h"

namespace kola {
namespace {

// splitmix64 finalizer: the same mixer Rng uses, inlined here so a keyed
// draw is a pure stateless function of its inputs.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double DrawUnit(uint64_t seed, FaultSite site, uint64_t index) {
  uint64_t bits =
      Mix(Mix(seed ^ 0x6b6f6c612d666c74ULL) + // "kola-flt"
          (static_cast<uint64_t>(site) << 32) + index);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

// Atomic: tests install/clear a process injector around a live server
// whose handler threads consult it concurrently.
std::atomic<FaultInjector*> process_injector{nullptr};
thread_local FaultInjector* thread_injector = nullptr;

constexpr FaultSite kAllSites[kNumFaultSites] = {
    FaultSite::kRuleApplication, FaultSite::kStrategy, FaultSite::kIntern,
    FaultSite::kPoolTask,        FaultSite::kAccept,   FaultSite::kRecv,
    FaultSite::kSend,            FaultSite::kReplSync};

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kRuleApplication:
      return "rule";
    case FaultSite::kStrategy:
      return "strategy";
    case FaultSite::kIntern:
      return "intern";
    case FaultSite::kPoolTask:
      return "pool";
    case FaultSite::kAccept:
      return "accept";
    case FaultSite::kRecv:
      return "recv";
    case FaultSite::kSend:
      return "send";
    case FaultSite::kReplSync:
      return "repl";
  }
  return "unknown";
}

StatusOr<FaultInjector> FaultInjector::Parse(const std::string& spec,
                                             uint64_t seed) {
  FaultInjector injector(seed);
  if (spec.empty()) return injector;
  for (const std::string& entry : Split(spec, ',')) {
    size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      return InvalidArgumentError("fault spec entry '" + entry +
                                  "' is not site:rate");
    }
    std::string site_name = entry.substr(0, colon);
    char* end = nullptr;
    double rate = std::strtod(entry.c_str() + colon + 1, &end);
    if (end == nullptr || *end != '\0') {
      return InvalidArgumentError("fault rate in '" + entry +
                                  "' is not a number");
    }
    bool known = false;
    for (FaultSite site : kAllSites) {
      if (site_name == FaultSiteName(site)) {
        injector.set_rate(site, rate);
        known = true;
        break;
      }
    }
    if (!known) {
      return InvalidArgumentError(
          "unknown fault site '" + site_name +
          "' (want rule|strategy|intern|pool|accept|recv|send|repl)");
    }
  }
  return injector;
}

FaultInjector::FaultInjector(const FaultInjector& other)
    : seed_(other.seed_) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    rates_[i] = other.rates_[i];
    draws_[i].store(other.draws_[i].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    injected_[i].store(other.injected_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
}

FaultInjector& FaultInjector::operator=(const FaultInjector& other) {
  if (this == &other) return *this;
  seed_ = other.seed_;
  for (int i = 0; i < kNumFaultSites; ++i) {
    rates_[i] = other.rates_[i];
    draws_[i].store(other.draws_[i].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    injected_[i].store(other.injected_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  return *this;
}

void FaultInjector::set_rate(FaultSite site, double rate) {
  if (rate < 0) rate = 0;
  if (rate > 1) rate = 1;
  rates_[static_cast<int>(site)] = rate;
}

double FaultInjector::rate(FaultSite site) const {
  return rates_[static_cast<int>(site)];
}

bool FaultInjector::ShouldFail(FaultSite site) {
  int s = static_cast<int>(site);
  double rate = rates_[s];
  uint64_t index = draws_[s].fetch_add(1, std::memory_order_relaxed);
  if (rate <= 0) return false;
  bool fail = DrawUnit(seed_, site, index) < rate;
  if (fail) injected_[s].fetch_add(1, std::memory_order_relaxed);
  return fail;
}

bool FaultInjector::ShouldFailKeyed(FaultSite site, uint64_t key) const {
  double rate = rates_[static_cast<int>(site)];
  if (rate <= 0) return false;
  // Keyed draws use a disjoint index space (top bit set) so they can never
  // collide with sequential draws at the same site.
  return DrawUnit(seed_, site, key | (1ULL << 63)) < rate;
}

Status FaultInjector::InjectedFault(FaultSite site) {
  return UnavailableError(std::string("injected fault at site '") +
                          FaultSiteName(site) + "'");
}

uint64_t FaultInjector::draws(FaultSite site) const {
  return draws_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

uint64_t FaultInjector::injected(FaultSite site) const {
  return injected_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::string FaultInjector::spec() const {
  std::string out;
  for (FaultSite site : kAllSites) {
    double r = rate(site);
    if (r <= 0) continue;
    if (!out.empty()) out += ',';
    out += FaultSiteName(site);
    out += ':';
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", r);
    out += buf;
  }
  return out;
}

FaultInjector* ActiveFaultInjector() {
  FaultInjector* local = thread_injector;
  if (local != nullptr) return local;
  return process_injector.load(std::memory_order_acquire);
}

FaultInjector* SetProcessFaultInjector(FaultInjector* injector) {
  return process_injector.exchange(injector, std::memory_order_acq_rel);
}

Status LatchFaultInjectionFromEnv() {
  static std::once_flag once;
  static Status latch_status;  // written once under `once`
  std::call_once(once, [] {
    const char* spec = std::getenv("KOLA_FAULTS");
    if (spec == nullptr || *spec == '\0') return;
    uint64_t seed = 1;
    if (const char* seed_env = std::getenv("KOLA_FAULT_SEED")) {
      seed = std::strtoull(seed_env, nullptr, 10);
    }
    auto injector = FaultInjector::Parse(spec, seed);
    if (!injector.ok()) {
      latch_status = injector.status().WithContext("KOLA_FAULTS");
      return;
    }
    // Leaked intentionally: the process injector lives for the process.
    SetProcessFaultInjector(new FaultInjector(std::move(injector).value()));
  });
  return latch_status;
}

ScopedFaultInjection::ScopedFaultInjection(FaultInjector* injector)
    : previous_(thread_injector) {
  thread_injector = injector;
}

ScopedFaultInjection::~ScopedFaultInjection() {
  thread_injector = previous_;
}

Status MaybeInjectFault(FaultSite site) {
  FaultInjector* injector = ActiveFaultInjector();
  if (injector == nullptr || !injector->ShouldFail(site)) {
    return Status::OK();
  }
  return FaultInjector::InjectedFault(site);
}

}  // namespace kola
