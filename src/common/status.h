#ifndef KOLA_COMMON_STATUS_H_
#define KOLA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace kola {

/// Error categories used throughout the library. Modeled after
/// absl::StatusCode but reduced to the cases this codebase needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (parser, bad former arity, ...)
  kNotFound,          // unknown name (schema function, collection, rule)
  kFailedPrecondition,// operation not valid in current state
  kTypeError,         // runtime sort/type mismatch during evaluation
  kUnimplemented,     // feature intentionally out of scope
  kInternal,          // invariant violation (a bug in this library)
  kResourceExhausted, // step/recursion budgets exceeded
  kUnavailable,       // transient failure (injected fault, dead worker)
};

/// Returns a stable human-readable name for a status code ("TYPE_ERROR"...).
const char* StatusCodeToString(StatusCode code);

/// Exception-free error propagation type. All fallible public APIs in this
/// library return a Status or a StatusOr<T>. A default-constructed Status is
/// OK. Statuses are cheap to copy in the OK case (no message allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "TYPE_ERROR: message".
  std::string ToString() const;

  /// Prefixes additional context onto the message, keeping the code.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, mirroring absl.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status TypeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);

}  // namespace kola

#endif  // KOLA_COMMON_STATUS_H_
