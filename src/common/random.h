#ifndef KOLA_COMMON_RANDOM_H_
#define KOLA_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kola {

/// Deterministic pseudo-random generator (splitmix64 core). Every randomized
/// component in the library (data generators, the rule verifier, benchmark
/// workloads) takes an explicit Rng so runs are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool Chance(double p);

  /// Picks a uniformly random element index for a container of `size`
  /// elements. Requires size > 0.
  size_t Index(size_t size);

  /// Lowercase ASCII identifier of the given length.
  std::string Identifier(size_t length);

  /// Derives an independent child generator, advancing this one. The child
  /// seed depends on how many values were drawn before the fork, so two
  /// Fork() calls in a row yield different children. For streams that must
  /// be independent of draw order (parallel trials), use Child instead.
  Rng Fork();

  /// Derives the `index`-th child stream WITHOUT advancing this generator:
  /// Child(k) depends only on the current state and k, never on other
  /// draws. This is the parallel-determinism primitive -- trial k of a
  /// fanned-out sweep seeds itself with Child(k), so its randomness (and
  /// therefore its repro seed) is identical whether trials 0..k-1 ran
  /// before it, after it, or on another thread.
  Rng Child(uint64_t index) const;

 private:
  uint64_t state_;
};

}  // namespace kola

#endif  // KOLA_COMMON_RANDOM_H_
