#ifndef KOLA_COMMON_GOVERNOR_H_
#define KOLA_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace kola {

/// A shared resource budget for one optimization request: a wall-clock
/// deadline, a global step budget, and a cooperative cancellation token.
/// One Governor is threaded through every layer of the pipeline (rewrite
/// fixpoints, coko strategies, join exploration, evaluation) so a request
/// has a single budget instead of one scattered `max_steps` per call.
///
/// Thread-safe: a batch driver may hand the same Governor to several
/// workers; charges are atomic and exhaustion is sticky (once stopped,
/// every subsequent Charge/CheckNow fails with the same cause). The
/// per-call `max_steps` caps still apply underneath a Governor; the
/// Governor only ever tightens the budget.
class Governor {
 public:
  enum class StopCause {
    kNone = 0,
    kDeadline,   // wall-clock deadline passed
    kBudget,     // global step budget spent
    kCancelled,  // Cancel() was called
  };

  struct Limits {
    /// Wall-clock budget in milliseconds from Governor construction.
    /// 0 means no deadline.
    int64_t deadline_ms = 0;
    /// Total steps (rule firings + evaluator ticks) across the whole
    /// request. 0 means unlimited.
    int64_t step_budget = 0;
  };

  explicit Governor(Limits limits);

  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  /// Spends `steps` from the budget and (periodically) checks the
  /// deadline. OK while the request may continue; RESOURCE_EXHAUSTED once
  /// any limit is hit. The clock is only sampled every few hundred charges
  /// so evaluator ticks stay cheap; CheckNow() samples it unconditionally.
  Status Charge(int64_t steps = 1) const;

  /// Checks the deadline and cancellation immediately without spending
  /// budget. Use at coarse boundaries (between optimizer blocks).
  Status CheckNow() const;

  /// Cooperatively cancels the request: every later Charge/CheckNow
  /// returns RESOURCE_EXHAUSTED with cause kCancelled.
  void Cancel() const;

  bool stopped() const {
    return cause_.load(std::memory_order_acquire) != StopCause::kNone;
  }
  StopCause cause() const { return cause_.load(std::memory_order_acquire); }

  /// Steps charged so far (still counted after the budget is exhausted,
  /// so degradation reports can say how much work was done).
  int64_t steps_spent() const {
    return spent_.load(std::memory_order_relaxed);
  }

  const Limits& limits() const { return limits_; }

  static const char* StopCauseName(StopCause cause);

 private:
  Status Stop(StopCause cause) const;
  Status StopStatus() const;

  Limits limits_;
  std::chrono::steady_clock::time_point deadline_;
  mutable std::atomic<StopCause> cause_{StopCause::kNone};
  mutable std::atomic<int64_t> spent_{0};
  mutable std::atomic<uint64_t> charges_{0};
};

}  // namespace kola

#endif  // KOLA_COMMON_GOVERNOR_H_
