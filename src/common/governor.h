#ifndef KOLA_COMMON_GOVERNOR_H_
#define KOLA_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "common/resource.h"
#include "common/status.h"

namespace kola {

/// A shared resource budget for one optimization request: a wall-clock
/// deadline, a global step budget, a byte-level memory budget, and a
/// cooperative cancellation token. One Governor is threaded through every
/// layer of the pipeline (rewrite fixpoints, coko strategies, join
/// exploration, evaluation) so a request has a single budget instead of one
/// scattered `max_steps` per call.
///
/// Thread-safe: a batch driver may hand the same Governor to several
/// workers; charges are atomic and exhaustion is sticky (once stopped,
/// every subsequent Charge/CheckNow fails with the same cause). The
/// per-call `max_steps` caps still apply underneath a Governor; the
/// Governor only ever tightens the budget.
class Governor {
 public:
  enum class StopCause {
    kNone = 0,
    kDeadline,   // wall-clock deadline passed
    kBudget,     // global step budget spent
    kMemory,     // byte budget spent (see ChargeMemory)
    kCancelled,  // Cancel() was called
  };

  struct Limits {
    /// Wall-clock budget in milliseconds from Governor construction.
    /// 0 means no deadline.
    int64_t deadline_ms = 0;
    /// Total steps (rule firings + evaluator ticks) across the whole
    /// request. 0 means unlimited.
    int64_t step_budget = 0;
    /// Total bytes (interner arenas + fixpoint-cache entries + exploration
    /// frontier + evaluator scratch) across the whole request. 0 means
    /// unlimited -- charges are still accounted so peak usage is
    /// observable, they just never fail.
    int64_t memory_budget_bytes = 0;
  };

  explicit Governor(Limits limits);

  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  /// Spends `steps` from the budget and (periodically) checks the
  /// deadline. OK while the request may continue; RESOURCE_EXHAUSTED once
  /// any limit is hit. The clock is only sampled every few hundred charges
  /// so evaluator ticks stay cheap; CheckNow() samples it unconditionally.
  Status Charge(int64_t steps = 1) const;

  /// Checks the deadline and cancellation immediately without spending
  /// budget. Use at coarse boundaries (between optimizer blocks).
  Status CheckNow() const;

  /// Accounts `bytes` of live memory under `category`. OK while the
  /// request's total stays within limits().memory_budget_bytes (always OK
  /// when that is 0); once a charge fails the governor stops with cause
  /// kMemory and every later Charge/CheckNow/ChargeMemory fails too --
  /// memory exhaustion rides the same sticky degradation path as a
  /// deadline. The failed bytes are NOT counted as live (the caller must
  /// not allocate), but they do raise memory().peak_bytes().
  Status ChargeMemory(MemoryCategory category, int64_t bytes) const;

  /// Returns bytes previously charged; never fails, never un-stops.
  void ReleaseMemory(MemoryCategory category, int64_t bytes) const;

  /// The request's memory accounting (live per-category counters, peak).
  const MemoryBudget& memory() const { return memory_; }

  /// Cooperatively cancels the request: every later Charge/CheckNow
  /// returns RESOURCE_EXHAUSTED with cause kCancelled.
  void Cancel() const;

  bool stopped() const {
    return cause_.load(std::memory_order_acquire) != StopCause::kNone;
  }
  StopCause cause() const { return cause_.load(std::memory_order_acquire); }

  /// Steps charged so far (still counted after the budget is exhausted,
  /// so degradation reports can say how much work was done).
  int64_t steps_spent() const {
    return spent_.load(std::memory_order_relaxed);
  }

  const Limits& limits() const { return limits_; }

  static const char* StopCauseName(StopCause cause);

 private:
  Status Stop(StopCause cause) const;
  Status StopStatus() const;

  Limits limits_;
  std::chrono::steady_clock::time_point deadline_;
  MemoryBudget memory_;
  mutable std::atomic<StopCause> cause_{StopCause::kNone};
  mutable std::atomic<int64_t> spent_{0};
  mutable std::atomic<uint64_t> charges_{0};
};

/// The governor whose memory budget `TermInterner` charges arena growth to
/// on THIS thread, or nullptr when interner memory is unaccounted. A
/// thread-local ambient slot (like ActiveTermInterner / ActiveFaultInjector)
/// because interning happens inside Term::Make, which has no options
/// channel. Installed by Optimizer::Optimize around a governed pass.
const Governor* ActiveMemoryGovernor();

/// Installs `governor` (may be nullptr) as the calling thread's ambient
/// memory governor for the scope; restores the previous one on exit.
class ScopedMemoryGovernor {
 public:
  explicit ScopedMemoryGovernor(const Governor* governor);
  ~ScopedMemoryGovernor();
  ScopedMemoryGovernor(const ScopedMemoryGovernor&) = delete;
  ScopedMemoryGovernor& operator=(const ScopedMemoryGovernor&) = delete;

 private:
  const Governor* previous_;
};

/// RAII bookkeeping for one component's charges against one category of a
/// governor's memory budget: Add() charges, the destructor releases
/// whatever is still held, Release() hands back part early (eviction).
/// Default-constructed (or bound to a null governor) it is a no-op, so
/// ungoverned call sites pay one branch. Move-only.
class MemoryCharge {
 public:
  MemoryCharge() = default;
  MemoryCharge(const Governor* governor, MemoryCategory category)
      : governor_(governor), category_(category) {}
  ~MemoryCharge() { ReleaseAll(); }

  MemoryCharge(MemoryCharge&& other) noexcept
      : governor_(std::exchange(other.governor_, nullptr)),
        category_(other.category_),
        bytes_(std::exchange(other.bytes_, 0)) {}
  MemoryCharge& operator=(MemoryCharge&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      governor_ = std::exchange(other.governor_, nullptr);
      category_ = other.category_;
      bytes_ = std::exchange(other.bytes_, 0);
    }
    return *this;
  }
  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  /// Charges `bytes` more. On failure nothing was charged and the caller
  /// must not allocate.
  Status Add(int64_t bytes) {
    if (governor_ == nullptr || bytes <= 0) return Status::OK();
    Status status = governor_->ChargeMemory(category_, bytes);
    if (status.ok()) bytes_ += bytes;
    return status;
  }

  /// Returns `bytes` of the held charge (clamped to what is held).
  void Release(int64_t bytes) {
    if (governor_ == nullptr) return;
    if (bytes > bytes_) bytes = bytes_;
    if (bytes <= 0) return;
    governor_->ReleaseMemory(category_, bytes);
    bytes_ -= bytes;
  }

  void ReleaseAll() {
    if (governor_ != nullptr && bytes_ > 0) {
      governor_->ReleaseMemory(category_, bytes_);
    }
    bytes_ = 0;
  }

  int64_t bytes() const { return bytes_; }

 private:
  const Governor* governor_ = nullptr;
  MemoryCategory category_ = MemoryCategory::kEvalScratch;
  int64_t bytes_ = 0;
};

}  // namespace kola

#endif  // KOLA_COMMON_GOVERNOR_H_
