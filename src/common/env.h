#ifndef KOLA_COMMON_ENV_H_
#define KOLA_COMMON_ENV_H_

#include <string>

namespace kola {

/// True when the environment variable `name` is set to a truthy value.
/// Truthy means set and not one of "" / "0" / "false" / "off" / "no"
/// (case-insensitive), so `KOLA_X=0` reads as *disabled*, not enabled --
/// every KOLA_* boolean flag routes through this one parser so set-vs-unset
/// and zero-vs-nonzero cannot drift apart between flags again.
bool EnvFlagEnabled(const char* name);

/// True when `name` is set at all, regardless of value. Used to distinguish
/// "explicitly disabled" from "unset" where a flag has a non-trivial
/// default.
bool EnvFlagSet(const char* name);

/// The truthiness parse applied by EnvFlagEnabled, exposed for tests and
/// for callers that already hold the raw value.
bool ParseEnvFlagValue(const std::string& value);

}  // namespace kola

#endif  // KOLA_COMMON_ENV_H_
