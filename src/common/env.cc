#include "common/env.h"

#include <cctype>
#include <cstdlib>

namespace kola {

bool ParseEnvFlagValue(const std::string& value) {
  std::string lowered;
  lowered.reserve(value.size());
  for (char c : value) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return !lowered.empty() && lowered != "0" && lowered != "false" &&
         lowered != "off" && lowered != "no";
}

bool EnvFlagEnabled(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && ParseEnvFlagValue(value);
}

bool EnvFlagSet(const char* name) { return std::getenv(name) != nullptr; }

}  // namespace kola
