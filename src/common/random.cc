#include "common/random.h"

#include "common/macros.h"

namespace kola {

uint64_t Rng::Next() {
  // splitmix64 (public domain, Sebastiano Vigna).
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  KOLA_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

size_t Rng::Index(size_t size) {
  KOLA_CHECK(size > 0);
  return static_cast<size_t>(Next() % size);
}

std::string Rng::Identifier(size_t length) {
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>('a' + Next() % 26));
  }
  return s;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

Rng Rng::Child(uint64_t index) const {
  // One splitmix64 finalizer round over (state, index): children of
  // distinct indices are decorrelated from each other and from the parent
  // stream, and the parent state is left untouched.
  uint64_t z = state_ + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace kola
