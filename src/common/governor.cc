#include "common/governor.h"

namespace kola {
namespace {

// Sample the clock once per this many charges. Evaluator ticks arrive at
// nanosecond scale, so an unconditional steady_clock::now() per tick would
// dominate the work being governed; one sample per 512 charges keeps the
// deadline responsive to well under a millisecond of drift.
constexpr uint64_t kClockCheckMask = 511;

}  // namespace

Governor::Governor(Limits limits)
    : limits_(limits), memory_(limits.memory_budget_bytes) {
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(limits_.deadline_ms);
}

const char* Governor::StopCauseName(StopCause cause) {
  switch (cause) {
    case StopCause::kNone:
      return "none";
    case StopCause::kDeadline:
      return "deadline";
    case StopCause::kBudget:
      return "budget";
    case StopCause::kMemory:
      return "memory";
    case StopCause::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Status Governor::Stop(StopCause cause) const {
  // First cause wins; a later Charge racing a Cancel keeps whichever
  // landed first so the reported cause is stable.
  StopCause expected = StopCause::kNone;
  cause_.compare_exchange_strong(expected, cause, std::memory_order_acq_rel);
  return StopStatus();
}

Status Governor::StopStatus() const {
  switch (cause_.load(std::memory_order_acquire)) {
    case StopCause::kNone:
      return Status::OK();
    case StopCause::kDeadline:
      return ResourceExhaustedError("governor deadline of " +
                                    std::to_string(limits_.deadline_ms) +
                                    "ms exceeded");
    case StopCause::kBudget:
      return ResourceExhaustedError("governor step budget of " +
                                    std::to_string(limits_.step_budget) +
                                    " exceeded");
    case StopCause::kMemory:
      return memory_.ExhaustedStatus();
    case StopCause::kCancelled:
      return ResourceExhaustedError("request cancelled");
  }
  return InternalError("governor in unknown stop state");
}

Status Governor::Charge(int64_t steps) const {
  if (stopped()) return StopStatus();
  int64_t spent =
      spent_.fetch_add(steps, std::memory_order_relaxed) + steps;
  if (limits_.step_budget > 0 && spent > limits_.step_budget) {
    return Stop(StopCause::kBudget);
  }
  if (limits_.deadline_ms > 0 &&
      (charges_.fetch_add(1, std::memory_order_relaxed) & kClockCheckMask) ==
          0 &&
      std::chrono::steady_clock::now() > deadline_) {
    return Stop(StopCause::kDeadline);
  }
  return Status::OK();
}

Status Governor::CheckNow() const {
  if (stopped()) return StopStatus();
  if (limits_.deadline_ms > 0 &&
      std::chrono::steady_clock::now() > deadline_) {
    return Stop(StopCause::kDeadline);
  }
  return Status::OK();
}

Status Governor::ChargeMemory(MemoryCategory category, int64_t bytes) const {
  if (stopped()) return StopStatus();
  Status status = memory_.Charge(category, bytes);
  if (!status.ok()) return Stop(StopCause::kMemory);
  return status;
}

void Governor::ReleaseMemory(MemoryCategory category, int64_t bytes) const {
  memory_.Release(category, bytes);
}

void Governor::Cancel() const { Stop(StopCause::kCancelled); }

namespace {

const Governor*& MemoryGovernorSlot() {
  thread_local const Governor* governor = nullptr;
  return governor;
}

}  // namespace

const Governor* ActiveMemoryGovernor() { return MemoryGovernorSlot(); }

ScopedMemoryGovernor::ScopedMemoryGovernor(const Governor* governor)
    : previous_(MemoryGovernorSlot()) {
  MemoryGovernorSlot() = governor;
}

ScopedMemoryGovernor::~ScopedMemoryGovernor() {
  MemoryGovernorSlot() = previous_;
}

}  // namespace kola
