#include "common/parse_number.h"

#include <charconv>
#include <string>

namespace kola {

namespace {

std::string Quoted(std::string_view text) {
  // Clip pathological inputs so the error message itself stays bounded.
  constexpr size_t kMaxEcho = 64;
  std::string out = "'";
  if (text.size() <= kMaxEcho) {
    out.append(text);
  } else {
    out.append(text.substr(0, kMaxEcho));
    out += "...";
  }
  out += "'";
  return out;
}

template <typename T>
StatusOr<T> ParseIntegral(std::string_view text) {
  if (text.empty()) {
    return InvalidArgumentError("expected an integer, got empty string");
  }
  T value{};
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return InvalidArgumentError("integer " + Quoted(text) +
                                " does not fit in the target type");
  }
  if (ec != std::errc() || ptr != end) {
    return InvalidArgumentError("expected an integer, got " + Quoted(text));
  }
  return value;
}

}  // namespace

StatusOr<int64_t> ParseInt64(std::string_view text) {
  return ParseIntegral<int64_t>(text);
}

StatusOr<uint64_t> ParseUint64(std::string_view text) {
  return ParseIntegral<uint64_t>(text);
}

StatusOr<int64_t> ParseInt64InRange(std::string_view text,
                                    std::string_view what, int64_t min,
                                    int64_t max) {
  StatusOr<int64_t> value = ParseInt64(text);
  if (!value.ok()) {
    return value.status().WithContext(std::string(what));
  }
  if (*value < min || *value > max) {
    return InvalidArgumentError(std::string(what) + " must be in [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "], got " +
                                Quoted(text));
  }
  return value;
}

StatusOr<int> ParseIntInRange(std::string_view text, std::string_view what,
                              int min, int max) {
  StatusOr<int64_t> value = ParseInt64InRange(text, what, min, max);
  if (!value.ok()) return value.status();
  return static_cast<int>(*value);
}

}  // namespace kola
