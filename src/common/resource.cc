#include "common/resource.h"

#include <string>

namespace kola {

const char* MemoryCategoryName(MemoryCategory category) {
  switch (category) {
    case MemoryCategory::kInternerArena:
      return "interner-arena";
    case MemoryCategory::kFixpointCache:
      return "fixpoint-cache";
    case MemoryCategory::kExploreFrontier:
      return "explore-frontier";
    case MemoryCategory::kEvalScratch:
      return "eval-scratch";
    case MemoryCategory::kRuleIndex:
      return "rule-index";
    case MemoryCategory::kEGraph:
      return "egraph";
  }
  return "unknown";
}

MemoryBudget::MemoryBudget(int64_t budget_bytes)
    : budget_bytes_(budget_bytes) {
  for (auto& counter : charged_) counter.store(0, std::memory_order_relaxed);
  for (auto& peak : category_peak_) peak.store(0, std::memory_order_relaxed);
}

void MemoryBudget::RaisePeak(int64_t candidate) const {
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (candidate > peak &&
         !peak_.compare_exchange_weak(peak, candidate,
                                      std::memory_order_relaxed)) {
  }
}

Status MemoryBudget::Charge(MemoryCategory category, int64_t bytes) const {
  if (bytes <= 0) return Status::OK();
  if (exhausted_.load(std::memory_order_acquire)) return ExhaustedStatus();
  auto& counter = charged_[static_cast<int>(category)];
  int64_t total = total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  RaisePeak(total);
  if (budget_bytes_ > 0 && total > budget_bytes_) {
    // The caller will NOT allocate on failure, so the attempted bytes come
    // back out of the live counters; the peak above keeps the evidence.
    total_.fetch_sub(bytes, std::memory_order_relaxed);
    exhausted_.store(true, std::memory_order_release);
    return ExhaustedStatus();
  }
  int64_t live = counter.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  auto& peak = category_peak_[static_cast<int>(category)];
  int64_t seen = peak.load(std::memory_order_relaxed);
  while (live > seen && !peak.compare_exchange_weak(
                            seen, live, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryBudget::Release(MemoryCategory category, int64_t bytes) const {
  if (bytes <= 0) return;
  charged_[static_cast<int>(category)].fetch_sub(bytes,
                                                 std::memory_order_relaxed);
  total_.fetch_sub(bytes, std::memory_order_relaxed);
}

int64_t MemoryBudget::charged(MemoryCategory category) const {
  return charged_[static_cast<int>(category)].load(std::memory_order_relaxed);
}

int64_t MemoryBudget::peak(MemoryCategory category) const {
  return category_peak_[static_cast<int>(category)].load(
      std::memory_order_relaxed);
}

Status MemoryBudget::ExhaustedStatus() const {
  if (!exhausted_.load(std::memory_order_acquire)) return Status::OK();
  return ResourceExhaustedError("governor memory budget of " +
                                std::to_string(budget_bytes_) +
                                " bytes exceeded");
}

}  // namespace kola
