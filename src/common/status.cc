#include "common/status.h"

namespace kola {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kTypeError:
      return "TYPE_ERROR";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status TypeError(std::string message) {
  return Status(StatusCode::kTypeError, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

}  // namespace kola
