#ifndef KOLA_COMMON_FAULT_INJECTION_H_
#define KOLA_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/statusor.h"

namespace kola {

/// Places where a fault can be injected. Each site models a distinct
/// production failure: a rule application erroring out mid-fixpoint, a
/// whole strategy block failing, the interner being unable to allocate
/// (degrades to un-interned terms -- still sound), a thread-pool worker
/// dying at task start, the three socket-level failures the server
/// must absorb: an accepted connection dying before it is served, a peer
/// resetting mid-receive, and the kernel taking only part of a write --
/// plus a replication sync stream arriving torn or corrupted.
enum class FaultSite {
  kRuleApplication = 0,
  kStrategy,
  kIntern,
  kPoolTask,
  kAccept,
  kRecv,
  kSend,
  kReplSync,
};
inline constexpr int kNumFaultSites = 8;

/// Stable spec name for a site ("rule", "strategy", "intern", "pool",
/// "accept", "recv", "send", "repl").
const char* FaultSiteName(FaultSite site);

/// Deterministic, seeded fault injector. Each site carries an independent
/// failure rate; draws are pure functions of (seed, site, draw index) or
/// (seed, site, key), so a fixed seed replays the exact same fault
/// schedule -- including under `--jobs N`, as long as each unit of work
/// owns its own injector (sequential draws) or keys its draws.
class FaultInjector {
 public:
  /// All rates zero: never fails.
  FaultInjector() : FaultInjector(0) {}
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  /// Parses a `site:rate,...` spec, e.g. "rule:0.01,intern:0.05".
  /// Rates are clamped to [0, 1]; unknown sites are an error.
  static StatusOr<FaultInjector> Parse(const std::string& spec,
                                       uint64_t seed);

  FaultInjector(const FaultInjector& other);
  FaultInjector& operator=(const FaultInjector& other);

  void set_rate(FaultSite site, double rate);
  double rate(FaultSite site) const;

  /// Sequential draw: deterministic function of (seed, site, number of
  /// prior draws at this site). Use when one thread owns the injector.
  bool ShouldFail(FaultSite site);

  /// Keyed draw: pure function of (seed, site, key), independent of call
  /// order. Use from parallel drivers, keyed by the work item's index, so
  /// the fault schedule is identical at every `--jobs` level.
  bool ShouldFailKeyed(FaultSite site, uint64_t key) const;

  /// The Status an injected fault surfaces as (UNAVAILABLE, named site).
  static Status InjectedFault(FaultSite site);

  /// Draws made / faults fired at `site` since construction.
  uint64_t draws(FaultSite site) const;
  uint64_t injected(FaultSite site) const;

  /// Canonical `site:rate,...` spec for the non-zero rates ("" when the
  /// injector never fires).
  std::string spec() const;

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_ = 0;
  double rates_[kNumFaultSites] = {};
  std::atomic<uint64_t> draws_[kNumFaultSites] = {};
  std::atomic<uint64_t> injected_[kNumFaultSites] = {};
};

/// The injector consulted by the library's injection points: the
/// thread-local override installed by ScopedFaultInjection if any, else
/// the process-wide injector, else nullptr (the common case: no faults,
/// near-zero overhead).
FaultInjector* ActiveFaultInjector();

/// Installs `injector` as the process-wide fallback (visible to all
/// threads, including pool workers and server handlers). Pass nullptr to
/// clear. Returns the previous injector. The pointer swap is atomic, so
/// installing/clearing around live traffic is race-free; the injector
/// itself must be fully configured before it is installed and must
/// outlive any thread that may still draw from it.
FaultInjector* SetProcessFaultInjector(FaultInjector* injector);

/// Latches the process injector from KOLA_FAULTS / KOLA_FAULT_SEED once.
/// No-op (returning OK) when KOLA_FAULTS is unset; an unparsable spec is
/// an error. Safe to call repeatedly; only the first call reads the env.
Status LatchFaultInjectionFromEnv();

/// Thread-local injector override for the current scope. The soundness
/// harness installs one per trial so every fault drawn during the trial
/// comes from the trial's own seeded stream, keeping chaos sweeps
/// byte-identical across --jobs levels.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

/// Convenience probe for injection points: OK when no injector is active
/// or the draw passes; the injected UNAVAILABLE Status otherwise.
Status MaybeInjectFault(FaultSite site);

}  // namespace kola

#endif  // KOLA_COMMON_FAULT_INJECTION_H_
