#ifndef KOLA_COMMON_RESOURCE_H_
#define KOLA_COMMON_RESOURCE_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace kola {

/// Where a byte charge came from. Every allocation the optimizer can make
/// unboundedly is attributed to one of these, so a degradation report (and
/// kolash's :stats) can say WHICH structure blew the budget.
enum class MemoryCategory {
  kInternerArena = 0,  // canonical terms held by a TermInterner
  kFixpointCache,      // negative-match entries in FixpointCache
  kExploreFrontier,    // candidate plans held by ExploreJoinPlans
  kEvalScratch,        // values materialized by the evaluator
  kRuleIndex,          // compiled discrimination-tree rule indexes
  kEGraph,             // e-nodes and hashcons entries held by an EGraph
};

inline constexpr int kNumMemoryCategories = 6;

const char* MemoryCategoryName(MemoryCategory category);

/// Byte-level resource accounting for one optimization request: per-category
/// charge counters, a high-water mark, and a sticky exhaustion latch.
///
/// A budget of 0 means "account but never exhaust" -- the counters and peak
/// still track so tools can report occupancy, but Charge never fails. With a
/// positive budget, the first Charge that would push the total past it fails
/// with RESOURCE_EXHAUSTED, rolls the attempted bytes back (the caller did
/// not allocate), and latches: every later Charge fails with the same cause.
/// Releases from earlier successful charges still apply after exhaustion.
///
/// Thread-safe: charges are atomic, exhaustion is a one-way latch, and the
/// peak is maintained with a CAS loop -- the same contract as Governor,
/// whose memory limb this is.
class MemoryBudget {
 public:
  explicit MemoryBudget(int64_t budget_bytes = 0);

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Accounts `bytes` against `category`. OK while the total stays within
  /// the budget (or the budget is 0); RESOURCE_EXHAUSTED once it would not.
  Status Charge(MemoryCategory category, int64_t bytes) const;

  /// Returns `bytes` previously charged to `category`. Never fails and
  /// never un-latches exhaustion.
  void Release(MemoryCategory category, int64_t bytes) const;

  int64_t budget_bytes() const { return budget_bytes_; }

  /// Live bytes currently charged to `category` / across all categories.
  int64_t charged(MemoryCategory category) const;
  int64_t total_charged() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// High-water mark of charged(category): the most bytes that category
  /// ever held live at once. Unlike peak_bytes() it excludes failed
  /// charges (which never became live anywhere). Stats surfaces (kolash,
  /// kolad) report these so a blown budget names the structure at fault.
  int64_t peak(MemoryCategory category) const;

  /// High-water mark of total_charged(), including the failed charge that
  /// latched exhaustion (it records how much the request wanted).
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  bool exhausted() const {
    return exhausted_.load(std::memory_order_acquire);
  }

  /// The sticky failure (RESOURCE_EXHAUSTED naming the budget), or OK when
  /// not exhausted.
  Status ExhaustedStatus() const;

 private:
  void RaisePeak(int64_t candidate) const;

  int64_t budget_bytes_;
  mutable std::atomic<int64_t> charged_[kNumMemoryCategories];
  mutable std::atomic<int64_t> category_peak_[kNumMemoryCategories];
  mutable std::atomic<int64_t> total_{0};
  mutable std::atomic<int64_t> peak_{0};
  mutable std::atomic<bool> exhausted_{false};
};

}  // namespace kola

#endif  // KOLA_COMMON_RESOURCE_H_
