#ifndef KOLA_COMMON_MACROS_H_
#define KOLA_COMMON_MACROS_H_

#include <cstdlib>
#include <iostream>

#include "common/status.h"

/// Propagates a non-OK Status from the enclosing function.
#define KOLA_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::kola::Status kola_status_ = (expr);         \
    if (!kola_status_.ok()) return kola_status_;  \
  } while (false)

#define KOLA_MACRO_CONCAT_INNER(x, y) x##y
#define KOLA_MACRO_CONCAT(x, y) KOLA_MACRO_CONCAT_INNER(x, y)

/// Evaluates `rexpr` (a StatusOr<T>); on error returns its status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define KOLA_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  KOLA_ASSIGN_OR_RETURN_IMPL(KOLA_MACRO_CONCAT(kola_sor_, __LINE__), lhs,  \
                             rexpr)

#define KOLA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

/// Aborts the process when `cond` is false. For invariants whose violation
/// means a bug inside this library, never for bad user input.
#define KOLA_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "KOLA_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << "\n";                                     \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define KOLA_CHECK_OK(expr)                                                  \
  do {                                                                       \
    ::kola::Status kola_status_ = (expr);                                    \
    if (!kola_status_.ok()) {                                                \
      std::cerr << "KOLA_CHECK_OK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " << kola_status_ << "\n";                             \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // KOLA_COMMON_MACROS_H_
