#ifndef KOLA_COMMON_PARSE_NUMBER_H_
#define KOLA_COMMON_PARSE_NUMBER_H_

#include <cstdint>
#include <string_view>

#include "common/statusor.h"

namespace kola {

/// Validated integer parsing for everything that consumes numbers from the
/// outside world: query literals in the three text parsers, CLI flags in
/// kolaverify/kolad/kolaload, and protocol fields in the optimization
/// service. Unlike std::stoll (throws std::out_of_range -- one overlong
/// literal in a hostile request would abort the process) and std::atoi
/// (silently returns 0 on garbage, UB on overflow), these reject every
/// malformed input with INVALID_ARGUMENT and never throw.
///
/// Accepted syntax: an optional leading '-' (signed forms only) followed by
/// decimal digits, spanning the ENTIRE input -- no leading/trailing
/// whitespace, no '+', no hex. Overflow of the target type is an error, not
/// a wrap.
StatusOr<int64_t> ParseInt64(std::string_view text);
StatusOr<uint64_t> ParseUint64(std::string_view text);

/// ParseInt64 plus an inclusive range check, for flag/field validation with
/// a self-describing error ("--trials must be in [1, 100000000], got ...").
/// `what` names the value being parsed in error messages.
StatusOr<int64_t> ParseInt64InRange(std::string_view text,
                                    std::string_view what, int64_t min,
                                    int64_t max);

/// Convenience for int-typed flags: ParseInt64InRange narrowed to int.
StatusOr<int> ParseIntInRange(std::string_view text, std::string_view what,
                              int min, int max);

}  // namespace kola

#endif  // KOLA_COMMON_PARSE_NUMBER_H_
