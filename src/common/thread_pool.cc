#include "common/thread_pool.h"

#include <atomic>
#include <utility>

namespace kola {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int HardwareJobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(int jobs, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (jobs > static_cast<int>(count)) jobs = static_cast<int>(count);
  if (jobs <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Self-scheduling over an atomic cursor: no per-index task objects, and
  // uneven index costs (one slow trial next to many fast ones) balance out
  // without work stealing.
  std::atomic<size_t> next{0};
  auto drain = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  ThreadPool pool(jobs - 1);
  for (int w = 0; w < jobs - 1; ++w) pool.Submit(drain);
  drain();  // the calling thread is the jobs-th worker
  pool.Wait();
}

}  // namespace kola
