#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <string>
#include <utility>

#include "common/fault_injection.h"

namespace kola {
namespace {

Status StatusFromCurrentException(const std::string& where) {
  try {
    throw;
  } catch (const std::exception& e) {
    return InternalError(where + " threw: " + e.what());
  } catch (...) {
    return InternalError(where + " threw a non-std exception");
  }
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  Status status = std::move(first_error_);
  first_error_ = Status::OK();
  return status;
}

void ThreadPool::RecordError(Status status) {
  std::unique_lock<std::mutex> lock(mu_);
  if (first_error_.ok()) first_error_ = std::move(status);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // An injected pool fault models this worker dying right as it picks
    // the task up: the task is dropped (recorded as the pool's error) but
    // the pool itself stays healthy.
    Status injected = MaybeInjectFault(FaultSite::kPoolTask);
    if (injected.ok()) {
      try {
        task();
      } catch (...) {
        RecordError(StatusFromCurrentException("thread-pool task"));
      }
    } else {
      RecordError(std::move(injected));
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int HardwareJobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

Status ParallelFor(int jobs, size_t count,
                   const std::function<void(size_t)>& fn) {
  if (count == 0) return Status::OK();
  if (jobs > static_cast<int>(count)) jobs = static_cast<int>(count);

  // One slot per failed index, folded lowest-index-first afterwards so the
  // reported error does not depend on scheduling.
  std::mutex failures_mu;
  size_t lowest_failed = count;
  Status lowest_status;
  auto guarded = [&](size_t i) {
    try {
      fn(i);
    } catch (...) {
      Status status = StatusFromCurrentException(
          "parallel task " + std::to_string(i));
      std::unique_lock<std::mutex> lock(failures_mu);
      if (i < lowest_failed) {
        lowest_failed = i;
        lowest_status = std::move(status);
      }
    }
  };

  if (jobs <= 1) {
    for (size_t i = 0; i < count; ++i) guarded(i);
    return lowest_status;
  }
  // Self-scheduling over an atomic cursor: no per-index task objects, and
  // uneven index costs (one slow trial next to many fast ones) balance out
  // without work stealing.
  std::atomic<size_t> next{0};
  auto drain = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      guarded(i);
    }
  };
  ThreadPool pool(jobs - 1);
  for (int w = 0; w < jobs - 1; ++w) pool.Submit(drain);
  drain();  // the calling thread is the jobs-th worker
  // A drain task lost to an injected pool fault is not an index failure:
  // the cursor guarantees the surviving workers (at minimum the calling
  // thread) still cover every index, so the pool-level error is dropped
  // here and only per-index failures surface.
  (void)pool.Wait();
  return lowest_status;
}

}  // namespace kola
