#ifndef KOLA_COMMON_STATUSOR_H_
#define KOLA_COMMON_STATUSOR_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace kola {

/// A union of a Status and a value of type T: either holds an OK status and
/// a T, or a non-OK status and no T. The exception-free analogue of
/// absl::StatusOr. Accessing the value of a non-OK StatusOr aborts, so
/// callers must check ok() (or use the KOLA_ASSIGN_OR_RETURN macro).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a non-OK status. Constructing from an OK status without
  /// a value is a programming error and aborts.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    if (status_.ok()) {
      std::cerr << "StatusOr constructed with OK status but no value\n";
      std::abort();
    }
  }

  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (ok()) return *value_;
    return fallback;
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::cerr << "StatusOr::value() on error status: " << status_ << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace kola

#endif  // KOLA_COMMON_STATUSOR_H_
