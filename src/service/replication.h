#ifndef KOLA_SERVICE_REPLICATION_H_
#define KOLA_SERVICE_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/random.h"
#include "common/status.h"
#include "service/service.h"

namespace kola {

/// How a standby follows its primary.
struct ReplicationOptions {
  /// The primary's endpoint. Only loopback is supported (the server binds
  /// 127.0.0.1); "localhost" is accepted as an alias.
  std::string host = "127.0.0.1";
  int port = 0;
  /// Cadence of the poll-sync loop after a successful sync.
  int64_t sync_interval_ms = 500;
  /// Budget for one whole sync attempt: connect + send SYNC + read the
  /// length-prefixed snapshot stream. A primary that hangs mid-stream is
  /// a failed sync, not a wedged standby.
  int64_t io_deadline_ms = 5000;
  /// After this many CONSECUTIVE failed syncs the standby assumes the
  /// primary is gone and promotes itself (OptimizationService::Promote:
  /// starts accepting BUMP, reports READY). 0 = never promote.
  int promote_after_failures = 5;
  /// Seed for the full-jitter backoff between failed syncs.
  uint64_t backoff_seed = 1;
};

/// Counters for STATS assertions and tests; the service's own replication
/// counters (syncs_applied, sync_failures, ...) are the primary record.
struct ReplicationClientStats {
  uint64_t attempts = 0;
  uint64_t checksum_mismatches = 0;  // torn/corrupt streams detected
  uint64_t bytes_received = 0;
  bool running = false;
};

/// The standby side of snapshot shipping: a background loop that connects
/// to the primary, sends `SYNC`, reads the length-prefixed `KOLASNAP`
/// stream, verifies the end-to-end checksum, and applies it through
/// OptimizationService::ApplySyncBytes (tolerant restore + CAS-max
/// catalog-version adoption). On repeated failure it backs off with full
/// jitter, and -- past the promotion threshold -- promotes the service and
/// retires. The primary needs no dedicated component: `SYNC` is an
/// ordinary protocol verb served by every endpoint that is sync-ready.
///
/// Why ship whole snapshots rather than a log: the plan cache is a pure
/// function of (query shape, rule fingerprint, catalog version), so state
/// transfer is idempotent and self-validating -- every entry re-proves
/// itself through its checksum and catalog-version check on apply, and a
/// missed cycle costs warmth, never correctness.
class ReplicationClient {
 public:
  /// `service` is borrowed and must outlive the client.
  ReplicationClient(OptimizationService* service, ReplicationOptions options);
  ~ReplicationClient();  // Stop()

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Spawns the sync loop. The first successful sync flips the service
  /// from NOT_READY to serving.
  void Start();

  /// Stops the loop and joins the thread. Idempotent.
  void Stop();

  /// One synchronous sync attempt (the loop's body, public so tests can
  /// drive it deterministically). On success the service has applied the
  /// primary's snapshot; on failure the caller decides about backoff and
  /// promotion -- this call itself notes nothing in the service.
  Status SyncOnce();

  ReplicationClientStats stats() const;

 private:
  void SyncLoop();
  /// Interruptible sleep; false when Stop() was requested meanwhile.
  bool SleepFor(int64_t ms);

  OptimizationService* service_;
  ReplicationOptions options_;
  Rng backoff_rng_;

  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> checksum_mismatches_{0};
  std::atomic<uint64_t> bytes_received_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;       // guarded by mu_
  bool running_ = false;    // guarded by mu_
  std::thread thread_;
};

}  // namespace kola

#endif  // KOLA_SERVICE_REPLICATION_H_
