#include "service/plan_cache.h"

#include <utility>

#include "term/intern.h"

namespace kola {

size_t PlanCache::KeyHash::operator()(const PlanCacheKey& key) const {
  uint64_t h = StableHashCombine(key.query_id, key.rule_fingerprint);
  return static_cast<size_t>(StableHashCombine(h, key.catalog_version));
}

int64_t PlanCache::SlotBytes(const Slot& slot) const {
  int64_t bytes = static_cast<int64_t>(slot.payload.capacity());
  if (slot.term != nullptr) {
    bytes += TermInterner::TermFootprintBytes(*slot.term);
  }
  return bytes;
}

std::optional<std::string> PlanCache::Lookup(const PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  slots_[it->second].referenced = true;
  return slots_[it->second].payload;
}

size_t PlanCache::EvictOneLocked() {
  // Second chance, exactly like FixpointCache::EvictOne: bounded by one
  // full lap plus one step, and a pure function of the operation sequence.
  for (;;) {
    Slot& slot = slots_[hand_];
    size_t victim = hand_;
    hand_ = (hand_ + 1) % slots_.size();
    if (slot.referenced) {
      slot.referenced = false;
      continue;
    }
    index_.erase(slot.key);
    stats_.bytes -= SlotBytes(slot);
    slot.term = nullptr;
    slot.payload.clear();
    slot.payload.shrink_to_fit();
    ++stats_.evictions;
    return victim;
  }
}

void PlanCache::Insert(const PlanCacheKey& key, TermPtr key_term,
                       std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Slot& slot = slots_[it->second];
    stats_.bytes -= SlotBytes(slot);
    slot.term = std::move(key_term);
    slot.payload = std::move(payload);
    stats_.bytes += SlotBytes(slot);
    return;
  }
  size_t target;
  if (capacity_ > 0 && slots_.size() >= capacity_) {
    target = EvictOneLocked();
  } else {
    target = slots_.size();
    slots_.emplace_back();
  }
  Slot& slot = slots_[target];
  slot.key = key;
  slot.term = std::move(key_term);
  slot.payload = std::move(payload);
  slot.referenced = false;
  index_[key] = target;
  stats_.bytes += SlotBytes(slot);
  ++stats_.insertions;
  stats_.entries = index_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += index_.size();
  slots_.clear();
  index_.clear();
  hand_ = 0;
  stats_.bytes = 0;
  stats_.entries = 0;
}

std::vector<PlanCacheEntry> PlanCache::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlanCacheEntry> out;
  out.reserve(index_.size());
  for (const Slot& slot : slots_) {
    if (slot.term == nullptr) continue;  // freed by eviction, not yet reused
    out.push_back(PlanCacheEntry{slot.key, slot.term, slot.payload});
  }
  return out;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats snapshot = stats_;
  snapshot.entries = index_.size();
  return snapshot;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace kola
