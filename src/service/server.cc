#include "service/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "common/string_util.h"

namespace kola {

namespace {

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

}  // namespace

SocketServer::SocketServer(OptimizationService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.handler_threads < 1) options_.handler_threads = 1;
}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket()");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Errno("bind(127.0.0.1:" +
                          std::to_string(options_.port) + ")");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    Status status = Errno("listen()");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_.store(ntohs(addr.sin_port), std::memory_order_release);
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  for (;;) {
    int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0 || stopping_.load(std::memory_order_acquire)) return;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // The listening socket was closed (Stop) or is unusable; either way
      // the loop is done.
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    client_fds_.push_back(fd);
    handler_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

bool SocketServer::SendAll(int fd, const std::string& text) {
  size_t sent = 0;
  while (sent < text.size()) {
    // MSG_NOSIGNAL: a peer that hung up must cost us one connection, not a
    // SIGPIPE for the whole daemon.
    ssize_t n = ::send(fd, text.data() + sent, text.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SocketServer::ServeConnection(int fd) {
  {
    // Handler-slot back-pressure: past the cap this connection waits its
    // turn before the first byte is read.
    std::unique_lock<std::mutex> lock(threads_mu_);
    slot_cv_.wait(lock, [&] {
      return active_handlers_ < options_.handler_threads ||
             stopping_.load(std::memory_order_acquire);
    });
    ++active_handlers_;
  }

  std::string buffer;
  char chunk[4096];
  bool alive = !stopping_.load(std::memory_order_acquire);
  while (alive) {
    size_t newline;
    while (alive && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::string_view trimmed = StripWhitespace(line);
      if (trimmed.empty()) continue;
      if (trimmed == "QUIT") {
        SendAll(fd, "OK bye\n");
        alive = false;
        break;
      }
      if (trimmed == "SHUTDOWN") {
        SendAll(fd, "OK shutting down\n");
        alive = false;
        std::lock_guard<std::mutex> lock(wait_mu_);
        done_ = true;
        wait_cv_.notify_all();
        break;
      }
      std::string response = service_->HandleLine(line);
      response += '\n';
      if (!SendAll(fd, response)) alive = false;
    }
    if (!alive) break;
    if (buffer.size() > options_.max_line_bytes) {
      SendAll(fd, "ERR INVALID_ARGUMENT: request line exceeds " +
                      std::to_string(options_.max_line_bytes) + " bytes\n");
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or Stop()'s shutdown()
    buffer.append(chunk, static_cast<size_t>(n));
  }

  ::shutdown(fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    auto it = std::find(client_fds_.begin(), client_fds_.end(), fd);
    if (it != client_fds_.end()) client_fds_.erase(it);
    --active_handlers_;
  }
  slot_cv_.notify_one();
  ::close(fd);
}

void SocketServer::Wait() {
  std::unique_lock<std::mutex> lock(wait_mu_);
  wait_cv_.wait(lock, [&] { return done_; });
}

void SocketServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    // Unblock every handler parked in recv; they remove and close their
    // own fds on the way out.
    for (int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  slot_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    handlers.swap(handler_threads_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    done_ = true;
  }
  wait_cv_.notify_all();
}

}  // namespace kola
