#include "service/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace kola {

namespace {

Status Errno(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Polls `fd` for `events` up to `deadline_ms` (absolute, NowMs clock;
/// -1 = no deadline). Returns >0 when ready, 0 on deadline, <0 on a
/// non-EINTR error. EINTR restarts with the remaining budget.
int PollFd(int fd, short events, int64_t deadline_ms) {
  for (;;) {
    int timeout = -1;
    if (deadline_ms >= 0) {
      int64_t remaining = deadline_ms - NowMs();
      if (remaining <= 0) return 0;
      timeout = static_cast<int>(std::min<int64_t>(remaining, 1 << 30));
    }
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

}  // namespace

SocketServer::SocketServer(OptimizationService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.handler_threads < 1) options_.handler_threads = 1;
}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket()");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Errno("bind(127.0.0.1:" +
                          std::to_string(options_.port) + ")");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    Status status = Errno("listen()");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_.store(ntohs(addr.sin_port), std::memory_order_release);
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  for (;;) {
    int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0 || stopping_.load(std::memory_order_acquire)) return;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (stopping_.load(std::memory_order_acquire) ||
          listen_fd_.load(std::memory_order_acquire) < 0) {
        // Stop()/Drain() closed the listening socket under us.
        return;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM || errno == EAGAIN) {
        // Transient resource exhaustion: drop this would-be connection
        // (the peer sees a reset) and keep the daemon alive. Brief sleep
        // so a persistent EMFILE does not become a busy loop.
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        struct timespec nap{0, 10'000'000};  // 10 ms
        ::nanosleep(&nap, nullptr);
        continue;
      }
      // The listening socket is unusable; the loop is done.
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    if (!MaybeInjectFault(FaultSite::kAccept).ok()) {
      // Injected accept failure: the connection dies before it is served,
      // exactly like a peer that vanished in the backlog.
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    // Non-blocking + poll is what makes read/write deadlines enforceable:
    // a blocking recv/send could park a handler forever.
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    client_fds_.push_back(fd);
    handler_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

bool SocketServer::SendAll(int fd, const std::string& text) {
  const int64_t deadline =
      options_.write_deadline_ms > 0 ? NowMs() + options_.write_deadline_ms
                                     : -1;
  size_t sent = 0;
  while (sent < text.size()) {
    int ready = PollFd(fd, POLLOUT, deadline);
    if (ready == 0) {
      // The peer has not drained its receive window within the write
      // deadline: a reader that stopped reading. Cut the connection.
      write_timeouts_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (ready < 0) {
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    size_t want = text.size() - sent;
    if (want > 1 && !MaybeInjectFault(FaultSite::kSend).ok()) {
      // Injected partial write: hand the kernel a single byte so the
      // short-write continuation path runs under chaos, deterministically.
      want = 1;
    }
    // MSG_NOSIGNAL: a peer that hung up must cost us one connection, not a
    // SIGPIPE for the whole daemon.
    ssize_t n = ::send(fd, text.data() + sent, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (static_cast<size_t>(n) < text.size() - sent) {
      short_writes_.fetch_add(1, std::memory_order_relaxed);
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SocketServer::ServeConnection(int fd) {
  {
    // Handler-slot back-pressure: past the cap this connection waits its
    // turn before the first byte is read.
    std::unique_lock<std::mutex> lock(threads_mu_);
    slot_cv_.wait(lock, [&] {
      return active_handlers_ < options_.handler_threads ||
             stopping_.load(std::memory_order_acquire) ||
             drain_state_.load(std::memory_order_acquire) != 0;
    });
    ++active_handlers_;
  }

  std::string buffer;
  char chunk[4096];
  bool alive = !stopping_.load(std::memory_order_acquire);
  // The read-deadline clock starts when the handler slot is acquired and
  // restarts only when a COMPLETE line has been served: a slow-loris
  // dribbling bytes cannot keep a slot by resetting an idle timer.
  int64_t line_deadline =
      options_.read_deadline_ms > 0 ? NowMs() + options_.read_deadline_ms
                                    : -1;
  while (alive) {
    size_t newline;
    while (alive && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::string_view trimmed = StripWhitespace(line);
      if (trimmed.empty()) continue;
      if (trimmed == "QUIT") {
        SendAll(fd, "OK bye\n");
        alive = false;
        break;
      }
      if (trimmed == "SHUTDOWN") {
        SendAll(fd, "OK shutting down\n");
        alive = false;
        RequestShutdown();
        break;
      }
      std::string response = service_->HandleLine(line);
      response += '\n';
      if (!SendAll(fd, response)) {
        alive = false;
        break;
      }
      if (options_.read_deadline_ms > 0) {
        line_deadline = NowMs() + options_.read_deadline_ms;
      }
    }
    if (!alive) break;
    if (buffer.size() > options_.max_line_bytes) {
      SendAll(fd, "ERR INVALID_ARGUMENT: request line exceeds " +
                      std::to_string(options_.max_line_bytes) + " bytes\n");
      break;
    }
    int ready = PollFd(fd, POLLIN, line_deadline);
    if (ready == 0) {
      // Read deadline: no complete request within the budget. Tell the
      // peer why (best effort) and give the slot back.
      read_timeouts_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, "ERR DEADLINE_EXCEEDED: no complete request within " +
                      std::to_string(options_.read_deadline_ms) + " ms\n");
      break;
    }
    if (ready < 0) {
      resets_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (!MaybeInjectFault(FaultSite::kRecv).ok()) {
      // Injected connection reset: the peer vanished mid-request.
      resets_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;  // spurious wakeup; the deadline still bounds the loop
    }
    if (n < 0) {
      resets_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (n == 0) break;  // EOF, Drain()'s half-close, or Stop()'s shutdown()
    buffer.append(chunk, static_cast<size_t>(n));
  }

  ::shutdown(fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    auto it = std::find(client_fds_.begin(), client_fds_.end(), fd);
    if (it != client_fds_.end()) client_fds_.erase(it);
    --active_handlers_;
  }
  // notify_all: slot waiters AND a Drain() waiting for the floor to clear.
  slot_cv_.notify_all();
  ::close(fd);
}

void SocketServer::Wait() {
  std::unique_lock<std::mutex> lock(wait_mu_);
  wait_cv_.wait(lock, [&] { return done_; });
}

void SocketServer::RequestShutdown() {
  // From here on PING answers "OK draining" and HEALTH reports DRAINING,
  // even while in-flight (and not-yet-drained) requests are still served:
  // clients should steer new work elsewhere before Drain() half-closes.
  service_->SetDraining();
  std::lock_guard<std::mutex> lock(wait_mu_);
  done_ = true;
  wait_cv_.notify_all();
}

bool SocketServer::Drain(int64_t deadline_ms) {
  service_->SetDraining();  // Drain without RequestShutdown still reports
  int expected = static_cast<int>(DrainState::kServing);
  drain_state_.compare_exchange_strong(
      expected, static_cast<int>(DrainState::kDraining),
      std::memory_order_acq_rel);

  // Stop accepting: close the listening socket (the accept loop exits).
  int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  {
    // Half-close every live connection for reading: in-flight requests
    // (including lines already buffered) finish and their responses are
    // written; the next recv sees EOF and the handler retires.
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (int fd : client_fds_) ::shutdown(fd, SHUT_RD);
  }
  slot_cv_.notify_all();

  bool drained;
  {
    std::unique_lock<std::mutex> lock(threads_mu_);
    drained = slot_cv_.wait_for(
        lock, std::chrono::milliseconds(deadline_ms),
        [&] { return client_fds_.empty() && active_handlers_ == 0; });
  }
  return drained;
}

void SocketServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  drain_state_.store(static_cast<int>(DrainState::kStopped),
                     std::memory_order_release);
  int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    // Unblock every handler parked in poll/recv; they remove and close
    // their own fds on the way out.
    for (int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  slot_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    handlers.swap(handler_threads_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    done_ = true;
  }
  wait_cv_.notify_all();
}

ServerStats SocketServer::stats() const {
  ServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  s.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  s.write_timeouts = write_timeouts_.load(std::memory_order_relaxed);
  s.resets = resets_.load(std::memory_order_relaxed);
  s.send_failures = send_failures_.load(std::memory_order_relaxed);
  s.short_writes = short_writes_.load(std::memory_order_relaxed);
  s.drain_state = static_cast<DrainState>(
      drain_state_.load(std::memory_order_acquire));
  return s;
}

std::string SocketServer::StatsLine() const {
  ServerStats s = stats();
  const char* state = "serving";
  if (s.drain_state == DrainState::kDraining) state = "draining";
  if (s.drain_state == DrainState::kStopped) state = "stopped";
  return "server connections=" + std::to_string(s.connections) +
         " accept_failures=" + std::to_string(s.accept_failures) +
         " read_timeouts=" + std::to_string(s.read_timeouts) +
         " write_timeouts=" + std::to_string(s.write_timeouts) +
         " resets=" + std::to_string(s.resets) +
         " send_failures=" + std::to_string(s.send_failures) +
         " short_writes=" + std::to_string(s.short_writes) +
         " drain_state=" + state;
}

}  // namespace kola
