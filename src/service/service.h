#ifndef KOLA_SERVICE_SERVICE_H_
#define KOLA_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/resource.h"
#include "common/statusor.h"
#include "optimizer/optimizer.h"
#include "optimizer/retry.h"
#include "rewrite/properties.h"
#include "service/plan_cache.h"
#include "service/plan_cache_io.h"
#include "term/intern.h"
#include "values/database.h"

namespace kola {

/// Which front end parses a request's query text.
enum class QueryLanguage { kKola, kOql, kAqua };

StatusOr<QueryLanguage> ParseQueryLanguage(std::string_view name);
const char* QueryLanguageName(QueryLanguage language);

/// Replication role. A primary is the source of truth; a standby follows a
/// primary via snapshot shipping (replication.h) and refuses BUMP; a
/// promoted standby has taken over after primary loss and accepts BUMP.
enum class ServiceRole { kPrimary = 0, kStandby, kPromoted };
const char* ServiceRoleName(ServiceRole role);

/// What the HEALTH endpoint reports. READY: serving reads at the current
/// catalog. SYNCING: a standby that has never applied a sync (it answers
/// ERR NOT_READY) or whose recent syncs keep failing (it still serves its
/// last-synced state). DRAINING: RequestShutdown has run; in-flight
/// requests finish but clients should steer away.
enum class ServiceHealth { kReady = 0, kSyncing, kDraining };
const char* ServiceHealthName(ServiceHealth health);

/// One QoS tier: a named resource envelope mapped onto Governor::Limits,
/// plus the retry-escalation depth for requests that exhaust it. Tiers are
/// how the daemon sheds load -- a request over its tier's budget degrades
/// to the best-so-far plan (PR 4/5 machinery) instead of being dropped or
/// crashing the process.
struct TierPolicy {
  std::string name;
  int64_t deadline_ms = 0;           // 0 = no deadline
  int64_t step_budget = 0;           // 0 = unlimited
  int64_t memory_budget_bytes = 0;   // 0 = unlimited (still metered)
  /// RetrySupervisor attempts (1 = no escalation): a query that exhausts
  /// the envelope is re-run under geometrically escalated budgets, and
  /// quarantined (best degraded plan returned) when the schedule tops out.
  int max_attempts = 1;
  double escalation_factor = 2.0;
};

/// The stock tier table: `gold` (deadline-free, generous byte budget,
/// escalating retries -- deterministic outcomes, the cacheable tier),
/// `silver` (bounded steps and bytes, one retry), `bronze` (tight deadline
/// and budgets, no retries -- sheds by degrading).
std::vector<TierPolicy> DefaultTiers();

struct ServiceOptions {
  /// Plan-cache entry bound (0 = unbounded); eviction is deterministic
  /// second-chance, see PlanCache.
  size_t cache_capacity = 4096;
  bool cache_enabled = true;
  /// Worker parallelism: how many optimizations may run concurrently (one
  /// pooled Optimizer each). Clamped to >= 1.
  int jobs = 1;
  /// Admission control: with a positive bound, a request arriving while
  /// this many are already in flight is shed with RESOURCE_EXHAUSTED
  /// (counted, never fatal). 0 = unlimited (requests queue on the
  /// optimizer pool instead).
  int max_inflight = 0;
  /// Tier table; must be non-empty. The first tier is the default.
  std::vector<TierPolicy> tiers = DefaultTiers();
  /// Start as a replication standby: serve reads only after the first
  /// applied sync (ERR NOT_READY before that -- a standby must never
  /// answer for a catalog it has not seen), refuse BUMP until promoted.
  bool standby = false;
};

struct ServiceRequest {
  std::string tier;                        // TierPolicy::name
  QueryLanguage language = QueryLanguage::kKola;
  std::string text;                        // query in `language`
  /// Skip the plan cache entirely (no lookup, no insert): the `F` protocol
  /// verb, which the soak harness uses to check a warm hit against a fresh
  /// optimization byte-for-byte.
  bool bypass_cache = false;
};

struct ServiceResponse {
  Status status;            // non-OK: the request failed (parse, tier, shed)
  bool cache_hit = false;
  bool degraded = false;
  bool quarantined = false;
  bool shed = false;        // rejected by admission control
  int64_t latency_usec = 0;
  /// Stable serialization of the optimization outcome (plan, rewritten
  /// candidate, costs, applied blocks, fired rules, degradation) -- every
  /// OptimizeResult field except the full trace term dumps. Cache entries
  /// store exactly this string, so a warm hit is byte-identical to a fresh
  /// optimization of the same shape by construction, and the soak test
  /// asserts it stays that way.
  std::string payload;
};

struct ServiceStats {
  uint64_t requests = 0;
  uint64_t parse_errors = 0;
  uint64_t shed = 0;
  uint64_t degraded = 0;
  uint64_t quarantined = 0;
  uint64_t retried = 0;     // requests that took >1 supervised attempt
  PlanCacheStats cache;
  uint64_t catalog_version = 0;
  uint64_t rule_fingerprint = 0;
  size_t key_interner_terms = 0;
  int64_t key_interner_bytes = 0;
  int64_t peak_bytes = 0;   // max total governed bytes of any one request
  int64_t category_peak_bytes[kNumMemoryCategories] = {};
  /// Equality-saturation phase counters (all zero unless KOLA_EGRAPH /
  /// RewriterOptions::use_egraph is on for the pooled optimizers).
  uint64_t egraph_runs = 0;       // requests whose pass ran the e-graph
  uint64_t egraph_nodes = 0;      // cumulative e-nodes across those runs
  uint64_t egraph_classes = 0;    // cumulative e-classes across those runs
  uint64_t egraph_rule_applications = 0;  // cumulative saturation firings
  uint64_t egraph_saturated = 0;  // runs that reached full saturation
  /// Crash-recovery counters (zero unless a snapshot path is in use).
  uint64_t snapshot_writes = 0;         // snapshot files successfully written
  uint64_t snapshot_write_failures = 0;
  uint64_t snapshot_last_entries = 0;   // entries in the latest snapshot
  uint64_t restored_entries = 0;        // cache entries revived on restore
  uint64_t restore_skipped = 0;         // snapshot entries rejected on restore
  int64_t uptime_sec = 0;               // seconds since service construction
  /// Replication counters (all zero on an unreplicated primary).
  uint64_t syncs_served = 0;          // SYNC streams shipped to standbys
  uint64_t syncs_applied = 0;         // syncs successfully applied (standby)
  uint64_t sync_failures = 0;         // failed sync attempts (standby)
  uint64_t sync_entries_applied = 0;  // entries revived by applied syncs
  uint64_t sync_entries_skipped = 0;  // sync entries rejected on apply
  int consecutive_sync_failures = 0;
  bool promoted = false;              // a standby that took over
  int64_t last_sync_lag_ms = -1;      // ms since last applied sync; -1 never
  std::string health_history;         // recent states, "SYNCING>READY>..."
};

/// Outcome of restoring a snapshot at startup. `status` is NOT_FOUND for a
/// normal cold start with no snapshot file, and OK whenever a file was
/// processed -- corrupt content is never an error, it is `skipped`.
struct SnapshotRestoreReport {
  Status status;
  uint64_t restored = 0;  // entries revived into the plan cache
  uint64_t skipped = 0;   // corrupt/truncated/mismatched entries dropped
  uint64_t catalog_version = 0;  // the service's version after adoption
};

/// Per-tier latency histogram: log2-usec buckets (bucket i counts requests
/// with latency in [2^i, 2^(i+1)) usec), plus count and sum for the mean.
struct LatencyHistogram {
  static constexpr int kBuckets = 32;
  uint64_t count = 0;
  uint64_t sum_usec = 0;
  uint64_t buckets[kBuckets] = {};
};

/// The histogram's bucket index for one latency: 0 for usec <= 1 (and any
/// non-positive clock artifact), floor(log2(usec)) otherwise, saturating
/// at kBuckets - 1. Exposed so the bucket boundaries are testable.
int LatencyBucket(int64_t usec);

/// The engine behind `kolad`: parses KOLA/OQL/AQUA text, optimizes under
/// per-tenant QoS tiers, and answers repeated query shapes from the plan
/// cache. Composes the existing library primitives -- per-request private
/// interner arenas (ScopedInterning), per-tier Governor envelopes,
/// RetrySupervisor escalation, pooled per-worker Optimizers -- into one
/// long-lived, shed-don't-crash component. Thread-safe: Handle may be
/// called from any number of threads; optimizations are serialized onto
/// options.jobs pooled Optimizer instances.
class OptimizationService {
 public:
  /// `db` and `properties` must outlive the service and stay unmodified
  /// while it runs (a catalog change is modeled by BumpCatalogVersion).
  OptimizationService(const Database* db, const PropertyStore* properties,
                      ServiceOptions options);

  OptimizationService(const OptimizationService&) = delete;
  OptimizationService& operator=(const OptimizationService&) = delete;

  /// Serves one request end to end: parse (private interner arena),
  /// canonicalize, cache probe, optimize under the tier's envelope with
  /// retry escalation, cache fill. Never throws; every failure is a Status
  /// in the response.
  ServiceResponse Handle(const ServiceRequest& request);

  /// The line protocol: "Q <tier> <lang> <query>", "F <tier> <lang>
  /// <query>", "STATS", "BUMP", "PING", "HEALTH", "SYNC". Returns the
  /// full response text (possibly multi-line for STATS, length-prefixed
  /// binary-ish for SYNC); the final line always starts with "OK" or
  /// "ERR". QUIT/SHUTDOWN are connection-level verbs handled by the
  /// server, not here.
  std::string HandleLine(const std::string& line);

  /// Invalidates every cached plan by advancing the catalog version (new
  /// lookups miss; stale entries are dropped eagerly). Returns the new
  /// version.
  uint64_t BumpCatalogVersion();

  /// Writes the current plan-cache contents to `path` (atomic
  /// tmp-file-and-rename, per-entry checksums -- see plan_cache_io.h) so a
  /// restarted daemon can answer warm. Safe to call while serving; counts
  /// into snapshot_writes / snapshot_write_failures.
  Status SaveSnapshot(const std::string& path);

  /// Restores a snapshot written by SaveSnapshot: adopts the snapshot's
  /// catalog version (so restored keys stay live and a later BUMP still
  /// invalidates them), re-parses each key-term rendering and re-interns
  /// it through the shared key interner -- a restored shape's warm hit is
  /// byte-identical to a fresh optimization by the same argument as a
  /// never-restarted cache. Entries that fail checksum, parse, rule
  /// fingerprint or catalog-version validation are skipped and counted,
  /// never fatal. Call before serving traffic.
  SnapshotRestoreReport RestoreSnapshot(const std::string& path);

  ServiceRole role() const {
    return static_cast<ServiceRole>(role_.load(std::memory_order_acquire));
  }
  ServiceHealth health() const;

  /// True when this endpoint may answer Q/F: always on a primary or a
  /// promoted standby; on a standby only once its first sync has applied.
  /// Draining does not revoke it -- in-flight readers still finish.
  bool ServingReads() const;

  /// One-way latch set by the server once RequestShutdown has run. PING
  /// answers "OK draining" and HEALTH reports DRAINING from then on.
  void SetDraining();

  /// Standby -> promoted after primary loss: starts accepting BUMP and
  /// reports READY. Idempotent; a no-op on a primary.
  void Promote();

  /// Records one failed sync attempt (standby side) and returns the
  /// consecutive-failure count, which the replication client compares
  /// against its promotion threshold.
  int NoteSyncFailure();

  /// The SYNC response body a primary ships (after the protocol's "OK "):
  /// "SNAPSHOT <len> <hex end-to-end checksum>\n" followed by exactly
  /// <len> KOLASNAP bytes. The checksum covers the bytes as sent, so a
  /// torn or corrupted stream is detected before any entry is applied.
  std::string EncodeSyncResponse();

  /// Applies a shipped snapshot stream on a standby: decode, rule
  /// fingerprint check, CAS-max catalog-version adoption (clearing
  /// entries the adoption just made stale), then the same tolerant
  /// per-entry revive as RestoreSnapshot. A successful apply marks the
  /// standby sync-ready; an unusable header or foreign fingerprint is an
  /// error and leaves readiness untouched.
  SnapshotRestoreReport ApplySyncBytes(std::string_view bytes);

  /// The HEALTH protocol body (after "OK "): state, role, whether the
  /// endpoint should receive reads, sync status, replication lag and
  /// catalog version, all on one line.
  std::string HealthLine() const;

  uint64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }
  uint64_t rule_fingerprint() const { return rule_fingerprint_; }

  ServiceStats stats() const;
  LatencyHistogram tier_latency(const std::string& tier) const;
  /// The STATS protocol body: "S <key> <value...>" lines + "OK stats".
  std::string StatsText() const;

  /// Optional extra STATS line: the provider's return value is emitted as
  /// one "S <body>" line (the SocketServer wires its socket counters in
  /// here). Install before serving traffic; not synchronized against
  /// concurrent StatsText calls.
  void set_extra_stats(std::function<std::string()> provider) {
    extra_stats_ = std::move(provider);
  }

  const ServiceOptions& options() const { return options_; }

 private:
  const TierPolicy* FindTier(const std::string& name) const;
  StatusOr<TermPtr> ParseRequest(QueryLanguage language,
                                 const std::string& text) const;
  std::unique_ptr<Optimizer> AcquireOptimizer();
  void ReleaseOptimizer(std::unique_ptr<Optimizer> optimizer);
  void RecordOutcome(const TierPolicy& tier, const RetryReport& report,
                     int64_t latency_usec);
  void MaybeCompactKeyInterner();
  PlanSnapshot BuildSnapshot();
  /// The tolerant per-entry revive shared by crash restore and sync
  /// apply: entries cached under exactly `adopted` re-parse, re-intern
  /// and insert; everything else counts into *skipped.
  void ReviveEntries(const PlanSnapshot& snapshot, uint64_t adopted,
                     uint64_t* restored, uint64_t* skipped);
  /// Appends the current health state to the bounded transition history
  /// if it changed (so READY->SYNCING->READY is observable in STATS).
  void RecordHealthTransition();

  const Database* db_;
  const PropertyStore* properties_;
  ServiceOptions options_;
  uint64_t rule_fingerprint_;
  std::atomic<uint64_t> catalog_version_{1};
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  std::function<std::string()> extra_stats_;

  /// Replication / lifecycle state. role_ holds a ServiceRole; the rest
  /// are one-way or monotonic flags, so plain atomics suffice.
  std::atomic<int> role_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> sync_ready_{false};
  std::atomic<int> consecutive_sync_failures_{0};
  std::atomic<int64_t> last_sync_time_ms_{-1};  // steady-clock ms; -1 never
  std::vector<std::string> health_history_;     // guarded by stats_mu_

  /// Canonicalizes incoming query shapes for O(1) cache keys. Entries are
  /// kept alive by the cache's key references and compacted once eviction
  /// has retired enough of them.
  TermInterner key_interner_;
  PlanCache cache_;
  uint64_t compacted_at_evictions_ = 0;  // guarded by stats_mu_

  /// Idle per-worker Optimizer clones; Handle blocks here when more than
  /// options.jobs requests want to optimize at once.
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::vector<std::unique_ptr<Optimizer>> optimizer_pool_;

  std::atomic<int> inflight_{0};

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  std::vector<LatencyHistogram> tier_latency_;  // parallel to options.tiers
};

}  // namespace kola

#endif  // KOLA_SERVICE_SERVICE_H_
