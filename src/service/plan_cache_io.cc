#include "service/plan_cache_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/parse_number.h"
#include "term/term.h"

namespace kola {

namespace {

constexpr std::string_view kMagic = "KOLASNAP 1 ";
constexpr std::string_view kTrailerMagic = "KOLASNAP-END ";

std::string Hex(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// The per-entry integrity check: FNV-1a over the version rendering, the
/// term text and the payload, with separators so field boundaries are part
/// of the digest (a byte migrating between term and payload changes it).
uint64_t EntryChecksum(const PlanSnapshotEntry& entry) {
  uint64_t h = StableStringHash(std::to_string(entry.catalog_version));
  h = StableHashCombine(h, StableStringHash(entry.term_text));
  h = StableHashCombine(h, StableStringHash(entry.payload));
  return h;
}

/// Pops the next '\n'-terminated line off `*rest`; false at end of data
/// (an unterminated tail is truncation, not a line).
bool TakeLine(std::string_view* rest, std::string_view* line) {
  size_t newline = rest->find('\n');
  if (newline == std::string_view::npos) return false;
  *line = rest->substr(0, newline);
  rest->remove_prefix(newline + 1);
  return true;
}

/// Pops an exact `n`-byte field followed by its '\n' terminator.
bool TakeBytes(std::string_view* rest, size_t n, std::string_view* field) {
  if (rest->size() < n + 1 || (*rest)[n] != '\n') return false;
  *field = rest->substr(0, n);
  rest->remove_prefix(n + 1);
  return true;
}

/// Splits a header/entry line on single spaces; keeps it strict so a
/// flipped byte in the framing is a parse failure, not a misread.
std::vector<std::string_view> Fields(std::string_view line) {
  std::vector<std::string_view> out;
  while (!line.empty()) {
    size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      out.push_back(line);
      break;
    }
    out.push_back(line.substr(0, space));
    line.remove_prefix(space + 1);
  }
  return out;
}

bool TakeTagged(std::string_view field, std::string_view tag,
                std::string_view* value) {
  if (field.substr(0, tag.size()) != tag) return false;
  *value = field.substr(tag.size());
  return true;
}

/// Seeds the file checksum from the header fields, so a flipped byte in
/// the fingerprint, version or declared count -- which still parses --
/// desynchronizes the trailer checksum and is counted as damage.
uint64_t SeedFileChecksum(uint64_t fingerprint, uint64_t version,
                          uint64_t declared_entries) {
  uint64_t h = StableStringHash("kolasnap");
  h = StableHashCombine(h, fingerprint);
  h = StableHashCombine(h, version);
  h = StableHashCombine(h, declared_entries);
  return h;
}

}  // namespace

bool ParseHex64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

std::string EncodePlanSnapshot(const PlanSnapshot& snapshot) {
  std::string out;
  size_t bytes = 128;
  for (const PlanSnapshotEntry& entry : snapshot.entries) {
    bytes += entry.term_text.size() + entry.payload.size() + 64;
  }
  out.reserve(bytes);
  out += kMagic;
  out += "fp=" + Hex(snapshot.rule_fingerprint);
  out += " version=" + std::to_string(snapshot.catalog_version);
  out += " entries=" + std::to_string(snapshot.entries.size());
  out += '\n';
  uint64_t file_checksum = SeedFileChecksum(
      snapshot.rule_fingerprint, snapshot.catalog_version,
      static_cast<uint64_t>(snapshot.entries.size()));
  for (const PlanSnapshotEntry& entry : snapshot.entries) {
    uint64_t checksum = EntryChecksum(entry);
    file_checksum = StableHashCombine(file_checksum, checksum);
    out += "E " + std::to_string(entry.catalog_version) + ' ' +
           std::to_string(entry.term_text.size()) + ' ' +
           std::to_string(entry.payload.size()) + ' ' + Hex(checksum) + '\n';
    out += entry.term_text;
    out += '\n';
    out += entry.payload;
    out += '\n';
  }
  out += kTrailerMagic;
  out += "entries=" + std::to_string(snapshot.entries.size());
  out += " checksum=" + Hex(file_checksum);
  out += '\n';
  return out;
}

PlanSnapshot DecodePlanSnapshot(std::string_view data,
                                SnapshotReadReport* report) {
  PlanSnapshot snapshot;
  SnapshotReadReport local;
  SnapshotReadReport& r = report != nullptr ? *report : local;
  r = SnapshotReadReport{};

  std::string_view rest = data;
  std::string_view line;
  // Header: magic + fingerprint + version + declared entry count. A
  // snapshot whose header does not validate is unusable -- cold start,
  // one counted skip.
  auto bad_header = [&]() -> PlanSnapshot {
    r.skipped += 1;
    return PlanSnapshot{};
  };
  if (!TakeLine(&rest, &line)) return bad_header();
  if (line.substr(0, kMagic.size()) != kMagic) return bad_header();
  std::vector<std::string_view> fields = Fields(line.substr(kMagic.size()));
  std::string_view fp_text, version_text, entries_text;
  if (fields.size() != 3 || !TakeTagged(fields[0], "fp=", &fp_text) ||
      !TakeTagged(fields[1], "version=", &version_text) ||
      !TakeTagged(fields[2], "entries=", &entries_text)) {
    return bad_header();
  }
  if (!ParseHex64(fp_text, &snapshot.rule_fingerprint)) return bad_header();
  auto version = ParseUint64(version_text);
  auto declared = ParseUint64(entries_text);
  if (!version.ok() || !declared.ok()) return bad_header();
  snapshot.catalog_version = version.value();
  r.header_ok = true;
  r.entries_declared = declared.value();

  uint64_t file_checksum = SeedFileChecksum(
      snapshot.rule_fingerprint, snapshot.catalog_version,
      r.entries_declared);
  while (r.entries_read + r.skipped < r.entries_declared) {
    if (!TakeLine(&rest, &line)) break;  // truncated mid-stream
    std::vector<std::string_view> f = Fields(line);
    if (f.size() != 5 || f[0] != "E") break;  // framing lost; cannot resync
    auto entry_version = ParseUint64(f[1]);
    auto term_bytes = ParseUint64(f[2]);
    auto payload_bytes = ParseUint64(f[3]);
    uint64_t declared_checksum = 0;
    if (!entry_version.ok() || !term_bytes.ok() || !payload_bytes.ok() ||
        !ParseHex64(f[4], &declared_checksum)) {
      break;
    }
    // An absurd length is corruption, and trusting it would mis-slice the
    // rest of the stream.
    if (term_bytes.value() > rest.size() ||
        payload_bytes.value() > rest.size()) {
      break;
    }
    std::string_view term_text, payload;
    if (!TakeBytes(&rest, static_cast<size_t>(term_bytes.value()),
                   &term_text) ||
        !TakeBytes(&rest, static_cast<size_t>(payload_bytes.value()),
                   &payload)) {
      break;
    }
    PlanSnapshotEntry entry;
    entry.catalog_version = entry_version.value();
    entry.term_text = std::string(term_text);
    entry.payload = std::string(payload);
    uint64_t checksum = EntryChecksum(entry);
    if (checksum != declared_checksum) {
      // Bit rot inside this entry only; framing was consistent, so the
      // stream continues at the next entry.
      r.skipped += 1;
      continue;
    }
    file_checksum = StableHashCombine(file_checksum, checksum);
    snapshot.entries.push_back(std::move(entry));
    r.entries_read += 1;
  }
  // Whatever was declared but never validated is skipped (truncation).
  if (r.entries_read + r.skipped < r.entries_declared) {
    r.skipped = r.entries_declared - r.entries_read;
  }

  // Trailer: count and chained checksum. Its absence (truncation) or
  // mismatch is counted, but entries that individually validated are
  // still good -- their own checksums vouch for them.
  if (TakeLine(&rest, &line) &&
      line.substr(0, kTrailerMagic.size()) == kTrailerMagic) {
    std::vector<std::string_view> f = Fields(line.substr(kTrailerMagic.size()));
    std::string_view count_text, checksum_text;
    uint64_t trailer_checksum = 0;
    if (f.size() == 2 && TakeTagged(f[0], "entries=", &count_text) &&
        TakeTagged(f[1], "checksum=", &checksum_text) &&
        ParseHex64(checksum_text, &trailer_checksum)) {
      auto count = ParseUint64(count_text);
      r.trailer_ok = count.ok() && count.value() == r.entries_read &&
                     trailer_checksum == file_checksum && r.skipped == 0;
    }
  }
  // A file whose trailer does not validate was damaged somewhere, even if
  // every entry that was read checked out individually: register at least
  // one skip so restore counters always flag corruption.
  if (!r.trailer_ok && r.skipped == 0) r.skipped += 1;
  return snapshot;
}

Status WritePlanSnapshotFile(const std::string& path,
                             const PlanSnapshot& snapshot) {
  const std::string encoded = EncodePlanSnapshot(snapshot);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("snapshot: fopen(" + tmp +
                         "): " + std::strerror(errno));
  }
  auto fail = [&](const char* what) {
    Status status = InternalError("snapshot: " + std::string(what) + "(" +
                                  tmp + "): " + std::strerror(errno));
    std::fclose(file);
    std::remove(tmp.c_str());
    return status;
  };
  if (std::fwrite(encoded.data(), 1, encoded.size(), file) !=
      encoded.size()) {
    return fail("fwrite");
  }
  if (std::fflush(file) != 0) return fail("fflush");
  // Durability, not just atomicity: the rename below publishes the file,
  // fsync makes sure its bytes reached the disk first.
  if (::fsync(::fileno(file)) != 0) return fail("fsync");
  if (std::fclose(file) != 0) {
    std::remove(tmp.c_str());
    return InternalError("snapshot: fclose(" + tmp +
                         "): " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = InternalError("snapshot: rename(" + tmp + " -> " + path +
                                  "): " + std::strerror(errno));
    std::remove(tmp.c_str());
    return status;
  }
  return Status::OK();
}

StatusOr<PlanSnapshot> ReadPlanSnapshotFile(const std::string& path,
                                            SnapshotReadReport* report) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return NotFoundError("snapshot: no file at " + path);
    }
    return InternalError("snapshot: fopen(" + path +
                         "): " + std::strerror(errno));
  }
  std::string data;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    data.append(chunk, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return InternalError("snapshot: fread(" + path + ") failed");
  }
  return DecodePlanSnapshot(data, report);
}

}  // namespace kola
