#include "service/service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <utility>

#include "aqua/parser.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "oql/oql.h"
#include "rules/catalog.h"
#include "service/plan_cache_io.h"
#include "term/parser.h"
#include "term/term.h"
#include "translate/translate.h"

namespace kola {

namespace {

/// Key-interner compaction cadence: after this many cache evictions, the
/// interner sweeps entries nothing holds anymore (the evicted shapes).
constexpr uint64_t kCompactEveryEvictions = 256;

/// Hard cap on how long one protocol line may be; a longer line is a
/// malformed request, answered with an error rather than buffered forever.
constexpr size_t kMaxQueryBytes = 1 << 20;

/// A standby whose syncs keep failing flips HEALTH to SYNCING at this many
/// consecutive failures (one transient miss does not flap the endpoint).
constexpr int kSyncingAfterFailures = 2;

/// Bound on the health transition history kept for STATS; only the recent
/// tail (e.g. READY>SYNCING>READY around a failover) is interesting.
constexpr size_t kHealthHistoryLimit = 8;

int64_t NowSteadyMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Error text travels on a single protocol line; newlines would desync the
/// stream.
std::string OneLine(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

/// The stable payload: every OptimizeResult field except the full trace
/// term dumps (the fired rule ids stand in for it). Fields are
/// tab-separated -- no term, rule id, or block name renders a tab -- so
/// clients can split mechanically and byte-compare whole payloads.
std::string SerializeOutcome(const std::string& tier, const OptimizeResult& r,
                             const RetryReport& report) {
  std::string out;
  out.reserve(256);
  out += "tier=" + tier;
  out += "\tdegraded=";
  out += r.degradation.degraded ? '1' : '0';
  out += "\tquarantined=";
  out += report.quarantined ? '1' : '0';
  out += "\tattempts=" + std::to_string(report.attempts);
  out += "\tkept=";
  out += r.kept_rewrite ? '1' : '0';
  out += "\tcost=" + FormatDouble(r.cost_before) + "->" +
         FormatDouble(r.cost_after);
  out += "\tblocks=" + Join(r.applied_blocks, ",");
  out += "\trules=" + Join(r.trace.RuleIds(), ",");
  out += "\tplan=" + (r.query == nullptr ? "" : r.query->ToString());
  out += "\trewritten=" +
         (r.rewritten == nullptr ? "" : r.rewritten->ToString());
  out += "\tdegradation=" + OneLine(r.degradation.ToString());
  return out;
}

}  // namespace

int LatencyBucket(int64_t usec) {
  if (usec <= 0) return 0;
  int bucket = std::bit_width(static_cast<uint64_t>(usec)) - 1;
  return std::min(bucket, LatencyHistogram::kBuckets - 1);
}

StatusOr<QueryLanguage> ParseQueryLanguage(std::string_view name) {
  if (name == "kola") return QueryLanguage::kKola;
  if (name == "oql") return QueryLanguage::kOql;
  if (name == "aqua") return QueryLanguage::kAqua;
  return InvalidArgumentError("unknown query language '" + std::string(name) +
                              "' (expected kola, oql or aqua)");
}

const char* QueryLanguageName(QueryLanguage language) {
  switch (language) {
    case QueryLanguage::kKola:
      return "kola";
    case QueryLanguage::kOql:
      return "oql";
    case QueryLanguage::kAqua:
      return "aqua";
  }
  return "unknown";
}

const char* ServiceRoleName(ServiceRole role) {
  switch (role) {
    case ServiceRole::kPrimary:
      return "primary";
    case ServiceRole::kStandby:
      return "standby";
    case ServiceRole::kPromoted:
      return "promoted";
  }
  return "unknown";
}

const char* ServiceHealthName(ServiceHealth health) {
  switch (health) {
    case ServiceHealth::kReady:
      return "READY";
    case ServiceHealth::kSyncing:
      return "SYNCING";
    case ServiceHealth::kDraining:
      return "DRAINING";
  }
  return "UNKNOWN";
}

std::vector<TierPolicy> DefaultTiers() {
  // gold is deadline-free on purpose: its outcomes are a pure function of
  // the query (step and byte budgets are deterministic), which is what
  // makes warm-hit-vs-fresh byte identity assertable in CI. bronze trades
  // that for a hard latency envelope.
  return {
      TierPolicy{.name = "gold",
                 .deadline_ms = 0,
                 .step_budget = 0,
                 .memory_budget_bytes = 256 << 20,
                 .max_attempts = 3},
      TierPolicy{.name = "silver",
                 .deadline_ms = 0,
                 .step_budget = 2'000'000,
                 .memory_budget_bytes = 32 << 20,
                 .max_attempts = 2},
      TierPolicy{.name = "bronze",
                 .deadline_ms = 100,
                 .step_budget = 100'000,
                 .memory_budget_bytes = 1 << 20,
                 .max_attempts = 1},
  };
}

OptimizationService::OptimizationService(const Database* db,
                                         const PropertyStore* properties,
                                         ServiceOptions options)
    : db_(db),
      properties_(properties),
      options_(std::move(options)),
      rule_fingerprint_(RuleSetFingerprint(AllCatalogRules())),
      cache_(options_.cache_capacity) {
  if (options_.jobs < 1) options_.jobs = 1;
  if (options_.tiers.empty()) options_.tiers = DefaultTiers();
  tier_latency_.resize(options_.tiers.size());
  for (int i = 0; i < options_.jobs; ++i) {
    optimizer_pool_.push_back(
        std::make_unique<Optimizer>(properties_, db_));
  }
  role_.store(static_cast<int>(options_.standby ? ServiceRole::kStandby
                                                : ServiceRole::kPrimary),
              std::memory_order_release);
  RecordHealthTransition();  // seed the history: READY or SYNCING
}

ServiceHealth OptimizationService::health() const {
  if (draining_.load(std::memory_order_acquire)) {
    return ServiceHealth::kDraining;
  }
  switch (role()) {
    case ServiceRole::kPrimary:
    case ServiceRole::kPromoted:
      return ServiceHealth::kReady;
    case ServiceRole::kStandby:
      if (!sync_ready_.load(std::memory_order_acquire) ||
          consecutive_sync_failures_.load(std::memory_order_acquire) >=
              kSyncingAfterFailures) {
        return ServiceHealth::kSyncing;
      }
      return ServiceHealth::kReady;
  }
  return ServiceHealth::kSyncing;
}

bool OptimizationService::ServingReads() const {
  return role() != ServiceRole::kStandby ||
         sync_ready_.load(std::memory_order_acquire);
}

void OptimizationService::SetDraining() {
  draining_.store(true, std::memory_order_release);
  RecordHealthTransition();
}

void OptimizationService::Promote() {
  int expected = static_cast<int>(ServiceRole::kStandby);
  if (role_.compare_exchange_strong(
          expected, static_cast<int>(ServiceRole::kPromoted),
          std::memory_order_acq_rel)) {
    // A promoted standby is the new source of truth at whatever catalog
    // version it last synced; serving it is correct because every entry it
    // holds was validated against exactly that version.
    sync_ready_.store(true, std::memory_order_release);
    RecordHealthTransition();
  }
}

int OptimizationService::NoteSyncFailure() {
  int failures =
      consecutive_sync_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sync_failures;
  }
  RecordHealthTransition();
  return failures;
}

void OptimizationService::RecordHealthTransition() {
  const std::string name = ServiceHealthName(health());
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (!health_history_.empty() && health_history_.back() == name) return;
  health_history_.push_back(name);
  if (health_history_.size() > kHealthHistoryLimit) {
    health_history_.erase(health_history_.begin());
  }
}

const TierPolicy* OptimizationService::FindTier(
    const std::string& name) const {
  for (const TierPolicy& tier : options_.tiers) {
    if (tier.name == name) return &tier;
  }
  return nullptr;
}

StatusOr<TermPtr> OptimizationService::ParseRequest(
    QueryLanguage language, const std::string& text) const {
  Translator translator;
  switch (language) {
    case QueryLanguage::kOql: {
      auto lowered = oql::ParseOql(text);
      if (!lowered.ok()) return lowered.status();
      return translator.TranslateQuery(lowered.value());
    }
    case QueryLanguage::kAqua: {
      auto expr = aqua::ParseAqua(text);
      if (!expr.ok()) return expr.status();
      return translator.TranslateQuery(expr.value());
    }
    case QueryLanguage::kKola:
      return ParseQuery(text);
  }
  return InternalError("bad query language");
}

std::unique_ptr<Optimizer> OptimizationService::AcquireOptimizer() {
  std::unique_lock<std::mutex> lock(pool_mu_);
  pool_cv_.wait(lock, [&] { return !optimizer_pool_.empty(); });
  std::unique_ptr<Optimizer> optimizer = std::move(optimizer_pool_.back());
  optimizer_pool_.pop_back();
  return optimizer;
}

void OptimizationService::ReleaseOptimizer(
    std::unique_ptr<Optimizer> optimizer) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    optimizer_pool_.push_back(std::move(optimizer));
  }
  pool_cv_.notify_one();
}

void OptimizationService::RecordOutcome(const TierPolicy& tier,
                                        const RetryReport& report,
                                        int64_t latency_usec) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (report.degraded) ++stats_.degraded;
  if (report.quarantined) ++stats_.quarantined;
  if (report.attempts > 1) ++stats_.retried;
  stats_.peak_bytes = std::max(stats_.peak_bytes, report.peak_bytes);
  for (int c = 0; c < kNumMemoryCategories; ++c) {
    stats_.category_peak_bytes[c] = std::max(
        stats_.category_peak_bytes[c], report.category_peak_bytes[c]);
  }
  size_t index = static_cast<size_t>(&tier - options_.tiers.data());
  LatencyHistogram& histogram = tier_latency_[index];
  ++histogram.count;
  histogram.sum_usec += static_cast<uint64_t>(latency_usec);
  ++histogram.buckets[LatencyBucket(latency_usec)];
}

void OptimizationService::MaybeCompactKeyInterner() {
  uint64_t evictions = cache_.stats().evictions;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (evictions - compacted_at_evictions_ < kCompactEveryEvictions) return;
    compacted_at_evictions_ = evictions;
  }
  // Evicted cache entries were the last holders of their key terms; the
  // sweep returns that memory. Safe while other threads intern.
  key_interner_.Compact();
}

uint64_t OptimizationService::BumpCatalogVersion() {
  uint64_t version =
      catalog_version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Every cached key carries an older version and can never hit again;
  // reclaim eagerly instead of waiting for the clock hand.
  cache_.Clear();
  key_interner_.Compact();
  return version;
}

PlanSnapshot OptimizationService::BuildSnapshot() {
  PlanSnapshot snapshot;
  snapshot.rule_fingerprint = rule_fingerprint_;
  snapshot.catalog_version = catalog_version();
  for (const PlanCacheEntry& entry : cache_.Entries()) {
    PlanSnapshotEntry out;
    out.catalog_version = entry.key.catalog_version;
    // TermIds are process-local; the canonical rendering is the portable
    // key. Restore re-parses it and re-interns through the (fresh) key
    // interner, which re-derives the same canonical shape.
    out.term_text = entry.term->ToString();
    out.payload = entry.payload;
    snapshot.entries.push_back(std::move(out));
  }
  return snapshot;
}

Status OptimizationService::SaveSnapshot(const std::string& path) {
  PlanSnapshot snapshot = BuildSnapshot();
  Status status = WritePlanSnapshotFile(path, snapshot);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (status.ok()) {
      ++stats_.snapshot_writes;
      stats_.snapshot_last_entries = snapshot.entries.size();
    } else {
      ++stats_.snapshot_write_failures;
    }
  }
  return status;
}

SnapshotRestoreReport OptimizationService::RestoreSnapshot(
    const std::string& path) {
  SnapshotRestoreReport report;
  SnapshotReadReport read_report;
  StatusOr<PlanSnapshot> loaded = ReadPlanSnapshotFile(path, &read_report);
  if (!loaded.ok()) {
    // NOT_FOUND is the ordinary cold start; an I/O error is reported but
    // still non-fatal -- the daemon simply starts cold.
    report.status = loaded.status();
    report.catalog_version = catalog_version();
    return report;
  }
  const PlanSnapshot& snapshot = loaded.value();
  report.skipped = read_report.skipped;

  if (snapshot.rule_fingerprint != rule_fingerprint_) {
    // The rule catalog changed across the restart: every cached plan was
    // computed by a different optimizer and none may be served warm.
    report.skipped += snapshot.entries.size();
    report.status = Status::OK();
    report.catalog_version = catalog_version();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.restore_skipped += report.skipped;
    }
    return report;
  }

  // Adopt the snapshot's catalog version (monotonic max) so restored keys
  // stay live and a post-restart BUMP still invalidates them. A fresh
  // daemon starts at 1; the snapshot of a bumped daemon carries more.
  uint64_t current = catalog_version_.load(std::memory_order_acquire);
  while (snapshot.catalog_version > current &&
         !catalog_version_.compare_exchange_weak(
             current, snapshot.catalog_version, std::memory_order_acq_rel)) {
  }
  const uint64_t adopted = catalog_version();
  report.catalog_version = adopted;

  ReviveEntries(snapshot, adopted, &report.restored, &report.skipped);

  report.status = Status::OK();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.restored_entries += report.restored;
    stats_.restore_skipped += report.skipped;
  }
  return report;
}

void OptimizationService::ReviveEntries(const PlanSnapshot& snapshot,
                                        uint64_t adopted, uint64_t* restored,
                                        uint64_t* skipped) {
  for (const PlanSnapshotEntry& entry : snapshot.entries) {
    // An entry cached under an older catalog version was already
    // invalidated at its source; reviving it would serve stale plans.
    if (entry.catalog_version != adopted) {
      ++*skipped;
      continue;
    }
    // Same first-tag-wins discipline as Handle: parse outside any
    // interning region, then let the key interner canonicalize.
    StatusOr<TermPtr> parsed = [&] {
      ScopedInterning no_interning(static_cast<TermInterner*>(nullptr));
      return ParseQuery(entry.term_text);
    }();
    if (!parsed.ok()) {
      ++*skipped;
      continue;
    }
    TermPtr canonical = key_interner_.Intern(parsed.value());
    const TermId query_id = key_interner_.IdOf(canonical);
    if (query_id == 0) {
      ++*skipped;
      continue;
    }
    const PlanCacheKey key{query_id, rule_fingerprint_, adopted};
    cache_.Insert(key, canonical, entry.payload);
    ++*restored;
  }
}

std::string OptimizationService::EncodeSyncResponse() {
  std::string encoded = EncodePlanSnapshot(BuildSnapshot());
  char checksum[24];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(StableStringHash(encoded)));
  // The chaos site for replication: corrupt one byte AFTER the end-to-end
  // checksum was computed, exactly what a torn TCP stream or bit rot in
  // transit looks like. The standby must detect it and count a failed
  // sync, never apply a damaged stream.
  if (!MaybeInjectFault(FaultSite::kReplSync).ok() && !encoded.empty()) {
    encoded[encoded.size() / 2] ^= 0x40;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.syncs_served;
  }
  return "SNAPSHOT " + std::to_string(encoded.size()) + " " + checksum +
         "\n" + encoded;
}

SnapshotRestoreReport OptimizationService::ApplySyncBytes(
    std::string_view bytes) {
  SnapshotRestoreReport report;
  SnapshotReadReport read_report;
  PlanSnapshot snapshot = DecodePlanSnapshot(bytes, &read_report);
  report.skipped = read_report.skipped;
  report.catalog_version = catalog_version();
  if (!read_report.header_ok) {
    report.status =
        InvalidArgumentError("sync stream: unusable snapshot header");
    return report;
  }
  if (snapshot.rule_fingerprint != rule_fingerprint_) {
    // Version skew: the primary runs a different rule catalog, so none of
    // its plans are this process's plans. Refusing the whole sync (rather
    // than skipping entries) keeps the standby NOT_READY instead of
    // "ready" with an empty, wrong view.
    report.skipped += snapshot.entries.size();
    report.status = FailedPreconditionError(
        "sync stream: rule fingerprint mismatch (primary runs a different "
        "rule catalog)");
    return report;
  }

  // CAS-max adoption, same as crash restore: the version only moves
  // forward, so a standby can never answer for a catalog older than any
  // it has acknowledged.
  const uint64_t before = catalog_version_.load(std::memory_order_acquire);
  uint64_t current = before;
  while (snapshot.catalog_version > current &&
         !catalog_version_.compare_exchange_weak(
             current, snapshot.catalog_version, std::memory_order_acq_rel)) {
  }
  const uint64_t adopted = catalog_version();
  report.catalog_version = adopted;
  if (adopted > before) {
    // Everything cached under the pre-sync version is stale now; reclaim
    // eagerly, exactly like BumpCatalogVersion does on a primary.
    cache_.Clear();
    key_interner_.Compact();
  }

  ReviveEntries(snapshot, adopted, &report.restored, &report.skipped);
  report.status = Status::OK();

  last_sync_time_ms_.store(NowSteadyMs(), std::memory_order_release);
  consecutive_sync_failures_.store(0, std::memory_order_release);
  sync_ready_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.syncs_applied;
    stats_.sync_entries_applied += report.restored;
    stats_.sync_entries_skipped += report.skipped;
  }
  RecordHealthTransition();
  return report;
}

std::string OptimizationService::HealthLine() const {
  const ServiceHealth h = health();
  const bool serving = ServingReads() && h != ServiceHealth::kDraining;
  const bool synced = role() == ServiceRole::kPrimary ||
                      sync_ready_.load(std::memory_order_acquire);
  const int64_t last = last_sync_time_ms_.load(std::memory_order_acquire);
  std::string out = ServiceHealthName(h);
  out += " role=";
  out += ServiceRoleName(role());
  out += " serving=";
  out += serving ? '1' : '0';
  out += " synced=";
  out += synced ? '1' : '0';
  out += " lag_ms=";
  out += last < 0 ? "-1" : std::to_string(NowSteadyMs() - last);
  out += " version=" + std::to_string(catalog_version());
  return out;
}

ServiceResponse OptimizationService::Handle(const ServiceRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  ServiceResponse response;
  auto finish = [&]() -> ServiceResponse& {
    response.latency_usec =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    return response;
  };
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }

  // A standby that has never applied a sync must not answer: its catalog
  // version is a default, not the primary's, and any plan it computed
  // could be stale the moment it catches up.
  if (!ServingReads()) {
    response.status = FailedPreconditionError(
        "standby not ready: awaiting first sync from primary (NOT_READY)");
    return finish();
  }

  // Admission control: past the in-flight bound the request is shed with a
  // status, never queued unboundedly and never fatal.
  struct InflightGuard {
    std::atomic<int>& counter;
    ~InflightGuard() { counter.fetch_sub(1, std::memory_order_acq_rel); }
  };
  int inflight = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  InflightGuard inflight_guard{inflight_};
  if (options_.max_inflight > 0 && inflight > options_.max_inflight) {
    response.shed = true;
    response.status = ResourceExhaustedError(
        "admission: " + std::to_string(inflight) + " requests in flight "
        "(limit " + std::to_string(options_.max_inflight) + "); shed");
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed;
    return finish();
  }

  const TierPolicy* tier = FindTier(request.tier);
  if (tier == nullptr) {
    std::vector<std::string> names;
    for (const TierPolicy& t : options_.tiers) names.push_back(t.name);
    response.status = InvalidArgumentError("unknown tier '" + request.tier +
                                           "' (have " + Join(names, ", ") +
                                           ")");
    return finish();
  }
  if (request.text.size() > kMaxQueryBytes) {
    response.status = InvalidArgumentError(
        "query text exceeds " + std::to_string(kMaxQueryBytes) + " bytes");
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.parse_errors;
    return finish();
  }

  // Parse OUTSIDE any interning region: TermInterner tags are first-wins,
  // so the key interner below must be the first arena these nodes meet --
  // a parse tree tagged by another arena (a request arena, the global
  // arena under KOLA_INTERN) would make IdOf return 0 and the shape
  // silently uncacheable.
  StatusOr<TermPtr> parsed = [&] {
    ScopedInterning no_interning(static_cast<TermInterner*>(nullptr));
    return ParseRequest(request.language, request.text);
  }();
  if (!parsed.ok()) {
    response.status = parsed.status();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.parse_errors;
    return finish();
  }

  // O(1) cache key: canonicalize the shape in the shared key interner.
  // An id of 0 means the interner declined (injected fault); such a
  // request is simply uncacheable, never wrong.
  TermPtr canonical = key_interner_.Intern(parsed.value());
  const TermId query_id = key_interner_.IdOf(canonical);
  const bool cacheable =
      options_.cache_enabled && !request.bypass_cache && query_id != 0;
  const PlanCacheKey key{query_id, rule_fingerprint_, catalog_version()};

  if (cacheable) {
    if (std::optional<std::string> hit = cache_.Lookup(key)) {
      response.cache_hit = true;
      response.payload = *std::move(hit);
      finish();
      RecordOutcome(*tier, RetryReport{}, response.latency_usec);
      return response;
    }
  }

  RetryOptions retry;
  retry.memory_budget_bytes = tier->memory_budget_bytes;
  retry.deadline_ms = tier->deadline_ms;
  retry.step_budget = tier->step_budget;
  retry.max_attempts = tier->max_attempts;
  retry.escalation_factor = tier->escalation_factor;

  std::unique_ptr<Optimizer> optimizer = AcquireOptimizer();
  // Jitter index 0: the escalation schedule is a pure function of the
  // tier, so repeated shapes optimize identically regardless of arrival
  // order -- a warm hit must be indistinguishable from a fresh pass.
  RetrySupervisor supervisor(optimizer.get(), retry);
  RetryOutcome outcome;
  {
    // The optimizer's intermediate terms intern into a private per-request
    // arena that dies (and is compacted) with this scope, so one request's
    // rewrite garbage never bloats the shared key interner.
    TermInterner request_arena;
    ScopedInterning request_interning(&request_arena);
    outcome = supervisor.Optimize(canonical, 0);
  }
  ReleaseOptimizer(std::move(optimizer));

  if (!outcome.ok() || !outcome.result.has_value()) {
    response.status = outcome.ok()
                          ? InternalError("supervisor returned no result")
                          : outcome.status;
    return finish();
  }

  response.degraded = outcome.report.degraded;
  response.quarantined = outcome.report.quarantined;
  response.payload =
      SerializeOutcome(tier->name, *outcome.result, outcome.report);

  // E-graph phase accounting (KOLA_EGRAPH): cumulative across requests.
  // Kept out of the payload so cache identity is untouched.
  const EGraphStats& eg = outcome.result->egraph;
  if (eg.nodes > 0 || eg.processed > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.egraph_runs;
    stats_.egraph_nodes += eg.nodes;
    stats_.egraph_classes += eg.classes;
    stats_.egraph_rule_applications += eg.rule_applications;
    if (eg.saturated) ++stats_.egraph_saturated;
  }

  // Only clean plans are cached: a degraded plan is what THIS request's
  // budget afforded, not the shape's answer, and serving it warm would
  // pin the degradation long after pressure subsides.
  if (cacheable && !response.degraded && !response.quarantined) {
    cache_.Insert(key, canonical, response.payload);
    MaybeCompactKeyInterner();
  }

  finish();
  RecordOutcome(*tier, outcome.report, response.latency_usec);
  return response;
}

std::string OptimizationService::HandleLine(const std::string& raw) {
  std::string_view line = StripWhitespace(raw);
  if (line.empty()) {
    return "ERR INVALID_ARGUMENT: empty request";
  }
  if (line == "PING") {
    return draining_.load(std::memory_order_acquire) ? "OK draining"
                                                     : "OK pong";
  }
  if (line == "STATS") return StatsText();
  if (line == "HEALTH") return "OK " + HealthLine();
  if (line == "BUMP") {
    if (role() == ServiceRole::kStandby) {
      return "ERR FAILED_PRECONDITION: standby refuses BUMP (replicas "
             "follow the primary's catalog; bump the primary, or promote "
             "this standby first)";
    }
    return "OK version=" + std::to_string(BumpCatalogVersion());
  }
  if (line == "SYNC") {
    if (!ServingReads()) {
      return "ERR NOT_READY: standby has no applied sync to ship";
    }
    return "OK " + EncodeSyncResponse();
  }

  if (line.rfind("Q ", 0) == 0 || line.rfind("F ", 0) == 0) {
    if (!ServingReads()) {
      // The wire spells NOT_READY so clients (and the failover gate in
      // CI) can tell "come back after a sync" from a real failure.
      return "ERR NOT_READY: standby awaiting first sync from primary";
    }
    const bool bypass = line[0] == 'F';
    std::string_view rest = line.substr(2);
    size_t tier_end = rest.find(' ');
    if (tier_end == std::string_view::npos) {
      return "ERR INVALID_ARGUMENT: expected '" +
             std::string(1, line[0]) + " <tier> <lang> <query>'";
    }
    std::string_view tier = rest.substr(0, tier_end);
    rest = StripWhitespace(rest.substr(tier_end + 1));
    size_t lang_end = rest.find(' ');
    if (lang_end == std::string_view::npos) {
      return "ERR INVALID_ARGUMENT: expected '" +
             std::string(1, line[0]) + " <tier> <lang> <query>'";
    }
    StatusOr<QueryLanguage> language =
        ParseQueryLanguage(rest.substr(0, lang_end));
    if (!language.ok()) {
      return "ERR " + OneLine(language.status().ToString());
    }
    std::string_view text = StripWhitespace(rest.substr(lang_end + 1));
    if (text.empty()) {
      return "ERR INVALID_ARGUMENT: empty query";
    }

    ServiceRequest request;
    request.tier = std::string(tier);
    request.language = *language;
    request.text = std::string(text);
    request.bypass_cache = bypass;
    ServiceResponse response = Handle(request);
    if (!response.status.ok()) {
      return "ERR " + OneLine(response.status.ToString());
    }
    std::string out = "OK ";
    out += response.cache_hit ? '1' : '0';
    out += ' ';
    out += std::to_string(response.latency_usec);
    out += '\t';
    out += response.payload;
    return out;
  }

  return "ERR INVALID_ARGUMENT: unknown verb (expected Q, F, STATS, BUMP, "
         "PING, HEALTH, SYNC, QUIT or SHUTDOWN)";
}

ServiceStats OptimizationService::stats() const {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
    for (const std::string& state : health_history_) {
      if (!snapshot.health_history.empty()) snapshot.health_history += '>';
      snapshot.health_history += state;
    }
  }
  snapshot.consecutive_sync_failures =
      consecutive_sync_failures_.load(std::memory_order_acquire);
  snapshot.promoted = role() == ServiceRole::kPromoted;
  const int64_t last = last_sync_time_ms_.load(std::memory_order_acquire);
  snapshot.last_sync_lag_ms = last < 0 ? -1 : NowSteadyMs() - last;
  snapshot.cache = cache_.stats();
  snapshot.catalog_version = catalog_version();
  snapshot.rule_fingerprint = rule_fingerprint_;
  snapshot.key_interner_terms = key_interner_.size();
  snapshot.key_interner_bytes = key_interner_.bytes();
  snapshot.uptime_sec = std::chrono::duration_cast<std::chrono::seconds>(
                            std::chrono::steady_clock::now() - start_time_)
                            .count();
  return snapshot;
}

LatencyHistogram OptimizationService::tier_latency(
    const std::string& tier) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (size_t i = 0; i < options_.tiers.size(); ++i) {
    if (options_.tiers[i].name == tier) return tier_latency_[i];
  }
  return LatencyHistogram{};
}

std::string OptimizationService::StatsText() const {
  ServiceStats s = stats();
  std::string out;
  auto line = [&out](const std::string& text) {
    out += "S " + text + "\n";
  };
  line("requests " + std::to_string(s.requests));
  line("parse_errors " + std::to_string(s.parse_errors));
  line("shed " + std::to_string(s.shed));
  line("degraded " + std::to_string(s.degraded));
  line("quarantined " + std::to_string(s.quarantined));
  line("retried " + std::to_string(s.retried));
  line("egraph runs=" + std::to_string(s.egraph_runs) +
       " nodes=" + std::to_string(s.egraph_nodes) +
       " classes=" + std::to_string(s.egraph_classes) +
       " rule_applications=" + std::to_string(s.egraph_rule_applications) +
       " saturated=" + std::to_string(s.egraph_saturated));
  line("cache hits=" + std::to_string(s.cache.hits) +
       " misses=" + std::to_string(s.cache.misses) +
       " insertions=" + std::to_string(s.cache.insertions) +
       " evictions=" + std::to_string(s.cache.evictions) +
       " entries=" + std::to_string(s.cache.entries) +
       " bytes=" + std::to_string(s.cache.bytes) +
       " capacity=" + std::to_string(cache_.capacity()));
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof(fingerprint), "0x%016llx",
                static_cast<unsigned long long>(s.rule_fingerprint));
  std::string catalog = "catalog version=" + std::to_string(s.catalog_version);
  catalog += " fingerprint=";
  catalog += fingerprint;
  line(catalog);
  line("key_interner terms=" + std::to_string(s.key_interner_terms) +
       " bytes=" + std::to_string(s.key_interner_bytes));
  line("snapshot writes=" + std::to_string(s.snapshot_writes) +
       " write_failures=" + std::to_string(s.snapshot_write_failures) +
       " last_entries=" + std::to_string(s.snapshot_last_entries) +
       " restored=" + std::to_string(s.restored_entries) +
       " restore_skipped=" + std::to_string(s.restore_skipped));
  line("replication role=" + std::string(ServiceRoleName(role())) +
       " state=" + ServiceHealthName(health()) +
       " serving=" + (ServingReads() && !draining_.load(
                          std::memory_order_acquire) ? "1" : "0") +
       " syncs_served=" + std::to_string(s.syncs_served) +
       " syncs_applied=" + std::to_string(s.syncs_applied) +
       " sync_failures=" + std::to_string(s.sync_failures) +
       " entries_applied=" + std::to_string(s.sync_entries_applied) +
       " entries_skipped=" + std::to_string(s.sync_entries_skipped) +
       " consecutive_failures=" +
       std::to_string(s.consecutive_sync_failures) +
       " promoted=" + (s.promoted ? "1" : "0") +
       " lag_ms=" + std::to_string(s.last_sync_lag_ms) +
       " history=" + s.health_history);
  line("uptime_sec " + std::to_string(s.uptime_sec));
  if (extra_stats_) line(extra_stats_());
  std::string peaks = "peak_bytes total=" + std::to_string(s.peak_bytes);
  for (int c = 0; c < kNumMemoryCategories; ++c) {
    peaks += " ";
    peaks += MemoryCategoryName(static_cast<MemoryCategory>(c));
    peaks += "=";
    peaks += std::to_string(s.category_peak_bytes[c]);
  }
  line(peaks);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (size_t i = 0; i < options_.tiers.size(); ++i) {
      const LatencyHistogram& h = tier_latency_[i];
      uint64_t mean = h.count == 0 ? 0 : h.sum_usec / h.count;
      // Buckets above the highest nonzero one are elided.
      int top = LatencyHistogram::kBuckets;
      while (top > 1 && h.buckets[top - 1] == 0) --top;
      std::string hist;
      for (int b = 0; b < top; ++b) {
        if (b > 0) hist += ":";
        hist += std::to_string(h.buckets[b]);
      }
      line("latency " + options_.tiers[i].name +
           " count=" + std::to_string(h.count) +
           " mean_usec=" + std::to_string(mean) + " hist=" + hist);
    }
  }
  out += "OK stats";
  return out;
}

}  // namespace kola
