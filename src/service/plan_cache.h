#ifndef KOLA_SERVICE_PLAN_CACHE_H_
#define KOLA_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "term/term.h"

namespace kola {

/// Cache key for one optimized plan. A plan is a pure function of
/// (query, rule set, catalog): the query limb is the canonical TermId the
/// service's key interner assigned (hash-consing makes structurally equal
/// queries share one id, so the key is O(1) to build), the rule limb is the
/// stable FNV-1a RuleSetFingerprint of the catalog the optimizer rewrites
/// with, and the version limb is the service's monotonic catalog version --
/// bumping it (schema/extent change) orphans every older entry without
/// touching them.
struct PlanCacheKey {
  TermId query_id = 0;
  uint64_t rule_fingerprint = 0;
  uint64_t catalog_version = 0;

  bool operator==(const PlanCacheKey& other) const = default;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  int64_t bytes = 0;  // payload + key-term footprint of live entries
};

/// One live entry, copied out for snapshotting: the key, an owning
/// reference to the canonical key term, and the cached payload.
struct PlanCacheEntry {
  PlanCacheKey key;
  TermPtr term;
  std::string payload;
};

/// A capacity-bounded map from PlanCacheKey to a serialized optimization
/// outcome, with the same deterministic second-chance (clock) eviction as
/// FixpointCache: a hit sets the entry's referenced bit, and at capacity
/// the hand sweeps the insertion-ordered ring clearing bits until it finds
/// an unreferenced victim. Eviction is purely a function of the
/// lookup/insert sequence -- no wall clock, no pointers -- so a replayed
/// request stream reproduces the exact same hit/miss/evict trace.
///
/// Entries hold an owning reference to their canonical key term, which is
/// what keeps the key interner's ids for cached shapes alive (the interner
/// only compacts entries nothing else holds).
///
/// Thread-safe: one mutex; every operation is a short map probe, so the
/// lock is never held across parsing or optimization.
class PlanCache {
 public:
  /// `capacity` bounds live entries; 0 means unbounded.
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached payload for `key`, or nullopt. Counts a hit or a miss and
  /// refreshes the second-chance bit on hit.
  std::optional<std::string> Lookup(const PlanCacheKey& key);

  /// Caches `payload` under `key`, evicting one old entry if at capacity.
  /// `key_term` is the canonical query term the key's id names; the cache
  /// keeps it alive for the entry's lifetime. Re-inserting an existing key
  /// replaces its payload in place (two workers racing the same cold shape
  /// compute identical payloads, so last-writer-wins is benign).
  void Insert(const PlanCacheKey& key, TermPtr key_term, std::string payload);

  /// Drops every entry (counted as evictions) and resets the hand; the
  /// hit/miss/insert counters survive. For catalog bumps where the caller
  /// wants the memory back immediately instead of waiting for the clock
  /// hand to recycle stale-version entries.
  void Clear();

  /// Copies every live entry in slot (insertion-ring) order, so two
  /// snapshots of the same operation sequence list entries identically.
  /// Taken under the cache lock; payloads and term references are copies,
  /// safe to serialize while other threads keep hitting the cache.
  std::vector<PlanCacheEntry> Entries() const;

  PlanCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct KeyHash {
    size_t operator()(const PlanCacheKey& key) const;
  };

  struct Slot {
    PlanCacheKey key;
    TermPtr term;         // nullptr marks a free slot
    std::string payload;
    bool referenced = false;
  };

  int64_t SlotBytes(const Slot& slot) const;
  size_t EvictOneLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;  // insertion-ordered ring once at capacity
  size_t hand_ = 0;
  std::unordered_map<PlanCacheKey, size_t, KeyHash> index_;
  PlanCacheStats stats_;
};

}  // namespace kola

#endif  // KOLA_SERVICE_PLAN_CACHE_H_
