#ifndef KOLA_SERVICE_PLAN_CACHE_IO_H_
#define KOLA_SERVICE_PLAN_CACHE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace kola {

/// On-disk snapshot of the plan cache: what survives a `kill -9`.
///
/// A cached plan is a pure function of (query shape, rule set, catalog
/// version), so an entry persists exactly the limbs of its PlanCacheKey --
/// the canonical key term's *rendering* (TermIds are process-local and
/// meaningless across restarts; the rendering re-parses and re-interns into
/// the new process's key interner), the catalog version the entry was
/// cached under -- plus the payload bytes verbatim. The rule fingerprint
/// and snapshot-time catalog version ride in the header.
///
/// Format (version 1), line-oriented like the wire protocol; term
/// renderings and payloads never contain a newline by construction:
///
///   KOLASNAP 1 fp=<hex fingerprint> version=<N> entries=<N>
///   E <catalog_version> <term_bytes> <payload_bytes> <hex checksum>
///   <term rendering>
///   <payload>
///   ...one E block per entry...
///   KOLASNAP-END entries=<N> checksum=<hex file checksum>
///
/// Every entry carries an FNV-1a checksum over its version + term +
/// payload; the trailer carries a checksum seeded from the header fields
/// (fingerprint, version, declared count) and chained over all entry
/// checksums, so *any* single damaged byte -- header, entry, or trailer --
/// registers at least one counted skip. Decoding is *tolerant by design*:
/// a corrupt or truncated
/// entry is skipped and counted, never an abort -- the daemon starts cold
/// (or partially warm) instead of not starting.
struct PlanSnapshotEntry {
  uint64_t catalog_version = 0;
  std::string term_text;  // canonical key-term rendering (Term::ToString)
  std::string payload;    // cached ServiceResponse payload, verbatim
};

struct PlanSnapshot {
  uint64_t rule_fingerprint = 0;
  uint64_t catalog_version = 0;  // service catalog version at snapshot time
  std::vector<PlanSnapshotEntry> entries;
};

/// What decoding found, for counters and CI assertions. `skipped` counts
/// corrupt/truncated/undeclared entries (a malformed header or trailer
/// counts at least one); decoding itself never fails.
struct SnapshotReadReport {
  bool header_ok = false;
  bool trailer_ok = false;
  uint64_t entries_declared = 0;
  uint64_t entries_read = 0;
  uint64_t skipped = 0;
};

/// Serializes a snapshot to the format above.
std::string EncodePlanSnapshot(const PlanSnapshot& snapshot);

/// Parses up to 16 lowercase hex digits (the snapshot and sync wire
/// checksum rendering) into a uint64. Shared with the replication client,
/// which verifies the end-to-end checksum on a shipped snapshot stream.
bool ParseHex64(std::string_view text, uint64_t* out);

/// Parses as much of `data` as validates. Entries whose checksum, lengths
/// or framing are broken are dropped and counted in `report->skipped`;
/// a hopeless header yields an empty snapshot with `skipped >= 1`.
PlanSnapshot DecodePlanSnapshot(std::string_view data,
                                SnapshotReadReport* report);

/// Atomically writes `snapshot` to `path`: encode to `path + ".tmp"`,
/// flush, rename. A crash mid-write can never leave a half-written file
/// under the real name.
Status WritePlanSnapshotFile(const std::string& path,
                             const PlanSnapshot& snapshot);

/// Reads and decodes `path`. NOT_FOUND when the file does not exist (a
/// normal cold start); corrupt *content* is not an error -- it surfaces
/// through `report` with whatever entries survived.
StatusOr<PlanSnapshot> ReadPlanSnapshotFile(const std::string& path,
                                            SnapshotReadReport* report);

}  // namespace kola

#endif  // KOLA_SERVICE_PLAN_CACHE_IO_H_
