#ifndef KOLA_SERVICE_SERVER_H_
#define KOLA_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "service/service.h"

namespace kola {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// from port() after Start).
  int port = 0;
  /// Soft cap on concurrently served connections: a connection accepted
  /// past the cap waits for a free handler slot before its first request
  /// is read (back-pressure, never a drop).
  int handler_threads = 4;
  /// A protocol line longer than this is answered with an error and the
  /// connection is closed (a stream that never sends '\n' cannot pin a
  /// handler's buffer forever).
  size_t max_line_bytes = 1 << 20;
};

/// The network skin of OptimizationService: a line-oriented TCP server on
/// 127.0.0.1. One request per '\n'-terminated line, one response block per
/// request (final response line always starts with OK or ERR). Connection
/// verbs handled here rather than in the service: QUIT closes the
/// connection, SHUTDOWN stops the whole server (Wait returns).
///
/// Robustness contract: malformed input, oversized lines, dropped
/// connections and write failures degrade to per-connection errors -- the
/// daemon never aborts or leaks a handler.
class SocketServer {
 public:
  /// `service` is borrowed and must outlive the server.
  SocketServer(OptimizationService* service, ServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and spawns the accept loop. Non-OK when the port
  /// cannot be bound.
  Status Start();

  /// Blocks until Stop() is called or a client sends SHUTDOWN.
  void Wait();

  /// Idempotent: closes the listening socket and every live connection,
  /// then joins all threads.
  void Stop();

  /// The bound port (after Start); 0 before.
  int port() const { return port_.load(std::memory_order_acquire); }

  uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// False when the peer vanished mid-write; the caller drops the
  /// connection (never a signal: sends pass MSG_NOSIGNAL).
  bool SendAll(int fd, const std::string& text);

  OptimizationService* service_;
  ServerOptions options_;

  std::atomic<int> listen_fd_{-1};
  std::atomic<int> port_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_{0};

  std::thread accept_thread_;
  std::mutex threads_mu_;  // guards the three members below
  std::vector<std::thread> handler_threads_;
  std::vector<int> client_fds_;
  int active_handlers_ = 0;
  std::condition_variable slot_cv_;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool done_ = false;
};

}  // namespace kola

#endif  // KOLA_SERVICE_SERVER_H_
