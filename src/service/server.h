#ifndef KOLA_SERVICE_SERVER_H_
#define KOLA_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "service/service.h"

namespace kola {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// from port() after Start).
  int port = 0;
  /// Soft cap on concurrently served connections: a connection accepted
  /// past the cap waits for a free handler slot before its first request
  /// is read (back-pressure, never a drop).
  int handler_threads = 4;
  /// A protocol line longer than this is answered with an error and the
  /// connection is closed (a stream that never sends '\n' cannot pin a
  /// handler's buffer forever).
  size_t max_line_bytes = 1 << 20;
  /// Read deadline, the slow-loris defense: a connection that does not
  /// deliver a COMPLETE line within this many milliseconds of acquiring
  /// its handler slot (or of its previous line) is answered with
  /// DEADLINE_EXCEEDED and closed. Dribbling one byte at a time does not
  /// reset the clock -- only a finished request does. 0 disables.
  int64_t read_deadline_ms = 0;
  /// Write deadline: one response (one SendAll call) that cannot be fully
  /// handed to the kernel within this many milliseconds -- a peer that
  /// stopped reading -- drops the connection. 0 disables.
  int64_t write_deadline_ms = 0;
};

/// Where the server is in its lifecycle, surfaced in STATS.
enum class DrainState { kServing = 0, kDraining = 1, kStopped = 2 };

/// Socket-level counters, all monotonic since Start().
struct ServerStats {
  uint64_t connections = 0;       // accepted (including later failures)
  uint64_t accept_failures = 0;   // accept errors + injected accept faults
  uint64_t read_timeouts = 0;     // connections cut by the read deadline
  uint64_t write_timeouts = 0;    // connections cut by the write deadline
  uint64_t resets = 0;            // recv errors + injected recv resets
  uint64_t send_failures = 0;     // peer vanished mid-write
  uint64_t short_writes = 0;      // partial send() iterations (incl. injected)
  DrainState drain_state = DrainState::kServing;
};

/// The network skin of OptimizationService: a line-oriented TCP server on
/// 127.0.0.1. One request per '\n'-terminated line, one response block per
/// request (final response line always starts with OK or ERR). Connection
/// verbs handled here rather than in the service: QUIT closes the
/// connection, SHUTDOWN asks the whole server to stop (Wait returns; the
/// owner then drains and stops).
///
/// Robustness contract: malformed input, oversized lines, dropped
/// connections, stalled peers (read/write deadlines) and write failures
/// degrade to per-connection errors -- the daemon never aborts or leaks a
/// handler. Fault-injection sites `accept`, `recv` and `send` simulate the
/// same failures deterministically for chaos runs.
class SocketServer {
 public:
  /// `service` is borrowed and must outlive the server.
  SocketServer(OptimizationService* service, ServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and spawns the accept loop. Non-OK when the port
  /// cannot be bound.
  Status Start();

  /// Blocks until Stop() is called, a client sends SHUTDOWN, or
  /// RequestShutdown() is invoked (e.g. from a signal watcher).
  void Wait();

  /// Wakes Wait() without tearing anything down, so the owner can run the
  /// graceful path: Wait() -> Drain() -> snapshot -> Stop(). Also flips
  /// the service to DRAINING (PING answers "OK draining", HEALTH reports
  /// DRAINING) so load balancers steer away early. Idempotent.
  void RequestShutdown();

  /// Graceful drain: stops accepting, half-closes every live connection
  /// for reading (in-flight requests finish and their responses are
  /// sent; no new requests are read), then waits up to `deadline_ms` for
  /// handlers to retire. Returns true if every connection drained within
  /// the deadline. Stop() afterwards reaps stragglers. Idempotent.
  bool Drain(int64_t deadline_ms);

  /// Idempotent: closes the listening socket and every live connection,
  /// then joins all threads.
  void Stop();

  /// The bound port (after Start); 0 before.
  int port() const { return port_.load(std::memory_order_acquire); }

  uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }

  ServerStats stats() const;
  /// One "S server ..." STATS line; wire into
  /// OptimizationService::set_extra_stats.
  std::string StatsLine() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// False when the peer vanished mid-write or the write deadline expired;
  /// the caller drops the connection (never a signal: sends pass
  /// MSG_NOSIGNAL). Handles EINTR and short writes explicitly, and clamps
  /// writes to 1 byte under an injected `send` fault so the
  /// short-write path is exercised deterministically.
  bool SendAll(int fd, const std::string& text);

  OptimizationService* service_;
  ServerOptions options_;

  std::atomic<int> listen_fd_{-1};
  std::atomic<int> port_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<int> drain_state_{0};  // DrainState

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> accept_failures_{0};
  std::atomic<uint64_t> read_timeouts_{0};
  std::atomic<uint64_t> write_timeouts_{0};
  std::atomic<uint64_t> resets_{0};
  std::atomic<uint64_t> send_failures_{0};
  std::atomic<uint64_t> short_writes_{0};

  std::thread accept_thread_;
  std::mutex threads_mu_;  // guards the three members below
  std::vector<std::thread> handler_threads_;
  std::vector<int> client_fds_;
  int active_handlers_ = 0;
  std::condition_variable slot_cv_;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool done_ = false;
};

}  // namespace kola

#endif  // KOLA_SERVICE_SERVER_H_
