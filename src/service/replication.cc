#include "service/replication.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/fault_injection.h"
#include "common/parse_number.h"
#include "common/string_util.h"
#include "service/plan_cache_io.h"
#include "term/term.h"

namespace kola {

namespace {

/// A declared stream length beyond this is corruption (or a hostile
/// primary), not a snapshot; reading it would balloon the standby.
constexpr uint64_t kMaxSyncBytes = 256ull << 20;

/// Cap on the full-jitter backoff between failed syncs.
constexpr int64_t kMaxBackoffMs = 5000;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Same poll discipline as SocketServer: absolute deadline, EINTR restarts
/// with the remaining budget. Returns >0 ready, 0 deadline, <0 error.
int PollFd(int fd, short events, int64_t deadline_ms) {
  for (;;) {
    int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) return 0;
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1,
                    static_cast<int>(std::min<int64_t>(remaining, 1 << 30)));
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

Status Errno(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

/// Non-blocking connect to 127.0.0.1:`port` bounded by the deadline. The
/// returned fd stays non-blocking so every subsequent read/write goes
/// through PollFd.
StatusOr<int> DialLoopback(int port, int64_t deadline_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("sync: socket()");
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    Status status = Errno("sync: connect(127.0.0.1:" + std::to_string(port) +
                          ")");
    ::close(fd);
    return status;
  }
  int ready = PollFd(fd, POLLOUT, deadline_ms);
  if (ready <= 0) {
    ::close(fd);
    return UnavailableError("sync: connect(127.0.0.1:" +
                            std::to_string(port) +
                            (ready == 0 ? ") timed out" : ") poll failed"));
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    ::close(fd);
    return UnavailableError("sync: connect(127.0.0.1:" +
                            std::to_string(port) + "): " +
                            std::strerror(err != 0 ? err : errno));
  }
  return fd;
}

Status SendAll(int fd, std::string_view text, int64_t deadline_ms) {
  size_t sent = 0;
  while (sent < text.size()) {
    int ready = PollFd(fd, POLLOUT, deadline_ms);
    if (ready == 0) return UnavailableError("sync: send timed out");
    if (ready < 0) return Errno("sync: poll(POLLOUT)");
    ssize_t n = ::send(fd, text.data() + sent, text.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("sync: send()");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads until `*buffer` holds at least `want` bytes or EOF/deadline.
Status ReadAtLeast(int fd, size_t want, int64_t deadline_ms,
                   std::string* buffer) {
  char chunk[1 << 16];
  while (buffer->size() < want) {
    int ready = PollFd(fd, POLLIN, deadline_ms);
    if (ready == 0) return UnavailableError("sync: read timed out");
    if (ready < 0) return Errno("sync: poll(POLLIN)");
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("sync: recv()");
    }
    if (n == 0) {
      return UnavailableError("sync: stream truncated (primary hung up)");
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return Status::OK();
}

/// Reads one '\n'-terminated line into `*line` (terminator stripped);
/// leftover bytes stay in `*buffer` for the length-prefixed payload read.
Status ReadLine(int fd, int64_t deadline_ms, std::string* buffer,
                std::string* line) {
  size_t scanned = 0;
  for (;;) {
    size_t newline = buffer->find('\n', scanned);
    if (newline != std::string::npos) {
      *line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return Status::OK();
    }
    scanned = buffer->size();
    Status status = ReadAtLeast(fd, buffer->size() + 1, deadline_ms, buffer);
    if (!status.ok()) return status;
  }
}

struct FdCloser {
  int fd;
  ~FdCloser() { ::close(fd); }
};

}  // namespace

ReplicationClient::ReplicationClient(OptimizationService* service,
                                     ReplicationOptions options)
    : service_(service),
      options_(std::move(options)),
      backoff_rng_(options_.backoff_seed) {
  if (options_.sync_interval_ms < 1) options_.sync_interval_ms = 1;
  if (options_.io_deadline_ms < 1) options_.io_deadline_ms = 1;
}

ReplicationClient::~ReplicationClient() { Stop(); }

void ReplicationClient::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { SyncLoop(); });
}

void ReplicationClient::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool ReplicationClient::SleepFor(int64_t ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(ms), [&] { return stop_; });
  return !stop_;
}

Status ReplicationClient::SyncOnce() {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  // The standby-side chaos probe: a torn receive path, drawn before any
  // bytes move so the schedule is deterministic per seed.
  if (Status injected = MaybeInjectFault(FaultSite::kReplSync);
      !injected.ok()) {
    return injected;
  }
  const int64_t deadline = NowMs() + options_.io_deadline_ms;
  StatusOr<int> dialed = DialLoopback(options_.port, deadline);
  if (!dialed.ok()) return dialed.status();
  FdCloser closer{dialed.value()};
  const int fd = dialed.value();

  if (Status status = SendAll(fd, "SYNC\n", deadline); !status.ok()) {
    return status;
  }
  std::string buffer, header;
  if (Status status = ReadLine(fd, deadline, &buffer, &header);
      !status.ok()) {
    return status;
  }
  // "OK SNAPSHOT <len> <hex checksum>" -- anything else (ERR NOT_READY
  // from a not-yet-synced upstream, an old binary) is a failed sync.
  std::vector<std::string> fields = Split(header, ' ');
  if (fields.size() != 4 || fields[0] != "OK" || fields[1] != "SNAPSHOT") {
    return UnavailableError("sync: unexpected response '" + header + "'");
  }
  auto declared_len = ParseUint64(fields[2]);
  uint64_t declared_checksum = 0;
  if (!declared_len.ok() || !ParseHex64(fields[3], &declared_checksum) ||
      declared_len.value() > kMaxSyncBytes) {
    return UnavailableError("sync: malformed stream header '" + header + "'");
  }
  const size_t len = static_cast<size_t>(declared_len.value());
  if (Status status = ReadAtLeast(fd, len, deadline, &buffer);
      !status.ok()) {
    return status;
  }
  const std::string bytes = buffer.substr(0, len);
  bytes_received_.fetch_add(len, std::memory_order_relaxed);

  // End-to-end integrity: the checksum was computed over the bytes the
  // primary intended to send, so any tear or flip in transit -- including
  // an injected kReplSync fault on the primary -- is caught here, before
  // a single entry is applied.
  if (StableStringHash(bytes) != declared_checksum) {
    checksum_mismatches_.fetch_add(1, std::memory_order_relaxed);
    return UnavailableError("sync: stream checksum mismatch (torn or "
                            "corrupt snapshot stream)");
  }

  SnapshotRestoreReport report = service_->ApplySyncBytes(bytes);
  return report.status;
}

void ReplicationClient::SyncLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    Status status = SyncOnce();
    if (status.ok()) {
      if (!SleepFor(options_.sync_interval_ms)) return;
      continue;
    }
    const int failures = service_->NoteSyncFailure();
    if (options_.promote_after_failures > 0 &&
        failures >= options_.promote_after_failures) {
      // The primary is gone (or unreachable long enough that split-brain
      // is the lesser risk on loopback): take over. The service starts
      // accepting BUMP; this loop's job is done.
      service_->Promote();
      return;
    }
    // Full jitter: uniform in (0, min(cap, interval << failures)], so a
    // herd of standbys does not stampede a recovering primary.
    int64_t ceiling = options_.sync_interval_ms;
    for (int i = 1; i < failures && ceiling < kMaxBackoffMs; ++i) {
      ceiling *= 2;
    }
    ceiling = std::min<int64_t>(ceiling, kMaxBackoffMs);
    int64_t nap = 1 + static_cast<int64_t>(backoff_rng_.NextDouble() *
                                           static_cast<double>(ceiling));
    if (!SleepFor(nap)) return;
  }
}

ReplicationClientStats ReplicationClient::stats() const {
  ReplicationClientStats s;
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.checksum_mismatches =
      checksum_mismatches_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.running = running_ && !stop_;
  }
  return s;
}

}  // namespace kola
