#include "rewrite/engine.h"

#include <sstream>

#include "common/macros.h"
#include "rewrite/match.h"

namespace kola {

std::vector<std::string> Trace::RuleIds() const {
  std::vector<std::string> ids;
  ids.reserve(steps.size());
  for (const RewriteStep& step : steps) ids.push_back(step.rule_id);
  return ids;
}

std::string Trace::ToString() const {
  std::ostringstream os;
  if (initial != nullptr) os << initial->ToString() << "\n";
  for (const RewriteStep& step : steps) {
    os << "  --[" << step.rule_id << "]--> " << step.result->ToString()
       << "\n";
  }
  return os.str();
}

bool Rewriter::ConditionsHold(const Rule& rule,
                              const Bindings& bindings) const {
  if (rule.conditions.empty()) return true;
  if (properties_ == nullptr) return false;
  for (const PropertyAtom& condition : rule.conditions) {
    auto goal = Substitute(condition.pattern, bindings);
    if (!goal.ok()) return false;
    if (!properties_->Holds(condition.property, goal.value())) return false;
  }
  return true;
}

std::optional<TermPtr> Rewriter::ApplyAtRoot(const Rule& rule,
                                             const TermPtr& term) const {
  Bindings bindings;
  if (!MatchTerm(rule.lhs, term, &bindings)) return std::nullopt;
  if (!ConditionsHold(rule, bindings)) return std::nullopt;
  auto result = Substitute(rule.rhs, bindings);
  // Rules are validated at construction (rhs variables bound by lhs), so
  // substitution cannot fail; a failure here is a library bug.
  KOLA_CHECK_OK(result.status());
  return std::move(result).value();
}

std::optional<TermPtr> Rewriter::ApplyOnceImpl(const Rule& rule,
                                               const TermPtr& term,
                                               std::vector<size_t>* path,
                                               RewriteStep* step) const {
  if (auto rewritten = ApplyAtRoot(rule, term)) {
    if (step != nullptr) {
      step->rule_id = rule.id;
      step->path = *path;
      step->before = term;
      step->after = *rewritten;
    }
    return rewritten;
  }
  for (size_t i = 0; i < term->arity(); ++i) {
    path->push_back(i);
    if (auto rewritten = ApplyOnceImpl(rule, term->child(i), path, step)) {
      std::vector<TermPtr> children = term->children();
      children[i] = std::move(*rewritten);
      path->pop_back();
      return term->WithChildren(std::move(children));
    }
    path->pop_back();
  }
  return std::nullopt;
}

std::optional<TermPtr> Rewriter::ApplyOnce(const Rule& rule,
                                           const TermPtr& term,
                                           RewriteStep* step) const {
  std::vector<size_t> path;
  auto result = ApplyOnceImpl(rule, term, &path, step);
  if (result && step != nullptr) step->result = *result;
  return result;
}

std::optional<TermPtr> Rewriter::ApplyAnyOnce(const std::vector<Rule>& rules,
                                              const TermPtr& term,
                                              RewriteStep* step) const {
  for (const Rule& rule : rules) {
    if (auto result = ApplyOnce(rule, term, step)) return result;
  }
  return std::nullopt;
}

StatusOr<TermPtr> Rewriter::Fixpoint(const std::vector<Rule>& rules,
                                     TermPtr term, Trace* trace,
                                     int max_steps) const {
  if (trace != nullptr && trace->initial == nullptr) trace->initial = term;
  for (int i = 0; i < max_steps; ++i) {
    RewriteStep step;
    auto result = ApplyAnyOnce(rules, term, &step);
    if (!result) return term;
    term = std::move(*result);
    if (trace != nullptr) trace->steps.push_back(std::move(step));
  }
  return ResourceExhaustedError("rewrite fixpoint exceeded " +
                                std::to_string(max_steps) + " steps");
}

}  // namespace kola
