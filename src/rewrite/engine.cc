#include "rewrite/engine.h"

#include <sstream>

#include "term/intern.h"

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/macros.h"
#include "rewrite/match.h"
#include "rewrite/rule_index.h"

namespace kola {

namespace {

// Subtrees smaller than this are cheaper to re-match than to hash into the
// failed-set, so the memo skips them.
constexpr size_t kFixpointMemoMinNodes = 8;

// Whole-term floor for Fixpoint's implicit accelerators (the negative-match
// memo and construction-time interning of rewrite spines). Small fixpoints
// converge in a handful of sweeps, where per-sweep memo inserts and arena
// hashing dominate the matching they save -- this is what held the
// interning benchmark below 1.0x on untangle_garage (32 nodes) and the
// Figure 4 queries (11-15 nodes) -- while the hidden-join workloads that
// profit start at 59+ nodes. Gated once on the ENTRY term: a term that
// grows past the floor mid-fixpoint keeps its plain sweep (results and
// traces do not depend on the accelerators, so the gate is pure policy).
// Caller-provided FixpointCaches are exempt: passing one is an explicit
// opt-in (and tests rely on small-query caches populating).
constexpr size_t kFixpointAccelMinTermNodes = 48;

/// Term::stable_hash with the nullptr convention fingerprints use.
uint64_t StableTermHash(const TermPtr& term) {
  return term == nullptr ? 0 : term->stable_hash();
}

}  // namespace

uint64_t RuleSetFingerprint(const std::vector<Rule>& rules) {
  // Per-term hashes are cached on the nodes (Term::stable_hash), so
  // re-fingerprinting a live rule set -- every ApplyAnyOnce call does --
  // costs one string hash and a few mixes per rule, not a pattern walk.
  uint64_t fp = rules.size();
  for (const Rule& rule : rules) {
    fp = StableHashCombine(fp, StableStringHash(rule.id));
    fp = StableHashCombine(fp, StableTermHash(rule.lhs));
    fp = StableHashCombine(fp, StableTermHash(rule.rhs));
    for (const PropertyAtom& atom : rule.conditions) {
      fp = StableHashCombine(fp, StableStringHash(atom.property));
      fp = StableHashCombine(fp, StableTermHash(atom.pattern));
    }
  }
  // Reserve 0 for "not attuned yet".
  return fp == 0 ? 1 : fp;
}

void FixpointCache::Reset() {
  fingerprint_ = 0;
  rule_count_ = 0;
  slots_.clear();
  hand_ = 0;
  index_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  charge_.ReleaseAll();
}

int64_t FixpointCache::EntryFootprintBytes() {
  // One ring slot plus one hash-map node (bucket pointer, hash, key,
  // value) -- a deliberate overestimate of the per-entry overhead so tight
  // budgets trip before the allocator is actually in trouble.
  return static_cast<int64_t>(sizeof(Slot) + 4 * sizeof(void*) +
                              sizeof(size_t) + sizeof(const Term*));
}

void FixpointCache::Attune(uint64_t fingerprint, size_t rule_count) {
  if (fingerprint_ != fingerprint) {
    // Reset releases the held bytes but keeps the governor binding.
    Reset();
    fingerprint_ = fingerprint;
  }
  if (rule_count_ < rule_count) rule_count_ = rule_count;
  if (index_.size() < rule_count_) index_.resize(rule_count_);
}

void FixpointCache::BindGovernor(const Governor* governor) {
  // Idempotent for the common case (a pooled cache re-entered by the same
  // Rewriter): releasing and re-charging live entries every call would
  // zero the accounting while the entries persist.
  if (governor == bound_governor_) return;
  charge_.ReleaseAll();
  charge_ = MemoryCharge(governor, MemoryCategory::kFixpointCache);
  bound_governor_ = governor;
}

bool FixpointCache::CheckFailed(size_t rule_index, const TermPtr& term) {
  auto& index = index_[rule_index];
  auto it = index.find(term.get());
  if (it == index.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  slots_[it->second].referenced = true;
  return true;
}

size_t FixpointCache::EvictOne() {
  // Second chance: sweep from the hand, clearing referenced bits, until an
  // unreferenced slot turns up (bounded by one full lap plus one step).
  for (;;) {
    Slot& slot = slots_[hand_];
    size_t victim = hand_;
    hand_ = (hand_ + 1) % slots_.size();
    if (slot.referenced) {
      slot.referenced = false;
      continue;
    }
    index_[slot.rule_index].erase(slot.term.get());
    slot.term = nullptr;
    ++evictions_;
    charge_.Release(EntryFootprintBytes());
    return victim;
  }
}

void FixpointCache::RecordFailed(size_t rule_index, TermPtr term) {
  // Entry bytes are charged before insertion; once the budget is gone the
  // cache stops growing (and, being sticky, the governor is already
  // degrading the pass -- this just keeps the loss local).
  if (!charge_.Add(EntryFootprintBytes()).ok()) return;
  size_t slot_index;
  if (capacity_ > 0 && slots_.size() >= capacity_) {
    slot_index = EvictOne();
  } else {
    slot_index = slots_.size();
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_index];
  slot.rule_index = static_cast<uint32_t>(rule_index);
  slot.referenced = false;
  index_[rule_index].emplace(term.get(), slot_index);
  slot.term = std::move(term);
}

RewriterOptions RewriterOptions::Defaults() {
  RewriterOptions options;
  // Truthy-set semantics (common/env.h): KOLA_NO_FIXPOINT_MEMO=0 leaves
  // memoization ON, matching how KOLA_INTERN parses. The old set-vs-unset
  // check made =0 silently disable it.
  options.memoize_fixpoint = !EnvFlagEnabled("KOLA_NO_FIXPOINT_MEMO");
  options.use_egraph = EnvFlagEnabled("KOLA_EGRAPH");
  return options;
}

std::vector<std::string> Trace::RuleIds() const {
  std::vector<std::string> ids;
  ids.reserve(steps.size());
  for (const RewriteStep& step : steps) ids.push_back(step.rule_id);
  return ids;
}

std::string Trace::ToString() const {
  std::ostringstream os;
  if (initial != nullptr) os << initial->ToString() << "\n";
  for (const RewriteStep& step : steps) {
    os << "  --[" << step.rule_id << "]--> " << step.result->ToString()
       << "\n";
  }
  return os.str();
}

bool Rewriter::ConditionsHold(const Rule& rule,
                              const Bindings& bindings) const {
  if (rule.conditions.empty()) return true;
  if (properties_ == nullptr) return false;
  for (const PropertyAtom& condition : rule.conditions) {
    auto goal = Substitute(condition.pattern, bindings);
    if (!goal.ok()) return false;
    if (!properties_->Holds(condition.property, goal.value())) return false;
  }
  return true;
}

std::optional<TermPtr> Rewriter::ApplyAtRoot(const Rule& rule,
                                             const TermPtr& term) const {
  Bindings bindings;
  if (!MatchTerm(rule.lhs, term, &bindings)) return std::nullopt;
  if (!ConditionsHold(rule, bindings)) return std::nullopt;
  auto result = Substitute(rule.rhs, bindings);
  // Rules are validated at construction (rhs variables bound by lhs), so
  // substitution cannot fail; a failure here is a library bug.
  KOLA_CHECK_OK(result.status());
  return std::move(result).value();
}

std::optional<TermPtr> Rewriter::ApplyOnceImpl(const Rule& rule,
                                               const TermPtr& term,
                                               std::vector<size_t>* path,
                                               RewriteStep* step,
                                               FixpointCache* memo,
                                               size_t rule_index) const {
  const bool memoizable =
      memo != nullptr && term->node_count() >= kFixpointMemoMinNodes;
  if (memoizable && memo->CheckFailed(rule_index, term)) {
    return std::nullopt;
  }
  if (auto rewritten = ApplyAtRoot(rule, term)) {
    if (step != nullptr) {
      step->rule_id = rule.id;
      step->path = *path;
      step->before = term;
      step->after = *rewritten;
    }
    return rewritten;
  }
  for (size_t i = 0; i < term->arity(); ++i) {
    path->push_back(i);
    if (auto rewritten =
            ApplyOnceImpl(rule, term->child(i), path, step, memo, rule_index)) {
      std::vector<TermPtr> children = term->children();
      children[i] = std::move(*rewritten);
      path->pop_back();
      return term->WithChildren(std::move(children));
    }
    path->pop_back();
  }
  // The rule fires nowhere in this subtree; a subterm's reducibility depends
  // only on its own structure (conditions consult the fixed PropertyStore),
  // so this fact stays true for the cache's lifetime.
  if (memoizable) memo->RecordFailed(rule_index, term);
  return std::nullopt;
}

std::optional<TermPtr> Rewriter::ApplyOnce(const Rule& rule,
                                           const TermPtr& term,
                                           RewriteStep* step) const {
  std::vector<size_t> path;
  auto result = ApplyOnceImpl(rule, term, &path, step, nullptr, 0);
  if (result && step != nullptr) step->result = *result;
  return result;
}

std::optional<TermPtr> Rewriter::ApplyAnyOnce(const std::vector<Rule>& rules,
                                              const TermPtr& term,
                                              RewriteStep* step) const {
  if (auto index = IndexFor(rules, RuleSetFingerprint(rules))) {
    return IndexedApplyAnyOnce(rules, term, step, nullptr, *index);
  }
  return ApplyAnyOnceMemo(rules, term, step, nullptr);
}

std::shared_ptr<const RuleIndex> Rewriter::IndexFor(
    const std::vector<Rule>& rules, uint64_t fingerprint) const {
  if (!options_.use_rule_index || RuleIndexDisabledByEnv() || rules.empty()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = index_pool_.find(fingerprint);
  if (it != index_pool_.end()) {
    // A fingerprint collision between different rule sets must not replay
    // the wrong index (same defense as FixpointCache::Attune); the rare
    // colliding set just runs linear.
    return it->second->rule_count() == rules.size() ? it->second : nullptr;
  }
  std::shared_ptr<const RuleIndex> index =
      AcquireRuleIndex(rules, fingerprint);
  // Charge-before-keep: a budget that cannot afford this Rewriter's
  // reference to the compiled tree degrades to the linear scan, exactly
  // like a FixpointCache that stops growing -- results are identical, only
  // speed changes.
  if (!index_charge_.Add(index->footprint_bytes()).ok()) return nullptr;
  index_pool_.emplace(fingerprint, index);
  return index;
}

std::optional<TermPtr> Rewriter::ApplyAnyAtRoot(const std::vector<Rule>& rules,
                                                const TermPtr& term,
                                                const RuleIndex* index,
                                                size_t* fired_rule) const {
  if (index != nullptr) {
    std::vector<uint32_t> candidates;
    index->CandidatesAt(*term, &candidates);
    for (uint32_t r : candidates) {
      if (auto rewritten = ApplyAtRoot(rules[r], term)) {
        if (fired_rule != nullptr) *fired_rule = r;
        return rewritten;
      }
    }
    return std::nullopt;
  }
  for (size_t r = 0; r < rules.size(); ++r) {
    if (auto rewritten = ApplyAtRoot(rules[r], term)) {
      if (fired_rule != nullptr) *fired_rule = r;
      return rewritten;
    }
  }
  return std::nullopt;
}

namespace {

/// Rebuilds the spine from `node` down `path` (starting at `depth`) with
/// `replacement` grafted at the end -- the same child-vector copy per level
/// that ApplyOnceImpl performs as its recursion unwinds, so indexed and
/// linear scans produce pointer-identical sharing structure.
TermPtr GraftAlongPath(const TermPtr& node, const std::vector<size_t>& path,
                       size_t depth, const TermPtr& replacement) {
  if (depth == path.size()) return replacement;
  std::vector<TermPtr> children = node->children();
  children[path[depth]] =
      GraftAlongPath(node->child(path[depth]), path, depth + 1, replacement);
  return node->WithChildren(std::move(children));
}

}  // namespace

std::vector<std::optional<TermPtr>> Rewriter::ApplyEachOnce(
    const std::vector<Rule>& rules, const TermPtr& term) const {
  std::vector<std::optional<TermPtr>> results(rules.size());
  std::shared_ptr<const RuleIndex> index =
      IndexFor(rules, RuleSetFingerprint(rules));
  if (index == nullptr) {
    for (size_t r = 0; r < rules.size(); ++r) {
      results[r] = ApplyOnce(rules[r], term, nullptr);
    }
    return results;
  }
  // One shared pre-order descent. Pre-order is exactly ApplyOnce's
  // leftmost-outermost probe order, so the first node where rule r matches
  // is the position ApplyOnce(rules[r], ...) would have fired at; every
  // later match of r is ignored via the done bitmap.
  size_t remaining = rules.size();
  std::vector<char> done(rules.size(), 0);
  std::vector<uint32_t> candidates;
  std::vector<size_t> path;
  auto visit = [&](auto&& self, const TermPtr& node) -> void {
    index->CandidatesAt(*node, &candidates);
    // `candidates` is fully consumed before recursing: CandidatesAt clears
    // and refills the shared scratch buffer at every node.
    for (uint32_t r : candidates) {
      if (done[r]) continue;
      if (auto rewritten = ApplyAtRoot(rules[r], node)) {
        results[r] = GraftAlongPath(term, path, 0, *rewritten);
        done[r] = 1;
        --remaining;
      }
    }
    for (size_t i = 0; i < node->arity() && remaining > 0; ++i) {
      path.push_back(i);
      self(self, node->child(i));
      path.pop_back();
    }
  };
  visit(visit, term);
  return results;
}

std::optional<TermPtr> Rewriter::IndexedApplyAnyOnce(
    const std::vector<Rule>& rules, const TermPtr& term, RewriteStep* step,
    FixpointCache* memo, const RuleIndex& index) const {
  // The linear scan's winner is "the smallest rule index that matches
  // ANYWHERE, fired at that rule's first pre-order position". One pre-order
  // descent recovers exactly that: at each node only candidates below the
  // current best are tested (a larger index can never win, and the best
  // rule itself already fired at an earlier position), so the best can only
  // decrease along the walk, and when it reaches rule 0 nothing can beat it
  // and the walk stops. Every node visited before rule r became best was
  // probed with r in range (r is below every earlier best), which makes the
  // node where r first matched its leftmost-outermost position -- the same
  // node the linear scan fires at.
  size_t best = rules.size();
  std::vector<size_t> best_path;
  TermPtr best_before;
  TermPtr best_after;
  std::vector<uint32_t> candidates;
  std::vector<size_t> path;
  auto visit = [&](auto&& self, const TermPtr& node) -> void {
    index.CandidatesAt(*node, &candidates);
    const bool memoizable =
        memo != nullptr && node->node_count() >= kFixpointMemoMinNodes;
    for (uint32_t r : candidates) {
      if (r >= best) break;  // candidates ascend: nothing below best left
      // A memoized failure covers the whole subtree, so in particular this
      // root position.
      if (memoizable && memo->CheckFailed(r, node)) continue;
      if (auto rewritten = ApplyAtRoot(rules[r], node)) {
        best = r;
        best_path = path;
        best_before = node;
        best_after = std::move(*rewritten);
        if (best == 0) return;
      }
    }
    for (size_t i = 0; i < node->arity(); ++i) {
      path.push_back(i);
      self(self, node->child(i));
      path.pop_back();
      if (best == 0) return;
    }
  };
  visit(visit, term);
  // Every rule below the winner (all of them, on a fruitless sweep) was
  // probed at each visited node and fired nowhere, which is exactly the
  // whole-term fact the linear scan memoizes at its root -- seed it so the
  // NEXT sweep (or a pooled re-run of the same term) skips those root
  // probes. Guarded by CheckFailed: RecordFailed assumes a fresh key.
  if (memo != nullptr && term->node_count() >= kFixpointMemoMinNodes &&
      best > 0) {
    for (size_t r = 0; r < best; ++r) {
      if (!memo->CheckFailed(r, term)) memo->RecordFailed(r, term);
    }
  }
  if (best == rules.size()) return std::nullopt;
  TermPtr result = GraftAlongPath(term, best_path, 0, best_after);
  if (step != nullptr) {
    step->rule_id = rules[best].id;
    step->path = std::move(best_path);
    step->before = std::move(best_before);
    step->after = std::move(best_after);
    step->result = result;
  }
  return result;
}

std::optional<TermPtr> Rewriter::ApplyAnyOnceMemo(
    const std::vector<Rule>& rules, const TermPtr& term, RewriteStep* step,
    FixpointCache* memo) const {
  for (size_t r = 0; r < rules.size(); ++r) {
    std::vector<size_t> path;
    auto result = ApplyOnceImpl(rules[r], term, &path, step, memo, r);
    if (result) {
      if (step != nullptr) step->result = *result;
      return result;
    }
  }
  return std::nullopt;
}

Rewriter::CacheStats Rewriter::PooledCacheStats() const {
  CacheStats stats;
  stats.caches = cache_pool_.size();
  for (const auto& [fingerprint, cache] : cache_pool_) {
    stats.entries += cache.size();
    stats.hits += cache.hits();
    stats.misses += cache.misses();
    stats.evictions += cache.evictions();
  }
  return stats;
}

StatusOr<TermPtr> Rewriter::Fixpoint(const std::vector<Rule>& rules,
                                     TermPtr term, Trace* trace,
                                     int max_steps,
                                     FixpointCache* cache) const {
  // Entry boundary: an unconditional clock probe, so a fixpoint entered
  // after a slow rule application (the periodic in-Charge sampling can
  // trail the deadline by hundreds of ms) stops before sweeping at all.
  if (options_.governor != nullptr) {
    KOLA_RETURN_IF_ERROR(options_.governor->CheckNow());
  }
  const uint64_t fingerprint = RuleSetFingerprint(rules);
  const bool small_workload =
      term != nullptr && term->node_count() < kFixpointAccelMinTermNodes;
  // Below the accelerator floor the memo bookkeeping costs more than the
  // probes it saves, and hash-consing the short-lived rewrite spines is
  // pure arena churn: run the plain sweep (identical results and traces).
  std::optional<ScopedInterning> plain_spines;
  if (small_workload && ActiveTermInterner() != nullptr) {
    plain_spines.emplace(static_cast<TermInterner*>(nullptr));
  }
  FixpointCache local;
  FixpointCache* memo = cache;
  if (memo == nullptr && options_.memoize_fixpoint && !small_workload) {
    if (options_.reuse_fixpoint_caches) {
      // One pooled cache per rule-set fingerprint, reused across Fixpoint
      // calls for the Rewriter's lifetime (Attune below keeps a hash
      // collision from replaying a different rule set's failures).
      memo = &cache_pool_[fingerprint];
    } else {
      memo = &local;
    }
  }
  if (memo != nullptr) {
    memo->Attune(fingerprint, rules.size());
    memo->set_capacity(options_.fixpoint_cache_capacity);
    memo->BindGovernor(options_.governor);
  }
  // Hoisted out of the sweep loop: one pool probe per Fixpoint call, not
  // per firing.
  const std::shared_ptr<const RuleIndex> index = IndexFor(rules, fingerprint);
  if (trace != nullptr && trace->initial == nullptr) trace->initial = term;
  const bool faults_armed = ActiveFaultInjector() != nullptr;
  for (int i = 0; i < max_steps; ++i) {
    // One governor charge per match sweep (whether or not a rule fires):
    // the full-term sweep is the unit of work here, and charging before it
    // keeps the deadline responsive even on the final, fruitless sweep.
    if (options_.governor != nullptr) {
      KOLA_RETURN_IF_ERROR(options_.governor->Charge());
    }
    if (faults_armed) {
      KOLA_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kRuleApplication));
    }
    RewriteStep step;
    auto result = index != nullptr
                      ? IndexedApplyAnyOnce(rules, term, &step, memo, *index)
                      : ApplyAnyOnceMemo(rules, term, &step, memo);
    if (!result) {
      // Exit boundary: latch a just-passed deadline now (ignoring the
      // verdict -- this fixpoint's work is complete and keeps) so the next
      // phase stops at its first probe instead of up to 512 charges later.
      if (options_.governor != nullptr) (void)options_.governor->CheckNow();
      return term;
    }
    term = std::move(*result);
    if (trace != nullptr) trace->steps.push_back(std::move(step));
  }
  return ResourceExhaustedError("rewrite fixpoint exceeded " +
                                std::to_string(max_steps) + " steps");
}

}  // namespace kola
