#include "rewrite/engine.h"

#include <functional>
#include <sstream>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/macros.h"
#include "rewrite/match.h"

namespace kola {

namespace {

uint64_t FingerprintCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

// Subtrees smaller than this are cheaper to re-match than to hash into the
// failed-set, so the memo skips them.
constexpr size_t kFixpointMemoMinNodes = 8;

}  // namespace

uint64_t RuleSetFingerprint(const std::vector<Rule>& rules) {
  uint64_t fp = rules.size();
  for (const Rule& rule : rules) {
    fp = FingerprintCombine(fp, std::hash<std::string>{}(rule.id));
    fp = FingerprintCombine(fp, rule.lhs == nullptr ? 0 : rule.lhs->hash());
    fp = FingerprintCombine(fp, rule.rhs == nullptr ? 0 : rule.rhs->hash());
    for (const PropertyAtom& atom : rule.conditions) {
      fp = FingerprintCombine(fp, std::hash<std::string>{}(atom.property));
      fp = FingerprintCombine(
          fp, atom.pattern == nullptr ? 0 : atom.pattern->hash());
    }
  }
  // Reserve 0 for "not attuned yet".
  return fp == 0 ? 1 : fp;
}

void FixpointCache::Reset() {
  fingerprint_ = 0;
  rule_count_ = 0;
  slots_.clear();
  hand_ = 0;
  index_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  charge_.ReleaseAll();
}

int64_t FixpointCache::EntryFootprintBytes() {
  // One ring slot plus one hash-map node (bucket pointer, hash, key,
  // value) -- a deliberate overestimate of the per-entry overhead so tight
  // budgets trip before the allocator is actually in trouble.
  return static_cast<int64_t>(sizeof(Slot) + 4 * sizeof(void*) +
                              sizeof(size_t) + sizeof(const Term*));
}

void FixpointCache::Attune(uint64_t fingerprint, size_t rule_count) {
  if (fingerprint_ != fingerprint) {
    // Reset releases the held bytes but keeps the governor binding.
    Reset();
    fingerprint_ = fingerprint;
  }
  if (rule_count_ < rule_count) rule_count_ = rule_count;
  if (index_.size() < rule_count_) index_.resize(rule_count_);
}

void FixpointCache::BindGovernor(const Governor* governor) {
  // Idempotent for the common case (a pooled cache re-entered by the same
  // Rewriter): releasing and re-charging live entries every call would
  // zero the accounting while the entries persist.
  if (governor == bound_governor_) return;
  charge_.ReleaseAll();
  charge_ = MemoryCharge(governor, MemoryCategory::kFixpointCache);
  bound_governor_ = governor;
}

bool FixpointCache::CheckFailed(size_t rule_index, const TermPtr& term) {
  auto& index = index_[rule_index];
  auto it = index.find(term.get());
  if (it == index.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  slots_[it->second].referenced = true;
  return true;
}

size_t FixpointCache::EvictOne() {
  // Second chance: sweep from the hand, clearing referenced bits, until an
  // unreferenced slot turns up (bounded by one full lap plus one step).
  for (;;) {
    Slot& slot = slots_[hand_];
    size_t victim = hand_;
    hand_ = (hand_ + 1) % slots_.size();
    if (slot.referenced) {
      slot.referenced = false;
      continue;
    }
    index_[slot.rule_index].erase(slot.term.get());
    slot.term = nullptr;
    ++evictions_;
    charge_.Release(EntryFootprintBytes());
    return victim;
  }
}

void FixpointCache::RecordFailed(size_t rule_index, TermPtr term) {
  // Entry bytes are charged before insertion; once the budget is gone the
  // cache stops growing (and, being sticky, the governor is already
  // degrading the pass -- this just keeps the loss local).
  if (!charge_.Add(EntryFootprintBytes()).ok()) return;
  size_t slot_index;
  if (capacity_ > 0 && slots_.size() >= capacity_) {
    slot_index = EvictOne();
  } else {
    slot_index = slots_.size();
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_index];
  slot.rule_index = static_cast<uint32_t>(rule_index);
  slot.referenced = false;
  index_[rule_index].emplace(term.get(), slot_index);
  slot.term = std::move(term);
}

RewriterOptions RewriterOptions::Defaults() {
  RewriterOptions options;
  // Truthy-set semantics (common/env.h): KOLA_NO_FIXPOINT_MEMO=0 leaves
  // memoization ON, matching how KOLA_INTERN parses. The old set-vs-unset
  // check made =0 silently disable it.
  options.memoize_fixpoint = !EnvFlagEnabled("KOLA_NO_FIXPOINT_MEMO");
  return options;
}

std::vector<std::string> Trace::RuleIds() const {
  std::vector<std::string> ids;
  ids.reserve(steps.size());
  for (const RewriteStep& step : steps) ids.push_back(step.rule_id);
  return ids;
}

std::string Trace::ToString() const {
  std::ostringstream os;
  if (initial != nullptr) os << initial->ToString() << "\n";
  for (const RewriteStep& step : steps) {
    os << "  --[" << step.rule_id << "]--> " << step.result->ToString()
       << "\n";
  }
  return os.str();
}

bool Rewriter::ConditionsHold(const Rule& rule,
                              const Bindings& bindings) const {
  if (rule.conditions.empty()) return true;
  if (properties_ == nullptr) return false;
  for (const PropertyAtom& condition : rule.conditions) {
    auto goal = Substitute(condition.pattern, bindings);
    if (!goal.ok()) return false;
    if (!properties_->Holds(condition.property, goal.value())) return false;
  }
  return true;
}

std::optional<TermPtr> Rewriter::ApplyAtRoot(const Rule& rule,
                                             const TermPtr& term) const {
  Bindings bindings;
  if (!MatchTerm(rule.lhs, term, &bindings)) return std::nullopt;
  if (!ConditionsHold(rule, bindings)) return std::nullopt;
  auto result = Substitute(rule.rhs, bindings);
  // Rules are validated at construction (rhs variables bound by lhs), so
  // substitution cannot fail; a failure here is a library bug.
  KOLA_CHECK_OK(result.status());
  return std::move(result).value();
}

std::optional<TermPtr> Rewriter::ApplyOnceImpl(const Rule& rule,
                                               const TermPtr& term,
                                               std::vector<size_t>* path,
                                               RewriteStep* step,
                                               FixpointCache* memo,
                                               size_t rule_index) const {
  const bool memoizable =
      memo != nullptr && term->node_count() >= kFixpointMemoMinNodes;
  if (memoizable && memo->CheckFailed(rule_index, term)) {
    return std::nullopt;
  }
  if (auto rewritten = ApplyAtRoot(rule, term)) {
    if (step != nullptr) {
      step->rule_id = rule.id;
      step->path = *path;
      step->before = term;
      step->after = *rewritten;
    }
    return rewritten;
  }
  for (size_t i = 0; i < term->arity(); ++i) {
    path->push_back(i);
    if (auto rewritten =
            ApplyOnceImpl(rule, term->child(i), path, step, memo, rule_index)) {
      std::vector<TermPtr> children = term->children();
      children[i] = std::move(*rewritten);
      path->pop_back();
      return term->WithChildren(std::move(children));
    }
    path->pop_back();
  }
  // The rule fires nowhere in this subtree; a subterm's reducibility depends
  // only on its own structure (conditions consult the fixed PropertyStore),
  // so this fact stays true for the cache's lifetime.
  if (memoizable) memo->RecordFailed(rule_index, term);
  return std::nullopt;
}

std::optional<TermPtr> Rewriter::ApplyOnce(const Rule& rule,
                                           const TermPtr& term,
                                           RewriteStep* step) const {
  std::vector<size_t> path;
  auto result = ApplyOnceImpl(rule, term, &path, step, nullptr, 0);
  if (result && step != nullptr) step->result = *result;
  return result;
}

std::optional<TermPtr> Rewriter::ApplyAnyOnce(const std::vector<Rule>& rules,
                                              const TermPtr& term,
                                              RewriteStep* step) const {
  return ApplyAnyOnceMemo(rules, term, step, nullptr);
}

std::optional<TermPtr> Rewriter::ApplyAnyOnceMemo(
    const std::vector<Rule>& rules, const TermPtr& term, RewriteStep* step,
    FixpointCache* memo) const {
  for (size_t r = 0; r < rules.size(); ++r) {
    std::vector<size_t> path;
    auto result = ApplyOnceImpl(rules[r], term, &path, step, memo, r);
    if (result) {
      if (step != nullptr) step->result = *result;
      return result;
    }
  }
  return std::nullopt;
}

Rewriter::CacheStats Rewriter::PooledCacheStats() const {
  CacheStats stats;
  stats.caches = cache_pool_.size();
  for (const auto& [fingerprint, cache] : cache_pool_) {
    stats.entries += cache.size();
    stats.hits += cache.hits();
    stats.misses += cache.misses();
    stats.evictions += cache.evictions();
  }
  return stats;
}

StatusOr<TermPtr> Rewriter::Fixpoint(const std::vector<Rule>& rules,
                                     TermPtr term, Trace* trace,
                                     int max_steps,
                                     FixpointCache* cache) const {
  // Entry boundary: an unconditional clock probe, so a fixpoint entered
  // after a slow rule application (the periodic in-Charge sampling can
  // trail the deadline by hundreds of ms) stops before sweeping at all.
  if (options_.governor != nullptr) {
    KOLA_RETURN_IF_ERROR(options_.governor->CheckNow());
  }
  FixpointCache local;
  FixpointCache* memo = cache;
  if (memo == nullptr && options_.memoize_fixpoint) {
    if (options_.reuse_fixpoint_caches) {
      // One pooled cache per rule-set fingerprint, reused across Fixpoint
      // calls for the Rewriter's lifetime (Attune below keeps a hash
      // collision from replaying a different rule set's failures).
      memo = &cache_pool_[RuleSetFingerprint(rules)];
    } else {
      memo = &local;
    }
  }
  if (memo != nullptr) {
    memo->Attune(RuleSetFingerprint(rules), rules.size());
    memo->set_capacity(options_.fixpoint_cache_capacity);
    memo->BindGovernor(options_.governor);
  }
  if (trace != nullptr && trace->initial == nullptr) trace->initial = term;
  const bool faults_armed = ActiveFaultInjector() != nullptr;
  for (int i = 0; i < max_steps; ++i) {
    // One governor charge per match sweep (whether or not a rule fires):
    // the full-term sweep is the unit of work here, and charging before it
    // keeps the deadline responsive even on the final, fruitless sweep.
    if (options_.governor != nullptr) {
      KOLA_RETURN_IF_ERROR(options_.governor->Charge());
    }
    if (faults_armed) {
      KOLA_RETURN_IF_ERROR(MaybeInjectFault(FaultSite::kRuleApplication));
    }
    RewriteStep step;
    auto result = ApplyAnyOnceMemo(rules, term, &step, memo);
    if (!result) {
      // Exit boundary: latch a just-passed deadline now (ignoring the
      // verdict -- this fixpoint's work is complete and keeps) so the next
      // phase stops at its first probe instead of up to 512 charges later.
      if (options_.governor != nullptr) (void)options_.governor->CheckNow();
      return term;
    }
    term = std::move(*result);
    if (trace != nullptr) trace->steps.push_back(std::move(step));
  }
  return ResourceExhaustedError("rewrite fixpoint exceeded " +
                                std::to_string(max_steps) + " steps");
}

}  // namespace kola
