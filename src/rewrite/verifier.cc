#include "rewrite/verifier.h"

#include <sstream>

#include "common/macros.h"
#include "common/random.h"
#include "eval/evaluator.h"
#include "rewrite/generate.h"
#include "rewrite/match.h"

namespace kola {

namespace {

/// Result of evaluating one side of an instantiated rule.
struct SideResult {
  Status status;
  Value value;  // meaningful only when status.ok()
};

SideResult EvalSide(const Database& db, const TermPtr& side, Sort sort,
                    const Value& argument, int64_t max_steps) {
  Evaluator evaluator(&db, EvalOptions{max_steps});
  switch (sort) {
    case Sort::kFunction: {
      auto result = evaluator.Apply(side, argument);
      if (!result.ok()) return {result.status(), Value::Null()};
      return {Status::OK(), std::move(result).value()};
    }
    case Sort::kPredicate: {
      auto result = evaluator.Holds(side, argument);
      if (!result.ok()) return {result.status(), Value::Null()};
      return {Status::OK(), Value::Bool(result.value())};
    }
    default: {
      auto result = evaluator.EvalObject(side);
      if (!result.ok()) return {result.status(), Value::Null()};
      return {Status::OK(), std::move(result).value()};
    }
  }
}

/// True when the metavariable is required injective by a rule condition.
bool RequiresInjective(const Rule& rule, const std::string& var) {
  for (const PropertyAtom& condition : rule.conditions) {
    if (condition.property == "injective" &&
        condition.pattern->is_metavar() && condition.pattern->name() == var) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string VerifyOutcome::Summary() const {
  std::ostringstream os;
  if (sound()) {
    os << "SOUND";
  } else if (unsound()) {
    os << "UNSOUND";
  } else {
    // Every trial landed in skipped/both_failed: the *generator* never
    // produced a comparable instance. Distinct from UNSOUND so callers can
    // escalate the coverage gap rather than the rule.
    os << "INDETERMINATE (generator gap: no trial produced comparable "
          "results)";
  }
  os << " (" << agreed << " agree, " << disagreed << " disagree, "
     << one_failed << " one-sided errors, " << both_failed
     << " both-error, " << skipped << " skipped / " << trials << " trials)";
  return os.str();
}

StatusOr<VerifyOutcome> VerifyRule(const Rule& rule, const Database& db,
                                   const SchemaTypes& schema,
                                   const VerifyOptions& options) {
  // Type the rule: both sides under one inferencer, then unify the side
  // types. Failure here means the catalog entry is ill-formed (the static
  // check the paper gets from LSL sort-checking).
  TypeInferencer inferencer(&schema);
  auto lhs_type = inferencer.Infer(rule.lhs);
  if (!lhs_type.ok()) {
    return lhs_type.status().WithContext("typing lhs of rule " + rule.id);
  }
  auto rhs_type = inferencer.Infer(rule.rhs);
  if (!rhs_type.ok()) {
    return rhs_type.status().WithContext("typing rhs of rule " + rule.id);
  }
  KOLA_RETURN_IF_ERROR(
      inferencer.UnifyTermTypes(lhs_type.value(), rhs_type.value())
          .WithContext("unifying side types of rule " + rule.id));

  Sort sort = rule.lhs->sort();
  const Rng rng(options.seed);
  VerifyOutcome outcome;

  for (int trial = 0; trial < options.trials; ++trial) {
    ++outcome.trials;
    // Child, not Fork: trial K's generator depends only on (seed, K), so a
    // trial reported by a sweep can be re-run in isolation and the loop can
    // fan out across workers without reordering anyone's randomness.
    Rng trial_rng = rng.Child(static_cast<uint64_t>(trial));
    TermGenerator gen(&schema, &db, &trial_rng,
                      GenOptions{options.gen_depth, 4});

    // One shared type-variable assignment per trial keeps metavariable
    // types and the argument type consistent.
    std::map<int, TypePtr> assignments;

    Bindings bindings;
    bool skip = false;
    for (const auto& [name, var_type] : inferencer.MetaVarTypes()) {
      StatusOr<TermPtr> ground = InternalError("unset");
      switch (var_type.sort) {
        case Sort::kFunction: {
          TypePtr from = gen.Concretize(inferencer.Resolve(var_type.from),
                                        &assignments, 2);
          TypePtr to = gen.Concretize(inferencer.Resolve(var_type.to),
                                      &assignments, 2);
          ground = RequiresInjective(rule, name)
                       ? gen.RandomInjectiveFn(from, to, options.gen_depth)
                       : gen.RandomFn(from, to, options.gen_depth);
          break;
        }
        case Sort::kPredicate: {
          TypePtr on = gen.Concretize(inferencer.Resolve(var_type.from),
                                      &assignments, 2);
          ground = gen.RandomPred(on, options.gen_depth);
          break;
        }
        case Sort::kObject: {
          TypePtr t = gen.Concretize(inferencer.Resolve(var_type.to),
                                     &assignments, 2);
          auto value = gen.RandomValue(t);
          if (value.ok()) ground = Lit(std::move(value).value());
          else ground = value.status();
          break;
        }
        case Sort::kBool:
          ground = BoolConst(trial_rng.Chance(0.5));
          break;
      }
      if (!ground.ok()) {
        skip = true;
        break;
      }
      KOLA_CHECK(bindings.Bind(name, std::move(ground).value()));
    }
    if (skip) {
      ++outcome.skipped;
      continue;
    }

    auto lhs_ground = Substitute(rule.lhs, bindings);
    auto rhs_ground = Substitute(rule.rhs, bindings);
    KOLA_CHECK(lhs_ground.ok() && rhs_ground.ok());

    // Argument for function/predicate rules.
    Value argument = Value::Null();
    if (sort == Sort::kFunction || sort == Sort::kPredicate) {
      TypePtr arg_type = gen.Concretize(
          inferencer.Resolve(lhs_type.value().from), &assignments, 2);
      auto value = gen.RandomValue(arg_type);
      if (!value.ok()) {
        ++outcome.skipped;
        continue;
      }
      argument = std::move(value).value();
    }

    SideResult lhs = EvalSide(db, lhs_ground.value(), sort, argument,
                              options.max_eval_steps);
    SideResult rhs = EvalSide(db, rhs_ground.value(), sort, argument,
                              options.max_eval_steps);

    if (lhs.status.ok() && rhs.status.ok()) {
      if (lhs.value == rhs.value) {
        ++outcome.agreed;
      } else {
        ++outcome.disagreed;
        if (outcome.counterexample.empty()) {
          std::ostringstream os;
          os << "rule " << rule.id << " with " << bindings.ToString();
          if (sort != Sort::kObject) os << " on " << argument.ToString();
          os << ": lhs = " << lhs.value.ToString()
             << ", rhs = " << rhs.value.ToString();
          outcome.counterexample = os.str();
        }
      }
    } else if (!lhs.status.ok() && !rhs.status.ok()) {
      ++outcome.both_failed;
    } else {
      ++outcome.one_failed;
      if (outcome.counterexample.empty()) {
        std::ostringstream os;
        os << "rule " << rule.id << " one-sided error with "
           << bindings.ToString() << ": lhs status "
           << lhs.status.ToString() << ", rhs status "
           << rhs.status.ToString();
        outcome.counterexample = os.str();
      }
    }
  }
  return outcome;
}

}  // namespace kola
