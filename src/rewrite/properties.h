#ifndef KOLA_REWRITE_PROPERTIES_H_
#define KOLA_REWRITE_PROPERTIES_H_

#include <string>
#include <vector>

#include "rewrite/match.h"
#include "term/term.h"

namespace kola {

/// A property applied to a term pattern, e.g. injective(?f o ?g).
struct PropertyAtom {
  std::string property;
  TermPtr pattern;
};

/// A Horn inference rule over properties:
///   head.property(head.pattern) <= body[0] and body[1] and ...
/// e.g.  injective(?f o ?g) <= injective(?f), injective(?g).
/// This realizes the paper's Section 4.2 mechanism: rule preconditions are
/// "expressed as attributes whose values are determined not with code, but
/// with annotations and additional rules".
struct PropertyRule {
  std::string id;
  PropertyAtom head;
  std::vector<PropertyAtom> body;
};

/// Facts (ground annotations such as injective(age)) plus inference rules,
/// queried by backward chaining with a depth bound.
class PropertyStore {
 public:
  /// Base store with the standard annotations for the car-world schema:
  /// injectivity facts for id / succ / neg / name (a key), and the paper's
  /// inference rules for composition, pairing and product of injective
  /// functions.
  static PropertyStore Default();

  /// Declares a ground fact, e.g. AddFact("injective", PrimFn("name")).
  void AddFact(const std::string& property, TermPtr term);

  /// Adds a Horn inference rule.
  void AddRule(PropertyRule rule);

  /// True when `property(term)` is derivable within `max_depth` chaining
  /// steps. Conservative: undecided queries answer false.
  bool Holds(const std::string& property, const TermPtr& term,
             int max_depth = 8) const;

  size_t fact_count() const { return facts_.size(); }
  size_t rule_count() const { return rules_.size(); }

 private:
  std::vector<PropertyAtom> facts_;
  std::vector<PropertyRule> rules_;
};

}  // namespace kola

#endif  // KOLA_REWRITE_PROPERTIES_H_
