#include "rewrite/generate.h"

#include <functional>
#include <vector>

#include "common/macros.h"

namespace kola {

namespace {

/// Finds an extent whose elements are instances of `class_name` by
/// inspecting the database (schema-independent: works for any world).
StatusOr<Value> ExtentForClass(const Database& db,
                               const std::string& class_name) {
  for (const std::string& extent_name : db.ExtentNames()) {
    auto extent = db.Extent(extent_name);
    if (!extent.ok() || extent->SetSize() == 0) continue;
    const Value& first = extent->elements()[0];
    if (!first.is_object()) continue;
    auto name = db.ClassName(first.object_class());
    if (name.ok() && name.value() == class_name) return *extent;
  }
  return NotFoundError("no extent holds instances of class " + class_name);
}

}  // namespace

TypePtr TermGenerator::RandomType(int depth) {
  // Weighted toward scalars; composite only with remaining depth.
  int64_t pick = rng_->Uniform(0, depth > 0 ? 5 : 2);
  switch (pick) {
    case 0:
      return Type::Int();
    case 1:
      return Type::Str();
    case 2:
      return Type::Bool();
    case 3:
      return Type::Pair(RandomType(depth - 1), RandomType(depth - 1));
    case 4:
      return Type::Set(RandomType(depth - 1));
    default:
      return Type::Int();
  }
}

TypePtr TermGenerator::Concretize(const TypePtr& type,
                                  std::map<int, TypePtr>* assignments,
                                  int depth) {
  switch (type->tag()) {
    case TypeTag::kVar: {
      auto it = assignments->find(type->var_id());
      if (it != assignments->end()) return it->second;
      TypePtr concrete = RandomType(depth);
      (*assignments)[type->var_id()] = concrete;
      return concrete;
    }
    case TypeTag::kPair:
      return Type::Pair(Concretize(type->first(), assignments, depth),
                        Concretize(type->second(), assignments, depth));
    case TypeTag::kSet:
      return Type::Set(Concretize(type->element(), assignments, depth));
    default:
      return type;
  }
}

StatusOr<Value> TermGenerator::RandomValue(const TypePtr& type) {
  switch (type->tag()) {
    case TypeTag::kInt:
      return Value::Int(rng_->Uniform(-20, 40));
    case TypeTag::kString:
      return Value::Str(rng_->Identifier(1 + rng_->Index(4)));
    case TypeTag::kBool:
      return Value::Bool(rng_->Chance(0.5));
    case TypeTag::kClass: {
      if (db_ == nullptr) {
        return FailedPreconditionError(
            "class-typed value requested without a database");
      }
      KOLA_ASSIGN_OR_RETURN(Value extent,
                            ExtentForClass(*db_, type->class_name()));
      return extent.elements()[rng_->Index(extent.SetSize())];
    }
    case TypeTag::kPair: {
      KOLA_ASSIGN_OR_RETURN(Value a, RandomValue(type->first()));
      KOLA_ASSIGN_OR_RETURN(Value b, RandomValue(type->second()));
      return Value::MakePair(std::move(a), std::move(b));
    }
    case TypeTag::kSet: {
      std::vector<Value> elements;
      int64_t n = rng_->Uniform(0, options_.max_set_size);
      for (int64_t i = 0; i < n; ++i) {
        KOLA_ASSIGN_OR_RETURN(Value e, RandomValue(type->element()));
        elements.push_back(std::move(e));
      }
      return Value::MakeSet(std::move(elements));
    }
    case TypeTag::kVar:
      return FailedPreconditionError("cannot generate value of unresolved "
                                     "type variable");
  }
  return InternalError("unhandled type tag");
}

StatusOr<TermPtr> TermGenerator::RandomFn(const TypePtr& from,
                                          const TypePtr& to, int depth) {
  // Collect all constructors valid at this signature, then pick uniformly.
  std::vector<std::function<StatusOr<TermPtr>()>> options;

  // Kf(constant) is always available and serves as the depth-0 fallback.
  auto constant = [this, to]() -> StatusOr<TermPtr> {
    KOLA_ASSIGN_OR_RETURN(Value v, RandomValue(to));
    return ConstFn(Lit(std::move(v)));
  };

  if (Type::Equal(from, to)) {
    options.push_back([]() -> StatusOr<TermPtr> { return Id(); });
  }
  for (const std::string& name : schema_->FunctionsWithType(from, to)) {
    options.push_back(
        [name]() -> StatusOr<TermPtr> { return PrimFn(name); });
  }
  if (from->tag() == TypeTag::kPair) {
    if (Type::Equal(from->first(), to)) {
      options.push_back([]() -> StatusOr<TermPtr> { return Pi1(); });
    }
    if (Type::Equal(from->second(), to)) {
      options.push_back([]() -> StatusOr<TermPtr> { return Pi2(); });
    }
  }
  if (depth > 0) {
    options.push_back(constant);
    if (to->tag() == TypeTag::kPair) {
      options.push_back([this, from, to, depth]() -> StatusOr<TermPtr> {
        KOLA_ASSIGN_OR_RETURN(TermPtr f,
                              RandomFn(from, to->first(), depth - 1));
        KOLA_ASSIGN_OR_RETURN(TermPtr g,
                              RandomFn(from, to->second(), depth - 1));
        return PairFn(std::move(f), std::move(g));
      });
    }
    if (from->tag() == TypeTag::kPair && to->tag() == TypeTag::kPair) {
      options.push_back([this, from, to, depth]() -> StatusOr<TermPtr> {
        KOLA_ASSIGN_OR_RETURN(
            TermPtr f, RandomFn(from->first(), to->first(), depth - 1));
        KOLA_ASSIGN_OR_RETURN(
            TermPtr g, RandomFn(from->second(), to->second(), depth - 1));
        return Product(std::move(f), std::move(g));
      });
    }
    options.push_back([this, from, to, depth]() -> StatusOr<TermPtr> {
      TypePtr mid = RandomType(depth - 1);
      KOLA_ASSIGN_OR_RETURN(TermPtr f, RandomFn(mid, to, depth - 1));
      KOLA_ASSIGN_OR_RETURN(TermPtr g, RandomFn(from, mid, depth - 1));
      return Compose(std::move(f), std::move(g));
    });
    options.push_back([this, from, to, depth]() -> StatusOr<TermPtr> {
      KOLA_ASSIGN_OR_RETURN(TermPtr p, RandomPred(from, depth - 1));
      KOLA_ASSIGN_OR_RETURN(TermPtr f, RandomFn(from, to, depth - 1));
      KOLA_ASSIGN_OR_RETURN(TermPtr g, RandomFn(from, to, depth - 1));
      return Cond(std::move(p), std::move(f), std::move(g));
    });
    options.push_back([this, from, to, depth]() -> StatusOr<TermPtr> {
      TypePtr c = RandomType(depth - 1);
      KOLA_ASSIGN_OR_RETURN(TermPtr f,
                            RandomFn(Type::Pair(c, from), to, depth - 1));
      KOLA_ASSIGN_OR_RETURN(Value v, RandomValue(c));
      return CurryFn(std::move(f), Lit(std::move(v)));
    });
    if (from->tag() == TypeTag::kSet && to->tag() == TypeTag::kSet) {
      options.push_back([this, from, to, depth]() -> StatusOr<TermPtr> {
        KOLA_ASSIGN_OR_RETURN(TermPtr p,
                              RandomPred(from->element(), depth - 1));
        KOLA_ASSIGN_OR_RETURN(
            TermPtr f,
            RandomFn(from->element(), to->element(), depth - 1));
        return Iterate(std::move(p), std::move(f));
      });
      if (from->element()->tag() == TypeTag::kSet &&
          Type::Equal(from->element(), to)) {
        options.push_back([]() -> StatusOr<TermPtr> { return Flat(); });
      }
    }
  }

  if (options.empty()) return constant();
  // A failed sub-generation falls back to a constant of the target type.
  auto result = options[rng_->Index(options.size())]();
  if (result.ok()) return result;
  return constant();
}

StatusOr<TermPtr> TermGenerator::RandomPred(const TypePtr& on, int depth) {
  std::vector<std::function<StatusOr<TermPtr>()>> options;

  auto constant = [this]() -> StatusOr<TermPtr> {
    return ConstPred(BoolConst(rng_->Chance(0.5)));
  };

  if (on->tag() == TypeTag::kPair) {
    const TypePtr& a = on->first();
    const TypePtr& b = on->second();
    if (Type::Equal(a, b)) {
      options.push_back([]() -> StatusOr<TermPtr> { return EqP(); });
      options.push_back(
          []() -> StatusOr<TermPtr> { return PrimPred("neq"); });
    }
    if (a->tag() == TypeTag::kInt && b->tag() == TypeTag::kInt) {
      options.push_back([this]() -> StatusOr<TermPtr> {
        const char* names[] = {"lt", "leq", "gt", "geq"};
        return PrimPred(names[rng_->Index(4)]);
      });
    }
    if (b->tag() == TypeTag::kSet && Type::Equal(a, b->element())) {
      options.push_back([]() -> StatusOr<TermPtr> { return InP(); });
    }
    if (depth > 0) {
      options.push_back([this, a, b, depth]() -> StatusOr<TermPtr> {
        KOLA_ASSIGN_OR_RETURN(TermPtr p,
                              RandomPred(Type::Pair(b, a), depth - 1));
        return InvP(std::move(p));
      });
    }
  }
  if (depth > 0) {
    options.push_back(constant);
    options.push_back([this, on, depth]() -> StatusOr<TermPtr> {
      KOLA_ASSIGN_OR_RETURN(TermPtr p, RandomPred(on, depth - 1));
      KOLA_ASSIGN_OR_RETURN(TermPtr q, RandomPred(on, depth - 1));
      return rng_->Chance(0.5) ? AndP(std::move(p), std::move(q))
                               : OrP(std::move(p), std::move(q));
    });
    options.push_back([this, on, depth]() -> StatusOr<TermPtr> {
      KOLA_ASSIGN_OR_RETURN(TermPtr p, RandomPred(on, depth - 1));
      return NotP(std::move(p));
    });
    options.push_back([this, on, depth]() -> StatusOr<TermPtr> {
      TypePtr mid = RandomType(depth - 1);
      KOLA_ASSIGN_OR_RETURN(TermPtr p, RandomPred(mid, depth - 1));
      KOLA_ASSIGN_OR_RETURN(TermPtr f, RandomFn(on, mid, depth - 1));
      return Oplus(std::move(p), std::move(f));
    });
    options.push_back([this, on, depth]() -> StatusOr<TermPtr> {
      TypePtr c = RandomType(depth - 1);
      KOLA_ASSIGN_OR_RETURN(TermPtr p,
                            RandomPred(Type::Pair(c, on), depth - 1));
      KOLA_ASSIGN_OR_RETURN(Value v, RandomValue(c));
      return CurryPred(std::move(p), Lit(std::move(v)));
    });
  }

  if (options.empty()) return constant();
  auto result = options[rng_->Index(options.size())]();
  if (result.ok()) return result;
  return constant();
}

StatusOr<TermPtr> TermGenerator::RandomInjectiveFn(const TypePtr& from,
                                                   const TypePtr& to,
                                                   int depth) {
  bool same = Type::Equal(from, to);
  bool ints = from->tag() == TypeTag::kInt && to->tag() == TypeTag::kInt;
  if (!same && !ints) {
    return NotFoundError("no injective generator for " + from->ToString() +
                         " -> " + to->ToString());
  }
  if (!ints || depth <= 0) return Id();
  switch (rng_->Index(4)) {
    case 0:
      return Id();
    case 1:
      return PrimFn("succ");
    case 2:
      return PrimFn("neg");
    default: {
      KOLA_ASSIGN_OR_RETURN(TermPtr f,
                            RandomInjectiveFn(from, to, depth - 1));
      KOLA_ASSIGN_OR_RETURN(TermPtr g,
                            RandomInjectiveFn(from, to, depth - 1));
      return Compose(std::move(f), std::move(g));
    }
  }
}

}  // namespace kola
