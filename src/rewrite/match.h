#ifndef KOLA_REWRITE_MATCH_H_
#define KOLA_REWRITE_MATCH_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "term/term.h"

namespace kola {

/// A set of metavariable bindings produced by matching a pattern against a
/// ground (or partially ground) term. Non-linear patterns (a metavariable
/// occurring twice) bind once and require structural equality on reuse.
class Bindings {
 public:
  /// Binds `name` to `term`. Returns false when `name` is already bound to
  /// a structurally different term (match failure), true otherwise.
  /// `newly_bound` (optional) receives whether this call created the
  /// binding (as opposed to re-confirming an existing one) -- the hook
  /// MatchTerm's undo trail is built on.
  bool Bind(const std::string& name, TermPtr term,
            bool* newly_bound = nullptr);

  /// Removes the binding for `name` if present (undo support; a no-op for
  /// unbound names).
  void Erase(const std::string& name);

  /// Returns nullptr when unbound.
  const TermPtr* Lookup(const std::string& name) const;

  size_t size() const { return bindings_.size(); }
  const std::unordered_map<std::string, TermPtr>& map() const {
    return bindings_;
  }

  /// The bindings sorted by metavariable name -- the deterministic view;
  /// use this (never map()) whenever iteration order is observable.
  std::vector<std::pair<std::string, TermPtr>> Sorted() const;

  /// Renders name-sorted, so diagnostics are byte-stable across runs and
  /// platforms regardless of the underlying container's iteration order.
  std::string ToString() const;

 private:
  std::unordered_map<std::string, TermPtr> bindings_;
};

/// One-way first-order matching: succeeds iff substituting the resulting
/// bindings into `pattern` yields `term`. Metavariables match any subterm of
/// a compatible sort. `bindings` may carry pre-existing bindings (used for
/// conditional rewriting): a pre-bound metavariable only matches a
/// structurally equal subterm. On failure `bindings` is restored to exactly
/// its entry state (bindings added before the failing subpattern are
/// undone), so a caller can probe several patterns against one seeded
/// binding set without a failed probe poisoning the next.
bool MatchTerm(const TermPtr& pattern, const TermPtr& term,
               Bindings* bindings);

/// Replaces every metavariable in `pattern` by its binding. Fails with
/// FAILED_PRECONDITION if any metavariable is unbound (a rule whose rhs
/// mentions variables absent from the lhs is malformed).
StatusOr<TermPtr> Substitute(const TermPtr& pattern, const Bindings& bindings);

}  // namespace kola

#endif  // KOLA_REWRITE_MATCH_H_
