#ifndef KOLA_REWRITE_GENERATE_H_
#define KOLA_REWRITE_GENERATE_H_

#include <map>

#include "common/random.h"
#include "common/statusor.h"
#include "rewrite/types.h"
#include "term/term.h"
#include "values/database.h"

namespace kola {

/// Tunables for randomized term/value generation.
struct GenOptions {
  int max_depth = 3;     // recursion depth of generated combinator trees
  int max_set_size = 4;  // elements per generated set value
};

/// Generates random well-typed ground KOLA terms and runtime values. Used
/// by the rule verifier to instantiate a rule's metavariables at the types
/// inferred for them, so that both rule sides evaluate without type errors
/// and disagreement means genuine unsoundness.
class TermGenerator {
 public:
  /// `db` may be nullptr when no class-typed values are needed.
  TermGenerator(const SchemaTypes* schema, const Database* db, Rng* rng,
                GenOptions options = GenOptions())
      : schema_(schema), db_(db), rng_(rng), options_(options) {}

  /// A random concrete (variable-free, class-free) type.
  TypePtr RandomType(int depth);

  /// Replaces every type variable in `type` with a random concrete type,
  /// consistently across calls sharing the same `assignments` map.
  TypePtr Concretize(const TypePtr& type, std::map<int, TypePtr>* assignments,
                     int depth);

  /// A random runtime value of the given concrete type. Class types draw
  /// from the database's extent for that class.
  StatusOr<Value> RandomValue(const TypePtr& type);

  /// A random ground function term of type `from -> to` (concrete types).
  StatusOr<TermPtr> RandomFn(const TypePtr& from, const TypePtr& to,
                             int depth);

  /// A random ground predicate term over `on`.
  StatusOr<TermPtr> RandomPred(const TypePtr& on, int depth);

  /// A random *injective* function of type `from -> to`. Supports identity
  /// (from == to) and int -> int chains of succ/neg/dbl; NOT_FOUND when no
  /// injective menu exists at this type.
  StatusOr<TermPtr> RandomInjectiveFn(const TypePtr& from, const TypePtr& to,
                                      int depth);

 private:
  const SchemaTypes* schema_;
  const Database* db_;
  Rng* rng_;
  GenOptions options_;
};

}  // namespace kola

#endif  // KOLA_REWRITE_GENERATE_H_
