#ifndef KOLA_REWRITE_RULE_INDEX_H_
#define KOLA_REWRITE_RULE_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rewrite/rule.h"
#include "term/term.h"

namespace kola {

/// A discrimination-tree index over one rule set: top symbol first, then a
/// per-child symbol/metavar branch, compiled once and consulted per term
/// node. `CandidatesAt` maps a node to the few rules whose lhs could match
/// at that node -- an exact superset of what MatchTerm accepts, enumerated
/// in ascending rule order so an indexed scan fires the same rule, at the
/// same position, as the O(rules x nodes) linear scan it replaces.
///
/// Shape: rules bucket by the lhs root's discriminator (kind + name for
/// named leaves + value for bool constants); inside a bucket each entry
/// carries one discriminator per lhs-root child, with metavariable children
/// as wildcards. Rules whose whole lhs is a metavariable live on a side
/// list and are candidates everywhere; rules rooted at a pair pattern are
/// additionally candidates at pair-valued literal nodes (the parser folds
/// literal pairs into single literal leaves, and MatchTerm decomposes them
/// back).
///
/// Determinism: lookups only ever FILTER the linear probe order -- every
/// candidate list is produced by an ascending merge of the bucket, the
/// wildcard list and (for pair literals) the pair list -- so rewrite
/// results and traces are byte-identical with the index on or off. A rule
/// the index drops is one whose lhs root provably cannot match the node,
/// which the linear scan would also have rejected (in O(1) inside
/// MatchTerm rather than before calling it).
///
/// Immutable after Build and safe to share across threads; the optimizer's
/// batch workers all consult one compiled copy per rule-set fingerprint
/// (see AcquireRuleIndex).
class RuleIndex {
 public:
  /// Compiles the index. `fingerprint` is RuleSetFingerprint(rules),
  /// passed in so callers that already computed it do not pay twice.
  static std::shared_ptr<const RuleIndex> Build(const std::vector<Rule>& rules,
                                                uint64_t fingerprint);

  uint64_t fingerprint() const { return fingerprint_; }
  size_t rule_count() const { return rule_count_; }

  /// Estimated heap bytes held by the compiled tree; the unit of
  /// MemoryCategory::kRuleIndex charges.
  int64_t footprint_bytes() const { return footprint_bytes_; }

  /// Clears `out` and fills it with every rule index whose lhs could match
  /// at the root of `term`, in ascending rule order. Never omits a rule
  /// that MatchTerm would accept; may include rules that still fail the
  /// full match or their conditions.
  void CandidatesAt(const Term& term, std::vector<uint32_t>* out) const;

 private:
  RuleIndex() = default;

  /// One per-child lhs discriminator.
  struct ChildKey {
    uint64_t sym = 0;        // discriminator; unused when wildcard
    bool wildcard = false;   // metavariable child: matches any subterm
    bool pair_pattern = false;  // [x,y] child: also matches pair literals
  };

  /// One rule in a top-symbol bucket.
  struct Entry {
    uint32_t rule = 0;
    uint32_t arity = 0;
    std::vector<ChildKey> children;
  };

  struct Bucket {
    std::vector<Entry> entries;  // ascending rule order
  };

  bool EntryCompatible(const Entry& entry, const Term& term) const;

  uint64_t fingerprint_ = 0;
  size_t rule_count_ = 0;
  int64_t footprint_bytes_ = 0;
  std::unordered_map<uint64_t, Bucket> buckets_;
  /// Rules whose lhs is a bare metavariable: candidates at every node.
  std::vector<uint32_t> wildcard_roots_;
  /// Rules whose lhs root is a pair pattern: also candidates at
  /// pair-valued literal nodes (child keys do not apply there).
  std::vector<uint32_t> pair_roots_;
};

/// Aggregate stats of the process-wide compiled-index cache (kolash
/// :stats).
struct RuleIndexCacheStats {
  size_t indexes = 0;   // distinct fingerprints compiled
  size_t rules = 0;     // rules across all compiled indexes
  int64_t bytes = 0;    // summed footprint_bytes
  uint64_t hits = 0;    // acquisitions served from the cache
  uint64_t misses = 0;  // acquisitions that compiled
};

/// Returns the process-wide compiled index for this rule set, building and
/// caching it on first use. Keyed by `fingerprint` (already computed by
/// the caller); a fingerprint collision with a different rule count is
/// detected and served an uncached fresh build. Thread-safe; OptimizeAll
/// workers all receive the same immutable compiled copy.
std::shared_ptr<const RuleIndex> AcquireRuleIndex(
    const std::vector<Rule>& rules, uint64_t fingerprint);

RuleIndexCacheStats GetRuleIndexCacheStats();

/// True when KOLA_NO_RULE_INDEX is set truthy (latched on first read):
/// the process-wide kill switch that forces every Rewriter back to the
/// linear scan regardless of RewriterOptions::use_rule_index, so the CI
/// soundness sweep can diff indexed-vs-linear reports byte-for-byte.
bool RuleIndexDisabledByEnv();

}  // namespace kola

#endif  // KOLA_REWRITE_RULE_INDEX_H_
