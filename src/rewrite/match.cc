#include "rewrite/match.h"

#include <sstream>

#include "common/macros.h"

namespace kola {

bool Bindings::Bind(const std::string& name, TermPtr term) {
  auto it = bindings_.find(name);
  if (it != bindings_.end()) return Term::Equal(it->second, term);
  bindings_.emplace(name, std::move(term));
  return true;
}

const TermPtr* Bindings::Lookup(const std::string& name) const {
  auto it = bindings_.find(name);
  return it == bindings_.end() ? nullptr : &it->second;
}

std::string Bindings::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, term] : bindings_) {
    if (!first) os << ", ";
    first = false;
    os << '?' << name << " -> " << term->ToString();
  }
  os << '}';
  return os.str();
}

bool MatchTerm(const TermPtr& pattern, const TermPtr& term,
               Bindings* bindings) {
  KOLA_CHECK(pattern != nullptr && term != nullptr && bindings != nullptr);
  if (pattern->is_metavar()) {
    if (!SortMatches(pattern->sort(), term->sort())) return false;
    return bindings->Bind(pattern->name(), term);
  }
  // A [x, y] pattern decomposes a pair-valued literal (the parser folds
  // literal pairs into single literal nodes).
  if (pattern->kind() == TermKind::kPairObj &&
      term->kind() == TermKind::kLiteral && term->literal().is_pair()) {
    return MatchTerm(pattern->child(0), Lit(term->literal().first()),
                     bindings) &&
           MatchTerm(pattern->child(1), Lit(term->literal().second()),
                     bindings);
  }
  if (pattern->kind() != term->kind()) return false;
  switch (pattern->kind()) {
    case TermKind::kPrimFn:
    case TermKind::kPrimPred:
    case TermKind::kCollection:
      return pattern->name() == term->name();
    case TermKind::kLiteral:
      return Value::Compare(pattern->literal(), term->literal()) == 0;
    case TermKind::kBoolConst:
      return pattern->bool_const() == term->bool_const();
    default:
      break;
  }
  KOLA_CHECK(pattern->arity() == term->arity());
  for (size_t i = 0; i < pattern->arity(); ++i) {
    if (!MatchTerm(pattern->child(i), term->child(i), bindings)) return false;
  }
  return true;
}

StatusOr<TermPtr> Substitute(const TermPtr& pattern,
                             const Bindings& bindings) {
  KOLA_CHECK(pattern != nullptr);
  if (pattern->is_metavar()) {
    const TermPtr* bound = bindings.Lookup(pattern->name());
    if (bound == nullptr) {
      return FailedPreconditionError("unbound metavariable ?" +
                                     pattern->name());
    }
    return *bound;
  }
  if (!pattern->has_metavars()) return pattern;
  std::vector<TermPtr> children;
  children.reserve(pattern->arity());
  for (const TermPtr& child : pattern->children()) {
    KOLA_ASSIGN_OR_RETURN(TermPtr replaced, Substitute(child, bindings));
    children.push_back(std::move(replaced));
  }
  return Term::Make(pattern->kind(), std::move(children), pattern->name(),
                    pattern->literal(), pattern->bool_const(),
                    pattern->sort());
}

}  // namespace kola
