#include "rewrite/match.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"

namespace kola {

bool Bindings::Bind(const std::string& name, TermPtr term,
                    bool* newly_bound) {
  auto it = bindings_.find(name);
  if (it != bindings_.end()) {
    if (newly_bound != nullptr) *newly_bound = false;
    return Term::Equal(it->second, term);
  }
  bindings_.emplace(name, std::move(term));
  if (newly_bound != nullptr) *newly_bound = true;
  return true;
}

void Bindings::Erase(const std::string& name) { bindings_.erase(name); }

const TermPtr* Bindings::Lookup(const std::string& name) const {
  auto it = bindings_.find(name);
  return it == bindings_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, TermPtr>> Bindings::Sorted() const {
  std::vector<std::pair<std::string, TermPtr>> sorted(bindings_.begin(),
                                                      bindings_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return sorted;
}

std::string Bindings::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, term] : Sorted()) {
    if (!first) os << ", ";
    first = false;
    os << '?' << name << " -> " << term->ToString();
  }
  os << '}';
  return os.str();
}

namespace {

/// Names bound by the current MatchTerm call, in binding order, so a
/// failure anywhere in the pattern can unwind exactly the bindings this
/// call introduced (pre-seeded ones are left alone).
using BindTrail = std::vector<const std::string*>;

bool BindTracked(const TermPtr& pattern, TermPtr term, Bindings* bindings,
                 BindTrail* trail) {
  bool newly_bound = false;
  if (!bindings->Bind(pattern->name(), std::move(term), &newly_bound)) {
    return false;
  }
  // The name string outlives the trail: it lives in the pattern term, which
  // the caller holds for the whole match.
  if (newly_bound) trail->push_back(&pattern->name());
  return true;
}

/// Matches `pattern` against the components of a pair-valued literal (the
/// parser folds literal pairs into single literal nodes) without
/// materializing a Lit node per component: only a metavariable binding
/// allocates, and that allocation is the binding itself.
bool MatchLiteralValue(const TermPtr& pattern, const Value& value,
                       Bindings* bindings, BindTrail* trail) {
  if (pattern->is_metavar()) {
    Sort actual = value.is_bool() ? Sort::kBool : Sort::kObject;
    if (!SortMatches(pattern->sort(), actual)) return false;
    return BindTracked(pattern, Lit(value), bindings, trail);
  }
  if (pattern->kind() == TermKind::kPairObj && value.is_pair()) {
    return MatchLiteralValue(pattern->child(0), value.first(), bindings,
                             trail) &&
           MatchLiteralValue(pattern->child(1), value.second(), bindings,
                             trail);
  }
  if (pattern->kind() == TermKind::kLiteral) {
    return Value::Compare(pattern->literal(), value) == 0;
  }
  // No other pattern shape can denote a literal value.
  return false;
}

bool MatchImpl(const TermPtr& pattern, const TermPtr& term,
               Bindings* bindings, BindTrail* trail) {
  if (pattern->is_metavar()) {
    if (!SortMatches(pattern->sort(), term->sort())) return false;
    return BindTracked(pattern, term, bindings, trail);
  }
  // A [x, y] pattern decomposes a pair-valued literal.
  if (pattern->kind() == TermKind::kPairObj &&
      term->kind() == TermKind::kLiteral && term->literal().is_pair()) {
    return MatchLiteralValue(pattern, term->literal(), bindings, trail);
  }
  if (pattern->kind() != term->kind()) return false;
  switch (pattern->kind()) {
    case TermKind::kPrimFn:
    case TermKind::kPrimPred:
    case TermKind::kCollection:
      return pattern->name() == term->name();
    case TermKind::kLiteral:
      return Value::Compare(pattern->literal(), term->literal()) == 0;
    case TermKind::kBoolConst:
      return pattern->bool_const() == term->bool_const();
    default:
      break;
  }
  // Same-kind nodes normally agree on arity (Term::Make enforces the
  // signature table), but a malformed term -- e.g. deserialized or built by
  // a future unchecked path -- must yield a clean mismatch, not an abort.
  if (pattern->arity() != term->arity()) return false;
  for (size_t i = 0; i < pattern->arity(); ++i) {
    if (!MatchImpl(pattern->child(i), term->child(i), bindings, trail)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool MatchTerm(const TermPtr& pattern, const TermPtr& term,
               Bindings* bindings) {
  KOLA_CHECK(pattern != nullptr && term != nullptr && bindings != nullptr);
  BindTrail trail;
  if (MatchImpl(pattern, term, bindings, &trail)) return true;
  // A failed probe leaves no trace: a non-linear pattern that binds ?f
  // early and fails late must not poison the caller's next probe against
  // the same seeded bindings.
  for (const std::string* name : trail) bindings->Erase(*name);
  return false;
}

StatusOr<TermPtr> Substitute(const TermPtr& pattern,
                             const Bindings& bindings) {
  KOLA_CHECK(pattern != nullptr);
  if (pattern->is_metavar()) {
    const TermPtr* bound = bindings.Lookup(pattern->name());
    if (bound == nullptr) {
      return FailedPreconditionError("unbound metavariable ?" +
                                     pattern->name());
    }
    return *bound;
  }
  if (!pattern->has_metavars()) return pattern;
  std::vector<TermPtr> children;
  children.reserve(pattern->arity());
  for (const TermPtr& child : pattern->children()) {
    KOLA_ASSIGN_OR_RETURN(TermPtr replaced, Substitute(child, bindings));
    children.push_back(std::move(replaced));
  }
  return Term::Make(pattern->kind(), std::move(children), pattern->name(),
                    pattern->literal(), pattern->bool_const(),
                    pattern->sort());
}

}  // namespace kola
