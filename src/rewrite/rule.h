#ifndef KOLA_REWRITE_RULE_H_
#define KOLA_REWRITE_RULE_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "rewrite/properties.h"
#include "term/term.h"

namespace kola {

/// A declarative rewrite rule: lhs => rhs, optionally guarded by property
/// conditions on the matched metavariables. Rules contain no code -- the
/// paper's central requirement -- so both sides are plain KOLA patterns and
/// conditions are property atoms resolved through a PropertyStore.
struct Rule {
  /// Stable identifier. Paper rules keep their figure numbering ("1".."24");
  /// reversed rules append "~" (the paper writes i^-1); extension rules are
  /// namespaced ("norm.compose-assoc", "ext....").
  std::string id;
  std::string description;
  TermPtr lhs;
  TermPtr rhs;
  /// All conditions must hold (against a PropertyStore) for the rule to
  /// fire, e.g. injective(?f).
  std::vector<PropertyAtom> conditions;

  std::string ToString() const;
};

/// Builds a rule from concrete syntax, validating that
///  * both sides parse at the given sort,
///  * every metavariable of the rhs and of every condition is bound by the
///    lhs (no invented variables).
StatusOr<Rule> MakeRule(const std::string& id, const std::string& description,
                        const std::string& lhs_text,
                        const std::string& rhs_text, Sort sort);

/// As MakeRule, plus conditions given as (property, pattern-text) pairs.
StatusOr<Rule> MakeConditionalRule(
    const std::string& id, const std::string& description,
    const std::string& lhs_text, const std::string& rhs_text, Sort sort,
    const std::vector<std::pair<std::string, std::string>>& conditions);

/// The right-to-left reading of `rule` (valid because rules are equations).
/// The reversed rule must itself be well-formed (its rhs variables bound by
/// its lhs); returns an error otherwise.
StatusOr<Rule> ReverseRule(const Rule& rule);

/// The pointwise (apply-level) reading of a function-sorted rule: each
/// side's top-level composition chain f1 o f2 o ... o fn becomes
/// f1 ! (f2 ! (... (fn ! ?xx))) for a fresh object variable ?xx. Sound
/// because composition is defined pointwise. The rewrite engine uses these
/// variants to fire a rule in the middle of an apply-nested query (the form
/// produced by unfolding `(f o g) ! x => f ! (g ! x)`), which sidesteps
/// matching modulo associativity of `o`. Errors if `rule` is not
/// function-sorted.
StatusOr<Rule> ApplyLevelVariant(const Rule& rule);

}  // namespace kola

#endif  // KOLA_REWRITE_RULE_H_
