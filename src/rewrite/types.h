#ifndef KOLA_REWRITE_TYPES_H_
#define KOLA_REWRITE_TYPES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "term/term.h"

namespace kola {

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// Structural types for KOLA values. Used by the rule verifier to infer the
/// shapes a rewrite rule quantifies over, so that randomized instantiation
/// produces well-typed (and therefore evaluable) instances. Not part of the
/// optimizer's hot path: rules themselves are untyped term rewrites.
enum class TypeTag {
  kInt,
  kString,
  kBool,
  kClass,  // a schema class, e.g. Person
  kPair,
  kSet,
  kVar,  // inference variable
};

class Type {
 public:
  static TypePtr Int();
  static TypePtr Str();
  static TypePtr Bool();
  static TypePtr Class(const std::string& name);
  static TypePtr Pair(TypePtr first, TypePtr second);
  static TypePtr Set(TypePtr element);
  static TypePtr Var(int id);

  TypeTag tag() const { return tag_; }
  const std::string& class_name() const { return name_; }
  int var_id() const { return var_id_; }
  const TypePtr& first() const { return children_[0]; }
  const TypePtr& second() const { return children_[1]; }
  const TypePtr& element() const { return children_[0]; }

  bool is_var() const { return tag_ == TypeTag::kVar; }

  static bool Equal(const TypePtr& a, const TypePtr& b);

  /// e.g. "set<pair<int, Person>>", "'a".
  std::string ToString() const;

 private:
  Type() = default;
  TypeTag tag_ = TypeTag::kInt;
  std::string name_;
  int var_id_ = -1;
  std::vector<TypePtr> children_;
};

/// A substitution from inference variables to types, built up by Unify.
class TypeSubst {
 public:
  /// Resolves `type` under the substitution (deep).
  TypePtr Apply(const TypePtr& type) const;

  /// Binds a variable (no occurs check here; Unify performs it).
  void Bind(int var_id, TypePtr type);

  bool IsBound(int var_id) const { return bindings_.count(var_id) > 0; }

 private:
  std::map<int, TypePtr> bindings_;
};

/// Unifies two types under `subst`, extending it. TypeError on clash or
/// occurs-check failure.
Status Unify(const TypePtr& a, const TypePtr& b, TypeSubst* subst);

/// The inferred "kind" of a KOLA term: functions have an argument and a
/// result type; predicates have an argument type; objects have a type.
struct TermType {
  Sort sort;
  TypePtr from;  // functions, predicates (argument type)
  TypePtr to;    // functions (result), objects (the type itself)
};

/// Typing environment for schema primitives and collections.
class SchemaTypes {
 public:
  /// Returns the environment for the car-world schema (Person / Address /
  /// Vehicle) plus the arithmetic helper primitives (succ, dbl, neg).
  static SchemaTypes CarWorld();

  /// The environment for the company-world schema (Dept / Emp / Proj).
  static SchemaTypes CompanyWorld();

  void AddFunction(const std::string& name, TypePtr from, TypePtr to);
  void AddCollection(const std::string& name, TypePtr element);

  /// Returns nullptr when unknown.
  const std::pair<TypePtr, TypePtr>* FunctionType(
      const std::string& name) const;
  const TypePtr* CollectionElement(const std::string& name) const;

  /// All schema functions whose signature is (from -> to); used by the
  /// random generator.
  std::vector<std::string> FunctionsWithType(const TypePtr& from,
                                             const TypePtr& to) const;

 private:
  std::map<std::string, std::pair<TypePtr, TypePtr>> functions_;
  std::map<std::string, TypePtr> collections_;
};

/// Infers structural types for a KOLA term (which may contain sorted
/// metavariables). Metavariables get fresh type variables on first use and
/// are unified on reuse, so inference over a rule's two sides under one
/// inferencer yields a consistent typing of the rule's metavariables.
class TypeInferencer {
 public:
  explicit TypeInferencer(const SchemaTypes* schema) : schema_(schema) {}

  /// Infers the term's type. For rule checking, call on both sides and then
  /// unify the results via UnifyTermTypes.
  StatusOr<TermType> Infer(const TermPtr& term);

  /// Unifies two TermTypes (same sort required).
  Status UnifyTermTypes(const TermType& a, const TermType& b);

  /// Resolves a type under the current substitution.
  TypePtr Resolve(const TypePtr& type) const { return subst_.Apply(type); }

  /// The (resolved) types of the metavariables seen so far.
  std::map<std::string, TermType> MetaVarTypes() const;

  TypePtr FreshVar();

 private:
  StatusOr<TermType> InferImpl(const TermPtr& term);

  const SchemaTypes* schema_;
  TypeSubst subst_;
  std::map<std::string, TermType> metavars_;
  int next_var_ = 0;
};

}  // namespace kola

#endif  // KOLA_REWRITE_TYPES_H_
