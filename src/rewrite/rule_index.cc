#include "rewrite/rule_index.h"

#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/env.h"
#include "rewrite/engine.h"

namespace kola {

namespace {

uint64_t MixKey(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// The discriminator MatchTerm dispatches on before looking at children:
/// kind everywhere, plus name for the named leaf kinds and the value for
/// bool constants. Literals key by kind alone -- their payload comparison
/// (Value::Compare) stays in the full match, so two distinct literals can
/// share a bucket (a false candidate, never a miss). Compound kinds carry
/// no payload MatchTerm checks before recursing.
uint64_t SymKeyOf(const Term& term) {
  const uint64_t kind = static_cast<uint64_t>(term.kind()) + 1;
  switch (term.kind()) {
    case TermKind::kPrimFn:
    case TermKind::kPrimPred:
    case TermKind::kCollection:
    case TermKind::kMetaVar:
      // StableStringHash keeps the whole matching layer free of
      // std::hash<std::string>, like RuleSetFingerprint.
      return MixKey(kind, StableStringHash(term.name()));
    case TermKind::kBoolConst:
      return MixKey(kind, term.bool_const() ? 2 : 1);
    default:
      return MixKey(kind, 0);
  }
}

bool IsPairLiteral(const Term& term) {
  return term.kind() == TermKind::kLiteral && term.literal().is_pair();
}

/// Ascending three-way merge of candidate streams. The streams are each
/// ascending by construction (rules are inserted in catalog order), so the
/// merged list reproduces the linear scan's probe order exactly.
void MergeCandidate(std::vector<uint32_t>* out, uint32_t rule) {
  // Candidates arrive grouped by stream, so a plain sorted-insert is the
  // simplest order-preserving merge; lists are a handful of entries.
  auto it = out->begin();
  while (it != out->end() && *it < rule) ++it;
  if (it == out->end() || *it != rule) out->insert(it, rule);
}

}  // namespace

std::shared_ptr<const RuleIndex> RuleIndex::Build(
    const std::vector<Rule>& rules, uint64_t fingerprint) {
  auto index = std::shared_ptr<RuleIndex>(new RuleIndex());
  index->fingerprint_ = fingerprint;
  index->rule_count_ = rules.size();
  for (size_t r = 0; r < rules.size(); ++r) {
    const TermPtr& lhs = rules[r].lhs;
    const uint32_t rule = static_cast<uint32_t>(r);
    if (lhs == nullptr || lhs->is_metavar()) {
      // A bare-metavariable lhs can match at any node (sort checking is
      // part of the full match); a null lhs never matches, but keeping it
      // a universal candidate lets MatchTerm be the single arbiter.
      index->wildcard_roots_.push_back(rule);
      continue;
    }
    if (lhs->kind() == TermKind::kPairObj) {
      // [x, y] patterns additionally decompose pair-valued literal leaves
      // (see MatchTerm): such a term has no children for the child keys to
      // constrain, so the side list bypasses them.
      index->pair_roots_.push_back(rule);
    }
    Entry entry;
    entry.rule = rule;
    entry.arity = static_cast<uint32_t>(lhs->arity());
    entry.children.reserve(lhs->arity());
    for (const TermPtr& child : lhs->children()) {
      ChildKey key;
      if (child->is_metavar()) {
        key.wildcard = true;
      } else {
        key.sym = SymKeyOf(*child);
        key.pair_pattern = child->kind() == TermKind::kPairObj;
      }
      entry.children.push_back(key);
    }
    index->buckets_[SymKeyOf(*lhs)].entries.push_back(std::move(entry));
  }
  int64_t bytes = static_cast<int64_t>(sizeof(RuleIndex));
  for (const auto& [sym, bucket] : index->buckets_) {
    // Hash node + bucket vector + per-entry child keys; deliberately on the
    // generous side, like FixpointCache::EntryFootprintBytes.
    bytes += static_cast<int64_t>(6 * sizeof(void*));
    for (const Entry& entry : bucket.entries) {
      bytes += static_cast<int64_t>(sizeof(Entry) +
                                    entry.children.size() * sizeof(ChildKey));
    }
  }
  bytes += static_cast<int64_t>(
      (index->wildcard_roots_.size() + index->pair_roots_.size()) *
      sizeof(uint32_t));
  index->footprint_bytes_ = bytes;
  return index;
}

bool RuleIndex::EntryCompatible(const Entry& entry, const Term& term) const {
  if (entry.arity != term.arity()) return false;
  for (size_t i = 0; i < entry.children.size(); ++i) {
    const ChildKey& key = entry.children[i];
    if (key.wildcard) continue;
    const Term& child = *term.child(i);
    if (key.sym == SymKeyOf(child)) continue;
    if (key.pair_pattern && IsPairLiteral(child)) continue;
    return false;
  }
  return true;
}

void RuleIndex::CandidatesAt(const Term& term,
                             std::vector<uint32_t>* out) const {
  out->clear();
  auto it = buckets_.find(SymKeyOf(term));
  if (it != buckets_.end()) {
    for (const Entry& entry : it->second.entries) {
      if (EntryCompatible(entry, term)) out->push_back(entry.rule);
    }
  }
  if (!pair_roots_.empty() && IsPairLiteral(term)) {
    for (uint32_t rule : pair_roots_) MergeCandidate(out, rule);
  }
  for (uint32_t rule : wildcard_roots_) MergeCandidate(out, rule);
}

namespace {

struct IndexCache {
  std::mutex mu;
  std::unordered_map<uint64_t, std::shared_ptr<const RuleIndex>> by_fp;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

IndexCache& GlobalIndexCache() {
  // Leaked, like GlobalTermInterner: compiled indexes may be referenced
  // during static teardown by whoever shares them.
  static IndexCache* cache = new IndexCache();
  return *cache;
}

}  // namespace

std::shared_ptr<const RuleIndex> AcquireRuleIndex(
    const std::vector<Rule>& rules, uint64_t fingerprint) {
  IndexCache& cache = GlobalIndexCache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.by_fp.find(fingerprint);
    if (it != cache.by_fp.end()) {
      if (it->second->rule_count() == rules.size()) {
        ++cache.hits;
        return it->second;
      }
      // Fingerprint collision between distinct rule sets: serve a private
      // build, cache nothing (the same defense Attune gives FixpointCache).
      ++cache.misses;
      return RuleIndex::Build(rules, fingerprint);
    }
  }
  // Build outside the lock; on a race the first insert wins so every
  // caller shares one copy.
  auto built = RuleIndex::Build(rules, fingerprint);
  std::lock_guard<std::mutex> lock(cache.mu);
  auto [it, inserted] = cache.by_fp.emplace(fingerprint, built);
  if (inserted) {
    ++cache.misses;
  } else {
    ++cache.hits;
  }
  return it->second;
}

RuleIndexCacheStats GetRuleIndexCacheStats() {
  IndexCache& cache = GlobalIndexCache();
  std::lock_guard<std::mutex> lock(cache.mu);
  RuleIndexCacheStats stats;
  stats.indexes = cache.by_fp.size();
  for (const auto& [fp, index] : cache.by_fp) {
    stats.rules += index->rule_count();
    stats.bytes += index->footprint_bytes();
  }
  stats.hits = cache.hits;
  stats.misses = cache.misses;
  return stats;
}

bool RuleIndexDisabledByEnv() {
  // Latched exactly once, like LatchGlobalInterningFromEnv: flipping the
  // variable after startup must not let half a run use the index and half
  // not, or the byte-identity contract with the linear scan gets murky.
  static const bool disabled = EnvFlagEnabled("KOLA_NO_RULE_INDEX");
  return disabled;
}

}  // namespace kola
