#ifndef KOLA_REWRITE_ENGINE_H_
#define KOLA_REWRITE_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "rewrite/properties.h"
#include "rewrite/rule.h"
#include "term/term.h"

namespace kola {

/// One fired rewrite, recorded for derivation traces (Figures 4 and 6 of
/// the paper are reproduced by asserting on these).
struct RewriteStep {
  std::string rule_id;
  std::vector<size_t> path;  // child indices from the root to the redex
  TermPtr before;            // the redex before rewriting
  TermPtr after;             // the redex after rewriting
  TermPtr result;            // the whole term after this step
};

/// A derivation: the starting term plus every fired step.
struct Trace {
  TermPtr initial;
  std::vector<RewriteStep> steps;

  /// Rule ids in firing order, e.g. {"11", "13", "7", "12~"}.
  std::vector<std::string> RuleIds() const;

  /// Multi-line rendering in the style of the paper's Figure 4.
  std::string ToString() const;
};

/// Applies declarative rules to terms. Pure matching plus substitution --
/// no code hooks; conditions resolve through the PropertyStore.
class Rewriter {
 public:
  /// `properties` may be nullptr, in which case conditional rules never
  /// fire.
  explicit Rewriter(const PropertyStore* properties = nullptr)
      : properties_(properties) {}

  /// Applies `rule` at the root only. nullopt when the lhs does not match
  /// or a condition fails.
  std::optional<TermPtr> ApplyAtRoot(const Rule& rule,
                                     const TermPtr& term) const;

  /// Applies `rule` once at the leftmost-outermost matching position.
  /// `step` (optional) receives the details.
  std::optional<TermPtr> ApplyOnce(const Rule& rule, const TermPtr& term,
                                   RewriteStep* step) const;

  /// Tries each rule in order at leftmost-outermost; first success wins.
  std::optional<TermPtr> ApplyAnyOnce(const std::vector<Rule>& rules,
                                      const TermPtr& term,
                                      RewriteStep* step) const;

  /// Repeats ApplyAnyOnce until no rule fires. RESOURCE_EXHAUSTED after
  /// `max_steps` firings (non-terminating rule sets are a bug in the
  /// caller's rule selection, but must not hang the optimizer).
  StatusOr<TermPtr> Fixpoint(const std::vector<Rule>& rules, TermPtr term,
                             Trace* trace, int max_steps = 10'000) const;

  const PropertyStore* properties() const { return properties_; }

 private:
  bool ConditionsHold(const Rule& rule, const Bindings& bindings) const;

  std::optional<TermPtr> ApplyOnceImpl(const Rule& rule, const TermPtr& term,
                                       std::vector<size_t>* path,
                                       RewriteStep* step) const;

  const PropertyStore* properties_;
};

}  // namespace kola

#endif  // KOLA_REWRITE_ENGINE_H_
