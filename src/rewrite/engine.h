#ifndef KOLA_REWRITE_ENGINE_H_
#define KOLA_REWRITE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/governor.h"
#include "common/statusor.h"
#include "rewrite/properties.h"
#include "rewrite/rule.h"
#include "term/term.h"

namespace kola {

class RuleIndex;

/// One fired rewrite, recorded for derivation traces (Figures 4 and 6 of
/// the paper are reproduced by asserting on these).
struct RewriteStep {
  std::string rule_id;
  std::vector<size_t> path;  // child indices from the root to the redex
  TermPtr before;            // the redex before rewriting
  TermPtr after;             // the redex after rewriting
  TermPtr result;            // the whole term after this step
};

/// A derivation: the starting term plus every fired step.
struct Trace {
  TermPtr initial;
  std::vector<RewriteStep> steps;

  /// Rule ids in firing order, e.g. {"11", "13", "7", "12~"}.
  std::vector<std::string> RuleIds() const;

  /// Multi-line rendering in the style of the paper's Figure 4.
  std::string ToString() const;
};

/// A stable fingerprint of a rule set (ids, both sides, conditions). Two
/// rule vectors with the same fingerprint rewrite identically; keys the
/// FixpointCache pools and the compiled RuleIndex cache, and is safe to
/// persist: it is computed from explicit FNV-1a/mix steps over the rules'
/// syntax, never from std::hash or Term::hash (both implementation-defined),
/// so the value is identical across platforms and standard libraries.
uint64_t RuleSetFingerprint(const std::vector<Rule>& rules);

/// Negative-match memo for Fixpoint: records, per rule of a fingerprinted
/// rule set, the subterms in which that rule provably fires nowhere. Keyed
/// by term identity -- with interning enabled (term/intern.h) structurally
/// equal terms share a pointer, so re-derived plans short-circuit too. The
/// cache holds owning references, so keys stay unique for its lifetime.
///
/// Reusable across Fixpoint calls (e.g. the cleanup passes of plan
/// exploration); a call with a different rule-set fingerprint resets it.
/// Assumes the PropertyStore consulted by rule conditions does not change
/// while the cache is live. Memoization never changes results or traces:
/// only already-failed (rule, subterm) probes are skipped.
///
/// Capacity-bounded: past `capacity` entries, inserting evicts one old
/// entry by deterministic second-chance (clock) replacement -- a hit sets
/// the entry's referenced bit, the clock hand sweeps the insertion-ordered
/// ring clearing bits until it finds an unreferenced victim. Eviction is
/// purely a function of the probe/insert sequence (no pointers, no wall
/// clock), and losing an entry only costs a re-probe, so results and
/// traces stay byte-identical at any capacity. Entry bytes are charged to
/// the bound governor's memory budget (see BindGovernor); a failed charge
/// just stops the cache growing.
class FixpointCache {
 public:
  FixpointCache() = default;
  ~FixpointCache() { charge_.ReleaseAll(); }
  FixpointCache(const FixpointCache&) = delete;
  FixpointCache& operator=(const FixpointCache&) = delete;

  void Reset();

  /// Number of memoized (rule, subterm) failure entries.
  size_t size() const { return slots_.size(); }

  /// Maximum entries held; 0 means unbounded. Takes effect on the next
  /// insert; set it before the cache fills (shrinking a full cache below
  /// its size is not supported).
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t fingerprint() const { return fingerprint_; }

  /// Estimated bytes per cache entry (slot + index node + key reference),
  /// the unit of kFixpointCache memory charges.
  static int64_t EntryFootprintBytes();

 private:
  friend class Rewriter;

  struct PtrHash {
    size_t operator()(const Term* t) const {
      return std::hash<const Term*>{}(t);
    }
  };

  /// One memoized failure: `rule_index` provably fires nowhere in `term`.
  struct Slot {
    TermPtr term;
    uint32_t rule_index = 0;
    bool referenced = false;  // second-chance bit, set on hit
  };

  /// Binds the cache to `fingerprint` over `rule_count` rules, resetting
  /// when it was attuned to a different rule set.
  void Attune(uint64_t fingerprint, size_t rule_count);

  /// Points entry charges at `governor`'s memory budget (nullptr detaches;
  /// the governor must outlive the cache or its Reset).
  void BindGovernor(const Governor* governor);

  /// True when (rule_index, term) is memoized as failed; counts hits and
  /// misses and refreshes the second-chance bit.
  bool CheckFailed(size_t rule_index, const TermPtr& term);

  /// Memoizes (rule_index, term) as failed, evicting if at capacity.
  void RecordFailed(size_t rule_index, TermPtr term);

  /// Clock sweep: frees one slot's contents and returns its index.
  size_t EvictOne();

  uint64_t fingerprint_ = 0;
  size_t rule_count_ = 0;
  size_t capacity_ = 0;
  std::vector<Slot> slots_;  // insertion-ordered ring once at capacity
  size_t hand_ = 0;          // clock hand over slots_
  /// (rule, term pointer) -> slot index, one map per rule.
  std::vector<std::unordered_map<const Term*, size_t, PtrHash>> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  const Governor* bound_governor_ = nullptr;
  MemoryCharge charge_;
};

/// Tunables for the rewrite engine.
struct RewriterOptions {
  /// Memoize failed (rule, subterm) probes inside Fixpoint. On by default:
  /// it is trace-preserving. Defaults() honours the KOLA_NO_FIXPOINT_MEMO
  /// environment variable (set to a truthy value -- see common/env.h -- to
  /// disable), so benchmarks can measure the un-memoized engine without
  /// code changes.
  bool memoize_fixpoint = true;

  /// Keep one FixpointCache per rule-set fingerprint alive inside the
  /// Rewriter and reuse it across Fixpoint calls, instead of a fresh
  /// per-call memo. The optimizer pipeline turns this on for its private
  /// Rewriter: each worker thread owns one Optimizer, so the pool is the
  /// "per-worker cache" of the batch driver -- negative matches learned on
  /// one query carry to the next without any cross-thread sharing.
  /// Requires the caller's PropertyStore to stay fixed for the Rewriter's
  /// lifetime, and makes the Rewriter instance single-threaded (share
  /// nothing: one Rewriter per worker). Off by default.
  bool reuse_fixpoint_caches = false;

  /// Shared resource budget for every Fixpoint driven through this
  /// Rewriter: each rule firing charges one step, and the deadline is
  /// probed once per firing, so a non-terminating or merely slow rule set
  /// stops when the request's budget runs out rather than at each call's
  /// local max_steps. nullptr (the default) means ungoverned; the per-call
  /// max_steps caps always still apply. Not owned; must outlive the
  /// Rewriter.
  const Governor* governor = nullptr;

  /// Entry bound for every FixpointCache a Fixpoint call uses (per-call,
  /// pooled, or caller-owned): past it, deterministic second-chance
  /// eviction recycles old entries. 0 disables the bound. Results and
  /// traces are identical at any value; only re-probe work changes.
  size_t fixpoint_cache_capacity = 1 << 16;

  /// Convenience byte budget: when set (and no explicit Governor is passed
  /// to Optimizer::Optimize), the optimizer runs the pass under a private
  /// Governor with exactly this memory budget, so exceeding it degrades
  /// the pass the same way a deadline does. 0 means no budget.
  int64_t memory_budget_bytes = 0;

  /// Consult a compiled discrimination-tree index (rewrite/rule_index.h)
  /// when scanning a rule set, instead of probing every rule at every node.
  /// Trace-preserving by construction -- the index only filters rules whose
  /// lhs provably cannot match, in the linear scan's order -- so it is on
  /// by default. The KOLA_NO_RULE_INDEX environment variable (truthy --
  /// see common/env.h) force-disables it process-wide regardless of this
  /// flag, so differential sweeps can compare the two scans byte-for-byte.
  /// Index bytes are charged to the governor's kRuleIndex budget; a failed
  /// charge falls back to the linear scan.
  bool use_rule_index = true;

  /// Run the equality-saturation backend (src/egraph/) as a final optimizer
  /// phase: saturate the catalog rule pool into an e-graph seeded with the
  /// query and the greedy pipeline's plan, then extract the cheapest plan
  /// by the cost model (never costlier than the greedy plan -- it is always
  /// a candidate). Off by default; Defaults() honours the KOLA_EGRAPH
  /// environment variable (truthy -- see common/env.h -- to enable).
  bool use_egraph = false;

  /// E-node cap for that phase: saturation stops growing past it and
  /// extraction runs over the partial graph. 0 means unbounded.
  size_t egraph_max_nodes = 1024;

  static RewriterOptions Defaults();
};

/// Applies declarative rules to terms. Pure matching plus substitution --
/// no code hooks; conditions resolve through the PropertyStore.
class Rewriter {
 public:
  /// `properties` may be nullptr, in which case conditional rules never
  /// fire.
  explicit Rewriter(const PropertyStore* properties = nullptr)
      : Rewriter(properties, RewriterOptions::Defaults()) {}

  Rewriter(const PropertyStore* properties, RewriterOptions options)
      : properties_(properties),
        options_(options),
        index_charge_(options.governor, MemoryCategory::kRuleIndex) {}

  /// Applies `rule` at the root only. nullopt when the lhs does not match
  /// or a condition fails.
  std::optional<TermPtr> ApplyAtRoot(const Rule& rule,
                                     const TermPtr& term) const;

  /// Applies `rule` once at the leftmost-outermost matching position.
  /// `step` (optional) receives the details.
  std::optional<TermPtr> ApplyOnce(const Rule& rule, const TermPtr& term,
                                   RewriteStep* step) const;

  /// Tries each rule in order at leftmost-outermost; first success wins.
  std::optional<TermPtr> ApplyAnyOnce(const std::vector<Rule>& rules,
                                      const TermPtr& term,
                                      RewriteStep* step) const;

  /// Tries each rule in order at the ROOT position only; first success
  /// wins. `index` (optional) is a compiled index for exactly `rules`
  /// (from IndexFor) consulted to skip rules whose lhs cannot match here;
  /// results are identical with or without it. `fired_rule` (optional)
  /// receives the index of the rule that fired. The per-node primitive of
  /// bottom-up strategies (Everywhere), which prefetch the index once per
  /// sweep rather than per node.
  std::optional<TermPtr> ApplyAnyAtRoot(const std::vector<Rule>& rules,
                                        const TermPtr& term,
                                        const RuleIndex* index,
                                        size_t* fired_rule) const;

  /// ApplyOnce for every rule independently against the SAME input term:
  /// result i is exactly ApplyOnce(rules[i], term, nullptr). With the rule
  /// index enabled this is one shared descent that tests only each node's
  /// candidates, instead of rules.size() full traversals.
  std::vector<std::optional<TermPtr>> ApplyEachOnce(
      const std::vector<Rule>& rules, const TermPtr& term) const;

  /// The compiled rule index this Rewriter consults for `rules`, acquiring
  /// (and governor-charging) it on first use. `fingerprint` must be
  /// RuleSetFingerprint(rules) -- passed in so per-sweep callers hoist the
  /// hash. nullptr when indexing is off (options, KOLA_NO_RULE_INDEX), the
  /// rule set is empty, or the memory budget cannot afford the compiled
  /// tree -- callers fall back to the linear scan, with identical results.
  std::shared_ptr<const RuleIndex> IndexFor(const std::vector<Rule>& rules,
                                            uint64_t fingerprint) const;

  /// Repeats ApplyAnyOnce until no rule fires. RESOURCE_EXHAUSTED after
  /// `max_steps` firings (non-terminating rule sets are a bug in the
  /// caller's rule selection, but must not hang the optimizer).
  ///
  /// `cache` (optional) is a caller-owned negative-match memo reused across
  /// calls with the same rule set; when nullptr, a per-call memo is used
  /// (unless options.memoize_fixpoint is off). Results and traces are
  /// byte-identical with or without memoization.
  StatusOr<TermPtr> Fixpoint(const std::vector<Rule>& rules, TermPtr term,
                             Trace* trace, int max_steps = 10'000,
                             FixpointCache* cache = nullptr) const;

  const PropertyStore* properties() const { return properties_; }
  const RewriterOptions& options() const { return options_; }

  /// Aggregate counters over the pooled per-fingerprint caches (all zero
  /// when reuse_fixpoint_caches is off). For stats displays.
  struct CacheStats {
    size_t caches = 0;
    size_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  CacheStats PooledCacheStats() const;

 private:
  bool ConditionsHold(const Rule& rule, const Bindings& bindings) const;

  /// `memo`/`rule_index` select this rule's failed-subterm set; both are
  /// ignored when memo is nullptr.
  std::optional<TermPtr> ApplyOnceImpl(const Rule& rule, const TermPtr& term,
                                       std::vector<size_t>* path,
                                       RewriteStep* step, FixpointCache* memo,
                                       size_t rule_index) const;

  std::optional<TermPtr> ApplyAnyOnceMemo(const std::vector<Rule>& rules,
                                          const TermPtr& term,
                                          RewriteStep* step,
                                          FixpointCache* memo) const;

  /// The indexed equivalent of ApplyAnyOnceMemo: one pre-order descent
  /// testing only each node's index candidates, returning the same rule
  /// fired at the same position as the rule-major linear scan (see the
  /// determinism argument in engine.cc).
  std::optional<TermPtr> IndexedApplyAnyOnce(const std::vector<Rule>& rules,
                                             const TermPtr& term,
                                             RewriteStep* step,
                                             FixpointCache* memo,
                                             const RuleIndex& index) const;

  const PropertyStore* properties_;
  RewriterOptions options_;
  /// Per-fingerprint caches when options_.reuse_fixpoint_caches is set.
  /// Mutable because Fixpoint is logically const (memoization never changes
  /// results or traces); unsynchronized, see RewriterOptions.
  mutable std::unordered_map<uint64_t, FixpointCache> cache_pool_;
  /// Compiled-index references held by this Rewriter (the indexes
  /// themselves are shared process-wide by fingerprint); the mutex makes
  /// acquisition safe even for a const Rewriter probed from several
  /// threads, unlike the single-threaded-by-contract cache pool above.
  mutable std::mutex index_mu_;
  mutable std::unordered_map<uint64_t, std::shared_ptr<const RuleIndex>>
      index_pool_;
  /// Accounts the held indexes' bytes against options_.governor.
  mutable MemoryCharge index_charge_;
};

}  // namespace kola

#endif  // KOLA_REWRITE_ENGINE_H_
