#ifndef KOLA_REWRITE_VERIFIER_H_
#define KOLA_REWRITE_VERIFIER_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"
#include "rewrite/rule.h"
#include "rewrite/types.h"
#include "values/database.h"

namespace kola {

struct VerifyOptions {
  int trials = 200;
  uint64_t seed = 1234;
  int gen_depth = 3;
  int64_t max_eval_steps = 200'000;
};

/// Outcome of randomized soundness checking of one rule. Our stand-in for
/// the paper's Larch Prover verification (see DESIGN.md): each trial
/// instantiates the rule's metavariables with random well-typed ground
/// terms, evaluates both sides on a random argument, and compares.
struct VerifyOutcome {
  int trials = 0;        // trials attempted
  int agreed = 0;        // both sides evaluated and were equal
  int disagreed = 0;     // both sides evaluated and DIFFERED (unsound!)
  int one_failed = 0;    // exactly one side errored (strictness mismatch)
  int both_failed = 0;   // both sides errored (indeterminate)
  int skipped = 0;       // instantiation not possible (e.g. no injective
                         // generator at the drawn type)
  std::string counterexample;  // first disagreement, human readable

  /// Sound under randomized testing: positive evidence and no
  /// counterexample. (one_failed trials are strictness differences --
  /// reported but not counted as unsoundness, matching the paper's
  /// total-semantics reading.)
  bool sound() const { return disagreed == 0 && agreed > 0; }

  /// No verdict either way: not a single trial produced comparable results
  /// (everything was skipped or errored on both sides). This is a GENERATOR
  /// gap, not evidence of unsoundness -- callers such as the soundness
  /// harness escalate it separately instead of mislabeling the rule unsound.
  bool indeterminate() const { return disagreed == 0 && agreed == 0; }

  /// A disagreement was observed: the rule is unsound.
  bool unsound() const { return disagreed > 0; }

  std::string Summary() const;
};

/// Verifies `rule` against the operational semantics. Returns an error only
/// when the rule cannot be typed at all (ill-formed catalog entry); an
/// unsound rule yields ok() with disagreed > 0.
StatusOr<VerifyOutcome> VerifyRule(const Rule& rule, const Database& db,
                                   const SchemaTypes& schema,
                                   const VerifyOptions& options);

}  // namespace kola

#endif  // KOLA_REWRITE_VERIFIER_H_
