#include "rewrite/rule.h"

#include <set>

#include "common/macros.h"
#include "term/parser.h"

namespace kola {

namespace {

void CollectMetaVars(const TermPtr& term, std::set<std::string>* out) {
  if (term->is_metavar()) {
    out->insert(term->name());
    return;
  }
  if (!term->has_metavars()) return;
  for (const TermPtr& child : term->children()) CollectMetaVars(child, out);
}

Status ValidateVariableContainment(const Rule& rule) {
  std::set<std::string> lhs_vars;
  CollectMetaVars(rule.lhs, &lhs_vars);
  std::set<std::string> used;
  CollectMetaVars(rule.rhs, &used);
  for (const PropertyAtom& condition : rule.conditions) {
    CollectMetaVars(condition.pattern, &used);
  }
  for (const std::string& name : used) {
    if (lhs_vars.count(name) == 0) {
      return InvalidArgumentError("rule " + rule.id + ": metavariable ?" +
                                  name + " is not bound by the lhs");
    }
  }
  return Status::OK();
}

/// Tries the three sorts a rule side can have when the caller passes
/// Sort::kObject for a full-query rule like rule 19.
StatusOr<TermPtr> ParseSide(const std::string& text, Sort sort) {
  return ParseTerm(text, sort);
}

}  // namespace

std::string Rule::ToString() const {
  std::string s = "[" + id + "] " + lhs->ToString() + " => " +
                  rhs->ToString();
  if (!conditions.empty()) {
    s += "  if ";
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (i > 0) s += " and ";
      s += conditions[i].property + "(" + conditions[i].pattern->ToString() +
           ")";
    }
  }
  return s;
}

StatusOr<Rule> MakeRule(const std::string& id, const std::string& description,
                        const std::string& lhs_text,
                        const std::string& rhs_text, Sort sort) {
  return MakeConditionalRule(id, description, lhs_text, rhs_text, sort, {});
}

StatusOr<Rule> MakeConditionalRule(
    const std::string& id, const std::string& description,
    const std::string& lhs_text, const std::string& rhs_text, Sort sort,
    const std::vector<std::pair<std::string, std::string>>& conditions) {
  Rule rule;
  rule.id = id;
  rule.description = description;
  {
    auto lhs = ParseSide(lhs_text, sort);
    if (!lhs.ok()) {
      return lhs.status().WithContext("rule " + id + " lhs");
    }
    rule.lhs = std::move(lhs).value();
  }
  {
    auto rhs = ParseSide(rhs_text, sort);
    if (!rhs.ok()) {
      return rhs.status().WithContext("rule " + id + " rhs");
    }
    rule.rhs = std::move(rhs).value();
  }
  for (const auto& [property, pattern_text] : conditions) {
    // Condition patterns are usually single function metavariables; parse at
    // function sort first, falling back to predicate then object.
    StatusOr<TermPtr> pattern = ParseTerm(pattern_text, Sort::kFunction);
    if (!pattern.ok()) pattern = ParseTerm(pattern_text, Sort::kPredicate);
    if (!pattern.ok()) pattern = ParseTerm(pattern_text, Sort::kObject);
    if (!pattern.ok()) {
      return pattern.status().WithContext("rule " + id + " condition");
    }
    rule.conditions.push_back(
        PropertyAtom{property, std::move(pattern).value()});
  }
  KOLA_RETURN_IF_ERROR(ValidateVariableContainment(rule));
  if (Term::Equal(rule.lhs, rule.rhs)) {
    return InvalidArgumentError("rule " + id + " is trivial (lhs == rhs)");
  }
  return rule;
}

namespace {

/// Splits a right-nested composition f1 o (f2 o (... o fn)) into factors.
void SplitComposeChain(const TermPtr& term, std::vector<TermPtr>* factors) {
  if (term->kind() == TermKind::kCompose) {
    factors->push_back(term->child(0));
    SplitComposeChain(term->child(1), factors);
    return;
  }
  factors->push_back(term);
}

TermPtr NestApplies(const std::vector<TermPtr>& factors, TermPtr argument) {
  TermPtr result = std::move(argument);
  for (size_t i = factors.size(); i-- > 0;) {
    result = Apply(factors[i], std::move(result));
  }
  return result;
}

}  // namespace

StatusOr<Rule> ApplyLevelVariant(const Rule& rule) {
  if (rule.lhs->sort() != Sort::kFunction ||
      rule.rhs->sort() != Sort::kFunction) {
    return InvalidArgumentError("apply-level variant requires a "
                                "function-sorted rule: " +
                                rule.id);
  }
  // "xx" starts with 'x', so the naming convention gives it object sort; a
  // double letter avoids clashing with the paper's single-letter variables.
  TermPtr fresh = ObjVar("xx");
  std::vector<TermPtr> lhs_factors;
  SplitComposeChain(rule.lhs, &lhs_factors);
  std::vector<TermPtr> rhs_factors;
  SplitComposeChain(rule.rhs, &rhs_factors);
  Rule variant = rule;
  variant.id = rule.id + "!";
  variant.description = rule.description + " (apply-level)";
  variant.lhs = NestApplies(lhs_factors, fresh);
  variant.rhs = NestApplies(rhs_factors, fresh);
  KOLA_RETURN_IF_ERROR(ValidateVariableContainment(variant));
  return variant;
}

StatusOr<Rule> ReverseRule(const Rule& rule) {
  Rule reversed = rule;
  reversed.id = rule.id + "~";
  reversed.description = rule.description + " (right-to-left)";
  reversed.lhs = rule.rhs;
  reversed.rhs = rule.lhs;
  KOLA_RETURN_IF_ERROR(ValidateVariableContainment(reversed));
  return reversed;
}

}  // namespace kola
