#include "rewrite/types.h"

#include <sstream>

#include "common/macros.h"

namespace kola {

// -- Type factories ----------------------------------------------------------

TypePtr Type::Int() {
  auto t = std::shared_ptr<Type>(new Type());
  t->tag_ = TypeTag::kInt;
  return t;
}

TypePtr Type::Str() {
  auto t = std::shared_ptr<Type>(new Type());
  t->tag_ = TypeTag::kString;
  return t;
}

TypePtr Type::Bool() {
  auto t = std::shared_ptr<Type>(new Type());
  t->tag_ = TypeTag::kBool;
  return t;
}

TypePtr Type::Class(const std::string& name) {
  auto t = std::shared_ptr<Type>(new Type());
  t->tag_ = TypeTag::kClass;
  t->name_ = name;
  return t;
}

TypePtr Type::Pair(TypePtr first, TypePtr second) {
  auto t = std::shared_ptr<Type>(new Type());
  t->tag_ = TypeTag::kPair;
  t->children_ = {std::move(first), std::move(second)};
  return t;
}

TypePtr Type::Set(TypePtr element) {
  auto t = std::shared_ptr<Type>(new Type());
  t->tag_ = TypeTag::kSet;
  t->children_ = {std::move(element)};
  return t;
}

TypePtr Type::Var(int id) {
  auto t = std::shared_ptr<Type>(new Type());
  t->tag_ = TypeTag::kVar;
  t->var_id_ = id;
  return t;
}

bool Type::Equal(const TypePtr& a, const TypePtr& b) {
  if (a.get() == b.get()) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->tag_ != b->tag_) return false;
  switch (a->tag_) {
    case TypeTag::kInt:
    case TypeTag::kString:
    case TypeTag::kBool:
      return true;
    case TypeTag::kClass:
      return a->name_ == b->name_;
    case TypeTag::kVar:
      return a->var_id_ == b->var_id_;
    case TypeTag::kPair:
      return Equal(a->children_[0], b->children_[0]) &&
             Equal(a->children_[1], b->children_[1]);
    case TypeTag::kSet:
      return Equal(a->children_[0], b->children_[0]);
  }
  return false;
}

std::string Type::ToString() const {
  switch (tag_) {
    case TypeTag::kInt:
      return "int";
    case TypeTag::kString:
      return "string";
    case TypeTag::kBool:
      return "bool";
    case TypeTag::kClass:
      return name_;
    case TypeTag::kVar:
      return "'t" + std::to_string(var_id_);
    case TypeTag::kPair:
      return "pair<" + children_[0]->ToString() + ", " +
             children_[1]->ToString() + ">";
    case TypeTag::kSet:
      return "set<" + children_[0]->ToString() + ">";
  }
  return "?";
}

// -- Substitution and unification --------------------------------------------

TypePtr TypeSubst::Apply(const TypePtr& type) const {
  KOLA_CHECK(type != nullptr);
  switch (type->tag()) {
    case TypeTag::kVar: {
      auto it = bindings_.find(type->var_id());
      if (it == bindings_.end()) return type;
      return Apply(it->second);
    }
    case TypeTag::kPair: {
      TypePtr a = Apply(type->first());
      TypePtr b = Apply(type->second());
      if (a.get() == type->first().get() && b.get() == type->second().get()) {
        return type;
      }
      return Type::Pair(std::move(a), std::move(b));
    }
    case TypeTag::kSet: {
      TypePtr e = Apply(type->element());
      if (e.get() == type->element().get()) return type;
      return Type::Set(std::move(e));
    }
    default:
      return type;
  }
}

void TypeSubst::Bind(int var_id, TypePtr type) {
  KOLA_CHECK(bindings_.count(var_id) == 0);
  bindings_[var_id] = std::move(type);
}

namespace {

bool Occurs(int var_id, const TypePtr& type) {
  switch (type->tag()) {
    case TypeTag::kVar:
      return type->var_id() == var_id;
    case TypeTag::kPair:
      return Occurs(var_id, type->first()) || Occurs(var_id, type->second());
    case TypeTag::kSet:
      return Occurs(var_id, type->element());
    default:
      return false;
  }
}

}  // namespace

Status Unify(const TypePtr& a_in, const TypePtr& b_in, TypeSubst* subst) {
  TypePtr a = subst->Apply(a_in);
  TypePtr b = subst->Apply(b_in);
  if (Type::Equal(a, b)) return Status::OK();
  if (a->is_var()) {
    if (Occurs(a->var_id(), b)) {
      return TypeError("occurs check: " + a->ToString() + " in " +
                       b->ToString());
    }
    subst->Bind(a->var_id(), b);
    return Status::OK();
  }
  if (b->is_var()) return Unify(b, a, subst);
  if (a->tag() != b->tag()) {
    return TypeError("cannot unify " + a->ToString() + " with " +
                     b->ToString());
  }
  switch (a->tag()) {
    case TypeTag::kClass:
      return TypeError("cannot unify " + a->ToString() + " with " +
                       b->ToString());
    case TypeTag::kPair:
      KOLA_RETURN_IF_ERROR(Unify(a->first(), b->first(), subst));
      return Unify(a->second(), b->second(), subst);
    case TypeTag::kSet:
      return Unify(a->element(), b->element(), subst);
    default:
      return TypeError("cannot unify " + a->ToString() + " with " +
                       b->ToString());
  }
}

// -- Schema typing environment -----------------------------------------------

SchemaTypes SchemaTypes::CarWorld() {
  SchemaTypes schema;
  TypePtr person = Type::Class("Person");
  TypePtr address = Type::Class("Address");
  TypePtr vehicle = Type::Class("Vehicle");
  schema.AddFunction("age", person, Type::Int());
  schema.AddFunction("name", person, Type::Str());
  schema.AddFunction("addr", person, address);
  schema.AddFunction("child", person, Type::Set(person));
  schema.AddFunction("cars", person, Type::Set(vehicle));
  schema.AddFunction("grgs", person, Type::Set(address));
  schema.AddFunction("city", address, Type::Str());
  schema.AddFunction("street", address, Type::Str());
  schema.AddFunction("make", vehicle, Type::Str());
  schema.AddFunction("year", vehicle, Type::Int());
  // Arithmetic helper primitives registered on car-world databases by the
  // verifier's fixture (see generate.cc).
  schema.AddFunction("succ", Type::Int(), Type::Int());
  schema.AddFunction("dbl", Type::Int(), Type::Int());
  schema.AddFunction("neg", Type::Int(), Type::Int());
  schema.AddCollection("P", person);
  schema.AddCollection("V", vehicle);
  schema.AddCollection("A", address);
  schema.AddCollection("Nums", Type::Int());
  return schema;
}

SchemaTypes SchemaTypes::CompanyWorld() {
  SchemaTypes schema;
  TypePtr dept = Type::Class("Dept");
  TypePtr emp = Type::Class("Emp");
  TypePtr proj = Type::Class("Proj");
  schema.AddFunction("dname", dept, Type::Str());
  schema.AddFunction("head", dept, emp);
  schema.AddFunction("ename", emp, Type::Str());
  schema.AddFunction("salary", emp, Type::Int());
  schema.AddFunction("dept", emp, dept);
  schema.AddFunction("skills", emp, Type::Set(Type::Str()));
  schema.AddFunction("pname", proj, Type::Str());
  schema.AddFunction("budget", proj, Type::Int());
  schema.AddFunction("members", proj, Type::Set(emp));
  schema.AddCollection("D", dept);
  schema.AddCollection("E", emp);
  schema.AddCollection("Proj", proj);
  return schema;
}

void SchemaTypes::AddFunction(const std::string& name, TypePtr from,
                              TypePtr to) {
  functions_[name] = {std::move(from), std::move(to)};
}

void SchemaTypes::AddCollection(const std::string& name, TypePtr element) {
  collections_[name] = std::move(element);
}

const std::pair<TypePtr, TypePtr>* SchemaTypes::FunctionType(
    const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

const TypePtr* SchemaTypes::CollectionElement(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : &it->second;
}

std::vector<std::string> SchemaTypes::FunctionsWithType(
    const TypePtr& from, const TypePtr& to) const {
  std::vector<std::string> names;
  for (const auto& [name, sig] : functions_) {
    if (Type::Equal(sig.first, from) && Type::Equal(sig.second, to)) {
      names.push_back(name);
    }
  }
  return names;
}

// -- Inference ---------------------------------------------------------------

TypePtr TypeInferencer::FreshVar() { return Type::Var(next_var_++); }

StatusOr<TermType> TypeInferencer::Infer(const TermPtr& term) {
  KOLA_ASSIGN_OR_RETURN(TermType t, InferImpl(term));
  t.from = t.from == nullptr ? nullptr : subst_.Apply(t.from);
  t.to = t.to == nullptr ? nullptr : subst_.Apply(t.to);
  return t;
}

Status TypeInferencer::UnifyTermTypes(const TermType& a, const TermType& b) {
  if (a.sort != b.sort &&
      !(SortMatches(a.sort, b.sort) || SortMatches(b.sort, a.sort))) {
    return TypeError("sort mismatch between rule sides");
  }
  if (a.from != nullptr && b.from != nullptr) {
    KOLA_RETURN_IF_ERROR(Unify(a.from, b.from, &subst_));
  }
  if (a.to != nullptr && b.to != nullptr) {
    KOLA_RETURN_IF_ERROR(Unify(a.to, b.to, &subst_));
  }
  return Status::OK();
}

std::map<std::string, TermType> TypeInferencer::MetaVarTypes() const {
  std::map<std::string, TermType> resolved;
  for (const auto& [name, type] : metavars_) {
    TermType t = type;
    t.from = t.from == nullptr ? nullptr : subst_.Apply(t.from);
    t.to = t.to == nullptr ? nullptr : subst_.Apply(t.to);
    resolved[name] = t;
  }
  return resolved;
}

namespace {

/// Type of a runtime literal. Empty sets get the provided fresh element
/// type; heterogeneous sets are a type error.
StatusOr<TypePtr> TypeOfValue(const Value& value, TypeInferencer* inferencer,
                              TypeSubst* subst) {
  switch (value.kind()) {
    case ValueKind::kInt:
      return Type::Int();
    case ValueKind::kString:
      return Type::Str();
    case ValueKind::kBool:
      return Type::Bool();
    case ValueKind::kPair: {
      KOLA_ASSIGN_OR_RETURN(TypePtr a,
                            TypeOfValue(value.first(), inferencer, subst));
      KOLA_ASSIGN_OR_RETURN(TypePtr b,
                            TypeOfValue(value.second(), inferencer, subst));
      return Type::Pair(std::move(a), std::move(b));
    }
    case ValueKind::kSet: {
      TypePtr element = inferencer->FreshVar();
      for (const Value& e : value.elements()) {
        KOLA_ASSIGN_OR_RETURN(TypePtr t, TypeOfValue(e, inferencer, subst));
        KOLA_RETURN_IF_ERROR(Unify(element, t, subst));
      }
      return Type::Set(subst->Apply(element));
    }
    default:
      return TypeError("cannot type literal " + value.ToString());
  }
}

}  // namespace

StatusOr<TermType> TypeInferencer::InferImpl(const TermPtr& term) {
  KOLA_CHECK(term != nullptr);
  auto fn = [](TypePtr from, TypePtr to) {
    return TermType{Sort::kFunction, std::move(from), std::move(to)};
  };
  auto pred = [](TypePtr on) {
    return TermType{Sort::kPredicate, std::move(on), nullptr};
  };
  auto obj = [](TypePtr t) {
    return TermType{Sort::kObject, nullptr, std::move(t)};
  };

  switch (term->kind()) {
    case TermKind::kPrimFn: {
      const std::string& name = term->name();
      if (name == "id") {
        TypePtr a = FreshVar();
        return fn(a, a);
      }
      if (name == "pi1") {
        TypePtr a = FreshVar(), b = FreshVar();
        return fn(Type::Pair(a, b), a);
      }
      if (name == "pi2") {
        TypePtr a = FreshVar(), b = FreshVar();
        return fn(Type::Pair(a, b), b);
      }
      if (name == "flat") {
        TypePtr a = FreshVar();
        return fn(Type::Set(Type::Set(a)), Type::Set(a));
      }
      if (name == "union" || name == "intersect" || name == "diff") {
        TypePtr s = Type::Set(FreshVar());
        return fn(Type::Pair(s, s), s);
      }
      if (name == "card") {
        return fn(Type::Set(FreshVar()), Type::Int());
      }
      const auto* sig = schema_->FunctionType(name);
      if (sig == nullptr) {
        return NotFoundError("no typing for primitive function " + name);
      }
      return fn(sig->first, sig->second);
    }
    case TermKind::kPrimPred: {
      const std::string& name = term->name();
      if (name == "eq" || name == "neq") {
        TypePtr a = FreshVar();
        return pred(Type::Pair(a, a));
      }
      if (name == "lt" || name == "leq" || name == "gt" || name == "geq") {
        return pred(Type::Pair(Type::Int(), Type::Int()));
      }
      if (name == "in") {
        TypePtr a = FreshVar();
        return pred(Type::Pair(a, Type::Set(a)));
      }
      return NotFoundError("no typing for primitive predicate " + name);
    }
    case TermKind::kLiteral: {
      KOLA_ASSIGN_OR_RETURN(TypePtr t,
                            TypeOfValue(term->literal(), this, &subst_));
      return obj(t);
    }
    case TermKind::kBoolConst:
      return obj(Type::Bool());
    case TermKind::kCollection: {
      const TypePtr* element = schema_->CollectionElement(term->name());
      if (element == nullptr) {
        return NotFoundError("no typing for collection " + term->name());
      }
      return obj(Type::Set(*element));
    }
    case TermKind::kMetaVar: {
      auto it = metavars_.find(term->name());
      if (it != metavars_.end()) {
        if (it->second.sort != term->sort()) {
          return TypeError("metavariable ?" + term->name() +
                           " used at two sorts");
        }
        return it->second;
      }
      TermType t;
      switch (term->sort()) {
        case Sort::kFunction:
          t = fn(FreshVar(), FreshVar());
          break;
        case Sort::kPredicate:
          t = pred(FreshVar());
          break;
        case Sort::kObject:
          t = obj(FreshVar());
          break;
        case Sort::kBool:
          t = obj(Type::Bool());
          break;
      }
      t.sort = term->sort();
      metavars_[term->name()] = t;
      return t;
    }
    case TermKind::kCompose: {
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType g, InferImpl(term->child(1)));
      KOLA_RETURN_IF_ERROR(Unify(f.from, g.to, &subst_));
      return fn(g.from, f.to);
    }
    case TermKind::kPairFn: {
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType g, InferImpl(term->child(1)));
      KOLA_RETURN_IF_ERROR(Unify(f.from, g.from, &subst_));
      return fn(f.from, Type::Pair(f.to, g.to));
    }
    case TermKind::kProduct: {
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType g, InferImpl(term->child(1)));
      return fn(Type::Pair(f.from, g.from), Type::Pair(f.to, g.to));
    }
    case TermKind::kConstFn: {
      KOLA_ASSIGN_OR_RETURN(TermType x, InferImpl(term->child(0)));
      return fn(FreshVar(), x.to);
    }
    case TermKind::kCurryFn: {
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType x, InferImpl(term->child(1)));
      TypePtr a = FreshVar();
      KOLA_RETURN_IF_ERROR(Unify(f.from, Type::Pair(x.to, a), &subst_));
      return fn(a, f.to);
    }
    case TermKind::kCond: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(1)));
      KOLA_ASSIGN_OR_RETURN(TermType g, InferImpl(term->child(2)));
      KOLA_RETURN_IF_ERROR(Unify(p.from, f.from, &subst_));
      KOLA_RETURN_IF_ERROR(Unify(f.from, g.from, &subst_));
      KOLA_RETURN_IF_ERROR(Unify(f.to, g.to, &subst_));
      return fn(f.from, f.to);
    }
    case TermKind::kOplus: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(1)));
      KOLA_RETURN_IF_ERROR(Unify(p.from, f.to, &subst_));
      return pred(f.from);
    }
    case TermKind::kAndP:
    case TermKind::kOrP: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType q, InferImpl(term->child(1)));
      KOLA_RETURN_IF_ERROR(Unify(p.from, q.from, &subst_));
      return pred(p.from);
    }
    case TermKind::kInvP: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      TypePtr a = FreshVar(), b = FreshVar();
      KOLA_RETURN_IF_ERROR(Unify(p.from, Type::Pair(a, b), &subst_));
      return pred(Type::Pair(b, a));
    }
    case TermKind::kNotP: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      return pred(p.from);
    }
    case TermKind::kConstPred: {
      KOLA_ASSIGN_OR_RETURN(TermType b, InferImpl(term->child(0)));
      KOLA_RETURN_IF_ERROR(Unify(b.to, Type::Bool(), &subst_));
      return pred(FreshVar());
    }
    case TermKind::kCurryPred: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType x, InferImpl(term->child(1)));
      TypePtr a = FreshVar();
      KOLA_RETURN_IF_ERROR(Unify(p.from, Type::Pair(x.to, a), &subst_));
      return pred(a);
    }
    case TermKind::kIterate: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(1)));
      KOLA_RETURN_IF_ERROR(Unify(p.from, f.from, &subst_));
      return fn(Type::Set(f.from), Type::Set(f.to));
    }
    case TermKind::kIter: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(1)));
      TypePtr e = FreshVar(), y = FreshVar();
      KOLA_RETURN_IF_ERROR(Unify(p.from, Type::Pair(e, y), &subst_));
      KOLA_RETURN_IF_ERROR(Unify(f.from, Type::Pair(e, y), &subst_));
      return fn(Type::Pair(e, Type::Set(y)), Type::Set(f.to));
    }
    case TermKind::kJoin: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(1)));
      TypePtr a = FreshVar(), b = FreshVar();
      KOLA_RETURN_IF_ERROR(Unify(p.from, Type::Pair(a, b), &subst_));
      KOLA_RETURN_IF_ERROR(Unify(f.from, Type::Pair(a, b), &subst_));
      return fn(Type::Pair(Type::Set(a), Type::Set(b)), Type::Set(f.to));
    }
    case TermKind::kNest: {
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType g, InferImpl(term->child(1)));
      KOLA_RETURN_IF_ERROR(Unify(f.from, g.from, &subst_));
      return fn(Type::Pair(Type::Set(f.from), Type::Set(f.to)),
                Type::Set(Type::Pair(f.to, Type::Set(g.to))));
    }
    case TermKind::kUnnest: {
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType g, InferImpl(term->child(1)));
      KOLA_RETURN_IF_ERROR(Unify(f.from, g.from, &subst_));
      TypePtr v = FreshVar();
      KOLA_RETURN_IF_ERROR(Unify(g.to, Type::Set(v), &subst_));
      return fn(Type::Set(f.from), Type::Set(Type::Pair(f.to, v)));
    }
    case TermKind::kApplyFn: {
      KOLA_ASSIGN_OR_RETURN(TermType f, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType x, InferImpl(term->child(1)));
      KOLA_RETURN_IF_ERROR(Unify(f.from, x.to, &subst_));
      return obj(f.to);
    }
    case TermKind::kApplyPred: {
      KOLA_ASSIGN_OR_RETURN(TermType p, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType x, InferImpl(term->child(1)));
      KOLA_RETURN_IF_ERROR(Unify(p.from, x.to, &subst_));
      return obj(Type::Bool());
    }
    case TermKind::kPairObj: {
      KOLA_ASSIGN_OR_RETURN(TermType a, InferImpl(term->child(0)));
      KOLA_ASSIGN_OR_RETURN(TermType b, InferImpl(term->child(1)));
      return obj(Type::Pair(a.to, b.to));
    }
  }
  return InternalError("unhandled term kind in type inference");
}

}  // namespace kola
