#include "rewrite/properties.h"

#include "common/macros.h"

namespace kola {

PropertyStore PropertyStore::Default() {
  PropertyStore store;
  // Ground annotations (schema knowledge an administrator would declare).
  store.AddFact("injective", Id());
  store.AddFact("injective", PrimFn("succ"));
  store.AddFact("injective", PrimFn("neg"));
  store.AddFact("injective", PrimFn("dbl"));
  store.AddFact("injective", PrimFn("name"));  // name is a key in car-world

  // Inference rules (the paper's example plus natural companions):
  //   injective(f) and injective(g) => injective(f o g)
  store.AddRule(PropertyRule{
      "inj-compose",
      {"injective", Compose(FnVar("f"), FnVar("g"))},
      {{"injective", FnVar("f")}, {"injective", FnVar("g")}}});
  //   injective(f) => injective((f, g))   (a pair is determined by either
  //   injective component)
  store.AddRule(PropertyRule{"inj-pair-left",
                             {"injective", PairFn(FnVar("f"), FnVar("g"))},
                             {{"injective", FnVar("f")}}});
  store.AddRule(PropertyRule{"inj-pair-right",
                             {"injective", PairFn(FnVar("f"), FnVar("g"))},
                             {{"injective", FnVar("g")}}});
  //   injective(f) and injective(g) => injective(f x g)
  store.AddRule(PropertyRule{
      "inj-product",
      {"injective", Product(FnVar("f"), FnVar("g"))},
      {{"injective", FnVar("f")}, {"injective", FnVar("g")}}});
  return store;
}

void PropertyStore::AddFact(const std::string& property, TermPtr term) {
  KOLA_CHECK(!term->has_metavars());
  facts_.push_back(PropertyAtom{property, std::move(term)});
}

void PropertyStore::AddRule(PropertyRule rule) {
  rules_.push_back(std::move(rule));
}

bool PropertyStore::Holds(const std::string& property, const TermPtr& term,
                          int max_depth) const {
  if (max_depth <= 0) return false;
  for (const PropertyAtom& fact : facts_) {
    if (fact.property == property && Term::Equal(fact.pattern, term)) {
      return true;
    }
  }
  for (const PropertyRule& rule : rules_) {
    if (rule.head.property != property) continue;
    Bindings bindings;
    if (!MatchTerm(rule.head.pattern, term, &bindings)) continue;
    bool all = true;
    for (const PropertyAtom& atom : rule.body) {
      auto subgoal = Substitute(atom.pattern, bindings);
      if (!subgoal.ok() ||
          !Holds(atom.property, subgoal.value(), max_depth - 1)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace kola
