#include "verify/query_gen.h"

#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "optimizer/hidden_join.h"

namespace kola {

StatusOr<std::pair<std::string, TypePtr>> QueryGenerator::RandomExtent() {
  std::vector<std::pair<std::string, TypePtr>> typed;
  for (const std::string& name : db_->ExtentNames()) {
    if (const TypePtr* element = schema_->CollectionElement(name)) {
      typed.emplace_back(name, *element);
    }
  }
  if (typed.empty()) {
    return FailedPreconditionError(
        "database has no extent the schema can type");
  }
  return typed[rng_->Index(typed.size())];
}

StatusOr<TermPtr> QueryGenerator::FilterMap() {
  KOLA_ASSIGN_OR_RETURN(auto extent, RandomExtent());
  KOLA_ASSIGN_OR_RETURN(TermPtr pred,
                        term_gen_.RandomPred(extent.second,
                                             options_.max_depth));
  TypePtr out = term_gen_.RandomType(1);
  KOLA_ASSIGN_OR_RETURN(
      TermPtr fn, term_gen_.RandomFn(extent.second, rng_->Chance(0.3)
                                                        ? extent.second
                                                        : out,
                                     options_.max_depth));
  return Apply(Iterate(std::move(pred), std::move(fn)),
               Collection(extent.first));
}

StatusOr<TermPtr> QueryGenerator::KeyedJoin() {
  KOLA_ASSIGN_OR_RETURN(auto left, RandomExtent());
  KOLA_ASSIGN_OR_RETURN(auto right, RandomExtent());
  // The fastpath shapes: join(eq @ (f x g), h) and join(in @ (f x g), h).
  TypePtr key = term_gen_.RandomType(0);
  KOLA_ASSIGN_OR_RETURN(
      TermPtr f, term_gen_.RandomFn(left.second, key, options_.max_depth));
  bool membership = rng_->Chance(0.4);
  KOLA_ASSIGN_OR_RETURN(
      TermPtr g,
      term_gen_.RandomFn(right.second,
                         membership ? Type::Set(key) : key,
                         options_.max_depth));
  TermPtr pred = Oplus(membership ? InP() : EqP(),
                       Product(std::move(f), std::move(g)));
  TermPtr h;
  if (rng_->Chance(0.5)) {
    h = PairFn(Pi1(), Pi2());
  } else {
    TypePtr pair_in = Type::Pair(left.second, right.second);
    KOLA_ASSIGN_OR_RETURN(
        h, term_gen_.RandomFn(pair_in, term_gen_.RandomType(1),
                              options_.max_depth));
  }
  return Apply(Join(std::move(pred), std::move(h)),
               PairObj(Collection(left.first), Collection(right.first)));
}

StatusOr<TermPtr> QueryGenerator::PredicateJoin() {
  KOLA_ASSIGN_OR_RETURN(auto left, RandomExtent());
  KOLA_ASSIGN_OR_RETURN(auto right, RandomExtent());
  TypePtr pair_in = Type::Pair(left.second, right.second);
  KOLA_ASSIGN_OR_RETURN(TermPtr pred,
                        term_gen_.RandomPred(pair_in, options_.max_depth));
  KOLA_ASSIGN_OR_RETURN(
      TermPtr h, term_gen_.RandomFn(pair_in, term_gen_.RandomType(1),
                                    options_.max_depth));
  return Apply(Join(std::move(pred), std::move(h)),
               PairObj(Collection(left.first), Collection(right.first)));
}

StatusOr<TermPtr> QueryGenerator::Grouping() {
  // The canonical grouping pair: nest(pi1, pi2) over ([key, value] pairs,
  // keys), which is exactly the hash-grouping fastpath shape the
  // hidden-join pipeline produces.
  KOLA_ASSIGN_OR_RETURN(auto extent, RandomExtent());
  TypePtr key_type = term_gen_.RandomType(0);
  KOLA_ASSIGN_OR_RETURN(
      TermPtr key, term_gen_.RandomFn(extent.second, key_type,
                                      options_.max_depth));
  KOLA_ASSIGN_OR_RETURN(
      TermPtr value, term_gen_.RandomFn(extent.second, term_gen_.RandomType(1),
                                        options_.max_depth));
  KOLA_ASSIGN_OR_RETURN(TermPtr pred,
                        term_gen_.RandomPred(extent.second,
                                             options_.max_depth));
  TermPtr pairs = Apply(Iterate(pred, PairFn(key, std::move(value))),
                        Collection(extent.first));
  TermPtr keys =
      Apply(Iterate(ConstPredTrue(), key), Collection(extent.first));
  return Apply(Nest(Pi1(), Pi2()),
               PairObj(std::move(pairs), std::move(keys)));
}

StatusOr<TermPtr> QueryGenerator::DoubleIterate() {
  KOLA_ASSIGN_OR_RETURN(auto extent, RandomExtent());
  TypePtr mid = rng_->Chance(0.4) ? extent.second : term_gen_.RandomType(1);
  KOLA_ASSIGN_OR_RETURN(TermPtr p1,
                        term_gen_.RandomPred(extent.second,
                                             options_.max_depth));
  KOLA_ASSIGN_OR_RETURN(
      TermPtr f1, term_gen_.RandomFn(extent.second, mid,
                                     options_.max_depth));
  KOLA_ASSIGN_OR_RETURN(TermPtr p2,
                        term_gen_.RandomPred(mid, options_.max_depth));
  KOLA_ASSIGN_OR_RETURN(
      TermPtr f2, term_gen_.RandomFn(mid, term_gen_.RandomType(1),
                                     options_.max_depth));
  // Half the time as a composition (what rule 11 fuses), half as nested
  // applications (what norm.fold must first refold).
  TermPtr inner = Iterate(std::move(p1), std::move(f1));
  TermPtr outer = Iterate(std::move(p2), std::move(f2));
  if (rng_->Chance(0.5)) {
    return Apply(Compose(std::move(outer), std::move(inner)),
                 Collection(extent.first));
  }
  return Apply(std::move(outer),
               Apply(std::move(inner), Collection(extent.first)));
}

StatusOr<TermPtr> QueryGenerator::HiddenJoin() {
  // The Figure 7 family exercises break-up / bottom-out / pull-up /
  // absorb-join end to end. Depth 2 is KG1-sized.
  return MakeHiddenJoinQuery(static_cast<int>(rng_->Uniform(1, 2)));
}

StatusOr<TermPtr> QueryGenerator::RandomQuery() {
  switch (rng_->Uniform(0, 6)) {
    case 0: return FilterMap();
    case 1:
    case 2: return KeyedJoin();  // double weight: richest optimizer surface
    case 3: return PredicateJoin();
    case 4: return Grouping();
    case 5: return DoubleIterate();
    default: return HiddenJoin();
  }
}

}  // namespace kola
