#ifndef KOLA_VERIFY_SOUNDNESS_H_
#define KOLA_VERIFY_SOUNDNESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "rewrite/rule.h"
#include "term/term.h"
#include "values/random_world.h"

namespace kola {

/// One cell of the optimizer configuration matrix the harness sweeps: the
/// engine tunables that must never change query RESULTS, only performance.
/// Differential testing across all thirty-two combinations is what catches
/// a memo/interning/fastpath/index/egraph interaction that per-rule
/// verification cannot.
struct PipelineConfig {
  bool interning = false;         // hash-consed Term::Make (term/intern.h)
  bool fixpoint_memo = true;      // FixpointCache negative-match memo
  bool physical_fastpaths = true; // hash join / grouping in the evaluator
  bool rule_index = true;         // compiled rule matching (rule_index.h)
  bool egraph = false;            // equality-saturation phase (egraph/)

  /// Compact stable name: "+"-joined feature list
  /// ("intern+memo+fast+index+egraph"), "plain" when everything is off.
  /// Round-trips through ParsePipelineConfig; used by
  /// `kolaverify --config`.
  std::string Name() const;
};

/// Parses a PipelineConfig::Name() back into a config. INVALID_ARGUMENT on
/// unknown or duplicated feature names ("plain" is only valid alone).
StatusOr<PipelineConfig> ParsePipelineConfig(const std::string& name);

/// All thirty-two interning x memo x fastpath x rule-index x egraph
/// combinations.
std::vector<PipelineConfig> FullConfigMatrix();

/// A rule that is deliberately unsound -- iterate(?p, ?f) => iterate(?p, id)
/// silently drops the projection. Planted into the harness by tests (and
/// `kolaverify --plant-unsound`) to prove the end-to-end detector actually
/// detects: the harness must flag it and shrink the failure to a depth <= 3
/// query. Never registered in the rule catalog.
Rule PlantedDropMapRule();

/// Harness tunables.
struct SoundnessOptions {
  int trials = 1000;
  uint64_t seed = 1;

  /// Depth budget for generated query pieces.
  int gen_depth = 3;

  /// Per-evaluation step bound; RESOURCE_EXHAUSTED evaluations are counted
  /// as skips, never as divergences.
  int64_t max_eval_steps = 2'000'000;

  /// Wall-clock budget in milliseconds for each pipeline stage of a config
  /// cell (the optimization pass and each plan evaluation get their own
  /// fresh Governor). 0 means ungoverned. A deadline hit during
  /// optimization degrades -- the best-so-far plan is STILL differentially
  /// checked; a deadline hit during an evaluation is a skip, exactly like
  /// a step-budget skip. Deadline hits depend on wall clock, so reports
  /// from deadline runs need not be bit-identical across machines.
  int64_t deadline_ms = 0;

  /// Per-stage memory budget in bytes (0 = unlimited). The optimization
  /// pass of every config cell runs under a Governor carrying this byte
  /// budget (interner arena + fixpoint cache + exploration frontier +
  /// evaluator scratch all charge it); each plan evaluation gets its own
  /// fresh budget of the same size. Exhaustion degrades the pass / skips
  /// the evaluation, never errors. Interning cells use a private per-cell
  /// arena, so charges -- and therefore the report -- are a pure function
  /// of the cell and stay bit-identical at every --jobs level.
  int64_t memory_budget_bytes = 0;

  /// Escalation retries for memory-degraded passes (0 = none). When both
  /// this and memory_budget_bytes are set, each cell's pass runs under a
  /// RetrySupervisor with max_attempts = retries + 1: a pass degraded on
  /// RESOURCE_EXHAUSTED re-runs under a geometrically larger budget, and a
  /// pass still degraded after the last attempt is quarantined (its best
  /// plan is still differentially checked).
  int retries = 0;

  /// Fault-injection spec `site:rate,...` (see common/fault_injection.h)
  /// installed for the optimizer section of every config cell. "" means no
  /// faults. The baseline ground-truth evaluation always runs fault-free.
  std::string fault_spec;

  /// Base seed for fault streams. Trial K draws its faults from the
  /// independent child stream Rng(fault_seed).Child(K), so the chaos
  /// schedule is a pure function of (fault_seed, trial) and bit-identical
  /// at every --jobs level. Replay uses fault_seed directly as the stream.
  uint64_t fault_seed = 1;

  /// The optimizer configurations every trial is checked under.
  std::vector<PipelineConfig> configs = FullConfigMatrix();

  /// Applied once each to the optimized plan, as if they had fired during
  /// optimization. Test hook: plant PlantedDropMapRule() here and the
  /// harness must catch it.
  std::vector<Rule> extra_rules;

  /// Greedily minimize failures before reporting (term reduction first,
  /// then database scale).
  bool shrink = true;

  /// Stop after this many divergences (each is shrunk and fully reported;
  /// one is usually enough to file).
  int max_failures = 3;

  /// Worker threads for the trial sweep. Every trial seeds itself via
  /// Rng::Child(trial), runs on whichever worker picks it up, and is folded
  /// back in trial order, so the report -- counts, failures, repro seeds,
  /// shrunk queries -- is bit-identical for every jobs value (including 1,
  /// which runs inline with no threads). Parallelism buys wall-clock only.
  int jobs = 1;
};

/// A reproducible optimizer-soundness failure: a query whose optimized form
/// evaluates to a different result than the original on a concrete
/// database.
struct Divergence {
  TermPtr query;            // minimized diverging query
  TermPtr original_query;   // as generated, before shrinking
  TermPtr optimized;        // the plan that disagreed (for `query`)
  uint64_t world_seed = 0;  // BuildRandomWorld seed
  int world_scale = 0;      // after database shrinking
  PipelineConfig config;    // the matrix cell that diverged
  bool planted = false;     // extra_rules were in play
  std::string expected;     // baseline result (printed)
  std::string actual;       // optimized result (printed)
  std::vector<std::string> rule_trace;  // rule ids, firing order
  int64_t deadline_ms = 0;      // per-stage deadline in play (0 = none)
  int64_t memory_budget_bytes = 0;  // per-stage byte budget (0 = none)
  int retries = 0;              // escalation retries in play (0 = none)
  std::string fault_spec;       // fault spec in play ("" = none)
  uint64_t fault_stream = 0;    // exact fault stream seed of this cell

  /// A one-line `kolaverify --replay ...` invocation that reproduces this
  /// exact divergence from a fresh process.
  std::string ReplayCommand() const;

  /// Multi-line human-readable report (query, world, trace, both results,
  /// replay command).
  std::string Report() const;
};

/// Aggregate outcome of a harness run.
struct SoundnessReport {
  int trials = 0;            // queries generated and attempted
  int evaluated = 0;         // trials whose baseline evaluation succeeded
  int gen_skipped = 0;       // generator could not fill the drawn shape
  int eval_skipped = 0;      // baseline errored or ran out of steps
  int config_runs = 0;       // (trial, config) cells checked
  int strictness = 0;        // optimized plan errored where baseline did not
  int degraded = 0;          // cells where the optimizer degraded (deadline,
                             // budget, injected fault) -- plan still checked
  int retried = 0;           // cells the RetrySupervisor re-ran (>1 attempt)
  int quarantined = 0;       // cells still degraded at max escalation
  int cost_regressions = 0;  // egraph cells whose extracted plan costed
                             // MORE than the same cell without the e-graph
                             // (checked only on unbudgeted, fault-free
                             // runs; must be 0)
  bool supervised = false;   // the RetrySupervisor was configured (retries
                             // > 0): Summary() then reports retried /
                             // quarantined counts. Options-driven, so the
                             // format is identical at every --jobs level.
  std::vector<Divergence> failures;

  bool clean() const { return failures.empty(); }
  std::string Summary() const;
};

/// The end-to-end differential harness: every trial generates a random
/// query (verify/query_gen.h), builds a fresh random world, evaluates the
/// query un-optimized (fastpaths off) as ground truth, then runs the full
/// optimizer pipeline under every PipelineConfig and re-evaluates each
/// produced plan. Disagreement in results is a Divergence; it is shrunk to
/// a minimal term and world before being reported.
///
/// Error-behavior differences are *not* divergences: code motion may hoist
/// a predicate over an attribute access that would have errored (the
/// paper's semantics are total over defined values), so an optimized plan
/// erroring where the baseline succeeded is tallied under `strictness`.
class SoundnessHarness {
 public:
  explicit SoundnessHarness(SoundnessOptions options)
      : options_(std::move(options)) {}

  /// Runs the full sweep. Only infrastructure failures (not divergences)
  /// surface as error Status.
  StatusOr<SoundnessReport> Run();

  /// Checks one query against one world under one config -- the `--replay`
  /// path, and the predicate the shrinker minimizes against. Returns the
  /// (shrunk, when options.shrink) divergence, or nullopt when the query
  /// and its optimized forms agree.
  StatusOr<std::optional<Divergence>> CheckQuery(
      const TermPtr& query, const RandomWorldOptions& world,
      const PipelineConfig& config);

 private:
  struct RunOutcome;    // internal per-config evaluation result
  struct TrialOutcome;  // internal per-trial result (all configs)

  /// `fault_stream` seeds this cell's fault injector when
  /// options_.fault_spec is non-empty (ignored otherwise).
  RunOutcome RunConfig(const TermPtr& query, const Database& db,
                       const PipelineConfig& config,
                       uint64_t fault_stream) const;
  /// Generates and checks one trial, self-seeded from options_.seed and
  /// `trial` alone (no shared rng stream): safe to run concurrently with
  /// other trials, and its outcome is independent of execution order.
  TrialOutcome RunTrial(int trial) const;
  Divergence ShrinkDivergence(Divergence failure) const;

  SoundnessOptions options_;
};

/// Depth of a term with leaves at depth 0 (so `iterate(Kp(T), age) ! P`
/// has depth 3). The planted-rule acceptance bound is stated in terms of
/// this metric.
int TermDepth(const TermPtr& term);

}  // namespace kola

#endif  // KOLA_VERIFY_SOUNDNESS_H_
